package aqp

import (
	"runtime"
	"testing"

	"repro/internal/query"
	"repro/internal/storage"
)

// progressiveSnips is a snippet mix that exercises every block verdict the
// vectorized scan distinguishes: bare-column AVG (BlockFull fast path on the
// full-table snippet), expression AVG, selective AVG, FREQ over a region,
// always-true FREQ (BlockFull) and never-true FREQ (BlockEmpty).
func progressiveSnips(t *testing.T, tb *storage.Table) []*query.Snippet {
	t.Helper()
	var snips []*query.Snippet
	for _, sql := range []string{
		"SELECT AVG(val) FROM t",
		"SELECT AVG(val) FROM t WHERE week >= 20 AND week < 45",
		"SELECT AVG(val * val) FROM t WHERE week >= 40",
		"SELECT COUNT(*) FROM t WHERE region = 'a'",
		"SELECT COUNT(*) FROM t WHERE week < 1000",
		"SELECT COUNT(*) FROM t WHERE week > 1000",
	} {
		snips = append(snips, snippetFor(t, tb, sql))
	}
	return snips
}

// requireIncrementEqual asserts bit-for-bit equality between a progressive
// increment and a fresh prefix scan (struct equality on float64 fields is
// exact — no tolerance).
func requireIncrementEqual(t *testing.T, label string, got, want Increment) {
	t.Helper()
	if got.Rows != want.Rows || got.Total != want.Total {
		t.Fatalf("%s: shape (rows %d/%d) vs fresh (%d/%d)", label, got.Rows, got.Total, want.Rows, want.Total)
	}
	for i := range want.Estimates {
		if got.Valid[i] != want.Valid[i] {
			t.Fatalf("%s: snippet %d validity %v, fresh %v", label, i, got.Valid[i], want.Valid[i])
		}
		if got.Estimates[i] != want.Estimates[i] {
			t.Fatalf("%s: snippet %d estimate %+v, fresh %+v", label, i, got.Estimates[i], want.Estimates[i])
		}
	}
}

// TestProgressiveMatchesFreshPrefixScan is the core replay property: every
// increment a ProgressiveScan emits equals a fresh ViewAt scan of the same
// prefix bit-for-bit, for any fold worker count. The sample spans multiple
// complete work units (unitRows = 65536 rows) so the carried-fold, the
// parallel multi-unit fold and the mid-unit tail paths all execute.
func TestProgressiveMatchesFreshPrefixScan(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-unit sample build is slow")
	}
	tb := buildTable(t, 200000)
	sample, err := BuildSample(tb, 0.8, 0, 11) // 160k sample rows ≈ 2.4 units
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	snips := progressiveSnips(t, tb)
	view := e.Acquire()

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		ps := view.Progressive(snips)
		ps.SetWorkers(workers)
		if ps.Total() != view.SampleRows {
			t.Fatalf("workers=%d: Total=%d, want %d", workers, ps.Total(), view.SampleRows)
		}
		// Budgets chosen to land mid-block, mid-unit, exactly on a unit
		// boundary (65536, 131072) and at the full sample.
		for _, prefix := range []int{100, 4096, 5000, 40000, 65536, 70000, 131072, 150000, view.SampleRows} {
			inc := ps.Step(prefix)
			if inc.Rows != prefix {
				t.Fatalf("workers=%d: Step(%d) consumed %d rows", workers, prefix, inc.Rows)
			}
			fresh := e.ViewAt(view.BaseRows, view.SampleRows).EvalPrefix(snips, prefix)
			requireIncrementEqual(t, "workers="+itoa(workers)+" prefix="+itoa(prefix), inc, fresh)
			if inc.Final != (prefix == view.SampleRows) {
				t.Fatalf("workers=%d prefix=%d: Final=%v", workers, prefix, inc.Final)
			}
		}
		if !ps.Done() {
			t.Fatalf("workers=%d: not Done after consuming the sample", workers)
		}
	}
}

// TestProgressiveAcrossRebuildAndAppend: a generation swap (RebuildSample)
// and streamed appends landing mid-stream must not perturb a progressive
// scan pinned to the pre-swap view, and every increment must stay
// replayable through ViewAtGen at the original generation.
func TestProgressiveAcrossRebuildAndAppend(t *testing.T) {
	tb := buildTable(t, 30000)
	sample, err := BuildSample(tb, 0.5, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	snips := progressiveSnips(t, tb)
	view := e.Acquire()
	gen0, base0, rows0 := view.SampleGen, view.BaseRows, view.SampleRows

	ps := view.Progressive(snips)
	sched := PrefixSchedule(view.SampleRows, 512)
	var got []Increment
	for i, prefix := range sched {
		got = append(got, ps.Step(prefix))
		switch i {
		case 1:
			if _, err := e.Append(appendBatch(t, 4000, 77), 123); err != nil {
				t.Fatal(err)
			}
		case 2:
			if g, _ := e.RebuildSample(999, DefaultRebuildOptions()); g != gen0+1 {
				t.Fatalf("rebuild produced generation %d", g)
			}
		}
	}
	if e.Acquire().SampleGen != gen0+1 {
		t.Fatal("live view did not move to the new generation")
	}
	for i, inc := range got {
		replay := e.ViewAtGen(gen0, base0, rows0)
		if replay == nil {
			t.Fatal("ViewAtGen lost the pinned generation")
		}
		fresh := replay.EvalPrefix(snips, sched[i])
		requireIncrementEqual(t, "increment "+itoa(i), inc, fresh)
	}
}

// TestProgressiveRowAtATime: the legacy scan mode continues sequentially,
// so increments must also replay exactly (the mode travels with the view).
func TestProgressiveRowAtATime(t *testing.T) {
	tb := buildTable(t, 12000)
	sample, err := BuildSample(tb, 0.5, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	e.SetScanMode(ScanRowAtATime)
	snips := progressiveSnips(t, tb)
	view := e.Acquire()
	ps := view.Progressive(snips)
	for _, prefix := range PrefixSchedule(view.SampleRows, 100) {
		inc := ps.Step(prefix)
		fresh := e.ViewAt(view.BaseRows, view.SampleRows).EvalPrefix(snips, prefix)
		requireIncrementEqual(t, "row-mode prefix="+itoa(prefix), inc, fresh)
	}
}

// TestProgressiveStepClamps pins the Step contract: budgets never regress,
// overshoot clamps to the sample, and repeated terminal steps re-emit.
func TestProgressiveStepClamps(t *testing.T) {
	tb := buildTable(t, 5000)
	sample, err := BuildSample(tb, 0.4, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	snips := progressiveSnips(t, tb)
	ps := e.Acquire().Progressive(snips)
	a := ps.Step(1000)
	b := ps.Step(500) // regression: clamped to the 1000-row prefix
	if b.Rows != 1000 {
		t.Fatalf("backward step consumed %d rows", b.Rows)
	}
	requireIncrementEqual(t, "clamped re-emit", b, Increment{Estimates: a.Estimates, Valid: a.Valid, Rows: a.Rows, Total: a.Total})
	c := ps.Step(1 << 30) // overshoot: clamped to the sample
	if c.Rows != ps.Total() || !c.Final {
		t.Fatalf("overshoot step: rows=%d final=%v", c.Rows, c.Final)
	}
	d := ps.Step(ps.Total())
	requireIncrementEqual(t, "terminal re-emit", d, Increment{Estimates: c.Estimates, Valid: c.Valid, Rows: c.Rows, Total: c.Total})
}

// TestPrefixSchedule pins the doubling schedule shape.
func TestPrefixSchedule(t *testing.T) {
	cases := []struct {
		total, first int
		want         []int
	}{
		{0, 64, []int{0}},
		{50, 64, []int{50}},
		{64, 64, []int{64}},
		{1000, 100, []int{100, 200, 400, 800, 1000}},
		{1024, 256, []int{256, 512, 1024}},
	}
	for _, c := range cases {
		got := PrefixSchedule(c.total, c.first)
		if len(got) != len(c.want) {
			t.Fatalf("PrefixSchedule(%d,%d)=%v, want %v", c.total, c.first, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("PrefixSchedule(%d,%d)=%v, want %v", c.total, c.first, got, c.want)
			}
		}
	}
	if s := PrefixSchedule(10000, 0); s[0] != DefaultFirstPrefix {
		t.Fatalf("default first prefix: %v", s)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
