package aqp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
)

// Snapshot-isolated serving. A View is an immutable, internally consistent
// snapshot of everything one query evaluation reads: the base relation and
// the sample at a stable row count, plus the cost model and scan mode in
// force when it was acquired. Scans against a View take no locks, so any
// number of queries can run while Engine.Append lands new rows — or
// Engine.RebuildSample swaps in a new sample generation — behind them; a
// query pinned to a View observes exactly the prefix (and generation) that
// existed when the View was published, and never a torn mid-append state.
//
// Views are cheap: column data is shared with the live tables (appends only
// write past the captured lengths) and only the small per-block zone maps
// are copied. The engine caches the current View and republishes it when
// the table epochs move, so the steady-state Acquire is two atomic loads.

// View is a consistent snapshot of the engine's data and configuration.
type View struct {
	// Base is a frozen snapshot of the base relation.
	Base *storage.Table
	// Sample wraps a frozen snapshot of the sample data; its BaseRows is
	// the base cardinality captured at the same instant.
	Sample *Sample
	// Epoch is a monotone publication counter (0 for replay views built by
	// ViewAt/ViewAtGen). SampleGen names the sample generation (epoch-swap
	// rebuilds bump it); BaseRows/SampleRows identify the snapshot prefix.
	// The (SampleGen, BaseRows, SampleRows) triple is all a serial replay
	// needs to reconstruct this view later (Engine.ViewAtGen).
	Epoch      uint64
	SampleGen  uint64
	BaseRows   int
	SampleRows int

	baseEpoch   uint64
	sampleEpoch uint64
	cost        CostModel
	mode        ScanMode

	// stages receives scan-stage latencies. Only serving views published by
	// publishLocked carry it; replay views stay nil so audits are silent.
	stages obs.StageTimer
}

// observeScan reports one scan-stage duration; a nil timer costs one branch.
func (v *View) observeScan(mode string, grouped bool, start time.Time) {
	if v.stages != nil {
		v.stages.ObserveStage(obs.Stage{Name: obs.StageScan, Mode: mode, Grouped: grouped}, time.Since(start))
	}
}

// scanTable feeds rows [start, end) of one physical table into the
// accumulators using the view's scan mode. Global sample ranges go through
// View.scan (partition.go), which fans out over the per-stratum spans.
func (v *View) scanTable(data *storage.Table, accs []*accumulator, start, end int) {
	switch v.mode {
	case ScanRowAtATime:
		scanRows(data, accs, start, end)
	case ScanVectorizedPerSnippet:
		scanVectorized(data, accs, start, end, false)
	default:
		scanVectorized(data, accs, start, end, true)
	}
}

// Mode reports the scan mode the view was acquired under.
func (v *View) Mode() ScanMode { return v.mode }

// OnlineAggregate processes the sample batch by batch, invoking yield after
// every batch with refreshed estimates — the online-aggregation interface
// of §7 (deployment scenario 1). Iteration stops early when yield returns
// false ("users are satisfied with the current accuracy") or when the
// sample is exhausted.
func (v *View) OnlineAggregate(snips []*query.Snippet, yield func(BatchUpdate) bool) {
	accs := make([]*accumulator, len(snips))
	for i, sn := range snips {
		accs[i] = &accumulator{sn: sn, baseRows: v.Sample.BaseRows}
	}
	for b := 0; b < v.Sample.Batches(); b++ {
		start, end := v.Sample.BatchBounds(b)
		v.scan(accs, start, end)
		upd := BatchUpdate{
			Estimates:   make([]query.ScalarEstimate, len(accs)),
			Valid:       make([]bool, len(accs)),
			RowsScanned: end,
			SimTime:     v.cost.QueryTime(end),
			Batch:       b,
		}
		for i, a := range accs {
			upd.Estimates[i], upd.Valid[i] = a.estimate()
		}
		if !yield(upd) {
			return
		}
	}
}

// RunToCompletion consumes the whole sample and returns the final update.
func (v *View) RunToCompletion(snips []*query.Snippet) BatchUpdate {
	if v.stages != nil {
		defer v.observeScan(obs.ModeOneShot, false, time.Now())
	}
	var last BatchUpdate
	v.OnlineAggregate(snips, func(u BatchUpdate) bool {
		last = u
		return true
	})
	return last
}

// TimeBound evaluates the snippets within a simulated time budget,
// predicting the largest scannable prefix from the cost model (§7,
// deployment scenario 2, and Appendix C.2's NoLearn).
func (v *View) TimeBound(snips []*query.Snippet, budget time.Duration) BatchUpdate {
	if v.stages != nil {
		defer v.observeScan(obs.ModeOneShot, false, time.Now())
	}
	inc := v.EvalPrefix(snips, v.cost.RowsWithin(budget))
	return BatchUpdate{
		Estimates:   inc.Estimates,
		Valid:       inc.Valid,
		RowsScanned: inc.Rows,
		SimTime:     inc.SimTime,
	}
}

// Exact computes the snippet's exact answer on the view's base relation —
// the ground truth θ̄ experiments compare against. It always uses the
// vectorized block pipeline so the ground truth is scan-mode-independent.
func (v *View) Exact(sn *query.Snippet) float64 {
	if v.Base.Rows() == 0 {
		return 0
	}
	acc := &accumulator{sn: sn}
	scanVectorized(v.Base, []*accumulator{acc}, 0, v.Base.Rows(), true)
	return acc.moments.Mean()
}

// GroupRows discovers the distinct group values of a grouped statement by
// scanning the sample (ordered for determinism). It returns one empty group
// for ungrouped statements.
func (v *View) GroupRows(groupCols []int, region *query.Region) ([][]query.GroupValue, error) {
	if len(groupCols) == 0 {
		return [][]query.GroupValue{nil}, nil
	}
	seen := map[string][]query.GroupValue{}
	var keys []string
	for _, sp := range v.sampleSpans(0, v.SampleRows) {
		t := sp.tbl
		for row := sp.lo; row < sp.hi; row++ {
			if region != nil && !region.Matches(t, row) {
				continue
			}
			key := ""
			gvs := make([]query.GroupValue, len(groupCols))
			for i, col := range groupCols {
				def := t.Schema().Col(col)
				if def.Kind == storage.Categorical {
					s := t.StrAt(row, col)
					gvs[i] = query.GroupValue{Col: col, Str: s}
					key += "|" + s
				} else {
					n := t.NumAt(row, col)
					gvs[i] = query.GroupValue{Col: col, Num: n}
					key += "|" + fmt.Sprintf("%g", n)
				}
			}
			if _, ok := seen[key]; !ok {
				seen[key] = gvs
				keys = append(keys, key)
			}
		}
	}
	sort.Strings(keys)
	out := make([][]query.GroupValue, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out, nil
}

// Acquire returns the current published view, rebuilding it only when an
// append has moved a table epoch — or a rebuild has moved the sample
// generation — since the last publication. The fast path is lock-free: the
// Sample struct behind e.sample is immutable, so one pointer load yields a
// coherent (Gen, Data) pair to compare against the cached view.
func (e *Engine) Acquire() *View {
	if v := e.view.Load(); v != nil && e.viewCurrent(v) {
		return v
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.publishLocked()
}

// viewCurrent reports whether v still reflects the live tables, sample
// generation and scan mode.
func (e *Engine) viewCurrent(v *View) bool {
	smp := e.sample.Load()
	return v.baseEpoch == e.base.Epoch() &&
		v.SampleGen == smp.Gen &&
		v.sampleEpoch == smp.Data.Epoch() &&
		v.mode == e.mode
}

// publishLocked snapshots the live tables and stores the new view. Caller
// holds e.wmu, so the base/sample/BaseRows triple is coherent.
func (e *Engine) publishLocked() *View {
	if v := e.view.Load(); v != nil && e.viewCurrent(v) {
		return v
	}
	cur := e.sample.Load()
	base := e.base.Snapshot()
	data := cur.Data.Snapshot()
	smp := *cur
	smp.Data = data
	smp.BaseRows = base.Rows()
	v := &View{
		Base:        base,
		Sample:      &smp,
		Epoch:       e.viewEpoch.Add(1),
		SampleGen:   cur.Gen,
		BaseRows:    base.Rows(),
		SampleRows:  smp.Rows(),
		baseEpoch:   base.Epoch(),
		sampleEpoch: data.Epoch(),
		cost:        e.cost,
		mode:        e.mode,
		stages:      e.stages,
	}
	e.view.Store(v)
	return v
}

// ViewAt reconstructs the view that served a past query of the *current*
// sample generation from its recorded (BaseRows, SampleRows) prefix —
// tables are append-only within a generation, so the prefix snapshot taken
// now is row-for-row identical to the historical one. Serial replays use
// it to audit answers produced under concurrency. To replay a query served
// before a sample rebuild, use ViewAtGen with the result's SampleGen.
func (e *Engine) ViewAt(baseRows, sampleRows int) *View {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.viewAtLocked(e.sample.Load().Gen, baseRows, sampleRows)
}

// ViewAtGen reconstructs the view that served a past query from its
// recorded (SampleGen, BaseRows, SampleRows) triple, reaching back through
// retained retired sample generations: RebuildSample retires the old
// generation's table frozen, so its prefixes survive the live sample's
// re-layout. Returns nil for a generation that never existed — or one that
// has been evicted past the bounded replay horizon (SetMaxRetainedGens);
// use PinGen to distinguish the two and to hold a generation against
// eviction for the duration of a stream.
func (e *Engine) ViewAtGen(gen uint64, baseRows, sampleRows int) *View {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	cur := e.sample.Load()
	if gen > cur.Gen || (gen < cur.Gen && gen < e.retiredBase) {
		return nil
	}
	return e.viewAtLocked(gen, baseRows, sampleRows)
}

// PinGen reconstructs a replay view of generation gen like ViewAtGen and
// additionally pins the generation against eviction until release is
// called (refcounted; release is idempotent). Resumable streams hold their
// pin for the whole stream, so a MaxRetainedGens-bounded engine can never
// evict a generation mid-stream. Errors wrap ErrGenUnknown for a
// generation that never existed and ErrGenEvicted for one behind the
// replay horizon.
func (e *Engine) PinGen(gen uint64, baseRows, sampleRows int) (view *View, release func(), err error) {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	cur := e.sample.Load()
	if gen > cur.Gen {
		return nil, nil, fmt.Errorf("generation %d not yet created (live generation %d): %w", gen, cur.Gen, ErrGenUnknown)
	}
	if gen < cur.Gen && gen < e.retiredBase {
		// The typed error snapshots the horizon under this same lock
		// acquisition, so a 410 body built from it is self-consistent.
		return nil, nil, &GenEvictedError{Gen: gen, Horizon: e.replayHorizonLocked()}
	}
	v := e.viewAtLocked(gen, baseRows, sampleRows)
	e.pmu.Lock()
	e.pins[gen]++
	e.pmu.Unlock()
	return v, e.releaser(gen), nil
}

// AcquirePinned returns the current published view with its generation
// pinned against eviction until release is called — the entry point for
// fresh progressive streams. The fast path matches Acquire's: when the
// cached view is current, only the pin mutex is taken, so starting a
// stream never waits behind an O(sample) rebuild holding the writer lock.
func (e *Engine) AcquirePinned() (view *View, release func()) {
	if v := e.view.Load(); v != nil && e.viewCurrent(v) {
		e.pmu.Lock()
		// Re-check under pmu: a rebuild may have retired — and evicted —
		// this generation between the load and the pin. Eviction holds pmu
		// while it advances the horizon, so reading it here is race-free.
		if v.SampleGen >= e.retention.Load().horizon {
			e.pins[v.SampleGen]++
			e.pmu.Unlock()
			return v, e.releaser(v.SampleGen)
		}
		e.pmu.Unlock()
	}
	e.wmu.Lock()
	v := e.publishLocked()
	e.pmu.Lock()
	e.pins[v.SampleGen]++
	e.pmu.Unlock()
	e.wmu.Unlock()
	return v, e.releaser(v.SampleGen)
}

// releaser returns the idempotent unpin closure for one PinGen/
// AcquirePinned call. Dropping the last pin re-runs eviction, so a bound
// that was blocked by this pin is restored promptly rather than at the
// next rebuild.
func (e *Engine) releaser(gen uint64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			e.wmu.Lock()
			e.pmu.Lock()
			last := false
			if e.pins[gen]--; e.pins[gen] <= 0 {
				delete(e.pins, gen)
				last = true
			}
			e.pmu.Unlock()
			if last {
				e.evictLocked()
			}
			e.wmu.Unlock()
		})
	}
}

// viewAtLocked builds a replay view against generation gen. Caller holds
// e.wmu and guarantees gen exists and is retained.
func (e *Engine) viewAtLocked(gen uint64, baseRows, sampleRows int) *View {
	cur := e.sample.Load()
	src := cur
	if gen < cur.Gen {
		src = e.retired[gen-e.retiredBase]
	}
	base := e.base.SnapshotAt(baseRows)
	// For a partitioned generation the immutable strata carry the first
	// Parts.Rows() global positions; only the tail prefix varies with the
	// recorded sample row count.
	tailRows := sampleRows
	if src.Parts != nil {
		tailRows -= src.Parts.Rows()
		if tailRows < 0 {
			tailRows = 0
		}
	}
	data := src.Data.SnapshotAt(tailRows)
	smp := *src
	smp.Data = data
	smp.BaseRows = base.Rows()
	smp.Gen = gen
	return &View{
		Base:        base,
		Sample:      &smp,
		SampleGen:   gen,
		BaseRows:    base.Rows(),
		SampleRows:  smp.Rows(),
		baseEpoch:   base.Epoch(),
		sampleEpoch: data.Epoch(),
		cost:        e.cost,
		mode:        e.mode,
	}
}

// Append lands a batch of new rows: the base relation grows, a uniform
// subsample of the batch (at the engine's sampling fraction) extends the
// sample, and a fresh view is published. Concurrent queries pinned to older
// views are unaffected — they keep scanning their stable prefix. The batch
// may be built against its own Schema as long as column names and kinds
// match (AppendByName semantics). Returns how many batch rows entered the
// sample.
//
// New sampled rows land at the sample's tail, so the combined sample is a
// per-batch stratified uniform sample of the grown relation (each stratum
// drawn at the same fraction): full-sample estimates stay unbiased, while
// short online-aggregation prefixes skew toward older data until the next
// offline rebuild.
func (e *Engine) Append(batch *storage.Table, seed int64) (sampled int, err error) {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if batch.Rows() == 0 {
		return 0, nil
	}
	if err := e.base.AppendByName(batch); err != nil {
		return 0, err
	}
	cur := e.sample.Load()
	k := int(float64(batch.Rows())*cur.Fraction + 0.5)
	if k > batch.Rows() {
		k = batch.Rows()
	}
	if k > 0 {
		idx := randx.New(seed).Perm(batch.Rows())[:k]
		sort.Ints(idx) // deterministic order independent of Perm internals
		sub := batch.SelectRows(batch.Name()+"_sampled", idx)
		if err := cur.Data.AppendByName(sub); err != nil {
			return 0, err
		}
	}
	// Copy-on-write republication of the Sample struct: lock-free readers
	// of e.sample never observe the BaseRows update mid-write.
	ns := *cur
	ns.BaseRows = e.base.Rows()
	e.sample.Store(&ns)
	e.publishLocked()
	return k, nil
}
