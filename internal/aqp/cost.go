package aqp

import "time"

// CostModel simulates query latency for a storage tier.
type CostModel struct {
	// Name labels the tier in experiment output ("cached", "ssd").
	Name string
	// PlanOverhead is charged once per query: parsing, planning, catalog
	// access and task dispatch (the Spark overhead §8.3 discusses).
	PlanOverhead time.Duration
	// RowsPerSecond is the scan throughput of the tier.
	RowsPerSecond float64
	// VirtualRowFactor scales each physically scanned row to the paper's
	// data scale: the in-memory tables here are downscaled stand-ins for
	// 100 GB–536 GB datasets, so one local row represents this many
	// "virtual" rows when charging scan time.
	VirtualRowFactor float64
}

// ScanTime returns the simulated time to scan the given number of physical
// rows (excluding plan overhead).
func (c CostModel) ScanTime(rows int) time.Duration {
	if rows <= 0 || c.RowsPerSecond <= 0 {
		return 0
	}
	virtual := float64(rows) * c.effectiveFactor()
	return time.Duration(virtual / c.RowsPerSecond * float64(time.Second))
}

// QueryTime returns plan overhead plus scan time.
func (c CostModel) QueryTime(rows int) time.Duration {
	return c.PlanOverhead + c.ScanTime(rows)
}

// RowsWithin returns how many physical rows fit into the budget after plan
// overhead — the "largest sample size within the requested time bound" that
// time-bound engines predict (§7).
func (c CostModel) RowsWithin(budget time.Duration) int {
	avail := budget - c.PlanOverhead
	if avail <= 0 {
		return 0
	}
	rows := avail.Seconds() * c.RowsPerSecond / c.effectiveFactor()
	return int(rows)
}

func (c CostModel) effectiveFactor() float64 {
	if c.VirtualRowFactor <= 0 {
		return 1
	}
	return c.VirtualRowFactor
}

// Default tiers. The throughput ratio (memory ≈ 25× SSD) and the sizable
// fixed overhead follow the paper's observations: cached runs are dominated
// by Spark's per-query overhead while SSD runs are I/O bound.
var (
	// CachedCost models fully memory-resident samples.
	CachedCost = CostModel{
		Name:             "cached",
		PlanOverhead:     400 * time.Millisecond,
		RowsPerSecond:    25e6,
		VirtualRowFactor: 1,
	}
	// SSDCost models samples read from SSD-backed HDFS.
	SSDCost = CostModel{
		Name:             "ssd",
		PlanOverhead:     1200 * time.Millisecond,
		RowsPerSecond:    1e6,
		VirtualRowFactor: 1,
	}
)

// Scaled returns a copy charging each physical row as f virtual rows.
func (c CostModel) Scaled(f float64) CostModel {
	c.VirtualRowFactor = f
	return c
}
