package aqp

import (
	"fmt"

	"repro/internal/randx"
	"repro/internal/storage"
)

// Sample is an offline uniform random sample of a base relation, stored in
// random order so that any prefix is itself a uniform sample — the property
// online aggregation needs to refine answers batch by batch (§8.1's
// NoLearn "creates random samples of the original tables offline and splits
// them into multiple batches of tuples").
type Sample struct {
	// Data holds the sampled rows in shuffled order. For a partitioned
	// sample (Parts != nil) it holds only the unpartitioned tail: rows
	// appended after the last (re-)stratification, logically ordered after
	// every partitioned row. The global sample order is then the interleave
	// order of Parts followed by Data.
	Data *storage.Table
	// Parts, when non-nil, holds the stratified partitioned layout built by
	// the last rebuild (see storage.PartitionedSample). It is immutable;
	// appends land in Data.
	Parts *storage.PartitionedSample
	// Fraction is the sampling ratio |sample| / |base|.
	Fraction float64
	// BatchSize is the number of rows per online-aggregation batch.
	BatchSize int
	// BaseRows is the base relation's cardinality (the |r| in
	// COUNT(*) = FREQ(*) × table cardinality).
	BaseRows int
	// Gen is the sample generation: 0 for the offline-built sample, bumped
	// once per Engine.RebuildSample epoch swap. Within a generation the
	// sample table is append-only (prefixes are immortal, so ViewAt can
	// replay); across generations rows are re-laid-out and replays must
	// name the generation (Engine.ViewAtGen).
	Gen uint64
}

// DefaultBatches is how many batches a sample is split into when no batch
// size is specified.
const DefaultBatches = 20

// BuildSample draws a uniform random sample without replacement.
// fraction must be in (0, 1]; batch <= 0 selects Rows/DefaultBatches.
func BuildSample(base *storage.Table, fraction float64, batch int, seed int64) (*Sample, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("aqp: sample fraction %v out of (0,1]", fraction)
	}
	n := base.Rows()
	k := int(float64(n) * fraction)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rng := randx.New(seed)
	idx := rng.Perm(n)[:k]
	data := base.SelectRows(base.Name()+"_sample", idx)
	if batch <= 0 {
		batch = (k + DefaultBatches - 1) / DefaultBatches
		if batch < 1 {
			batch = 1
		}
	}
	return &Sample{Data: data, Fraction: fraction, BatchSize: batch, BaseRows: n}, nil
}

// Rows returns the total sample row count: all partitioned rows plus the
// unpartitioned tail. For an unpartitioned sample it is just Data.Rows().
func (s *Sample) Rows() int {
	n := s.Data.Rows()
	if s.Parts != nil {
		n += s.Parts.Rows()
	}
	return n
}

// DriftSource returns the sample rows as one contiguous table for the
// serving layer's drift estimator. Unpartitioned samples return Data
// directly; partitioned samples are materialized (strata in stratum order,
// then the tail) sharing dictionaries, so the concatenation is cheap
// relative to the covariance pass that consumes it.
func (s *Sample) DriftSource() *storage.Table {
	return s.materialize()
}

// materialize flattens the sample into one table in stratum-then-tail
// order, sharing dictionaries by reference. For an unpartitioned sample it
// returns Data itself.
func (s *Sample) materialize() *storage.Table {
	if s.Parts == nil {
		return s.Data
	}
	return storage.Concat(s.Data.Name(), append(s.Parts.StrataTables(), s.Data))
}

// Batches returns the number of batches in the sample.
func (s *Sample) Batches() int {
	if s.Rows() == 0 {
		return 0
	}
	return (s.Rows() + s.BatchSize - 1) / s.BatchSize
}

// BatchBounds returns the [start, end) row range of batch i.
func (s *Sample) BatchBounds(i int) (int, int) {
	start := i * s.BatchSize
	end := start + s.BatchSize
	if end > s.Rows() {
		end = s.Rows()
	}
	return start, end
}
