package aqp

import (
	"strconv"
	"strings"

	"repro/internal/query"
)

// GroupedStandingScan is the grouped counterpart of StandingScan: the
// carried groupedFold behind one continuous GROUP BY query. Complete
// batches fold into the carried per-group master accumulators once; the
// trailing partial batch folds into a clone at each Refresh. Group
// discovery is incremental — a dictionary code first seen in a new batch
// allocates its master with an AddZeros backfill over every previously
// folded row, and a carried group absent from a new unit gets the same
// backfill — so the emitted result is bit-identical to a fresh
// GroupedRunToCompletion over the whole sample (the fold replays the exact
// statement sequence of the single-shot loop; see StandingScan for the
// batch-granularity merge-tree argument, which carries over unchanged).
//
// Besides the (generation, scan mode, batch size) binding StandingScan
// checks, the carried fold is also only extendable when the refreshed
// grouped spec is arithmetically identical to the bound one: the base
// region bounds (appends can move domain-clipped bounds), the grouping
// columns, the code-packing shifts (dictionary growth past a power of two
// rewidths the packed keys) and the aggregate family. specKey fingerprints
// all four; on any mismatch Refresh reports false and the caller starts a
// fresh scan with one full fold.
type GroupedStandingScan struct {
	fold *groupedFold
	gs   *groupedScan

	bound   bool
	gen     uint64
	mode    ScanMode
	batch   int
	specKey string

	folded int // rows of complete batches folded into the carried masters
}

// NewGroupedStandingScan prepares empty carried state; the scan binds to a
// (view, spec) pair at the first Refresh.
func NewGroupedStandingScan() *GroupedStandingScan { return &GroupedStandingScan{} }

// Folded is the number of sample rows folded into the carried masters
// (complete batches only).
func (s *GroupedStandingScan) Folded() int { return s.folded }

// Bound reports whether the scan has folded against a view yet.
func (s *GroupedStandingScan) Bound() bool { return s.bound }

// groupedSpecKey fingerprints everything the carried fold's arithmetic
// depends on. Region.Key renders numeric bounds with %g (shortest
// round-trip), so equal keys imply bit-equal bounds — the same guarantee
// snippet keys give sameSnippets on the ungrouped path.
func groupedSpecKey(spec *query.GroupedSpec) string {
	var sb strings.Builder
	sb.WriteString(spec.Base.Key(spec.Table))
	for _, col := range spec.GroupCols {
		sb.WriteString("|g")
		sb.WriteString(strconv.Itoa(col))
	}
	for _, sh := range spec.Shifts {
		sb.WriteString("|s")
		sb.WriteString(strconv.Itoa(int(sh)))
	}
	for _, sn := range spec.Family {
		sb.WriteString("|f")
		sb.WriteString(sn.Func().String())
	}
	return sb.String()
}

// Refresh extends the fold to cover v's full sample and returns the
// grouped result — bit-identical to v.GroupedRunToCompletion(spec, nmax).
// ok=false means v or spec is incompatible with the carried state
// (different generation, scan mode, batch size, a shrunken sample, or a
// spec whose fingerprint drifted): the caller must start a fresh
// GroupedStandingScan and pay one full fold.
func (s *GroupedStandingScan) Refresh(v *View, spec *query.GroupedSpec, nmax int) (*GroupedResult, bool) {
	if nmax <= 0 {
		nmax = query.DefaultNmax
	}
	key := groupedSpecKey(spec)
	if !s.bound {
		s.bound = true
		s.gen, s.mode, s.batch = v.SampleGen, v.mode, v.Sample.BatchSize
		s.specKey = key
		s.fold = newGroupedFold()
		s.gs = newDiscoverScan(spec)
	} else if v.SampleGen != s.gen || v.mode != s.mode || v.Sample.BatchSize != s.batch ||
		v.SampleRows < s.folded || key != s.specKey {
		return nil, false
	} else {
		// Recompile against the refreshed spec: the fingerprint pinned the
		// bounds bit-equal, but the new spec carries the re-bound region and
		// re-decomposed family the result's estimates must reference.
		s.gs = newDiscoverScan(spec)
	}

	n := v.SampleRows
	complete := n - n%s.batch
	for start := s.folded; start < complete; start += s.batch {
		for _, sp := range v.sampleSpans(start, start+s.batch) {
			s.fold.foldRange(sp.tbl, s.gs, sp.lo, sp.hi)
		}
	}
	s.folded = complete

	emit := s.fold
	if n > complete {
		// The trailing partial batch folds into a clone: its bounds grow
		// with the next append, and the vectorized fold of the grown range
		// is not the fold of the old range plus the delta.
		emit = s.fold.clone()
		for _, sp := range v.sampleSpans(complete, n) {
			emit.foldRange(sp.tbl, s.gs, sp.lo, sp.hi)
		}
	}

	lastBatch := v.Sample.Batches() - 1
	if lastBatch < 0 {
		lastBatch = 0
	}
	return emit.result(v, s.gs, spec, nmax, lastBatch), true
}
