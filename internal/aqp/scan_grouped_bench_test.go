package aqp

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/query"
)

// benchGroupedRows is sized so the 256-group case meets the issue's 1M-row
// speedup criterion; override locally with -short for quick iteration.
const benchGroupedRows = 1 << 20

type groupedBenchFixture struct {
	grouped *Engine
	perSnip *Engine
	snips   []*query.Snippet
}

var (
	groupedBenchMu    sync.Mutex
	groupedBenchCache = map[string]*groupedBenchFixture{}
)

// groupedBenchSetup builds (once per case) a rows-row table, a full-fraction
// single-batch sample preserving the table's layout, one engine per scan
// mode, and the decomposed snippets of a GROUP BY cat aggregate.
func groupedBenchSetup(b *testing.B, rows, groups int, clustered bool) *groupedBenchFixture {
	b.Helper()
	key := fmt.Sprintf("%d/%d/%v", rows, groups, clustered)
	groupedBenchMu.Lock()
	defer groupedBenchMu.Unlock()
	if fx, ok := groupedBenchCache[key]; ok {
		return fx
	}
	tb := buildGroupedTable(b, rows, groups, clustered)
	sample := &Sample{Data: tb, Fraction: 1, BatchSize: tb.Rows(), BaseRows: tb.Rows()}
	fx := &groupedBenchFixture{
		grouped: NewEngine(tb, sample, CachedCost),
		perSnip: NewEngine(tb, sample, CachedCost),
	}
	fx.grouped.SetScanMode(ScanVectorized)
	fx.perSnip.SetScanMode(ScanVectorizedPerSnippet)
	fx.snips = groupedSnips(b, fx.grouped.Acquire(), tb,
		"SELECT cat, AVG(val), COUNT(*) FROM t GROUP BY cat")
	groupedBenchCache[key] = fx
	return fx
}

// BenchmarkGroupedScan compares the one-scan grouped kernel against the
// per-snippet ablation across group counts and layouts. The interesting
// ratio is grouped vs persnippet at high group counts: the ablation rescans
// the sample once per (group × aggregate) snippet while the grouped kernel
// pays one pass total.
func BenchmarkGroupedScan(b *testing.B) {
	rows := benchGroupedRows
	if testing.Short() {
		rows = 1 << 16
	}
	for _, groups := range []int{1, 16, 256} {
		for _, clustered := range []bool{true, false} {
			layout := "clustered"
			if !clustered {
				layout = "shuffled"
			}
			for _, mode := range []string{"grouped", "persnippet"} {
				b.Run(fmt.Sprintf("groups=%d/%s/%s", groups, layout, mode), func(b *testing.B) {
					fx := groupedBenchSetup(b, rows, groups, clustered)
					eng := fx.grouped
					if mode == "persnippet" {
						eng = fx.perSnip
					}
					v := eng.Acquire()
					b.SetBytes(int64(rows) * 8)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						v.RunToCompletion(fx.snips)
					}
				})
			}
		}
	}
}
