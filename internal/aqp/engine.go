package aqp

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mathx"
	"repro/internal/query"
	"repro/internal/storage"
)

// Engine is the black-box AQP engine: it evaluates query snippets on a
// uniform sample and reports raw answers with CLT-based expected errors —
// exactly the (θ, β) contract §3.1 assumes, where β² is the expectation of
// the squared deviation of θ from the exact answer.
//
// The engine is safe for concurrent use: every read path runs against a
// published immutable View (see view.go), and Append serializes writers
// while queries keep scanning the stable prefix they pinned.
type Engine struct {
	base *storage.Table
	cost CostModel
	mode ScanMode

	// sample points at the current-generation Sample. The struct behind the
	// pointer is immutable once stored: Append and RebuildSample build a
	// fresh Sample (copy-on-write) and swap the pointer under wmu, so the
	// lock-free view fast path always reads a coherent (Gen, Data) pair.
	sample atomic.Pointer[Sample]

	// wmu serializes writers (Append, RebuildSample) and view publication;
	// view caches the current snapshot, republished whenever a table epoch
	// or the sample generation moves. retired[g] is the frozen final state
	// of sample generation g (see RebuildSample); the invariant is
	// sample.Load().Gen == uint64(len(retired)).
	wmu       sync.Mutex
	view      atomic.Pointer[View]
	viewEpoch atomic.Uint64
	retired   []*storage.Table
}

// NewEngine wires a base relation, its offline sample and a cost model. The
// engine scans with the vectorized block pipeline by default; see
// SetScanMode.
func NewEngine(base *storage.Table, sample *Sample, cost CostModel) *Engine {
	e := &Engine{base: base, cost: cost}
	e.sample.Store(sample)
	return e
}

// SetScanMode switches between the vectorized block scan (default) and the
// legacy row-at-a-time scan (baseline/ablation). Not safe to call while
// queries are in flight.
func (e *Engine) SetScanMode(m ScanMode) {
	e.mode = m
	e.view.Store(nil) // republish with the new mode on next Acquire
}

// ScanMode returns the active scan implementation.
func (e *Engine) ScanMode() ScanMode { return e.mode }

// Base returns the underlying live relation. Concurrent consumers should
// prefer Acquire().Base.
func (e *Engine) Base() *storage.Table { return e.base }

// Sample returns the live current-generation sample. Concurrent consumers
// should prefer Acquire().Sample.
func (e *Engine) Sample() *Sample { return e.sample.Load() }

// Cost returns the engine's cost model.
func (e *Engine) Cost() CostModel { return e.cost }

// accumulator tracks one snippet's running estimate across batches.
type accumulator struct {
	sn       *query.Snippet
	moments  mathx.Moments // measure values (AVG) or 0/1 indicators (FREQ)
	scanned  int           // rows examined so far (match or not)
	baseRows int           // base-relation cardinality, for PopErr
}

func (a *accumulator) observe(t *storage.Table, row int) {
	a.scanned++
	match := a.sn.Region.Matches(t, row)
	switch a.sn.Kind {
	case query.FreqAgg:
		if match {
			a.moments.Add(1)
		} else {
			a.moments.Add(0)
		}
	case query.AvgAgg:
		if match {
			a.moments.Add(a.sn.Measure(t, row))
		}
	}
}

// minAvgRows is the fewest matching rows before an AVG estimate is
// considered usable; below this the sample variance itself is too noisy
// for a meaningful expected error.
const minAvgRows = 5

// estimate converts the accumulated moments into (θ, β). For AVG the CLT
// standard error is over matching rows, inflated by a Student-t correction
// at small counts (the plug-in sample variance understates the expected
// error there — the kind of estimator overconfidence the paper's
// diagnostics reference [5] addresses); for FREQ it is the binomial
// standard error over all scanned rows. ok=false means no usable
// information yet.
func (a *accumulator) estimate() (query.ScalarEstimate, bool) {
	n := a.moments.Count()
	switch a.sn.Kind {
	case query.FreqAgg:
		if n < 2 {
			return query.ScalarEstimate{}, false
		}
		p := a.moments.Mean()
		popErr := 0.0
		if a.baseRows > 0 {
			popErr = math.Sqrt(math.Max(p*(1-p), 0) / float64(a.baseRows))
		}
		return query.ScalarEstimate{
			Value:  p,
			StdErr: a.moments.StdErr(),
			PopErr: popErr,
		}, true
	default:
		if n < minAvgRows {
			return query.ScalarEstimate{}, false
		}
		// t-quantile to normal-quantile ratio, ≈ 1 + 1.5/ν.
		inflate := 1 + 1.5/float64(n-1)
		popErr := 0.0
		if a.baseRows > 0 && a.scanned > 0 {
			// Estimated matching rows in the base relation.
			matchN := float64(n) / float64(a.scanned) * float64(a.baseRows)
			if matchN < float64(n) {
				matchN = float64(n)
			}
			popErr = math.Sqrt(a.moments.SampleVariance() / matchN)
		}
		return query.ScalarEstimate{
			Value:  a.moments.Mean(),
			StdErr: a.moments.StdErr() * inflate,
			PopErr: popErr,
		}, true
	}
}

// BatchUpdate is one online-aggregation step: the current estimates for all
// snippets after some prefix of batches, with the simulated time spent so
// far (plan overhead included).
type BatchUpdate struct {
	// Estimates holds the per-snippet raw answers; Valid[i] is false while
	// snippet i has no usable estimate yet.
	Estimates []query.ScalarEstimate
	Valid     []bool
	// RowsScanned counts sample rows consumed so far.
	RowsScanned int
	// SimTime is the simulated elapsed time (§ DESIGN.md substitution).
	SimTime time.Duration
	// Batch is the 0-based index of the batch just consumed.
	Batch int
}

// OnlineAggregate processes the sample batch by batch against the current
// view, invoking yield after every batch with refreshed estimates — the
// online-aggregation interface of §7 (deployment scenario 1).
func (e *Engine) OnlineAggregate(snips []*query.Snippet, yield func(BatchUpdate) bool) {
	e.Acquire().OnlineAggregate(snips, yield)
}

// RunToCompletion consumes the whole sample and returns the final update.
func (e *Engine) RunToCompletion(snips []*query.Snippet) BatchUpdate {
	return e.Acquire().RunToCompletion(snips)
}

// TimeBound evaluates the snippets within a simulated time budget against
// the current view (§7, deployment scenario 2, and Appendix C.2's NoLearn).
func (e *Engine) TimeBound(snips []*query.Snippet, budget time.Duration) BatchUpdate {
	return e.Acquire().TimeBound(snips, budget)
}

// parallelThreshold is the snippet count past which the row-at-a-time scan
// fans out across goroutines. Snippets are independent (each owns its
// accumulator), so partitioning them is race-free; below the threshold the
// goroutine overhead exceeds the win.
const parallelThreshold = 8

// Exact computes the snippet's exact answer on the base relation — the
// ground truth θ̄ experiments compare against. It reuses the vectorized
// block pipeline (always, regardless of the engine's scan mode, so the
// ground truth is scan-mode-independent): a FREQ accumulator's indicator
// mean is the matching fraction and an AVG accumulator's mean is the
// matched-value mean, which is exactly the definition of θ̄.
func (e *Engine) Exact(sn *query.Snippet) float64 {
	return e.Acquire().Exact(sn)
}

// GroupRows discovers the distinct group values of a grouped statement by
// scanning the sample (ordered for determinism). It returns one empty group
// for ungrouped statements.
func (e *Engine) GroupRows(groupCols []int, region *query.Region) ([][]query.GroupValue, error) {
	return e.Acquire().GroupRows(groupCols, region)
}

// AnswerCache implements the paper's Baseline2 (Appendix C.1): it memoizes
// past snippet answers by canonical key and replays the lowest-error answer
// for an identical snippet, providing no benefit to novel snippets.
type AnswerCache struct {
	byKey map[string]query.ScalarEstimate
}

// NewAnswerCache returns an empty cache.
func NewAnswerCache() *AnswerCache {
	return &AnswerCache{byKey: make(map[string]query.ScalarEstimate)}
}

// Lookup returns the cached answer for an identical snippet, if any.
func (c *AnswerCache) Lookup(sn *query.Snippet) (query.ScalarEstimate, bool) {
	est, ok := c.byKey[sn.Key()]
	return est, ok
}

// Store records an answer, keeping the lowest-error instance ("when there
// are multiple instances of the same query, Baseline2 caches the one with
// the lowest expected error").
func (c *AnswerCache) Store(sn *query.Snippet, est query.ScalarEstimate) {
	key := sn.Key()
	if old, ok := c.byKey[key]; !ok || est.StdErr < old.StdErr {
		c.byKey[key] = est
	}
}

// Len returns the number of cached snippets.
func (c *AnswerCache) Len() int { return len(c.byKey) }

// Sanitize clamps non-finite error estimates; online aggregation can yield
// +Inf standard errors before two matching rows arrive.
func Sanitize(est query.ScalarEstimate) query.ScalarEstimate {
	if math.IsNaN(est.Value) {
		est.Value = 0
	}
	if math.IsNaN(est.StdErr) || math.IsInf(est.StdErr, 0) {
		est.StdErr = math.MaxFloat64
	}
	if math.IsNaN(est.PopErr) || math.IsInf(est.PopErr, 0) {
		est.PopErr = 0
	}
	return est
}
