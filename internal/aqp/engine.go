package aqp

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/storage"
)

// Engine is the black-box AQP engine: it evaluates query snippets on a
// uniform sample and reports raw answers with CLT-based expected errors —
// exactly the (θ, β) contract §3.1 assumes, where β² is the expectation of
// the squared deviation of θ from the exact answer.
//
// The engine is safe for concurrent use: every read path runs against a
// published immutable View (see view.go), and Append serializes writers
// while queries keep scanning the stable prefix they pinned.
type Engine struct {
	base   *storage.Table
	cost   CostModel
	mode   ScanMode
	stages obs.StageTimer // nil disables scan-stage timing

	// sample points at the current-generation Sample. The struct behind the
	// pointer is immutable once stored: Append and RebuildSample build a
	// fresh Sample (copy-on-write) and swap the pointer under wmu, so the
	// lock-free view fast path always reads a coherent (Gen, Data) pair.
	sample atomic.Pointer[Sample]

	// wmu serializes writers (Append, RebuildSample) and view publication;
	// view caches the current snapshot, republished whenever a table epoch
	// or the sample generation moves. retired holds the frozen final states
	// of retained sample generations (see RebuildSample): retired[i] is
	// generation retiredBase+i, and the invariant is
	// sample.Load().Gen == retiredBase + uint64(len(retired)).
	//
	// maxRetained bounds len(retired): once a rebuild would push past it,
	// the oldest retired generations are evicted (their tables released)
	// oldest-first — except generations pinned by a live stream (pins
	// refcounts by generation; PinGen/AcquirePinned), which always survive
	// until released. 0 keeps every generation (immortal replay).
	wmu         sync.Mutex
	view        atomic.Pointer[View]
	viewEpoch   atomic.Uint64
	retired     []*Sample
	retiredBase uint64
	maxRetained int

	// layout is the default RebuildSample layout (SetSampleLayout), applied
	// by serving-layer rebuilds that do not override it per call.
	layout RebuildOptions

	// pmu guards pins and orders pinning against eviction without the
	// writer lock: AcquirePinned's fast path pins the published view's
	// generation under pmu alone (so starting a stream never waits behind
	// an O(sample) rebuild holding wmu), while evictLocked — called under
	// wmu — holds pmu for its whole evict-and-republish step. Either a pin
	// lands before the evictor reads the map (the generation survives) or
	// the evictor publishes the advanced horizon first and the pinner,
	// checking it under the same pmu, falls back to the slow path. Lock
	// order is always wmu → pmu.
	pmu  sync.Mutex
	pins map[uint64]int

	// retention is a lock-free snapshot of (horizon, retained, bound),
	// republished by evictLocked whenever any of the three can move, so
	// /stats never blocks behind a rebuild holding wmu.
	retention atomic.Pointer[retentionStat]
}

type retentionStat struct {
	horizon  uint64
	retained int
	max      int
}

// ErrGenEvicted reports a replay or resume request for a sample generation
// that existed but has been evicted past the bounded replay horizon (see
// SetMaxRetainedGens). Callers should restart from the live generation.
// Errors carrying it are *GenEvictedError, which names the horizon.
var ErrGenEvicted = errors.New("aqp: sample generation evicted behind the replay horizon")

// ErrGenUnknown reports a request for a sample generation that has never
// existed on this engine.
var ErrGenUnknown = errors.New("aqp: sample generation does not exist")

// GenEvictedError is the concrete behind-horizon error: it carries the
// horizon observed under the same lock acquisition that rejected the
// generation, so callers (the serving layer's 410 body) can report a
// horizon consistent with the message. errors.Is(err, ErrGenEvicted)
// matches it.
type GenEvictedError struct {
	Gen     uint64
	Horizon uint64
}

func (e *GenEvictedError) Error() string {
	return fmt.Sprintf("aqp: generation %d evicted (replay horizon is %d)", e.Gen, e.Horizon)
}

// Is makes errors.Is(err, ErrGenEvicted) succeed.
func (e *GenEvictedError) Is(target error) bool { return target == ErrGenEvicted }

// NewEngine wires a base relation, its offline sample and a cost model. The
// engine scans with the vectorized block pipeline by default; see
// SetScanMode.
func NewEngine(base *storage.Table, sample *Sample, cost CostModel) *Engine {
	e := &Engine{base: base, cost: cost, pins: make(map[uint64]int), layout: DefaultRebuildOptions()}
	e.sample.Store(sample)
	e.retention.Store(&retentionStat{horizon: sample.Gen})
	return e
}

// SetMaxRetainedGens bounds how many retired sample generations the engine
// keeps for replay. 0 (the default) retains every generation — immortal
// replay prefixes at the cost of one sample-sized table per rebuild. A
// positive bound evicts oldest-first whenever a rebuild (or a lowered
// bound) pushes past it, skipping nothing: eviction stops at the first
// still-pinned generation, so a live stream's generation is never dropped
// under pressure. Evicted generations fail ViewAtGen/PinGen with
// ErrGenEvicted; ReplayHorizon reports the oldest still-replayable one.
func (e *Engine) SetMaxRetainedGens(n int) {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	e.maxRetained = n
	e.evictLocked()
}

// MaxRetainedGens returns the configured retention bound (0 = unbounded).
// Lock-free.
func (e *Engine) MaxRetainedGens() int {
	return e.retention.Load().max
}

// evictLocked drops the oldest retired generations until the retained set
// fits maxRetained, never evicting past a pinned generation, then
// republishes the lock-free retention snapshot. Caller holds e.wmu; every
// mutation of the retention state (rebuild, bound change, pin release)
// funnels through here so the snapshot can never go stale.
func (e *Engine) evictLocked() {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	if e.maxRetained > 0 {
		for len(e.retired) > e.maxRetained {
			if e.pins[e.retiredBase] > 0 {
				// Oldest-first means a pinned generation blocks eviction of
				// everything newer too; the bound is restored when it
				// releases.
				break
			}
			e.retired[0] = nil // release the table to the GC
			e.retired = e.retired[1:]
			e.retiredBase++
		}
	}
	e.retention.Store(&retentionStat{
		horizon:  e.replayHorizonLocked(),
		retained: len(e.retired),
		max:      e.maxRetained,
	})
}

// PinnedGens is the number of sample generations currently pinned against
// eviction by live streams or standing subscriptions — a leak detector for
// tests: it must return to zero once every stream has ended and every
// subscription has been torn down.
func (e *Engine) PinnedGens() int {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	return len(e.pins)
}

// ReplayHorizon is the oldest sample generation still replayable through
// ViewAtGen/PinGen: retiredBase while retired generations remain, else the
// live generation. Lock-free.
func (e *Engine) ReplayHorizon() uint64 {
	return e.retention.Load().horizon
}

func (e *Engine) replayHorizonLocked() uint64 {
	if len(e.retired) > 0 {
		return e.retiredBase
	}
	return e.sample.Load().Gen
}

// RetainedGens is the number of retired generations currently held for
// replay (the live generation is not counted). Lock-free.
func (e *Engine) RetainedGens() int {
	return e.retention.Load().retained
}

// RetentionStats returns the replay horizon, the retained retired-
// generation count and the configured bound as one coherent snapshot.
// Lock-free: /stats reads it without ever waiting behind a rebuild
// holding the writer lock.
func (e *Engine) RetentionStats() (horizon uint64, retained, maxRetained int) {
	r := e.retention.Load()
	return r.horizon, r.retained, r.max
}

// SetScanMode switches between the vectorized block scan (default) and the
// legacy row-at-a-time scan (baseline/ablation). Not safe to call while
// queries are in flight.
func (e *Engine) SetScanMode(m ScanMode) {
	e.mode = m
	e.view.Store(nil) // republish with the new mode on next Acquire
}

// ScanMode returns the active scan implementation.
func (e *Engine) ScanMode() ScanMode { return e.mode }

// SetStageTimer installs the scan-stage latency sink. Serving views
// publish with it; replay views (ViewAt/ViewAtGen/PinGen) never carry it,
// so audit re-scans don't pollute the serving distributions. A nil timer
// (the default) reduces instrumentation to one branch per entry point —
// benchmarks and library callers pay nothing. Like SetScanMode, set it at
// boot: not safe to call while queries are in flight.
func (e *Engine) SetStageTimer(t obs.StageTimer) {
	e.stages = t
	e.view.Store(nil) // republish with the timer on next Acquire
}

// Base returns the underlying live relation. Concurrent consumers should
// prefer Acquire().Base.
func (e *Engine) Base() *storage.Table { return e.base }

// Sample returns the live current-generation sample. Concurrent consumers
// should prefer Acquire().Sample.
func (e *Engine) Sample() *Sample { return e.sample.Load() }

// Cost returns the engine's cost model.
func (e *Engine) Cost() CostModel { return e.cost }

// accumulator tracks one snippet's running estimate across batches.
type accumulator struct {
	sn       *query.Snippet
	moments  mathx.Moments // measure values (AVG) or 0/1 indicators (FREQ)
	scanned  int           // rows examined so far (match or not)
	baseRows int           // base-relation cardinality, for PopErr
}

func (a *accumulator) observe(t *storage.Table, row int) {
	a.scanned++
	match := a.sn.Region.Matches(t, row)
	switch a.sn.Kind {
	case query.FreqAgg:
		if match {
			a.moments.Add(1)
		} else {
			a.moments.Add(0)
		}
	case query.AvgAgg:
		if match {
			a.moments.Add(a.sn.Measure(t, row))
		}
	}
}

// minAvgRows is the fewest matching rows before an AVG estimate is
// considered usable; below this the sample variance itself is too noisy
// for a meaningful expected error.
const minAvgRows = 5

// estimate converts the accumulated moments into (θ, β). For AVG the CLT
// standard error is over matching rows, inflated by a Student-t correction
// at small counts (the plug-in sample variance understates the expected
// error there — the kind of estimator overconfidence the paper's
// diagnostics reference [5] addresses); for FREQ it is the binomial
// standard error over all scanned rows. ok=false means no usable
// information yet.
func (a *accumulator) estimate() (query.ScalarEstimate, bool) {
	n := a.moments.Count()
	switch a.sn.Kind {
	case query.FreqAgg:
		if n < 2 {
			return query.ScalarEstimate{}, false
		}
		p := a.moments.Mean()
		popErr := 0.0
		if a.baseRows > 0 {
			popErr = math.Sqrt(math.Max(p*(1-p), 0) / float64(a.baseRows))
		}
		return query.ScalarEstimate{
			Value:  p,
			StdErr: a.moments.StdErr(),
			PopErr: popErr,
		}, true
	default:
		if n < minAvgRows {
			return query.ScalarEstimate{}, false
		}
		// t-quantile to normal-quantile ratio, ≈ 1 + 1.5/ν.
		inflate := 1 + 1.5/float64(n-1)
		popErr := 0.0
		if a.baseRows > 0 && a.scanned > 0 {
			// Estimated matching rows in the base relation.
			matchN := float64(n) / float64(a.scanned) * float64(a.baseRows)
			if matchN < float64(n) {
				matchN = float64(n)
			}
			popErr = math.Sqrt(a.moments.SampleVariance() / matchN)
		}
		return query.ScalarEstimate{
			Value:  a.moments.Mean(),
			StdErr: a.moments.StdErr() * inflate,
			PopErr: popErr,
		}, true
	}
}

// BatchUpdate is one online-aggregation step: the current estimates for all
// snippets after some prefix of batches, with the simulated time spent so
// far (plan overhead included).
type BatchUpdate struct {
	// Estimates holds the per-snippet raw answers; Valid[i] is false while
	// snippet i has no usable estimate yet.
	Estimates []query.ScalarEstimate
	Valid     []bool
	// RowsScanned counts sample rows consumed so far.
	RowsScanned int
	// SimTime is the simulated elapsed time (§ DESIGN.md substitution).
	SimTime time.Duration
	// Batch is the 0-based index of the batch just consumed.
	Batch int
}

// OnlineAggregate processes the sample batch by batch against the current
// view, invoking yield after every batch with refreshed estimates — the
// online-aggregation interface of §7 (deployment scenario 1).
func (e *Engine) OnlineAggregate(snips []*query.Snippet, yield func(BatchUpdate) bool) {
	e.Acquire().OnlineAggregate(snips, yield)
}

// RunToCompletion consumes the whole sample and returns the final update.
func (e *Engine) RunToCompletion(snips []*query.Snippet) BatchUpdate {
	return e.Acquire().RunToCompletion(snips)
}

// TimeBound evaluates the snippets within a simulated time budget against
// the current view (§7, deployment scenario 2, and Appendix C.2's NoLearn).
func (e *Engine) TimeBound(snips []*query.Snippet, budget time.Duration) BatchUpdate {
	return e.Acquire().TimeBound(snips, budget)
}

// parallelThreshold is the snippet count past which the row-at-a-time scan
// fans out across goroutines. Snippets are independent (each owns its
// accumulator), so partitioning them is race-free; below the threshold the
// goroutine overhead exceeds the win.
const parallelThreshold = 8

// Exact computes the snippet's exact answer on the base relation — the
// ground truth θ̄ experiments compare against. It reuses the vectorized
// block pipeline (always, regardless of the engine's scan mode, so the
// ground truth is scan-mode-independent): a FREQ accumulator's indicator
// mean is the matching fraction and an AVG accumulator's mean is the
// matched-value mean, which is exactly the definition of θ̄.
func (e *Engine) Exact(sn *query.Snippet) float64 {
	return e.Acquire().Exact(sn)
}

// GroupRows discovers the distinct group values of a grouped statement by
// scanning the sample (ordered for determinism). It returns one empty group
// for ungrouped statements.
func (e *Engine) GroupRows(groupCols []int, region *query.Region) ([][]query.GroupValue, error) {
	return e.Acquire().GroupRows(groupCols, region)
}

// AnswerCache implements the paper's Baseline2 (Appendix C.1): it memoizes
// past snippet answers by canonical key and replays the lowest-error answer
// for an identical snippet, providing no benefit to novel snippets.
type AnswerCache struct {
	byKey map[string]query.ScalarEstimate
}

// NewAnswerCache returns an empty cache.
func NewAnswerCache() *AnswerCache {
	return &AnswerCache{byKey: make(map[string]query.ScalarEstimate)}
}

// Lookup returns the cached answer for an identical snippet, if any.
func (c *AnswerCache) Lookup(sn *query.Snippet) (query.ScalarEstimate, bool) {
	est, ok := c.byKey[sn.Key()]
	return est, ok
}

// Store records an answer, keeping the lowest-error instance ("when there
// are multiple instances of the same query, Baseline2 caches the one with
// the lowest expected error").
func (c *AnswerCache) Store(sn *query.Snippet, est query.ScalarEstimate) {
	key := sn.Key()
	if old, ok := c.byKey[key]; !ok || est.StdErr < old.StdErr {
		c.byKey[key] = est
	}
}

// Len returns the number of cached snippets.
func (c *AnswerCache) Len() int { return len(c.byKey) }

// Sanitize clamps non-finite error estimates; online aggregation can yield
// +Inf standard errors before two matching rows arrive.
func Sanitize(est query.ScalarEstimate) query.ScalarEstimate {
	if math.IsNaN(est.Value) {
		est.Value = 0
	}
	if math.IsNaN(est.StdErr) || math.IsInf(est.StdErr, 0) {
		est.StdErr = math.MaxFloat64
	}
	if math.IsNaN(est.PopErr) || math.IsInf(est.PopErr, 0) {
		est.PopErr = 0
	}
	return est
}
