package aqp

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/mathx"
	"repro/internal/query"
	"repro/internal/storage"
)

// Engine is the black-box AQP engine: it evaluates query snippets on a
// uniform sample and reports raw answers with CLT-based expected errors —
// exactly the (θ, β) contract §3.1 assumes, where β² is the expectation of
// the squared deviation of θ from the exact answer.
type Engine struct {
	base   *storage.Table
	sample *Sample
	cost   CostModel
	mode   ScanMode
}

// NewEngine wires a base relation, its offline sample and a cost model. The
// engine scans with the vectorized block pipeline by default; see
// SetScanMode.
func NewEngine(base *storage.Table, sample *Sample, cost CostModel) *Engine {
	return &Engine{base: base, sample: sample, cost: cost}
}

// SetScanMode switches between the vectorized block scan (default) and the
// legacy row-at-a-time scan (baseline/ablation).
func (e *Engine) SetScanMode(m ScanMode) { e.mode = m }

// ScanMode returns the active scan implementation.
func (e *Engine) ScanMode() ScanMode { return e.mode }

// scan feeds rows [start, end) of data into the accumulators using the
// configured implementation.
func (e *Engine) scan(data *storage.Table, accs []*accumulator, start, end int) {
	if e.mode == ScanRowAtATime {
		scanRows(data, accs, start, end)
		return
	}
	scanVectorized(data, accs, start, end)
}

// Base returns the underlying relation.
func (e *Engine) Base() *storage.Table { return e.base }

// Sample returns the offline sample.
func (e *Engine) Sample() *Sample { return e.sample }

// Cost returns the engine's cost model.
func (e *Engine) Cost() CostModel { return e.cost }

// accumulator tracks one snippet's running estimate across batches.
type accumulator struct {
	sn       *query.Snippet
	moments  mathx.Moments // measure values (AVG) or 0/1 indicators (FREQ)
	scanned  int           // rows examined so far (match or not)
	baseRows int           // base-relation cardinality, for PopErr
}

func (a *accumulator) observe(t *storage.Table, row int) {
	a.scanned++
	match := a.sn.Region.Matches(t, row)
	switch a.sn.Kind {
	case query.FreqAgg:
		if match {
			a.moments.Add(1)
		} else {
			a.moments.Add(0)
		}
	case query.AvgAgg:
		if match {
			a.moments.Add(a.sn.Measure(t, row))
		}
	}
}

// minAvgRows is the fewest matching rows before an AVG estimate is
// considered usable; below this the sample variance itself is too noisy
// for a meaningful expected error.
const minAvgRows = 5

// estimate converts the accumulated moments into (θ, β). For AVG the CLT
// standard error is over matching rows, inflated by a Student-t correction
// at small counts (the plug-in sample variance understates the expected
// error there — the kind of estimator overconfidence the paper's
// diagnostics reference [5] addresses); for FREQ it is the binomial
// standard error over all scanned rows. ok=false means no usable
// information yet.
func (a *accumulator) estimate() (query.ScalarEstimate, bool) {
	n := a.moments.Count()
	switch a.sn.Kind {
	case query.FreqAgg:
		if n < 2 {
			return query.ScalarEstimate{}, false
		}
		p := a.moments.Mean()
		popErr := 0.0
		if a.baseRows > 0 {
			popErr = math.Sqrt(math.Max(p*(1-p), 0) / float64(a.baseRows))
		}
		return query.ScalarEstimate{
			Value:  p,
			StdErr: a.moments.StdErr(),
			PopErr: popErr,
		}, true
	default:
		if n < minAvgRows {
			return query.ScalarEstimate{}, false
		}
		// t-quantile to normal-quantile ratio, ≈ 1 + 1.5/ν.
		inflate := 1 + 1.5/float64(n-1)
		popErr := 0.0
		if a.baseRows > 0 && a.scanned > 0 {
			// Estimated matching rows in the base relation.
			matchN := float64(n) / float64(a.scanned) * float64(a.baseRows)
			if matchN < float64(n) {
				matchN = float64(n)
			}
			popErr = math.Sqrt(a.moments.SampleVariance() / matchN)
		}
		return query.ScalarEstimate{
			Value:  a.moments.Mean(),
			StdErr: a.moments.StdErr() * inflate,
			PopErr: popErr,
		}, true
	}
}

// BatchUpdate is one online-aggregation step: the current estimates for all
// snippets after some prefix of batches, with the simulated time spent so
// far (plan overhead included).
type BatchUpdate struct {
	// Estimates holds the per-snippet raw answers; Valid[i] is false while
	// snippet i has no usable estimate yet.
	Estimates []query.ScalarEstimate
	Valid     []bool
	// RowsScanned counts sample rows consumed so far.
	RowsScanned int
	// SimTime is the simulated elapsed time (§ DESIGN.md substitution).
	SimTime time.Duration
	// Batch is the 0-based index of the batch just consumed.
	Batch int
}

// OnlineAggregate processes the sample batch by batch, invoking yield after
// every batch with refreshed estimates — the online-aggregation interface
// of §7 (deployment scenario 1). Iteration stops early when yield returns
// false ("users are satisfied with the current accuracy") or when the
// sample is exhausted.
func (e *Engine) OnlineAggregate(snips []*query.Snippet, yield func(BatchUpdate) bool) {
	accs := make([]*accumulator, len(snips))
	for i, sn := range snips {
		accs[i] = &accumulator{sn: sn, baseRows: e.sample.BaseRows}
	}
	data := e.sample.Data
	for b := 0; b < e.sample.Batches(); b++ {
		start, end := e.sample.BatchBounds(b)
		e.scan(data, accs, start, end)
		upd := BatchUpdate{
			Estimates:   make([]query.ScalarEstimate, len(accs)),
			Valid:       make([]bool, len(accs)),
			RowsScanned: end,
			SimTime:     e.cost.QueryTime(end),
			Batch:       b,
		}
		for i, a := range accs {
			upd.Estimates[i], upd.Valid[i] = a.estimate()
		}
		if !yield(upd) {
			return
		}
	}
}

// RunToCompletion consumes the whole sample and returns the final update.
func (e *Engine) RunToCompletion(snips []*query.Snippet) BatchUpdate {
	var last BatchUpdate
	e.OnlineAggregate(snips, func(u BatchUpdate) bool {
		last = u
		return true
	})
	return last
}

// TimeBound evaluates the snippets within a simulated time budget,
// predicting the largest scannable prefix from the cost model (§7,
// deployment scenario 2, and Appendix C.2's NoLearn).
func (e *Engine) TimeBound(snips []*query.Snippet, budget time.Duration) BatchUpdate {
	rows := e.cost.RowsWithin(budget)
	if rows > e.sample.Data.Rows() {
		rows = e.sample.Data.Rows()
	}
	accs := make([]*accumulator, len(snips))
	for i, sn := range snips {
		accs[i] = &accumulator{sn: sn, baseRows: e.sample.BaseRows}
	}
	e.scan(e.sample.Data, accs, 0, rows)
	upd := BatchUpdate{
		Estimates:   make([]query.ScalarEstimate, len(accs)),
		Valid:       make([]bool, len(accs)),
		RowsScanned: rows,
		SimTime:     e.cost.QueryTime(rows),
	}
	for i, a := range accs {
		upd.Estimates[i], upd.Valid[i] = a.estimate()
	}
	return upd
}

// parallelThreshold is the snippet count past which the row-at-a-time scan
// fans out across goroutines. Snippets are independent (each owns its
// accumulator), so partitioning them is race-free; below the threshold the
// goroutine overhead exceeds the win.
const parallelThreshold = 8

// Exact computes the snippet's exact answer on the base relation — the
// ground truth θ̄ experiments compare against. It reuses the vectorized
// block pipeline (always, regardless of the engine's scan mode, so the
// ground truth is scan-mode-independent): a FREQ accumulator's indicator
// mean is the matching fraction and an AVG accumulator's mean is the
// matched-value mean, which is exactly the definition of θ̄.
func (e *Engine) Exact(sn *query.Snippet) float64 {
	if e.base.Rows() == 0 {
		return 0
	}
	acc := &accumulator{sn: sn}
	scanVectorized(e.base, []*accumulator{acc}, 0, e.base.Rows())
	return acc.moments.Mean()
}

// GroupRows discovers the distinct group values of a grouped statement by
// scanning the sample (ordered for determinism). It returns one empty group
// for ungrouped statements.
func (e *Engine) GroupRows(groupCols []int, region *query.Region) ([][]query.GroupValue, error) {
	if len(groupCols) == 0 {
		return [][]query.GroupValue{nil}, nil
	}
	t := e.sample.Data
	seen := map[string][]query.GroupValue{}
	var keys []string
	for row := 0; row < t.Rows(); row++ {
		if region != nil && !region.Matches(t, row) {
			continue
		}
		key := ""
		gvs := make([]query.GroupValue, len(groupCols))
		for i, col := range groupCols {
			def := t.Schema().Col(col)
			if def.Kind == storage.Categorical {
				v := t.StrAt(row, col)
				gvs[i] = query.GroupValue{Col: col, Str: v}
				key += "|" + v
			} else {
				v := t.NumAt(row, col)
				gvs[i] = query.GroupValue{Col: col, Num: v}
				key += "|" + fmt.Sprintf("%g", v)
			}
		}
		if _, ok := seen[key]; !ok {
			seen[key] = gvs
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([][]query.GroupValue, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out, nil
}

// AnswerCache implements the paper's Baseline2 (Appendix C.1): it memoizes
// past snippet answers by canonical key and replays the lowest-error answer
// for an identical snippet, providing no benefit to novel snippets.
type AnswerCache struct {
	byKey map[string]query.ScalarEstimate
}

// NewAnswerCache returns an empty cache.
func NewAnswerCache() *AnswerCache {
	return &AnswerCache{byKey: make(map[string]query.ScalarEstimate)}
}

// Lookup returns the cached answer for an identical snippet, if any.
func (c *AnswerCache) Lookup(sn *query.Snippet) (query.ScalarEstimate, bool) {
	est, ok := c.byKey[sn.Key()]
	return est, ok
}

// Store records an answer, keeping the lowest-error instance ("when there
// are multiple instances of the same query, Baseline2 caches the one with
// the lowest expected error").
func (c *AnswerCache) Store(sn *query.Snippet, est query.ScalarEstimate) {
	key := sn.Key()
	if old, ok := c.byKey[key]; !ok || est.StdErr < old.StdErr {
		c.byKey[key] = est
	}
}

// Len returns the number of cached snippets.
func (c *AnswerCache) Len() int { return len(c.byKey) }

// Sanitize clamps non-finite error estimates; online aggregation can yield
// +Inf standard errors before two matching rows arrive.
func Sanitize(est query.ScalarEstimate) query.ScalarEstimate {
	if math.IsNaN(est.Value) {
		est.Value = 0
	}
	if math.IsNaN(est.StdErr) || math.IsInf(est.StdErr, 0) {
		est.StdErr = math.MaxFloat64
	}
	if math.IsNaN(est.PopErr) || math.IsInf(est.PopErr, 0) {
		est.PopErr = 0
	}
	return est
}
