package aqp

import "repro/internal/query"

// StandingScan is the carried accumulator state behind one continuous
// (standing) query: it folds the sample incrementally as appends grow it,
// yet every emitted update is bit-identical to View.RunToCompletion on the
// same view — the replay-equality property continuous subscriptions pin
// their auditability on.
//
// The identity is a merge-tree argument, like ProgressiveScan's but at
// batch granularity. RunToCompletion folds the sample batch by batch: one
// v.scan call per BatchBounds range, in batch order (view.OnlineAggregate).
// Each such call is itself deterministic — the vectorized scan partitions
// the range into work units anchored at its own start block and merges
// per-unit partials in unit order, independent of worker count — so the
// final accumulator state is a pure function of the sequence of
// (start, end) scan calls. A StandingScan replays exactly that sequence:
// complete batches fold into the carried accumulators once (their bounds
// never change — BatchSize survives Engine.Append, and within a generation
// the sample is append-only), and the trailing partial batch is folded
// into a private copy at each Refresh, because its end grows with the
// sample and a grown range does not decompose into the union of its former
// self and the delta under the vectorized unit partition.
//
// Unit-aligned ProgressiveFrom-style folds would NOT be bit-identical
// here: OnlineAggregate's per-batch scans anchor unit partitions at batch
// starts (BatchSize is ceil(k/20) at build time, not unit-aligned), which
// yields a different Welford merge tree than one 0-anchored prefix fold.
type StandingScan struct {
	snips []*query.Snippet
	accs  []*accumulator

	// Binding captured at the first Refresh; a view that disagrees on any
	// of these cannot extend the carried fold and Refresh reports false.
	bound bool
	gen   uint64
	mode  ScanMode
	batch int

	folded int // rows of complete batches folded into accs
}

// NewStandingScan prepares carried state for the given snippet list. The
// scan binds to a view's (generation, scan mode, batch size) at the first
// Refresh.
func NewStandingScan(snips []*query.Snippet) *StandingScan {
	return &StandingScan{snips: snips}
}

// Folded is the number of sample rows folded into the carried
// accumulators (complete batches only).
func (s *StandingScan) Folded() int { return s.folded }

// Gen is the sample generation the scan is bound to (0 before the first
// Refresh — indistinguishable from generation 0 by design; use Bound).
func (s *StandingScan) Gen() uint64 { return s.gen }

// Bound reports whether the scan has folded against a view yet.
func (s *StandingScan) Bound() bool { return s.bound }

// Refresh extends the fold to cover v's full sample and returns the final
// BatchUpdate — bit-identical to v.RunToCompletion(snips) with the same
// snippet list. ok=false means v is incompatible with the carried state
// (different sample generation, scan mode or batch size, or a shrunken
// sample): the caller must start a fresh StandingScan and pay one full
// fold. Only newly appended complete batches plus the partial tail batch
// are scanned, so K refreshes across a growing sample cost O(rows +
// K·BatchSize), not K full scans.
func (s *StandingScan) Refresh(v *View) (upd BatchUpdate, ok bool) {
	if !s.bound {
		s.bind(v)
	} else if v.SampleGen != s.gen || v.mode != s.mode ||
		v.Sample.BatchSize != s.batch || v.SampleRows < s.folded {
		return BatchUpdate{}, false
	}
	// baseRows feeds only estimate() (the PopErr term), never the fold, so
	// retargeting the carried accumulators at the view's current base
	// cardinality is exact.
	for _, a := range s.accs {
		a.baseRows = v.Sample.BaseRows
	}

	n := v.SampleRows
	complete := n - n%s.batch
	for start := s.folded; start < complete; start += s.batch {
		end := start + s.batch
		v.scan(s.accs, start, end)
	}
	s.folded = complete

	emit := s.accs
	if n > complete {
		// The trailing partial batch folds into a clone: its bounds will
		// grow with the next append, and the vectorized fold of the grown
		// range is not the fold of the old range plus the delta.
		emit = cloneAccs(s.accs)
		v.scan(emit, complete, n)
	}

	upd = BatchUpdate{
		Estimates:   make([]query.ScalarEstimate, len(emit)),
		Valid:       make([]bool, len(emit)),
		RowsScanned: n,
		SimTime:     v.cost.QueryTime(n),
		Batch:       v.Sample.Batches() - 1,
	}
	for i, a := range emit {
		upd.Estimates[i], upd.Valid[i] = a.estimate()
	}
	return upd, true
}

func (s *StandingScan) bind(v *View) {
	s.bound = true
	s.gen = v.SampleGen
	s.mode = v.mode
	s.batch = v.Sample.BatchSize
	s.accs = make([]*accumulator, len(s.snips))
	for i, sn := range s.snips {
		s.accs[i] = &accumulator{sn: sn, baseRows: v.Sample.BaseRows}
	}
}
