package aqp

import (
	"math"
	"sort"
	"testing"

	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// driftedBatch builds an append batch whose week values concentrate in
// [lo, hi] — the distribution shift that makes tail-piled samples visibly
// non-uniform in prefix.
func driftedBatch(t *testing.T, rows int, lo, hi float64, seed int64) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "val", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("batch", schema)
	rng := randx.New(seed)
	for i := 0; i < rows; i++ {
		week := rng.Uniform(lo, hi)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(week), storage.Str("a"), storage.Num(10 + week),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// ksDistance computes the two-sample Kolmogorov–Smirnov statistic
// sup|F_a − F_b| between two value samples.
func ksDistance(a, b []float64) float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j, d := 0, 0, 0.0
	for i < len(as) && j < len(bs) {
		if as[i] <= bs[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// queryRun bundles the snippets of one parsed SQL query.
type queryRun struct {
	snips []*query.Snippet
}

func newQueryRun(t *testing.T, tb *storage.Table, sql string) *queryRun {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	decs, err := query.Decompose(stmt, tb, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var snips []*query.Snippet
	for _, d := range decs {
		snips = append(snips, d.Snippets...)
	}
	return &queryRun{snips: snips}
}

// colValues extracts the first n values (n < 0 for all) of a numeric column.
func colValues(t *storage.Table, name string, n int) []float64 {
	col, ok := t.Schema().Lookup(name)
	if !ok {
		panic("missing column " + name)
	}
	vals := t.NumericCol(col)
	if n < 0 || n > len(vals) {
		n = len(vals)
	}
	return append([]float64(nil), vals[:n]...)
}

// prefixKS measures how far a sample prefix is from the full sample's
// distribution — the prefix-uniformity statistic online aggregation cares
// about (a uniform random layout keeps it near the sampling noise floor).
func prefixKS(data *storage.Table, frac float64) float64 {
	n := int(float64(data.Rows()) * frac)
	return ksDistance(colValues(data, "week", n), colValues(data, "week", -1))
}

// The headline property: streamed appends pile their subsamples at the
// sample tail, so prefixes stop being uniform; RebuildSample restores
// prefix-uniformity (KS distance between any prefix and the full sample
// drops back to the sampling noise floor) without changing the sample's
// content.
func TestRebuildRestoresPrefixUniformity(t *testing.T) {
	tb := buildTable(t, 12000) // week uniform on [0, 100)
	s, err := BuildSample(tb, 0.25, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, s, CachedCost)

	// Stream drifted batches: appended weeks concentrate in [80, 100], and
	// their subsamples all land at the tail.
	for i := 0; i < 6; i++ {
		if _, err := e.Append(driftedBatch(t, 1000, 80, 100, int64(50+i)), int64(500+i)); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Sample().Data
	sortedBefore := colValues(before, "week", -1)
	sort.Float64s(sortedBefore)

	// Tail-piled layout: early prefixes hold none of the drifted rows, so
	// they are visibly far from the full-sample distribution.
	dBefore := prefixKS(before, 0.5)
	if dBefore < 0.10 {
		t.Fatalf("test not discriminating: pre-rebuild prefix KS=%.3f, expected tail pile-up", dBefore)
	}

	gen, err := e.RebuildSample(99, DefaultRebuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || e.SampleGen() != 1 {
		t.Fatalf("generation=%d/%d want 1", gen, e.SampleGen())
	}
	after := e.Sample().Data

	// Content is preserved: same multiset of week values, same metadata.
	sortedAfter := colValues(after, "week", -1)
	sort.Float64s(sortedAfter)
	if len(sortedBefore) != len(sortedAfter) {
		t.Fatalf("row count changed: %d -> %d", len(sortedBefore), len(sortedAfter))
	}
	for i := range sortedBefore {
		if sortedBefore[i] != sortedAfter[i] {
			t.Fatalf("content changed at sorted index %d: %v vs %v", i, sortedBefore[i], sortedAfter[i])
		}
	}
	if sa, sb := e.Sample(), s; sa.Fraction != sb.Fraction || sa.BatchSize != sb.BatchSize {
		t.Fatalf("sample metadata changed: %+v vs %+v", sa, sb)
	}
	if e.Sample().BaseRows != tb.Rows() {
		t.Fatalf("BaseRows=%d want %d", e.Sample().BaseRows, tb.Rows())
	}

	// Prefix-uniformity restored at several prefix lengths: the KS distance
	// must fall below the 95% two-sample critical value for these sizes
	// (~1.36·sqrt((n1+n2)/(n1·n2))) with a safety margin.
	for _, frac := range []float64{0.1, 0.25, 0.5} {
		n1 := float64(int(float64(after.Rows()) * frac))
		n2 := float64(after.Rows())
		crit := 1.36 * math.Sqrt((n1+n2)/(n1*n2))
		if d := prefixKS(after, frac); d > crit {
			t.Fatalf("prefix %.0f%%: KS=%.4f exceeds critical %.4f — rebuild did not restore uniformity", frac*100, d, crit)
		}
	}
	// And the rebuild must beat the tail-piled layout decisively.
	if dAfter := prefixKS(after, 0.5); dAfter > dBefore/2 {
		t.Fatalf("rebuild barely helped: KS %.4f -> %.4f", dBefore, dAfter)
	}
}

// Replays across a rebuild epoch: a query pinned to generation g must
// replay float-identically through ViewAtGen(g, …) even after the sample
// has been re-laid-out (and appended to) since.
func TestViewAtGenReplayAcrossRebuild(t *testing.T) {
	tb := buildTable(t, 8000)
	s, err := BuildSample(tb, 0.25, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, s, CachedCost)
	snippets := []*queryRun{
		newQueryRun(t, tb, "SELECT AVG(val) FROM t WHERE week >= 10 AND week < 45"),
		newQueryRun(t, tb, "SELECT COUNT(*) FROM t WHERE week > 60"),
	}

	type served struct {
		gen        uint64
		baseRows   int
		sampleRows int
		answers    []float64
	}
	run := func(v *View) served {
		var ans []float64
		for _, q := range snippets {
			upd := v.RunToCompletion(q.snips)
			for i := range upd.Estimates {
				ans = append(ans, upd.Estimates[i].Value, upd.Estimates[i].StdErr)
			}
		}
		return served{gen: v.SampleGen, baseRows: v.BaseRows, sampleRows: v.SampleRows, answers: ans}
	}

	var history []served
	history = append(history, run(e.Acquire())) // gen 0, offline layout

	if _, err := e.Append(driftedBatch(t, 2000, 70, 100, 7), 70); err != nil {
		t.Fatal(err)
	}
	history = append(history, run(e.Acquire())) // gen 0, appended tail

	e.RebuildSample(101, DefaultRebuildOptions())
	history = append(history, run(e.Acquire())) // gen 1, shuffled

	if _, err := e.Append(driftedBatch(t, 1500, 0, 30, 8), 71); err != nil {
		t.Fatal(err)
	}
	history = append(history, run(e.Acquire())) // gen 1, appended again

	e.RebuildSample(102, DefaultRebuildOptions())
	history = append(history, run(e.Acquire())) // gen 2

	if len(history) != 5 {
		t.Fatal("history shape")
	}
	gens := map[uint64]bool{}
	for _, h := range history {
		gens[h.gen] = true
		v := e.ViewAtGen(h.gen, h.baseRows, h.sampleRows)
		if v == nil {
			t.Fatalf("ViewAtGen(%d, %d, %d) = nil", h.gen, h.baseRows, h.sampleRows)
		}
		rep := run(v)
		if len(rep.answers) != len(h.answers) {
			t.Fatalf("replay shape at gen %d", h.gen)
		}
		for i := range rep.answers {
			if rep.answers[i] != h.answers[i] {
				t.Fatalf("gen %d base=%d sample=%d: replay answer %d differs: served %v, replay %v",
					h.gen, h.baseRows, h.sampleRows, i, h.answers[i], rep.answers[i])
			}
		}
	}
	if len(gens) != 3 {
		t.Fatalf("exercised %d generations, want 3", len(gens))
	}
	// ViewAt without a generation replays the current generation.
	last := history[len(history)-1]
	rep := run(e.ViewAt(last.baseRows, last.sampleRows))
	for i := range rep.answers {
		if rep.answers[i] != last.answers[i] {
			t.Fatal("ViewAt does not replay the current generation")
		}
	}
	// A generation that never existed yields nil.
	if v := e.ViewAtGen(99, last.baseRows, last.sampleRows); v != nil {
		t.Fatal("ViewAtGen accepted a future generation")
	}
}

// A view pinned before a rebuild must be completely unaffected by it.
func TestRebuildInvisibleToPinnedView(t *testing.T) {
	tb := buildTable(t, 6000)
	s, err := BuildSample(tb, 0.3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, s, CachedCost)
	q := newQueryRun(t, tb, "SELECT AVG(val) FROM t WHERE week < 50")
	pinned := e.Acquire()
	before := pinned.RunToCompletion(q.snips)
	e.RebuildSample(55, DefaultRebuildOptions())
	again := pinned.RunToCompletion(q.snips)
	if before.Estimates[0] != again.Estimates[0] {
		t.Fatalf("pinned view drifted across rebuild: %+v -> %+v", before.Estimates[0], again.Estimates[0])
	}
	fresh := e.Acquire()
	if fresh.SampleGen != 1 {
		t.Fatalf("fresh view gen=%d want 1", fresh.SampleGen)
	}
	if fresh == pinned {
		t.Fatal("Acquire returned the stale view after a rebuild")
	}
}

// The clustered rebuild produces zone-map-friendly blocks: after
// RebuildSample with a cluster column, each block spans a narrow value
// range, while the row multiset is unchanged.
func TestRebuildClusteredLayout(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a multi-block sample")
	}
	tb := buildTable(t, 90000)
	s, err := BuildSample(tb, 0.25, 0, 4) // ~22.5k rows ≈ 6 blocks
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, s, CachedCost)
	weekCol, _ := tb.Schema().Lookup("week")

	beforeSorted := colValues(e.Sample().Data, "week", -1)
	sort.Float64s(beforeSorted)

	e.RebuildSample(77, RebuildOptions{ClusterColumn: weekCol})
	data := e.Sample().Data

	afterSorted := colValues(data, "week", -1)
	sort.Float64s(afterSorted)
	for i := range beforeSorted {
		if beforeSorted[i] != afterSorted[i] {
			t.Fatal("clustered rebuild changed the sample content")
		}
	}

	// Every full block must span a narrow slice of the domain (sorted into
	// ~6 chunks of a [0,100) domain, a full block covers ≈ 100/6 ≈ 17).
	vals := data.NumericCol(weekCol)
	n := data.Rows()
	fullBlocks := 0
	for lo := 0; lo+storage.BlockSize <= n; lo += storage.BlockSize {
		mn, mx := vals[lo], vals[lo]
		for _, v := range vals[lo : lo+storage.BlockSize] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if mx-mn > 35 {
			t.Fatalf("block at %d spans %.1f of the domain; not clustered", lo, mx-mn)
		}
		fullBlocks++
	}
	if fullBlocks < 4 {
		t.Fatalf("only %d full blocks; test needs a bigger sample", fullBlocks)
	}
}
