package aqp

import (
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
)

// appendBatch builds a batch against its own schema (name/kind-compatible
// with buildTable's relation) the way a streaming producer would.
func appendBatch(t *testing.T, rows int, seed int64) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "val", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("t_batch", schema)
	rng := randx.New(seed)
	for i := 0; i < rows; i++ {
		week := rng.Uniform(0, 100)
		region := "a"
		if rng.Bool(0.5) {
			region = "b"
		}
		if err := tb.AppendRow([]storage.Value{
			storage.Num(week), storage.Str(region), storage.Num(10 + week),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// An in-flight view must be unaffected by appends; a fresh view must see
// them; ViewAt must reproduce the old view's raw answers exactly.
func TestEngineAppendViewIsolation(t *testing.T) {
	tb := buildTable(t, 20000)
	s, err := BuildSample(tb, 0.25, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, s, CachedCost)
	sn := snippetFor(t, tb, "SELECT AVG(val) FROM t WHERE week < 40")

	before := e.Acquire()
	updBefore := before.RunToCompletion([]*query.Snippet{sn})

	if _, err := e.Append(appendBatch(t, 5000, 11), 99); err != nil {
		t.Fatal(err)
	}
	after := e.Acquire()
	if after == before {
		t.Fatal("append did not republish the view")
	}
	if after.BaseRows != 25000 {
		t.Fatalf("after.BaseRows=%d, want 25000", after.BaseRows)
	}
	if after.SampleRows <= before.SampleRows {
		t.Fatalf("sample did not grow: %d -> %d", before.SampleRows, after.SampleRows)
	}

	// The pinned view still answers from its stable prefix.
	replayNow := before.RunToCompletion([]*query.Snippet{sn})
	if replayNow.Estimates[0] != updBefore.Estimates[0] {
		t.Fatalf("pinned view answer moved: %+v -> %+v", updBefore.Estimates[0], replayNow.Estimates[0])
	}
	// And ViewAt reconstructs it from the grown tables.
	replay := e.ViewAt(before.BaseRows, before.SampleRows).RunToCompletion([]*query.Snippet{sn})
	if replay.Estimates[0] != updBefore.Estimates[0] {
		t.Fatalf("ViewAt replay differs: %+v vs %+v", updBefore.Estimates[0], replay.Estimates[0])
	}
}

// Acquire must return the cached view while nothing changes, and queries
// racing with streaming appends must be race-free with stable per-view
// answers (run under -race).
func TestEngineConcurrentAppendScan(t *testing.T) {
	tb := buildTable(t, 10000)
	s, err := BuildSample(tb, 0.3, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, s, CachedCost)
	if v1, v2 := e.Acquire(), e.Acquire(); v1 != v2 {
		t.Fatal("Acquire rebuilt an unchanged view")
	}
	sn := snippetFor(t, tb, "SELECT AVG(val) FROM t WHERE week >= 20 AND week < 70")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := e.Append(appendBatch(t, 500, int64(100+i)), int64(i)); err != nil {
				panic(err)
			}
		}
	}()
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 30; k++ {
				v := e.Acquire()
				a := v.RunToCompletion([]*query.Snippet{sn})
				b := v.RunToCompletion([]*query.Snippet{sn})
				if a.Estimates[0] != b.Estimates[0] {
					errs <- errNondeterministic
					return
				}
				_ = v.Exact(sn)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

var errNondeterministic = &nondeterministicError{}

type nondeterministicError struct{}

func (*nondeterministicError) Error() string {
	return "same view returned different answers"
}
