package aqp

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// buildGroupedTable builds a relation with a numeric dimension (week), two
// categorical dimensions (cat with nGroups values, region with 2) and a
// measure. clustered keeps week sorted so zone maps prune.
func buildGroupedTable(t testing.TB, rows, nGroups int, clustered bool) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "cat", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "val", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("t", schema)
	rng := randx.New(99)
	order := make([]int, rows)
	for i := range order {
		order[i] = i
	}
	if !clustered {
		rng.Shuffle(rows, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, i := range order {
		week := float64(i) / float64(rows) * 100
		cat := fmt.Sprintf("g%03d", rng.Intn(nGroups))
		region := "a"
		if rng.Bool(0.5) {
			region = "b"
		}
		val := 10 + week + rng.Normal(0, 2)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(week), storage.Str(cat), storage.Str(region), storage.Num(val),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// groupedSnips decomposes sql against tb with sample-discovered groups,
// mirroring what core's legacy plan does.
func groupedSnips(t testing.TB, v *View, tb *storage.Table, sql string) []*query.Snippet {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	var groupCols []int
	for _, g := range stmt.GroupBy {
		col, ok := tb.Schema().Lookup(g.Name)
		if !ok {
			t.Fatalf("unknown group column %s", g.Name)
		}
		groupCols = append(groupCols, col)
	}
	region, err := query.BindRegion(stmt.Where, tb)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := v.GroupRows(groupCols, region)
	if err != nil {
		t.Fatal(err)
	}
	decs, err := query.Decompose(stmt, tb, groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	var snips []*query.Snippet
	for _, d := range decs {
		snips = append(snips, d.Snippets...)
	}
	return snips
}

var groupedEquivalenceSQL = []string{
	"SELECT cat, AVG(val), COUNT(*) FROM t GROUP BY cat",
	"SELECT cat, AVG(val) FROM t WHERE week >= 20 AND week < 70 GROUP BY cat",
	"SELECT cat, region, COUNT(*), AVG(val) FROM t GROUP BY cat, region",
	"SELECT cat, SUM(val) FROM t WHERE region = 'a' GROUP BY cat",
	"SELECT cat, AVG(val * val) FROM t GROUP BY cat", // compound measure
}

// TestGroupedScanMatchesPerSnippet: the one-scan grouped path must be
// FLOAT-IDENTICAL (bit-equal estimates, not merely close) to the per-snippet
// ablation path, on clustered and shuffled layouts — the factored kernel
// replays the exact same moment-update sequence per snippet.
func TestGroupedScanMatchesPerSnippet(t *testing.T) {
	for _, clustered := range []bool{true, false} {
		layout := "clustered"
		if !clustered {
			layout = "shuffled"
		}
		t.Run(layout, func(t *testing.T) {
			tb := buildGroupedTable(t, 3*storage.BlockSize+777, 12, clustered)
			sample, err := BuildSample(tb, 0.9, 0, 5)
			if err != nil {
				t.Fatal(err)
			}
			grouped := NewEngine(tb, sample, CachedCost)
			grouped.SetScanMode(ScanVectorized)
			perSnip := NewEngine(tb, sample, CachedCost)
			perSnip.SetScanMode(ScanVectorizedPerSnippet)
			for _, sql := range groupedEquivalenceSQL {
				gv := grouped.Acquire()
				snips := groupedSnips(t, gv, tb, sql)
				ug := gv.RunToCompletion(snips)
				up := perSnip.Acquire().RunToCompletion(snips)
				if ug.RowsScanned != up.RowsScanned {
					t.Fatalf("%s: rows %d vs %d", sql, ug.RowsScanned, up.RowsScanned)
				}
				for i := range snips {
					if ug.Valid[i] != up.Valid[i] || ug.Estimates[i] != up.Estimates[i] {
						t.Fatalf("%s snippet %d: grouped %v/%+v, per-snippet %v/%+v",
							sql, i, ug.Valid[i], ug.Estimates[i], up.Valid[i], up.Estimates[i])
					}
				}
			}
		})
	}
}

// TestGroupedProgressiveBitIdentical: under the grouped kernel, progressive
// increments must stay bit-identical to a fresh EvalPrefix replay of the same
// prefix, for any worker cap — the bank kernel yields the same per-unit
// partials the carry logic was built on.
func TestGroupedProgressiveBitIdentical(t *testing.T) {
	tb := buildGroupedTable(t, 4*storage.BlockSize+321, 9, false)
	sample, err := BuildSample(tb, 1.0, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	v := e.Acquire()
	snips := groupedSnips(t, v, tb, "SELECT cat, AVG(val), COUNT(*) FROM t WHERE week < 80 GROUP BY cat")
	sched := PrefixSchedule(v.SampleRows, 0)
	var baseline []Increment
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		ps := v.Progressive(snips)
		ps.SetWorkers(workers)
		for k, prefix := range sched {
			inc := ps.Step(prefix)
			if workers == 1 {
				baseline = append(baseline, inc)
				fresh := v.EvalPrefix(snips, prefix)
				for i := range snips {
					if inc.Estimates[i] != fresh.Estimates[i] || inc.Valid[i] != fresh.Valid[i] {
						t.Fatalf("prefix %d snippet %d: increment %+v, fresh replay %+v",
							prefix, i, inc.Estimates[i], fresh.Estimates[i])
					}
				}
				continue
			}
			for i := range snips {
				if inc.Estimates[i] != baseline[k].Estimates[i] {
					t.Fatalf("workers=%d prefix %d snippet %d: %+v vs %+v",
						workers, prefix, i, inc.Estimates[i], baseline[k].Estimates[i])
				}
			}
		}
	}
}

// specFor builds the discovery spec for a grouped statement.
func specFor(t testing.TB, tb *storage.Table, sql string) *query.GroupedSpec {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	var groupCols []int
	for _, g := range stmt.GroupBy {
		col, ok := tb.Schema().Lookup(g.Name)
		if !ok {
			t.Fatalf("unknown group column %s", g.Name)
		}
		groupCols = append(groupCols, col)
	}
	spec := query.GroupedSpecOf(stmt, tb, groupCols)
	if spec == nil {
		t.Fatalf("GroupedSpecOf returned nil for %s", sql)
	}
	return spec
}

// TestGroupedDiscoverMatchesTwoPass: the one-pass discovery scan must return
// the same groups, in the same order, with bit-identical estimates as the
// legacy GroupRows + Decompose + RunToCompletion two-pass execution.
func TestGroupedDiscoverMatchesTwoPass(t *testing.T) {
	tb := buildGroupedTable(t, 3*storage.BlockSize+555, 10, false)
	sample, err := BuildSample(tb, 0.8, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	v := e.Acquire()
	for _, sql := range groupedEquivalenceSQL {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		var groupCols []int
		for _, g := range stmt.GroupBy {
			col, _ := tb.Schema().Lookup(g.Name)
			groupCols = append(groupCols, col)
		}
		region, err := query.BindRegion(stmt.Where, tb)
		if err != nil {
			t.Fatal(err)
		}
		groups, err := v.GroupRows(groupCols, region)
		if err != nil {
			t.Fatal(err)
		}
		decs, err := query.Decompose(stmt, tb, groups, 0)
		if err != nil {
			t.Fatal(err)
		}
		var snips []*query.Snippet
		for _, d := range decs {
			snips = append(snips, d.Snippets...)
		}
		want := v.RunToCompletion(snips)

		gr := v.GroupedRunToCompletion(specFor(t, tb, sql), 0)
		if gr.Truncated {
			t.Fatalf("%s: unexpected truncation", sql)
		}
		if len(gr.Groups) != len(decs) {
			t.Fatalf("%s: discovered %d groups, two-pass found %d", sql, len(gr.Groups), len(decs))
		}
		for g := range gr.Groups {
			for j := range gr.Groups[g] {
				if gr.Groups[g][j] != decs[g].Group[j] {
					t.Fatalf("%s group %d: %+v vs %+v", sql, g, gr.Groups[g], decs[g].Group)
				}
			}
		}
		if gr.Update.RowsScanned != want.RowsScanned {
			t.Fatalf("%s: rows %d vs %d", sql, gr.Update.RowsScanned, want.RowsScanned)
		}
		for i := range snips {
			if gr.Update.Valid[i] != want.Valid[i] || gr.Update.Estimates[i] != want.Estimates[i] {
				t.Fatalf("%s snippet %d: discover %v/%+v, two-pass %v/%+v",
					sql, i, gr.Update.Valid[i], gr.Update.Estimates[i], want.Valid[i], want.Estimates[i])
			}
		}
	}
}

// TestGroupedDiscoverEdges pins the discovery scan's edge behaviors: Nmax
// truncation keeps the ordered head and reports it, and a query matching no
// rows degenerates to the single ungrouped decomposition's estimates.
func TestGroupedDiscoverEdges(t *testing.T) {
	tb := buildGroupedTable(t, 2*storage.BlockSize+100, 8, true)
	sample, err := BuildSample(tb, 1.0, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	v := NewEngine(tb, sample, CachedCost).Acquire()

	full := v.GroupedRunToCompletion(specFor(t, tb, "SELECT cat, AVG(val), COUNT(*) FROM t GROUP BY cat"), 0)
	capped := v.GroupedRunToCompletion(specFor(t, tb, "SELECT cat, AVG(val), COUNT(*) FROM t GROUP BY cat"), 3)
	if !capped.Truncated || full.Truncated {
		t.Fatalf("truncated: capped=%v full=%v", capped.Truncated, full.Truncated)
	}
	if len(capped.Groups) != 3 {
		t.Fatalf("capped groups=%d", len(capped.Groups))
	}
	for g := 0; g < 3; g++ {
		if capped.Groups[g][0] != full.Groups[g][0] {
			t.Fatalf("group %d: %+v vs %+v", g, capped.Groups[g], full.Groups[g])
		}
		for j := 0; j < 2; j++ {
			if capped.Update.Estimates[g*2+j] != full.Update.Estimates[g*2+j] {
				t.Fatalf("group %d slot %d: %+v vs %+v", g, j,
					capped.Update.Estimates[g*2+j], full.Update.Estimates[g*2+j])
			}
		}
	}

	empty := v.GroupedRunToCompletion(specFor(t, tb, "SELECT cat, AVG(val), COUNT(*) FROM t WHERE week > 1000 GROUP BY cat"), 0)
	if len(empty.Groups) != 0 || empty.Truncated {
		t.Fatalf("empty result: %+v", empty)
	}
	// The nil-group fallback decomposition has one snippet per family slot:
	// FREQ is a valid all-zeros estimate, AVG has no rows and stays invalid.
	if len(empty.Update.Estimates) != 2 {
		t.Fatalf("estimates=%d", len(empty.Update.Estimates))
	}
	for j, valid := range empty.Update.Valid {
		if est := empty.Update.Estimates[j]; valid && est.Value != 0 {
			t.Fatalf("slot %d: valid=%v est=%+v", j, valid, est)
		}
	}
}

// TestGroupedFactoringAfterRebuild: the static factored kernel must stay
// float-identical to the ablation across a mid-stream sample rebuild — new
// generation, new row layout, same bit-for-bit agreement.
func TestGroupedFactoringAfterRebuild(t *testing.T) {
	tb := buildGroupedTable(t, 2*storage.BlockSize+987, 7, false)
	sample, err := BuildSample(tb, 0.7, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT cat, AVG(val), COUNT(*) FROM t WHERE week < 60 GROUP BY cat"
	grouped := NewEngine(tb, sample, CachedCost)
	sample2, err := BuildSample(tb, 0.7, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	perSnip := NewEngine(tb, sample2, CachedCost)
	perSnip.SetScanMode(ScanVectorizedPerSnippet)

	check := func(label string) {
		gv := grouped.Acquire()
		pv := perSnip.Acquire()
		snips := groupedSnips(t, gv, tb, sql)
		ug := gv.RunToCompletion(snips)
		up := pv.RunToCompletion(snips)
		for i := range snips {
			if ug.Estimates[i] != up.Estimates[i] {
				t.Fatalf("%s snippet %d: %+v vs %+v", label, i, ug.Estimates[i], up.Estimates[i])
			}
		}
	}
	check("before rebuild")
	// Same seed on both engines: the rebuilt layouts stay row-for-row equal.
	grouped.RebuildSample(777, DefaultRebuildOptions())
	perSnip.RebuildSample(777, DefaultRebuildOptions())
	check("after rebuild")
}
