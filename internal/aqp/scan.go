package aqp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mathx"
	"repro/internal/query"
	"repro/internal/storage"
)

// Vectorized block scan. The sample (or base relation) is walked in
// storage.BlockSize blocks; per block, each snippet first consults the zone
// maps (provably-empty and provably-full blocks contribute closed-form
// moment updates without touching rows), and only indeterminate blocks run
// the columnar predicate into a reusable selection vector. Blocks are
// grouped into fixed-size work units that fan out across GOMAXPROCS workers
// with per-unit accumulators merged in unit order — data-parallelism even
// for a single snippet, which the older snippet-parallel design could not
// provide. Results are deterministic AND machine-invariant: the unit
// partition and the merge order depend only on the scanned range, never on
// the worker count, so the floating-point merge tree is identical on any
// core count.

// ScanMode selects the Engine's scan implementation.
type ScanMode uint8

const (
	// ScanVectorized is the default block-partitioned, zone-map-pruned,
	// data-parallel scan. Grouped queries additionally factor their
	// per-group snippets into one shared-base pass over accumulator banks
	// (see scan_grouped.go).
	ScanVectorized ScanMode = iota
	// ScanRowAtATime is the legacy per-row scan, kept as the measurable
	// baseline and as an ablation/debug mode.
	ScanRowAtATime
	// ScanVectorizedPerSnippet is the vectorized block scan with grouped
	// accumulator-bank factoring disabled: every snippet re-evaluates its
	// full region per block. Kept as the ablation/oracle the one-scan
	// grouped path is benchmarked and verified against, mirroring
	// ScanRowAtATime.
	ScanVectorizedPerSnippet
)

// unitBlocks is the number of blocks per work unit — the scheduling and
// merge granule. It is a fixed constant (never derived from the worker
// count) so the moment merge tree, and hence the floating-point result, is
// identical on any machine.
const unitBlocks = 16

// minRowsPerWorker bounds the fan-out: below this many rows per worker the
// goroutine overhead exceeds the win.
const minRowsPerWorker = 8192

// partial is one worker's accumulation state for one snippet.
type partial struct {
	moments mathx.Moments
	scanned int
}

// snipMeta caches per-snippet scan info resolved once per scan call.
type snipMeta struct {
	region     *query.Region
	kind       query.AggKind
	measure    func(*storage.Table, int) float64
	measureCol int // bare-column measure index; -1 when unavailable
}

func metaOf(accs []*accumulator) []snipMeta {
	metas := make([]snipMeta, len(accs))
	for i, a := range accs {
		metas[i] = snipMeta{
			region:     a.sn.Region,
			kind:       a.sn.Kind,
			measure:    a.sn.Measure,
			measureCol: -1,
		}
		if col, ok := a.sn.MeasureColumn(); ok {
			metas[i].measureCol = col
		}
	}
	return metas
}

// scanVectorized feeds rows [start, end) of data into every accumulator via
// the block pipeline. When grouped is set, the snippet list is first offered
// to FactorGroups: a grouped-query shape runs the one-pass accumulator-bank
// kernel instead of per-snippet region evaluation (float-identical by
// construction; see scan_grouped.go).
func scanVectorized(data *storage.Table, accs []*accumulator, start, end int, grouped bool) {
	if end <= start || len(accs) == 0 {
		return
	}
	metas := metaOf(accs)
	var gs *groupedScan
	if grouped {
		gs = factorAccs(accs)
	}
	b0 := start / storage.BlockSize
	b1 := (end - 1) / storage.BlockSize // inclusive
	nblocks := b1 - b0 + 1
	units := (nblocks + unitBlocks - 1) / unitBlocks
	parts := scanUnits(data, metas, gs, 0, units, start, end, 0)
	// Merge per-unit partials in unit order: the merge tree depends only on
	// the scanned range, not on scheduling or core count.
	for _, p := range parts {
		merge(accs, p)
	}
}

// scanUnits computes the per-unit partials for work units [u0, u1) of the
// scan of rows [start, end), fanning out across at most maxWorkers workers
// (0 = GOMAXPROCS). Unit u covers blocks [b0+u·unitBlocks, b0+(u+1)·unitBlocks)
// with b0 = start/BlockSize — a fixed partition of the scanned range, so the
// returned partials are independent of the worker count and of scheduling.
// ProgressiveScan resumes a scan by asking for later unit ranges of the same
// (start, end-extended) partition. A non-nil gs routes each unit through the
// grouped accumulator-bank kernel, whose expanded partials are bit-identical
// to the per-snippet ones.
func scanUnits(data *storage.Table, metas []snipMeta, gs *groupedScan, u0, u1, start, end, maxWorkers int) [][]partial {
	if u1 <= u0 {
		return nil
	}
	b0 := start / storage.BlockSize
	b1 := (end - 1) / storage.BlockSize // inclusive
	parts := make([][]partial, u1-u0)
	unitRange := func(u int) (int, int) {
		blo := b0 + u*unitBlocks
		bhi := blo + unitBlocks
		if bhi > b1+1 {
			bhi = b1 + 1
		}
		return blo, bhi
	}
	units := u1 - u0
	workers := maxWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	if maxW := (end - start + minRowsPerWorker - 1) / minRowsPerWorker; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		var sc blockScanner
		for u := u0; u < u1; u++ {
			blo, bhi := unitRange(u)
			parts[u-u0] = sc.scanUnit(data, metas, gs, blo, bhi, start, end)
		}
		return parts
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc blockScanner
			for {
				u := u0 + int(next.Add(1)) - 1
				if u >= u1 {
					return
				}
				blo, bhi := unitRange(u)
				parts[u-u0] = sc.scanUnit(data, metas, gs, blo, bhi, start, end)
			}
		}()
	}
	wg.Wait()
	return parts
}

// scanUnit dispatches one work unit to the grouped bank kernel or the
// per-snippet reference kernel.
func (s *blockScanner) scanUnit(data *storage.Table, metas []snipMeta, gs *groupedScan, b0, b1, start, end int) []partial {
	if gs != nil {
		return s.scanRangeGrouped(data, gs, b0, b1, start, end)
	}
	return s.scanRange(data, metas, b0, b1, start, end)
}

func merge(accs []*accumulator, parts []partial) {
	if parts == nil {
		return
	}
	for i := range parts {
		accs[i].moments.Merge(parts[i].moments)
		accs[i].scanned += parts[i].scanned
	}
}

// blockScanner carries per-worker scratch buffers reused across work units.
type blockScanner struct {
	sel  []int32
	vals []float64
	g    *groupedScratch // lazily built by the grouped bank kernel
}

// scanRange processes blocks [b0, b1) clipped to rows [start, end),
// returning one partial per snippet.
func (s *blockScanner) scanRange(data *storage.Table, metas []snipMeta, b0, b1, start, end int) []partial {
	parts := make([]partial, len(metas))
	if s.sel == nil {
		s.sel = make([]int32, 0, storage.BlockSize)
	}
	sel, vals := s.sel, s.vals
	defer func() { s.sel, s.vals = sel, vals }()
	for b := b0; b < b1; b++ {
		blo, bhi := data.BlockBounds(b)
		if blo < start {
			blo = start
		}
		if bhi > end {
			bhi = end
		}
		if bhi <= blo {
			continue
		}
		rows := bhi - blo
		for i := range metas {
			m := &metas[i]
			p := &parts[i]
			p.scanned += rows
			// Zone maps summarize the whole block; their verdicts hold for
			// any sub-range of it.
			switch m.region.PruneBlock(data, b) {
			case query.BlockEmpty:
				if m.kind == query.FreqAgg {
					p.moments.AddZeros(int64(rows))
				}
				continue
			case query.BlockFull:
				if m.kind == query.FreqAgg {
					p.moments.AddWeighted(1, int64(rows))
				} else if m.measureCol >= 0 {
					p.moments.AddSlice(data.NumericCol(m.measureCol)[blo:bhi])
				} else {
					vals = vals[:0]
					for row := blo; row < bhi; row++ {
						vals = append(vals, m.measure(data, row))
					}
					p.moments.AddSlice(vals)
				}
				continue
			}
			sel = m.region.MatchBlock(data, blo, bhi, sel)
			match := len(sel)
			if m.kind == query.FreqAgg {
				p.moments.AddWeighted(1, int64(match))
				p.moments.AddZeros(int64(rows - match))
				continue
			}
			if match == 0 {
				continue
			}
			vals = vals[:0]
			if m.measureCol >= 0 {
				col := data.NumericCol(m.measureCol)
				for _, r := range sel {
					vals = append(vals, col[r])
				}
			} else {
				for _, r := range sel {
					vals = append(vals, m.measure(data, int(r)))
				}
			}
			p.moments.AddSlice(vals)
		}
	}
	return parts
}

// scanRows is the legacy row-at-a-time scan: per-row predicate dispatch,
// parallel across snippets only (grouped queries can decompose into hundreds
// of snippets; Figure 3). Kept as the ScanRowAtATime baseline.
func scanRows(data *storage.Table, accs []*accumulator, start, end int) {
	if len(accs) < parallelThreshold {
		for row := start; row < end; row++ {
			for _, a := range accs {
				a.observe(data, row)
			}
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(accs) {
		workers = len(accs)
	}
	var wg sync.WaitGroup
	chunk := (len(accs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(accs) {
			hi = len(accs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []*accumulator) {
			defer wg.Done()
			for row := start; row < end; row++ {
				for _, a := range part {
					a.observe(data, row)
				}
			}
		}(accs[lo:hi])
	}
	wg.Wait()
}
