package aqp

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// buildTable makes a relation with a known mean structure: measure =
// 10 + week, weeks 0..99 uniform, two regions.
func buildTable(t testing.TB, rows int) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "val", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("t", schema)
	rng := randx.New(7)
	for i := 0; i < rows; i++ {
		week := rng.Uniform(0, 100)
		region := "a"
		if rng.Bool(0.5) {
			region = "b"
		}
		val := 10 + week + rng.Normal(0, 1)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(week), storage.Str(region), storage.Num(val),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func snippetFor(t testing.TB, tb *storage.Table, sql string) *query.Snippet {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	decs, err := query.Decompose(stmt, tb, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return decs[0].Snippets[0]
}

func TestBuildSampleProperties(t *testing.T) {
	tb := buildTable(t, 10000)
	s, err := BuildSample(tb, 0.1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Data.Rows() != 1000 {
		t.Fatalf("sample rows=%d", s.Data.Rows())
	}
	if s.BaseRows != 10000 {
		t.Fatalf("base rows=%d", s.BaseRows)
	}
	if s.Batches() != DefaultBatches {
		t.Fatalf("batches=%d", s.Batches())
	}
	// Sample mean must approximate the base mean.
	col, _ := tb.Schema().Lookup("val")
	base := tb.Stats(col).Mean
	samp := s.Data.Stats(col).Mean
	if math.Abs(base-samp) > 3 {
		t.Fatalf("sample mean %v far from base %v", samp, base)
	}
	if _, err := BuildSample(tb, 0, 0, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := BuildSample(tb, 1.5, 0, 1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestBatchBounds(t *testing.T) {
	tb := buildTable(t, 105)
	s, err := BuildSample(tb, 1.0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Batches() != 11 {
		t.Fatalf("batches=%d", s.Batches())
	}
	lo, hi := s.BatchBounds(10)
	if lo != 100 || hi != 105 {
		t.Fatalf("last batch=(%d,%d)", lo, hi)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	tb := buildTable(t, 2000)
	sample, err := BuildSample(tb, 1.0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)

	avgSn := snippetFor(t, tb, "SELECT AVG(val) FROM t WHERE week >= 20 AND week < 40")
	exact := e.Exact(avgSn)
	// E[val | 20<=week<40] = 10 + 30 = 40 approximately.
	if math.Abs(exact-40) > 1 {
		t.Fatalf("exact avg=%v", exact)
	}

	freqSn := snippetFor(t, tb, "SELECT COUNT(*) FROM t WHERE week >= 20 AND week < 40")
	frac := e.Exact(freqSn)
	if math.Abs(frac-0.2) > 0.05 {
		t.Fatalf("exact freq=%v", frac)
	}
}

func TestOnlineAggregationConverges(t *testing.T) {
	tb := buildTable(t, 20000)
	sample, err := BuildSample(tb, 0.5, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	sn := snippetFor(t, tb, "SELECT AVG(val) FROM t WHERE week < 50")
	exact := e.Exact(sn)

	var errs []float64
	var stderrs []float64
	e.OnlineAggregate([]*query.Snippet{sn}, func(u BatchUpdate) bool {
		if u.Valid[0] {
			errs = append(errs, math.Abs(u.Estimates[0].Value-exact))
			stderrs = append(stderrs, u.Estimates[0].StdErr)
		}
		return true
	})
	if len(errs) < 10 {
		t.Fatalf("too few updates: %d", len(errs))
	}
	// Standard errors must decrease monotonically (more data each batch).
	for i := 1; i < len(stderrs); i++ {
		if stderrs[i] > stderrs[i-1]*1.05 {
			t.Fatalf("stderr grew: %v -> %v", stderrs[i-1], stderrs[i])
		}
	}
	// Final estimate should be close to exact.
	if errs[len(errs)-1] > 0.5 {
		t.Fatalf("final error=%v", errs[len(errs)-1])
	}
	// Final stderr should be plausible (same order as final error).
	if stderrs[len(stderrs)-1] > 1 {
		t.Fatalf("final stderr=%v", stderrs[len(stderrs)-1])
	}
}

func TestOnlineAggregationEarlyStop(t *testing.T) {
	tb := buildTable(t, 5000)
	sample, err := BuildSample(tb, 1.0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	sn := snippetFor(t, tb, "SELECT AVG(val) FROM t")
	steps := 0
	e.OnlineAggregate([]*query.Snippet{sn}, func(u BatchUpdate) bool {
		steps++
		return steps < 3
	})
	if steps != 3 {
		t.Fatalf("early stop ignored: steps=%d", steps)
	}
}

func TestCLTErrorCalibration(t *testing.T) {
	// Across many resamples, the actual error should be below 2·stderr
	// roughly 95% of the time.
	tb := buildTable(t, 30000)
	sn := snippetFor(t, tb, "SELECT AVG(val) FROM t WHERE week < 30")
	sampleFull, err := BuildSample(tb, 1.0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact := NewEngine(tb, sampleFull, CachedCost).Exact(sn)

	covered, total := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		s, err := BuildSample(tb, 0.02, 0, 100+seed)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(tb, s, CachedCost)
		u := e.RunToCompletion([]*query.Snippet{sn})
		if !u.Valid[0] {
			continue
		}
		total++
		if math.Abs(u.Estimates[0].Value-exact) <= 1.96*u.Estimates[0].StdErr {
			covered++
		}
	}
	if total < 50 {
		t.Fatalf("too few valid runs: %d", total)
	}
	frac := float64(covered) / float64(total)
	if frac < 0.85 {
		t.Fatalf("CLT coverage too low: %v", frac)
	}
}

func TestFreqEstimateUnbiased(t *testing.T) {
	tb := buildTable(t, 20000)
	sn := snippetFor(t, tb, "SELECT COUNT(*) FROM t WHERE region = 'a'")
	sampleFull, _ := BuildSample(tb, 1.0, 0, 6)
	exact := NewEngine(tb, sampleFull, CachedCost).Exact(sn)

	var sum float64
	const reps = 40
	for seed := int64(0); seed < reps; seed++ {
		s, _ := BuildSample(tb, 0.05, 0, 200+seed)
		e := NewEngine(tb, s, CachedCost)
		u := e.RunToCompletion([]*query.Snippet{sn})
		sum += u.Estimates[0].Value
	}
	if math.Abs(sum/reps-exact) > 0.01 {
		t.Fatalf("freq biased: mean=%v exact=%v", sum/reps, exact)
	}
}

func TestTimeBound(t *testing.T) {
	tb := buildTable(t, 50000)
	sample, err := BuildSample(tb, 0.5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	cost := CostModel{Name: "test", PlanOverhead: 100 * time.Millisecond, RowsPerSecond: 10000}
	e := NewEngine(tb, sample, cost)
	sn := snippetFor(t, tb, "SELECT AVG(val) FROM t")

	short := e.TimeBound([]*query.Snippet{sn}, 600*time.Millisecond)
	long := e.TimeBound([]*query.Snippet{sn}, 2*time.Second)
	if short.RowsScanned >= long.RowsScanned {
		t.Fatalf("rows: short=%d long=%d", short.RowsScanned, long.RowsScanned)
	}
	if short.RowsScanned != 5000 {
		t.Fatalf("rows within 0.5s at 10k rows/s = %d, want 5000", short.RowsScanned)
	}
	if !short.Valid[0] || !long.Valid[0] {
		t.Fatal("estimates invalid")
	}
	if long.Estimates[0].StdErr >= short.Estimates[0].StdErr {
		t.Fatal("more time should reduce error")
	}
	// Budget below plan overhead scans nothing.
	none := e.TimeBound([]*query.Snippet{sn}, 50*time.Millisecond)
	if none.RowsScanned != 0 || none.Valid[0] {
		t.Fatalf("sub-overhead budget scanned %d rows", none.RowsScanned)
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{PlanOverhead: time.Second, RowsPerSecond: 1000, VirtualRowFactor: 10}
	if got := c.ScanTime(100); got != time.Second {
		t.Fatalf("ScanTime=%v", got) // 100 rows × 10 virtual = 1000 → 1s
	}
	if got := c.QueryTime(100); got != 2*time.Second {
		t.Fatalf("QueryTime=%v", got)
	}
	if got := c.RowsWithin(3 * time.Second); got != 200 {
		t.Fatalf("RowsWithin=%d", got)
	}
	if got := c.RowsWithin(time.Millisecond); got != 0 {
		t.Fatalf("RowsWithin tiny=%d", got)
	}
	if got := c.ScanTime(0); got != 0 {
		t.Fatalf("ScanTime(0)=%v", got)
	}
	s := CachedCost.Scaled(50)
	if s.VirtualRowFactor != 50 || CachedCost.VirtualRowFactor != 1 {
		t.Fatal("Scaled must copy")
	}
}

func TestGroupRows(t *testing.T) {
	tb := buildTable(t, 1000)
	sample, _ := BuildSample(tb, 1.0, 0, 8)
	e := NewEngine(tb, sample, CachedCost)
	rcol, _ := tb.Schema().Lookup("region")
	groups, err := e.GroupRows([]int{rcol}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups=%d", len(groups))
	}
	// Deterministic order.
	if groups[0][0].Str != "a" || groups[1][0].Str != "b" {
		t.Fatalf("group order: %v", groups)
	}
	// Ungrouped: one empty group.
	g2, err := e.GroupRows(nil, nil)
	if err != nil || len(g2) != 1 || g2[0] != nil {
		t.Fatalf("ungrouped=%v err=%v", g2, err)
	}
}

func TestAnswerCache(t *testing.T) {
	tb := buildTable(t, 100)
	sn := snippetFor(t, tb, "SELECT AVG(val) FROM t WHERE week < 50")
	c := NewAnswerCache()
	if _, ok := c.Lookup(sn); ok {
		t.Fatal("empty cache hit")
	}
	c.Store(sn, query.ScalarEstimate{Value: 1, StdErr: 5})
	c.Store(sn, query.ScalarEstimate{Value: 2, StdErr: 2}) // better
	c.Store(sn, query.ScalarEstimate{Value: 3, StdErr: 9}) // worse, ignored
	got, ok := c.Lookup(sn)
	if !ok || got.Value != 2 {
		t.Fatalf("cache=%+v ok=%v", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len=%d", c.Len())
	}
}

func TestSanitize(t *testing.T) {
	got := Sanitize(query.ScalarEstimate{Value: math.NaN(), StdErr: math.Inf(1)})
	if got.Value != 0 || got.StdErr != math.MaxFloat64 {
		t.Fatalf("sanitize=%+v", got)
	}
	keep := Sanitize(query.ScalarEstimate{Value: 2, StdErr: 0.5})
	if keep.Value != 2 || keep.StdErr != 0.5 {
		t.Fatal("sanitize altered good estimate")
	}
}

func TestSamplePrefixUniformProperty(t *testing.T) {
	// Any prefix of the shuffled sample must estimate the population mean
	// without systematic bias (property over seeds).
	tb := buildTable(t, 5000)
	col, _ := tb.Schema().Lookup("val")
	base := tb.Stats(col).Mean
	f := func(seed int64) bool {
		s, err := BuildSample(tb, 0.5, 0, seed)
		if err != nil {
			return false
		}
		// First 10% of the sample.
		n := s.Data.Rows() / 10
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.Data.NumAt(i, col)
		}
		return math.Abs(sum/float64(n)-base) < 5
	}
	// Pinned source: with a time-seeded generator the 5-unit tolerance
	// fails for a small fraction of seeds, making the suite flaky.
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParallelScanMatchesSequential(t *testing.T) {
	// A wide snippet set (above parallelThreshold) must produce exactly the
	// same estimates as narrow sets evaluated one by one.
	tb := buildTable(t, 8000)
	sample, err := BuildSample(tb, 0.5, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	var snips []*query.Snippet
	for i := 0; i < 20; i++ {
		lo := float64(i * 5)
		sql := "SELECT AVG(val) FROM t WHERE week >= " + strconv.Itoa(i*4) + " AND week < " + strconv.Itoa(i*4+20)
		_ = lo
		snips = append(snips, snippetFor(t, tb, sql))
	}
	wide := e.RunToCompletion(snips)
	for i, sn := range snips {
		single := e.RunToCompletion([]*query.Snippet{sn})
		if wide.Valid[i] != single.Valid[0] {
			t.Fatalf("snippet %d validity differs", i)
		}
		if !wide.Valid[i] {
			continue
		}
		if wide.Estimates[i] != single.Estimates[0] {
			t.Fatalf("snippet %d: wide=%+v single=%+v", i, wide.Estimates[i], single.Estimates[0])
		}
	}
}
