package aqp

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/randx"
	"repro/internal/storage"
)

// Epoch-swap sample rebuild. Streamed appends extend the sample at its
// tail (Engine.Append), so a long-running server's sample slowly loses the
// property online aggregation depends on: that *any prefix* is itself a
// uniform random sample of the grown relation. Full-sample estimates stay
// unbiased — each append stratum is drawn at the same fraction — but short
// online-aggregation prefixes skew toward older data, and the paper's
// Lemma 3 variance accounting assumes prefix-uniformity when a query stops
// early. RebuildSample restores it during quiet periods: it re-lays-out
// the sample into a fresh layout and republishes atomically, while queries
// pinned to the old generation keep scanning it untouched.

// RebuildOptions tunes the layout RebuildSample produces.
type RebuildOptions struct {
	// ClusterColumn, when >= 0 (and Partitions <= 0), names a numeric column
	// to build a block-clustered, zone-map-friendly layout around: rows are
	// sorted by the column, chunked into storage.BlockSize blocks (each
	// spanning a narrow value range, so Region.PruneBlock skips most of
	// them), and the *blocks* are emitted in random order. Prefixes are then
	// uniform over blocks rather than rows — a cluster sample: still
	// unbiased across the block draw, but with higher short-prefix variance
	// when the cluster column correlates with the measure. When < 0 (the
	// default), the rebuild is a pure row shuffle: every prefix is a uniform
	// row sample, and zone maps stay as loose as any shuffled layout's.
	ClusterColumn int
	// Partitions, when >= 1, builds the stratified partitioned layout
	// instead: the sample is split into storage.SampleStrata immutable
	// micro-strata grouped into this many serving partitions (clamped to
	// [1, SampleStrata]). Unlike ClusterColumn's block-cluster tradeoff, the
	// stratified layout keeps row-level prefix-uniformity AND tight zone
	// maps simultaneously, and answers are bit-identical for every partition
	// count. ClusterColumn is ignored when Partitions >= 1.
	Partitions int
	// StratumColumn, when >= 0 and Partitions >= 1, range-partitions rows on
	// that numeric column by quantile rank, so each stratum covers a narrow
	// value slice and zone maps prune selective predicates on it. When < 0
	// strata are assigned round-robin over the shuffled order (prefix-uniform
	// but without zone-map locality).
	StratumColumn int
}

// DefaultRebuildOptions selects the pure-shuffle, prefix-uniform,
// unpartitioned layout.
func DefaultRebuildOptions() RebuildOptions {
	return RebuildOptions{ClusterColumn: -1, StratumColumn: -1}
}

// ErrBadLayout reports RebuildOptions that name an unusable layout column.
// Errors carrying it are *LayoutError; errors.Is(err, ErrBadLayout) matches.
var ErrBadLayout = errors.New("aqp: invalid sample layout")

// LayoutError is the concrete invalid-layout error: it names the offending
// option field and column index so the serving layer can build a structured
// 400 from it.
type LayoutError struct {
	Field  string // "cluster_column" or "stratum_column"
	Column int
	Reason string
}

func (e *LayoutError) Error() string {
	return fmt.Sprintf("aqp: %s %d is %s", e.Field, e.Column, e.Reason)
}

// Is makes errors.Is(err, ErrBadLayout) succeed.
func (e *LayoutError) Is(target error) bool { return target == ErrBadLayout }

// validateLayout checks the layout column the options would actually use:
// clusterShuffledIndices and the stratified build both sort on a numeric
// column, so a categorical or out-of-range index must be rejected up front
// (it used to panic deep inside the rebuild).
func validateLayout(schema *storage.Schema, opts RebuildOptions) error {
	check := func(field string, col int) error {
		switch {
		case col < 0:
			return nil
		case col >= schema.Len():
			return &LayoutError{Field: field, Column: col, Reason: "out of range"}
		case schema.Col(col).Kind != storage.Numeric:
			return &LayoutError{Field: field, Column: col, Reason: "not a numeric column"}
		}
		return nil
	}
	if opts.Partitions >= 1 {
		return check("stratum_column", opts.StratumColumn)
	}
	return check("cluster_column", opts.ClusterColumn)
}

// RebuildSample re-lays-out the sample (per opts) and swaps it in as the
// next sample generation. The swap is atomic with respect to readers: in-
// flight queries keep their pinned view of the old generation, whose final
// state is retired frozen so ViewAtGen can replay any historical prefix of
// it; the next Acquire observes the new layout. The sample's *content* (row
// multiset, fraction, batch size, base cardinality) is unchanged — only the
// physical order moves — so the synopsis and every full-sample answer are
// unaffected.
//
// With opts.Partitions >= 1 the rebuild produces the stratified partitioned
// layout: every micro-stratum gets its own generation-swapped frozen table
// under this one sample generation, and fresh appends land in a new empty
// tail. The stratum assignment and interleave index depend only on the seed
// and the stratum column — never on the partition count — so rebuilds
// preserve partition-count invariance.
//
// Rebuilding is O(sample size) time and memory and serializes with Append;
// run it in quiet periods (the serving layer's auto-rebuild trigger does).
// Each retired generation keeps its rows reachable — one sample-sized
// layout per rebuild — until the retention bound evicts it: with
// SetMaxRetainedGens(0) (the default) replay prefixes are immortal and the
// retained set grows one generation per rebuild for the life of the engine;
// with a positive bound the oldest unpinned generations are dropped here,
// so long-running servers hold at most that many retired generations (plus
// any pinned by live streams). Returns the new generation number; on an
// invalid layout (see validateLayout) it returns the current generation and
// an error wrapping ErrBadLayout, leaving the sample untouched.
func (e *Engine) RebuildSample(seed int64, opts RebuildOptions) (uint64, error) {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	cur := e.sample.Load()
	if err := validateLayout(cur.Data.Schema(), opts); err != nil {
		return cur.Gen, err
	}
	// A successful explicit layout becomes the engine default, so subsequent
	// default rebuilds (the serving layer's auto-rebuild) preserve it.
	e.layout = opts
	whole := cur.materialize()
	ns := *cur
	if opts.Partitions >= 1 {
		idx := randx.New(seed).Perm(whole.Rows())
		ns.Parts = storage.BuildStratified(whole, idx, opts.StratumColumn, opts.Partitions)
		// The tail starts empty, sharing schema and dictionaries with the
		// strata so appended codes stay consistent across spans.
		ns.Data = whole.SelectRows(whole.Name(), nil)
	} else {
		var idx []int
		if opts.ClusterColumn >= 0 {
			idx = clusterShuffledIndices(whole, opts.ClusterColumn, seed)
		} else {
			idx = randx.New(seed).Perm(whole.Rows())
		}
		ns.Parts = nil
		ns.Data = whole.SelectRows(whole.Name(), idx)
	}
	// Retire the old generation frozen: pinned views already share its
	// backing arrays, and replays need its prefixes for as long as the
	// retention bound (SetMaxRetainedGens; 0 = forever) keeps them. The
	// retired Sample keeps its Parts pointer — strata are already frozen —
	// so partitioned generations replay through the same span logic.
	rs := *cur
	rs.Data = cur.Data.Snapshot()
	e.retired = append(e.retired, &rs)
	ns.Gen = cur.Gen + 1
	e.sample.Store(&ns)
	e.evictLocked()
	e.publishLocked()
	return ns.Gen, nil
}

// SampleGen returns the current sample generation.
func (e *Engine) SampleGen() uint64 { return e.sample.Load().Gen }

// bootLayoutSeed shuffles the in-place gen-0 re-stratification performed by
// SetSampleLayout. Fixed so the boot layout is deterministic for a given
// dataset and configuration (and identical for every partition count).
const bootLayoutSeed = 0x5eed0917

// SetSampleLayout installs the engine's default rebuild layout and, when it
// selects a partitioned layout, re-stratifies the live sample in place at
// its current generation (under bootLayoutSeed, so the result is
// deterministic and partition-count invariant). Like SetScanMode, this is a
// boot-time call: it does not bump the sample generation, so replays of
// queries served *before* the call against a re-laid-out generation would
// be meaningless. Returns an error wrapping ErrBadLayout (and changes
// nothing) when the options name an unusable column.
func (e *Engine) SetSampleLayout(opts RebuildOptions) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	cur := e.sample.Load()
	if err := validateLayout(cur.Data.Schema(), opts); err != nil {
		return err
	}
	e.layout = opts
	if opts.Partitions >= 1 {
		whole := cur.materialize()
		idx := randx.New(bootLayoutSeed).Perm(whole.Rows())
		ns := *cur
		ns.Parts = storage.BuildStratified(whole, idx, opts.StratumColumn, opts.Partitions)
		ns.Data = whole.SelectRows(whole.Name(), nil)
		e.sample.Store(&ns)
		e.view.Store(nil)
	} else if cur.Parts != nil {
		whole := cur.materialize()
		ns := *cur
		ns.Parts = nil
		ns.Data = whole
		e.sample.Store(&ns)
		e.view.Store(nil)
	}
	return nil
}

// Layout returns the engine's default rebuild layout (see SetSampleLayout).
func (e *Engine) Layout() RebuildOptions {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.layout
}

// PartitionStat summarizes one serving partition of the live sample for the
// serving layer's /stats and /metrics surfaces.
type PartitionStat struct {
	// Partition is the partition index in [0, K).
	Partition int
	// Strata is how many micro-strata the partition groups.
	Strata int
	// Rows is the partition's row count (tail rows excluded).
	Rows int
	// Gen is the sample generation the partition's strata were built under;
	// rebuilds swap every stratum under one generation, so all partitions
	// report the same value.
	Gen uint64
	// ZoneSelectivity is the mean stratum-column zone-map width over the
	// partition's blocks relative to the column domain (see
	// storage.PartitionedSample.ZoneSelectivity); near 0 means selective
	// predicates on the stratum column prune almost every block.
	ZoneSelectivity float64
}

// PartitionStats reports the live sample's per-partition statistics, or nil
// for an unpartitioned sample. Lock-free.
func (e *Engine) PartitionStats() []PartitionStat {
	s := e.sample.Load()
	if s.Parts == nil {
		return nil
	}
	out := make([]PartitionStat, s.Parts.NumPartitions())
	for p := range out {
		lo, hi := s.Parts.PartitionStrata(p)
		out[p] = PartitionStat{
			Partition:       p,
			Strata:          hi - lo,
			Rows:            s.Parts.PartitionRows(p),
			Gen:             s.Gen,
			ZoneSelectivity: s.Parts.ZoneSelectivity(p),
		}
	}
	return out
}

// clusterShuffledIndices orders rows by the cluster column, chunks the
// sorted order into BlockSize runs, and shuffles the full runs; the
// partial tail run stays last so every run lands block-aligned in the
// rebuilt table (a mid-stream partial run would shift later runs across
// block boundaries and widen their zone maps). Sorting is stable so equal
// keys keep their (already shuffled) relative order.
func clusterShuffledIndices(t *storage.Table, col int, seed int64) []int {
	n := t.Rows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	keys := t.NumericCol(col)
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	full := n / storage.BlockSize
	order := randx.New(seed).Perm(full)
	out := make([]int, 0, n)
	for _, b := range order {
		lo := b * storage.BlockSize
		out = append(out, idx[lo:lo+storage.BlockSize]...)
	}
	return append(out, idx[full*storage.BlockSize:]...)
}
