package aqp

import (
	"sort"

	"repro/internal/randx"
	"repro/internal/storage"
)

// Epoch-swap sample rebuild. Streamed appends extend the sample at its
// tail (Engine.Append), so a long-running server's sample slowly loses the
// property online aggregation depends on: that *any prefix* is itself a
// uniform random sample of the grown relation. Full-sample estimates stay
// unbiased — each append stratum is drawn at the same fraction — but short
// online-aggregation prefixes skew toward older data, and the paper's
// Lemma 3 variance accounting assumes prefix-uniformity when a query stops
// early. RebuildSample restores it during quiet periods: it re-lays-out
// the sample into a fresh table and republishes atomically, while queries
// pinned to the old generation keep scanning it untouched.

// RebuildOptions tunes the layout RebuildSample produces.
type RebuildOptions struct {
	// ClusterColumn, when >= 0, names a numeric column to build a
	// block-clustered, zone-map-friendly layout around: rows are sorted by
	// the column, chunked into storage.BlockSize blocks (each spanning a
	// narrow value range, so Region.PruneBlock skips most of them), and the
	// *blocks* are emitted in random order. Prefixes are then uniform over
	// blocks rather than rows — a cluster sample: still unbiased across the
	// block draw, but with higher short-prefix variance when the cluster
	// column correlates with the measure. When < 0 (the default), the
	// rebuild is a pure row shuffle: every prefix is a uniform row sample,
	// and zone maps stay as loose as any shuffled layout's.
	ClusterColumn int
}

// DefaultRebuildOptions selects the pure-shuffle, prefix-uniform layout.
func DefaultRebuildOptions() RebuildOptions {
	return RebuildOptions{ClusterColumn: -1}
}

// RebuildSample re-lays-out the sample into a fresh table (per opts) and
// swaps it in as the next sample generation. The swap is atomic with
// respect to readers: in-flight queries keep their pinned view of the old
// generation, whose final state is retired frozen so ViewAtGen can replay
// any historical prefix of it; the next Acquire observes the new layout.
// The sample's *content* (row multiset, fraction, batch size, base
// cardinality) is unchanged — only the physical order moves — so the
// synopsis and every full-sample answer are unaffected.
//
// Rebuilding is O(sample size) time and memory and serializes with Append;
// run it in quiet periods (the serving layer's auto-rebuild trigger does).
// Each retired generation keeps its rows reachable — one sample-sized
// table per rebuild — until the retention bound evicts it: with
// SetMaxRetainedGens(0) (the default) replay prefixes are immortal and the
// retained set grows one table per rebuild for the life of the engine;
// with a positive bound the oldest unpinned generations are dropped here,
// so long-running servers hold at most that many retired tables (plus any
// pinned by live streams). Returns the new generation number.
func (e *Engine) RebuildSample(seed int64, opts RebuildOptions) uint64 {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	cur := e.sample.Load()
	old := cur.Data
	var idx []int
	if opts.ClusterColumn >= 0 {
		idx = clusterShuffledIndices(old, opts.ClusterColumn, seed)
	} else {
		idx = randx.New(seed).Perm(old.Rows())
	}
	data := old.SelectRows(old.Name(), idx)
	// Retire the old generation frozen: pinned views already share its
	// backing arrays, and replays need its prefixes for as long as the
	// retention bound (SetMaxRetainedGens; 0 = forever) keeps them.
	e.retired = append(e.retired, old.Snapshot())
	ns := *cur
	ns.Data = data
	ns.Gen = cur.Gen + 1
	e.sample.Store(&ns)
	e.evictLocked()
	e.publishLocked()
	return ns.Gen
}

// SampleGen returns the current sample generation.
func (e *Engine) SampleGen() uint64 { return e.sample.Load().Gen }

// clusterShuffledIndices orders rows by the cluster column, chunks the
// sorted order into BlockSize runs, and shuffles the full runs; the
// partial tail run stays last so every run lands block-aligned in the
// rebuilt table (a mid-stream partial run would shift later runs across
// block boundaries and widen their zone maps). Sorting is stable so equal
// keys keep their (already shuffled) relative order.
func clusterShuffledIndices(t *storage.Table, col int, seed int64) []int {
	n := t.Rows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	keys := t.NumericCol(col)
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	full := n / storage.BlockSize
	order := randx.New(seed).Perm(full)
	out := make([]int, 0, n)
	for _, b := range order {
		lo := b * storage.BlockSize
		out = append(out, idx[lo:lo+storage.BlockSize]...)
	}
	return append(out, idx[full*storage.BlockSize:]...)
}
