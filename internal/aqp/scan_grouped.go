package aqp

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/storage"
)

// One-scan grouped aggregation. A G-group query decomposes into G·S snippets
// whose regions differ only in the single dictionary code each grouping
// column carries, so the per-snippet scan evaluates the shared WHERE region
// G·S times per block. The grouped kernel here evaluates the factored base
// region ONCE per block into a selection vector, reads the grouping columns'
// code slices to scatter each matched row to its group's accumulator bank
// slot, and updates S moment accumulators per touched group. Two drivers
// share the kernel:
//
//   - the static driver (scanRangeGrouped) serves an already-decomposed
//     snippet list through the unchanged scanUnits/merge pipeline: each work
//     unit expands its banks back into the per-snippet []partial layout, so
//     unit ordering, progressive resumption and inference are untouched;
//   - the discovery driver (scanRangeDiscover / GroupedRunToCompletion)
//     allocates bank slots as rows reveal new code tuples, folding the old
//     GroupRows rescan into the aggregation pass for one-shot executions.
//
// Float-identity with the per-snippet path is by construction, not by
// accident, and the argument is worth recording. Within a block the
// reference kernel reduces to exactly two shapes: FREQ does
// AddWeighted(1, match) then AddZeros(rows−match) (its BlockEmpty/BlockFull
// branches are the match=0 and match=rows specializations — AddWeighted with
// weight 0 is a no-op and AddZeros is exact on any state), and AVG does one
// AddSlice over the group's matched rows in ascending order (BlockEmpty
// adds nothing, empty AddSlice is a no-op). The grouped kernel reproduces
// both verbatim per group: the stable counting-sort scatter keeps each
// group's rows ascending, and group discovery order cannot matter because a
// group's pre-discovery FREQ prefix is all zeros — a pure count — which one
// AddZeros(rowsBefore) at first-sight reproduces bit-for-bit ({n,0,0} merged
// with {k,0,0} is exactly {n+k,0,0}). The same consolidation argument makes
// the cross-unit backfill (absent group in a finished unit) exact.

// famSlot is the resolved scan form of one snippet of the per-group family.
type famSlot struct {
	kind       query.AggKind
	measure    func(*storage.Table, int) float64
	measureCol int // bare-column measure index; -1 when unavailable
}

// groupedScan is the immutable, worker-shared description of a grouped scan.
type groupedScan struct {
	base      *query.Region
	groupCols []int
	family    []famSlot
	avgFams   []int  // family indexes of AVG slots, in family order
	avgIdx    []int  // family index -> position in avgFams, or -1 for FREQ
	shifts    []uint // code-packing bit widths (multi-column keys)

	// Static (pre-decomposed) form.
	slots   *query.SlotTable
	nGroups int
	stride  int

	// Discovery form: slots are allocated per work unit as codes appear.
	discover bool
}

func familyOf(gs *groupedScan, kinds []query.AggKind, measures []func(*storage.Table, int) float64, cols []int) {
	gs.family = make([]famSlot, len(kinds))
	gs.avgIdx = make([]int, len(kinds))
	for j := range kinds {
		gs.family[j] = famSlot{kind: kinds[j], measure: measures[j], measureCol: cols[j]}
		gs.avgIdx[j] = -1
		if kinds[j] == query.AvgAgg {
			gs.avgIdx[j] = len(gs.avgFams)
			gs.avgFams = append(gs.avgFams, j)
		}
	}
}

// newGroupedScan compiles a factored plan into the static scan form.
func newGroupedScan(pl *query.GroupedPlan) *groupedScan {
	gs := &groupedScan{
		base:      pl.Base,
		groupCols: pl.GroupCols,
		shifts:    pl.Slots.Shifts,
		slots:     pl.Slots,
		nGroups:   len(pl.Groups),
		stride:    pl.Stride,
	}
	kinds := make([]query.AggKind, pl.Stride)
	measures := make([]func(*storage.Table, int) float64, pl.Stride)
	cols := make([]int, pl.Stride)
	for j, f := range pl.Family {
		kinds[j], measures[j], cols[j] = f.Kind, f.Measure, f.MeasureCol
	}
	familyOf(gs, kinds, measures, cols)
	return gs
}

// newDiscoverScan compiles a grouped spec into the discovery scan form.
func newDiscoverScan(spec *query.GroupedSpec) *groupedScan {
	gs := &groupedScan{
		base:      spec.Base,
		groupCols: spec.GroupCols,
		shifts:    spec.Shifts,
		discover:  true,
	}
	kinds := make([]query.AggKind, len(spec.Family))
	measures := make([]func(*storage.Table, int) float64, len(spec.Family))
	cols := make([]int, len(spec.Family))
	for j, sn := range spec.Family {
		kinds[j], measures[j], cols[j] = sn.Kind, sn.Measure, -1
		if col, ok := sn.MeasureColumn(); ok {
			cols[j] = col
		}
	}
	familyOf(gs, kinds, measures, cols)
	return gs
}

// factorAccs offers an accumulator list to the grouped factoring; nil means
// the shape is not a grouped decomposition and the per-snippet path runs.
func factorAccs(accs []*accumulator) *groupedScan {
	if len(accs) < 2 {
		return nil
	}
	snips := make([]*query.Snippet, len(accs))
	for i, a := range accs {
		snips[i] = a.sn
	}
	pl := query.FactorGroups(snips)
	if pl == nil {
		return nil
	}
	return newGroupedScan(pl)
}

// groupedScratch is one worker's accumulator-bank state, reset per work unit.
type groupedScratch struct {
	freq []mathx.Moments   // per slot: FREQ moments (shared by all FREQ fams)
	avg  [][]mathx.Moments // per AVG family: per-slot moments
	seen []bool            // slot observed in this unit
	// Per-block scatter state.
	counts   []int32 // per slot: matches in the current block
	starts   []int32 // per slot: cursor into rowsBuf during the scatter
	touched  []int32 // slots with counts>0 in the current block
	active   []int32 // slots seen so far in this unit, first-sight order
	slotsBuf []int32 // per selected row: its slot (-1 = unplanned group)
	rowsBuf  []int32 // selected rows regrouped contiguously per slot
	cols     [][]int32

	// Discovery-mode slot allocation (per unit).
	dense   []int32          // 1 grouping column: code -> slot, -1 free
	packed  map[uint64]int32 // >1 grouping column: packed key -> slot
	codesOf [][]int32        // slot -> its code tuple
	nslots  int
}

// ensureGrouped lazily builds the worker's scratch for gs against data. A
// blockScanner serves exactly one scan call, so the layout never changes
// between units.
func (s *blockScanner) ensureGrouped(gs *groupedScan, data *storage.Table) *groupedScratch {
	sc := s.g
	if sc == nil {
		sc = &groupedScratch{}
		s.g = sc
		sc.avg = make([][]mathx.Moments, len(gs.avgFams))
		if gs.discover {
			if len(gs.groupCols) == 1 {
				size := data.DictOf(gs.groupCols[0]).Size()
				sc.dense = make([]int32, size)
				for i := range sc.dense {
					sc.dense[i] = -1
				}
			} else {
				sc.packed = make(map[uint64]int32)
			}
		} else {
			n := gs.nGroups
			sc.freq = make([]mathx.Moments, n)
			sc.seen = make([]bool, n)
			sc.counts = make([]int32, n)
			sc.starts = make([]int32, n)
			for k := range sc.avg {
				sc.avg[k] = make([]mathx.Moments, n)
			}
		}
	}
	sc.cols = sc.cols[:0]
	for _, col := range gs.groupCols {
		sc.cols = append(sc.cols, data.CodesCol(col))
	}
	return sc
}

// allocSlot claims the next bank slot for a newly discovered code tuple,
// growing (or reusing pooled) storage as needed.
func (sc *groupedScratch) allocSlot(nAvg int, tuple []int32) int32 {
	slot := sc.nslots
	sc.nslots++
	if slot == len(sc.freq) {
		sc.freq = append(sc.freq, mathx.Moments{})
		sc.seen = append(sc.seen, false)
		sc.counts = append(sc.counts, 0)
		sc.starts = append(sc.starts, 0)
		for k := 0; k < nAvg; k++ {
			sc.avg[k] = append(sc.avg[k], mathx.Moments{})
		}
		sc.codesOf = append(sc.codesOf, nil)
	}
	sc.codesOf[slot] = append(sc.codesOf[slot][:0], tuple...)
	return int32(slot)
}

// resetGrouped zeroes the state the finished unit dirtied, keeping capacity.
func (s *blockScanner) resetGrouped(gs *groupedScan) {
	sc := s.g
	for _, slot := range sc.active {
		sc.freq[slot] = mathx.Moments{}
		for k := range sc.avg {
			sc.avg[k][slot] = mathx.Moments{}
		}
		sc.seen[slot] = false
		if gs.discover {
			tuple := sc.codesOf[slot]
			if sc.dense != nil {
				sc.dense[tuple[0]] = -1
			} else {
				delete(sc.packed, query.PackKey(tuple, gs.shifts))
			}
		}
	}
	sc.active = sc.active[:0]
	sc.nslots = 0
}

// runGroupedUnit executes the shared kernel over blocks [b0, b1) clipped to
// [start, end), leaving per-slot moments in the scratch banks. Returns the
// number of rows scanned.
func (s *blockScanner) runGroupedUnit(data *storage.Table, gs *groupedScan, b0, b1, start, end int) int {
	sc := s.ensureGrouped(gs, data)
	if s.sel == nil {
		s.sel = make([]int32, 0, storage.BlockSize)
	}
	scanned := 0
	var tuple [8]int32
	for b := b0; b < b1; b++ {
		blo, bhi := data.BlockBounds(b)
		if blo < start {
			blo = start
		}
		if bhi > end {
			bhi = end
		}
		if bhi <= blo {
			continue
		}
		rows := bhi - blo
		// One zone-map consult and at most one region evaluation per block —
		// this is the whole point of the factoring.
		decision := gs.base.PruneBlock(data, b)
		if decision == query.BlockEmpty {
			for _, slot := range sc.active {
				sc.freq[slot].AddZeros(int64(rows))
			}
			scanned += rows
			continue
		}
		var sel []int32
		if decision == query.BlockFull {
			buf := s.sel
			if cap(buf) < rows {
				buf = make([]int32, 0, rows)
			}
			buf = buf[:rows]
			for i := range buf {
				buf[i] = int32(blo + i)
			}
			s.sel = buf
			sel = buf
		} else {
			s.sel = gs.base.MatchBlock(data, blo, bhi, s.sel)
			sel = s.sel
		}
		match := len(sel)
		if match == 0 {
			for _, slot := range sc.active {
				sc.freq[slot].AddZeros(int64(rows))
			}
			scanned += rows
			continue
		}
		// Scatter pass 1: slot per selected row, per-slot counts.
		if cap(sc.slotsBuf) < match {
			sc.slotsBuf = make([]int32, match)
		}
		slotsBuf := sc.slotsBuf[:match]
		touched := sc.touched
		if len(gs.groupCols) == 1 {
			codes0 := sc.cols[0]
			if gs.discover {
				for k, r := range sel {
					c := codes0[r]
					slot := sc.dense[c]
					if slot < 0 {
						tuple[0] = c
						slot = sc.allocSlot(len(gs.avgFams), tuple[:1])
						sc.dense[c] = slot
					}
					slotsBuf[k] = slot
					if sc.counts[slot] == 0 {
						touched = append(touched, slot)
					}
					sc.counts[slot]++
				}
			} else {
				dense := gs.slots.Dense
				for k, r := range sel {
					slot := dense[codes0[r]]
					slotsBuf[k] = slot
					if slot >= 0 {
						if sc.counts[slot] == 0 {
							touched = append(touched, slot)
						}
						sc.counts[slot]++
					}
				}
			}
		} else {
			for k, r := range sel {
				key := uint64(0)
				for j := range sc.cols {
					key = key<<gs.shifts[j] | uint64(uint32(sc.cols[j][r]))
				}
				var slot int32
				if gs.discover {
					var ok bool
					slot, ok = sc.packed[key]
					if !ok {
						tup := tuple[:0]
						for j := range sc.cols {
							tup = append(tup, sc.cols[j][r])
						}
						slot = sc.allocSlot(len(gs.avgFams), tup)
						sc.packed[key] = slot
					}
				} else {
					slot = gs.slots.Slot(key)
				}
				slotsBuf[k] = slot
				if slot >= 0 {
					if sc.counts[slot] == 0 {
						touched = append(touched, slot)
					}
					sc.counts[slot]++
				}
			}
		}
		// Register first-sighted groups: their pre-discovery FREQ history is
		// all zeros, consolidated into one exact AddZeros.
		for _, slot := range touched {
			if !sc.seen[slot] {
				sc.seen[slot] = true
				sc.freq[slot].AddZeros(int64(scanned))
				sc.active = append(sc.active, slot)
			}
		}
		// FREQ update for every live group, matched in this block or not —
		// the same AddWeighted/AddZeros pair the per-snippet kernel applies.
		for _, slot := range sc.active {
			c := int64(sc.counts[slot])
			sc.freq[slot].AddWeighted(1, c)
			sc.freq[slot].AddZeros(int64(rows) - c)
		}
		// Scatter pass 2 (AVG only): stable counting sort of the selection
		// vector by slot, so each group's rows stay ascending, then one
		// AddSlice per (AVG family, touched group).
		if len(gs.avgFams) > 0 {
			pos := int32(0)
			for _, slot := range touched {
				sc.starts[slot] = pos
				pos += sc.counts[slot]
			}
			if cap(sc.rowsBuf) < match {
				sc.rowsBuf = make([]int32, match)
			}
			rowsBuf := sc.rowsBuf[:match]
			for k, r := range sel {
				slot := slotsBuf[k]
				if slot < 0 {
					continue
				}
				rowsBuf[sc.starts[slot]] = r
				sc.starts[slot]++
			}
			vals := s.vals
			for fi, j := range gs.avgFams {
				fam := &gs.family[j]
				var col []float64
				if fam.measureCol >= 0 {
					col = data.NumericCol(fam.measureCol)
				}
				bank := sc.avg[fi]
				for _, slot := range touched {
					segEnd := sc.starts[slot]
					segStart := segEnd - sc.counts[slot]
					seg := rowsBuf[segStart:segEnd]
					vals = vals[:0]
					if col != nil {
						for _, r := range seg {
							vals = append(vals, col[r])
						}
					} else {
						for _, r := range seg {
							vals = append(vals, fam.measure(data, int(r)))
						}
					}
					bank[slot].AddSlice(vals)
				}
			}
			s.vals = vals
		}
		for _, slot := range touched {
			sc.counts[slot] = 0
		}
		sc.touched = touched[:0]
		scanned += rows
	}
	return scanned
}

// scanRangeGrouped runs the static grouped kernel over one work unit and
// expands the banks into the per-snippet partial layout scanUnits/merge
// expect: snippet i is group i/stride, family slot i%stride. A group unseen
// in this unit matched nothing: its FREQ partial is the pure count
// {scanned,0,0} and its AVG partial is empty — exactly what the per-snippet
// kernel would have produced.
func (s *blockScanner) scanRangeGrouped(data *storage.Table, gs *groupedScan, b0, b1, start, end int) []partial {
	scanned := s.runGroupedUnit(data, gs, b0, b1, start, end)
	sc := s.g
	parts := make([]partial, gs.nGroups*gs.stride)
	for i := range parts {
		slot := i / gs.stride
		j := i % gs.stride
		p := &parts[i]
		p.scanned = scanned
		if k := gs.avgIdx[j]; k >= 0 {
			if sc.seen[slot] {
				p.moments = sc.avg[k][slot]
			}
		} else if sc.seen[slot] {
			p.moments = sc.freq[slot]
		} else {
			p.moments.AddZeros(int64(scanned))
		}
	}
	s.resetGrouped(gs)
	return parts
}

// groupedPartial is one discovered group's moments for one work unit.
type groupedPartial struct {
	codes []int32
	freq  mathx.Moments
	avg   []mathx.Moments // one per AVG family slot, avgFams order
}

// groupedUnit is the discovery kernel's result for one work unit.
type groupedUnit struct {
	scanned int
	groups  []groupedPartial // first-sight order within the unit
}

// scanRangeDiscover runs the discovery kernel over one work unit, copying the
// touched banks out before the scratch resets.
func (s *blockScanner) scanRangeDiscover(data *storage.Table, gs *groupedScan, b0, b1, start, end int) groupedUnit {
	scanned := s.runGroupedUnit(data, gs, b0, b1, start, end)
	sc := s.g
	u := groupedUnit{scanned: scanned, groups: make([]groupedPartial, len(sc.active))}
	for i, slot := range sc.active {
		gp := &u.groups[i]
		gp.codes = append([]int32(nil), sc.codesOf[slot]...)
		gp.freq = sc.freq[slot]
		if len(gs.avgFams) > 0 {
			gp.avg = make([]mathx.Moments, len(gs.avgFams))
			for k := range sc.avg {
				gp.avg[k] = sc.avg[k][slot]
			}
		}
	}
	s.resetGrouped(gs)
	return u
}

// discoverUnits fans the discovery kernel out over work units [u0, u1) of the
// scan of rows [start, end) — the same fixed unit partition, work-stealing
// schedule and worker bounds as scanUnits, so per-unit results are
// independent of the worker count.
func discoverUnits(data *storage.Table, gs *groupedScan, u0, u1, start, end, maxWorkers int) []groupedUnit {
	if u1 <= u0 {
		return nil
	}
	b0 := start / storage.BlockSize
	b1 := (end - 1) / storage.BlockSize // inclusive
	parts := make([]groupedUnit, u1-u0)
	unitRange := func(u int) (int, int) {
		blo := b0 + u*unitBlocks
		bhi := blo + unitBlocks
		if bhi > b1+1 {
			bhi = b1 + 1
		}
		return blo, bhi
	}
	units := u1 - u0
	workers := maxWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	if maxW := (end - start + minRowsPerWorker - 1) / minRowsPerWorker; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		var sc blockScanner
		for u := u0; u < u1; u++ {
			blo, bhi := unitRange(u)
			parts[u-u0] = sc.scanRangeDiscover(data, gs, blo, bhi, start, end)
		}
		return parts
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc blockScanner
			for {
				u := u0 + int(next.Add(1)) - 1
				if u >= u1 {
					return
				}
				blo, bhi := unitRange(u)
				parts[u-u0] = sc.scanRangeDiscover(data, gs, blo, bhi, start, end)
			}
		}()
	}
	wg.Wait()
	return parts
}

// groupMaster is one discovered group's cross-unit master accumulator state.
type groupMaster struct {
	codes []int32
	freq  mathx.Moments
	avg   []mathx.Moments
	stamp int // last unit (1-based) that carried this group
}

// GroupedResult is the outcome of a discovery-scan execution.
type GroupedResult struct {
	// Groups holds the discovered group values in the same deterministic
	// order GroupRows would have returned (sorted composite string keys),
	// truncated to nmax.
	Groups [][]query.GroupValue
	// Truncated reports that more than nmax groups were discovered and the
	// tail was dropped — the silent Decompose cap, surfaced.
	Truncated bool
	// Update carries the final per-snippet estimates in Decompose order
	// (group-major, family-minor), matching the snippet list the caller
	// rebuilds via Decompose(stmt, t, Groups, nmax). When no group matched,
	// it matches the single nil-group (ungrouped) decomposition Decompose
	// falls back to.
	Update BatchUpdate
}

// GroupedRunToCompletion executes a grouped query in one pass over the
// sample: the discovery kernel aggregates and discovers groups block by
// block, and per-unit bank results fold into master accumulators in unit
// order — the same deterministic merge tree as the per-snippet scan, so the
// estimates are bit-identical to decomposing after a GroupRows pass. The
// scan walks the sample batch by batch exactly like RunToCompletion, so
// unit boundaries (and hence the float merge shape) match the legacy
// execution's final batch state.
// groupedFold is the carried cross-unit master state of a discovery scan:
// the per-group master accumulators, the code-key lookup, and the running
// unit/row counters the first-sight and absent-group backfills depend on.
// GroupedRunToCompletion drives a fresh fold over every batch; a
// GroupedStandingScan carries one across appends and folds only new
// batches. Both produce bit-identical results because foldRange executes
// the exact statement sequence of the original single-shot loop.
type groupedFold struct {
	masters []*groupMaster
	lookup  map[uint64]int
	scanned int // rows folded so far (scannedBefore in merge order)
	unitNo  int // units folded so far (1-based stamps)
}

func newGroupedFold() *groupedFold {
	return &groupedFold{lookup: make(map[uint64]int)}
}

// foldRange folds one batch's scan range [start, end) into the masters:
// discovery units in unit order, first-sight AddZeros backfill for newly
// discovered groups, absent-group AddZeros backfill per finished unit —
// the deterministic merge tree shared with the per-snippet scan.
func (f *groupedFold) foldRange(data *storage.Table, gs *groupedScan, start, end int) {
	b0 := start / storage.BlockSize
	b1 := (end - 1) / storage.BlockSize
	nblocks := b1 - b0 + 1
	units := (nblocks + unitBlocks - 1) / unitBlocks
	parts := discoverUnits(data, gs, 0, units, start, end, 0)
	for _, u := range parts {
		f.unitNo++
		for gi := range u.groups {
			gp := &u.groups[gi]
			key := query.PackKey(gp.codes, gs.shifts)
			idx, ok := f.lookup[key]
			if !ok {
				m := &groupMaster{codes: gp.codes}
				// Pre-discovery prefix: a pure zero count, exact.
				m.freq.AddZeros(int64(f.scanned))
				if len(gs.avgFams) > 0 {
					m.avg = make([]mathx.Moments, len(gs.avgFams))
				}
				idx = len(f.masters)
				f.masters = append(f.masters, m)
				f.lookup[key] = idx
			}
			m := f.masters[idx]
			m.freq.Merge(gp.freq)
			for k := range gp.avg {
				m.avg[k].Merge(gp.avg[k])
			}
			m.stamp = f.unitNo
		}
		// Backfill groups absent from this unit: the per-snippet partial
		// they would have merged is the pure count {u.scanned,0,0}.
		for _, m := range f.masters {
			if m.stamp != f.unitNo {
				m.freq.AddZeros(int64(u.scanned))
			}
		}
		f.scanned += u.scanned
	}
}

// clone deep-copies the fold so a partial tail batch can fold into a
// throwaway copy while the carried state stays pinned at the last complete
// batch. Master codes are shared (immutable after discovery); moments and
// stamps are value-copied.
func (f *groupedFold) clone() *groupedFold {
	out := &groupedFold{
		scanned: f.scanned,
		unitNo:  f.unitNo,
		lookup:  make(map[uint64]int, len(f.lookup)),
	}
	for k, v := range f.lookup {
		out.lookup[k] = v
	}
	out.masters = make([]*groupMaster, len(f.masters))
	for i, m := range f.masters {
		c := &groupMaster{codes: m.codes, freq: m.freq, stamp: m.stamp}
		if m.avg != nil {
			c.avg = append([]mathx.Moments(nil), m.avg...)
		}
		out.masters[i] = c
	}
	return out
}

// result orders, truncates and estimates the folded masters into a
// GroupedResult. It only reads the fold, which can keep extending after.
func (f *groupedFold) result(v *View, gs *groupedScan, spec *query.GroupedSpec, nmax, lastBatch int) *GroupedResult {
	data := v.Sample.Data
	masters := f.masters
	total := f.scanned

	// Order groups exactly as GroupRows would: by the "|"-joined composite
	// string key. Dictionaries are shared between base and sample, so the
	// decoded strings match the row-sourced ones.
	order := make([]int, len(masters))
	keys := make([]string, len(masters))
	for i, m := range masters {
		var sb strings.Builder
		for j, col := range spec.GroupCols {
			sb.WriteByte('|')
			sb.WriteString(data.DictOf(col).Value(m.codes[j]))
		}
		keys[i] = sb.String()
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	truncated := len(order) > nmax
	if truncated {
		order = order[:nmax]
	}

	res := &GroupedResult{Truncated: truncated}
	res.Groups = make([][]query.GroupValue, len(order))
	for i, mi := range order {
		m := masters[mi]
		gvs := make([]query.GroupValue, len(spec.GroupCols))
		for j, col := range spec.GroupCols {
			gvs[j] = query.GroupValue{Col: col, Str: data.DictOf(col).Value(m.codes[j])}
		}
		res.Groups[i] = gvs
	}

	stride := len(spec.Family)
	nOut := len(order)
	if nOut == 0 {
		// Zero matching groups: Decompose falls back to one ungrouped
		// decomposition over the base region. Synthesize its accumulators —
		// FREQ saw total zeros, AVG saw nothing.
		nOut = 1
	}
	upd := BatchUpdate{
		Estimates:   make([]query.ScalarEstimate, nOut*stride),
		Valid:       make([]bool, nOut*stride),
		RowsScanned: total,
		SimTime:     v.cost.QueryTime(total),
		Batch:       lastBatch,
	}
	for g := 0; g < nOut; g++ {
		var m *groupMaster
		if len(order) > 0 {
			m = masters[order[g]]
		}
		for j := 0; j < stride; j++ {
			acc := accumulator{sn: spec.Family[j], scanned: total, baseRows: v.Sample.BaseRows}
			if m != nil {
				if k := gs.avgIdx[j]; k >= 0 {
					acc.moments = m.avg[k]
				} else {
					acc.moments = m.freq
				}
			} else if gs.avgIdx[j] < 0 {
				acc.moments.AddZeros(int64(total))
			}
			upd.Estimates[g*stride+j], upd.Valid[g*stride+j] = acc.estimate()
		}
	}
	res.Update = upd
	return res
}

// GroupedRunToCompletion executes a grouped query in one pass over the
// sample: the discovery kernel aggregates and discovers groups block by
// block, and per-unit bank results fold into master accumulators in unit
// order — the same deterministic merge tree as the per-snippet scan, so the
// estimates are bit-identical to decomposing after a GroupRows pass. The
// scan walks the sample batch by batch exactly like RunToCompletion, so
// unit boundaries (and hence the float merge shape) match the legacy
// execution's final batch state.
func (v *View) GroupedRunToCompletion(spec *query.GroupedSpec, nmax int) *GroupedResult {
	if v.stages != nil {
		defer v.observeScan(obs.ModeOneShot, true, time.Now())
	}
	if nmax <= 0 {
		nmax = query.DefaultNmax
	}
	gs := newDiscoverScan(spec)
	f := newGroupedFold()
	lastBatch := 0
	for b := 0; b < v.Sample.Batches(); b++ {
		lastBatch = b
		start, end := v.Sample.BatchBounds(b)
		if end <= start {
			continue
		}
		for _, sp := range v.sampleSpans(start, end) {
			f.foldRange(sp.tbl, gs, sp.lo, sp.hi)
		}
	}
	return f.result(v, gs, spec, nmax, lastBatch)
}
