package aqp

import "repro/internal/storage"

// Scatter-gather over a partitioned sample. A global sample row range maps
// onto per-stratum row ranges through the interleave index; every execution
// path (one-shot, grouped, progressive, standing) walks the resulting spans
// in fixed stratum order — strata first, the unpartitioned tail last — and
// merges per-span moment state with the parallel-Welford operator. The scan
// granule is the stratum, never the partition, so the floating-point merge
// tree is a pure function of the layout and the scanned range: answers are
// bit-identical for every partition count K (partition-count invariance,
// the partitioned counterpart of the synopsis layer's shard-count
// invariance) and for serial replays of the same prefix.

// scanSpan is one contiguous per-table row range of a global scan range.
type scanSpan struct {
	tbl    *storage.Table
	lo, hi int
}

// sampleSpans maps the global sample range [g0, g1) onto per-stratum spans
// in stratum order, with the unpartitioned tail last. Empty spans are
// omitted. For an unpartitioned sample the result is the single span
// {Data, g0, g1}.
func (v *View) sampleSpans(g0, g1 int) []scanSpan {
	if g1 > v.SampleRows {
		g1 = v.SampleRows
	}
	if g0 < 0 {
		g0 = 0
	}
	if g1 <= g0 {
		return nil
	}
	parts := v.Sample.Parts
	if parts == nil {
		return []scanSpan{{v.Sample.Data, g0, g1}}
	}
	sr := parts.Rows()
	var spans []scanSpan
	if g0 < sr {
		b := g1
		if b > sr {
			b = sr
		}
		c0 := parts.PrefixCounts(g0, nil)
		c1 := parts.PrefixCounts(b, nil)
		for s := 0; s < parts.NumStrata(); s++ {
			if c1[s] > c0[s] {
				spans = append(spans, scanSpan{parts.Stratum(s), c0[s], c1[s]})
			}
		}
	}
	if g1 > sr {
		lo := g0 - sr
		if lo < 0 {
			lo = 0
		}
		spans = append(spans, scanSpan{v.Sample.Data, lo, g1 - sr})
	}
	return spans
}

// scan feeds the global sample range [start, end) into the accumulators:
// one direct sequential fold per span, in span order, using the view's scan
// mode. This is the batch-family fold shape (RunToCompletion, standing
// scans): spans extend the carried accumulators in place, exactly like the
// single-table per-batch scan did, so the K=1 merge tree is the degenerate
// one-span case of the same sequence.
func (v *View) scan(accs []*accumulator, start, end int) {
	for _, sp := range v.sampleSpans(start, end) {
		v.scanTable(sp.tbl, accs, sp.lo, sp.hi)
	}
}

// scanPrefix feeds the sample prefix [0, rows) into the accumulators with
// the progressive-family fold shape: each span folds into a fresh
// accumulator bank which then merges into accs, in span order — the exact
// emission sequence ProgressiveScan uses, so EvalPrefix replays streamed
// increments bit-for-bit. For an unpartitioned sample the single span folds
// directly (matching the carried-accumulator emission of the K=1 stream).
func (v *View) scanPrefix(accs []*accumulator, rows int) {
	if v.Sample.Parts == nil {
		v.scanTable(v.Sample.Data, accs, 0, rows)
		return
	}
	for _, sp := range v.sampleSpans(0, rows) {
		bank := freshAccs(accs)
		v.scanTable(sp.tbl, bank, sp.lo, sp.hi)
		mergeAccs(accs, bank)
	}
}

// freshAccs returns zero-state accumulators for the same snippets.
func freshAccs(accs []*accumulator) []*accumulator {
	out := make([]*accumulator, len(accs))
	for i, a := range accs {
		out[i] = &accumulator{sn: a.sn, baseRows: a.baseRows}
	}
	return out
}

// mergeAccs folds src's moment state into dst without touching src — the
// scatter-gather merge, applied in fixed span order.
func mergeAccs(dst, src []*accumulator) {
	for i := range dst {
		dst[i].moments.Merge(src[i].moments)
		dst[i].scanned += src[i].scanned
	}
}
