package aqp

import (
	"testing"

	"repro/internal/randx"
	"repro/internal/storage"
)

// regionBatch builds an append batch like appendBatch but drawing regions
// from the given list — letting tests introduce a region the base table has
// never seen, so the carried grouped fold must discover a new dictionary
// code mid-stream and backfill its master.
func regionBatch(t *testing.T, rows int, seed int64, regions []string) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "val", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("t_batch", schema)
	rng := randx.New(seed)
	for i := 0; i < rows; i++ {
		week := rng.Uniform(0, 100)
		region := regions[int(rng.Uniform(0, float64(len(regions))))%len(regions)]
		if err := tb.AppendRow([]storage.Value{
			storage.Num(week), storage.Str(region), storage.Num(10 + week),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// requireGroupedResultEqual asserts bit-for-bit equality between two grouped
// results: same groups in the same order, same truncation flag, and a
// bit-identical final update.
func requireGroupedResultEqual(t *testing.T, label string, got, want *GroupedResult) {
	t.Helper()
	if got.Truncated != want.Truncated {
		t.Fatalf("%s: truncated %v, fresh %v", label, got.Truncated, want.Truncated)
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups vs fresh %d", label, len(got.Groups), len(want.Groups))
	}
	for i := range want.Groups {
		if len(got.Groups[i]) != len(want.Groups[i]) {
			t.Fatalf("%s: group %d arity %d vs fresh %d", label, i, len(got.Groups[i]), len(want.Groups[i]))
		}
		for j := range want.Groups[i] {
			if got.Groups[i][j] != want.Groups[i][j] {
				t.Fatalf("%s: group %d value %d = %+v, fresh %+v", label, i, j, got.Groups[i][j], want.Groups[i][j])
			}
		}
	}
	requireBatchUpdateEqual(t, label, got.Update, want.Update)
}

// TestGroupedStandingScanMatchesRunToCompletion is the grouped incremental
// replay property: after every append — including one that births a region
// the fold has never seen — Refresh must equal a fresh
// GroupedRunToCompletion over the whole grown sample, bit for bit.
func TestGroupedStandingScanMatchesRunToCompletion(t *testing.T) {
	tb := buildTable(t, 20000)
	sample, err := BuildSample(tb, 0.5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	const sql = "SELECT region, AVG(val), COUNT(*) FROM t WHERE week BETWEEN 10 AND 60 GROUP BY region"
	gss := NewGroupedStandingScan()

	check := func(step string) {
		t.Helper()
		view := e.Acquire()
		// The spec rebinds against the grown table each refresh, exactly as
		// the core plan layer re-plans per notify; the fingerprint inside
		// Refresh decides whether the carried fold still applies.
		spec := specFor(t, e.Base(), sql)
		got, ok := gss.Refresh(view, spec, 0)
		if !ok {
			t.Fatalf("%s: Refresh refused a same-generation view", step)
		}
		fresh := e.ViewAt(view.BaseRows, view.SampleRows).GroupedRunToCompletion(specFor(t, e.Base(), sql), 0)
		requireGroupedResultEqual(t, step, got, fresh)
		if gss.Folded() > view.SampleRows {
			t.Fatalf("%s: folded %d rows beyond the %d-row sample", step, gss.Folded(), view.SampleRows)
		}
	}

	check("initial fold")
	check("refresh without append") // no new rows: emit must be reproducible
	folded := gss.Folded()
	for i, rows := range []int{100, 1, 5000, 2500} {
		if _, err := e.Append(appendBatch(t, rows, int64(50+i)), int64(i)); err != nil {
			t.Fatal(err)
		}
		check("after append " + itoa(rows))
	}
	// Group birth: a batch dominated by a region the base table never held.
	if _, err := e.Append(regionBatch(t, 6000, 99, []string{"c", "a"}), 77); err != nil {
		t.Fatal(err)
	}
	check("after new-region append")
	if gss.Folded() <= folded {
		t.Fatalf("carried fold never advanced past %d rows", gss.Folded())
	}
}

// TestGroupedStandingScanTruncation: the nmax cap and its Truncated flag
// must replay exactly through the carried fold as groups accumulate past
// the cap mid-stream.
func TestGroupedStandingScanTruncation(t *testing.T) {
	tb := buildTable(t, 12000)
	sample, err := BuildSample(tb, 0.5, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	const sql = "SELECT region, AVG(val) FROM t GROUP BY region"
	gss := NewGroupedStandingScan()

	check := func(step string) {
		t.Helper()
		view := e.Acquire()
		spec := specFor(t, e.Base(), sql)
		got, ok := gss.Refresh(view, spec, 2)
		if !ok {
			// Dictionary growth past a power of two rewidths the packed
			// keys and rightly invalidates the fold; rebind like the core
			// plan layer and pay one full fold.
			gss = NewGroupedStandingScan()
			if got, ok = gss.Refresh(view, spec, 2); !ok {
				t.Fatalf("%s: fresh scan refused its first view", step)
			}
		}
		fresh := e.ViewAt(view.BaseRows, view.SampleRows).GroupedRunToCompletion(specFor(t, e.Base(), sql), 2)
		requireGroupedResultEqual(t, step, got, fresh)
	}

	check("at cap") // two regions, nmax=2: full but not truncated
	if _, err := e.Append(regionBatch(t, 4000, 31, []string{"c", "d", "a"}), 5); err != nil {
		t.Fatal(err)
	}
	check("past cap") // four regions, nmax=2: truncated tail drops exactly alike
	if _, err := e.Append(regionBatch(t, 1500, 32, []string{"c", "d", "a", "b"}), 6); err != nil {
		t.Fatal(err)
	}
	check("past cap grown") // no new codes: the rebound fold must carry on
}

// TestGroupedStandingScanRefusesRebind pins the incompatibility contract: a
// rebuilt sample or a drifted spec fingerprint cannot extend a carried
// grouped fold — Refresh must report ok=false, and a replacement scan must
// replay the new state exactly.
func TestGroupedStandingScanRefusesRebind(t *testing.T) {
	tb := buildTable(t, 10000)
	sample, err := BuildSample(tb, 0.4, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	const sql = "SELECT region, AVG(val), COUNT(*) FROM t WHERE week < 70 GROUP BY region"
	gss := NewGroupedStandingScan()
	old := e.Acquire()
	if _, ok := gss.Refresh(old, specFor(t, e.Base(), sql), 0); !ok {
		t.Fatal("first Refresh refused")
	}

	// A different statement (different region bounds) must not extend the
	// carried fold even on the same view.
	drifted := specFor(t, e.Base(), "SELECT region, AVG(val), COUNT(*) FROM t WHERE week < 30 GROUP BY region")
	if _, ok := gss.Refresh(old, drifted, 0); ok {
		t.Fatal("Refresh extended a carried fold across a spec fingerprint change")
	}

	e.RebuildSample(999, DefaultRebuildOptions())
	view := e.Acquire()
	if view.SampleGen == old.SampleGen {
		t.Fatal("rebuild did not advance the generation")
	}
	if _, ok := gss.Refresh(view, specFor(t, e.Base(), sql), 0); ok {
		t.Fatal("Refresh extended a carried fold across a generation swap")
	}

	// A fresh scan binds to the new generation and replays it exactly.
	gss2 := NewGroupedStandingScan()
	got, ok := gss2.Refresh(view, specFor(t, e.Base(), sql), 0)
	if !ok {
		t.Fatal("fresh scan refused the new generation")
	}
	fresh := e.ViewAt(view.BaseRows, view.SampleRows).GroupedRunToCompletion(specFor(t, e.Base(), sql), 0)
	requireGroupedResultEqual(t, "post-rebuild fresh fold", got, fresh)
}
