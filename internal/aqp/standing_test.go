package aqp

import "testing"

// requireBatchUpdateEqual asserts bit-for-bit equality between two final
// BatchUpdates (struct equality on the float64 estimate fields — no
// tolerance): the replay-equality property standing subscriptions rest on.
func requireBatchUpdateEqual(t *testing.T, label string, got, want BatchUpdate) {
	t.Helper()
	if got.RowsScanned != want.RowsScanned || got.Batch != want.Batch || got.SimTime != want.SimTime {
		t.Fatalf("%s: shape (rows %d batch %d sim %v) vs fresh (rows %d batch %d sim %v)",
			label, got.RowsScanned, got.Batch, got.SimTime, want.RowsScanned, want.Batch, want.SimTime)
	}
	if len(got.Estimates) != len(want.Estimates) {
		t.Fatalf("%s: %d estimates vs fresh %d", label, len(got.Estimates), len(want.Estimates))
	}
	for i := range want.Estimates {
		if got.Valid[i] != want.Valid[i] {
			t.Fatalf("%s: snippet %d validity %v, fresh %v", label, i, got.Valid[i], want.Valid[i])
		}
		if got.Estimates[i] != want.Estimates[i] {
			t.Fatalf("%s: snippet %d estimate %+v, fresh %+v", label, i, got.Estimates[i], want.Estimates[i])
		}
	}
}

// TestStandingScanMatchesRunToCompletion is the incremental replay
// property: after every append, a StandingScan's Refresh — which folds only
// the newly landed complete batches plus the partial tail — must equal a
// fresh RunToCompletion over the whole grown sample, bit for bit. Appends
// of varying sizes exercise tail batches that grow, complete, and straddle
// batch boundaries.
func TestStandingScanMatchesRunToCompletion(t *testing.T) {
	tb := buildTable(t, 20000)
	sample, err := BuildSample(tb, 0.5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	snips := progressiveSnips(t, tb)
	ss := NewStandingScan(snips)

	check := func(step string) {
		t.Helper()
		view := e.Acquire()
		upd, ok := ss.Refresh(view)
		if !ok {
			t.Fatalf("%s: Refresh refused a same-generation view", step)
		}
		fresh := e.ViewAt(view.BaseRows, view.SampleRows).RunToCompletion(snips)
		requireBatchUpdateEqual(t, step, upd, fresh)
		if ss.Folded() > view.SampleRows {
			t.Fatalf("%s: folded %d rows beyond the %d-row sample", step, ss.Folded(), view.SampleRows)
		}
	}

	check("initial fold")
	check("refresh without append") // no new rows: emit must be reproducible
	batch := ss.Folded()
	for i, rows := range []int{100, 1, 5000, 2500, 9000} {
		if _, err := e.Append(appendBatch(t, rows, int64(50+i)), int64(i)); err != nil {
			t.Fatal(err)
		}
		check("after append " + itoa(rows))
	}
	if ss.Folded() <= batch {
		t.Fatalf("carried fold never advanced past %d rows", ss.Folded())
	}
}

// TestStandingScanRowAtATime: the legacy scan mode binds into the carried
// fold too (the mode travels with the view), and must replay exactly.
func TestStandingScanRowAtATime(t *testing.T) {
	tb := buildTable(t, 8000)
	sample, err := BuildSample(tb, 0.5, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	e.SetScanMode(ScanRowAtATime)
	snips := progressiveSnips(t, tb)
	ss := NewStandingScan(snips)
	for i, rows := range []int{0, 700, 1300} {
		if rows > 0 {
			if _, err := e.Append(appendBatch(t, rows, int64(90+i)), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		view := e.Acquire()
		upd, ok := ss.Refresh(view)
		if !ok {
			t.Fatal("Refresh refused a same-generation view")
		}
		fresh := e.ViewAt(view.BaseRows, view.SampleRows).RunToCompletion(snips)
		requireBatchUpdateEqual(t, "row-mode append "+itoa(rows), upd, fresh)
	}
}

// TestStandingScanRefusesRebind pins the incompatibility contract: a
// rebuilt sample (new generation, reshuffled rows, new batch size) cannot
// extend a carried fold — Refresh must report ok=false rather than emit a
// silently wrong merge, and the replacement scan must replay exactly.
func TestStandingScanRefusesRebind(t *testing.T) {
	tb := buildTable(t, 10000)
	sample, err := BuildSample(tb, 0.4, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	snips := progressiveSnips(t, tb)
	ss := NewStandingScan(snips)
	old := e.Acquire()
	if _, ok := ss.Refresh(old); !ok {
		t.Fatal("first Refresh refused")
	}
	gen0 := ss.Gen()

	e.RebuildSample(999, DefaultRebuildOptions())
	view := e.Acquire()
	if view.SampleGen == gen0 {
		t.Fatal("rebuild did not advance the generation")
	}
	if _, ok := ss.Refresh(view); ok {
		t.Fatal("Refresh extended a carried fold across a generation swap")
	}
	// The pinned old view still extends the old fold bit-identically, and
	// replays through ViewAtGen as long as the generation is retained.
	upd, ok := ss.Refresh(old)
	if !ok {
		t.Fatal("Refresh refused the generation it is bound to")
	}
	replay := e.ViewAtGen(gen0, old.BaseRows, old.SampleRows)
	if replay == nil {
		t.Fatal("ViewAtGen lost the retired generation")
	}
	requireBatchUpdateEqual(t, "pinned old generation", upd, replay.RunToCompletion(snips))

	// A fresh scan binds to the new generation and replays it exactly.
	ss2 := NewStandingScan(snips)
	upd2, ok := ss2.Refresh(view)
	if !ok {
		t.Fatal("fresh scan refused the new generation")
	}
	requireBatchUpdateEqual(t, "post-rebuild fresh fold",
		upd2, e.ViewAt(view.BaseRows, view.SampleRows).RunToCompletion(snips))
}
