// Package aqp implements the off-the-shelf approximate query processing
// engine Verdict treats as a black box (Figure 2): offline uniform random
// samples, batch-wise online aggregation with CLT error estimates (the
// paper's NoLearn baseline), a time-bound mode (Appendix C.2), an exact
// executor used as ground truth, the vectorized block-partitioned scan
// engine (scan.go), epoch-swap sample rebuilds (rebuild.go), and a
// simulated I/O cost model standing in for the paper's Spark/HDFS cluster.
//
// The cost model is the documented substitution for real cluster latency
// (see DESIGN.md §2): experiments report *simulated* time — a fixed
// per-query planning overhead plus scanned-rows divided by scan throughput,
// with distinct cached-memory and SSD throughputs — which reproduces the
// relative runtime structure that drives the paper's speedup results while
// staying deterministic and hardware-independent.
//
// # Concurrency invariants
//
// Who locks what: the engine has exactly one writer mutex, wmu, held by
// Append, RebuildSample and view publication. Read paths take no engine
// locks at all — Acquire's fast path is atomic loads (the cached *View,
// the *Sample pointer, table epochs), and everything reachable from an
// acquired View is safe to scan concurrently.
//
// What is immutable after publish:
//
//   - A published View (frozen base and sample prefix snapshots, cost
//     model, scan mode, the Epoch/SampleGen/BaseRows/SampleRows stamps) is
//     never mutated; staleness republishes a new one.
//   - The Sample struct behind e.sample is copy-on-write: Append and
//     RebuildSample build a fresh struct and swap the pointer, so a loaded
//     *Sample is always internally coherent. Within a generation the
//     sample *table* is append-only (prefixes immortal → ViewAt replays);
//     across generations RebuildSample retires the old table frozen so
//     ViewAtGen can replay any historical prefix of any retained
//     generation. Retention is bounded by SetMaxRetainedGens (0 = keep
//     all): eviction runs oldest-first under wmu and never drops a
//     generation pinned by a live stream (PinGen/AcquirePinned
//     refcounts); behind-horizon access fails with ErrGenEvicted.
//
// Determinism: scans fan out across workers but merge per-worker
// accumulators in fixed order, so a replay of the same view is
// float-identical to the original run. Standing scans — StandingScan for
// flat snippet lists, GroupedStandingScan for GROUP BY discovery folds —
// carry accumulator state across appends and extend it by folding only
// newly landed batches, reproducing the one-shot merge tree bit for bit;
// they refuse (and the caller rebinds) whenever the generation, scan mode,
// batch size or grouped-spec fingerprint drifts.
package aqp
