package aqp

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/query"
	"repro/internal/storage"
)

// TestVectorizedMatchesRowAtATime runs the same snippet set through both
// scan modes and requires the estimates to agree to floating-point noise
// (the accumulation orders differ, so bit-equality is not expected).
func TestVectorizedMatchesRowAtATime(t *testing.T) {
	tb := buildTable(t, 3*storage.BlockSize+123)
	sample, err := BuildSample(tb, 0.8, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	var snips []*query.Snippet
	for i := 0; i < 12; i++ {
		sql := "SELECT AVG(val) FROM t WHERE week >= " + strconv.Itoa(i*7) + " AND week < " + strconv.Itoa(i*7+15)
		snips = append(snips, snippetFor(t, tb, sql))
	}
	snips = append(snips,
		snippetFor(t, tb, "SELECT COUNT(*) FROM t WHERE region = 'a'"),
		snippetFor(t, tb, "SELECT COUNT(*) FROM t WHERE week < 25"),
		snippetFor(t, tb, "SELECT AVG(val) FROM t"),
		snippetFor(t, tb, "SELECT AVG(val * val) FROM t WHERE week >= 40"), // non-column measure
	)

	vec := NewEngine(tb, sample, CachedCost)
	vec.SetScanMode(ScanVectorized)
	row := NewEngine(tb, sample, CachedCost)
	row.SetScanMode(ScanRowAtATime)

	uv := vec.RunToCompletion(snips)
	ur := row.RunToCompletion(snips)
	if uv.RowsScanned != ur.RowsScanned {
		t.Fatalf("rows scanned: vectorized %d, row %d", uv.RowsScanned, ur.RowsScanned)
	}
	for i := range snips {
		if uv.Valid[i] != ur.Valid[i] {
			t.Fatalf("snippet %d: validity %v vs %v", i, uv.Valid[i], ur.Valid[i])
		}
		if !uv.Valid[i] {
			continue
		}
		ev, er := uv.Estimates[i], ur.Estimates[i]
		if relDiff(ev.Value, er.Value) > 1e-9 {
			t.Fatalf("snippet %d value: vectorized %v row %v", i, ev.Value, er.Value)
		}
		if relDiff(ev.StdErr, er.StdErr) > 1e-6 {
			t.Fatalf("snippet %d stderr: vectorized %v row %v", i, ev.StdErr, er.StdErr)
		}
	}
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestVectorizedDeterministic: repeated vectorized runs must be bit-identical
// (fixed block partition, fixed merge order) regardless of scheduling.
func TestVectorizedDeterministic(t *testing.T) {
	tb := buildTable(t, 2*storage.BlockSize+999)
	sample, err := BuildSample(tb, 1.0, 0, 23)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	sn := snippetFor(t, tb, "SELECT AVG(val) FROM t WHERE week < 37")
	first := e.RunToCompletion([]*query.Snippet{sn})
	for rep := 0; rep < 5; rep++ {
		again := e.RunToCompletion([]*query.Snippet{sn})
		if first.Estimates[0] != again.Estimates[0] {
			t.Fatalf("run %d: %+v != %+v", rep, again.Estimates[0], first.Estimates[0])
		}
	}
}

// TestExactVectorized: the block-pipeline Exact must agree with brute force.
func TestExactVectorized(t *testing.T) {
	tb := buildTable(t, storage.BlockSize+500)
	sample, err := BuildSample(tb, 1.0, 0, 29)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	for _, sql := range []string{
		"SELECT AVG(val) FROM t WHERE week >= 20 AND week < 40",
		"SELECT COUNT(*) FROM t WHERE week >= 20 AND week < 40",
		"SELECT COUNT(*) FROM t WHERE region = 'b'",
		"SELECT AVG(val * val) FROM t WHERE week < 10",
		"SELECT COUNT(*) FROM t WHERE week > 1000", // empty region
	} {
		sn := snippetFor(t, tb, sql)
		got := e.Exact(sn)
		var want float64
		switch sn.Kind {
		case query.FreqAgg:
			match := 0
			for r := 0; r < tb.Rows(); r++ {
				if sn.Region.Matches(tb, r) {
					match++
				}
			}
			want = float64(match) / float64(tb.Rows())
			// The indicator mean is merged per block unit, so agreement is
			// to floating-point noise, not bit-exact.
			if relDiff(got, want) > 1e-12 {
				t.Fatalf("%s: exact freq %v != brute force %v", sql, got, want)
			}
		default:
			sum, n := 0.0, 0
			for r := 0; r < tb.Rows(); r++ {
				if sn.Region.Matches(tb, r) {
					sum += sn.Measure(tb, r)
					n++
				}
			}
			if n == 0 {
				want = 0
			} else {
				want = sum / float64(n)
			}
			if relDiff(got, want) > 1e-9 {
				t.Fatalf("%s: exact avg %v != brute force %v", sql, got, want)
			}
		}
	}
}

// TestScanModeDefaultAndSwitch pins the default mode and the switch.
func TestScanModeDefaultAndSwitch(t *testing.T) {
	tb := buildTable(t, 100)
	sample, err := BuildSample(tb, 1.0, 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	if e.ScanMode() != ScanVectorized {
		t.Fatalf("default mode=%v, want vectorized", e.ScanMode())
	}
	e.SetScanMode(ScanRowAtATime)
	if e.ScanMode() != ScanRowAtATime {
		t.Fatal("mode switch ignored")
	}
}
