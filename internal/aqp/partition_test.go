package aqp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// partitionedLayout is the stratified layout under test, parameterized only
// by the partition count.
func partitionedLayout(tb *storage.Table, parts int) RebuildOptions {
	col, ok := tb.Schema().Lookup("week")
	if !ok {
		panic("buildTable lost its week column")
	}
	return RebuildOptions{ClusterColumn: -1, Partitions: parts, StratumColumn: col}
}

// groupedSpecFor compiles the one-pass grouped spec for a GROUP BY query.
func groupedSpecFor(t *testing.T, tb *storage.Table, sql string) *query.GroupedSpec {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	col, ok := tb.Schema().Lookup(stmt.GroupBy[0].Name)
	if !ok {
		t.Fatalf("unknown group column %s", stmt.GroupBy[0].Name)
	}
	spec := query.GroupedSpecOf(stmt, tb, []int{col})
	if spec == nil {
		t.Fatalf("statement %q is outside the foldable grouped shape", sql)
	}
	return spec
}

// invarianceRecord is everything one partition count produced, in a fixed
// order so records compare cell-for-cell across counts.
type invarianceRecord struct {
	oneShot  []query.ScalarEstimate
	groups   [][]query.GroupValue
	grouped  []query.ScalarEstimate
	prog     []Increment
	standing [][]query.ScalarEstimate
	gStand   [][]query.ScalarEstimate
	rebuilt  []query.ScalarEstimate
	replayed []query.ScalarEstimate
}

func estimatesOf(upd BatchUpdate) []query.ScalarEstimate {
	return append([]query.ScalarEstimate(nil), upd.Estimates...)
}

func requireEstimatesEqual(t *testing.T, label string, got, want []query.ScalarEstimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d estimates vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: estimate %d is %+v, want %+v (partition-count invariance broken)",
				label, i, got[i], want[i])
		}
	}
}

// runPartitioned drives one fresh engine laid out at the given partition
// count through every execution mode: one-shot, one-pass grouped,
// progressive increments (each also checked against its own serial
// EvalPrefix replay), standing refreshes across streamed appends (scalar
// and grouped), a partitioned rebuild, and a ViewAtGen replay of the
// pre-rebuild generation. Everything recorded is a pure function of the
// deterministic inputs, so records must match bit-for-bit across counts.
func runPartitioned(t *testing.T, parts int) *invarianceRecord {
	t.Helper()
	tb := buildTable(t, 30000)
	sample, err := BuildSample(tb, 0.5, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	if err := e.SetSampleLayout(partitionedLayout(tb, parts)); err != nil {
		t.Fatal(err)
	}
	snips := progressiveSnips(t, tb)
	spec := groupedSpecFor(t, tb, "SELECT AVG(val), COUNT(*) FROM t WHERE week < 70 GROUP BY region")
	rec := &invarianceRecord{}

	view := e.Acquire()
	if got := len(e.PartitionStats()); got != parts {
		t.Fatalf("PartitionStats reports %d partitions, want %d", got, parts)
	}

	// One-shot run to completion.
	rec.oneShot = estimatesOf(view.RunToCompletion(snips))

	// One-pass grouped execution: group list and estimates both travel.
	gr := view.GroupedRunToCompletion(spec, 0)
	rec.groups = gr.Groups
	rec.grouped = estimatesOf(gr.Update)

	// Progressive increments, each audited against a fresh serial prefix
	// replay of the same view before being recorded.
	ps := view.Progressive(snips)
	for _, prefix := range PrefixSchedule(view.SampleRows, 512) {
		inc := ps.Step(prefix)
		fresh := e.ViewAt(view.BaseRows, view.SampleRows).EvalPrefix(snips, prefix)
		requireIncrementEqual(t, "parts="+itoa(parts)+" prefix="+itoa(prefix), inc, fresh)
		rec.prog = append(rec.prog, inc)
	}

	// Standing refreshes across streamed appends: complete batches fold
	// into carried state, the partial tail into clones — all span-aware now.
	ss := NewStandingScan(snips)
	gss := NewGroupedStandingScan()
	refresh := func(v *View) {
		upd, ok := ss.Refresh(v)
		if !ok {
			t.Fatalf("parts=%d: standing refresh rejected a same-generation view", parts)
		}
		rec.standing = append(rec.standing, estimatesOf(upd))
		ggr, ok := gss.Refresh(v, spec, 0)
		if !ok {
			t.Fatalf("parts=%d: grouped standing refresh rejected a same-generation view", parts)
		}
		rec.gStand = append(rec.gStand, estimatesOf(ggr.Update))
	}
	refresh(view)
	for i := 0; i < 2; i++ {
		if _, err := e.Append(driftedBatch(t, 1500, 80, 100, int64(40+i)), int64(90+i)); err != nil {
			t.Fatal(err)
		}
		refresh(e.Acquire())
	}

	// A rebuild under the same layout: per-stratum generation swaps under
	// one sample generation, tail rows re-stratified in.
	preGen, preBase, preRows := view.SampleGen, view.BaseRows, view.SampleRows
	grown := e.Acquire()
	grownEst := estimatesOf(grown.RunToCompletion(snips))
	if _, err := e.RebuildSample(4242, partitionedLayout(tb, parts)); err != nil {
		t.Fatal(err)
	}
	rec.rebuilt = estimatesOf(e.Acquire().RunToCompletion(snips))

	// Serial replay across the generation swap: both the pre-rebuild
	// grown state and the original boot view must reproduce exactly.
	rv := e.ViewAtGen(grown.SampleGen, grown.BaseRows, grown.SampleRows)
	if rv == nil {
		t.Fatalf("parts=%d: ViewAtGen lost the grown pre-rebuild state", parts)
	}
	requireEstimatesEqual(t, "parts="+itoa(parts)+" grown replay",
		estimatesOf(rv.RunToCompletion(snips)), grownEst)
	rv = e.ViewAtGen(preGen, preBase, preRows)
	if rv == nil {
		t.Fatalf("parts=%d: ViewAtGen lost the boot prefix", parts)
	}
	rec.replayed = estimatesOf(rv.RunToCompletion(snips))
	return rec
}

// TestPartitionCountInvariance is the tentpole property: the partition
// count is a pure layout knob. The same seeded workload — one-shot,
// grouped, progressive, standing-across-appends, rebuild and replay — must
// produce bit-identical answers for every partition count, because the scan
// granule is the fixed micro-stratum decomposition, never the partition.
func TestPartitionCountInvariance(t *testing.T) {
	want := runPartitioned(t, 1)
	if len(want.groups) == 0 || len(want.prog) < 3 || len(want.standing) != 3 {
		t.Fatalf("reference run shape: %d groups, %d increments, %d refreshes",
			len(want.groups), len(want.prog), len(want.standing))
	}
	for _, parts := range []int{2, 4, 7} {
		got := runPartitioned(t, parts)
		label := "parts=" + itoa(parts)
		requireEstimatesEqual(t, label+" one-shot", got.oneShot, want.oneShot)
		if len(got.groups) != len(want.groups) {
			t.Fatalf("%s: %d groups vs %d", label, len(got.groups), len(want.groups))
		}
		for i := range want.groups {
			if len(got.groups[i]) != len(want.groups[i]) {
				t.Fatalf("%s: group %d arity", label, i)
			}
			for j := range want.groups[i] {
				if got.groups[i][j] != want.groups[i][j] {
					t.Fatalf("%s: group %d value %d: %+v vs %+v",
						label, i, j, got.groups[i][j], want.groups[i][j])
				}
			}
		}
		requireEstimatesEqual(t, label+" grouped", got.grouped, want.grouped)
		if len(got.prog) != len(want.prog) {
			t.Fatalf("%s: %d increments vs %d", label, len(got.prog), len(want.prog))
		}
		for i := range want.prog {
			requireIncrementEqual(t, label+" increment "+itoa(i), got.prog[i], want.prog[i])
		}
		for i := range want.standing {
			requireEstimatesEqual(t, label+" standing refresh "+itoa(i), got.standing[i], want.standing[i])
			requireEstimatesEqual(t, label+" grouped standing refresh "+itoa(i), got.gStand[i], want.gStand[i])
		}
		requireEstimatesEqual(t, label+" rebuilt", got.rebuilt, want.rebuilt)
		requireEstimatesEqual(t, label+" replayed", got.replayed, want.replayed)
	}
}

// TestPartitionedRowAtATimeInvariance covers the legacy scan mode: the
// span iteration must hold partition-count invariance there too.
func TestPartitionedRowAtATimeInvariance(t *testing.T) {
	run := func(parts int) []query.ScalarEstimate {
		tb := buildTable(t, 12000)
		sample, err := BuildSample(tb, 0.5, 0, 17)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(tb, sample, CachedCost)
		e.SetScanMode(ScanRowAtATime)
		if err := e.SetSampleLayout(partitionedLayout(tb, parts)); err != nil {
			t.Fatal(err)
		}
		return estimatesOf(e.Acquire().RunToCompletion(progressiveSnips(t, tb)))
	}
	want := run(1)
	for _, parts := range []int{2, 7} {
		requireEstimatesEqual(t, "row-mode parts="+itoa(parts), run(parts), want)
	}
}

// globalOrder reconstructs the interleaved global row order of a
// partitioned sample as (stratum, within-stratum position) pairs and
// returns the stratum-column value sequence — globally and per partition.
func globalOrder(ps *storage.PartitionedSample, colName string) (global []float64, perPart [][]float64) {
	perPart = make([][]float64, ps.NumPartitions())
	cols := make([][]float64, ps.NumStrata())
	for s := 0; s < ps.NumStrata(); s++ {
		tbl := ps.Stratum(s)
		col, _ := tbl.Schema().Lookup(colName)
		cols[s] = tbl.NumericCol(col)
	}
	taken := make([]int, ps.NumStrata())
	for i := 0; i < ps.Rows(); i++ {
		s := ps.StratumAt(i)
		v := cols[s][taken[s]]
		taken[s]++
		global = append(global, v)
		p := ps.PartitionOf(s)
		perPart[p] = append(perPart[p], v)
	}
	return global, perPart
}

// ksCritical is the 95% two-sample Kolmogorov–Smirnov critical value.
func ksCritical(n1, n2 int) float64 {
	a, b := float64(n1), float64(n2)
	return 1.36 * math.Sqrt((a+b)/(a*b))
}

// TestStratifiedPrefixUniformityKS: after drifted appends pile the tail and
// a stratified rebuild re-lays the sample out, every global prefix AND
// every per-partition prefix must be statistically indistinguishable from
// its full distribution (KS below the 95% critical value) — the row-level
// prefix-uniformity that block-clustered layouts give up — while zone maps
// stay tight on the stratum column.
func TestStratifiedPrefixUniformityKS(t *testing.T) {
	tb := buildTable(t, 20000)
	sample, err := BuildSample(tb, 0.4, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	for i := 0; i < 5; i++ {
		if _, err := e.Append(driftedBatch(t, 1200, 80, 100, int64(60+i)), int64(600+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RebuildSample(99, partitionedLayout(tb, 4)); err != nil {
		t.Fatal(err)
	}
	parts := e.Sample().Parts
	if parts == nil || parts.NumPartitions() != 4 {
		t.Fatal("rebuild did not produce the 4-partition layout")
	}
	if parts.Rows() != e.Sample().Rows() {
		t.Fatalf("tail not folded in: %d partitioned of %d", parts.Rows(), e.Sample().Rows())
	}

	global, perPart := globalOrder(parts, "week")
	for _, frac := range []float64{0.1, 0.25, 0.5} {
		n := int(float64(len(global)) * frac)
		if d, crit := ksDistance(global[:n], global), ksCritical(n, len(global)); d > crit {
			t.Fatalf("global prefix %.0f%%: KS=%.4f exceeds critical %.4f", frac*100, d, crit)
		}
		for p, seq := range perPart {
			np := int(float64(len(seq)) * frac)
			if np == 0 {
				t.Fatalf("partition %d empty at frac %v", p, frac)
			}
			if d, crit := ksDistance(seq[:np], seq), ksCritical(np, len(seq)); d > crit {
				t.Fatalf("partition %d prefix %.0f%%: KS=%.4f exceeds critical %.4f", p, frac*100, d, crit)
			}
		}
	}

	// Tight zone maps at the same time: each partition's blocks span a
	// narrow slice of the week domain (56 strata over [0,100) leave mean
	// block width far below the shuffled layout's ~full domain).
	for _, st := range e.PartitionStats() {
		if st.ZoneSelectivity > 0.25 {
			t.Fatalf("partition %d zone selectivity %.3f: strata not value-clustered", st.Partition, st.ZoneSelectivity)
		}
	}
}

// TestStratifiedRebuildRoundRobin: with no stratum column the layout still
// partitions (round-robin strata) and stays answer-consistent with the
// keyed layout's row multiset.
func TestStratifiedRebuildRoundRobin(t *testing.T) {
	tb := buildTable(t, 10000)
	sample, err := BuildSample(tb, 0.4, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	beforeRows := e.Sample().Rows()
	if _, err := e.RebuildSample(7, RebuildOptions{ClusterColumn: -1, Partitions: 4, StratumColumn: -1}); err != nil {
		t.Fatal(err)
	}
	s := e.Sample()
	if s.Parts == nil || s.Parts.NumPartitions() != 4 || s.Rows() != beforeRows {
		t.Fatalf("round-robin rebuild: parts=%v rows=%d want %d", s.Parts, s.Rows(), beforeRows)
	}
	// Round-robin strata carry no value locality; selectivity ~1.
	for _, st := range e.PartitionStats() {
		if st.ZoneSelectivity < 0.5 {
			t.Fatalf("partition %d selectivity %.3f: round-robin should not cluster", st.Partition, st.ZoneSelectivity)
		}
	}
}

// TestRebuildLayoutValidation pins the typed-error contract: layouts naming
// a categorical or out-of-range column are rejected with ErrBadLayout
// before any state moves (this used to panic inside the cluster sort).
func TestRebuildLayoutValidation(t *testing.T) {
	tb := buildTable(t, 4000)
	sample, err := BuildSample(tb, 0.5, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	regionCol, _ := tb.Schema().Lookup("region")
	cases := []struct {
		name string
		opts RebuildOptions
	}{
		{"categorical cluster column", RebuildOptions{ClusterColumn: regionCol, StratumColumn: -1}},
		{"out-of-range cluster column", RebuildOptions{ClusterColumn: 99, StratumColumn: -1}},
		{"categorical stratum column", RebuildOptions{ClusterColumn: -1, Partitions: 2, StratumColumn: regionCol}},
		{"out-of-range stratum column", RebuildOptions{ClusterColumn: -1, Partitions: 2, StratumColumn: 99}},
	}
	for _, c := range cases {
		gen, err := e.RebuildSample(11, c.opts)
		if !isBadLayout(err) {
			t.Fatalf("%s: RebuildSample err = %v, want ErrBadLayout", c.name, err)
		}
		if gen != 0 || e.SampleGen() != 0 {
			t.Fatalf("%s: rejected rebuild moved the generation to %d", c.name, gen)
		}
		if err := e.SetSampleLayout(c.opts); !isBadLayout(err) {
			t.Fatalf("%s: SetSampleLayout err = %v, want ErrBadLayout", c.name, err)
		}
	}
	// A cluster layout ignores a bad stratum column and vice versa: only
	// the column the layout actually uses is validated.
	weekCol, _ := tb.Schema().Lookup("week")
	if _, err := e.RebuildSample(12, RebuildOptions{ClusterColumn: weekCol, StratumColumn: regionCol}); err != nil {
		t.Fatalf("cluster layout rejected an unused stratum column: %v", err)
	}
	if _, err := e.RebuildSample(13, RebuildOptions{ClusterColumn: regionCol, Partitions: 2, StratumColumn: weekCol}); err != nil {
		t.Fatalf("partitioned layout rejected an unused cluster column: %v", err)
	}
}

func isBadLayout(err error) bool {
	var le *LayoutError
	return errors.Is(err, ErrBadLayout) && errors.As(err, &le)
}

// BenchmarkPartitionedScan measures a selective one-shot scan over the
// stratified 4-partition layout — the zone-map pruning case partitionbench
// quantifies across layouts.
func BenchmarkPartitionedScan(b *testing.B) {
	tb := buildTable(b, 100000)
	sample, err := BuildSample(tb, 0.5, 0, 11)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	col, _ := tb.Schema().Lookup("week")
	if err := e.SetSampleLayout(RebuildOptions{ClusterColumn: -1, Partitions: 4, StratumColumn: col}); err != nil {
		b.Fatal(err)
	}
	snips := []*query.Snippet{snippetFor(b, tb, "SELECT AVG(val) FROM t WHERE week >= 42 AND week < 47")}
	view := e.Acquire()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view.RunToCompletion(snips)
	}
}
