package aqp

import (
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/storage"
)

// Progressive (resumable) online aggregation. OnlineAggregate walks the
// sample in fixed batches and re-estimates after each one, but its work is
// tied to one callback-driven pass. ProgressiveScan restructures the
// vectorized pipeline into an increment-yielding form the serving layer can
// drive: the caller asks for growing prefix budgets (typically the doubling
// PrefixSchedule), and the scan carries its per-unit moment partials across
// increments, so emitting k increments over an n-row sample costs O(n) —
// not O(n·k) — while every emitted estimate is float-identical to a fresh
// scan of the same prefix.
//
// The identity holds because the vectorized scan's merge tree is a fixed
// function of the scanned range: blocks partition into unitBlocks-sized
// work units and per-unit partials merge in unit order (scan.go). A prefix
// [0, P) therefore folds as (unit 0, unit 1, …, unit k-1, tail), where the
// first k = P/unitRows units are complete and independent of P. The
// resumable scan folds complete units into its carried accumulators exactly
// once, and evaluates the (at most one-unit-sized) partial tail into a
// private copy at each emission — the same fold sequence, hence the same
// floating-point result, as a fresh View scan of [0, P). Replays via
// Engine.ViewAtGen + View.EvalPrefix exploit this to audit any streamed
// increment bit-for-bit after the fact.

// unitRows is the row span of one complete work unit — the granule at which
// the resumable scan folds finished partials into its carried accumulators.
const unitRows = unitBlocks * storage.BlockSize

// DefaultFirstPrefix is the first row budget of a default progressive
// schedule: one storage block.
const DefaultFirstPrefix = storage.BlockSize

// PrefixSchedule returns the doubling prefix budgets progressive queries
// use by default: first, 2·first, 4·first, …, ending with exactly total.
// Doubling keeps the increment count logarithmic while the standard error
// shrinks by ≈ 1/√2 per emitted increment. first <= 0 selects
// DefaultFirstPrefix; a total of zero yields a single empty increment.
func PrefixSchedule(total, first int) []int {
	if total <= 0 {
		return []int{0}
	}
	if first <= 0 {
		first = DefaultFirstPrefix
	}
	var out []int
	for p := first; p < total; p *= 2 {
		out = append(out, p)
	}
	return append(out, total)
}

// Increment is one progressive answer: the current estimates after some
// prefix of the sample, plus enough provenance to replay it later.
type Increment struct {
	// Estimates holds the per-snippet raw answers; Valid[i] is false while
	// snippet i has no usable estimate yet.
	Estimates []query.ScalarEstimate
	Valid     []bool
	// Rows is the sample prefix [0, Rows) this increment reflects; Total is
	// the view's full sample size.
	Rows  int
	Total int
	// SimTime is the simulated AQP latency of scanning the prefix.
	SimTime time.Duration
	// Seq counts emitted increments (0-based); Final marks the increment
	// that consumed the whole sample.
	Seq   int
	Final bool
}

// ProgressiveScan evaluates snippets over growing prefixes of one pinned
// view's sample. It is single-caller state (drive it from one goroutine);
// the underlying view is immutable, so appends and sample rebuilds landing
// mid-stream never affect the increments it emits.
type ProgressiveScan struct {
	view    *View
	metas   []snipMeta
	gs      *groupedScan   // grouped factoring of the snippet list, if any
	accs    []*accumulator // complete-unit folds, carried across steps
	workers int            // worker cap for unit folds; 0 = GOMAXPROCS
	folded  int            // rows folded into accs (unit-aligned when vectorized)
	emitted int            // last emitted prefix
	seq     int

	// banks is the partitioned-sample carry state: one accumulator bank per
	// micro-stratum plus one for the unpartitioned tail (last). Each bank
	// folds its own per-stratum prefix exactly like the single-table scan
	// folds the global prefix; emission merges the banks into fresh
	// accumulators in stratum order (the scatter-gather barrier). nil for an
	// unpartitioned view, where accs carries the fold directly.
	banks  []*stratumScan
	counts []int // PrefixCounts scratch
}

// stratumScan is one stratum's carried fold within a progressive scan.
type stratumScan struct {
	tbl    *storage.Table
	accs   []*accumulator
	folded int // rows folded into accs (unit-aligned when vectorized)
}

// Progressive starts a resumable evaluation of the snippets against this
// view's sample. Drive it with Step, typically over PrefixSchedule budgets.
// Under the default vectorized mode a grouped snippet list factors into the
// one-pass bank kernel; the per-unit partials it yields are bit-identical to
// the per-snippet ones, so the carried fold state — and hence every emitted
// increment — is unchanged.
func (v *View) Progressive(snips []*query.Snippet) *ProgressiveScan {
	accs := make([]*accumulator, len(snips))
	for i, sn := range snips {
		accs[i] = &accumulator{sn: sn, baseRows: v.Sample.BaseRows}
	}
	ps := &ProgressiveScan{view: v, metas: metaOf(accs), accs: accs}
	if v.mode == ScanVectorized {
		ps.gs = factorAccs(accs)
	}
	if parts := v.Sample.Parts; parts != nil {
		ps.banks = make([]*stratumScan, parts.NumStrata()+1)
		for s := 0; s < parts.NumStrata(); s++ {
			ps.banks[s] = &stratumScan{tbl: parts.Stratum(s), accs: freshAccs(accs)}
		}
		ps.banks[parts.NumStrata()] = &stratumScan{tbl: v.Sample.Data, accs: freshAccs(accs)}
	}
	return ps
}

// bankTarget returns how many rows of bank bi fall inside the global prefix
// [0, rows), refreshing the PrefixCounts scratch when bi is 0.
func (p *ProgressiveScan) bankTarget(bi, rows int) int {
	parts := p.view.Sample.Parts
	if bi == len(p.banks)-1 {
		t := rows - parts.Rows()
		if t < 0 {
			t = 0
		}
		return t
	}
	if bi == 0 {
		g := rows
		if g > parts.Rows() {
			g = parts.Rows()
		}
		p.counts = parts.PrefixCounts(g, p.counts)
	}
	return p.counts[bi]
}

// stepBank advances one stratum's carried fold to its prefix [0, target)
// and returns the accumulators reflecting exactly that prefix — the carried
// bank when target is unit-aligned (or in row mode), else a private clone
// with the partial tail unit folded in. The fold sequence per bank is
// identical to the single-table progressive fold of the same prefix.
func (p *ProgressiveScan) stepBank(b *stratumScan, target int) []*accumulator {
	if p.view.mode == ScanRowAtATime {
		if target > b.folded {
			scanRows(b.tbl, b.accs, b.folded, target)
			b.folded = target
		}
		return b.accs
	}
	fullUnits := target / unitRows
	doneUnits := b.folded / unitRows
	if fullUnits > doneUnits {
		for _, part := range scanUnits(b.tbl, p.metas, p.gs, doneUnits, fullUnits, 0, target, p.workers) {
			merge(b.accs, part)
		}
		b.folded = fullUnits * unitRows
	}
	if target <= b.folded {
		return b.accs
	}
	var sc blockScanner
	blo := b.folded / storage.BlockSize
	bhi := (target-1)/storage.BlockSize + 1
	tail := sc.scanUnit(b.tbl, p.metas, p.gs, blo, bhi, 0, target)
	cur := cloneAccs(b.accs)
	merge(cur, tail)
	return cur
}

// ProgressiveFrom enters the increment loop mid-sample: it starts a
// resumable evaluation whose state is exactly what a Progressive scan would
// carry after emitting the prefix [0, rows) as increment seq. The cursor
// prefix is folded ONCE — complete work units into the carried
// accumulators, in the same unit order a continuous scan would have used —
// so resuming after k consumed increments costs one O(rows) fold, not k
// re-scans, and every subsequent Step emits an increment bit-identical to
// the one the uninterrupted scan would have emitted at the same budget
// (same merge tree, hence the same floats; see the package comment).
//
// rows is clamped to [0, Total]; the next Step emits Seq = seq+1; workers
// caps the fan-out of both the entry fold and later Steps (0 = one worker
// per core; the result is cap-invariant either way). This is the engine
// half of a resumable stream: reconstruct the serving view with
// Engine.PinGen from the cursor's (sample_gen, base_rows, sample_rows),
// then ProgressiveFrom at its (rows_seen, seq).
func (v *View) ProgressiveFrom(snips []*query.Snippet, rows, seq, workers int) *ProgressiveScan {
	ps := v.Progressive(snips)
	ps.workers = workers
	if rows > v.SampleRows {
		rows = v.SampleRows
	}
	if rows < 0 {
		rows = 0
	}
	if rows > 0 {
		if ps.banks != nil {
			// Per-stratum entry folds: each bank folds its own cursor prefix
			// exactly as the single-table fold below does the global one.
			for bi, b := range ps.banks {
				target := ps.bankTarget(bi, rows)
				if target == 0 {
					continue
				}
				if v.mode == ScanRowAtATime {
					scanRows(b.tbl, b.accs, 0, target)
					b.folded = target
				} else if fullUnits := target / unitRows; fullUnits > 0 {
					for _, part := range scanUnits(b.tbl, ps.metas, ps.gs, 0, fullUnits, 0, target, ps.workers) {
						merge(b.accs, part)
					}
					b.folded = fullUnits * unitRows
				}
			}
		} else {
			data := v.Sample.Data
			if v.mode == ScanRowAtATime {
				// Sequential fold: continuation from here is exactly what a
				// continuous row-at-a-time scan carries at this prefix.
				scanRows(data, ps.accs, 0, rows)
				ps.folded = rows
			} else if fullUnits := rows / unitRows; fullUnits > 0 {
				// Fold only the complete units; the carried accumulators stay
				// unit-aligned and the (at most one-unit) cursor tail is
				// re-covered by the next Step, exactly as an uninterrupted
				// scan's carry state would have it.
				for _, part := range scanUnits(data, ps.metas, ps.gs, 0, fullUnits, 0, rows, ps.workers) {
					merge(ps.accs, part)
				}
				ps.folded = fullUnits * unitRows
			}
		}
		ps.emitted = rows
	}
	if seq >= 0 {
		ps.seq = seq + 1
	}
	return ps
}

// SetWorkers caps the fan-out used to fold newly completed units (0 = one
// worker per core). The result is identical for any cap — the unit
// partition and merge order never depend on it.
func (p *ProgressiveScan) SetWorkers(n int) { p.workers = n }

// Total is the pinned sample size: the prefix at which Step turns Final.
func (p *ProgressiveScan) Total() int { return p.view.SampleRows }

// Done reports whether a Final increment has been emitted.
func (p *ProgressiveScan) Done() bool { return p.seq > 0 && p.emitted >= p.view.SampleRows }

// Step advances the scan to the prefix [0, rows) and returns the refreshed
// estimates. rows is clamped to [previous prefix, Total]; a non-advancing
// step re-emits the current estimates. Complete work units newly covered by
// the prefix are folded into the carried accumulators (in unit order, in
// parallel); a mid-unit tail is evaluated into a private copy so the carry
// stays unit-aligned — total work across any monotone step sequence is
// O(Total + steps·unitRows).
func (p *ProgressiveScan) Step(rows int) Increment {
	if p.view.stages != nil {
		defer p.view.observeScan(obs.ModeProgressive, p.gs != nil, time.Now())
	}
	total := p.view.SampleRows
	if rows > total {
		rows = total
	}
	if rows < p.emitted {
		rows = p.emitted
	}
	emit := p.accs
	if p.banks != nil {
		// Scatter-gather emission: advance every stratum bank to its prefix
		// target, then merge the banks into fresh accumulators in stratum
		// order — the same barrier EvalPrefix replays.
		emit = freshAccs(p.accs)
		for bi, b := range p.banks {
			target := p.bankTarget(bi, rows)
			if target == 0 {
				continue
			}
			mergeAccs(emit, p.stepBank(b, target))
		}
	} else if p.view.mode == ScanRowAtATime {
		// The row-at-a-time fold is sequential per accumulator, so plain
		// continuation reproduces a fresh prefix scan exactly.
		scanRows(p.view.Sample.Data, p.accs, p.folded, rows)
		p.folded = rows
	} else {
		data := p.view.Sample.Data
		fullUnits := rows / unitRows
		doneUnits := p.folded / unitRows
		if fullUnits > doneUnits {
			for _, part := range scanUnits(data, p.metas, p.gs, doneUnits, fullUnits, 0, rows, p.workers) {
				merge(p.accs, part)
			}
			p.folded = fullUnits * unitRows
		}
		if rows > p.folded {
			// Partial tail unit (at most unitBlocks blocks): fold into a
			// private copy; the carried accumulators stay unit-aligned so a
			// later step can re-cover the grown tail from scratch.
			var sc blockScanner
			blo := p.folded / storage.BlockSize
			bhi := (rows-1)/storage.BlockSize + 1
			tail := sc.scanUnit(data, p.metas, p.gs, blo, bhi, 0, rows)
			emit = cloneAccs(p.accs)
			merge(emit, tail)
		}
	}
	p.emitted = rows
	inc := Increment{
		Estimates: make([]query.ScalarEstimate, len(emit)),
		Valid:     make([]bool, len(emit)),
		Rows:      rows,
		Total:     total,
		SimTime:   p.view.cost.QueryTime(rows),
		Seq:       p.seq,
		Final:     rows >= total,
	}
	for i, a := range emit {
		inc.Estimates[i], inc.Valid[i] = a.estimate()
	}
	p.seq++
	return inc
}

// cloneAccs deep-copies the accumulators (Moments is a value field, so a
// struct copy suffices; the snippet pointer is shared).
func cloneAccs(accs []*accumulator) []*accumulator {
	out := make([]*accumulator, len(accs))
	for i, a := range accs {
		c := *a
		out[i] = &c
	}
	return out
}

// EvalPrefix evaluates the snippets over the sample prefix [0, rows) with
// one fresh scan — float-identical to the Increment a ProgressiveScan emits
// at the same prefix. It is the replay comparator for streamed increments:
// reconstruct the serving view with Engine.ViewAtGen from a chunk's
// (sample_gen, base_rows, sample_rows), then EvalPrefix at its rows_seen.
func (v *View) EvalPrefix(snips []*query.Snippet, rows int) Increment {
	total := v.SampleRows
	if rows > total {
		rows = total
	}
	if rows < 0 {
		rows = 0
	}
	accs := make([]*accumulator, len(snips))
	for i, sn := range snips {
		accs[i] = &accumulator{sn: sn, baseRows: v.Sample.BaseRows}
	}
	v.scanPrefix(accs, rows)
	inc := Increment{
		Estimates: make([]query.ScalarEstimate, len(accs)),
		Valid:     make([]bool, len(accs)),
		Rows:      rows,
		Total:     total,
		SimTime:   v.cost.QueryTime(rows),
		Final:     rows >= total,
	}
	for i, a := range accs {
		inc.Estimates[i], inc.Valid[i] = a.estimate()
	}
	return inc
}
