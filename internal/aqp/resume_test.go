package aqp

import (
	"errors"
	"runtime"
	"testing"

	"repro/internal/query"
	"repro/internal/storage"
)

// progressiveIncrements drives a fresh ProgressiveScan over sched and
// returns every emitted increment.
func progressiveIncrements(v *View, snips []*query.Snippet, sched []int, workers int) []Increment {
	ps := v.Progressive(snips)
	if workers > 0 {
		ps.SetWorkers(workers)
	}
	out := make([]Increment, 0, len(sched))
	for _, prefix := range sched {
		out = append(out, ps.Step(prefix))
	}
	return out
}

// TestProgressiveFromResume is the resume property at the engine layer: for
// every cut point k, a scan re-entered at (sched[k], k) via ProgressiveFrom
// emits increments k+1..n bit-identical to the uninterrupted scan's — even
// when the resume happens against a PinGen-reconstructed view after appends
// and a sample rebuild have moved the live engine past the stream's
// generation.
func TestProgressiveFromResume(t *testing.T) {
	tb := buildTable(t, 30000)
	sample, err := BuildSample(tb, 0.5, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	snips := progressiveSnips(t, tb)
	view := e.Acquire()
	gen0, base0, rows0 := view.SampleGen, view.BaseRows, view.SampleRows
	sched := PrefixSchedule(view.SampleRows, 512)
	want := progressiveIncrements(view, snips, sched, 0)

	// Age the engine between the "disconnect" and every resume: the resumed
	// view must come from the retired generation, not the live one.
	if _, err := e.Append(appendBatch(t, 3000, 77), 123); err != nil {
		t.Fatal(err)
	}
	if g, _ := e.RebuildSample(999, DefaultRebuildOptions()); g != gen0+1 {
		t.Fatalf("rebuild produced generation %d", g)
	}

	for k := 0; k < len(sched)-1; k++ {
		rv, release, err := e.PinGen(gen0, base0, rows0)
		if err != nil {
			t.Fatalf("cut %d: PinGen: %v", k, err)
		}
		ps := rv.ProgressiveFrom(snips, sched[k], k, 0)
		for i := k + 1; i < len(sched); i++ {
			inc := ps.Step(sched[i])
			if inc.Seq != want[i].Seq {
				t.Fatalf("cut %d step %d: seq %d, want %d", k, i, inc.Seq, want[i].Seq)
			}
			if inc.Final != want[i].Final {
				t.Fatalf("cut %d step %d: final %v, want %v", k, i, inc.Final, want[i].Final)
			}
			requireIncrementEqual(t, "cut "+itoa(k)+" step "+itoa(i), inc, want[i])
		}
		if !ps.Done() {
			t.Fatalf("cut %d: resumed scan not Done after exhausting the sample", k)
		}
		release()
	}
}

// TestProgressiveFromResumeMultiUnit exercises the complete-unit fold paths
// of the resume entry: cuts below, exactly on and past unit boundaries
// (unitRows = 65536), across fold worker counts.
func TestProgressiveFromResumeMultiUnit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-unit sample build is slow")
	}
	tb := buildTable(t, 200000)
	sample, err := BuildSample(tb, 0.8, 0, 11) // 160k sample rows ≈ 2.4 units
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	snips := progressiveSnips(t, tb)
	view := e.Acquire()
	sched := []int{4096, 40000, 65536, 70000, 131072, 150000, view.SampleRows}
	want := progressiveIncrements(view, snips, sched, 0)

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for k := 0; k < len(sched)-1; k++ {
			ps := view.ProgressiveFrom(snips, sched[k], k, workers)
			for i := k + 1; i < len(sched); i++ {
				inc := ps.Step(sched[i])
				requireIncrementEqual(t, "workers="+itoa(workers)+" cut="+itoa(k)+" step="+itoa(i), inc, want[i])
			}
		}
	}
}

// TestProgressiveFromRowAtATime: the legacy scan mode resumes by sequential
// continuation and must hold the same bit-identity.
func TestProgressiveFromRowAtATime(t *testing.T) {
	tb := buildTable(t, 12000)
	sample, err := BuildSample(tb, 0.5, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	e.SetScanMode(ScanRowAtATime)
	snips := progressiveSnips(t, tb)
	view := e.Acquire()
	sched := PrefixSchedule(view.SampleRows, 100)
	want := progressiveIncrements(view, snips, sched, 0)
	for k := 0; k < len(sched)-1; k++ {
		ps := view.ProgressiveFrom(snips, sched[k], k, 0)
		for i := k + 1; i < len(sched); i++ {
			requireIncrementEqual(t, "row-mode cut="+itoa(k)+" step="+itoa(i), ps.Step(sched[i]), want[i])
		}
	}
}

// TestMaxRetainedGensEviction: with a bound of 2, only the two newest
// retired generations survive; the horizon advances, evicted generations
// fail ViewAtGen (nil) and PinGen (ErrGenEvicted), retained ones still
// replay, and a future generation reports ErrGenUnknown.
func TestMaxRetainedGensEviction(t *testing.T) {
	tb := buildTable(t, 8000)
	sample, err := BuildSample(tb, 0.4, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	e.SetMaxRetainedGens(2)
	view := e.Acquire()
	base0, rows0 := view.BaseRows, view.SampleRows
	for i := 0; i < 5; i++ {
		e.RebuildSample(int64(100+i), DefaultRebuildOptions())
	}
	// Generations 0..4 were retired; the bound keeps {3, 4}, live is 5.
	if got := e.RetainedGens(); got != 2 {
		t.Fatalf("retained %d generations, want 2", got)
	}
	if h := e.ReplayHorizon(); h != 3 {
		t.Fatalf("replay horizon %d, want 3", h)
	}
	if v := e.ViewAtGen(2, base0, rows0); v != nil {
		t.Fatal("ViewAtGen returned an evicted generation")
	}
	if _, _, err := e.PinGen(2, base0, rows0); !errors.Is(err, ErrGenEvicted) {
		t.Fatalf("PinGen(evicted) = %v, want ErrGenEvicted", err)
	}
	if _, _, err := e.PinGen(99, base0, rows0); !errors.Is(err, ErrGenUnknown) {
		t.Fatalf("PinGen(future) = %v, want ErrGenUnknown", err)
	}
	for gen := uint64(3); gen <= 5; gen++ {
		v, release, err := e.PinGen(gen, base0, rows0)
		if err != nil || v == nil || v.SampleGen != gen {
			t.Fatalf("PinGen(%d) = (%v, %v)", gen, v, err)
		}
		release()
		release() // idempotent
	}
}

// TestPinBlocksEviction: a generation pinned by a live stream survives any
// retention pressure (eviction is oldest-first and stops at the pin), and
// releasing the pin restores the bound immediately.
func TestPinBlocksEviction(t *testing.T) {
	tb := buildTable(t, 8000)
	sample, err := BuildSample(tb, 0.4, 0, 23)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	e.SetMaxRetainedGens(1)
	pinned, release := e.AcquirePinned()
	snips := progressiveSnips(t, tb)
	before := pinned.EvalPrefix(snips, 1000)

	for i := 0; i < 3; i++ {
		e.RebuildSample(int64(200+i), DefaultRebuildOptions())
	}
	// Generation 0 is pinned, so nothing newer may be evicted either:
	// retired = {0, 1, 2}, all held.
	if got := e.RetainedGens(); got != 3 {
		t.Fatalf("retained %d generations under a live pin, want 3", got)
	}
	if h := e.ReplayHorizon(); h != 0 {
		t.Fatalf("replay horizon %d under a live pin, want 0", h)
	}
	rv, rrelease, err := e.PinGen(0, pinned.BaseRows, pinned.SampleRows)
	if err != nil {
		t.Fatalf("PinGen(pinned gen) = %v", err)
	}
	requireIncrementEqual(t, "pinned replay", rv.EvalPrefix(snips, 1000), before)
	rrelease()

	// Dropping the stream's pin evicts down to the bound at once.
	release()
	if got := e.RetainedGens(); got != 1 {
		t.Fatalf("retained %d generations after release, want 1", got)
	}
	if h := e.ReplayHorizon(); h != 2 {
		t.Fatalf("replay horizon %d after release, want 2", h)
	}
	if _, _, err := e.PinGen(0, pinned.BaseRows, pinned.SampleRows); !errors.Is(err, ErrGenEvicted) {
		t.Fatalf("PinGen(released gen) = %v, want ErrGenEvicted", err)
	}
}

// TestSetMaxRetainedGensRetroactive: lowering the bound on a long-lived
// engine evicts immediately, not at the next rebuild; 0 disables eviction.
func TestSetMaxRetainedGensRetroactive(t *testing.T) {
	tb := buildTable(t, 6000)
	sample, err := BuildSample(tb, 0.4, 0, 29)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	for i := 0; i < 4; i++ {
		e.RebuildSample(int64(300+i), DefaultRebuildOptions())
	}
	if got := e.RetainedGens(); got != 4 {
		t.Fatalf("unbounded engine retained %d generations, want 4", got)
	}
	e.SetMaxRetainedGens(1)
	if got, h := e.RetainedGens(), e.ReplayHorizon(); got != 1 || h != 3 {
		t.Fatalf("after lowering the bound: retained %d (want 1), horizon %d (want 3)", got, h)
	}
}

// BenchmarkProgressiveResume measures the cursor entry cost: one
// ProgressiveFrom fold of a mid-sample prefix plus the remaining
// increments. It should scale with the sample size (one fold), not with
// the number of increments already consumed.
func BenchmarkProgressiveResume(b *testing.B) {
	tb := buildTable(b, 200000)
	sample, err := BuildSample(tb, 0.8, 0, 11)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(tb, sample, CachedCost)
	snips := []*query.Snippet{snippetFor(b, tb, "SELECT AVG(val) FROM t WHERE week >= 20 AND week < 45")}
	view := e.Acquire()
	sched := PrefixSchedule(view.SampleRows, storage.BlockSize)
	cut := len(sched) - 2 // resume just before the final increment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := view.ProgressiveFrom(snips, sched[cut], cut, 0)
		for _, prefix := range sched[cut+1:] {
			ps.Step(prefix)
		}
	}
}
