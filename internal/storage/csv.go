package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the table with a header row. Numeric cells are
// rendered with full float64 round-trip precision.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return err
	}
	rec := make([]string, t.schema.Len())
	for r := 0; r < t.rows; r++ {
		for c := 0; c < t.schema.Len(); c++ {
			if t.schema.Col(c).Kind == Numeric {
				rec[c] = strconv.FormatFloat(t.numeric[c][r], 'g', -1, 64)
			} else {
				rec[c] = t.StrAt(r, c)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a table whose header must match the schema's column names
// in order. Cells in numeric columns must parse as float64.
func ReadCSV(name string, schema *Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: reading header: %w", err)
	}
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("storage: header width %d, schema width %d", len(header), schema.Len())
	}
	for i, h := range header {
		if h != schema.Col(i).Name {
			return nil, fmt.Errorf("storage: header %q at %d, want %q", h, i, schema.Col(i).Name)
		}
	}
	t := NewTable(name, schema)
	vals := make([]Value, schema.Len())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: line %d: %w", line, err)
		}
		for i, cell := range rec {
			if schema.Col(i).Kind == Numeric {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("storage: line %d col %s: %w", line, schema.Col(i).Name, err)
				}
				vals[i] = Num(v)
			} else {
				vals[i] = Str(cell)
			}
		}
		if err := t.AppendRow(vals); err != nil {
			return nil, err
		}
	}
	return t, nil
}
