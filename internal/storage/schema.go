package storage

import (
	"errors"
	"fmt"
)

// Kind distinguishes column value types.
type Kind uint8

const (
	// Numeric columns hold float64 values.
	Numeric Kind = iota
	// Categorical columns hold dictionary-encoded string values.
	Categorical
)

func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Role distinguishes dimension attributes from measure attributes (§3.1).
type Role uint8

const (
	// Dimension attributes appear in predicates and GROUP BY but never
	// inside aggregate functions.
	Dimension Role = iota
	// Measure attributes are numeric and appear inside aggregates.
	Measure
)

func (r Role) String() string {
	if r == Dimension {
		return "dimension"
	}
	return "measure"
}

// ColumnDef describes one attribute of a relation.
type ColumnDef struct {
	Name string
	Kind Kind
	Role Role
	// Min/Max optionally declare the attribute domain for numeric columns;
	// Verdict substitutes the domain for missing range constraints (§4.1).
	// When Min < Max the declaration seeds the table's observed domain;
	// otherwise the domain is tracked from appended values.
	Min, Max float64
}

// Schema is an ordered list of column definitions with name lookup.
type Schema struct {
	cols  []ColumnDef
	index map[string]int
}

// ErrUnknownColumn is returned when a name does not resolve.
var ErrUnknownColumn = errors.New("storage: unknown column")

// ErrDuplicateColumn is returned when a schema repeats a name.
var ErrDuplicateColumn = errors.New("storage: duplicate column")

// ErrTypeMismatch is returned when a value does not match the column kind.
var ErrTypeMismatch = errors.New("storage: type mismatch")

// NewSchema validates and indexes the given column definitions.
func NewSchema(cols []ColumnDef) (*Schema, error) {
	s := &Schema{cols: append([]ColumnDef(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateColumn, c.Name)
		}
		if c.Kind == Categorical && c.Role == Measure {
			return nil, fmt.Errorf("storage: categorical measure %s not allowed", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for literal schemas in
// generators and tests.
func MustSchema(cols []ColumnDef) *Schema {
	s, err := NewSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the definition at position i.
func (s *Schema) Col(i int) ColumnDef { return s.cols[i] }

// Lookup resolves a column name to its position.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Names returns the ordered column names.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// DimensionCols returns positions of dimension attributes in schema order.
func (s *Schema) DimensionCols() []int {
	var out []int
	for i, c := range s.cols {
		if c.Role == Dimension {
			out = append(out, i)
		}
	}
	return out
}

// MeasureCols returns positions of measure attributes in schema order.
func (s *Schema) MeasureCols() []int {
	var out []int
	for i, c := range s.cols {
		if c.Role == Measure {
			out = append(out, i)
		}
	}
	return out
}
