package storage

import "fmt"

// Snapshot isolation for streaming appends. A snapshot is a frozen Table
// view over a stable row-count prefix of a live table: it shares the column
// backing arrays (appends only ever write past the captured length, so
// readers and the writer touch disjoint memory) but owns private copies of
// everything an append mutates in place — slice headers, zone maps, numeric
// domains. Scans against a snapshot therefore need no locks and observe a
// consistent prefix no matter how many rows land behind them.
//
// Dictionaries are shared, not copied: they are grow-only and internally
// synchronized, and every code a snapshot's rows reference is already
// present. Because tables are append-only, SnapshotAt(n) taken at any later
// time is row-for-row identical to a Snapshot taken when the table held n
// rows — the property serial-replay tests use to re-audit answers served
// under concurrency.

// Epoch returns the table's append epoch: a counter bumped once per
// AppendRow/AppendTable call. Cached views compare epochs to detect
// staleness without taking locks.
func (t *Table) Epoch() uint64 { return t.epoch.Load() }

// Frozen reports whether this table is a read-only snapshot view.
func (t *Table) Frozen() bool { return t.frozen }

// Snapshot returns a frozen view of the table's current rows.
func (t *Table) Snapshot() *Table { return t.SnapshotAt(-1) }

// SnapshotAt returns a frozen view of the first rows rows (all rows when
// rows is negative or exceeds the current count). The view's zone maps are
// copied, so later in-place widening of the live table's tail block cannot
// reach it; a tail zone summarizing rows past the prefix is harmless —
// zone-map verdicts are conservative under widening.
func (t *Table) SnapshotAt(rows int) *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if rows < 0 || rows > t.rows {
		rows = t.rows
	}
	n := t.schema.Len()
	out := &Table{
		name:      t.name,
		schema:    t.schema,
		rows:      rows,
		frozen:    true,
		numeric:   make([][]float64, n),
		codes:     make([][]int32, n),
		dicts:     t.dicts, // shared: grow-only and self-synchronized
		mins:      append([]float64(nil), t.mins...),
		maxs:      append([]float64(nil), t.maxs...),
		domainSet: append([]bool(nil), t.domainSet...),
		numZones:  make([][]NumZone, n),
		catZones:  make([][]CatZone, n),
	}
	out.epoch.Store(t.epoch.Load())
	nb := (rows + BlockSize - 1) / BlockSize
	for i := 0; i < n; i++ {
		if t.schema.Col(i).Kind == Numeric {
			// Full slice expressions cap capacity: an append to the view
			// could never alias the live table's spare capacity.
			out.numeric[i] = t.numeric[i][:rows:rows]
			out.numZones[i] = append([]NumZone(nil), t.numZones[i][:nb]...)
		} else {
			out.codes[i] = t.codes[i][:rows:rows]
			out.catZones[i] = append([]CatZone(nil), t.catZones[i][:nb]...)
		}
	}
	return out
}

// AppendByName appends every row of src, matching columns by name: src may
// have been built against a different Schema object (e.g. a freshly
// generated batch) as long as each of this table's columns exists in src
// with the same kind. It is the bridge streaming producers use to land
// batches into a served relation.
//
// The whole batch lands under one lock acquisition and one epoch bump, with
// categorical codes translated through a per-column cache instead of a
// per-cell string round-trip — a 1M-row batch costs one lock, not millions.
// The caller must not mutate src concurrently.
func (t *Table) AppendByName(src *Table) error {
	srcCols := make([]int, t.schema.Len())
	for i := 0; i < t.schema.Len(); i++ {
		def := t.schema.Col(i)
		j, ok := src.Schema().Lookup(def.Name)
		if !ok {
			return fmt.Errorf("storage: append batch missing column %q", def.Name)
		}
		if src.Schema().Col(j).Kind != def.Kind {
			return fmt.Errorf("storage: append batch column %q kind mismatch", def.Name)
		}
		srcCols[i] = j
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return ErrFrozen
	}
	defer t.epoch.Add(1)
	for i, j := range srcCols {
		if t.schema.Col(i).Kind == Numeric {
			vals := src.numeric[j]
			t.numeric[i] = append(t.numeric[i], vals...)
			for r, v := range vals {
				t.observe(i, v)
				t.observeZoneNum(i, t.rows+r, v)
			}
		} else if src.dicts[j] == t.dicts[i] {
			codes := src.codes[j]
			t.codes[i] = append(t.codes[i], codes...)
			for r, c := range codes {
				t.observeZoneCat(i, t.rows+r, c)
			}
		} else {
			// Foreign dictionary: translate codes through a per-column cache
			// so each distinct value is re-interned once, not once per row.
			xlat := make(map[int32]int32)
			for r, c := range src.codes[j] {
				dc, ok := xlat[c]
				if !ok {
					dc = t.dicts[i].Code(src.dicts[j].Value(c))
					xlat[c] = dc
				}
				t.codes[i] = append(t.codes[i], dc)
				t.observeZoneCat(i, t.rows+r, dc)
			}
		}
	}
	t.rows += src.rows
	return nil
}
