package storage

import (
	"fmt"
	"sync"
	"testing"
)

func snapSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]ColumnDef{
		{Name: "x", Kind: Numeric, Role: Dimension},
		{Name: "c", Kind: Categorical, Role: Dimension},
		{Name: "m", Kind: Numeric},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func appendSnapRow(t *testing.T, tb *Table, i int) {
	t.Helper()
	if err := tb.AppendRow([]Value{
		Num(float64(i % 100)),
		Str(fmt.Sprintf("c%d", i%7)),
		Num(float64(i)),
	}); err != nil {
		t.Fatal(err)
	}
}

// A snapshot must stay byte-identical while the live table keeps growing.
func TestSnapshotIsolatedFromAppends(t *testing.T) {
	tb := NewTable("t", snapSchema(t))
	for i := 0; i < 6000; i++ {
		appendSnapRow(t, tb, i)
	}
	snap := tb.Snapshot()
	if snap.Rows() != 6000 || !snap.Frozen() {
		t.Fatalf("snapshot rows=%d frozen=%v", snap.Rows(), snap.Frozen())
	}
	if err := snap.AppendRow([]Value{Num(1), Str("z"), Num(2)}); err != ErrFrozen {
		t.Fatalf("mutating snapshot: got %v, want ErrFrozen", err)
	}
	lo, hi := snap.Domain(0)
	for i := 6000; i < 20000; i++ {
		appendSnapRow(t, tb, i*31) // new values widen domains and zones
	}
	if snap.Rows() != 6000 {
		t.Fatalf("snapshot grew to %d rows", snap.Rows())
	}
	if l2, h2 := snap.Domain(0); l2 != lo || h2 != hi {
		t.Fatalf("snapshot domain moved: [%g,%g] -> [%g,%g]", lo, hi, l2, h2)
	}
	for i := 0; i < 6000; i++ {
		if got := snap.NumAt(i, 2); got != float64(i) {
			t.Fatalf("row %d: m=%g", i, got)
		}
	}
	if tb.Rows() != 20000 {
		t.Fatalf("live rows=%d", tb.Rows())
	}
}

// SnapshotAt on the grown table must replay a historical snapshot exactly.
func TestSnapshotAtReplaysHistory(t *testing.T) {
	tb := NewTable("t", snapSchema(t))
	for i := 0; i < 5000; i++ {
		appendSnapRow(t, tb, i)
	}
	old := tb.Snapshot()
	for i := 5000; i < 9000; i++ {
		appendSnapRow(t, tb, i)
	}
	replay := tb.SnapshotAt(5000)
	if replay.Rows() != old.Rows() {
		t.Fatalf("replay rows=%d, old=%d", replay.Rows(), old.Rows())
	}
	for i := 0; i < old.Rows(); i++ {
		if old.NumAt(i, 0) != replay.NumAt(i, 0) || old.StrAt(i, 1) != replay.StrAt(i, 1) || old.NumAt(i, 2) != replay.NumAt(i, 2) {
			t.Fatalf("row %d differs between snapshot and replay", i)
		}
	}
}

// Concurrent appenders and snapshot scanners must be race-free (run with
// -race) and every snapshot must see a consistent prefix.
func TestSnapshotConcurrentAppendScan(t *testing.T) {
	tb := NewTable("t", snapSchema(t))
	for i := 0; i < BlockSize+17; i++ {
		appendSnapRow(t, tb, i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			appendSnapRow(t, tb, 100000+i)
		}
	}()
	var errOnce sync.Once
	var firstErr error
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				snap := tb.Snapshot()
				rows := snap.Rows()
				// The measure column of the first BlockSize+17 rows is the
				// row index; summing validates the prefix is intact.
				sum := 0.0
				col := snap.NumericCol(2)
				if len(col) != rows {
					errOnce.Do(func() { firstErr = fmt.Errorf("col len %d != rows %d", len(col), rows) })
					return
				}
				n := BlockSize + 17
				for i := 0; i < n; i++ {
					sum += col[i]
				}
				want := float64(n*(n-1)) / 2
				if sum != want {
					errOnce.Do(func() { firstErr = fmt.Errorf("prefix sum %g, want %g", sum, want) })
					return
				}
				_ = snap.DictOf(1).Size()
			}
		}()
	}
	close(stop)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
}

func TestAppendByName(t *testing.T) {
	tb := NewTable("t", snapSchema(t))
	appendSnapRow(t, tb, 1)

	// Batch with the same column names in a different order, own schema.
	bs, err := NewSchema([]ColumnDef{
		{Name: "m", Kind: Numeric},
		{Name: "x", Kind: Numeric, Role: Dimension},
		{Name: "c", Kind: Categorical, Role: Dimension},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := NewTable("batch", bs)
	if err := batch.AppendRow([]Value{Num(42), Num(7), Str("new")}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendByName(batch); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows=%d", tb.Rows())
	}
	if tb.NumAt(1, 0) != 7 || tb.StrAt(1, 1) != "new" || tb.NumAt(1, 2) != 42 {
		t.Fatalf("appended row mismatch: %g %s %g", tb.NumAt(1, 0), tb.StrAt(1, 1), tb.NumAt(1, 2))
	}

	// Kind mismatch is rejected.
	ms, err := NewSchema([]ColumnDef{
		{Name: "x", Kind: Categorical, Role: Dimension},
		{Name: "c", Kind: Categorical},
		{Name: "m", Kind: Numeric},
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := NewTable("bad", ms)
	if err := tb.AppendByName(bad); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}
