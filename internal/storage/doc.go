// Package storage implements the in-memory columnar store that plays the
// role of the paper's data substrate (Spark SQL DataFrames over HDFS). A
// Table is a named collection of typed columns over a single denormalized
// relation — the paper's analysis is likewise "based on a denormalized
// table" (§2.2) after foreign-key joins are folded in.
//
// Columns are either numeric (float64) or categorical (dictionary-encoded
// int32 codes with a string dictionary). The schema distinguishes dimension
// attributes (usable in predicates and GROUP BY) from measure attributes
// (usable inside aggregates), matching §3.1. Tables are partitioned into
// BlockSize-row blocks carrying zone maps (block.go) that the vectorized
// scan prunes against.
//
// # Concurrency invariants
//
// Tables are append-only with an immutable schema. Who locks what:
//
//   - Appends (AppendRow, AppendTable, AppendByName) serialize on the
//     table's internal mutex and bump the append epoch once per batch.
//   - Snapshot/SnapshotAt, SelectRows, Domain and Stats take the read
//     lock and may run concurrently with an append.
//   - The per-cell accessors (NumAt, NumericCol, CodesCol, …) take no
//     locks: concurrent readers must hold a frozen Snapshot view.
//   - Dictionaries are grow-only and internally synchronized; they are
//     shared between a table and all its snapshots and samples, and codes
//     already handed out never change meaning.
//
// What is immutable after publish: a Snapshot is a frozen prefix view —
// it shares the column backing arrays (appends only write past the
// captured length, so reader and writer touch disjoint memory) and owns
// private copies of everything an append mutates in place (slice headers,
// zone maps, numeric domains). Mutating a snapshot returns ErrFrozen.
// Because tables are append-only, SnapshotAt(n) taken at any later time is
// row-for-row identical to a snapshot taken when the table held n rows —
// the property every serial-replay audit in this repository rests on.
package storage
