package storage

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]ColumnDef{
		{Name: "week", Kind: Numeric, Role: Dimension},
		{Name: "region", Kind: Categorical, Role: Dimension},
		{Name: "revenue", Kind: Numeric, Role: Measure},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema([]ColumnDef{{Name: "", Kind: Numeric}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewSchema([]ColumnDef{
		{Name: "a", Kind: Numeric}, {Name: "a", Kind: Numeric},
	}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewSchema([]ColumnDef{{Name: "c", Kind: Categorical, Role: Measure}}); err == nil {
		t.Fatal("categorical measure accepted")
	}
}

func TestSchemaLookupAndRoles(t *testing.T) {
	s := testSchema(t)
	if i, ok := s.Lookup("revenue"); !ok || i != 2 {
		t.Fatalf("Lookup revenue = %d,%v", i, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	if dims := s.DimensionCols(); len(dims) != 2 || dims[0] != 0 || dims[1] != 1 {
		t.Fatalf("DimensionCols=%v", dims)
	}
	if ms := s.MeasureCols(); len(ms) != 1 || ms[0] != 2 {
		t.Fatalf("MeasureCols=%v", ms)
	}
	names := s.Names()
	if names[1] != "region" {
		t.Fatalf("Names=%v", names)
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tb := NewTable("sales", testSchema(t))
	rows := []struct {
		week    float64
		region  string
		revenue float64
	}{
		{1, "east", 100}, {2, "west", 200}, {3, "east", 150},
	}
	for _, r := range rows {
		if err := tb.AppendRow([]Value{Num(r.week), Str(r.region), Num(r.revenue)}); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Rows() != 3 {
		t.Fatalf("rows=%d", tb.Rows())
	}
	if tb.NumAt(1, 0) != 2 || tb.StrAt(1, 1) != "west" || tb.NumAt(2, 2) != 150 {
		t.Fatal("cell access broken")
	}
	if lo, hi := tb.Domain(0); lo != 1 || hi != 3 {
		t.Fatalf("domain=(%v,%v)", lo, hi)
	}
	if d := tb.DictOf(1); d.Size() != 2 {
		t.Fatalf("dict size=%d", d.Size())
	}
	if err := tb.AppendRow([]Value{Num(1)}); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestTableColumnAccessPanicsOnWrongKind(t *testing.T) {
	tb := NewTable("sales", testSchema(t))
	assertPanics(t, func() { tb.NumericCol(1) })
	assertPanics(t, func() { tb.CodesCol(0) })
	assertPanics(t, func() { tb.DictOf(2) })
	assertPanics(t, func() { tb.Domain(1) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestSelectRows(t *testing.T) {
	tb := NewTable("sales", testSchema(t))
	for i := 0; i < 10; i++ {
		region := "east"
		if i%2 == 1 {
			region = "west"
		}
		if err := tb.AppendRow([]Value{Num(float64(i)), Str(region), Num(float64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	sub := tb.SelectRows("sample", []int{1, 3, 5})
	if sub.Rows() != 3 {
		t.Fatalf("rows=%d", sub.Rows())
	}
	if sub.NumAt(0, 0) != 1 || sub.StrAt(2, 1) != "west" || sub.NumAt(1, 2) != 30 {
		t.Fatal("SelectRows wrong values")
	}
	// Shared dictionary: codes stay comparable.
	if sub.DictOf(1) != tb.DictOf(1) {
		t.Fatal("sample must share dictionary")
	}
	// Domains still describe the base relation.
	if lo, hi := sub.Domain(0); lo != 0 || hi != 9 {
		t.Fatalf("sample domain=(%v,%v), want base", lo, hi)
	}
}

func TestAppendTable(t *testing.T) {
	schema := testSchema(t)
	a := NewTable("base", schema)
	b := NewTable("delta", schema)
	if err := a.AppendRow([]Value{Num(1), Str("east"), Num(10)}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow([]Value{Num(5), Str("north"), Num(50)}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow([]Value{Num(6), Str("east"), Num(60)}); err != nil {
		t.Fatal(err)
	}
	if err := a.AppendTable(b); err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 3 {
		t.Fatalf("rows=%d", a.Rows())
	}
	if a.StrAt(1, 1) != "north" || a.StrAt(2, 1) != "east" {
		t.Fatal("append re-encoding broken")
	}
	if lo, hi := a.Domain(0); lo != 1 || hi != 6 {
		t.Fatalf("domain after append=(%v,%v)", lo, hi)
	}
	other, _ := NewSchema([]ColumnDef{{Name: "x", Kind: Numeric}})
	if err := a.AppendTable(NewTable("bad", other)); err == nil {
		t.Fatal("mismatched schema accepted")
	}
}

func TestStats(t *testing.T) {
	tb := NewTable("s", MustSchema([]ColumnDef{{Name: "x", Kind: Numeric, Role: Measure}}))
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		if err := tb.AppendRow([]Value{Num(v)}); err != nil {
			t.Fatal(err)
		}
	}
	st := tb.Stats(0)
	if st.Count != 8 || st.Mean != 5 || math.Abs(st.Variance-4) > 1e-12 {
		t.Fatalf("stats=%+v", st)
	}
	if st.Min != 2 || st.Max != 9 {
		t.Fatalf("minmax=%+v", st)
	}
	empty := NewTable("e", MustSchema([]ColumnDef{{Name: "x", Kind: Numeric}}))
	if st := empty.Stats(0); st.Count != 0 {
		t.Fatalf("empty stats=%+v", st)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable("sales", testSchema(t))
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if err := tb.AppendRow([]Value{
			Num(r.NormFloat64() * 100),
			Str("r" + strconv.Itoa(r.Intn(5))),
			Num(r.ExpFloat64()),
		}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("sales", tb.Schema(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != tb.Rows() {
		t.Fatalf("rows=%d want %d", got.Rows(), tb.Rows())
	}
	for i := 0; i < tb.Rows(); i++ {
		if got.NumAt(i, 0) != tb.NumAt(i, 0) || got.StrAt(i, 1) != tb.StrAt(i, 1) ||
			got.NumAt(i, 2) != tb.NumAt(i, 2) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := ReadCSV("x", s, bytes.NewReader([]byte("bad,header\n"))); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := ReadCSV("x", s, bytes.NewReader([]byte("week,region,revenue\noops,east,1\n"))); err == nil {
		t.Fatal("non-numeric cell accepted")
	}
	if _, err := ReadCSV("x", s, bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDictInternStability(t *testing.T) {
	f := func(raw []string) bool {
		d := NewDict()
		codes := make([]int32, len(raw))
		for i, v := range raw {
			codes[i] = d.Code(v)
		}
		for i, v := range raw {
			c, ok := d.LookupCode(v)
			if !ok || c != codes[i] || d.Value(c) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRowsPreservesOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := NewTable("t", MustSchema([]ColumnDef{{Name: "x", Kind: Numeric, Role: Dimension}}))
		n := 1 + r.Intn(50)
		for i := 0; i < n; i++ {
			if err := tb.AppendRow([]Value{Num(float64(i))}); err != nil {
				return false
			}
		}
		k := r.Intn(n + 1)
		idx := r.Perm(n)[:k]
		sub := tb.SelectRows("s", idx)
		if sub.Rows() != k {
			return false
		}
		for i, ri := range idx {
			if sub.NumAt(i, 0) != float64(ri) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
