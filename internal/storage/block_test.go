package storage

import (
	"fmt"
	"testing"
)

// zoneSchema builds a 2-column (numeric dimension, categorical dimension)
// schema for zone-map tests.
func zoneSchema() *Schema {
	return MustSchema([]ColumnDef{
		{Name: "x", Kind: Numeric, Role: Dimension},
		{Name: "c", Kind: Categorical, Role: Dimension},
	})
}

// checkZones verifies every block's zone map against a brute-force rescan of
// the block's rows.
func checkZones(t *testing.T, tb *Table) {
	t.Helper()
	xcol, _ := tb.Schema().Lookup("x")
	ccol, _ := tb.Schema().Lookup("c")
	wantBlocks := (tb.Rows() + BlockSize - 1) / BlockSize
	if got := tb.NumBlocks(); got != wantBlocks {
		t.Fatalf("NumBlocks=%d want %d", got, wantBlocks)
	}
	for b := 0; b < tb.NumBlocks(); b++ {
		lo, hi := tb.BlockBounds(b)
		if lo >= hi {
			t.Fatalf("block %d empty bounds [%d,%d)", b, lo, hi)
		}
		nz := tb.NumZone(xcol, b)
		cz := tb.CatZone(ccol, b)
		min, max := tb.NumAt(lo, xcol), tb.NumAt(lo, xcol)
		minC, maxC := tb.CodesCol(ccol)[lo], tb.CodesCol(ccol)[lo]
		for r := lo; r < hi; r++ {
			v := tb.NumAt(r, xcol)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			code := tb.CodesCol(ccol)[r]
			if code < minC {
				minC = code
			}
			if code > maxC {
				maxC = code
			}
			if !cz.ContainsCode(code) {
				t.Fatalf("block %d: code %d present but ContainsCode=false", b, code)
			}
		}
		if nz.Min != min || nz.Max != max {
			t.Fatalf("block %d: NumZone=%+v want [%g,%g]", b, nz, min, max)
		}
		if cz.MinCode != minC || cz.MaxCode != maxC {
			t.Fatalf("block %d: CatZone=%+v want codes [%d,%d]", b, cz, minC, maxC)
		}
	}
}

func TestZoneMapsUnderAppendRow(t *testing.T) {
	tb := NewTable("t", zoneSchema())
	// Cross two block boundaries, with values that widen each block's zone
	// as it fills.
	n := 2*BlockSize + 137
	for i := 0; i < n; i++ {
		v := float64((i*7919)%1000) - 500 // pseudo-random walk over [-500,500)
		c := fmt.Sprintf("g%d", (i*31)%7)
		if err := tb.AppendRow([]Value{Num(v), Str(c)}); err != nil {
			t.Fatal(err)
		}
	}
	if tb.NumBlocks() != 3 {
		t.Fatalf("blocks=%d", tb.NumBlocks())
	}
	checkZones(t, tb)
	// Last block is partial.
	lo, hi := tb.BlockBounds(2)
	if lo != 2*BlockSize || hi != n {
		t.Fatalf("last block bounds [%d,%d)", lo, hi)
	}
}

func TestZoneMapsUnderAppendTableSharedDict(t *testing.T) {
	schema := zoneSchema()
	tb := NewTable("t", schema)
	for i := 0; i < BlockSize+10; i++ {
		if err := tb.AppendRow([]Value{Num(float64(i)), Str("a")}); err != nil {
			t.Fatal(err)
		}
	}
	// Same-dict path: a table built via SelectRows shares the dictionary.
	idx := make([]int, 500)
	for i := range idx {
		idx[i] = i
	}
	other := tb.SelectRows("other", idx)
	if err := tb.AppendTable(other); err != nil {
		t.Fatal(err)
	}
	checkZones(t, tb)
}

func TestZoneMapsUnderAppendTableReencode(t *testing.T) {
	schema := zoneSchema()
	tb := NewTable("t", schema)
	other := NewTable("o", schema) // fresh table ⇒ its own dictionary
	// Intern codes in different orders so re-encoding actually remaps.
	for i := 0; i < 100; i++ {
		if err := tb.AppendRow([]Value{Num(float64(i)), Str([]string{"a", "b"}[i%2])}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < BlockSize; i++ {
		if err := other.AppendRow([]Value{Num(float64(1000 + i)), Str([]string{"c", "b", "a"}[i%3])}); err != nil {
			t.Fatal(err)
		}
	}
	if tb.DictOf(1) == other.DictOf(1) {
		t.Fatal("test premise: dicts must differ")
	}
	if err := tb.AppendTable(other); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 100+BlockSize {
		t.Fatalf("rows=%d", tb.Rows())
	}
	checkZones(t, tb)
	// Domain widened by appended values.
	lo, hi := tb.Domain(0)
	if lo != 0 || hi != float64(1000+BlockSize-1) {
		t.Fatalf("domain [%g,%g]", lo, hi)
	}
	// Re-encoded strings survive round-trip.
	if got := tb.StrAt(100, 1); got != "c" {
		t.Fatalf("first appended string=%q", got)
	}
}

func TestSelectRowsZonesAndDomains(t *testing.T) {
	schema := MustSchema([]ColumnDef{
		{Name: "x", Kind: Numeric, Role: Dimension},
		{Name: "c", Kind: Categorical, Role: Dimension},
	})
	tb := NewTable("t", schema)
	for i := 0; i < 3*BlockSize; i++ {
		if err := tb.AppendRow([]Value{Num(float64(i)), Str(fmt.Sprintf("g%d", i%5))}); err != nil {
			t.Fatal(err)
		}
	}
	// Select a narrow slice: zones must reflect the *selected* rows while
	// the numeric domain still reports the base relation's extent (§4.1:
	// range-to-domain substitution refers to the full relation).
	idx := make([]int, 0, BlockSize/2)
	for i := BlockSize; i < BlockSize+BlockSize/2; i++ {
		idx = append(idx, i)
	}
	sub := tb.SelectRows("sub", idx)
	checkZones(t, sub)
	if sub.NumBlocks() != 1 {
		t.Fatalf("sub blocks=%d", sub.NumBlocks())
	}
	z := sub.NumZone(0, 0)
	if z.Min != float64(BlockSize) || z.Max != float64(BlockSize+BlockSize/2-1) {
		t.Fatalf("sub zone=%+v", z)
	}
	lo, hi := sub.Domain(0)
	if lo != 0 || hi != float64(3*BlockSize-1) {
		t.Fatalf("sub domain [%g,%g] must inherit base relation extent", lo, hi)
	}
}

func TestZoneMapEmptyTable(t *testing.T) {
	tb := NewTable("t", zoneSchema())
	if tb.NumBlocks() != 0 {
		t.Fatalf("empty table blocks=%d", tb.NumBlocks())
	}
}

func TestCatZoneContainsCode(t *testing.T) {
	z := CatZone{MinCode: 3, MaxCode: 70, Mask: (1 << 3) | (1 << (70 % 64))}
	if z.ContainsCode(2) || z.ContainsCode(71) {
		t.Fatal("out-of-range code admitted")
	}
	if !z.ContainsCode(3) || !z.ContainsCode(70) {
		t.Fatal("present code rejected")
	}
	if z.ContainsCode(4) {
		t.Fatal("absent in-mask-range code with clear bit admitted")
	}
	// 67 aliases 3 mod 64: conservatively possible.
	if !z.ContainsCode(67) {
		t.Fatal("mask aliasing must stay conservative")
	}
}
