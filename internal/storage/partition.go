package storage

import "sort"

// Partitioned sample layout. The sample is split into a fixed number of
// micro-strata (SampleStrata), each an immutable frozen Table sharing the
// base dictionaries by reference. K serving partitions group contiguous
// strata; because the stratum — not the partition — is the scan granule,
// every query answer is bit-identical for any K (partition-count
// invariance), mirroring the synopsis layer's shard-count invariance.
//
// Stratified layout: rows are range-partitioned on a stratum column by
// quantile rank, so each stratum covers a narrow value slice and its zone
// maps prune selective predicates. Within a stratum the (shuffled) arrival
// order is preserved, so any per-stratum prefix is itself a uniform random
// subsample. A deterministic interleave index maps a global sample prefix to
// per-stratum prefixes: progressive and time-bounded execution keep
// row-level prefix-uniformity while zone maps stay tight.

// SampleStrata is the fixed number of micro-strata a partitioned sample is
// built from, independent of the serving partition count K. It is divisible
// by 1, 2, 4, 7, 8, 14 and 28 so common K choices get equal-sized
// partitions, but any K in [1, SampleStrata] is valid.
const SampleStrata = 56

// interleaveCkpt is the spacing of prefix-count checkpoints in the
// interleave index: PrefixCounts scans at most this many entries.
const interleaveCkpt = 4096

// PartitionedSample holds the strata of a partitioned sample plus the
// interleave index mapping global prefix lengths to per-stratum prefix
// lengths. It is immutable after construction; post-build appends accumulate
// in a separate tail table owned by the caller.
type PartitionedSample struct {
	strata []*Table
	col    int // stratum column, -1 for round-robin strata
	parts  int // serving partition count K
	rows   int

	// order[i] is the stratum that owns global sample position i; cum[c] is
	// the per-stratum count over order[:c*interleaveCkpt].
	order []uint8
	cum   [][]int32
}

// BuildStratified partitions src's rows into SampleStrata strata and parts
// serving partitions. idx is the (shuffled) global sample order; its
// traversal order becomes the within-stratum arrival order, so a shuffled
// idx yields prefix-uniform strata. When col >= 0 rows are range-partitioned
// on that numeric column by quantile rank; when col < 0 strata are assigned
// round-robin (shuffled layout: prefix-uniform but no zone-map locality).
// parts is clamped to [1, SampleStrata].
func BuildStratified(src *Table, idx []int, col, parts int) *PartitionedSample {
	if parts < 1 {
		parts = 1
	}
	if parts > SampleStrata {
		parts = SampleStrata
	}
	n := len(idx)
	members := make([][]int, SampleStrata)
	if col >= 0 {
		// Quantile-rank stratification: sort the selected rows by key (row
		// index breaking ties, so equal keys split deterministically) and
		// give stratum s the ranks [s*n/56, (s+1)*n/56).
		keys := src.NumericCol(col)
		byKey := make([]int, n)
		for i := range byKey {
			byKey[i] = i
		}
		sort.Slice(byKey, func(a, b int) bool {
			ra, rb := idx[byKey[a]], idx[byKey[b]]
			if keys[ra] != keys[rb] {
				return keys[ra] < keys[rb]
			}
			return ra < rb
		})
		strat := make([]uint8, n)
		for rank, pos := range byKey {
			s := rank * SampleStrata / n
			if s >= SampleStrata {
				s = SampleStrata - 1
			}
			strat[pos] = uint8(s)
		}
		for pos, r := range idx {
			s := strat[pos]
			members[s] = append(members[s], r)
		}
	} else {
		for pos, r := range idx {
			members[pos%SampleStrata] = append(members[pos%SampleStrata], r)
		}
	}

	ps := &PartitionedSample{col: col, parts: parts, rows: n}
	ps.strata = make([]*Table, SampleStrata)
	for s, m := range members {
		ps.strata[s] = src.SelectRows(src.Name(), m).Snapshot()
	}
	ps.buildInterleave(members)
	return ps
}

// buildInterleave computes the deterministic proportional interleave: global
// position i belongs to the stratum whose next row has the smallest
// fractional position (j+0.5)/n_s, ties to the lower stratum id. Compared
// exactly with int64 cross-multiplication, so the index is identical on
// every platform and independent of K.
func (ps *PartitionedSample) buildInterleave(members [][]int) {
	ps.order = make([]uint8, ps.rows)
	counts := make([]int64, SampleStrata)
	sizes := make([]int64, SampleStrata)
	for s, m := range members {
		sizes[s] = int64(len(m))
	}
	ps.cum = make([][]int32, 0, ps.rows/interleaveCkpt+1)
	for i := 0; i < ps.rows; i++ {
		if i%interleaveCkpt == 0 {
			ck := make([]int32, SampleStrata)
			for s := range ck {
				ck[s] = int32(counts[s])
			}
			ps.cum = append(ps.cum, ck)
		}
		best := -1
		for s := 0; s < SampleStrata; s++ {
			if counts[s] >= sizes[s] {
				continue
			}
			if best < 0 {
				best = s
				continue
			}
			// (2*j_s+1)/n_s < (2*j_best+1)/n_best, exactly.
			if (2*counts[s]+1)*sizes[best] < (2*counts[best]+1)*sizes[s] {
				best = s
			}
		}
		ps.order[i] = uint8(best)
		counts[best]++
	}
}

// Rows returns the total row count across all strata (the tail table is not
// included; it is owned by the caller).
func (ps *PartitionedSample) Rows() int { return ps.rows }

// NumStrata returns the number of micro-strata.
func (ps *PartitionedSample) NumStrata() int { return len(ps.strata) }

// Stratum returns stratum s as a frozen table.
func (ps *PartitionedSample) Stratum(s int) *Table { return ps.strata[s] }

// StrataTables returns the strata in stratum order (a fresh slice).
func (ps *PartitionedSample) StrataTables() []*Table {
	return append([]*Table(nil), ps.strata...)
}

// NumPartitions returns the serving partition count K.
func (ps *PartitionedSample) NumPartitions() int { return ps.parts }

// StratumColumn returns the stratum column index, or -1 for round-robin.
func (ps *PartitionedSample) StratumColumn() int { return ps.col }

// PartitionStrata returns the [lo, hi) stratum range of partition p.
func (ps *PartitionedSample) PartitionStrata(p int) (lo, hi int) {
	s := len(ps.strata)
	return p * s / ps.parts, (p + 1) * s / ps.parts
}

// PartitionOf returns the partition owning stratum s.
func (ps *PartitionedSample) PartitionOf(s int) int {
	for p := 0; p < ps.parts; p++ {
		lo, hi := ps.PartitionStrata(p)
		if s >= lo && s < hi {
			return p
		}
	}
	return ps.parts - 1
}

// PartitionRows returns the row count of partition p.
func (ps *PartitionedSample) PartitionRows(p int) int {
	lo, hi := ps.PartitionStrata(p)
	n := 0
	for s := lo; s < hi; s++ {
		n += ps.strata[s].Rows()
	}
	return n
}

// StratumAt returns the stratum owning global sample position i.
func (ps *PartitionedSample) StratumAt(i int) int { return int(ps.order[i]) }

// PrefixCounts returns, for each stratum, how many of its rows fall inside
// the global prefix [0, p). dst is reused when it has capacity. p is clamped
// to [0, Rows()].
func (ps *PartitionedSample) PrefixCounts(p int, dst []int) []int {
	if p < 0 {
		p = 0
	}
	if p > ps.rows {
		p = ps.rows
	}
	if cap(dst) < SampleStrata {
		dst = make([]int, SampleStrata)
	}
	dst = dst[:SampleStrata]
	if len(ps.cum) == 0 { // zero-row sample
		for s := range dst {
			dst[s] = 0
		}
		return dst
	}
	c := p / interleaveCkpt
	if c >= len(ps.cum) {
		c = len(ps.cum) - 1
	}
	ck := ps.cum[c]
	for s := range dst {
		dst[s] = int(ck[s])
	}
	for i := c * interleaveCkpt; i < p; i++ {
		dst[ps.order[i]]++
	}
	return dst
}

// ZoneSelectivity reports how tightly partition p's zone maps bound the
// stratum column: the mean over the partition's blocks of (block zone width
// / column domain width). Near 0 means a selective range predicate on the
// stratum column prunes almost every block; 1 means no pruning power (and is
// returned for round-robin layouts or degenerate domains).
func (ps *PartitionedSample) ZoneSelectivity(p int) float64 {
	if ps.col < 0 {
		return 1
	}
	lo, hi := ps.PartitionStrata(p)
	var sum float64
	blocks := 0
	for s := lo; s < hi; s++ {
		t := ps.strata[s]
		dlo, dhi := t.Domain(ps.col)
		if dhi <= dlo {
			continue
		}
		for b := 0; b < t.NumBlocks(); b++ {
			z := t.NumZone(ps.col, b)
			sum += (z.Max - z.Min) / (dhi - dlo)
			blocks++
		}
	}
	if blocks == 0 {
		return 1
	}
	return sum / float64(blocks)
}

// Concat materializes the given tables (identical schema object required)
// into one table in order, sharing dictionaries by reference exactly like
// SelectRows. It is how a partitioned sample is flattened back into a single
// relation for re-stratification and drift estimation.
func Concat(name string, parts []*Table) *Table {
	if len(parts) == 0 {
		panic("storage: Concat of zero tables")
	}
	first := parts[0]
	out := NewTable(name, first.schema)
	rows := 0
	for _, p := range parts {
		if p.schema != first.schema {
			panic("storage: Concat requires the identical schema object")
		}
		rows += p.rows
	}
	for i := 0; i < first.schema.Len(); i++ {
		if first.schema.Col(i).Kind == Numeric {
			col := make([]float64, 0, rows)
			for _, p := range parts {
				col = append(col, p.numeric[i]...)
			}
			out.numeric[i] = col
		} else {
			out.dicts[i] = first.dicts[i]
			col := make([]int32, 0, rows)
			for _, p := range parts {
				if p.dicts[i] != first.dicts[i] {
					panic("storage: Concat requires shared dictionaries")
				}
				col = append(col, p.codes[i]...)
			}
			out.codes[i] = col
		}
	}
	out.rows = rows
	copy(out.mins, first.mins)
	copy(out.maxs, first.maxs)
	copy(out.domainSet, first.domainSet)
	for _, p := range parts[1:] {
		for i := 0; i < first.schema.Len(); i++ {
			if first.schema.Col(i).Kind == Numeric && p.domainSet[i] {
				out.observe(i, p.mins[i])
				out.observe(i, p.maxs[i])
			}
		}
	}
	out.extendZones(0)
	return out
}
