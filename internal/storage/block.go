package storage

// Block partitioning and zone maps. Every column of a Table is logically
// split into fixed-size blocks of BlockSize consecutive rows; each block
// carries a small summary (a "zone map") that the vectorized scan path uses
// to skip provably-empty blocks and to fast-path provably-full ones without
// touching a single row. Summaries are maintained incrementally: AppendRow
// updates the tail block in O(1) per cell, while AppendTable and SelectRows
// extend the maps for exactly the rows they add.
//
// Numeric columns summarize min/max. Categorical columns summarize the code
// range plus a 64-bit occupancy mask (bit c%64 set when code c occurs in the
// block) — exact for dictionaries of at most 64 values and a conservative
// Bloom-style filter beyond that.

// BlockSize is the number of rows per zone-mapped block. 4096 float64 cells
// are 32 KiB — one column block fits comfortably in L1/L2, which is what the
// vectorized scan kernels want.
const BlockSize = 4096

// NumZone is the zone map of one numeric column over one block.
type NumZone struct {
	Min, Max float64
}

// CatZone is the zone map of one categorical column over one block.
type CatZone struct {
	MinCode, MaxCode int32
	// Mask has bit (code % 64) set for every code present in the block. A
	// candidate code whose bit is clear provably does not occur.
	Mask uint64
}

// ContainsCode conservatively reports whether code may occur in the block:
// false means provably absent, true means possibly present.
func (z CatZone) ContainsCode(code int32) bool {
	if code < z.MinCode || code > z.MaxCode {
		return false
	}
	return z.Mask&(1<<uint(code%64)) != 0
}

// NumBlocks returns how many zone-mapped blocks the table's rows span.
func (t *Table) NumBlocks() int {
	return (t.rows + BlockSize - 1) / BlockSize
}

// BlockBounds returns the [lo, hi) row range of block b.
func (t *Table) BlockBounds(b int) (lo, hi int) {
	lo = b * BlockSize
	hi = lo + BlockSize
	if hi > t.rows {
		hi = t.rows
	}
	return lo, hi
}

// NumZone returns the zone map of numeric column col over block b.
func (t *Table) NumZone(col, b int) NumZone {
	if t.schema.Col(col).Kind != Numeric {
		panic(ErrTypeMismatch)
	}
	return t.numZones[col][b]
}

// CatZone returns the zone map of categorical column col over block b.
func (t *Table) CatZone(col, b int) CatZone {
	if t.schema.Col(col).Kind != Categorical {
		panic(ErrTypeMismatch)
	}
	return t.catZones[col][b]
}

// observeZoneNum folds value v at row index row into column col's zone maps.
func (t *Table) observeZoneNum(col, row int, v float64) {
	b := row / BlockSize
	zs := t.numZones[col]
	if b == len(zs) {
		t.numZones[col] = append(zs, NumZone{Min: v, Max: v})
		return
	}
	z := &t.numZones[col][b]
	if v < z.Min {
		z.Min = v
	}
	if v > z.Max {
		z.Max = v
	}
}

// observeZoneCat folds code c at row index row into column col's zone maps.
func (t *Table) observeZoneCat(col, row int, c int32) {
	b := row / BlockSize
	zs := t.catZones[col]
	if b == len(zs) {
		t.catZones[col] = append(zs, CatZone{MinCode: c, MaxCode: c, Mask: 1 << uint(c%64)})
		return
	}
	z := &t.catZones[col][b]
	if c < z.MinCode {
		z.MinCode = c
	}
	if c > z.MaxCode {
		z.MaxCode = c
	}
	z.Mask |= 1 << uint(c%64)
}

// extendZones rebuilds zone maps for rows [fromRow, t.rows) from the column
// data — the bulk-maintenance path AppendTable and SelectRows use after
// splicing whole column ranges.
func (t *Table) extendZones(fromRow int) {
	for col := 0; col < t.schema.Len(); col++ {
		if t.schema.Col(col).Kind == Numeric {
			vals := t.numeric[col]
			for r := fromRow; r < len(vals); r++ {
				t.observeZoneNum(col, r, vals[r])
			}
		} else {
			codes := t.codes[col]
			for r := fromRow; r < len(codes); r++ {
				t.observeZoneCat(col, r, codes[r])
			}
		}
	}
}
