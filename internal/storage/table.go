package storage

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Table is an immutable-schema, append-only columnar relation. Numeric
// columns store float64; categorical columns store dictionary codes. Tables
// are the unit the AQP engine samples and scans.
//
// Concurrency contract: appends (AppendRow, AppendTable, AppendByName) are
// serialized internally and may run concurrently with Snapshot, SelectRows,
// Domain and Stats. The per-cell accessors (NumAt, NumericCol, CodesCol, …)
// take no locks: concurrent readers must work against a frozen Snapshot
// view, which shares the column backing arrays but can never observe rows
// or zone maps an in-flight append is writing.
type Table struct {
	name   string
	schema *Schema
	rows   int

	// mu serializes appends against snapshot/domain reads; epoch counts
	// append batches so cached views can detect staleness without locking.
	mu     sync.RWMutex
	epoch  atomic.Uint64
	frozen bool // snapshot views reject mutation

	numeric [][]float64 // per-column values; nil for categorical columns
	codes   [][]int32   // per-column codes; nil for numeric columns
	dicts   []*Dict     // per-column dictionaries; nil for numeric columns

	// Observed (or schema-declared) numeric domains, tracked per table so
	// that sibling tables sharing a Schema do not clobber each other.
	mins, maxs []float64
	domainSet  []bool

	// Per-block zone maps (see block.go): numZones[col] is indexed by block
	// for numeric columns (nil for categorical), catZones[col] likewise for
	// categorical columns.
	numZones [][]NumZone
	catZones [][]CatZone
}

// Dict is a string dictionary for one categorical column. Dictionaries are
// grow-only and internally synchronized: a base relation and the frozen
// snapshots scans run against share one Dict, so lookups may race with a
// concurrent append interning new values. Codes already handed out never
// change meaning.
type Dict struct {
	mu     sync.RWMutex
	byCode []string
	byName map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]int32)}
}

// Code interns a value and returns its code.
func (d *Dict) Code(v string) int32 {
	d.mu.RLock()
	c, ok := d.byName[v]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.byName[v]; ok {
		return c
	}
	c = int32(len(d.byCode))
	d.byCode = append(d.byCode, v)
	d.byName[v] = c
	return c
}

// LookupCode returns the code for v without interning.
func (d *Dict) LookupCode(v string) (int32, bool) {
	d.mu.RLock()
	c, ok := d.byName[v]
	d.mu.RUnlock()
	return c, ok
}

// Value returns the string for a code.
func (d *Dict) Value(c int32) string {
	d.mu.RLock()
	v := d.byCode[c]
	d.mu.RUnlock()
	return v
}

// Size returns the number of distinct values.
func (d *Dict) Size() int {
	d.mu.RLock()
	n := len(d.byCode)
	d.mu.RUnlock()
	return n
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) *Table {
	t := &Table{
		name:      name,
		schema:    schema,
		numeric:   make([][]float64, schema.Len()),
		codes:     make([][]int32, schema.Len()),
		dicts:     make([]*Dict, schema.Len()),
		mins:      make([]float64, schema.Len()),
		maxs:      make([]float64, schema.Len()),
		domainSet: make([]bool, schema.Len()),
		numZones:  make([][]NumZone, schema.Len()),
		catZones:  make([][]CatZone, schema.Len()),
	}
	for i := 0; i < schema.Len(); i++ {
		def := schema.Col(i)
		if def.Kind == Categorical {
			t.dicts[i] = NewDict()
		} else if def.Min < def.Max {
			t.mins[i], t.maxs[i] = def.Min, def.Max
			t.domainSet[i] = true
		}
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Rows returns the row count (the paper's table cardinality |r|).
func (t *Table) Rows() int { return t.rows }

// Value is one cell for AppendRow: exactly one of Num/Str is used,
// according to the column kind.
type Value struct {
	Num float64
	Str string
}

// Num returns a numeric cell value.
func Num(v float64) Value { return Value{Num: v} }

// Str returns a categorical cell value.
func Str(v string) Value { return Value{Str: v} }

// ErrFrozen is returned when mutating a frozen snapshot view.
var ErrFrozen = fmt.Errorf("storage: table snapshot is read-only")

// AppendRow appends one row; vals must be in schema order.
func (t *Table) AppendRow(vals []Value) error {
	if len(vals) != t.schema.Len() {
		return fmt.Errorf("storage: row width %d, schema width %d", len(vals), t.schema.Len())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return ErrFrozen
	}
	defer t.epoch.Add(1)
	for i, v := range vals {
		switch t.schema.Col(i).Kind {
		case Numeric:
			t.numeric[i] = append(t.numeric[i], v.Num)
			t.observe(i, v.Num)
			t.observeZoneNum(i, t.rows, v.Num)
		case Categorical:
			code := t.dicts[i].Code(v.Str)
			t.codes[i] = append(t.codes[i], code)
			t.observeZoneCat(i, t.rows, code)
		}
	}
	t.rows++
	return nil
}

// NumericCol returns the backing slice of a numeric column. Callers must
// not mutate it; exposure avoids copying in the scan-heavy AQP paths.
func (t *Table) NumericCol(i int) []float64 {
	if t.schema.Col(i).Kind != Numeric {
		panic(ErrTypeMismatch)
	}
	return t.numeric[i]
}

// CodesCol returns the backing code slice of a categorical column.
func (t *Table) CodesCol(i int) []int32 {
	if t.schema.Col(i).Kind != Categorical {
		panic(ErrTypeMismatch)
	}
	return t.codes[i]
}

// DictOf returns the dictionary of a categorical column.
func (t *Table) DictOf(i int) *Dict {
	if t.schema.Col(i).Kind != Categorical {
		panic(ErrTypeMismatch)
	}
	return t.dicts[i]
}

// NumAt returns the numeric value at (row, col).
func (t *Table) NumAt(row, col int) float64 { return t.numeric[col][row] }

// StrAt returns the categorical string at (row, col).
func (t *Table) StrAt(row, col int) string {
	return t.dicts[col].Value(t.codes[col][row])
}

// observe widens column i's tracked domain to include v.
func (t *Table) observe(i int, v float64) {
	if !t.domainSet[i] {
		t.mins[i], t.maxs[i] = v, v
		t.domainSet[i] = true
		return
	}
	if v < t.mins[i] {
		t.mins[i] = v
	}
	if v > t.maxs[i] {
		t.maxs[i] = v
	}
}

// Domain returns the [min,max] domain of a numeric column — the declared
// schema domain if one was given, otherwise the observed extent; Verdict
// uses it in place of missing range constraints (§4.1). Safe to call while
// another goroutine appends.
func (t *Table) Domain(col int) (lo, hi float64) {
	if t.schema.Col(col).Kind != Numeric {
		panic(ErrTypeMismatch)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if !t.domainSet[col] {
		return 0, 0
	}
	return t.mins[col], t.maxs[col]
}

// SelectRows materializes a new table containing the given row indices, in
// order. It is how samples and filtered views are built. Safe to call while
// another goroutine appends to t, provided every index precedes the rows
// being appended.
func (t *Table) SelectRows(name string, idx []int) *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := NewTable(name, t.schema)
	for i := range out.numeric {
		if t.schema.Col(i).Kind == Numeric {
			col := make([]float64, 0, len(idx))
			src := t.numeric[i]
			for _, r := range idx {
				col = append(col, src[r])
			}
			out.numeric[i] = col
		} else {
			// Share the dictionary: codes remain valid and equality across
			// the base table and its samples stays cheap.
			out.dicts[i] = t.dicts[i]
			col := make([]int32, 0, len(idx))
			src := t.codes[i]
			for _, r := range idx {
				col = append(col, src[r])
			}
			out.codes[i] = col
		}
	}
	out.rows = len(idx)
	// The sample inherits the base relation's domains: Verdict's
	// range-to-domain substitution must refer to the full relation, not the
	// sample extent.
	copy(out.mins, t.mins)
	copy(out.maxs, t.maxs)
	copy(out.domainSet, t.domainSet)
	out.extendZones(0)
	return out
}

// AppendTable appends all rows of other (same schema object required); it
// implements Appendix D's data-append scenario. The caller must not mutate
// other concurrently.
func (t *Table) AppendTable(other *Table) error {
	if other.schema != t.schema {
		return fmt.Errorf("storage: AppendTable requires the identical schema object")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return ErrFrozen
	}
	defer t.epoch.Add(1)
	for i := 0; i < t.schema.Len(); i++ {
		if t.schema.Col(i).Kind == Numeric {
			t.numeric[i] = append(t.numeric[i], other.numeric[i]...)
		} else {
			// Dictionaries are shared via the schema-mediated convention:
			// both tables were built against the same dict only if the
			// codes agree. Re-encode defensively when dicts differ.
			if other.dicts[i] == t.dicts[i] {
				t.codes[i] = append(t.codes[i], other.codes[i]...)
			} else {
				for _, c := range other.codes[i] {
					t.codes[i] = append(t.codes[i], t.dicts[i].Code(other.dicts[i].Value(c)))
				}
			}
		}
	}
	// Widen numeric domains with the appended values.
	for i := 0; i < t.schema.Len(); i++ {
		if t.schema.Col(i).Kind != Numeric {
			continue
		}
		for _, v := range other.numeric[i] {
			t.observe(i, v)
		}
	}
	oldRows := t.rows
	t.rows += other.rows
	t.extendZones(oldRows)
	return nil
}

// ColumnStats summarizes one numeric column; generators and the UCI-style
// inter-tuple covariance study use it.
type ColumnStats struct {
	Count    int
	Mean     float64
	Variance float64
	Min, Max float64
}

// Stats computes streaming statistics of a numeric column.
func (t *Table) Stats(col int) ColumnStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	vals := t.NumericCol(col)
	st := ColumnStats{Count: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(vals) == 0 {
		return ColumnStats{}
	}
	mean, m2 := 0.0, 0.0
	for i, v := range vals {
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = mean
	st.Variance = m2 / float64(len(vals))
	return st
}
