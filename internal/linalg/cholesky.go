package linalg

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric positive-
// definite matrix A = L·Lᵀ, plus the jitter that had to be added to the
// diagonal to achieve positive-definiteness. Verdict factorizes the past-
// snippet covariance Σ_n once offline (Algorithm 1) and then answers each
// new snippet with two O(n²) triangular solves (Eq. 11–12).
type Cholesky struct {
	n      int
	l      []float64 // row-major lower triangle, full n×n storage
	jitter float64
}

// maxJitterRounds bounds the adaptive-jitter escalation: jitter starts at
// 1e-12 times the largest diagonal entry and grows 10× per round.
const maxJitterRounds = 10

// NewCholesky factorizes a (implicitly symmetric: only the lower triangle
// including the diagonal is read). It returns ErrNotSPD if the matrix stays
// indefinite after the maximum jitter.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, ErrShape
	}
	n := a.Rows()
	scale := a.MaxAbsDiag()
	if scale == 0 {
		scale = 1
	}
	jitter := 0.0
	next := scale * 1e-12
	for round := 0; round <= maxJitterRounds; round++ {
		c := &Cholesky{n: n, l: make([]float64, n*n), jitter: jitter}
		if c.factorize(a) {
			return c, nil
		}
		jitter = next
		next *= 10
	}
	return nil, ErrNotSPD
}

// factorize attempts a standard (unpivoted) Cholesky with the configured
// diagonal jitter; it reports whether every pivot stayed positive.
func (c *Cholesky) factorize(a *Matrix) bool {
	n := c.n
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += c.jitter
			}
			li := c.l[i*n : i*n+j]
			lj := c.l[j*n : j*n+j]
			for k, v := range li {
				sum -= v * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return false
				}
				c.l[i*n+i] = math.Sqrt(sum)
			} else {
				c.l[i*n+j] = sum / c.l[j*n+j]
			}
		}
	}
	return true
}

// Size returns the dimension.
func (c *Cholesky) Size() int { return c.n }

// Jitter reports the diagonal jitter that was applied.
func (c *Cholesky) Jitter() float64 { return c.jitter }

// LAt returns L[i][j] (zero above the diagonal).
func (c *Cholesky) LAt(i, j int) float64 {
	if j > i {
		return 0
	}
	return c.l[i*c.n+j]
}

// SolveInPlace overwrites b with A⁻¹·b using forward and back substitution.
func (c *Cholesky) SolveInPlace(b []float64) error {
	if len(b) != c.n {
		return ErrShape
	}
	n := c.n
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.l[i*n : i*n+i]
		for k, v := range row {
			s -= v * b[k]
		}
		b[i] = s / c.l[i*n+i]
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= c.l[k*n+i] * b[k]
		}
		b[i] = s / c.l[i*n+i]
	}
	return nil
}

// Solve returns A⁻¹·b without modifying b.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	out := make([]float64, len(b))
	copy(out, b)
	if err := c.SolveInPlace(out); err != nil {
		return nil, err
	}
	return out, nil
}

// QuadForm computes bᵀ·A⁻¹·b, the quantity behind both γ² in Eq. 11 and the
// data-fit term of the Eq. 13 log-likelihood. It needs only the forward
// substitution: with L·y = b, bᵀA⁻¹b = yᵀy.
func (c *Cholesky) QuadForm(b []float64) (float64, error) {
	if len(b) != c.n {
		return 0, ErrShape
	}
	n := c.n
	y := make([]float64, n)
	copy(y, b)
	for i := 0; i < n; i++ {
		s := y[i]
		row := c.l[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / c.l[i*n+i]
	}
	return Dot(y, y), nil
}

// BilinearForm computes aᵀ·A⁻¹·b.
func (c *Cholesky) BilinearForm(a, b []float64) (float64, error) {
	x, err := c.Solve(b)
	if err != nil {
		return 0, err
	}
	if len(a) != len(x) {
		return 0, ErrShape
	}
	return Dot(a, x), nil
}

// LogDet returns log|A| = 2·Σ log L[i][i], used by the Eq. 13 likelihood.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i*c.n+i])
	}
	return 2 * s
}

// Extend grows the factorization by one row/column: given the factor of an
// n×n matrix A, it returns the factor of [[A, b],[bᵀ, c]] in O(n²) — the
// incremental synopsis update that keeps Verdict's per-query model
// maintenance within Lemma 2's complexity budget. It returns ErrNotSPD when
// the extended matrix is not positive definite (jitter is applied to the
// new diagonal entry only).
func (c *Cholesky) Extend(b []float64, diag float64) (*Cholesky, error) {
	if len(b) != c.n {
		return nil, ErrShape
	}
	n := c.n
	// l = L⁻¹·b via forward substitution.
	l := make([]float64, n)
	copy(l, b)
	for i := 0; i < n; i++ {
		s := l[i]
		row := c.l[i*n : i*n+i]
		for k, v := range row {
			s -= v * l[k]
		}
		l[i] = s / c.l[i*n+i]
	}
	rem := diag - Dot(l, l)
	jitter := 0.0
	if rem <= 0 {
		jitter = math.Abs(diag)*1e-12 + 1e-300
		for round := 0; round <= maxJitterRounds && rem+jitter <= 0; round++ {
			jitter *= 10
		}
		if rem+jitter <= 0 {
			return nil, ErrNotSPD
		}
		rem += jitter
	}
	out := &Cholesky{n: n + 1, l: make([]float64, (n+1)*(n+1)), jitter: c.jitter + jitter}
	for i := 0; i < n; i++ {
		copy(out.l[i*(n+1):i*(n+1)+i+1], c.l[i*n:i*n+i+1])
	}
	copy(out.l[n*(n+1):n*(n+1)+n], l)
	out.l[n*(n+1)+n] = math.Sqrt(rem)
	return out, nil
}

// Inverse materializes A⁻¹. Algorithm 1 stores Σ⁻¹ in the query synopsis;
// inference itself prefers Solve, but the explicit inverse is exposed for
// the synopsis serialization and for tests.
func (c *Cholesky) Inverse() *Matrix {
	n := c.n
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		if err := c.SolveInPlace(e); err != nil {
			panic(err) // dimensions are consistent by construction
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, e[i])
		}
	}
	inv.Symmetrize()
	return inv
}
