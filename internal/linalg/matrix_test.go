package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At broken")
	}
	m.Add(0, 0, 2)
	if m.At(0, 0) != 3 {
		t.Fatal("Add broken")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("dims broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 3 {
		t.Fatal("Clone aliases data")
	}
}

func TestNewMatrixFromAndRow(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("NewMatrixFrom broken")
	}
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatal("Row broken")
	}
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Fatal("Row must copy")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y, err := m.MulVec([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec=%v", y)
		}
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("shape mismatch not caught")
	}
}

func TestMulAndTranspose(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	ab, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if ab.At(0, 0) != 2 || ab.At(0, 1) != 1 || ab.At(1, 0) != 4 || ab.At(1, 1) != 3 {
		t.Fatalf("Mul wrong: %v", ab)
	}
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Fatal("Transpose wrong")
	}
}

func TestIdentityMul(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		ia, err := Identity(n).Mul(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if ia.At(i, j) != a.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmatrix(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Submatrix(2, 2)
	if s.Rows() != 2 || s.Cols() != 2 || s.At(1, 1) != 5 {
		t.Fatalf("Submatrix wrong: %v", s)
	}
	s.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Submatrix must copy")
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {4, 3}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize wrong: %v", m)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Fatal("Dot")
	}
	if Norm2(a) != 5 {
		t.Fatal("Norm2")
	}
	y := []float64{1, 1}
	AXPY(2, a, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatal("AXPY")
	}
	Scale(0.5, y)
	if y[0] != 3.5 {
		t.Fatal("Scale")
	}
	d := VecSub([]float64{5, 5}, []float64{2, 3})
	if d[0] != 3 || d[1] != 2 {
		t.Fatal("VecSub")
	}
}

// randomSPD builds L·Lᵀ + eps·I for a random lower-triangular L, guaranteeing
// a positive-definite test matrix.
func randomSPD(r *rand.Rand, n int) *Matrix {
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, r.NormFloat64())
		}
		l.Set(i, i, 0.5+r.Float64()*2)
	}
	a, _ := l.Mul(l.Transpose())
	for i := 0; i < n; i++ {
		a.Add(i, i, 1e-6)
	}
	return a
}

func TestCholeskyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := randomSPD(r, n)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		// L·Lᵀ must reconstruct A (within jitter tolerance).
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				s := 0.0
				for k := 0; k <= j; k++ {
					s += c.LAt(i, k) * c.LAt(j, k)
				}
				want := a.At(i, j)
				if i == j {
					want += c.Jitter()
				}
				if math.Abs(s-want) > 1e-8*(1+math.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		a := randomSPD(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b, err := a.MulVec(x)
		if err != nil {
			return false
		}
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		got, err := c.Solve(b)
		if err != nil {
			return false
		}
		return Norm2(VecSub(got, x)) <= 1e-6*(1+Norm2(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyQuadFormMatchesSolve(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 12
	a := randomSPD(r, n)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	qf, err := c.QuadForm(b)
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qf-Dot(b, x)) > 1e-8*(1+math.Abs(qf)) {
		t.Fatalf("QuadForm=%v Dot=%v", qf, Dot(b, x))
	}
	// Positive definiteness: quadratic form of nonzero vector is positive.
	if qf <= 0 {
		t.Fatalf("quad form not positive: %v", qf)
	}
	bl, err := c.BilinearForm(b, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bl-qf) > 1e-8*(1+math.Abs(qf)) {
		t.Fatalf("BilinearForm=%v QuadForm=%v", bl, qf)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// diag(4, 9) has determinant 36.
	a := NewMatrixFrom([][]float64{{4, 0}, {0, 9}})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LogDet(); math.Abs(got-math.Log(36)) > 1e-9 {
		t.Fatalf("LogDet=%v want %v", got, math.Log(36))
	}
}

func TestCholeskyInverse(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 10
	a := randomSPD(r, n)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-6 {
				t.Fatalf("A·A⁻¹ not identity at (%d,%d): %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestCholeskyJitterRecoversNearSingular(t *testing.T) {
	// Rank-deficient matrix: ones(3,3). Jitter must rescue it.
	a := NewMatrixFrom([][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("jitter failed to recover: %v", err)
	}
	if c.Jitter() == 0 {
		t.Fatal("expected nonzero jitter")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 0}, {0, -5}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	b := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := NewCholesky(b); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestCholeskySolveShapeError(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 0}, {0, 2}})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve([]float64{1}); err == nil {
		t.Fatal("shape mismatch not caught")
	}
	if _, err := c.QuadForm([]float64{1, 2, 3}); err == nil {
		t.Fatal("shape mismatch not caught")
	}
}

func TestCholeskyExtendMatchesFullFactorization(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		a := randomSPD(r, n)
		// Factorize the leading (n-1) block, then extend with the last row.
		sub := a.Submatrix(n-1, n-1)
		c0, err := NewCholesky(sub)
		if err != nil {
			return false
		}
		b := make([]float64, n-1)
		for i := range b {
			b[i] = a.At(i, n-1)
		}
		ext, err := c0.Extend(b, a.At(n-1, n-1))
		if err != nil {
			return false
		}
		full, err := NewCholesky(a)
		if err != nil {
			return false
		}
		// Both factors must solve the same systems.
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		s1, err1 := ext.Solve(x)
		s2, err2 := full.Solve(x)
		if err1 != nil || err2 != nil {
			return false
		}
		return Norm2(VecSub(s1, s2)) < 1e-5*(1+Norm2(s2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyExtendShapeAndSPDErrors(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 0}, {0, 4}})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Extend([]float64{1}, 1); err == nil {
		t.Fatal("short vector accepted")
	}
	// Extending with b making the matrix indefinite must fail or jitter:
	// diag far too small relative to b.
	if _, err := c.Extend([]float64{10, 10}, 1); err == nil {
		t.Fatal("indefinite extension accepted")
	}
	// Valid extension succeeds and has size 3.
	ext, err := c.Extend([]float64{1, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Size() != 3 {
		t.Fatalf("size=%d", ext.Size())
	}
}
