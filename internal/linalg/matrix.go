// Package linalg implements the dense linear algebra Verdict's inference
// needs: column-major matrices, Cholesky factorization of symmetric
// positive-definite covariance matrices with adaptive jitter, triangular
// solves, log-determinants (for the Eq. 13 likelihood), and the block
// operations behind the paper's O(n²) inference forms (Eq. 11–12).
//
// The matrices involved are covariance matrices over at most C_g = 2,000
// past snippets, so a straightforward cache-friendly dense implementation is
// the right tool; no sparse or blocked kernels are required.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization fails even after the
// maximum jitter has been applied.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// ErrShape is returned on dimension mismatches.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a row-major slice of slices.
func NewMatrixFrom(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates into element (i,j).
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Submatrix copies rows [0,r) and columns [0,c) into a new matrix — the
// Σ_n "leading block" extraction the paper's block forms use.
func (m *Matrix) Submatrix(r, c int) *Matrix {
	if r > m.rows || c > m.cols {
		panic(ErrShape)
	}
	out := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		copy(out.data[i*c:(i+1)*c], m.data[i*m.cols:i*m.cols+c])
	}
	return out
}

// MulVec computes y = M·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, ErrShape
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// Mul computes the product M·N.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.cols != n.rows {
		return nil, ErrShape
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*n.cols : (i+1)*n.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			nrow := n.data[k*n.cols : (k+1)*n.cols]
			for j, nv := range nrow {
				orow[j] += mv * nv
			}
		}
	}
	return out, nil
}

// Transpose returns Mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Symmetrize replaces M with (M+Mᵀ)/2; covariance assembly uses it to wash
// out floating-point asymmetry before factorizing.
func (m *Matrix) Symmetrize() {
	if m.rows != m.cols {
		panic(ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := 0.5 * (m.data[i*m.cols+j] + m.data[j*m.cols+i])
			m.data[i*m.cols+j] = v
			m.data[j*m.cols+i] = v
		}
	}
}

// MaxAbsDiag returns the largest absolute diagonal entry (used to scale
// jitter).
func (m *Matrix) MaxAbsDiag() float64 {
	max := 0.0
	for i := 0; i < m.rows && i < m.cols; i++ {
		if v := math.Abs(m.data[i*m.cols+i]); v > max {
			max = v
		}
	}
	return max
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Dot is the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies a vector by a scalar in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// VecSub returns a-b as a new vector.
func VecSub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Norm2 is the Euclidean norm.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
