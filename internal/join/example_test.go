package join_test

import (
	"fmt"

	"repro/internal/join"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// ExampleFlatten shows how a foreign-key join query is rewritten onto the
// denormalized relation the AQP engine actually samples (§2.2: Verdict's
// "discussion is based on a denormalized table").
func ExampleFlatten() {
	customers := storage.NewTable("customer", storage.MustSchema([]storage.ColumnDef{
		{Name: "ckey", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "segment", Kind: storage.Categorical, Role: storage.Dimension},
	}))
	dims := []join.Dimension{{Table: customers, FactKey: "ckey", DimKey: "ckey", Prefix: "c_"}}

	stmt, err := sqlparse.Parse(
		`SELECT c.segment, SUM(o.price) FROM orders o JOIN customer c ON o.ckey = c.ckey ` +
			`WHERE c.segment = 'BUILDING' AND o.day < 30 GROUP BY c.segment`)
	if err != nil {
		panic(err)
	}
	flat, err := join.Flatten(stmt, "orders_wide",
		join.PrefixMapping([]string{"orders"}, dims, join.AliasesOf(stmt)))
	if err != nil {
		panic(err)
	}
	fmt.Println(flat)
	// Output:
	// SELECT c_segment, SUM(price) FROM orders_wide WHERE (c_segment = 'BUILDING' AND day < 30) GROUP BY c_segment
}
