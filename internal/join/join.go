// Package join implements the foreign-key star-join substrate of §2.2:
// Verdict "supports foreign-key joins between a fact table and any number
// of dimension tables … For simplicity, our discussion is based on a
// denormalized table". This package produces that denormalized table — a
// fact relation widened with the attributes of its dimension tables — and
// flattens join queries into single-table queries over it, the way Hive
// flattens TPC-H's nested queries for the paper's benchmark runs.
//
// Foreign-key joins do not introduce sampling bias (each fact row joins to
// exactly one dimension row), which is why the AQP engine can sample only
// the denormalized relation.
package join

import (
	"fmt"
	"strconv"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Dimension describes one dimension table and its link to the fact table.
type Dimension struct {
	// Table is the dimension relation.
	Table *storage.Table
	// FactKey is the foreign-key column in the fact table.
	FactKey string
	// DimKey is the (unique) key column in the dimension table.
	DimKey string
	// Prefix is prepended to imported column names; empty keeps original
	// names (collisions error out).
	Prefix string
}

// Denormalize joins the fact table with every dimension along its foreign
// key, producing a single wide relation named name. Fact rows whose key has
// no match error out (foreign keys must resolve, per the star-schema
// contract the paper assumes). Key columns themselves are carried over from
// the fact side only.
func Denormalize(name string, fact *storage.Table, dims []Dimension) (*storage.Table, error) {
	type dimPlan struct {
		d        Dimension
		factCol  int
		keyIsCat bool
		// rowByKey maps the key (string form) to the dimension row.
		rowByKey map[string]int
		// cols lists the dimension columns to import (excluding the key).
		cols []int
	}
	plans := make([]dimPlan, 0, len(dims))
	outCols := make([]storage.ColumnDef, 0, fact.Schema().Len())
	outCols = append(outCols, schemaDefs(fact.Schema())...)
	seen := map[string]bool{}
	for _, c := range outCols {
		seen[c.Name] = true
	}

	for _, d := range dims {
		fcol, ok := fact.Schema().Lookup(d.FactKey)
		if !ok {
			return nil, fmt.Errorf("join: fact key %q not in fact table", d.FactKey)
		}
		dcol, ok := d.Table.Schema().Lookup(d.DimKey)
		if !ok {
			return nil, fmt.Errorf("join: dim key %q not in %s", d.DimKey, d.Table.Name())
		}
		if fact.Schema().Col(fcol).Kind != d.Table.Schema().Col(dcol).Kind {
			return nil, fmt.Errorf("join: key kind mismatch on %s/%s", d.FactKey, d.DimKey)
		}
		p := dimPlan{d: d, factCol: fcol,
			keyIsCat: fact.Schema().Col(fcol).Kind == storage.Categorical,
			rowByKey: make(map[string]int, d.Table.Rows())}
		for row := 0; row < d.Table.Rows(); row++ {
			key := keyString(d.Table, row, dcol)
			if _, dup := p.rowByKey[key]; dup {
				return nil, fmt.Errorf("join: duplicate key %q in %s.%s", key, d.Table.Name(), d.DimKey)
			}
			p.rowByKey[key] = row
		}
		for i := 0; i < d.Table.Schema().Len(); i++ {
			if i == dcol {
				continue
			}
			def := d.Table.Schema().Col(i)
			def.Name = d.Prefix + def.Name
			if seen[def.Name] {
				return nil, fmt.Errorf("join: column name collision %q (use Prefix)", def.Name)
			}
			seen[def.Name] = true
			outCols = append(outCols, def)
			p.cols = append(p.cols, i)
		}
		plans = append(plans, p)
	}

	schema, err := storage.NewSchema(outCols)
	if err != nil {
		return nil, err
	}
	out := storage.NewTable(name, schema)
	row := make([]storage.Value, len(outCols))
	for r := 0; r < fact.Rows(); r++ {
		idx := 0
		for c := 0; c < fact.Schema().Len(); c++ {
			row[idx] = cellValue(fact, r, c)
			idx++
		}
		for _, p := range plans {
			key := keyString(fact, r, p.factCol)
			drow, ok := p.rowByKey[key]
			if !ok {
				return nil, fmt.Errorf("join: fact row %d key %q unmatched in %s", r, key, p.d.Table.Name())
			}
			for _, c := range p.cols {
				row[idx] = cellValue(p.d.Table, drow, c)
				idx++
			}
		}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func schemaDefs(s *storage.Schema) []storage.ColumnDef {
	out := make([]storage.ColumnDef, s.Len())
	for i := range out {
		out[i] = s.Col(i)
	}
	return out
}

func keyString(t *storage.Table, row, col int) string {
	if t.Schema().Col(col).Kind == storage.Categorical {
		return t.StrAt(row, col)
	}
	return strconv.FormatFloat(t.NumAt(row, col), 'g', -1, 64)
}

func cellValue(t *storage.Table, row, col int) storage.Value {
	if t.Schema().Col(col).Kind == storage.Categorical {
		return storage.Str(t.StrAt(row, col))
	}
	return storage.Num(t.NumAt(row, col))
}

// ColumnMapping resolves a qualified column reference (table-or-alias,
// column) to a column name of the denormalized relation.
type ColumnMapping func(table, column string) (string, bool)

// PrefixMapping builds a ColumnMapping for a star denormalized with
// per-dimension prefixes: references qualified by a dimension's name or
// alias resolve to prefix+column; fact references (or unqualified ones)
// pass through.
func PrefixMapping(factNames []string, dims []Dimension, aliases map[string]string) ColumnMapping {
	factSet := map[string]bool{}
	for _, n := range factNames {
		factSet[n] = true
	}
	prefixByName := map[string]string{}
	for _, d := range dims {
		prefixByName[d.Table.Name()] = d.Prefix
	}
	return func(table, column string) (string, bool) {
		if table == "" {
			return column, true
		}
		if t, ok := aliases[table]; ok {
			table = t
		}
		if factSet[table] {
			return column, true
		}
		if p, ok := prefixByName[table]; ok {
			return p + column, true
		}
		return "", false
	}
}

// Flatten rewrites a join query into a single-table query over the
// denormalized relation: qualified column references are remapped, JOIN
// clauses dropped, and the FROM table replaced. It errors when a reference
// cannot be resolved. The input statement is not modified.
func Flatten(stmt *sqlparse.SelectStmt, denormName string, mapping ColumnMapping) (*sqlparse.SelectStmt, error) {
	out := &sqlparse.SelectStmt{
		Table:       denormName,
		Limit:       stmt.Limit,
		HasSubquery: stmt.HasSubquery,
	}
	for _, item := range stmt.Items {
		e, err := rewriteExpr(item.Expr, mapping)
		if err != nil {
			return nil, err
		}
		out.Items = append(out.Items, sqlparse.SelectItem{
			Agg: item.Agg, Distinct: item.Distinct, Expr: e, Alias: item.Alias,
		})
	}
	var err error
	if stmt.Where != nil {
		if out.Where, err = rewritePred(stmt.Where, mapping); err != nil {
			return nil, err
		}
	}
	if stmt.Having != nil {
		if out.Having, err = rewritePred(stmt.Having, mapping); err != nil {
			return nil, err
		}
	}
	for _, g := range stmt.GroupBy {
		name, ok := mapping(g.Table, g.Name)
		if !ok {
			return nil, fmt.Errorf("join: cannot resolve %s", g)
		}
		out.GroupBy = append(out.GroupBy, &sqlparse.ColRef{Name: name})
	}
	for _, g := range stmt.OrderBy {
		name, ok := mapping(g.Table, g.Name)
		if !ok {
			return nil, fmt.Errorf("join: cannot resolve %s", g)
		}
		out.OrderBy = append(out.OrderBy, &sqlparse.ColRef{Name: name})
	}
	return out, nil
}

func rewriteExpr(e sqlparse.Expr, mapping ColumnMapping) (sqlparse.Expr, error) {
	switch v := e.(type) {
	case *sqlparse.ColRef:
		name, ok := mapping(v.Table, v.Name)
		if !ok {
			return nil, fmt.Errorf("join: cannot resolve %s", v)
		}
		return &sqlparse.ColRef{Name: name}, nil
	case *sqlparse.NumberLit, *sqlparse.StringLit, *sqlparse.Star:
		return e, nil
	case *sqlparse.BinaryExpr:
		l, err := rewriteExpr(v.Left, mapping)
		if err != nil {
			return nil, err
		}
		r, err := rewriteExpr(v.Right, mapping)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BinaryExpr{Op: v.Op, Left: l, Right: r}, nil
	case *sqlparse.AggExpr:
		a, err := rewriteExpr(v.Arg, mapping)
		if err != nil {
			return nil, err
		}
		return &sqlparse.AggExpr{Agg: v.Agg, Arg: a}, nil
	default:
		return nil, fmt.Errorf("join: unsupported expression %s", e)
	}
}

func rewritePred(p sqlparse.Predicate, mapping ColumnMapping) (sqlparse.Predicate, error) {
	switch v := p.(type) {
	case *sqlparse.And:
		l, err := rewritePred(v.Left, mapping)
		if err != nil {
			return nil, err
		}
		r, err := rewritePred(v.Right, mapping)
		if err != nil {
			return nil, err
		}
		return &sqlparse.And{Left: l, Right: r}, nil
	case *sqlparse.Or:
		l, err := rewritePred(v.Left, mapping)
		if err != nil {
			return nil, err
		}
		r, err := rewritePred(v.Right, mapping)
		if err != nil {
			return nil, err
		}
		return &sqlparse.Or{Left: l, Right: r}, nil
	case *sqlparse.Not:
		inner, err := rewritePred(v.Inner, mapping)
		if err != nil {
			return nil, err
		}
		return &sqlparse.Not{Inner: inner}, nil
	case *sqlparse.Compare:
		l, err := rewriteExpr(v.Left, mapping)
		if err != nil {
			return nil, err
		}
		r, err := rewriteExpr(v.Right, mapping)
		if err != nil {
			return nil, err
		}
		return &sqlparse.Compare{Op: v.Op, Left: l, Right: r}, nil
	case *sqlparse.Between:
		arg, err := rewriteExpr(v.Arg, mapping)
		if err != nil {
			return nil, err
		}
		lo, err := rewriteExpr(v.Lo, mapping)
		if err != nil {
			return nil, err
		}
		hi, err := rewriteExpr(v.Hi, mapping)
		if err != nil {
			return nil, err
		}
		return &sqlparse.Between{Arg: arg, Lo: lo, Hi: hi}, nil
	case *sqlparse.In:
		arg, err := rewriteExpr(v.Arg, mapping)
		if err != nil {
			return nil, err
		}
		out := &sqlparse.In{Arg: arg, Negate: v.Negate}
		for _, val := range v.Values {
			rv, err := rewriteExpr(val, mapping)
			if err != nil {
				return nil, err
			}
			out.Values = append(out.Values, rv)
		}
		return out, nil
	case *sqlparse.Like:
		arg, err := rewriteExpr(v.Arg, mapping)
		if err != nil {
			return nil, err
		}
		return &sqlparse.Like{Arg: arg, Pattern: v.Pattern, Negate: v.Negate}, nil
	default:
		return nil, fmt.Errorf("join: unsupported predicate %s", p)
	}
}

// AliasesOf extracts the alias→table mapping from a parsed join query.
func AliasesOf(stmt *sqlparse.SelectStmt) map[string]string {
	out := map[string]string{}
	if stmt.Alias != "" {
		out[stmt.Alias] = stmt.Table
	}
	for _, j := range stmt.Joins {
		if j.Alias != "" {
			out[j.Alias] = j.Table
		}
	}
	return out
}
