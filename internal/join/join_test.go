package join

import (
	"math"
	"strings"
	"testing"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// star builds a small fact/dimension fixture: orders fact with customer and
// part dimensions.
func star(t *testing.T) (fact, customers, parts *storage.Table) {
	t.Helper()
	custSchema := storage.MustSchema([]storage.ColumnDef{
		{Name: "ckey", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "segment", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "nation", Kind: storage.Categorical, Role: storage.Dimension},
	})
	customers = storage.NewTable("customer", custSchema)
	segs := []string{"BUILDING", "AUTO"}
	nations := []string{"US", "DE", "JP"}
	for i := 0; i < 30; i++ {
		if err := customers.AppendRow([]storage.Value{
			storage.Str(ckey(i)), storage.Str(segs[i%2]), storage.Str(nations[i%3]),
		}); err != nil {
			t.Fatal(err)
		}
	}

	partSchema := storage.MustSchema([]storage.ColumnDef{
		{Name: "pkey", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "weight", Kind: storage.Numeric, Role: storage.Dimension},
	})
	parts = storage.NewTable("part", partSchema)
	for i := 0; i < 10; i++ {
		if err := parts.AppendRow([]storage.Value{
			storage.Num(float64(i)), storage.Num(float64(i) * 1.5),
		}); err != nil {
			t.Fatal(err)
		}
	}

	factSchema := storage.MustSchema([]storage.ColumnDef{
		{Name: "ckey", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "pkey", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "day", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 100},
		{Name: "price", Kind: storage.Numeric, Role: storage.Measure},
	})
	fact = storage.NewTable("orders", factSchema)
	rng := randx.New(5)
	for i := 0; i < 2000; i++ {
		if err := fact.AppendRow([]storage.Value{
			storage.Str(ckey(rng.Intn(30))),
			storage.Num(float64(rng.Intn(10))),
			storage.Num(rng.Uniform(0, 100)),
			storage.Num(100 + rng.Normal(0, 10)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return fact, customers, parts
}

func ckey(i int) string {
	return "c" + string(rune('A'+i/10)) + string(rune('0'+i%10))
}

func dims(customers, parts *storage.Table) []Dimension {
	return []Dimension{
		{Table: customers, FactKey: "ckey", DimKey: "ckey", Prefix: "c_"},
		{Table: parts, FactKey: "pkey", DimKey: "pkey", Prefix: "p_"},
	}
}

func TestDenormalizeShape(t *testing.T) {
	fact, customers, parts := star(t)
	wide, err := Denormalize("orders_wide", fact, dims(customers, parts))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Rows() != fact.Rows() {
		t.Fatalf("rows=%d want %d", wide.Rows(), fact.Rows())
	}
	// 4 fact cols + 2 customer cols + 1 part col.
	if wide.Schema().Len() != 7 {
		t.Fatalf("cols=%d: %v", wide.Schema().Len(), wide.Schema().Names())
	}
	// Join correctness: every row's c_segment matches its ckey's segment.
	ckCol, _ := wide.Schema().Lookup("ckey")
	segCol, _ := wide.Schema().Lookup("c_segment")
	cdimKey, _ := customers.Schema().Lookup("ckey")
	cdimSeg, _ := customers.Schema().Lookup("segment")
	truth := map[string]string{}
	for r := 0; r < customers.Rows(); r++ {
		truth[customers.StrAt(r, cdimKey)] = customers.StrAt(r, cdimSeg)
	}
	for r := 0; r < wide.Rows(); r++ {
		if wide.StrAt(r, segCol) != truth[wide.StrAt(r, ckCol)] {
			t.Fatalf("row %d: segment mismatch", r)
		}
	}
	// Numeric dimension import: p_weight = pkey * 1.5.
	pkCol, _ := wide.Schema().Lookup("pkey")
	wCol, _ := wide.Schema().Lookup("p_weight")
	for r := 0; r < 100; r++ {
		if math.Abs(wide.NumAt(r, wCol)-wide.NumAt(r, pkCol)*1.5) > 1e-12 {
			t.Fatalf("row %d: weight mismatch", r)
		}
	}
}

func TestDenormalizeErrors(t *testing.T) {
	fact, customers, parts := star(t)
	if _, err := Denormalize("w", fact, []Dimension{{Table: customers, FactKey: "nope", DimKey: "ckey"}}); err == nil {
		t.Fatal("missing fact key accepted")
	}
	if _, err := Denormalize("w", fact, []Dimension{{Table: customers, FactKey: "ckey", DimKey: "nope"}}); err == nil {
		t.Fatal("missing dim key accepted")
	}
	if _, err := Denormalize("w", fact, []Dimension{{Table: parts, FactKey: "ckey", DimKey: "pkey"}}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	// Collision without prefix: customer has a 'ckey'-adjacent name? Use a
	// dimension carrying a column named like a fact column.
	dup := storage.NewTable("dup", storage.MustSchema([]storage.ColumnDef{
		{Name: "ckey", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "day", Kind: storage.Numeric, Role: storage.Dimension},
	}))
	if err := dup.AppendRow([]storage.Value{storage.Str("cA0"), storage.Num(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Denormalize("w", fact, []Dimension{{Table: dup, FactKey: "ckey", DimKey: "ckey"}}); err == nil {
		t.Fatal("column collision accepted")
	}
	// Unmatched foreign key.
	small := storage.NewTable("small", customers.Schema())
	if _, err := Denormalize("w", fact, []Dimension{{Table: small, FactKey: "ckey", DimKey: "ckey", Prefix: "c_"}}); err == nil {
		t.Fatal("unmatched key accepted")
	}
	// Duplicate dimension key.
	dupKey := storage.NewTable("dupkey", storage.MustSchema([]storage.ColumnDef{
		{Name: "pkey", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension},
	}))
	for i := 0; i < 2; i++ {
		if err := dupKey.AppendRow([]storage.Value{storage.Num(1), storage.Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Denormalize("w", fact, []Dimension{{Table: dupKey, FactKey: "pkey", DimKey: "pkey", Prefix: "d_"}}); err == nil {
		t.Fatal("duplicate dim key accepted")
	}
}

func TestFlattenJoinQuery(t *testing.T) {
	fact, customers, parts := star(t)
	ds := dims(customers, parts)
	sql := `SELECT c.segment, AVG(o.price) FROM orders o ` +
		`JOIN customer c ON o.ckey = c.ckey JOIN part p ON o.pkey = p.pkey ` +
		`WHERE c.nation = 'US' AND p.weight < 6 AND o.day BETWEEN 10 AND 60 GROUP BY c.segment`
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	mapping := PrefixMapping([]string{"orders"}, ds, AliasesOf(stmt))
	flat, err := Flatten(stmt, "orders_wide", mapping)
	if err != nil {
		t.Fatal(err)
	}
	got := flat.String()
	want := "SELECT c_segment, AVG(price) FROM orders_wide WHERE ((c_nation = 'US' AND p_weight < 6) AND day BETWEEN 10 AND 60) GROUP BY c_segment"
	if got != want {
		t.Fatalf("flattened:\n got %s\nwant %s", got, want)
	}
	// Flat query must be supported and bindable on the denormalized table.
	if sup := query.Check(flat); !sup.OK {
		t.Fatalf("flattened query unsupported: %v", sup.Reasons)
	}
	wide, err := Denormalize("orders_wide", fact, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := query.BindRegion(flat.Where, wide); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenUnresolvedReference(t *testing.T) {
	_, customers, parts := star(t)
	stmt, err := sqlparse.Parse("SELECT AVG(z.price) FROM orders o JOIN customer c ON o.ckey = c.ckey")
	if err != nil {
		t.Fatal(err)
	}
	mapping := PrefixMapping([]string{"orders"}, dims(customers, parts), AliasesOf(stmt))
	if _, err := Flatten(stmt, "w", mapping); err == nil {
		t.Fatal("unresolved alias accepted")
	}
}

// TestJoinQueryEndToEnd answers a flattened join query through the full
// Verdict pipeline on the denormalized relation.
func TestJoinQueryEndToEnd(t *testing.T) {
	fact, customers, parts := star(t)
	ds := dims(customers, parts)
	wide, err := Denormalize("orders_wide", fact, ds)
	if err != nil {
		t.Fatal(err)
	}
	sample, err := aqp.BuildSample(wide, 0.5, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(aqp.NewEngine(wide, sample, aqp.CachedCost), core.Config{})

	sql := `SELECT AVG(o.price) FROM orders o JOIN customer c ON o.ckey = c.ckey WHERE c.segment = 'BUILDING'`
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(stmt, "orders_wide", PrefixMapping([]string{"orders"}, ds, AliasesOf(stmt)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ExecuteWithExact(flat.String())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Supported || len(res.Rows) != 1 {
		t.Fatalf("result: %+v", res)
	}
	cell := res.Rows[0].Cells[0]
	if math.Abs(cell.Improved.Value-cell.Exact) > 5*cell.Improved.StdErr+1 {
		t.Fatalf("join answer off: improved=%v exact=%v", cell.Improved.Value, cell.Exact)
	}
	if !strings.Contains(flat.String(), "c_segment = 'BUILDING'") {
		t.Fatalf("flattened predicate wrong: %s", flat.String())
	}
}
