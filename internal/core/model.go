package core

import (
	"math"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/mathx"
	"repro/internal/query"
)

// entry is one past snippet in the synopsis: (q_i, θ_i, β_i) plus the
// model-statistic observation derived from it (Appendix F.3).
type entry struct {
	sn     *query.Snippet
	theta  float64 // raw answer θ_i
	beta   float64 // raw expected error β_i
	nugget float64 // finite-population deviation of θ̄_i (ScalarEstimate.PopErr)
	obs    float64 // kernel.Observation(sn, theta): value (AVG) or density (FREQ)
}

// priorVar is the prior variance of θ̄_i: the kernel self-covariance plus
// the per-snippet finite-population nugget (see ScalarEstimate.PopErr).
func (e *entry) priorVar(p kernel.Params) float64 {
	return kernel.Variance(e.sn, p) + e.nugget*e.nugget
}

// model holds the per-aggregate-function state: the synopsis slice (LRU
// order, oldest first), the learned correlation parameters, and the
// factorized covariance matrix Σ_n of past raw answers.
//
// Concurrency discipline: all mutators run under the owning Verdict's write
// lock and are copy-on-write with respect to anything reachable from a
// published inferState — entries are recopied before any in-place edit, the
// Cholesky factor is persistent (record's Extend and rebuild both produce
// fresh factors), and params handed to readers are cloned. Readers never
// touch the model; they work from an inferState captured via publish.
type model struct {
	id      query.FuncID
	cfg     Config
	entries []entry
	byKey   map[string]int // snippet key -> index in entries

	params      kernel.Params
	paramsFixed bool // set by SetParams: learning must not overwrite

	// Trained state: chol factors Σ_n (cov of raw answers: exact-answer
	// covariances plus β² on the diagonal, Eq. 6). nil until trained.
	chol *linalg.Cholesky
	// obsMoments tracks the running mean/variance of observations, used
	// for the prior mean μ and the analytic σ² (Appendix F.3).
	obsMoments mathx.Moments

	// published is the immutable snapshot concurrent Infer calls read;
	// every mutator nils it and publish rebuilds it lazily (preserving the
	// lazy-retrain behaviour record-heavy offline loops rely on).
	published *inferState
}

// inferState is everything one inference reads, frozen at publication. The
// entries slice is never modified in place after publication (mutators copy
// first) and the factor/params are private to the snapshot, so any number
// of goroutines may infer against it without synchronization.
type inferState struct {
	entries []entry
	params  kernel.Params
	chol    *linalg.Cholesky
	mu      float64
}

// publish returns the current immutable inference snapshot, rebuilding the
// factorization first if a mutation invalidated it (Algorithm 1's lazy
// retrain). Caller holds the Verdict write lock.
func (m *model) publish() *inferState {
	if m.published != nil {
		return m.published
	}
	// A failed rebuild (degenerate Σ) publishes with a nil factor: readers
	// fall back to raw answers, matching the single-threaded behaviour.
	_ = m.ensureTrained()
	st := &inferState{
		entries: m.entries,
		params:  m.params.Clone(),
		chol:    m.chol,
		mu:      m.mu(),
	}
	m.published = st
	return st
}

// mutated invalidates the published snapshot after any state change.
func (m *model) mutated() { m.published = nil }

// detachEntries gives the model a private copy of its entries slice so
// in-place edits cannot reach a published inferState. O(n) with n ≤ C_g,
// dwarfed by the O(n²) covariance maintenance every mutation already pays.
func (m *model) detachEntries() {
	m.entries = append([]entry(nil), m.entries...)
}

func newModel(id query.FuncID, cfg Config, params kernel.Params) *model {
	return &model{
		id:     id,
		cfg:    cfg,
		byKey:  make(map[string]int),
		params: params,
	}
}

// mu returns the prior mean statistic (mean of observations; zero when the
// synopsis is empty).
func (m *model) mu() float64 { return m.obsMoments.Mean() }

// sigma2Analytic estimates σ²_g by moment matching: Appendix F.3 equates
// σ²_g with the variance of ν_g, estimated from the spread of past
// answers. Because the kernel's per-snippet self-factor s_i (the product of
// Eq. 10's integrals and Eq. 16's overlap counts at i=j, with σ²=1) differs
// across snippets — and, for FREQ with several categorical dimensions, can
// be far from the naive density-variance scaling — we solve for the σ²
// that makes the model's prior variances match the observed squared
// residuals: σ² = Σ((θ_i−m_i)² − β_i²)⁺ / Σ s_i. The residuals subtract
// the sampling noise β² so σ² reflects the underlying spread only.
func (m *model) sigma2Analytic(p kernel.Params) float64 {
	return sigma2For(m.entries, m.mu(), p)
}

func sigma2For(entries []entry, mu float64, p kernel.Params) float64 {
	if len(entries) == 0 {
		return 1e-12
	}
	unit := p.Clone()
	unit.Sigma2 = 1
	var num, den, scaleAcc float64
	for _, e := range entries {
		r := e.theta - kernel.PriorMean(e.sn, mu)
		r2 := r*r - e.beta*e.beta - e.nugget*e.nugget
		if r2 > 0 {
			num += r2
		}
		den += kernel.Variance(e.sn, unit)
		scaleAcc += math.Abs(e.theta)
	}
	if den <= 0 {
		return 1e-12
	}
	if num <= 0 {
		// Degenerate synopsis (e.g. one exact answer): a small positive
		// prior variance keeps Σ well-conditioned without claiming
		// certainty.
		scale := scaleAcc / float64(len(entries))
		if scale == 0 {
			scale = 1
		}
		return scale * scale * 1e-4 * float64(len(entries)) / den
	}
	return num / den
}

// record inserts or refreshes a snippet answer, maintaining the LRU quota
// C_g. It attempts an O(n²) incremental Cholesky extension; structural
// changes (replacement, eviction) invalidate the factorization instead,
// and rebuild() restores it lazily.
func (m *model) record(sn *query.Snippet, est query.ScalarEstimate) {
	m.mutated()
	key := sn.Key()
	if i, ok := m.byKey[key]; ok {
		// Repeated snippet: copy-on-write before the in-place refresh, then
		// keep the lower-error answer and refresh recency.
		m.detachEntries()
		if est.StdErr < m.entries[i].beta {
			m.entries[i].theta = est.Value
			m.entries[i].beta = est.StdErr
			m.entries[i].nugget = est.PopErr
			m.entries[i].obs = kernel.Observation(sn, est.Value)
		}
		m.touch(i)
		m.chol = nil // ordering/values changed; rebuild lazily
		m.refreshMoments()
		return
	}
	e := entry{sn: sn, theta: est.Value, beta: est.StdErr, nugget: est.PopErr,
		obs: kernel.Observation(sn, est.Value)}
	if len(m.entries) >= m.cfg.SynopsisCap {
		m.evictOldest()
	}
	// Incremental extension keeps per-query maintenance O(n²) (Lemma 2).
	if m.chol != nil {
		b := make([]float64, len(m.entries))
		for i, pe := range m.entries {
			b[i] = kernel.Covariance(pe.sn, sn, m.params)
		}
		diag := e.priorVar(m.params) + e.beta*e.beta
		if ext, err := m.chol.Extend(b, diag); err == nil {
			m.chol = ext
		} else {
			m.chol = nil
		}
	}
	m.byKey[key] = len(m.entries)
	m.entries = append(m.entries, e)
	m.obsMoments.Add(e.obs)
}

// touch moves entry i to the most-recent end. Copy-on-write: the in-place
// shift must not reach entries shared with a published inferState.
func (m *model) touch(i int) {
	m.detachEntries()
	e := m.entries[i]
	m.entries = append(m.entries[:i], m.entries[i+1:]...)
	m.entries = append(m.entries, e)
	m.reindex()
}

func (m *model) evictOldest() {
	old := m.entries[0]
	delete(m.byKey, old.sn.Key())
	m.entries = m.entries[1:]
	m.reindex()
	m.chol = nil
	m.refreshMoments()
}

func (m *model) reindex() {
	for i := range m.entries {
		m.byKey[m.entries[i].sn.Key()] = i
	}
}

func (m *model) refreshMoments() {
	var mm mathx.Moments
	for _, e := range m.entries {
		mm.Add(e.obs)
	}
	m.obsMoments = mm
}

// sigma builds Σ_n — the covariance matrix of past raw answers under the
// current parameters (Eq. 6: exact-answer covariances plus β² diagonal).
func (m *model) sigma() *linalg.Matrix {
	n := len(m.entries)
	s := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			c := kernel.Covariance(m.entries[i].sn, m.entries[j].sn, m.params)
			if i == j {
				e := &m.entries[i]
				c += e.beta*e.beta + e.nugget*e.nugget
			}
			s.Set(i, j, c)
			s.Set(j, i, c)
		}
	}
	return s
}

// rebuild factorizes Σ_n from scratch (Algorithm 1's offline covariance
// precomputation), refreshing the moment-matched σ² first (unless the
// parameters were pinned by SetParams). A synopsis smaller than one snippet
// clears the factor.
func (m *model) rebuild() error {
	if len(m.entries) == 0 {
		m.chol = nil
		return nil
	}
	if !m.paramsFixed {
		m.params.Sigma2 = m.sigma2Analytic(m.params)
	}
	c, err := linalg.NewCholesky(m.sigma())
	if err != nil {
		return err
	}
	m.chol = c
	return nil
}

// ensureTrained rebuilds the factorization if invalidated.
func (m *model) ensureTrained() error {
	if m.chol == nil || m.chol.Size() != len(m.entries) {
		return m.rebuild()
	}
	return nil
}

// footprintBytes approximates the synopsis memory footprint of this model:
// parsed snippets, answers and the factorized covariance (§8.5's
// measurement).
func (m *model) footprintBytes() int {
	n := len(m.entries)
	perEntry := 200 // snippet struct, region maps, key string
	return n*perEntry + n*n*8
}
