package core

import (
	"math"

	"repro/internal/kernel"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
)

// Drift summarizes how one aggregate function's values differ between the
// old relation r and appended tuples r^a (Appendix D: the random variable
// s_k with mean μ_k and variance η²_k).
type Drift struct {
	Mu   float64 // E[s_k]
	Eta2 float64 // Var(s_k)
}

// EstimateDrift estimates (μ_k, η²_k) for one measure function by
// comparing bucketed means of the old and appended relations — the "small
// samples of r and r^a" Appendix D prescribes. Buckets follow the first
// numeric dimension attribute's value (falling back to random assignment
// when there is none), so η² captures how unevenly the appended data
// drifts *across query regions* — the dispersion that makes Lemma 3's
// inflated error bounds valid in Figure 12's experiment.
func EstimateDrift(old, appended *storage.Table, measure func(*storage.Table, int) float64, buckets int, seed int64) Drift {
	if buckets < 2 {
		buckets = 2
	}
	rng := randx.New(seed)
	oldMeans := bucketMeans(old, measure, buckets, rng)
	newMeans := bucketMeans(appended, measure, buckets, rng)
	var diffs []float64
	for i := 0; i < buckets && i < len(oldMeans) && i < len(newMeans); i++ {
		if !math.IsNaN(oldMeans[i]) && !math.IsNaN(newMeans[i]) {
			diffs = append(diffs, newMeans[i]-oldMeans[i])
		}
	}
	if len(diffs) == 0 {
		return Drift{}
	}
	mean := 0.0
	for _, d := range diffs {
		mean += d
	}
	mean /= float64(len(diffs))
	variance := 0.0
	for _, d := range diffs {
		variance += (d - mean) * (d - mean)
	}
	if len(diffs) > 1 {
		variance /= float64(len(diffs) - 1)
	}
	return Drift{Mu: mean, Eta2: variance}
}

func bucketMeans(t *storage.Table, measure func(*storage.Table, int) float64, buckets int, rng *randx.Source) []float64 {
	// Prefer bucketing along the first numeric dimension: the drift that
	// threatens Verdict's bounds is the one that varies with the selection
	// regions queries actually use.
	dimCol, lo, hi := -1, 0.0, 0.0
	for _, col := range t.Schema().DimensionCols() {
		if t.Schema().Col(col).Kind == storage.Numeric {
			l, h := t.Domain(col)
			if h > l {
				dimCol, lo, hi = col, l, h
				break
			}
		}
	}
	sums := make([]float64, buckets)
	counts := make([]int, buckets)
	for row := 0; row < t.Rows(); row++ {
		var b int
		if dimCol >= 0 {
			b = int((t.NumAt(row, dimCol) - lo) / (hi - lo) * float64(buckets))
			if b < 0 {
				b = 0
			}
			if b >= buckets {
				b = buckets - 1
			}
		} else {
			b = rng.Intn(buckets)
		}
		sums[b] += measure(t, row)
		counts[b]++
	}
	out := make([]float64, buckets)
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

// ApplyAppend adjusts every past snippet of one aggregate function for
// newly appended tuples per Lemma 3:
//
//	θ_i  ← θ_i + μ_k·|r^a|/(|r|+|r^a|)
//	β²_i ← β²_i + (|r^a|·η_k/(|r|+|r^a|))²
//
// oldRows and appendedRows are |r| and |r^a|. The covariance factorization
// is invalidated (β changed on the diagonal); the next inference rebuilds.
func (v *Verdict) ApplyAppend(id query.FuncID, drift Drift, oldRows, appendedRows int) {
	sh := v.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if m, ok := sh.models[id]; ok {
		m.applyAppend(drift, oldRows, appendedRows)
	}
}

// applyAppend performs Lemma 3's adjustment on one model. Caller holds the
// owning shard's write lock.
func (m *model) applyAppend(drift Drift, oldRows, appendedRows int) {
	m.mutated()
	m.detachEntries() // copy-on-write: published snapshots keep the old θ, β
	ratio := float64(appendedRows) / float64(oldRows+appendedRows)
	eta := math.Sqrt(math.Max(drift.Eta2, 0))
	for i := range m.entries {
		m.entries[i].theta += drift.Mu * ratio
		b2 := m.entries[i].beta*m.entries[i].beta + (ratio*eta)*(ratio*eta)
		m.entries[i].beta = math.Sqrt(b2)
		m.entries[i].obs = kernel.Observation(m.entries[i].sn, m.entries[i].theta)
	}
	m.refreshMoments()
	m.chol = nil
}

// OnAppend is the convenience driver: it estimates drift for every AVG
// model from the old and appended relations and applies Lemma 3's
// adjustment. FREQ models receive only the cardinality-driven adjustment
// (μ=0) unless the caller supplies explicit drift via ApplyAppend.
func (v *Verdict) OnAppend(old, appended *storage.Table, seed int64) {
	v.OnAppendSampled(old, appended, old.Rows(), appended.Rows(), seed)
}

// OnAppendSampled is OnAppend for callers whose old/appended tables are
// merely samples of r and r^a: drift is estimated from the samples, while
// Lemma 3's cardinality ratio uses the true |r| and |r^a|. The serving
// layer uses the pre-append AQP sample as the sample of r.
//
// Drift estimation and adjustment run in parallel across shards (each
// model's drift is estimated independently from the same sample pair and
// seed, so the result is deterministic and invariant under NumShards).
func (v *Verdict) OnAppendSampled(oldSample, appendedSample *storage.Table, oldRows, appendedRows int, seed int64) {
	ids := v.FuncIDs()
	v.forEachModelParallel(ids, func(_ int, id query.FuncID, m *model) {
		if len(m.entries) == 0 {
			return
		}
		var d Drift
		if id.Kind == query.AvgAgg {
			measure := m.entries[0].sn.Measure
			if measure != nil {
				d = EstimateDrift(oldSample, appendedSample, measure, 20, seed)
			}
		}
		m.applyAppend(d, oldRows, appendedRows)
	})
}
