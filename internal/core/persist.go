package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/kernel"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Persistence: the point of database learning is that the system becomes
// smarter *every time*, which requires the query synopsis and learned
// correlation parameters to survive process restarts. The snapshot format
// is versioned JSON keyed by column *names* (not positions), so a synopsis
// remains loadable after benign schema reordering; snippets are
// reconstructed against the live table (dictionaries re-resolve categorical
// values, measure expressions re-compile from their canonical keys).

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

type snapshotJSON struct {
	Version int    `json:"version"`
	Table   string `json:"table"`
	// Shards records the shard count of the saving process. It is
	// informational: models are keyed by function, the FuncID hash is
	// process-stable, and Load distributes onto the *loading* config's
	// shards — a snapshot saved at 16 shards loads fine at 1, and vice
	// versa. Absent (0) in pre-sharding snapshots.
	Shards int         `json:"shards,omitempty"`
	Models []modelJSON `json:"models"`
}

type modelJSON struct {
	Kind        string      `json:"kind"` // "AVG" | "FREQ"
	MeasureKey  string      `json:"measure_key,omitempty"`
	Sigma2      float64     `json:"sigma2"`
	Ells        []ellJSON   `json:"ells"`
	ParamsFixed bool        `json:"params_fixed"`
	Entries     []entryJSON `json:"entries"`
}

type ellJSON struct {
	Column string  `json:"column"`
	Value  float64 `json:"value"`
}

type entryJSON struct {
	Theta  float64              `json:"theta"`
	Beta   float64              `json:"beta"`
	Nugget float64              `json:"nugget,omitempty"`
	Num    map[string]rangeJSON `json:"num,omitempty"`
	Cat    map[string][]string  `json:"cat,omitempty"`
}

type rangeJSON struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	LoOpen bool    `json:"lo_open,omitempty"`
	HiOpen bool    `json:"hi_open,omitempty"`
}

// Save serializes the synopsis and learned parameters. The Cholesky
// factorizations are not stored; Load rebuilds them (Algorithm 1's offline
// precomputation is cheap relative to reacquiring a query history).
//
// Models are written in global creation order regardless of which shard
// they live on, so the byte output is invariant under NumShards. Shards
// are read-locked one at a time: each model is internally consistent (its
// mutators are atomic under the shard lock), which is the only coherence a
// snapshot needs — models never reference each other.
func (v *Verdict) Save(w io.Writer) error {
	snap := snapshotJSON{Version: snapshotVersion, Table: v.table.Name(), Shards: len(v.shards)}
	schema := v.table.Schema()
	for _, id := range v.FuncIDs() {
		sh := v.shardFor(id)
		sh.mu.RLock()
		m, ok := sh.models[id]
		if !ok {
			sh.mu.RUnlock()
			continue
		}
		mj := modelJSON{
			Kind:        id.Kind.String(),
			MeasureKey:  id.MeasureKey,
			Sigma2:      m.params.Sigma2,
			ParamsFixed: m.paramsFixed,
		}
		cols := make([]int, 0, len(m.params.Ells))
		for col := range m.params.Ells {
			cols = append(cols, col)
		}
		sort.Ints(cols)
		for _, col := range cols {
			mj.Ells = append(mj.Ells, ellJSON{Column: schema.Col(col).Name, Value: m.params.Ells[col]})
		}
		for _, e := range m.entries {
			ej := entryJSON{Theta: e.theta, Beta: e.beta, Nugget: e.nugget}
			num := e.sn.Region.NumConstraints()
			if len(num) > 0 {
				ej.Num = make(map[string]rangeJSON, len(num))
				for col, r := range num {
					ej.Num[schema.Col(col).Name] = rangeJSON{Lo: r.Lo, Hi: r.Hi, LoOpen: r.LoOpen, HiOpen: r.HiOpen}
				}
			}
			cat := e.sn.Region.CatConstraints()
			if len(cat) > 0 {
				ej.Cat = make(map[string][]string, len(cat))
				for col, s := range cat {
					vals := make([]string, 0, len(s.Codes))
					for _, c := range s.Codes {
						vals = append(vals, v.table.DictOf(col).Value(c))
					}
					ej.Cat[schema.Col(col).Name] = vals
				}
			}
			mj.Entries = append(mj.Entries, ej)
		}
		sh.mu.RUnlock()
		snap.Models = append(snap.Models, mj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}

// Load reconstructs a Verdict instance from a snapshot against the given
// (current) base relation, then rebuilds all covariance factorizations.
func Load(r io.Reader, table *storage.Table, cfg Config) (*Verdict, error) {
	var snap snapshotJSON
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.Table != table.Name() {
		return nil, fmt.Errorf("core: snapshot for table %q, loading against %q", snap.Table, table.Name())
	}
	v := New(table, cfg)
	schema := table.Schema()
	for _, mj := range snap.Models {
		var kind query.AggKind
		switch mj.Kind {
		case "AVG":
			kind = query.AvgAgg
		case "FREQ":
			kind = query.FreqAgg
		default:
			return nil, fmt.Errorf("core: unknown aggregate kind %q", mj.Kind)
		}
		id := query.FuncID{Kind: kind, MeasureKey: mj.MeasureKey}

		var measure func(*storage.Table, int) float64
		if kind == query.AvgAgg {
			fn, key, err := recompileMeasure(mj.MeasureKey, table)
			if err != nil {
				return nil, err
			}
			if key != mj.MeasureKey {
				return nil, fmt.Errorf("core: measure key %q recompiled to %q", mj.MeasureKey, key)
			}
			measure = fn
		}

		params := kernel.Params{Sigma2: mj.Sigma2, Ells: make(map[int]float64, len(mj.Ells))}
		for _, e := range mj.Ells {
			col, ok := schema.Lookup(e.Column)
			if !ok {
				return nil, fmt.Errorf("core: snapshot column %q missing from schema", e.Column)
			}
			params.Ells[col] = e.Value
		}
		// The new Verdict is private to this call: shard placement needs no
		// locking yet, only the same hash Record/Infer will use later.
		m := newModel(id, v.cfg, params)
		m.paramsFixed = mj.ParamsFixed
		v.shardFor(id).models[id] = m
		v.order = append(v.order, id)

		for _, ej := range mj.Entries {
			region := query.NewRegion(schema)
			for name, rr := range ej.Num {
				col, ok := schema.Lookup(name)
				if !ok {
					return nil, fmt.Errorf("core: snapshot column %q missing from schema", name)
				}
				region.ConstrainNum(col, query.NumRange{Lo: rr.Lo, Hi: rr.Hi, LoOpen: rr.LoOpen, HiOpen: rr.HiOpen})
			}
			for name, vals := range ej.Cat {
				col, ok := schema.Lookup(name)
				if !ok {
					return nil, fmt.Errorf("core: snapshot column %q missing from schema", name)
				}
				codes := make([]int32, 0, len(vals))
				for _, val := range vals {
					if c, found := table.DictOf(col).LookupCode(val); found {
						codes = append(codes, c)
					}
				}
				sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
				region.ConstrainCat(col, query.CatSet{Codes: codes})
			}
			sn := &query.Snippet{
				Kind:       kind,
				MeasureKey: mj.MeasureKey,
				Measure:    measure,
				Region:     region,
				Table:      table,
			}
			m.record(sn, query.ScalarEstimate{Value: ej.Theta, StdErr: ej.Beta, PopErr: ej.Nugget})
		}
	}
	// Restore factorizations (Algorithm 1's precomputation).
	for _, id := range v.order {
		if err := v.shardFor(id).models[id].rebuild(); err != nil {
			return nil, fmt.Errorf("core: rebuilding %s: %w", id, err)
		}
	}
	return v, nil
}

// recompileMeasure turns a canonical measure key back into an evaluator by
// round-tripping through the SQL parser.
func recompileMeasure(key string, t *storage.Table) (func(*storage.Table, int) float64, string, error) {
	stmt, err := sqlparse.Parse("SELECT AVG(" + key + ") FROM x")
	if err != nil {
		return nil, "", fmt.Errorf("core: measure key %q does not parse: %w", key, err)
	}
	return query.CompileMeasure(stmt.Items[0].Expr, t)
}
