package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/aqp"
	"repro/internal/query"
	"repro/internal/sqlparse"
)

// System wires the full runtime pipeline of Algorithm 2 around a black-box
// AQP engine: parse → type-check → decompose into snippets → obtain raw
// answers → infer improved answers → validate → record into the synopsis →
// recompose user aggregates. Examples and the CLI consume this facade;
// experiments mostly drive the snippet-level APIs directly.
type System struct {
	engine  *aqp.Engine
	verdict *Verdict
	cfg     Config

	// Stats accumulates workload counters for Table 3-style reporting.
	Stats SystemStats
}

// SystemStats counts processed queries by classification.
type SystemStats struct {
	Total       int
	Aggregate   int
	Supported   int
	Improved    int // snippets whose model-based answer passed validation
	Snippets    int
	InferenceNS int64 // cumulative wall-clock inference+record overhead
}

// NewSystem builds a System over an engine with the given configuration.
func NewSystem(engine *aqp.Engine, cfg Config) *System {
	applyScanMode(engine, cfg)
	return &System{
		engine:  engine,
		verdict: New(engine.Base(), cfg),
		cfg:     cfg.withDefaults(),
	}
}

// applyScanMode wires the configured scan implementation into the engine.
func applyScanMode(engine *aqp.Engine, cfg Config) {
	if cfg.RowAtATimeScan {
		engine.SetScanMode(aqp.ScanRowAtATime)
	} else {
		engine.SetScanMode(aqp.ScanVectorized)
	}
}

// NewSystemWithVerdict builds a System whose learning state is restored
// from a synopsis snapshot (see Verdict.Save / Load).
func NewSystemWithVerdict(engine *aqp.Engine, snapshot io.Reader) (*System, error) {
	v, err := Load(snapshot, engine.Base(), Config{})
	if err != nil {
		return nil, err
	}
	return &System{engine: engine, verdict: v, cfg: v.cfg}, nil
}

// Verdict exposes the learning layer (training, parameter control).
func (s *System) Verdict() *Verdict { return s.verdict }

// Engine exposes the underlying AQP engine.
func (s *System) Engine() *aqp.Engine { return s.engine }

// AggregateCell is one user aggregate's answer in a result row.
type AggregateCell struct {
	Agg sqlparse.AggFunc
	// Raw is the AQP engine's answer; Improved is Verdict's.
	Raw      query.ScalarEstimate
	Improved query.ScalarEstimate
	// UsedModel reports whether the model-based answer survived validation.
	UsedModel bool
	// Exact is filled only by ExecuteWithExact (ground-truth evaluation).
	Exact float64
}

// ResultRow is one output row: group values plus aggregate cells.
type ResultRow struct {
	Group []query.GroupValue
	Cells []AggregateCell
}

// Result is a processed query's outcome.
type Result struct {
	SQL       string
	Supported bool
	Reasons   []string
	Rows      []ResultRow
	// SimTime is the simulated AQP latency; Overhead is Verdict's measured
	// wall-clock inference cost (the §8.5 quantity).
	SimTime  time.Duration
	Overhead time.Duration
}

// Execute runs one SQL query through the full pipeline, consuming the
// entire sample (online aggregation run to completion).
func (s *System) Execute(sql string) (*Result, error) {
	return s.execute(sql, 0)
}

// ExecuteTimeBound runs one SQL query under a simulated time budget.
func (s *System) ExecuteTimeBound(sql string, budget time.Duration) (*Result, error) {
	return s.execute(sql, budget)
}

func (s *System) execute(sql string, budget time.Duration) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	s.Stats.Total++
	sup := query.Check(stmt)
	if sup.HasAggregate {
		s.Stats.Aggregate++
	}
	res := &Result{SQL: sql, Supported: sup.OK, Reasons: sup.Reasons}
	if !sup.OK {
		// Unsupported: Verdict bypasses inference and returns raw answers
		// untouched (§2.2); for this engine the raw path requires a
		// supported shape anyway, so unsupported queries yield no rows.
		return res, nil
	}
	table := s.engine.Base()
	if stmt.Table != table.Name() && stmt.Table != "" {
		return nil, fmt.Errorf("core: query targets %q, engine holds %q", stmt.Table, table.Name())
	}
	s.Stats.Supported++

	// Discover the answer set's groups from the sample.
	var groupCols []int
	for _, g := range stmt.GroupBy {
		col, ok := table.Schema().Lookup(g.Name)
		if !ok {
			return nil, fmt.Errorf("core: unknown group column %s", g.Name)
		}
		groupCols = append(groupCols, col)
	}
	baseRegion, err := query.BindRegion(stmt.Where, table)
	if err != nil {
		return nil, err
	}
	groups, err := s.engine.GroupRows(groupCols, baseRegion)
	if err != nil {
		return nil, err
	}

	decs, err := query.Decompose(stmt, table, groups, s.cfg.Nmax)
	if err != nil {
		return nil, err
	}

	// Flatten the snippet list across groups for one shared scan.
	var snips []*query.Snippet
	offsets := make([]int, len(decs))
	for i, d := range decs {
		offsets[i] = len(snips)
		snips = append(snips, d.Snippets...)
	}
	s.Stats.Snippets += len(snips)

	var upd aqp.BatchUpdate
	if budget > 0 {
		upd = s.engine.TimeBound(snips, budget)
	} else {
		upd = s.engine.RunToCompletion(snips)
	}
	res.SimTime = upd.SimTime

	// Inference + synopsis updates (the Verdict overhead §8.5 measures).
	t0 := time.Now()
	improved := make([]query.ScalarEstimate, len(snips))
	usedModel := make([]bool, len(snips))
	for i, sn := range snips {
		raw := aqp.Sanitize(upd.Estimates[i])
		inf := s.verdict.Infer(sn, raw)
		improved[i] = query.ScalarEstimate{Value: inf.Answer, StdErr: inf.Err}
		usedModel[i] = inf.UsedModel
		if inf.UsedModel {
			s.Stats.Improved++
		}
		if upd.Valid[i] {
			s.verdict.Record(sn, raw)
		}
	}
	overhead := time.Since(t0)
	res.Overhead = overhead
	s.Stats.InferenceNS += overhead.Nanoseconds()

	// Recompose user aggregates per group row.
	for i, d := range decs {
		row := ResultRow{Group: d.Group}
		for _, ua := range d.Aggregates {
			cell := AggregateCell{Agg: ua.Agg}
			rawAvg, rawFreq := pick(upd.Estimates, offsets[i], ua)
			impAvg, impFreq := pick(improved, offsets[i], ua)
			cell.Raw, err = query.ComposeAggregate(ua.Agg, aqp.Sanitize(rawAvg), aqp.Sanitize(rawFreq), table.Rows())
			if err != nil {
				return nil, err
			}
			cell.Improved, err = query.ComposeAggregate(ua.Agg, impAvg, impFreq, table.Rows())
			if err != nil {
				return nil, err
			}
			cell.UsedModel = cellUsedModel(usedModel, offsets[i], ua)
			row.Cells = append(row.Cells, cell)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ExecuteWithExact runs Execute and fills each cell's Exact field from the
// base relation — the oracle experiments compare against.
func (s *System) ExecuteWithExact(sql string) (*Result, error) {
	res, err := s.Execute(sql)
	if err != nil || !res.Supported {
		return res, err
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	table := s.engine.Base()
	for ri := range res.Rows {
		groups := [][]query.GroupValue{res.Rows[ri].Group}
		decs, err := query.Decompose(stmt, table, groups, s.cfg.Nmax)
		if err != nil {
			return nil, err
		}
		d := decs[0]
		exact := make([]query.ScalarEstimate, len(d.Snippets))
		for i, sn := range d.Snippets {
			exact[i] = query.ScalarEstimate{Value: s.engine.Exact(sn)}
		}
		for ci, ua := range d.Aggregates {
			av, fr := pick(exact, 0, ua)
			cell, err := query.ComposeAggregate(ua.Agg, av, fr, table.Rows())
			if err != nil {
				return nil, err
			}
			res.Rows[ri].Cells[ci].Exact = cell.Value
		}
	}
	return res, nil
}

func pick(ests []query.ScalarEstimate, off int, ua query.UserAggregate) (avg, freq query.ScalarEstimate) {
	if ua.Avg >= 0 {
		avg = ests[off+ua.Avg]
	}
	if ua.Freq >= 0 {
		freq = ests[off+ua.Freq]
	}
	return avg, freq
}

func cellUsedModel(used []bool, off int, ua query.UserAggregate) bool {
	ok := false
	if ua.Avg >= 0 {
		ok = used[off+ua.Avg]
	}
	if ua.Freq >= 0 {
		ok = ok || used[off+ua.Freq]
	}
	return ok
}
