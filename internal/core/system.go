package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/aqp"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// System wires the full runtime pipeline of Algorithm 2 around a black-box
// AQP engine: parse → type-check → decompose into snippets → obtain raw
// answers → infer improved answers → validate → record into the synopsis →
// recompose user aggregates. Examples and the CLI consume this facade;
// experiments mostly drive the snippet-level APIs directly.
//
// System is safe for concurrent use — it is the unit the serving layer
// (internal/server) shares across sessions. Each query pins one immutable
// engine view for its whole execution (snapshot isolation against streaming
// appends), inference runs against Verdict's published model snapshots, and
// the workload counters are mutex-guarded so /stats can be read live.
type System struct {
	engine *aqp.Engine
	cfg    Config

	vmu     sync.RWMutex // guards the verdict pointer (swapped by LoadSynopsis)
	verdict *Verdict

	statsMu sync.Mutex
	// Stats accumulates workload counters for Table 3-style reporting.
	// Concurrent readers must use StatsSnapshot; direct access remains for
	// single-threaded callers.
	Stats SystemStats

	appendMu    sync.Mutex // serializes Append/RebuildSample end-to-end
	appendSeed  int64
	rebuildSeed int64

	// standing holds the continuous-query state: the notify hub, the
	// deduplicated standing plans and their carried scans (see standing.go).
	// Lock order is appendMu → standing.mu → engine/verdict internals.
	standing standingState
}

// SystemStats counts processed queries by classification.
type SystemStats struct {
	Total       int
	Aggregate   int
	Supported   int
	Improved    int // snippets whose model-based answer passed validation
	Snippets    int
	Appends     int   // streaming append batches applied
	AppendRows  int   // rows landed by streaming appends
	Rebuilds    int   // sample rebuild epochs (RebuildSample calls)
	Progressive int   // queries served through ExecuteProgressive
	Resumed     int   // cursor resumptions served through ExecuteProgressiveFrom
	Increments  int   // progressive increments emitted across all streams
	InferenceNS int64 // cumulative wall-clock inference+record overhead

	// Continuous-query (standing subscription) counters. NotifyScans counts
	// incremental sample passes: one per unique plan per notify batch, plus
	// one full fold when a plan is first created or must rebind after a
	// generation swap — NOT one per subscriber, which is the shared-scan
	// dedup the tests assert. NotifyCoalesced counts pushes that overwrote a
	// stalled subscriber's queued update instead of growing its queue.
	Subscribes      int // Subscribe calls accepted
	NotifyBatches   int // append/rebuild/train events fanned out to standing plans
	NotifyScans     int // incremental (or rebinding) scans run for standing plans
	NotifyPushes    int // updates pushed to subscribers (threshold passed)
	NotifyCoalesced int // pushes coalesced into a full subscriber queue
	NotifyDebounced int // pushes suppressed by a subscriber's min push interval
}

// NewSystem builds a System over an engine with the given configuration.
func NewSystem(engine *aqp.Engine, cfg Config) *System {
	applyEngineConfig(engine, cfg)
	return &System{
		engine:  engine,
		verdict: New(engine.Base(), cfg),
		cfg:     cfg.withDefaults(),
	}
}

// applyEngineConfig wires the configured scan implementation and replay
// retention bound into the engine.
func applyEngineConfig(engine *aqp.Engine, cfg Config) {
	switch {
	case cfg.RowAtATimeScan:
		engine.SetScanMode(aqp.ScanRowAtATime)
	case cfg.PerSnippetGroupScan:
		engine.SetScanMode(aqp.ScanVectorizedPerSnippet)
	default:
		engine.SetScanMode(aqp.ScanVectorized)
	}
	engine.SetMaxRetainedGens(cfg.withDefaults().MaxRetainedGens)
	engine.SetStageTimer(cfg.Stages)
	if cfg.NumPartitions > 0 {
		col := -1
		if cfg.StratumColumn != "" {
			c, ok := engine.Base().Schema().Lookup(cfg.StratumColumn)
			if !ok {
				// Unknown column: leave the flat layout rather than guessing.
				// The serving layer validates the flag at boot and fails fast;
				// library callers who pass a bad name get the K=1 behavior,
				// which is answer-identical anyway.
				return
			}
			col = c
		}
		if err := engine.SetSampleLayout(aqp.RebuildOptions{
			ClusterColumn: -1,
			Partitions:    cfg.NumPartitions,
			StratumColumn: col,
		}); err != nil {
			// Categorical stratum column and the like: same fail-soft as above.
			return
		}
	}
}

// observeStage reports one pipeline-stage duration to the configured timer;
// with no timer wired (the default) the call sites reduce to one branch.
func (s *System) observeStage(name, mode string, grouped bool, start time.Time) {
	s.cfg.Stages.ObserveStage(obs.Stage{Name: name, Mode: mode, Grouped: grouped}, time.Since(start))
}

// NewSystemWithVerdict builds a System whose learning state is restored
// from a synopsis snapshot (see Verdict.Save / Load).
func NewSystemWithVerdict(engine *aqp.Engine, snapshot io.Reader) (*System, error) {
	v, err := Load(snapshot, engine.Base(), Config{})
	if err != nil {
		return nil, err
	}
	return &System{engine: engine, verdict: v, cfg: v.cfg}, nil
}

// Verdict exposes the learning layer (training, parameter control).
func (s *System) Verdict() *Verdict {
	s.vmu.RLock()
	defer s.vmu.RUnlock()
	return s.verdict
}

// LoadSynopsis restores the learning state from a snapshot, atomically
// swapping the live Verdict; in-flight queries finish against the old one.
func (s *System) LoadSynopsis(r io.Reader) error {
	v, err := Load(r, s.engine.Base(), s.cfg)
	if err != nil {
		return err
	}
	s.vmu.Lock()
	s.verdict = v
	s.vmu.Unlock()
	return nil
}

// Engine exposes the underlying AQP engine.
func (s *System) Engine() *aqp.Engine { return s.engine }

// StatsSnapshot returns a consistent copy of the workload counters; the
// serving layer's /stats endpoint reads it while queries are in flight.
func (s *System) StatsSnapshot() SystemStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.Stats
}

func (s *System) bumpStats(f func(*SystemStats)) {
	s.statsMu.Lock()
	f(&s.Stats)
	s.statsMu.Unlock()
}

// Append lands a batch of new rows into the served relation: the engine
// appends and re-samples under snapshot isolation (scans in flight keep
// their stable prefix), then the synopsis is adjusted for drift per
// Appendix D / Lemma 3 — using the pre-append sample as the "small sample
// of r" and the batch itself as the sample of r^a. Returns how many batch
// rows entered the AQP sample.
func (s *System) Append(batch *storage.Table) (sampled int, err error) {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	oldView := s.engine.Acquire()
	s.appendSeed++
	seed := s.appendSeed
	sampled, err = s.engine.Append(batch, seed)
	if err != nil {
		return 0, err
	}
	// Drift is estimated from the pre-append sample (the "small sample of
	// r"); Lemma 3's ratio uses the true relation cardinalities.
	s.Verdict().OnAppendSampled(oldView.Sample.DriftSource(), batch, oldView.BaseRows, batch.Rows(), seed)
	s.bumpStats(func(st *SystemStats) {
		st.Appends++
		st.AppendRows += batch.Rows()
	})
	// Standing subscriptions see the append after the drift adjustment has
	// published, so a pushed update and its later replay infer against the
	// same model states.
	s.notifyStanding(PushReasonAppend)
	return sampled, nil
}

// Now reads the system clock — time.Now unless Config.Now injected a fake
// one. The serving layer keys its quiet-period and debounce decisions off
// this, so one injected clock drives every time-gated policy in a test.
func (s *System) Now() time.Time { return s.cfg.Now() }

// Train re-fits every model in the synopsis (Verdict.Train) and then
// notifies standing subscriptions: training republishes model states, so
// every standing plan's estimate may have moved. Prefer this over
// Verdict().Train() when subscriptions may be live.
func (s *System) Train() error {
	if err := s.Verdict().Train(); err != nil {
		return err
	}
	s.notifyStanding(PushReasonTrain)
	return nil
}

// SaveSynopsis serializes the synopsis while holding the append lock, so
// the snapshot can never interleave with an in-flight Append's per-shard
// Lemma 3 drift adjustments (some models adjusted, others not). The
// serving layer's /save uses this; Verdict.Save alone is only as coherent
// as each individual model.
func (s *System) SaveSynopsis(w io.Writer) error {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	return s.Verdict().Save(w)
}

// RebuildSample re-lays-out the AQP sample under the engine's current
// default layout (see aqp.Engine.RebuildSample and Layout), undoing the
// tail-pile-up of streamed appends. It serializes with Append; queries in
// flight keep their pinned generation and replay via ViewAtGen. The
// synopsis needs no adjustment — the sample's content is unchanged, only
// its order. Returns the new sample generation and its row count. The
// engine's standing layout was validated at boot, so this cannot fail.
func (s *System) RebuildSample() (gen uint64, sampleRows int) {
	gen, sampleRows, err := s.RebuildSampleOpts(s.engine.Layout())
	if err != nil {
		// Layout() returned an option set the engine already accepted once;
		// re-validation failing means the schema changed under us, which the
		// storage layer forbids.
		panic(err)
	}
	return gen, sampleRows
}

// RebuildSampleOpts rebuilds the sample under an explicit layout — the
// serving layer's /rebuild uses it to honor per-request cluster/stratum
// column overrides. Invalid layouts (aqp.ErrBadLayout) are rejected before
// any state moves: no generation swap, no Rebuilds bump, no standing
// notification.
func (s *System) RebuildSampleOpts(opts aqp.RebuildOptions) (gen uint64, sampleRows int, err error) {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	s.rebuildSeed++
	gen, err = s.engine.RebuildSample(8_000_000+s.rebuildSeed, opts)
	if err != nil {
		s.rebuildSeed--
		return 0, 0, err
	}
	s.bumpStats(func(st *SystemStats) { st.Rebuilds++ })
	// The generation swap invalidates every carried standing fold; the
	// notify pass re-pins each plan on the new generation and pays one full
	// re-fold per plan (still one scan per plan, not per subscriber).
	s.notifyStanding(PushReasonRebuild)
	return gen, s.engine.Acquire().SampleRows, nil
}

// AggregateCell is one user aggregate's answer in a result row.
type AggregateCell struct {
	Agg sqlparse.AggFunc
	// Raw is the AQP engine's answer; Improved is Verdict's.
	Raw      query.ScalarEstimate
	Improved query.ScalarEstimate
	// UsedModel reports whether the model-based answer survived validation.
	UsedModel bool
	// Exact is filled only by ExecuteWithExact (ground-truth evaluation).
	Exact float64
}

// ResultRow is one output row: group values plus aggregate cells.
type ResultRow struct {
	Group []query.GroupValue
	Cells []AggregateCell
}

// Result is a processed query's outcome.
type Result struct {
	SQL       string
	Supported bool
	Reasons   []string
	Rows      []ResultRow
	// SimTime is the simulated AQP latency; Overhead is Verdict's measured
	// wall-clock inference cost (the §8.5 quantity).
	SimTime  time.Duration
	Overhead time.Duration
	// Epoch identifies the engine view that served this query (0 for replay
	// views); SampleGen is the sample generation and BaseRows/SampleRows
	// pin the snapshot prefix, so
	// ExecuteView(engine.ViewAtGen(SampleGen, BaseRows, SampleRows), SQL)
	// replays the identical scan even after further appends and sample
	// rebuilds.
	Epoch      uint64
	SampleGen  uint64
	BaseRows   int
	SampleRows int
	// GroupsTruncated reports that the query's answer set exceeded the
	// configured Nmax group cap (§2.3) and the tail groups were dropped from
	// Rows — surfaced instead of silently truncating.
	GroupsTruncated bool
}

// Execute runs one SQL query through the full pipeline, consuming the
// entire sample (online aggregation run to completion).
func (s *System) Execute(sql string) (*Result, error) {
	return s.execute(s.engine.Acquire(), sql, 0, true)
}

// ExecuteTimeBound runs one SQL query under a simulated time budget.
func (s *System) ExecuteTimeBound(sql string, budget time.Duration) (*Result, error) {
	return s.execute(s.engine.Acquire(), sql, budget, true)
}

// ExecuteView runs one SQL query against an explicit engine view — the
// serial-replay entry point concurrency tests use to audit answers served
// under streaming appends. Replays are side-effect-free: nothing is
// recorded into the synopsis and no workload counters move, so auditing a
// system does not change it.
func (s *System) ExecuteView(view *aqp.View, sql string) (*Result, error) {
	return s.execute(view, sql, 0, false)
}

// queryPlan is the parsed, checked, decomposed form of one SQL query
// against a pinned view — everything evaluation needs, independent of how
// the scan is driven (one-shot, time-bound or progressive increments).
type queryPlan struct {
	view *aqp.View
	stmt *sqlparse.SelectStmt
	decs []*query.Decomposition
	// snips flattens the snippet list across groups for one shared scan;
	// offsets[i] is group i's first snippet index within it.
	snips   []*query.Snippet
	offsets []int
	// truncated records that group discovery found more than Nmax groups.
	truncated bool
	// spec, when non-nil, defers group discovery into the scan itself: the
	// plan has no decompositions yet, and execute materializes them from the
	// discovery scan's result (View.GroupedRunToCompletion).
	spec *query.GroupedSpec
}

// nmax returns the configured group cap, defaulted.
func (s *System) nmax() int {
	if s.cfg.Nmax > 0 {
		return s.cfg.Nmax
	}
	return DefaultNmax
}

// materialize fills a deferred grouped plan's decompositions from the
// discovery scan's group list, so inference and recomposition run on the
// identical per-snippet structures the legacy path builds.
func (pl *queryPlan) materialize(gr *aqp.GroupedResult, nmax int) error {
	decs, err := query.Decompose(pl.stmt, pl.view.Base, gr.Groups, nmax)
	if err != nil {
		return err
	}
	pl.decs = decs
	pl.offsets = make([]int, len(decs))
	for i, d := range decs {
		pl.offsets[i] = len(pl.snips)
		pl.snips = append(pl.snips, d.Snippets...)
	}
	pl.truncated = gr.Truncated
	return nil
}

// plan parses, checks and decomposes sql against the view, bumping the
// workload counters when record is set. On success the returned Result is
// the pre-filled header (provenance, support verdict); a nil plan with a
// nil error means the query is unsupported and the Result is terminal.
// oneShot marks a run-to-completion execution: a grouped query then defers
// group discovery into the aggregation scan itself (queryPlan.spec) instead
// of paying a separate GroupRows pass, when the statement shape and scan
// mode allow it. mode labels stage-latency observations (obs.ModeOneShot
// or obs.ModeProgressive); stages are observed only when record is set, so
// replays and resumes never re-count a query they didn't plan.
func (s *System) plan(view *aqp.View, sql, mode string, record, oneShot bool) (*queryPlan, *Result, error) {
	timed := record && s.cfg.Stages != nil
	var tParse time.Time
	if timed {
		tParse = time.Now()
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sup := query.Check(stmt)
	if timed {
		s.observeStage(obs.StageParse, mode, len(stmt.GroupBy) > 0, tParse)
	}
	if record {
		s.bumpStats(func(st *SystemStats) {
			st.Total++
			if sup.HasAggregate {
				st.Aggregate++
			}
		})
	}
	res := &Result{
		SQL: sql, Supported: sup.OK, Reasons: sup.Reasons,
		Epoch: view.Epoch, SampleGen: view.SampleGen,
		BaseRows: view.BaseRows, SampleRows: view.SampleRows,
	}
	if !sup.OK {
		// Unsupported: Verdict bypasses inference and returns raw answers
		// untouched (§2.2); for this engine the raw path requires a
		// supported shape anyway, so unsupported queries yield no rows.
		return nil, res, nil
	}
	// The view's frozen base table is the query's whole world: snippets,
	// domains and cardinalities all resolve against the same stable prefix.
	table := view.Base
	if stmt.Table != table.Name() && stmt.Table != "" {
		return nil, nil, fmt.Errorf("core: query targets %q, engine holds %q", stmt.Table, table.Name())
	}
	if record {
		s.bumpStats(func(st *SystemStats) { st.Supported++ })
	}

	// The prune stage is everything that decides what to scan: group-column
	// resolution, region binding, group discovery and decomposition (or, on
	// the deferred path, building the grouped spec the scan discovers with).
	var tPrune time.Time
	if timed {
		tPrune = time.Now()
	}

	// Discover the answer set's groups from the sample.
	var groupCols []int
	for _, g := range stmt.GroupBy {
		col, ok := table.Schema().Lookup(g.Name)
		if !ok {
			return nil, nil, fmt.Errorf("core: unknown group column %s", g.Name)
		}
		groupCols = append(groupCols, col)
	}
	// One-shot grouped executions fold group discovery into the aggregation
	// scan: no GroupRows pass, no decomposition until the scan reports the
	// groups it found. Falls through to the legacy plan whenever the shape is
	// outside the foldable form (numeric group columns, decompose errors —
	// re-raised with context below) or the scan mode is an ablation.
	if oneShot && len(groupCols) > 0 && view.Mode() == aqp.ScanVectorized {
		if spec := query.GroupedSpecOf(stmt, table, groupCols); spec != nil {
			if timed {
				s.observeStage(obs.StagePrune, mode, true, tPrune)
			}
			return &queryPlan{view: view, stmt: stmt, spec: spec}, res, nil
		}
	}

	baseRegion, err := query.BindRegion(stmt.Where, table)
	if err != nil {
		return nil, nil, err
	}
	groups, err := view.GroupRows(groupCols, baseRegion)
	if err != nil {
		return nil, nil, err
	}

	decs, err := query.Decompose(stmt, table, groups, s.cfg.Nmax)
	if err != nil {
		return nil, nil, err
	}
	var snips []*query.Snippet
	offsets := make([]int, len(decs))
	for i, d := range decs {
		offsets[i] = len(snips)
		snips = append(snips, d.Snippets...)
	}
	if record {
		s.bumpStats(func(st *SystemStats) { st.Snippets += len(snips) })
	}
	if timed {
		s.observeStage(obs.StagePrune, mode, len(groupCols) > 0, tPrune)
	}
	pl := &queryPlan{view: view, stmt: stmt, decs: decs, snips: snips, offsets: offsets}
	pl.truncated = len(groups) > s.nmax()
	return pl, res, nil
}

// composeRows recomposes user aggregates per group row from per-snippet raw
// and improved estimates.
func composeRows(pl *queryPlan, raw, improved []query.ScalarEstimate, usedModel []bool) ([]ResultRow, error) {
	tableRows := pl.view.Base.Rows()
	var out []ResultRow
	for i, d := range pl.decs {
		row := ResultRow{Group: d.Group}
		for _, ua := range d.Aggregates {
			cell := AggregateCell{Agg: ua.Agg}
			rawAvg, rawFreq := pick(raw, pl.offsets[i], ua)
			impAvg, impFreq := pick(improved, pl.offsets[i], ua)
			var err error
			cell.Raw, err = query.ComposeAggregate(ua.Agg, aqp.Sanitize(rawAvg), aqp.Sanitize(rawFreq), tableRows)
			if err != nil {
				return nil, err
			}
			cell.Improved, err = query.ComposeAggregate(ua.Agg, impAvg, impFreq, tableRows)
			if err != nil {
				return nil, err
			}
			cell.UsedModel = cellUsedModel(usedModel, pl.offsets[i], ua)
			row.Cells = append(row.Cells, cell)
		}
		out = append(out, row)
	}
	return out, nil
}

func (s *System) execute(view *aqp.View, sql string, budget time.Duration, record bool) (*Result, error) {
	verdict := s.Verdict()
	pl, res, err := s.plan(view, sql, obs.ModeOneShot, record, budget == 0)
	if err != nil || pl == nil {
		return res, err
	}

	var upd aqp.BatchUpdate
	switch {
	case pl.spec != nil:
		// One-pass grouped execution: the scan discovered the groups and
		// produced their estimates; materialize the matching decompositions
		// so inference and recomposition proceed unchanged.
		gr := view.GroupedRunToCompletion(pl.spec, s.nmax())
		if err := pl.materialize(gr, s.nmax()); err != nil {
			return nil, err
		}
		if record {
			s.bumpStats(func(st *SystemStats) { st.Snippets += len(pl.snips) })
		}
		upd = gr.Update
	case budget > 0:
		upd = view.TimeBound(pl.snips, budget)
	default:
		upd = view.RunToCompletion(pl.snips)
	}
	res.SimTime = upd.SimTime
	res.GroupsTruncated = pl.truncated

	// Inference + synopsis updates (the Verdict overhead §8.5 measures).
	// Infer and Record interleave deliberately: within one query, later
	// snippets see the synopsis grown by earlier ones — progressive streams
	// instead pin one InferSnapshot so their error bounds evolve coherently.
	t0 := time.Now()
	improved := make([]query.ScalarEstimate, len(pl.snips))
	usedModel := make([]bool, len(pl.snips))
	improvedCount := 0
	for i, sn := range pl.snips {
		raw := aqp.Sanitize(upd.Estimates[i])
		inf := verdict.Infer(sn, raw)
		improved[i] = query.ScalarEstimate{Value: inf.Answer, StdErr: inf.Err}
		usedModel[i] = inf.UsedModel
		if inf.UsedModel {
			improvedCount++
		}
		if record && upd.Valid[i] {
			verdict.Record(sn, raw)
		}
	}
	overhead := time.Since(t0)
	res.Overhead = overhead
	if record && s.cfg.Stages != nil {
		s.observeStage(obs.StageInfer, obs.ModeOneShot, len(pl.stmt.GroupBy) > 0, t0)
	}
	if record {
		s.bumpStats(func(st *SystemStats) {
			st.Improved += improvedCount
			st.InferenceNS += overhead.Nanoseconds()
		})
	}

	res.Rows, err = composeRows(pl, upd.Estimates, improved, usedModel)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ExecuteWithExact runs Execute and fills each cell's Exact field from the
// base relation — the oracle experiments compare against. The exact scan
// runs on the same pinned view as the approximate one.
func (s *System) ExecuteWithExact(sql string) (*Result, error) {
	view := s.engine.Acquire()
	res, err := s.execute(view, sql, 0, true)
	if err != nil || !res.Supported {
		return res, err
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	table := view.Base
	for ri := range res.Rows {
		groups := [][]query.GroupValue{res.Rows[ri].Group}
		decs, err := query.Decompose(stmt, table, groups, s.cfg.Nmax)
		if err != nil {
			return nil, err
		}
		d := decs[0]
		exact := make([]query.ScalarEstimate, len(d.Snippets))
		for i, sn := range d.Snippets {
			exact[i] = query.ScalarEstimate{Value: view.Exact(sn)}
		}
		for ci, ua := range d.Aggregates {
			av, fr := pick(exact, 0, ua)
			cell, err := query.ComposeAggregate(ua.Agg, av, fr, table.Rows())
			if err != nil {
				return nil, err
			}
			res.Rows[ri].Cells[ci].Exact = cell.Value
		}
	}
	return res, nil
}

func pick(ests []query.ScalarEstimate, off int, ua query.UserAggregate) (avg, freq query.ScalarEstimate) {
	if ua.Avg >= 0 {
		avg = ests[off+ua.Avg]
	}
	if ua.Freq >= 0 {
		freq = ests[off+ua.Freq]
	}
	return avg, freq
}

func cellUsedModel(used []bool, off int, ua query.UserAggregate) bool {
	ok := false
	if ua.Avg >= 0 {
		ok = used[off+ua.Avg]
	}
	if ua.Freq >= 0 {
		ok = ok || used[off+ua.Freq]
	}
	return ok
}
