package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
)

// multiDimTable builds a table with numeric + categorical dimensions and a
// derived-measure-friendly schema for persistence tests.
func multiDimTable(t *testing.T) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 100},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "price", Kind: storage.Numeric, Role: storage.Measure},
		{Name: "qty", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("shop", schema)
	rng := randx.New(21)
	regions := []string{"e", "w", "n", "s"}
	for i := 0; i < 500; i++ {
		if err := tb.AppendRow([]storage.Value{
			storage.Num(rng.Uniform(0, 100)),
			storage.Str(regions[rng.Intn(4)]),
			storage.Num(rng.Uniform(1, 10)),
			storage.Num(float64(1 + rng.Intn(5))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// buildSnippet makes an AVG(price*qty) snippet over x∈[lo,hi], region set.
func buildSnippet(t *testing.T, tb *storage.Table, lo, hi float64, regions []string, freq bool) *query.Snippet {
	t.Helper()
	g := query.NewRegion(tb.Schema())
	xcol, _ := tb.Schema().Lookup("x")
	g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi, HiOpen: true})
	if regions != nil {
		rcol, _ := tb.Schema().Lookup("region")
		var codes []int32
		for _, r := range regions {
			if c, ok := tb.DictOf(rcol).LookupCode(r); ok {
				codes = append(codes, c)
			}
		}
		g.ConstrainCat(rcol, query.CatSet{Codes: codes})
	}
	if freq {
		return &query.Snippet{Kind: query.FreqAgg, Region: g, Table: tb}
	}
	pcol, _ := tb.Schema().Lookup("price")
	qcol, _ := tb.Schema().Lookup("qty")
	return &query.Snippet{
		Kind:       query.AvgAgg,
		MeasureKey: "(price*qty)",
		Measure: func(t *storage.Table, row int) float64 {
			return t.NumAt(row, pcol) * t.NumAt(row, qcol)
		},
		Region: g,
		Table:  tb,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tb := multiDimTable(t)
	rng := randx.New(3)
	v := New(tb, Config{})
	for i := 0; i < 15; i++ {
		lo := rng.Uniform(0, 90)
		v.Record(buildSnippet(t, tb, lo, lo+8, []string{"e", "w"}, i%3 == 0),
			query.ScalarEstimate{Value: rng.Normal(20, 3), StdErr: 0.4, PopErr: 0.1})
	}
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), tb, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Same function set, same snippet counts, same parameters.
	if len(loaded.FuncIDs()) != len(v.FuncIDs()) {
		t.Fatalf("func ids: %v vs %v", loaded.FuncIDs(), v.FuncIDs())
	}
	if loaded.SnippetCount() != v.SnippetCount() {
		t.Fatalf("snippets: %d vs %d", loaded.SnippetCount(), v.SnippetCount())
	}
	for _, id := range v.FuncIDs() {
		p1, _ := v.Params(id)
		p2, ok := loaded.Params(id)
		if !ok {
			t.Fatalf("missing params for %v", id)
		}
		if math.Abs(p1.Sigma2-p2.Sigma2) > 1e-12 {
			t.Fatalf("%v sigma2: %v vs %v", id, p1.Sigma2, p2.Sigma2)
		}
		for col, ell := range p1.Ells {
			if math.Abs(p2.Ells[col]-ell) > 1e-12 {
				t.Fatalf("%v ell[%d]: %v vs %v", id, col, p2.Ells[col], ell)
			}
		}
		if k1, k2 := v.SynopsisKeys(id), loaded.SynopsisKeys(id); strings.Join(k1, ";") != strings.Join(k2, ";") {
			t.Fatalf("%v keys differ:\n%v\n%v", id, k1, k2)
		}
	}

	// Inference must be identical after the round trip.
	sn := buildSnippet(t, tb, 30, 45, []string{"e"}, false)
	raw := query.ScalarEstimate{Value: 19, StdErr: 0.8}
	r1 := v.Infer(sn, raw)
	r2 := loaded.Infer(sn, raw)
	if math.Abs(r1.Answer-r2.Answer) > 1e-9 || math.Abs(r1.Err-r2.Err) > 1e-9 {
		t.Fatalf("inference diverged after load:\n%+v\n%+v", r1, r2)
	}
}

func TestLoadRejectsBadSnapshots(t *testing.T) {
	tb := multiDimTable(t)
	if _, err := Load(strings.NewReader("{"), tb, Config{}); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99, "table": "shop"}`), tb, Config{}); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "table": "other"}`), tb, Config{}); err == nil {
		t.Fatal("wrong table accepted")
	}
	bad := `{"version":1,"table":"shop","models":[{"kind":"AVG","measure_key":"nosuch","entries":[]}]}`
	if _, err := Load(strings.NewReader(bad), tb, Config{}); err == nil {
		t.Fatal("unknown measure column accepted")
	}
	bad2 := `{"version":1,"table":"shop","models":[{"kind":"WAT","entries":[]}]}`
	if _, err := Load(strings.NewReader(bad2), tb, Config{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	bad3 := `{"version":1,"table":"shop","models":[{"kind":"FREQ","entries":[{"theta":1,"beta":1,"num":{"ghost":{"lo":0,"hi":1}}}]}]}`
	if _, err := Load(strings.NewReader(bad3), tb, Config{}); err == nil {
		t.Fatal("unknown region column accepted")
	}
}

func TestSaveLoadPinnedParams(t *testing.T) {
	tb := multiDimTable(t)
	v := New(tb, Config{})
	xcol, _ := tb.Schema().Lookup("x")
	id := query.FuncID{Kind: query.FreqAgg}
	v.SetParams(id, kernelParamsForTest(xcol))
	v.Record(buildSnippet(t, tb, 10, 20, nil, true), query.ScalarEstimate{Value: 0.1, StdErr: 0.01})

	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Pinned parameters survive and stay pinned (Train must not overwrite).
	if err := loaded.Train(); err != nil {
		t.Fatal(err)
	}
	p, _ := loaded.Params(id)
	if p.Ells[xcol] != 42 {
		t.Fatalf("pinned ell lost: %v", p.Ells[xcol])
	}
}

func kernelParamsForTest(xcol int) kernel.Params {
	return kernel.Params{Sigma2: 2, Ells: map[int]float64{xcol: 42}}
}
