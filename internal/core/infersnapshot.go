package core

import (
	"repro/internal/aqp"
	"repro/internal/query"
)

// InferSnapshot pins the published inference states of a set of aggregate
// functions at one instant. A progressive query infers every increment
// against the same snapshot, so its evolving answer and error bound reflect
// only the growing sample prefix — never a concurrent session's Record or
// Train landing mid-stream (those republish per-model state, which plain
// Verdict.Infer would pick up between increments). The pinned states are
// immutable (see inferState), so a snapshot may be read from any goroutine
// and held for the life of a stream at zero cost.
type InferSnapshot struct {
	cfg    Config
	states map[query.FuncID]*inferState
}

// SnapshotFor captures the published inference state of every aggregate
// function the snippets touch, lazily creating and publishing models for
// never-seen functions exactly as Verdict.Infer would.
func (v *Verdict) SnapshotFor(snips []*query.Snippet) *InferSnapshot {
	states := make(map[query.FuncID]*inferState, 1)
	for _, sn := range snips {
		id := sn.Func()
		if _, ok := states[id]; ok {
			continue
		}
		sh := v.shardFor(id)
		sh.mu.RLock()
		m := sh.models[id]
		var st *inferState
		if m != nil {
			st = m.published
		}
		sh.mu.RUnlock()
		if st == nil {
			sh.mu.Lock()
			m = v.modelForLocked(sh, sn)
			st = m.publish()
			sh.mu.Unlock()
		}
		states[id] = st
	}
	return &InferSnapshot{cfg: v.cfg, states: states}
}

// Infer computes the improved answer for a snippet's raw estimate against
// the pinned state — the same math as Verdict.Infer, but repeatable: equal
// inputs give equal outputs for the snapshot's lifetime. A snippet whose
// function was not in the snapshot set falls back to the raw answer.
func (s *InferSnapshot) Infer(sn *query.Snippet, raw query.ScalarEstimate) Improved {
	return inferOn(s.states[sn.Func()], sn, raw, s.cfg)
}

// inferAll maps raw snippet estimates to improved ones against a pinned
// snapshot, returning the improved estimates, the per-snippet used-model
// flags and how many snippets the model improved.
func inferAll(snap *InferSnapshot, snips []*query.Snippet, raw []query.ScalarEstimate) (improved []query.ScalarEstimate, usedModel []bool, count int) {
	improved = make([]query.ScalarEstimate, len(snips))
	usedModel = make([]bool, len(snips))
	for i, sn := range snips {
		inf := snap.Infer(sn, aqp.Sanitize(raw[i]))
		improved[i] = query.ScalarEstimate{Value: inf.Answer, StdErr: inf.Err}
		usedModel[i] = inf.UsedModel
		if inf.UsedModel {
			count++
		}
	}
	return improved, usedModel, count
}
