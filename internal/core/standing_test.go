package core

import (
	"testing"
	"time"

	"repro/internal/aqp"
	"repro/internal/randx"
	"repro/internal/storage"
)

// standingQueries are the ungrouped members of the concurrent workload —
// standing subscriptions reject GROUP BY.
var standingQueries = []string{
	"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 5 AND 15",
	"SELECT COUNT(*) FROM sales WHERE region = 'east'",
	"SELECT SUM(revenue) FROM sales WHERE week >= 20 AND week <= 40",
}

// replayPush audits one pushed update: its raw AND improved cells must be
// bit-identical to a fresh one-shot replay at the pinned (sample_gen,
// base_rows, sample_rows) triple. This is the headline property of
// continuous queries — a push is never an approximation of what a query
// would have returned; it IS what the query returns.
func replayPush(t *testing.T, sys *System, sql string, res *Result) {
	t.Helper()
	view := sys.Engine().ViewAtGen(res.SampleGen, res.BaseRows, res.SampleRows)
	if view == nil {
		t.Fatalf("ViewAtGen(%d, %d, %d) = nil: pinned generation evicted", res.SampleGen, res.BaseRows, res.SampleRows)
	}
	rep, err := sys.ExecuteView(view, sql)
	if err != nil {
		t.Fatal(err)
	}
	gotRaw, wantRaw := rawCells(rep), rawCells(res)
	gotImp, wantImp := improvedCells(rep), improvedCells(res)
	if len(gotRaw) != len(wantRaw) || len(gotRaw) == 0 {
		t.Fatalf("replay shape for %q: %d vs %d raw cells", sql, len(gotRaw), len(wantRaw))
	}
	for i := range gotRaw {
		if gotRaw[i] != wantRaw[i] {
			t.Fatalf("raw replay mismatch for %q at gen=%d cell %d: pushed %v, replay %v",
				sql, res.SampleGen, i, wantRaw[i], gotRaw[i])
		}
	}
	for i := range gotImp {
		if gotImp[i] != wantImp[i] {
			t.Fatalf("improved replay mismatch for %q at gen=%d cell %d: pushed %v, replay %v",
				sql, res.SampleGen, i, wantImp[i], gotImp[i])
		}
	}
}

// TestSubscribeReplayEqualityProperty is the property test: under a
// seeded-random interleaving of append / rebuild / train mutations, every
// update pushed to every zero-threshold subscriber replays bit-identically
// via ViewAtGen + ExecuteView, per-subscriber seq is gapless and strictly
// monotone, and every push reason matches the mutation that caused it.
func TestSubscribeReplayEqualityProperty(t *testing.T) {
	sys := systemFixture(t, 20000, 0.2)
	// Seed the synopsis BEFORE subscribing: Execute records snippets and
	// Train publishes models, so pushes exercise the improved path too.
	for _, q := range standingQueries {
		if _, err := sys.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Train(); err != nil {
		t.Fatal(err)
	}

	subs := make([]*Subscription, len(standingQueries))
	nextSeq := make([]int, len(standingQueries))
	for i, q := range standingQueries {
		sub, err := sys.Subscribe(q, SubscribeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs[i] = sub
	}

	// drainOne pops exactly one buffered update per subscriber and audits
	// it — immediately, before the next mutation can move the model states
	// the pushed inference ran against.
	drainOne := func(wantReason string) {
		t.Helper()
		for i, sub := range subs {
			upd, ok := sub.TryNext()
			if !ok {
				t.Fatalf("subscriber %d has no buffered update after %q", i, wantReason)
			}
			if upd.Reason != wantReason {
				t.Fatalf("subscriber %d: reason %q, want %q", i, upd.Reason, wantReason)
			}
			if upd.Seq != nextSeq[i] {
				t.Fatalf("subscriber %d: seq %d, want %d (gapless, monotone)", i, upd.Seq, nextSeq[i])
			}
			nextSeq[i]++
			replayPush(t, sys, standingQueries[i], upd.Result)
			if _, extra := sub.TryNext(); extra {
				t.Fatalf("subscriber %d: more than one update for one mutation", i)
			}
		}
	}
	drainOne(PushReasonSubscribe)

	rng := randx.New(321)
	mutations := 0
	for step := 0; step < 25; step++ {
		switch rng.Intn(4) {
		case 0, 1: // appends dominate, as in a streaming deployment
			if _, err := sys.Append(salesBatch(t, 50+rng.Intn(900), int64(7000+step))); err != nil {
				t.Fatal(err)
			}
			drainOne(PushReasonAppend)
		case 2:
			sys.RebuildSample()
			drainOne(PushReasonRebuild)
		case 3:
			if err := sys.Train(); err != nil {
				t.Fatal(err)
			}
			drainOne(PushReasonTrain)
		}
		mutations++
	}

	st := sys.StatsSnapshot()
	if st.NotifyBatches != mutations {
		t.Fatalf("NotifyBatches=%d, want %d (one per mutation)", st.NotifyBatches, mutations)
	}
	// One shared scan per unique plan per batch, plus each plan's creation
	// fold — never one per subscriber.
	if want := len(standingQueries) * (mutations + 1); st.NotifyScans != want {
		t.Fatalf("NotifyScans=%d, want %d", st.NotifyScans, want)
	}
	if want := len(standingQueries) * (mutations + 1); st.NotifyPushes != want {
		t.Fatalf("NotifyPushes=%d, want %d", st.NotifyPushes, want)
	}
	for _, sub := range subs {
		sub.Close()
	}
	if n := sys.ActiveSubscriptions(); n != 0 {
		t.Fatalf("ActiveSubscriptions=%d after teardown", n)
	}
	if n := sys.Engine().PinnedGens(); n != 0 {
		t.Fatalf("PinnedGens=%d after teardown: standing plans leaked pins", n)
	}
}

// TestSubscribeSharedScanDedup pins the shared-scan economics: K
// subscribers on ONE SQL cost exactly one incremental scan per notify
// batch (plus the plan's single creation fold), while every subscriber
// still receives its own update.
func TestSubscribeSharedScanDedup(t *testing.T) {
	sys := systemFixture(t, 10000, 0.2)
	sql := standingQueries[0]
	const K = 6
	subs := make([]*Subscription, K)
	for i := range subs {
		sub, err := sys.Subscribe(sql, SubscribeOptions{Queue: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs[i] = sub
	}
	const appends = 5
	for i := 0; i < appends; i++ {
		if _, err := sys.Append(salesBatch(t, 200, int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.StatsSnapshot()
	if st.NotifyScans != appends+1 {
		t.Fatalf("NotifyScans=%d, want %d: the scan must be shared across %d subscribers", st.NotifyScans, appends+1, K)
	}
	if st.NotifyBatches != appends {
		t.Fatalf("NotifyBatches=%d, want %d", st.NotifyBatches, appends)
	}
	if st.NotifyPushes != K*(appends+1) {
		t.Fatalf("NotifyPushes=%d, want %d", st.NotifyPushes, K*(appends+1))
	}
	for _, sub := range subs {
		for n := 0; ; n++ {
			if _, ok := sub.TryNext(); !ok {
				if n != appends+1 {
					t.Fatalf("subscriber drained %d updates, want %d", n, appends+1)
				}
				break
			}
		}
	}
}

// TestSubscribeThresholds: a subscriber with an enormous relative
// threshold receives only the initial state push; a zero-threshold sibling
// on the same plan receives every batch. Small appends cannot move an
// AVG's estimate by 10^9 of itself.
func TestSubscribeThresholds(t *testing.T) {
	sys := systemFixture(t, 10000, 0.2)
	sql := standingQueries[0]
	quiet, err := sys.Subscribe(sql, SubscribeOptions{DeltaRel: 1e9, DeltaCI: 1e18})
	if err != nil {
		t.Fatal(err)
	}
	defer quiet.Close()
	chatty, err := sys.Subscribe(sql, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer chatty.Close()
	for i := 0; i < 3; i++ {
		if _, err := sys.Append(salesBatch(t, 100, int64(500+i))); err != nil {
			t.Fatal(err)
		}
	}
	if upd, ok := quiet.TryNext(); !ok || upd.Reason != PushReasonSubscribe {
		t.Fatalf("quiet subscriber's initial push: ok=%v upd=%+v", ok, upd)
	}
	if upd, ok := quiet.TryNext(); ok {
		t.Fatalf("quiet subscriber was pushed %+v despite thresholds", upd)
	}
	for want := 0; want < 4; want++ { // subscribe + 3 appends
		upd, ok := chatty.TryNext()
		if !ok || upd.Seq != want {
			t.Fatalf("chatty subscriber: got (seq %d, %v), want seq %d", upd.Seq, ok, want)
		}
	}
}

// TestSubscribeDebounceFakeClock drives the push debounce entirely on an
// injected clock — zero sleeps. Updates inside the window are suppressed
// (and counted); advancing the fake clock past the window re-arms pushes.
func TestSubscribeDebounceFakeClock(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("sales", schema)
	rng := randx.New(9)
	for i := 0; i < 5000; i++ {
		w := rng.Uniform(0, 52)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(w), storage.Str("east"), storage.Num(50 + 2*w),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sample, err := aqp.BuildSample(tb, 0.2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), Config{
		Now: func() time.Time { return now },
	})

	sub, err := sys.Subscribe(standingQueries[0], SubscribeOptions{MinPushInterval: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, ok := sub.TryNext(); !ok {
		t.Fatal("no initial push")
	}

	// Both appends land inside the 10 s window after the initial push.
	for i := 0; i < 2; i++ {
		now = now.Add(time.Second)
		if _, err := sys.Append(salesBatch(t, 100, int64(40+i))); err != nil {
			t.Fatal(err)
		}
	}
	if upd, ok := sub.TryNext(); ok {
		t.Fatalf("debounced window leaked a push: %+v", upd)
	}
	if st := sys.StatsSnapshot(); st.NotifyDebounced != 2 {
		t.Fatalf("NotifyDebounced=%d, want 2", st.NotifyDebounced)
	}

	// Step past the window: the next append pushes again.
	now = now.Add(time.Minute)
	if _, err := sys.Append(salesBatch(t, 100, 77)); err != nil {
		t.Fatal(err)
	}
	upd, ok := sub.TryNext()
	if !ok || upd.Reason != PushReasonAppend || upd.Seq != 1 {
		t.Fatalf("post-window push: ok=%v upd=%+v", ok, upd)
	}
	replayPush(t, sys, standingQueries[0], upd.Result)
}

// TestSubscribeRejections: unparsable/unsupported SQL is refused at
// Subscribe time — no half-registered subscription, no leaked generation
// pin. (Grouped statements stand since the grouped fold landed; see
// TestGroupedSubscribeReplayEqualityProperty.)
func TestSubscribeRejections(t *testing.T) {
	sys := systemFixture(t, 5000, 0.2)
	for _, sql := range []string{
		"SELECT nope FROM sales",
		"this is not sql",
	} {
		if sub, err := sys.Subscribe(sql, SubscribeOptions{}); err == nil {
			sub.Close()
			t.Fatalf("Subscribe(%q) succeeded", sql)
		}
	}
	if n := sys.ActiveSubscriptions(); n != 0 {
		t.Fatalf("ActiveSubscriptions=%d after rejections", n)
	}
	if n := sys.Engine().PinnedGens(); n != 0 {
		t.Fatalf("PinnedGens=%d after rejections: failed plans leaked pins", n)
	}
}

// TestSubscribeCoalesceNeverBlocks: a subscriber that never reads, behind
// a queue of 1, cannot block mutations or starve a healthy sibling; its
// queue holds the latest update and the coalesce counter records the
// overwrites. Seq gaps at the stalled consumer tell it what it missed.
func TestSubscribeCoalesceNeverBlocks(t *testing.T) {
	sys := systemFixture(t, 10000, 0.2)
	sql := standingQueries[1]
	stalled, err := sys.Subscribe(sql, SubscribeOptions{Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	healthy, err := sys.Subscribe(sql, SubscribeOptions{Queue: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	const appends = 6
	for i := 0; i < appends; i++ {
		if _, err := sys.Append(salesBatch(t, 150, int64(800+i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := sys.StatsSnapshot(); st.NotifyCoalesced != appends {
		// Initial push filled the 1-slot queue; every append overwrote it.
		t.Fatalf("NotifyCoalesced=%d, want %d", st.NotifyCoalesced, appends)
	}
	upd, ok := stalled.TryNext()
	if !ok || upd.Seq != appends {
		t.Fatalf("stalled queue holds seq %d (ok=%v), want the latest seq %d", upd.Seq, ok, appends)
	}
	if _, extra := stalled.TryNext(); extra {
		t.Fatal("stalled queue held more than its one slot")
	}
	replayPush(t, sys, sql, upd.Result)
	for want := 0; want <= appends; want++ {
		u, ok := healthy.TryNext()
		if !ok || u.Seq != want {
			t.Fatalf("healthy subscriber: got (seq %d, %v), want seq %d", u.Seq, ok, want)
		}
	}
}

// TestSubscribeSurvivesRebuildRebind: a rebuild swaps the sample
// generation out from under every carried fold; the notify pass must
// rebind (one full re-fold per plan) and keep pushing replayable results,
// and the old generation's pin must move forward rather than leak.
func TestSubscribeSurvivesRebuildRebind(t *testing.T) {
	sys := systemFixture(t, 10000, 0.2)
	sql := standingQueries[2]
	sub, err := sys.Subscribe(sql, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	first, _ := sub.TryNext()

	gen, _ := sys.RebuildSample()
	upd, ok := sub.TryNext()
	if !ok || upd.Reason != PushReasonRebuild {
		t.Fatalf("rebuild push: ok=%v reason=%q", ok, upd.Reason)
	}
	if upd.Result.SampleGen != gen || upd.Result.SampleGen == first.Result.SampleGen {
		t.Fatalf("rebuild push pins gen %d, want the new gen %d", upd.Result.SampleGen, gen)
	}
	replayPush(t, sys, sql, upd.Result)

	if _, err := sys.Append(salesBatch(t, 300, 31)); err != nil {
		t.Fatal(err)
	}
	upd, ok = sub.TryNext()
	if !ok || upd.Reason != PushReasonAppend {
		t.Fatalf("post-rebuild append push: ok=%v reason=%q", ok, upd.Reason)
	}
	replayPush(t, sys, sql, upd.Result)

	sub.Close()
	if n := sys.Engine().PinnedGens(); n != 0 {
		t.Fatalf("PinnedGens=%d after close", n)
	}
}
