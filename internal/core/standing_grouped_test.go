package core

import (
	"testing"

	"repro/internal/aqp"
	"repro/internal/randx"
	"repro/internal/storage"
)

// groupedStandingQueries are the GROUP BY members of the standing workload.
var groupedStandingQueries = []string{
	"SELECT region, AVG(revenue) FROM sales GROUP BY region",
	"SELECT region, SUM(revenue), COUNT(*) FROM sales WHERE week BETWEEN 5 AND 40 GROUP BY region",
}

// regionSalesBatch is salesBatch with a caller-chosen region list, so tests
// can append rows for a region the base table has never seen and force a
// group birth through the carried fold.
func regionSalesBatch(t *testing.T, rows int, seed int64, regions []string) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("sales_batch", schema)
	rng := randx.New(seed)
	for i := 0; i < rows; i++ {
		w := rng.Uniform(0, 52)
		rg := regions[rng.Intn(len(regions))]
		rev := 55 + 2*w + rng.Normal(0, 3)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(w), storage.Str(rg), storage.Num(rev),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// TestGroupedSubscribeReplayEqualityProperty is the grouped version of the
// replay property: under a seeded interleaving of append / rebuild / train
// — including an append that births a region the plan has never grouped —
// every pushed update on every GROUP BY subscription replays
// bit-identically (raw AND improved cells, so the carried covariance memo
// is audited against full re-inference on every push), seq stays gapless,
// and the scan accounting stays one shared scan per plan per batch.
func TestGroupedSubscribeReplayEqualityProperty(t *testing.T) {
	sys := systemFixture(t, 20000, 0.2)
	for _, q := range groupedStandingQueries {
		if _, err := sys.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Train(); err != nil {
		t.Fatal(err)
	}

	subs := make([]*Subscription, len(groupedStandingQueries))
	nextSeq := make([]int, len(groupedStandingQueries))
	for i, q := range groupedStandingQueries {
		sub, err := sys.Subscribe(q, SubscribeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs[i] = sub
	}

	drainOne := func(wantReason string) {
		t.Helper()
		for i, sub := range subs {
			upd, ok := sub.TryNext()
			if !ok {
				t.Fatalf("subscriber %d has no buffered update after %q", i, wantReason)
			}
			if upd.Reason != wantReason {
				t.Fatalf("subscriber %d: reason %q, want %q", i, upd.Reason, wantReason)
			}
			if upd.Seq != nextSeq[i] {
				t.Fatalf("subscriber %d: seq %d, want %d (gapless, monotone)", i, upd.Seq, nextSeq[i])
			}
			nextSeq[i]++
			if len(upd.Result.Rows) < 2 {
				t.Fatalf("subscriber %d: %d groups in push, want >= 2", i, len(upd.Result.Rows))
			}
			replayPush(t, sys, groupedStandingQueries[i], upd.Result)
			if _, extra := sub.TryNext(); extra {
				t.Fatalf("subscriber %d: more than one update for one mutation", i)
			}
		}
	}
	drainOne(PushReasonSubscribe)

	rng := randx.New(654)
	mutations := 0
	for step := 0; step < 20; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			if _, err := sys.Append(salesBatch(t, 50+rng.Intn(900), int64(8000+step))); err != nil {
				t.Fatal(err)
			}
			drainOne(PushReasonAppend)
		case 2:
			sys.RebuildSample()
			drainOne(PushReasonRebuild)
		case 3:
			if err := sys.Train(); err != nil {
				t.Fatal(err)
			}
			drainOne(PushReasonTrain)
		}
		mutations++
	}

	// Group birth: "north" has never been seen; the carried folds must
	// discover its code mid-stream, backfill exactly, and the pushed rows
	// must replay — including the new group's improved estimate, inferred
	// through a memo slot that did not exist a batch ago.
	if _, err := sys.Append(regionSalesBatch(t, 1200, 9001, []string{"north", "east", "west"})); err != nil {
		t.Fatal(err)
	}
	mutations++
	drainOne(PushReasonAppend)

	st := sys.StatsSnapshot()
	if st.NotifyBatches != mutations {
		t.Fatalf("NotifyBatches=%d, want %d (one per mutation)", st.NotifyBatches, mutations)
	}
	if want := len(groupedStandingQueries) * (mutations + 1); st.NotifyScans != want {
		t.Fatalf("NotifyScans=%d, want %d (one shared scan per plan per batch)", st.NotifyScans, want)
	}
	for _, sub := range subs {
		sub.Close()
	}
	if n := sys.ActiveSubscriptions(); n != 0 {
		t.Fatalf("ActiveSubscriptions=%d after teardown", n)
	}
	if n := sys.Engine().PinnedGens(); n != 0 {
		t.Fatalf("PinnedGens=%d after teardown: standing plans leaked pins", n)
	}
}

// TestGroupedSubscribeStructureAlwaysPushes pins the per-(group, cell)
// gating contract: with thresholds far too large for any estimate drift to
// clear, a plain append is suppressed — but a group birth and a truncation
// flip are structure changes and must push regardless.
func TestGroupedSubscribeStructureAlwaysPushes(t *testing.T) {
	// Nmax 2 so a third discovered group flips Result.GroupsTruncated.
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("sales", schema)
	rng := randx.New(42)
	for i := 0; i < 8000; i++ {
		w := rng.Uniform(0, 52)
		rg := []string{"east", "west"}[rng.Intn(2)]
		if err := tb.AppendRow([]storage.Value{
			storage.Num(w), storage.Str(rg), storage.Num(50 + 2*w + rng.Normal(0, 3)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sample, err := aqp.BuildSample(tb, 0.25, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), Config{Nmax: 2})

	sql := "SELECT region, AVG(revenue) FROM sales GROUP BY region"
	sub, err := sys.Subscribe(sql, SubscribeOptions{DeltaRel: 1e6, DeltaCI: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	first, ok := sub.TryNext()
	if !ok || first.Result.GroupsTruncated {
		t.Fatalf("initial push ok=%v truncated=%v, want live untruncated", ok, first.Result.GroupsTruncated)
	}

	// Same row set, tiny drift: thresholds suppress.
	if _, err := sys.Append(salesBatch(t, 200, 1)); err != nil {
		t.Fatal(err)
	}
	if upd, leaked := sub.TryNext(); leaked {
		t.Fatalf("threshold-suppressed append leaked a push: %+v", upd)
	}

	// Group birth within the cap ("north" makes 3 discovered groups but the
	// cap keeps 2 and flips the truncation flag): structure change, pushes.
	if _, err := sys.Append(regionSalesBatch(t, 500, 2, []string{"north"})); err != nil {
		t.Fatal(err)
	}
	upd, ok := sub.TryNext()
	if !ok {
		t.Fatal("structure change (truncation flip) did not push")
	}
	if !upd.Result.GroupsTruncated {
		t.Fatal("push after third region should report GroupsTruncated")
	}
	if len(upd.Result.Rows) != 2 {
		t.Fatalf("capped push has %d rows, want 2", len(upd.Result.Rows))
	}
	replayPush(t, sys, sql, upd.Result)

	// Same truncated row set again: suppressed again.
	if _, err := sys.Append(salesBatch(t, 200, 3)); err != nil {
		t.Fatal(err)
	}
	if upd, leaked := sub.TryNext(); leaked {
		t.Fatalf("threshold-suppressed append after flip leaked a push: %+v", upd)
	}
}

// TestSubscribeAfterCloseSubscriptions is the regression for the dead-hub
// bug: CloseSubscriptions used to leave the closed hub in place, so a later
// Subscribe handed back a subscription that was born closed and never
// received a push. The standing state must fully reset instead.
func TestSubscribeAfterCloseSubscriptions(t *testing.T) {
	sys := systemFixture(t, 8000, 0.25)
	sql := standingQueries[0]
	sub, err := sys.Subscribe(sql, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.TryNext(); !ok {
		t.Fatal("first subscription got no initial push")
	}
	sys.CloseSubscriptions("drain")
	if n := sys.Engine().PinnedGens(); n != 0 {
		t.Fatalf("PinnedGens=%d after CloseSubscriptions", n)
	}
	if n := sys.ActiveSubscriptions(); n != 0 {
		t.Fatalf("ActiveSubscriptions=%d after CloseSubscriptions", n)
	}

	sub2, err := sys.Subscribe(sql, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reason := sub2.CloseReason(); reason != "" {
		t.Fatalf("re-subscription born closed: CloseReason=%q", reason)
	}
	upd, ok := sub2.TryNext()
	if !ok {
		t.Fatal("re-subscription after CloseSubscriptions got no initial push (dead hub)")
	}
	if upd.Seq != 0 || upd.Reason != PushReasonSubscribe {
		t.Fatalf("re-subscription initial push seq=%d reason=%q", upd.Seq, upd.Reason)
	}
	replayPush(t, sys, sql, upd.Result)
	if _, err := sys.Append(salesBatch(t, 300, 11)); err != nil {
		t.Fatal(err)
	}
	if _, ok := sub2.TryNext(); !ok {
		t.Fatal("re-subscription received no append push")
	}
	sub2.Close()
	if n := sys.Engine().PinnedGens(); n != 0 {
		t.Fatalf("PinnedGens=%d after final teardown", n)
	}
}
