package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/mathx"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
)

// smoothTable builds a relation whose measure is a smooth function of the
// single numeric dimension "x" over [0,100] with planted length-scale ell —
// known ground truth for inference and learning tests.
func smoothTable(t *testing.T, rows int, ell, sigma2, noise float64, seed int64) (*storage.Table, *randx.SmoothFieldAt) {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 100},
		{Name: "y", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("smooth", schema)
	rng := randx.New(seed)
	field := rng.NewSmoothField(ell, sigma2, 10)
	for i := 0; i < rows; i++ {
		x := rng.Uniform(0, 100)
		y := field.At(x) + rng.Normal(0, noise)
		if err := tb.AppendRow([]storage.Value{storage.Num(x), storage.Num(y)}); err != nil {
			t.Fatal(err)
		}
	}
	return tb, field
}

// avgSnippet builds an AVG(y) snippet over x ∈ [lo, hi].
func avgSnippet(tb *storage.Table, lo, hi float64) *query.Snippet {
	g := query.NewRegion(tb.Schema())
	xcol, _ := tb.Schema().Lookup("x")
	g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi})
	ycol, _ := tb.Schema().Lookup("y")
	return &query.Snippet{
		Kind:       query.AvgAgg,
		MeasureKey: "y",
		Measure:    func(t *storage.Table, row int) float64 { return t.NumAt(row, ycol) },
		Region:     g,
		Table:      tb,
	}
}

// freqSnippet builds a FREQ(*) snippet over x ∈ [lo, hi].
func freqSnippet(tb *storage.Table, lo, hi float64) *query.Snippet {
	g := query.NewRegion(tb.Schema())
	xcol, _ := tb.Schema().Lookup("x")
	g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi})
	return &query.Snippet{Kind: query.FreqAgg, Region: g, Table: tb}
}

// exactAvg computes the true mean of y over the region.
func exactAvg(tb *storage.Table, lo, hi float64) float64 {
	xcol, _ := tb.Schema().Lookup("x")
	ycol, _ := tb.Schema().Lookup("y")
	var m mathx.Moments
	for row := 0; row < tb.Rows(); row++ {
		x := tb.NumAt(row, xcol)
		if x >= lo && x <= hi {
			m.Add(tb.NumAt(row, ycol))
		}
	}
	return m.Mean()
}

// noisyRaw perturbs the exact answer with Gaussian noise of the given
// standard error — a stand-in AQP raw answer with calibrated β.
func noisyRaw(rng *randx.Source, exact, stderr float64) query.ScalarEstimate {
	return query.ScalarEstimate{Value: exact + rng.Normal(0, stderr), StdErr: stderr}
}

func TestEmptySynopsisPassThrough(t *testing.T) {
	tb, _ := smoothTable(t, 500, 20, 4, 0.1, 1)
	v := New(tb, Config{})
	sn := avgSnippet(tb, 10, 30)
	raw := query.ScalarEstimate{Value: 5, StdErr: 2}
	res := v.Infer(sn, raw)
	if res.UsedModel || res.Answer != 5 || res.Err != 2 {
		t.Fatalf("empty synopsis must pass through: %+v", res)
	}
}

func TestTheorem1ImprovedErrorNeverLarger(t *testing.T) {
	// Property: for random synopses and snippets, β̂ ≤ β (Theorem 1).
	tb, _ := smoothTable(t, 1000, 20, 4, 0.1, 2)
	f := func(seed int64) bool {
		rng := randx.New(seed)
		v := New(tb, Config{})
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			lo := rng.Uniform(0, 90)
			sn := avgSnippet(tb, lo, lo+rng.Uniform(1, 10))
			raw := noisyRaw(rng, exactAvg(tb, lo, lo+5), rng.Uniform(0.05, 1))
			v.Record(sn, raw)
		}
		if err := v.Train(); err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			lo := rng.Uniform(0, 90)
			sn := avgSnippet(tb, lo, lo+rng.Uniform(1, 10))
			beta := rng.Uniform(0.05, 2)
			raw := noisyRaw(rng, exactAvg(tb, lo, lo+5), beta)
			res := v.Infer(sn, raw)
			if res.Err > raw.StdErr*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInferenceImprovesAccuracy(t *testing.T) {
	// With a well-specified model and many accurate past answers, improved
	// answers must beat raw answers on average (the paper's core claim).
	const ell, sigma2 = 25.0, 9.0
	tb, _ := smoothTable(t, 4000, ell, sigma2, 0.2, 3)
	rng := randx.New(99)

	v := New(tb, Config{})
	xcol, _ := tb.Schema().Lookup("x")
	p := kernel.Params{Sigma2: sigma2, Ells: map[int]float64{xcol: ell}}
	v.SetParams(query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"}, p)

	// Past snippets: accurate answers over scattered ranges.
	for i := 0; i < 60; i++ {
		lo := rng.Uniform(0, 90)
		hi := lo + rng.Uniform(5, 10)
		exact := exactAvg(tb, lo, hi)
		v.Record(avgSnippet(tb, lo, hi), noisyRaw(rng, exact, 0.15))
	}
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}

	var rawErrSum, impErrSum float64
	const trials = 80
	for i := 0; i < trials; i++ {
		lo := rng.Uniform(0, 90)
		hi := lo + rng.Uniform(5, 10)
		exact := exactAvg(tb, lo, hi)
		raw := noisyRaw(rng, exact, 1.0) // deliberately noisy raw answer
		res := v.Infer(avgSnippet(tb, lo, hi), raw)
		rawErrSum += math.Abs(raw.Value - exact)
		impErrSum += math.Abs(res.Answer - exact)
	}
	if impErrSum >= rawErrSum*0.8 {
		t.Fatalf("inference did not improve: improved=%v raw=%v", impErrSum/trials, rawErrSum/trials)
	}
}

func TestRepeatedSnippetNearExactRecall(t *testing.T) {
	// A new snippet identical to an accurately-answered past snippet must
	// be pulled strongly toward the past answer.
	tb, _ := smoothTable(t, 2000, 25, 9, 0.2, 4)
	rng := randx.New(5)
	v := New(tb, Config{})
	xcol, _ := tb.Schema().Lookup("x")
	v.SetParams(query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"},
		kernel.Params{Sigma2: 9, Ells: map[int]float64{xcol: 25}})

	exact := exactAvg(tb, 20, 30)
	v.Record(avgSnippet(tb, 20, 30), query.ScalarEstimate{Value: exact + 0.01, StdErr: 0.02})
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}
	raw := noisyRaw(rng, exact, 2.0)
	res := v.Infer(avgSnippet(tb, 20, 30), raw)
	if !res.UsedModel {
		t.Fatalf("model rejected: %+v", res)
	}
	if math.Abs(res.Answer-exact) > 0.2 {
		t.Fatalf("recall answer=%v exact=%v raw=%v", res.Answer, exact, raw.Value)
	}
	if res.Err > 0.1 {
		t.Fatalf("recall error=%v should be tiny", res.Err)
	}
}

func TestValidationRejectsBadModel(t *testing.T) {
	// Plant absurdly long length-scales (everything fully correlated) and
	// feed past answers from one end of the domain; a new query at the
	// other end with a contradicting raw answer must be rejected.
	tb, _ := smoothTable(t, 2000, 10, 9, 0.2, 6)
	xcol, _ := tb.Schema().Lookup("x")
	v := New(tb, Config{})
	v.SetParams(query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"},
		kernel.Params{Sigma2: 9, Ells: map[int]float64{xcol: 1e6}})

	// Past answer says "the average is 50" (fabricated, far from truth).
	v.Record(avgSnippet(tb, 0, 10), query.ScalarEstimate{Value: 50, StdErr: 0.01})
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}
	// New snippet whose raw answer is near the true field mean (~10).
	exact := exactAvg(tb, 80, 90)
	raw := query.ScalarEstimate{Value: exact, StdErr: 0.05}
	res := v.Infer(avgSnippet(tb, 80, 90), raw)
	if res.UsedModel {
		t.Fatalf("bad model accepted: %+v", res)
	}
	if res.Answer != raw.Value || res.Err != raw.StdErr {
		t.Fatal("rejected inference must return raw answer")
	}
}

func TestFreqNegativeRejected(t *testing.T) {
	tb, _ := smoothTable(t, 1000, 20, 4, 0.1, 7)
	v := New(tb, Config{})
	// Past FREQ answers near zero with strong negative pull: fabricate a
	// past snippet with a very negative answer so the GP extrapolates
	// below zero.
	v.Record(freqSnippet(tb, 0, 50), query.ScalarEstimate{Value: -0.4, StdErr: 0.001})
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}
	raw := query.ScalarEstimate{Value: 0.01, StdErr: 5.0} // huge raw error
	res := v.Infer(freqSnippet(tb, 0, 50), raw)
	if res.UsedModel && res.Answer < 0 {
		t.Fatalf("negative FREQ estimate accepted: %+v", res)
	}
}

func TestErrorBoundClampsFreq(t *testing.T) {
	tb, _ := smoothTable(t, 100, 20, 4, 0.1, 8)
	sn := freqSnippet(tb, 0, 50)
	res := Improved{Answer: 0.01, Err: 0.05}
	lo, hi := ErrorBound(sn, res, Config{})
	if lo != 0 {
		t.Fatalf("FREQ lower bound=%v, want 0", lo)
	}
	if hi <= 0.01 {
		t.Fatalf("upper bound=%v", hi)
	}
	// AVG bounds are symmetric.
	av := avgSnippet(tb, 0, 50)
	lo2, hi2 := ErrorBound(av, Improved{Answer: 1, Err: 0.5}, Config{})
	if math.Abs((1-lo2)-(hi2-1)) > 1e-12 {
		t.Fatal("AVG bound not symmetric")
	}
}

func TestSynopsisLRUCap(t *testing.T) {
	tb, _ := smoothTable(t, 500, 20, 4, 0.1, 9)
	v := New(tb, Config{SynopsisCap: 5})
	rng := randx.New(1)
	for i := 0; i < 12; i++ {
		lo := float64(i * 5)
		v.Record(avgSnippet(tb, lo, lo+4), noisyRaw(rng, 10, 0.5))
	}
	id := query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"}
	keys := v.SynopsisKeys(id)
	if len(keys) != 5 {
		t.Fatalf("synopsis size=%d want 5", len(keys))
	}
	if v.SnippetCount() != 5 {
		t.Fatalf("count=%d", v.SnippetCount())
	}
	// The oldest snippets (lo=0..30) must be gone; the newest retained.
	for _, k := range keys {
		if k == avgSnippet(tb, 0, 4).Key() {
			t.Fatal("oldest snippet not evicted")
		}
	}
}

func TestRepeatedSnippetKeepsBetterAnswer(t *testing.T) {
	tb, _ := smoothTable(t, 500, 20, 4, 0.1, 10)
	v := New(tb, Config{})
	sn := avgSnippet(tb, 10, 20)
	v.Record(sn, query.ScalarEstimate{Value: 5, StdErr: 1.0})
	v.Record(avgSnippet(tb, 10, 20), query.ScalarEstimate{Value: 6, StdErr: 0.2}) // better
	v.Record(avgSnippet(tb, 10, 20), query.ScalarEstimate{Value: 7, StdErr: 3.0}) // worse
	id := query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"}
	if keys := v.SynopsisKeys(id); len(keys) != 1 {
		t.Fatalf("dedup failed: %d entries", len(keys))
	}
	m := v.modelOf(id)
	if m.entries[0].theta != 6 || m.entries[0].beta != 0.2 {
		t.Fatalf("kept wrong answer: %+v", m.entries[0])
	}
}

func TestIncrementalRecordMatchesRebuild(t *testing.T) {
	// Infer after incremental Extend-based records must match infer after
	// a from-scratch rebuild.
	tb, _ := smoothTable(t, 1000, 20, 4, 0.1, 11)
	rng := randx.New(2)
	mkRaw := func(i int) (lo float64, est query.ScalarEstimate) {
		lo = float64(i * 7 % 85)
		return lo, query.ScalarEstimate{Value: 10 + rng.Normal(0, 1), StdErr: 0.3}
	}

	a := New(tb, Config{})
	b := New(tb, Config{})
	// Pin parameters so the σ² moment-matching at rebuild cannot differ
	// between the incremental and rebuilt paths.
	xcol, _ := tb.Schema().Lookup("x")
	id := query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"}
	pinned := kernel.Params{Sigma2: 4, Ells: map[int]float64{xcol: 20}}
	a.SetParams(id, pinned)
	b.SetParams(id, pinned)
	// Seed both with some history and train (fixes chol).
	for i := 0; i < 10; i++ {
		lo, est := mkRaw(i)
		a.Record(avgSnippet(tb, lo, lo+5), est)
		b.Record(avgSnippet(tb, lo, lo+5), est)
	}
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(); err != nil {
		t.Fatal(err)
	}
	// Now record more snippets: a extends incrementally (post-Train chol
	// exists), b gets its factorization wiped to force a rebuild.
	for i := 10; i < 20; i++ {
		lo, est := mkRaw(i)
		a.Record(avgSnippet(tb, lo, lo+5), est)
		b.Record(avgSnippet(tb, lo, lo+5), est)
	}
	b.modelOf(id).chol = nil // force rebuild path

	sn := avgSnippet(tb, 40, 50)
	raw := query.ScalarEstimate{Value: 9, StdErr: 0.5}
	ra := a.Infer(sn, raw)
	rb := b.Infer(sn, raw)
	if math.Abs(ra.Answer-rb.Answer) > 1e-6 || math.Abs(ra.Err-rb.Err) > 1e-6 {
		t.Fatalf("incremental %+v != rebuild %+v", ra, rb)
	}
}

func TestLearningRecoversPlantedLengthScale(t *testing.T) {
	// Generate raw answers directly from a planted GP over ranges, then
	// check the learned length-scale is the right order of magnitude
	// (Appendix A.2 / Figure 7 in miniature).
	const planted = 15.0
	tb, field := smoothTable(t, 4000, planted, 9, 0.0, 12)
	rng := randx.New(3)
	v := New(tb, Config{LearnCap: 60, MultiStarts: 2})
	for i := 0; i < 60; i++ {
		lo := rng.Uniform(0, 92)
		hi := lo + rng.Uniform(2, 8)
		// Exact range average of the planted field, as an accurate answer.
		mid := exactAvg(tb, lo, hi)
		v.Record(avgSnippet(tb, lo, hi), query.ScalarEstimate{Value: mid, StdErr: 0.05})
	}
	_ = field
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}
	id := query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"}
	p, ok := v.Params(id)
	if !ok {
		t.Fatal("no params")
	}
	xcol, _ := tb.Schema().Lookup("x")
	got := p.Ells[xcol]
	if got < planted/4 || got > planted*4 {
		t.Fatalf("learned ell=%v, planted %v", got, planted)
	}
	// Learned parameters must out-score wildly wrong ones in likelihood.
	wrong := p.Clone()
	wrong.Ells[xcol] = planted * 50
	if v.LogLikelihood(id, p) < v.LogLikelihood(id, wrong) {
		t.Fatal("learned params scored below wrong params")
	}
}

func TestApplyAppendInflatesErrors(t *testing.T) {
	tb, _ := smoothTable(t, 1000, 20, 4, 0.1, 13)
	v := New(tb, Config{})
	sn := avgSnippet(tb, 10, 30)
	v.Record(sn, query.ScalarEstimate{Value: 10, StdErr: 0.5})
	id := query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"}

	drift := Drift{Mu: 2, Eta2: 1}
	v.ApplyAppend(id, drift, 900, 100) // ratio = 0.1
	e := v.modelOf(id).entries[0]
	if math.Abs(e.theta-10.2) > 1e-9 {
		t.Fatalf("theta=%v want 10.2", e.theta)
	}
	want := math.Sqrt(0.25 + 0.01)
	if math.Abs(e.beta-want) > 1e-9 {
		t.Fatalf("beta=%v want %v", e.beta, want)
	}
	// Larger appends inflate more (monotonicity property).
	v2 := New(tb, Config{})
	v2.Record(avgSnippet(tb, 10, 30), query.ScalarEstimate{Value: 10, StdErr: 0.5})
	v2.ApplyAppend(id, drift, 500, 500) // ratio = 0.5
	if v2.modelOf(id).entries[0].beta <= e.beta {
		t.Fatal("larger append ratio must inflate more")
	}
}

func TestEstimateDriftDetectsShift(t *testing.T) {
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "y", Kind: storage.Numeric, Role: storage.Measure},
	})
	old := storage.NewTable("old", schema)
	app := storage.NewTable("app", schema)
	rng := randx.New(14)
	for i := 0; i < 3000; i++ {
		if err := old.AppendRow([]storage.Value{storage.Num(rng.Uniform(0, 1)), storage.Num(rng.Normal(10, 1))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		if err := app.AppendRow([]storage.Value{storage.Num(rng.Uniform(0, 1)), storage.Num(rng.Normal(13, 1))}); err != nil {
			t.Fatal(err)
		}
	}
	ycol, _ := schema.Lookup("y")
	measure := func(t *storage.Table, row int) float64 { return t.NumAt(row, ycol) }
	d := EstimateDrift(old, app, measure, 20, 1)
	if math.Abs(d.Mu-3) > 0.3 {
		t.Fatalf("drift mu=%v want ~3", d.Mu)
	}
	if d.Eta2 < 0 {
		t.Fatalf("eta2=%v", d.Eta2)
	}
}

func TestOnAppendEndToEnd(t *testing.T) {
	tb, _ := smoothTable(t, 2000, 20, 4, 0.1, 15)
	rng := randx.New(16)
	v := New(tb, Config{})
	for i := 0; i < 10; i++ {
		lo := float64(i * 9)
		v.Record(avgSnippet(tb, lo, lo+8), noisyRaw(rng, exactAvg(tb, lo, lo+8), 0.2))
	}
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}
	// Appended data shifted upward.
	schema := tb.Schema()
	app := storage.NewTable("app", schema)
	for i := 0; i < 500; i++ {
		if err := app.AppendRow([]storage.Value{
			storage.Num(rng.Uniform(0, 100)), storage.Num(rng.Normal(20, 1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	id := query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"}
	before := v.modelOf(id).entries[0].beta
	v.OnAppend(tb, app, 1)
	after := v.modelOf(id).entries[0].beta
	if after <= before {
		t.Fatalf("append did not inflate error: %v -> %v", before, after)
	}
	// Inference still works after the adjustment.
	res := v.Infer(avgSnippet(tb, 10, 20), query.ScalarEstimate{Value: 12, StdErr: 1})
	if res.Err > 1 {
		t.Fatalf("post-append inference broken: %+v", res)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Nmax != 1000 || c.SynopsisCap != 2000 || c.Confidence != 0.95 ||
		c.ValidationConfidence != 0.99 || c.LearnCap != 150 || c.MultiStarts != 3 {
		t.Fatalf("defaults: %+v", c)
	}
	if math.Abs(c.confidenceMultiplier()-1.96) > 0.01 {
		t.Fatalf("alpha=%v", c.confidenceMultiplier())
	}
	if c.validationMultiplier() <= c.confidenceMultiplier() {
		t.Fatal("validation multiplier must exceed reporting multiplier")
	}
}

func TestFootprintGrowsWithSynopsis(t *testing.T) {
	tb, _ := smoothTable(t, 200, 20, 4, 0.1, 17)
	v := New(tb, Config{})
	empty := v.FootprintBytes()
	rng := randx.New(4)
	for i := 0; i < 20; i++ {
		lo := float64(i * 4)
		v.Record(avgSnippet(tb, lo, lo+3), noisyRaw(rng, 10, 0.3))
	}
	if v.FootprintBytes() <= empty {
		t.Fatal("footprint did not grow")
	}
}

func TestInferWithInfiniteRawError(t *testing.T) {
	// When the AQP engine has no estimate yet (β=∞ sentinel), the model
	// alone must answer with γ as the error.
	tb, _ := smoothTable(t, 1000, 25, 9, 0.1, 18)
	xcol, _ := tb.Schema().Lookup("x")
	v := New(tb, Config{})
	v.SetParams(query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"},
		kernel.Params{Sigma2: 9, Ells: map[int]float64{xcol: 25}})
	exact := exactAvg(tb, 20, 30)
	v.Record(avgSnippet(tb, 20, 30), query.ScalarEstimate{Value: exact, StdErr: 0.05})
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}
	raw := query.ScalarEstimate{Value: 0, StdErr: math.MaxFloat64}
	res := v.Infer(avgSnippet(tb, 22, 28), raw)
	if !res.UsedModel {
		t.Fatalf("model rejected with no raw info: %+v", res)
	}
	if math.Abs(res.Answer-exact) > 1.5 {
		t.Fatalf("model-only answer=%v exact=%v", res.Answer, exact)
	}
	if res.Err >= math.Sqrt(9) {
		t.Fatalf("model-only error=%v should be below prior sigma", res.Err)
	}
}
