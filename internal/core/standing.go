package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/aqp"
	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/query"
)

// Continuous queries: a subscriber registers a SQL statement once and is
// pushed a fresh model-improved estimate whenever an append, a sample
// rebuild or a training pass changes the answer materially. The economics
// are shared-scan: standing plans are deduplicated by their (trimmed) SQL
// text, every notify batch runs ONE incremental pass per unique plan — an
// ungrouped plan carries a StandingScan, a GROUP BY plan a
// GroupedStandingScan whose per-group master accumulators and incremental
// group discovery extend across appends — and the result fans out through
// a notify.Hub to any number of subscribers, each behind a bounded
// coalescing queue with its own push threshold and debounce. Threshold
// gating is per-(group, cell): a group appearing or disappearing, or the
// truncation flag flipping, always pushes (the per-cell comparison is
// meaningless across different row sets).
//
// Every pushed Result is auditable: its raw and improved cells are
// bit-identical to a fresh one-shot replay at its pinned provenance,
//
//	sys.ExecuteView(engine.ViewAtGen(SampleGen, BaseRows, SampleRows), sql)
//
// because the carried fold replays the exact batch merge tree of the
// one-shot execution (see aqp.StandingScan / aqp.GroupedStandingScan) and
// inference runs against the same published model states the replay will
// read — notify passes run after the mutation's model updates publish and
// record nothing themselves, and the plan's carried covariance memo
// (planInfer) is signature-guarded to be bit-identical to the fresh
// inference the replay performs.

// Push reasons carried on every update.
const (
	PushReasonSubscribe = "subscribe" // the initial state push at Subscribe
	PushReasonAppend    = "append"
	PushReasonRebuild   = "rebuild"
	PushReasonTrain     = "train"
)

// SubscribeOptions tunes one standing subscription.
type SubscribeOptions struct {
	// DeltaCI, when positive, suppresses pushes until some composed cell's
	// confidence half-width (at the system's reporting confidence) has
	// moved by more than this absolute amount since the last push.
	DeltaCI float64
	// DeltaRel, when positive, suppresses pushes until some cell's
	// improved estimate has moved by more than this fraction of its
	// previously pushed magnitude. With both thresholds zero every notify
	// batch pushes.
	DeltaRel float64
	// Queue bounds the subscriber's update queue (<= 0 selects
	// notify.DefaultQueue). A full queue coalesces to the latest update
	// rather than blocking the hub.
	Queue int
	// MinPushInterval debounces pushes: after a push, further updates are
	// suppressed (counted as NotifyDebounced) until the interval has
	// elapsed on the system clock (Config.Now — fake-clock testable).
	MinPushInterval time.Duration
}

// PushUpdate is one update delivered to a subscriber. Seq is per-
// subscriber, assigned at push time: strictly monotone, and gapless unless
// the subscriber's queue coalesced (a gap tells the consumer it missed
// intermediate updates). Result carries the full composed answer with its
// replay provenance.
type PushUpdate struct {
	Seq    int
	Reason string
	Result *Result
}

// Subscription is one registered standing query. Read updates with Next;
// tear down with Close (or System.Unsubscribe).
type Subscription struct {
	sys  *System
	plan *standingPlan
	sub  *notify.Sub[PushUpdate]
	opts SubscribeOptions

	// The fields below are guarded by the system's standing.mu.
	seq       int
	lastPush  time.Time
	lastCells []pushedCell
	lastKeys  []string // per-row group keys of the last push, row order
	lastTrunc bool
	hasLast   bool
	removed   bool
}

// pushedCell is the per-cell state the threshold check compares against.
type pushedCell struct{ est, ci float64 }

// Next blocks until an update, subscription close (ok=false; see
// CloseReason) or ctx cancellation (ok=false).
func (sub *Subscription) Next(ctx context.Context) (PushUpdate, bool) {
	return sub.sub.Next(ctx)
}

// TryNext pops a buffered update without blocking.
func (sub *Subscription) TryNext() (PushUpdate, bool) { return sub.sub.TryNext() }

// CloseReason is the terminal reason ("unsubscribe", "drain", ...) once
// the subscription is closed; "" while live.
func (sub *Subscription) CloseReason() string { return sub.sub.CloseReason() }

// Close unsubscribes (idempotent).
func (sub *Subscription) Close() { sub.sys.Unsubscribe(sub) }

// standingPlan is one deduplicated standing query: its pinned view (the
// generation is held against eviction between notify batches), the carried
// incremental scan — scan for ungrouped plans, gscan for GROUP BY plans;
// exactly one is non-nil — the carried inference memo, and the subscribers
// sharing it.
type standingPlan struct {
	sql     string
	view    *aqp.View
	release func()
	pl      *queryPlan
	scan    *aqp.StandingScan
	gscan   *aqp.GroupedStandingScan
	infer   planInfer
	lastUpd aqp.BatchUpdate
	lastRes *Result
	subs    []*Subscription
}

// standingState is the System-embedded continuous-query state.
type standingState struct {
	mu    sync.Mutex
	hub   *notify.Hub[PushUpdate]
	plans map[string]*standingPlan
	// hook observes each notify batch's fan-out latency (reason, duration);
	// the serving layer wires its histogram here. Set at boot.
	hook func(reason string, d time.Duration)
}

// SetNotifyHook installs the fan-out latency observer (one call per notify
// batch). Like the engine's stage timer, set it at boot.
func (s *System) SetNotifyHook(fn func(reason string, d time.Duration)) {
	s.standing.mu.Lock()
	s.standing.hook = fn
	s.standing.mu.Unlock()
}

// ActiveSubscriptions is the number of live standing subscriptions.
func (s *System) ActiveSubscriptions() int {
	s.standing.mu.Lock()
	defer s.standing.mu.Unlock()
	if s.standing.hub == nil {
		return 0
	}
	return s.standing.hub.Active()
}

// Subscribe registers sql as a standing query. The subscription
// immediately receives one update (seq 0, reason "subscribe") with the
// current full-sample answer; thereafter System.Append, RebuildSample and
// Train push refreshed answers that pass the subscription's thresholds.
// Plans are shared: K subscribers on the same SQL cost one carried scan
// per notify batch, not K. GROUP BY statements stand too: the grouped
// one-scan kernel folds incrementally (aqp.GroupedStandingScan), newly
// appearing groups join the carried fold with an exact zero backfill, and
// a changed row set (group birth/death, Nmax truncation flips —
// Result.GroupsTruncated) always pushes regardless of thresholds.
func (s *System) Subscribe(sql string, opts SubscribeOptions) (*Subscription, error) {
	key := strings.TrimSpace(sql)
	st := &s.standing
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.hub == nil {
		st.hub = notify.NewHub[PushUpdate]()
	}
	if st.plans == nil {
		st.plans = make(map[string]*standingPlan)
	}
	p, ok := st.plans[key]
	if !ok {
		var err error
		p, err = s.newStandingPlanLocked(key)
		if err != nil {
			return nil, err
		}
		st.plans[key] = p
	}
	sub := &Subscription{sys: s, plan: p, opts: opts, sub: st.hub.Subscribe(opts.Queue)}
	p.subs = append(p.subs, sub)
	s.bumpStats(func(ss *SystemStats) { ss.Subscribes++ })
	s.pushLocked(sub, p.lastRes, PushReasonSubscribe, s.cfg.Now())
	return sub, nil
}

// Unsubscribe tears one subscription down: it stops receiving updates
// (already-queued ones still drain to Next), and the last subscriber of a
// plan releases the plan's generation pin. Idempotent.
func (s *System) Unsubscribe(sub *Subscription) {
	st := &s.standing
	st.mu.Lock()
	if sub.removed {
		st.mu.Unlock()
		return
	}
	sub.removed = true
	p := sub.plan
	for i, x := range p.subs {
		if x == sub {
			p.subs = append(p.subs[:i], p.subs[i+1:]...)
			break
		}
	}
	last := len(p.subs) == 0
	if last {
		delete(st.plans, p.sql)
	}
	hub := st.hub
	st.mu.Unlock()
	hub.Unsubscribe(sub.sub, "unsubscribe")
	if last {
		p.release()
	}
}

// CloseSubscriptions ends every standing subscription with the given
// terminal reason (the serving layer's drain passes "drain"): queued
// updates drain to their consumers first, then Next reports the close.
// All generation pins are released. The standing state fully resets: a
// later Subscribe starts a fresh hub and plan set rather than inheriting
// the closed hub (whose Subscribe returns already-closed subs).
func (s *System) CloseSubscriptions(reason string) {
	st := &s.standing
	st.mu.Lock()
	hub := st.hub
	plans := st.plans
	st.hub = nil
	st.plans = nil
	for _, p := range plans {
		for _, sub := range p.subs {
			sub.removed = true
		}
		p.subs = nil
	}
	st.mu.Unlock()
	if hub != nil {
		hub.CloseAll(reason)
	}
	for _, p := range plans {
		p.release()
	}
}

// newStandingPlanLocked plans sql against a freshly pinned view and pays
// the plan's one full fold. Caller holds standing.mu.
func (s *System) newStandingPlanLocked(sql string) (*standingPlan, error) {
	view, release := s.engine.AcquirePinned()
	pl, res, err := s.plan(view, sql, obs.ModeOneShot, false, true)
	if err != nil {
		release()
		return nil, err
	}
	if pl == nil {
		release()
		return nil, fmt.Errorf("core: unsupported query cannot stand: %s", strings.Join(res.Reasons, "; "))
	}
	p := &standingPlan{sql: sql, view: view, release: release}
	upd, err := s.refreshScanLocked(p, view, pl)
	if err != nil {
		release()
		return nil, err
	}
	s.bumpStats(func(ss *SystemStats) { ss.NotifyScans++ })
	p.pl, p.lastUpd = pl, upd
	if p.lastRes, err = s.composeStanding(p, upd); err != nil {
		release()
		return nil, err
	}
	return p, nil
}

// notifyStanding is the shared fan-out pass behind Append, RebuildSample
// and Train: one incremental scan per unique plan, then threshold-gated
// pushes to that plan's subscribers. Callers invoke it after their model
// updates have published, so a pushed Result and its later replay infer
// identically.
func (s *System) notifyStanding(reason string) {
	st := &s.standing
	st.mu.Lock()
	if len(st.plans) == 0 {
		st.mu.Unlock()
		return
	}
	start := time.Now()
	s.bumpStats(func(ss *SystemStats) { ss.NotifyBatches++ })
	now := s.cfg.Now()
	for _, p := range st.plans {
		if err := s.refreshPlanLocked(p); err != nil {
			// The plan can no longer evaluate (e.g. concurrent schema
			// change); keep its last state and skip this batch.
			continue
		}
		for _, sub := range p.subs {
			s.maybePushLocked(sub, p.lastRes, reason, now)
		}
	}
	hook := st.hook
	st.mu.Unlock()
	if hook != nil {
		hook(reason, time.Since(start))
	}
}

// refreshPlanLocked advances one standing plan to the engine's current
// state: re-pin, re-plan (region bindings can shift as domains grow),
// extend the carried fold — or rebind with one full fold when the sample
// generation swapped or the plan shape changed — and recompose the
// result. Exactly one scan pass either way. Caller holds standing.mu.
func (s *System) refreshPlanLocked(p *standingPlan) error {
	view, release := s.engine.AcquirePinned()
	pl, _, err := s.plan(view, p.sql, obs.ModeOneShot, false, true)
	if err != nil || pl == nil {
		release()
		if err == nil {
			err = fmt.Errorf("core: standing query became unsupported")
		}
		return err
	}
	upd, err := s.refreshScanLocked(p, view, pl)
	if err != nil {
		release()
		return err
	}
	s.bumpStats(func(ss *SystemStats) { ss.NotifyScans++ })
	p.release()
	p.view, p.release, p.pl, p.lastUpd = view, release, pl, upd
	p.lastRes, err = s.composeStanding(p, upd)
	return err
}

// refreshScanLocked runs the plan's single incremental pass against
// (view, pl): the grouped discovery fold when the statement factored into
// a grouped spec, the per-snippet fold otherwise. Carried state extends
// when the binding holds (same generation, mode, batch size and — grouped
// — spec fingerprint; ungrouped — snippet keys) and rebinds with one full
// fold when it does not. On the grouped path pl is materialized from the
// fold's discovered groups, so its snippet list and truncation flag match
// what a one-shot execution of the same view would plan. Caller holds
// standing.mu.
func (s *System) refreshScanLocked(p *standingPlan, view *aqp.View, pl *queryPlan) (aqp.BatchUpdate, error) {
	if pl.spec != nil {
		g := p.gscan
		var gr *aqp.GroupedResult
		ok := false
		if g != nil {
			gr, ok = g.Refresh(view, pl.spec, s.nmax())
		}
		if !ok {
			g = aqp.NewGroupedStandingScan()
			if gr, ok = g.Refresh(view, pl.spec, s.nmax()); !ok { // unreachable: a first Refresh always binds
				return aqp.BatchUpdate{}, fmt.Errorf("core: grouped standing scan failed to bind")
			}
		}
		if err := pl.materialize(gr, s.nmax()); err != nil {
			return aqp.BatchUpdate{}, err
		}
		p.gscan, p.scan = g, nil
		return gr.Update, nil
	}
	scan := p.scan
	if scan == nil || !sameSnippets(p.pl.snips, pl.snips) {
		scan = aqp.NewStandingScan(pl.snips)
	}
	upd, ok := scan.Refresh(view)
	if !ok {
		scan = aqp.NewStandingScan(pl.snips)
		upd, _ = scan.Refresh(view)
	}
	p.scan, p.gscan = scan, nil
	return upd, nil
}

// composeStanding turns a plan's final BatchUpdate into a full Result —
// the same sanitize/infer/compose sequence execute runs, against a fresh
// snapshot of the published model states, with the covariance integrals
// served from the plan's carried signature-guarded memo (planInfer):
// bit-identical to full re-inference, cheap on appends where no region
// bound or length-scale moved.
func (s *System) composeStanding(p *standingPlan, upd aqp.BatchUpdate) (*Result, error) {
	snap := s.Verdict().SnapshotFor(p.pl.snips)
	improved, usedModel, _ := p.infer.inferAll(snap, p.pl.snips, upd.Estimates)
	res := &Result{
		SQL: p.sql, Supported: true,
		Epoch: p.view.Epoch, SampleGen: p.view.SampleGen,
		BaseRows: p.view.BaseRows, SampleRows: p.view.SampleRows,
		SimTime: upd.SimTime, GroupsTruncated: p.pl.truncated,
	}
	var err error
	res.Rows, err = composeRows(p.pl, upd.Estimates, improved, usedModel)
	return res, err
}

// maybePushLocked pushes res to one subscriber if its debounce window has
// passed and some cell moved past its thresholds. Caller holds
// standing.mu.
func (s *System) maybePushLocked(sub *Subscription, res *Result, reason string, now time.Time) {
	if sub.opts.MinPushInterval > 0 && now.Sub(sub.lastPush) < sub.opts.MinPushInterval {
		s.bumpStats(func(ss *SystemStats) { ss.NotifyDebounced++ })
		return
	}
	if !sub.moved(res, s.cfg.confidenceMultiplier()) {
		return
	}
	s.pushLocked(sub, res, reason, now)
}

// pushLocked delivers unconditionally, assigning the subscriber's next
// seq. Caller holds standing.mu.
func (s *System) pushLocked(sub *Subscription, res *Result, reason string, now time.Time) {
	upd := PushUpdate{Seq: sub.seq, Reason: reason, Result: res}
	coalesced, ok := sub.sub.Push(upd)
	if !ok {
		return // closed mid-teardown; nothing delivered, seq unconsumed
	}
	sub.seq++
	sub.lastPush = now
	sub.recordCells(res, s.cfg.confidenceMultiplier())
	s.bumpStats(func(ss *SystemStats) {
		ss.NotifyPushes++
		if coalesced {
			ss.NotifyCoalesced++
		}
	})
}

// moved reports whether res differs enough from the last pushed state to
// clear the subscription's thresholds. Structure changes always push —
// a group born or died (the per-row group-key sequence changed), the
// truncation flag flipped, or the cell count moved — because per-cell
// deltas are meaningless across different row sets. With both thresholds
// zero every batch pushes.
func (sub *Subscription) moved(res *Result, alpha float64) bool {
	if !sub.hasLast {
		return true
	}
	if sub.lastTrunc != res.GroupsTruncated {
		return true
	}
	keys := groupKeys(res)
	if len(keys) != len(sub.lastKeys) {
		return true
	}
	for i, k := range keys {
		if k != sub.lastKeys[i] {
			return true
		}
	}
	if sub.opts.DeltaCI <= 0 && sub.opts.DeltaRel <= 0 {
		return true
	}
	cells := flattenCells(res, alpha)
	if len(cells) != len(sub.lastCells) {
		return true
	}
	for i, c := range cells {
		prev := sub.lastCells[i]
		if sub.opts.DeltaRel > 0 {
			base := math.Abs(prev.est)
			if base < 1e-12 {
				base = 1e-12
			}
			if math.Abs(c.est-prev.est) > sub.opts.DeltaRel*base {
				return true
			}
		}
		if sub.opts.DeltaCI > 0 && math.Abs(c.ci-prev.ci) > sub.opts.DeltaCI {
			return true
		}
	}
	return false
}

func (sub *Subscription) recordCells(res *Result, alpha float64) {
	sub.lastCells = flattenCells(res, alpha)
	sub.lastKeys = groupKeys(res)
	sub.lastTrunc = res.GroupsTruncated
	sub.hasLast = true
}

// groupKeys projects a Result onto its per-row composite group keys (nil
// for the single ungrouped row) — the row-set identity the structure
// check compares.
func groupKeys(res *Result) []string {
	if len(res.Rows) == 1 && len(res.Rows[0].Group) == 0 {
		return nil
	}
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var sb strings.Builder
		for _, g := range row.Group {
			sb.WriteByte('|')
			if g.Str != "" {
				sb.WriteString(g.Str)
			} else {
				fmt.Fprintf(&sb, "%g", g.Num)
			}
		}
		out[i] = sb.String()
	}
	return out
}

// flattenCells projects a Result onto the (estimate, CI half-width) pairs
// the threshold check compares — the improved answer, like the pushed
// chunk's headline fields.
func flattenCells(res *Result, alpha float64) []pushedCell {
	var out []pushedCell
	for _, row := range res.Rows {
		for _, c := range row.Cells {
			out = append(out, pushedCell{est: c.Improved.Value, ci: alpha * c.Improved.StdErr})
		}
	}
	return out
}

func sameSnippets(a, b []*query.Snippet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}
