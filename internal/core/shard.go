package core

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/query"
)

// The synopsis is sharded by aggregate function. Per-function models are
// fully independent — no inference or maintenance ever reads across
// FuncID boundaries — so the synopsis partitions cleanly: FuncID hashes to
// one of NumShards shards, and each shard is its own single-writer domain
// (one RWMutex serializing that shard's mutators) with copy-on-write
// published per-model snapshots for lock-free readers. Record, Train and
// the append-drift adjustment therefore scale with cores as long as the
// workload touches more than one aggregate function, while Infer's fast
// path stays exactly as cheap as it was with one writer: a read-locked map
// lookup followed by lock-free O(n²) inference on an immutable snapshot.
//
// Because models are independent and learning seeds are assigned in global
// creation order (see Verdict.Train), every result — learned parameters,
// inferred answers, persisted snapshots — is invariant under the shard
// count: NumShards is purely a throughput knob.

// shard is one synopsis partition: a map of models guarded by its own
// writer lock. All mutations of a model run under mu (write-locked), so
// within a shard writers serialize — the "one writer per shard" discipline —
// while cross-shard writers proceed in parallel.
type shard struct {
	mu     sync.RWMutex
	models map[query.FuncID]*model

	// Lifetime counters, atomic so the metrics scrape never touches mu:
	// records counts snippets recorded onto this shard, trains counts model
	// train passes run on it.
	records atomic.Int64
	trains  atomic.Int64
}

func newShard() *shard {
	return &shard{models: make(map[query.FuncID]*model)}
}

// shardIndex hashes a FuncID onto [0, n): FNV-1a over the aggregate kind
// and the canonical measure key. The hash is stable across processes, so a
// persisted synopsis reloads onto the same shards (for any fixed n).
func shardIndex(id query.FuncID, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte{byte(id.Kind)})
	h.Write([]byte(id.MeasureKey))
	return int(h.Sum32() % uint32(n))
}

func (v *Verdict) shardFor(id query.FuncID) *shard {
	return v.shards[shardIndex(id, len(v.shards))]
}

// ShardStat summarizes one synopsis shard for /stats-style reporting.
type ShardStat struct {
	// Functions is the number of per-aggregate-function models on the shard.
	Functions int `json:"functions"`
	// Snippets is the total synopsis entries across the shard's models.
	Snippets int `json:"snippets"`
	// FootprintBytes approximates the shard's memory footprint (§8.5).
	FootprintBytes int `json:"footprint_bytes"`
}

// NumShards returns the number of synopsis shards.
func (v *Verdict) NumShards() int { return len(v.shards) }

// ShardCounter is one shard's cumulative write activity: snippets recorded
// and model train passes run. The counts are lifetime totals for this
// Verdict instance (a synopsis reload swaps the Verdict and restarts them).
type ShardCounter struct {
	Records int64 `json:"records"`
	Trains  int64 `json:"trains"`
}

// ShardCounters returns each shard's record/train totals, in shard order.
// Lock-free: the counters are atomics, so a metrics scrape never waits
// behind a training pass holding a shard's write lock.
func (v *Verdict) ShardCounters() []ShardCounter {
	out := make([]ShardCounter, len(v.shards))
	for i, sh := range v.shards {
		out[i] = ShardCounter{Records: sh.records.Load(), Trains: sh.trains.Load()}
	}
	return out
}

// ShardStats returns a per-shard load summary, in shard order. A skewed
// distribution means the workload's aggregate functions hash unevenly;
// with more functions than shards the FNV spread keeps shards balanced.
func (v *Verdict) ShardStats() []ShardStat {
	out := make([]ShardStat, len(v.shards))
	for i, sh := range v.shards {
		sh.mu.RLock()
		st := ShardStat{Functions: len(sh.models)}
		for _, m := range sh.models {
			st.Snippets += len(m.entries)
			st.FootprintBytes += m.footprintBytes()
		}
		sh.mu.RUnlock()
		out[i] = st
	}
	return out
}

// forEachModelParallel runs fn for every registered model, one goroutine
// per shard, each holding its shard's write lock for the duration. ids are
// visited in global creation order *within* each shard; fn receives the
// global creation index so callers can keep order-dependent state (seeds,
// first-error selection) deterministic regardless of scheduling.
func (v *Verdict) forEachModelParallel(ids []query.FuncID, fn func(globalIdx int, id query.FuncID, m *model)) {
	perShard := make(map[*shard][]int)
	for i, id := range ids {
		sh := v.shardFor(id)
		perShard[sh] = append(perShard[sh], i)
	}
	var wg sync.WaitGroup
	for sh, idxs := range perShard {
		wg.Add(1)
		go func(sh *shard, idxs []int) {
			defer wg.Done()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			for _, i := range idxs {
				if m, ok := sh.models[ids[i]]; ok {
					fn(i, ids[i], m)
				}
			}
		}(sh, idxs)
	}
	wg.Wait()
}
