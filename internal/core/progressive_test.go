package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/obs"
)

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

type streamedInc struct {
	res  *Result
	prog Progress
}

func collectProgressive(t *testing.T, s *System, sql string, opts ProgressiveOptions) []streamedInc {
	t.Helper()
	var got []streamedInc
	res, err := s.ExecuteProgressive(context.Background(), sql, opts, func(r *Result, p Progress) bool {
		got = append(got, streamedInc{res: r, prog: p})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || !got[len(got)-1].prog.Final {
		t.Fatalf("stream did not terminate with a final increment (%d increments)", len(got))
	}
	if res != got[len(got)-1].res {
		t.Fatal("returned result is not the final increment")
	}
	return got
}

// TestExecuteProgressiveIncrementsReplay: every streamed increment's raw
// cells replay float-identically through ViewAtGen + ExecuteViewPrefix —
// even after appends and a sample rebuild have moved the live engine state.
func TestExecuteProgressiveIncrementsReplay(t *testing.T) {
	s := systemFixture(t, 30000, 0.3)
	for _, sql := range []string{
		"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 5 AND 25",
		"SELECT COUNT(*) FROM sales WHERE region = 'east'",
		"SELECT region, SUM(revenue) FROM sales GROUP BY region",
	} {
		got := collectProgressive(t, s, sql, ProgressiveOptions{FirstRows: 512})
		if len(got) < 4 {
			t.Fatalf("%s: only %d increments", sql, len(got))
		}
		// Age the engine: the replay must reach back through the generation.
		if _, err := s.Append(salesBatch(t, 2000, 321)); err != nil {
			t.Fatal(err)
		}
		s.RebuildSample()
		for _, inc := range got {
			view := s.Engine().ViewAtGen(inc.res.SampleGen, inc.res.BaseRows, inc.res.SampleRows)
			if view == nil {
				t.Fatalf("%s: generation %d unavailable", sql, inc.res.SampleGen)
			}
			rep, err := s.ExecuteViewPrefix(view, sql, inc.prog.Rows)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Rows) != len(inc.res.Rows) {
				t.Fatalf("%s @%d rows: replay has %d rows, stream %d", sql, inc.prog.Rows, len(rep.Rows), len(inc.res.Rows))
			}
			for ri := range rep.Rows {
				for ci := range rep.Rows[ri].Cells {
					got, want := rep.Rows[ri].Cells[ci].Raw, inc.res.Rows[ri].Cells[ci].Raw
					if got.Value != want.Value || got.StdErr != want.StdErr {
						t.Fatalf("%s @%d rows row %d cell %d: replay %+v, stream %+v",
							sql, inc.prog.Rows, ri, ci, got, want)
					}
				}
			}
		}
	}
}

// TestExecuteProgressiveFinalMatchesExecute: increments follow the doubling
// schedule, rows strictly increase, and the final increment covers the
// sample. The final raw answer agrees with Execute's on an identical fresh
// system to floating-point noise — not bit-for-bit, because Execute's
// RunToCompletion folds the sample in BatchSize scans while the progressive
// path folds one prefix (bit-exact replay is EvalPrefix's contract, covered
// by TestExecuteProgressiveIncrementsReplay).
func TestExecuteProgressiveFinalMatchesExecute(t *testing.T) {
	sql := "SELECT AVG(revenue) FROM sales WHERE week < 30"
	a := systemFixture(t, 20000, 0.25)
	b := systemFixture(t, 20000, 0.25)
	got := collectProgressive(t, a, sql, ProgressiveOptions{FirstRows: 256})
	prev := 0
	for _, inc := range got {
		if inc.prog.Rows <= prev {
			t.Fatalf("non-increasing prefix %d after %d", inc.prog.Rows, prev)
		}
		prev = inc.prog.Rows
	}
	want, err := b.Execute(sql)
	if err != nil {
		t.Fatal(err)
	}
	final := got[len(got)-1].res
	fc, wc := final.Rows[0].Cells[0].Raw, want.Rows[0].Cells[0].Raw
	if relDiff(fc.Value, wc.Value) > 1e-9 || relDiff(fc.StdErr, wc.StdErr) > 1e-6 {
		t.Fatalf("final raw %+v far from Execute raw %+v", fc, wc)
	}
	// Full-stream completion records into the synopsis like Execute does.
	if a.Verdict().SnippetCount() == 0 {
		t.Fatal("completed stream recorded nothing")
	}
	st := a.StatsSnapshot()
	if st.Progressive != 1 || st.Increments != len(got) || st.Total != 1 {
		t.Fatalf("stats %+v after %d increments", st, len(got))
	}
}

// TestExecuteProgressiveEarlyStopAndCancel: a false yield ends the stream
// without recording; a cancelled context aborts between increments.
func TestExecuteProgressiveEarlyStopAndCancel(t *testing.T) {
	s := systemFixture(t, 20000, 0.25)
	sql := "SELECT AVG(revenue) FROM sales WHERE week < 30"

	n := 0
	res, err := s.ExecuteProgressive(context.Background(), sql, ProgressiveOptions{FirstRows: 256},
		func(r *Result, p Progress) bool {
			n++
			return n < 2
		})
	if err != nil || n != 2 || res == nil {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
	if s.Verdict().SnippetCount() != 0 {
		t.Fatal("early-stopped stream recorded a partial answer")
	}

	ctx, cancel := context.WithCancel(context.Background())
	n = 0
	_, err = s.ExecuteProgressive(ctx, sql, ProgressiveOptions{FirstRows: 256},
		func(r *Result, p Progress) bool {
			n++
			cancel()
			return true
		})
	if err != context.Canceled || n != 1 {
		t.Fatalf("cancel: n=%d err=%v", n, err)
	}
	if s.Verdict().SnippetCount() != 0 {
		t.Fatal("cancelled stream recorded a partial answer")
	}

	// An explicit schedule that stops short of the sample must not mark any
	// increment final nor record its partial estimate as a full-sample
	// answer; one that overshoots clamps and finishes normally.
	var lastProg Progress
	res, err = s.ExecuteProgressive(context.Background(), sql, ProgressiveOptions{Schedule: []int{500, 1000}},
		func(r *Result, p Progress) bool {
			lastProg = p
			return true
		})
	if err != nil || res == nil || lastProg.Final || lastProg.Rows != 1000 {
		t.Fatalf("short schedule: res=%v err=%v last=%+v", res != nil, err, lastProg)
	}
	if s.Verdict().SnippetCount() != 0 {
		t.Fatal("short schedule recorded a partial-prefix answer as full-sample")
	}
	res, err = s.ExecuteProgressive(context.Background(), sql, ProgressiveOptions{Schedule: []int{1 << 30}},
		func(r *Result, p Progress) bool {
			lastProg = p
			return true
		})
	if err != nil || !lastProg.Final || lastProg.Rows != res.SampleRows {
		t.Fatalf("overshooting schedule: err=%v last=%+v", err, lastProg)
	}
	if s.Verdict().SnippetCount() == 0 {
		t.Fatal("completed overshooting schedule recorded nothing")
	}

	// Unsupported queries return a terminal result without yielding.
	res, err = s.ExecuteProgressive(context.Background(), "SELECT MAX(revenue) FROM sales", ProgressiveOptions{},
		func(r *Result, p Progress) bool {
			t.Fatal("unsupported query yielded an increment")
			return false
		})
	if err != nil || res.Supported {
		t.Fatalf("unsupported: res=%+v err=%v", res, err)
	}
}

// TestInferSnapshotPinned: a snapshot taken before concurrent records keeps
// producing the pre-record inference, while a fresh Verdict.Infer moves.
func TestInferSnapshotPinned(t *testing.T) {
	s := systemFixture(t, 20000, 0.25)
	// Teach the synopsis enough to build a model, then train.
	for w := 0; w < 40; w += 4 {
		sql := "SELECT AVG(revenue) FROM sales WHERE week BETWEEN " + itoa(w) + " AND " + itoa(w+6)
		if _, err := s.Execute(sql); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Verdict().Train(); err != nil {
		t.Fatal(err)
	}
	view := s.Engine().Acquire()
	pl, _, err := s.plan(view, "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 11 AND 19", obs.ModeProgressive, false, false)
	if err != nil {
		t.Fatal(err)
	}
	sn := pl.snips[0]
	raw := view.EvalPrefix(pl.snips, 1000).Estimates[0]
	snap := s.Verdict().SnapshotFor(pl.snips)
	before := snap.Infer(sn, raw)
	// Mutate the synopsis behind the snapshot's back.
	for w := 1; w < 30; w += 3 {
		if _, err := s.Execute("SELECT AVG(revenue) FROM sales WHERE week BETWEEN " + itoa(w) + " AND " + itoa(w+9)); err != nil {
			t.Fatal(err)
		}
	}
	after := snap.Infer(sn, raw)
	if before != after {
		t.Fatalf("pinned snapshot moved: %+v -> %+v", before, after)
	}
	live := s.Verdict().Infer(sn, raw)
	if live == before {
		t.Log("live inference unchanged by new records (acceptable, but unusual)")
	}
}

func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
