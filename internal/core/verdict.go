package core

import (
	"sort"

	"repro/internal/kernel"
	"repro/internal/query"
	"repro/internal/storage"
)

// Verdict is the learning layer of Figure 2: it owns one model per
// aggregate function g, routes snippets to them, and exposes the offline
// (Algorithm 1) and online (Algorithm 2) processes.
type Verdict struct {
	table  *storage.Table
	cfg    Config
	models map[query.FuncID]*model
	order  []query.FuncID // deterministic iteration for Train/stats
	seed   int64
}

// New creates a Verdict instance over the given base relation.
func New(table *storage.Table, cfg Config) *Verdict {
	return &Verdict{
		table:  table,
		cfg:    cfg.withDefaults(),
		models: make(map[query.FuncID]*model),
		seed:   1,
	}
}

// Config returns the effective configuration.
func (v *Verdict) Config() Config { return v.cfg }

// modelFor returns (creating if needed) the model of the snippet's
// aggregate function.
func (v *Verdict) modelFor(sn *query.Snippet) *model {
	id := sn.Func()
	m, ok := v.models[id]
	if !ok {
		m = newModel(id, v.cfg, kernel.DefaultParams(v.table))
		v.models[id] = m
		v.order = append(v.order, id)
	}
	return m
}

// Infer computes the improved answer/error for a new snippet given the AQP
// engine's raw answer/error — one iteration of Algorithm 2's loop. It does
// not modify the synopsis; call Record afterwards.
func (v *Verdict) Infer(sn *query.Snippet, raw query.ScalarEstimate) Improved {
	return v.modelFor(sn).infer(sn, raw, v.cfg)
}

// Record inserts (q, θ, β) into the query synopsis (Algorithm 2 line 6),
// maintaining the per-function LRU quota and extending the covariance
// factorization incrementally.
func (v *Verdict) Record(sn *query.Snippet, raw query.ScalarEstimate) {
	v.modelFor(sn).record(sn, raw)
}

// Train runs the offline process of Algorithm 1 for every aggregate
// function: learn correlation parameters from the synopsis, then
// precompute the covariance factorizations.
func (v *Verdict) Train() error {
	for _, id := range v.order {
		m := v.models[id]
		v.seed++
		m.learn(v.seed)
		if err := m.rebuild(); err != nil {
			return err
		}
	}
	return nil
}

// SetParams pins the correlation parameters of one aggregate function,
// bypassing learning — the knob Appendix B.2's model-validation experiment
// (Figure 9) turns to inject deliberately wrong parameters.
func (v *Verdict) SetParams(id query.FuncID, p kernel.Params) {
	m, ok := v.models[id]
	if !ok {
		m = newModel(id, v.cfg, p)
		v.models[id] = m
		v.order = append(v.order, id)
	}
	m.params = p
	m.paramsFixed = true
	m.chol = nil
}

// Params returns the current correlation parameters of one function.
func (v *Verdict) Params(id query.FuncID) (kernel.Params, bool) {
	m, ok := v.models[id]
	if !ok {
		return kernel.Params{}, false
	}
	return m.params.Clone(), true
}

// FuncIDs lists the aggregate functions with models, in creation order.
func (v *Verdict) FuncIDs() []query.FuncID {
	return append([]query.FuncID(nil), v.order...)
}

// SnippetCount returns the total number of snippets across all models.
func (v *Verdict) SnippetCount() int {
	n := 0
	for _, m := range v.models {
		n += len(m.entries)
	}
	return n
}

// FootprintBytes approximates the total synopsis memory footprint (§8.5).
func (v *Verdict) FootprintBytes() int {
	total := 0
	for _, m := range v.models {
		total += m.footprintBytes()
	}
	return total
}

// LogLikelihood evaluates Eq. 13 for one function under arbitrary
// parameters (experiment support).
func (v *Verdict) LogLikelihood(id query.FuncID, p kernel.Params) float64 {
	m, ok := v.models[id]
	if !ok {
		return 0
	}
	return m.logLikelihood(p)
}

// SynopsisKeys returns the sorted snippet keys of one function's synopsis;
// tests use it to verify LRU behaviour.
func (v *Verdict) SynopsisKeys(id query.FuncID) []string {
	m, ok := v.models[id]
	if !ok {
		return nil
	}
	keys := make([]string, len(m.entries))
	for i, e := range m.entries {
		keys[i] = e.sn.Key()
	}
	sort.Strings(keys)
	return keys
}
