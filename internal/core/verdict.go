package core

import (
	"sort"
	"sync"

	"repro/internal/kernel"
	"repro/internal/query"
	"repro/internal/storage"
)

// Verdict is the learning layer of Figure 2: it owns one model per
// aggregate function g, routes snippets to them, and exposes the offline
// (Algorithm 1) and online (Algorithm 2) processes.
//
// Verdict is safe for concurrent use: Infer runs against an immutable
// published per-model snapshot (lock-free after a brief read-locked
// lookup), while the mutators — Record, Train, SetParams, OnAppend,
// ApplyAppend — serialize on the write lock and republish. N serving
// sessions therefore improve one shared synopsis without ever blocking each
// other's inference on a writer's O(n²) maintenance.
type Verdict struct {
	table *storage.Table
	cfg   Config
	seed  int64

	mu     sync.RWMutex
	models map[query.FuncID]*model
	order  []query.FuncID // deterministic iteration for Train/stats
}

// New creates a Verdict instance over the given base relation.
func New(table *storage.Table, cfg Config) *Verdict {
	return &Verdict{
		table:  table,
		cfg:    cfg.withDefaults(),
		models: make(map[query.FuncID]*model),
		seed:   1,
	}
}

// Config returns the effective configuration.
func (v *Verdict) Config() Config { return v.cfg }

// modelFor returns (creating if needed) the model of the snippet's
// aggregate function. Caller holds v.mu for writing.
func (v *Verdict) modelFor(sn *query.Snippet) *model {
	id := sn.Func()
	m, ok := v.models[id]
	if !ok {
		m = newModel(id, v.cfg, kernel.DefaultParams(v.table))
		v.models[id] = m
		v.order = append(v.order, id)
	}
	return m
}

// Infer computes the improved answer/error for a new snippet given the AQP
// engine's raw answer/error — one iteration of Algorithm 2's loop. It does
// not modify the synopsis; call Record afterwards.
//
// Fast path: a read-locked lookup of the published snapshot, then lock-free
// O(n²) inference. The write lock is taken only on the first inference
// after a mutation (to lazily rebuild and republish, Algorithm 1's
// precomputation) or for a never-seen aggregate function.
func (v *Verdict) Infer(sn *query.Snippet, raw query.ScalarEstimate) Improved {
	id := sn.Func()
	v.mu.RLock()
	m := v.models[id]
	var st *inferState
	if m != nil {
		st = m.published
	}
	v.mu.RUnlock()
	if st == nil {
		v.mu.Lock()
		m = v.modelFor(sn)
		st = m.publish()
		v.mu.Unlock()
	}
	return inferOn(st, sn, raw, v.cfg)
}

// Record inserts (q, θ, β) into the query synopsis (Algorithm 2 line 6),
// maintaining the per-function LRU quota and extending the covariance
// factorization incrementally. Record is the single-writer path: concurrent
// calls serialize on the write lock.
func (v *Verdict) Record(sn *query.Snippet, raw query.ScalarEstimate) {
	v.mu.Lock()
	v.modelFor(sn).record(sn, raw)
	v.mu.Unlock()
}

// Train runs the offline process of Algorithm 1 for every aggregate
// function: learn correlation parameters from the synopsis, then
// precompute the covariance factorizations.
func (v *Verdict) Train() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, id := range v.order {
		m := v.models[id]
		v.seed++
		m.learn(v.seed)
		m.mutated()
		if err := m.rebuild(); err != nil {
			return err
		}
	}
	return nil
}

// SetParams pins the correlation parameters of one aggregate function,
// bypassing learning — the knob Appendix B.2's model-validation experiment
// (Figure 9) turns to inject deliberately wrong parameters.
func (v *Verdict) SetParams(id query.FuncID, p kernel.Params) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.models[id]
	if !ok {
		m = newModel(id, v.cfg, p)
		v.models[id] = m
		v.order = append(v.order, id)
	}
	m.params = p
	m.paramsFixed = true
	m.chol = nil
	m.mutated()
}

// Params returns the current correlation parameters of one function.
func (v *Verdict) Params(id query.FuncID) (kernel.Params, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	m, ok := v.models[id]
	if !ok {
		return kernel.Params{}, false
	}
	return m.params.Clone(), true
}

// FuncIDs lists the aggregate functions with models, in creation order.
func (v *Verdict) FuncIDs() []query.FuncID {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]query.FuncID(nil), v.order...)
}

// SnippetCount returns the total number of snippets across all models.
func (v *Verdict) SnippetCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	n := 0
	for _, m := range v.models {
		n += len(m.entries)
	}
	return n
}

// FootprintBytes approximates the total synopsis memory footprint (§8.5).
func (v *Verdict) FootprintBytes() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	total := 0
	for _, m := range v.models {
		total += m.footprintBytes()
	}
	return total
}

// LogLikelihood evaluates Eq. 13 for one function under arbitrary
// parameters (experiment support).
func (v *Verdict) LogLikelihood(id query.FuncID, p kernel.Params) float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	m, ok := v.models[id]
	if !ok {
		return 0
	}
	return m.logLikelihood(p)
}

// SynopsisKeys returns the sorted snippet keys of one function's synopsis;
// tests use it to verify LRU behaviour.
func (v *Verdict) SynopsisKeys(id query.FuncID) []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	m, ok := v.models[id]
	if !ok {
		return nil
	}
	keys := make([]string, len(m.entries))
	for i, e := range m.entries {
		keys[i] = e.sn.Key()
	}
	sort.Strings(keys)
	return keys
}
