package core

import (
	"sort"
	"sync"

	"repro/internal/kernel"
	"repro/internal/query"
	"repro/internal/storage"
)

// Verdict is the learning layer of Figure 2: it owns one model per
// aggregate function g, routes snippets to them, and exposes the offline
// (Algorithm 1) and online (Algorithm 2) processes.
//
// Verdict is safe for concurrent use and sharded for write throughput:
// each aggregate function's model lives on one of Config.NumShards shards
// (hash of FuncID), and every shard is an independent single-writer domain
// — see shard.go for the discipline. Infer runs against an immutable
// published per-model snapshot (lock-free after a brief read-locked
// lookup), while the mutators — Record, Train, SetParams, OnAppend,
// ApplyAppend — serialize only with other writers of the *same shard* and
// republish. N serving sessions therefore improve one shared synopsis with
// writer throughput that scales with cores, without ever blocking each
// other's inference on a writer's O(n²) maintenance.
type Verdict struct {
	table  *storage.Table
	cfg    Config
	shards []*shard

	// regMu guards the cross-shard registry: the global creation order of
	// aggregate functions and the deterministic learning-seed counter.
	// Lock order: a shard's mu may be held while taking regMu, never the
	// reverse.
	regMu sync.Mutex
	order []query.FuncID
	seed  int64
}

// New creates a Verdict instance over the given base relation.
func New(table *storage.Table, cfg Config) *Verdict {
	cfg = cfg.withDefaults()
	shards := make([]*shard, cfg.NumShards)
	for i := range shards {
		shards[i] = newShard()
	}
	return &Verdict{
		table:  table,
		cfg:    cfg,
		shards: shards,
		seed:   1,
	}
}

// Config returns the effective configuration.
func (v *Verdict) Config() Config { return v.cfg }

// register appends a newly created function to the global creation order.
// Callers hold the owning shard's write lock (see the lock-order note on
// regMu).
func (v *Verdict) register(id query.FuncID) {
	v.regMu.Lock()
	v.order = append(v.order, id)
	v.regMu.Unlock()
}

// modelForLocked returns (creating and registering if needed) the model of
// the snippet's aggregate function. Caller holds sh's write lock, and sh
// must be the snippet function's shard.
func (v *Verdict) modelForLocked(sh *shard, sn *query.Snippet) *model {
	id := sn.Func()
	m, ok := sh.models[id]
	if !ok {
		m = newModel(id, v.cfg, kernel.DefaultParams(v.table))
		sh.models[id] = m
		v.register(id)
	}
	return m
}

// modelOf returns the model of one function, or nil — introspection for
// tests; the returned model must only be read while no writer is active.
func (v *Verdict) modelOf(id query.FuncID) *model {
	sh := v.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.models[id]
}

// Infer computes the improved answer/error for a new snippet given the AQP
// engine's raw answer/error — one iteration of Algorithm 2's loop. It does
// not modify the synopsis; call Record afterwards.
//
// Fast path: a read-locked lookup of the shard's published snapshot, then
// lock-free O(n²) inference. The shard write lock is taken only on the
// first inference after a mutation (to lazily rebuild and republish,
// Algorithm 1's precomputation) or for a never-seen aggregate function.
func (v *Verdict) Infer(sn *query.Snippet, raw query.ScalarEstimate) Improved {
	id := sn.Func()
	sh := v.shardFor(id)
	sh.mu.RLock()
	m := sh.models[id]
	var st *inferState
	if m != nil {
		st = m.published
	}
	sh.mu.RUnlock()
	if st == nil {
		sh.mu.Lock()
		m = v.modelForLocked(sh, sn)
		st = m.publish()
		sh.mu.Unlock()
	}
	return inferOn(st, sn, raw, v.cfg)
}

// Record inserts (q, θ, β) into the query synopsis (Algorithm 2 line 6),
// maintaining the per-function LRU quota and extending the covariance
// factorization incrementally. Record is the per-shard single-writer path:
// concurrent calls for functions on the same shard serialize on that
// shard's write lock; calls landing on different shards run in parallel.
func (v *Verdict) Record(sn *query.Snippet, raw query.ScalarEstimate) {
	sh := v.shardFor(sn.Func())
	sh.mu.Lock()
	v.modelForLocked(sh, sn).record(sn, raw)
	sh.mu.Unlock()
	sh.records.Add(1)
}

// Train runs the offline process of Algorithm 1 for every aggregate
// function: learn correlation parameters from the synopsis, then
// precompute the covariance factorizations. Shards train in parallel;
// learning seeds are assigned in global creation order first, so the
// result is identical to a serial run and invariant under NumShards.
func (v *Verdict) Train() error {
	v.regMu.Lock()
	ids := append([]query.FuncID(nil), v.order...)
	seeds := make([]int64, len(ids))
	for i := range ids {
		v.seed++
		seeds[i] = v.seed
	}
	v.regMu.Unlock()

	errs := make([]error, len(ids))
	v.forEachModelParallel(ids, func(i int, id query.FuncID, m *model) {
		m.learn(seeds[i])
		m.mutated()
		errs[i] = m.rebuild()
		v.shardFor(id).trains.Add(1)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SetParams pins the correlation parameters of one aggregate function,
// bypassing learning — the knob Appendix B.2's model-validation experiment
// (Figure 9) turns to inject deliberately wrong parameters.
func (v *Verdict) SetParams(id query.FuncID, p kernel.Params) {
	sh := v.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.models[id]
	if !ok {
		m = newModel(id, v.cfg, p)
		sh.models[id] = m
		v.register(id)
	}
	m.params = p
	m.paramsFixed = true
	m.chol = nil
	m.mutated()
}

// Params returns the current correlation parameters of one function.
func (v *Verdict) Params(id query.FuncID) (kernel.Params, bool) {
	sh := v.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m, ok := sh.models[id]
	if !ok {
		return kernel.Params{}, false
	}
	return m.params.Clone(), true
}

// FuncIDs lists the aggregate functions with models, in creation order.
func (v *Verdict) FuncIDs() []query.FuncID {
	v.regMu.Lock()
	defer v.regMu.Unlock()
	return append([]query.FuncID(nil), v.order...)
}

// SnippetCount returns the total number of snippets across all models.
func (v *Verdict) SnippetCount() int {
	n := 0
	for _, sh := range v.shards {
		sh.mu.RLock()
		for _, m := range sh.models {
			n += len(m.entries)
		}
		sh.mu.RUnlock()
	}
	return n
}

// FootprintBytes approximates the total synopsis memory footprint (§8.5).
func (v *Verdict) FootprintBytes() int {
	total := 0
	for _, sh := range v.shards {
		sh.mu.RLock()
		for _, m := range sh.models {
			total += m.footprintBytes()
		}
		sh.mu.RUnlock()
	}
	return total
}

// LogLikelihood evaluates Eq. 13 for one function under arbitrary
// parameters (experiment support).
func (v *Verdict) LogLikelihood(id query.FuncID, p kernel.Params) float64 {
	sh := v.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m, ok := sh.models[id]
	if !ok {
		return 0
	}
	return m.logLikelihood(p)
}

// SynopsisKeys returns the sorted snippet keys of one function's synopsis;
// tests use it to verify LRU behaviour.
func (v *Verdict) SynopsisKeys(id query.FuncID) []string {
	sh := v.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m, ok := sh.models[id]
	if !ok {
		return nil
	}
	keys := make([]string, len(m.entries))
	for i, e := range m.entries {
		keys[i] = e.sn.Key()
	}
	sort.Strings(keys)
	return keys
}
