package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
)

// multiMeasureTable builds a relation with one dimension and nMeasures
// measure columns, so workloads can exercise many aggregate functions
// (each measure column is its own FuncID and hashes to its own shard).
func multiMeasureTable(t testing.TB, rows, nMeasures int) *storage.Table {
	t.Helper()
	defs := []storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 100},
	}
	for i := 0; i < nMeasures; i++ {
		defs = append(defs, storage.ColumnDef{
			Name: fmt.Sprintf("m%d", i), Kind: storage.Numeric, Role: storage.Measure,
		})
	}
	schema := storage.MustSchema(defs)
	tb := storage.NewTable("multi", schema)
	rng := randx.New(11)
	vals := make([]storage.Value, len(defs))
	for r := 0; r < rows; r++ {
		x := rng.Uniform(0, 100)
		vals[0] = storage.Num(x)
		for i := 0; i < nMeasures; i++ {
			vals[i+1] = storage.Num(float64(i+1)*10 + x + rng.Normal(0, 1))
		}
		if err := tb.AppendRow(vals); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// measureSnippet builds an AVG(m<i>) snippet over x ∈ [lo, hi].
func measureSnippet(tb *storage.Table, i int, lo, hi float64) *query.Snippet {
	g := query.NewRegion(tb.Schema())
	xcol, _ := tb.Schema().Lookup("x")
	g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi})
	key := fmt.Sprintf("m%d", i)
	mcol, _ := tb.Schema().Lookup(key)
	return &query.Snippet{
		Kind:       query.AvgAgg,
		MeasureKey: key,
		Measure:    func(t *storage.Table, row int) float64 { return t.NumAt(row, mcol) },
		Region:     g,
		Table:      tb,
	}
}

// recordWorkload records nPerFunc snippets for each of nFuncs aggregate
// functions, deterministically.
func recordWorkload(t testing.TB, v *Verdict, tb *storage.Table, nFuncs, nPerFunc int) {
	t.Helper()
	rng := randx.New(23)
	for k := 0; k < nPerFunc; k++ {
		for i := 0; i < nFuncs; i++ {
			lo := rng.Uniform(0, 90)
			v.Record(measureSnippet(tb, i, lo, lo+rng.Uniform(3, 8)),
				query.ScalarEstimate{Value: rng.Normal(float64(i+1)*10+50, 2), StdErr: 0.3})
		}
	}
}

// The shard count is a pure throughput knob: learned parameters, inferred
// answers, synopsis keys and persisted bytes must be identical at 1, 4 and
// 16 shards for the same workload.
func TestShardCountInvariance(t *testing.T) {
	tb := multiMeasureTable(t, 4000, 6)
	build := func(shards int) *Verdict {
		v := New(tb, Config{NumShards: shards})
		recordWorkload(t, v, tb, 6, 8)
		if err := v.Train(); err != nil {
			t.Fatal(err)
		}
		return v
	}
	ref := build(1)
	probe := func(v *Verdict, i int) Improved {
		return v.Infer(measureSnippet(tb, i, 40, 46), query.ScalarEstimate{Value: float64(i+1)*10 + 93, StdErr: 0.8})
	}
	var refSave bytes.Buffer
	if err := ref.Save(&refSave); err != nil {
		t.Fatal(err)
	}
	// Strip the shard-count field for the byte comparison: it is the one
	// intentionally shard-dependent datum in the snapshot.
	norm := func(b []byte) []byte {
		return bytes.Replace(b, []byte(`"shards": 16`), []byte(`"shards": 1`),
			1)
	}
	for _, shards := range []int{4, 16} {
		v := build(shards)
		if v.NumShards() != shards {
			t.Fatalf("NumShards=%d want %d", v.NumShards(), shards)
		}
		for i := 0; i < 6; i++ {
			id := query.FuncID{Kind: query.AvgAgg, MeasureKey: fmt.Sprintf("m%d", i)}
			rk, vk := ref.SynopsisKeys(id), v.SynopsisKeys(id)
			if len(rk) != len(vk) {
				t.Fatalf("shards=%d m%d: %d keys vs %d", shards, i, len(vk), len(rk))
			}
			for j := range rk {
				if rk[j] != vk[j] {
					t.Fatalf("shards=%d m%d key %d: %q vs %q", shards, i, j, vk[j], rk[j])
				}
			}
			ri, vi := probe(ref, i), probe(v, i)
			if ri.Answer != vi.Answer || ri.Err != vi.Err || ri.UsedModel != vi.UsedModel {
				t.Fatalf("shards=%d m%d: infer %+v vs %+v", shards, i, vi, ri)
			}
		}
		if ref.SnippetCount() != v.SnippetCount() {
			t.Fatalf("snippet counts: %d vs %d", v.SnippetCount(), ref.SnippetCount())
		}
	}
	// Persistence round-trips across shard counts: a 16-shard save loads
	// onto 1 shard (and vice versa) with identical inference.
	v16 := build(16)
	var save16 bytes.Buffer
	if err := v16.Save(&save16); err != nil {
		t.Fatal(err)
	}
	if got, want := norm(save16.Bytes()), refSave.Bytes(); !bytes.Equal(got, want) {
		t.Fatal("save bytes differ between 1 and 16 shards")
	}
	loaded, err := Load(bytes.NewReader(save16.Bytes()), tb, Config{NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		ri, li := probe(ref, i), probe(loaded, i)
		if ri.UsedModel != li.UsedModel || abs64(ri.Answer-li.Answer) > 1e-9 {
			t.Fatalf("loaded m%d: %+v vs %+v", i, li, ri)
		}
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Concurrent writers on distinct aggregate functions must be race-free and
// lose nothing; cross-checks the per-shard accounting (meaningful under
// -race).
func TestShardedConcurrentRecordTrainInfer(t *testing.T) {
	tb := multiMeasureTable(t, 2000, 8)
	v := New(tb, Config{NumShards: 4})
	const perFunc = 30
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := randx.New(int64(100 + i))
			for k := 0; k < perFunc; k++ {
				lo := rng.Uniform(0, 90)
				v.Record(measureSnippet(tb, i, lo, lo+3),
					query.ScalarEstimate{Value: rng.Normal(0, 1), StdErr: 0.5})
				// Interleave lock-free reads with the writes.
				_ = v.Infer(measureSnippet(tb, i, 20, 30), query.ScalarEstimate{Value: 0, StdErr: 1})
				_ = v.SnippetCount()
			}
		}(i)
	}
	wg.Wait()
	if got := v.SnippetCount(); got != 8*perFunc {
		t.Fatalf("SnippetCount=%d want %d", got, 8*perFunc)
	}
	if got := len(v.FuncIDs()); got != 8 {
		t.Fatalf("FuncIDs=%d want 8", got)
	}
	stats := v.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats len=%d", len(stats))
	}
	snippets, funcs := 0, 0
	for _, st := range stats {
		snippets += st.Snippets
		funcs += st.Functions
	}
	if snippets != 8*perFunc || funcs != 8 {
		t.Fatalf("shard totals: %d snippets / %d funcs", snippets, funcs)
	}
	if err := v.Train(); err != nil {
		t.Fatal(err)
	}
	inf := v.Infer(measureSnippet(tb, 3, 40, 43), query.ScalarEstimate{Value: 0.2, StdErr: 0.6})
	if inf.Err <= 0 {
		t.Fatalf("inference after concurrent build: %+v", inf)
	}
}

// Eight distinct aggregate functions over the default 8 shards must spread
// across more than one shard (the FNV hash does not collapse).
func TestShardDistribution(t *testing.T) {
	tb := multiMeasureTable(t, 500, 8)
	v := New(tb, Config{})
	if v.NumShards() != DefaultNumShards {
		t.Fatalf("default shards=%d want %d", v.NumShards(), DefaultNumShards)
	}
	rng := randx.New(5)
	for i := 0; i < 8; i++ {
		v.Record(measureSnippet(tb, i, 10, 20), query.ScalarEstimate{Value: rng.Normal(0, 1), StdErr: 1})
	}
	nonEmpty := 0
	for _, st := range v.ShardStats() {
		if st.Functions > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Fatalf("8 functions landed on %d shard(s); hash is collapsing", nonEmpty)
	}
}

// Writer independence, proven deterministically (wall-clock scaling needs
// cores, but lock independence does not): while one shard's writer lock is
// held, a Record destined for a different shard completes; a Record for
// the held shard blocks until release.
func TestRecordCrossShardDoesNotBlock(t *testing.T) {
	tb := multiMeasureTable(t, 500, 16)
	v := New(tb, Config{NumShards: 4})
	// Materialize models so shard assignment is observable.
	for i := 0; i < 16; i++ {
		v.Record(measureSnippet(tb, i, 10, 15), query.ScalarEstimate{Value: 1, StdErr: 1})
	}
	// Find two functions on different shards and one pair on the same.
	shardOf := func(i int) int {
		id := query.FuncID{Kind: query.AvgAgg, MeasureKey: fmt.Sprintf("m%d", i)}
		return shardIndex(id, v.NumShards())
	}
	held := 0
	other := -1
	for i := 1; i < 16; i++ {
		if shardOf(i) != shardOf(held) {
			other = i
			break
		}
	}
	if other < 0 {
		t.Fatal("all functions hashed to one shard")
	}

	sh := v.shards[shardOf(held)]
	sh.mu.Lock() // simulate a long write on shard A (e.g. an O(n²) extension)

	crossDone := make(chan struct{})
	go func() {
		v.Record(measureSnippet(tb, other, 20, 25), query.ScalarEstimate{Value: 1, StdErr: 1})
		close(crossDone)
	}()
	select {
	case <-crossDone:
	case <-time.After(5 * time.Second):
		sh.mu.Unlock()
		t.Fatal("Record on a different shard blocked behind shard A's writer")
	}

	sameDone := make(chan struct{})
	go func() {
		v.Record(measureSnippet(tb, held, 20, 25), query.ScalarEstimate{Value: 1, StdErr: 1})
		close(sameDone)
	}()
	select {
	case <-sameDone:
		t.Fatal("Record on the held shard did not serialize behind its writer")
	case <-time.After(50 * time.Millisecond):
	}
	sh.mu.Unlock()
	select {
	case <-sameDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Record never completed after the shard writer released")
	}
}
