package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/aqp"
	"repro/internal/obs"
)

// Progressive query execution: the online-aggregation pipeline behind the
// serving layer's /query/stream. One stream pins one engine view (snapshot
// isolation against appends and sample rebuilds — the generation is also
// pinned against replay-horizon eviction for the stream's lifetime) and one
// InferSnapshot (coherent Bayesian adjustment against a fixed synopsis),
// then walks the sample in growing prefix increments; every partial answer
// carries the model-improved estimate and its shrinking confidence
// interval. The raw side of each increment is replayable bit-for-bit
// afterwards via Engine.ViewAtGen + ExecuteViewPrefix, and a dropped stream
// is resumable mid-sample via ExecuteProgressiveFrom: the cursor prefix is
// folded once (aqp.ProgressiveFrom), so the resumed stream's remaining
// increments are bit-identical to the ones the uninterrupted stream would
// have emitted.

// Progress describes one emitted progressive increment.
type Progress struct {
	// Seq is the 0-based increment index; Rows is the sample prefix the
	// increment reflects, out of SampleRows total.
	Seq        int
	Rows       int
	SampleRows int
	// SimTime is the simulated AQP latency of the prefix scanned so far.
	SimTime time.Duration
	// Final marks the increment that consumed the whole sample.
	Final bool
	// TargetMet marks the increment whose raw confidence interval first
	// satisfied ProgressiveOptions.TargetCI; the stream stops with it.
	TargetMet bool
}

// ProgressiveOptions tunes ExecuteProgressive.
type ProgressiveOptions struct {
	// FirstRows is the first increment's row budget, doubling thereafter;
	// <= 0 selects aqp.DefaultFirstPrefix.
	FirstRows int
	// Schedule, when non-empty, is an explicit list of prefix budgets and
	// overrides FirstRows.
	Schedule []int
	// Workers caps the per-increment scan fan-out (0 = GOMAXPROCS).
	Workers int
	// TargetCI, when positive, is the server-side stop condition of online
	// aggregation: the stream ends at the first increment whose raw
	// confidence half-width — at the system's configured reporting
	// confidence, default 95% (Config.Confidence) — is <= TargetCI for
	// every result cell (absolute by default; relative to each cell's raw
	// estimate when TargetRelative is set). A target stop is not sample
	// exhaustion, so nothing is recorded into the synopsis.
	TargetCI float64
	// TargetRelative interprets TargetCI as a fraction of each cell's raw
	// estimate magnitude instead of an absolute half-width.
	TargetRelative bool
}

// ProgressiveCursor names the resume point of an interrupted progressive
// stream: the pinned snapshot triple that reconstructs its view
// (Engine.PinGen), the prefix already consumed, and the sequence number of
// the last increment the client received. Epoch is carried through verbatim
// so resumed results report the original serving view's epoch.
type ProgressiveCursor struct {
	SampleGen  uint64
	Epoch      uint64
	BaseRows   int
	SampleRows int
	RowsSeen   int
	Seq        int
}

// ErrCursorMismatch reports a resume cursor inconsistent with the stream it
// claims to continue: coordinates that don't name a valid increment of the
// schedule, a snapshot prefix the generation never had, or a stream that
// already completed.
var ErrCursorMismatch = errors.New("core: cursor does not match a resumable stream position")

// ExecuteProgressive runs one SQL query as an online-aggregation stream:
// yield is invoked once per increment with a complete Result (raw and
// improved cells for every group) and its Progress. The stream stops when
// the sample is exhausted (the Final increment, which is then recorded into
// the synopsis exactly as Execute would record it), when the raw confidence
// interval meets opts.TargetCI (Progress.TargetMet; nothing recorded), when
// yield returns false (accuracy is good enough — nothing is recorded, since
// a partial prefix must not teach the synopsis a full-sample answer), or
// when ctx is cancelled between increments (client gone; nothing recorded,
// error returned). Unsupported queries return a terminal Result without
// yielding. The stream's sample generation is pinned against replay-horizon
// eviction until it returns.
func (s *System) ExecuteProgressive(ctx context.Context, sql string, opts ProgressiveOptions, yield func(*Result, Progress) bool) (*Result, error) {
	view, release := s.engine.AcquirePinned()
	defer release()
	return s.runProgressive(ctx, sql, opts, view, view.Epoch, 0, -1, false, yield)
}

// ExecuteProgressiveFrom resumes an interrupted progressive stream from its
// cursor: the cursor's generation is re-pinned (Engine.PinGen — an evicted
// generation fails with aqp.ErrGenEvicted so the serving layer can tell the
// client to restart), a fresh InferSnapshot is taken, and the increment
// loop is entered mid-sample by folding the cursor prefix once. Provided
// the synopsis has not learned in between, every resumed increment is
// bit-identical to the one the uninterrupted stream would have emitted at
// the same budget — raw cells unconditionally, improved cells because the
// snapshot pins the same published states. opts must carry the original
// stream's schedule parameters (the serving layer enforces this with a
// request fingerprint); a cursor that does not name increment opts'
// schedule[cur.Seq] fails with ErrCursorMismatch.
func (s *System) ExecuteProgressiveFrom(ctx context.Context, sql string, opts ProgressiveOptions, cur ProgressiveCursor, yield func(*Result, Progress) bool) (*Result, error) {
	if cur.RowsSeen < 0 || cur.Seq < 0 || cur.BaseRows < 0 || cur.SampleRows <= 0 {
		return nil, fmt.Errorf("cursor (gen %d, seq %d, rows %d/%d of base %d) is malformed: %w",
			cur.SampleGen, cur.Seq, cur.RowsSeen, cur.SampleRows, cur.BaseRows, ErrCursorMismatch)
	}
	view, release, err := s.engine.PinGen(cur.SampleGen, cur.BaseRows, cur.SampleRows)
	if err != nil {
		return nil, err
	}
	defer release()
	// SnapshotAt clamps silently; a cursor naming rows the generation never
	// had must fail loudly instead of resuming against a different prefix.
	if view.SampleRows != cur.SampleRows || view.BaseRows != cur.BaseRows {
		return nil, fmt.Errorf("generation %d holds a (%d base, %d sample) prefix, cursor names (%d, %d): %w",
			cur.SampleGen, view.BaseRows, view.SampleRows, cur.BaseRows, cur.SampleRows, ErrCursorMismatch)
	}
	if cur.RowsSeen >= cur.SampleRows {
		return nil, fmt.Errorf("cursor at row %d of %d: stream already complete: %w", cur.RowsSeen, cur.SampleRows, ErrCursorMismatch)
	}
	return s.runProgressive(ctx, sql, opts, view, cur.Epoch, cur.RowsSeen, cur.Seq, true, yield)
}

// runProgressive is the shared increment loop behind ExecuteProgressive
// (startRows 0, startSeq -1) and ExecuteProgressiveFrom. The caller owns
// the view's pin.
func (s *System) runProgressive(ctx context.Context, sql string, opts ProgressiveOptions, view *aqp.View, epoch uint64, startRows, startSeq int, resumed bool, yield func(*Result, Progress) bool) (*Result, error) {
	verdict := s.Verdict()
	pl, res, err := s.plan(view, sql, obs.ModeProgressive, !resumed, false)
	if err != nil || pl == nil {
		return res, err
	}
	sched := opts.Schedule
	if len(sched) == 0 {
		sched = aqp.PrefixSchedule(view.SampleRows, opts.FirstRows)
	}
	if resumed {
		// The cursor must name an increment of this exact schedule, or the
		// resumed chunks could never line up with the original stream's.
		if startSeq >= len(sched) || sched[startSeq] != startRows {
			return nil, fmt.Errorf("cursor (seq %d, rows %d) does not lie on the stream's schedule: %w",
				startSeq, startRows, ErrCursorMismatch)
		}
		sched = sched[startSeq+1:]
	}
	emitted := 0
	defer func() {
		s.bumpStats(func(st *SystemStats) {
			if resumed {
				st.Resumed++
			} else {
				st.Progressive++
			}
			st.Increments += emitted
		})
	}()

	snap := verdict.SnapshotFor(pl.snips)
	// The workers cap goes in up front so the resume entry fold — the one
	// O(startRows) scan — honors it too, not just later Steps.
	ps := view.ProgressiveFrom(pl.snips, startRows, startSeq, opts.Workers)

	var inferNS int64
	var last *Result
	for _, prefix := range sched {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		inc := ps.Step(prefix)
		t0 := time.Now()
		improved, usedModel, improvedCount := inferAll(snap, pl.snips, inc.Estimates)
		inferNS += time.Since(t0).Nanoseconds()
		if s.cfg.Stages != nil {
			s.observeStage(obs.StageInfer, obs.ModeProgressive, len(pl.stmt.GroupBy) > 0, t0)
		}
		r := &Result{
			SQL: sql, Supported: true,
			Epoch: epoch, SampleGen: view.SampleGen,
			BaseRows: view.BaseRows, SampleRows: view.SampleRows,
			SimTime:         inc.SimTime,
			Overhead:        time.Duration(inferNS),
			GroupsTruncated: pl.truncated,
		}
		if r.Rows, err = composeRows(pl, inc.Estimates, improved, usedModel); err != nil {
			return nil, err
		}
		emitted++
		last = r
		// Final means the sample really was exhausted (inc.Final), never
		// merely "last schedule entry": an explicit short Schedule must not
		// record its partial-prefix estimate as a full-sample answer.
		if inc.Final {
			// Full sample consumed: the raw answers are exactly what Execute
			// would have recorded. If the original stream also completed
			// server-side before the client resumed, this re-record is
			// idempotent — the synopsis dedupes by snippet key, keeping the
			// lower-error answer (model.record), so nothing is counted twice.
			for j, sn := range pl.snips {
				if inc.Valid[j] {
					verdict.Record(sn, aqp.Sanitize(inc.Estimates[j]))
				}
			}
			s.bumpStats(func(st *SystemStats) {
				st.Improved += improvedCount
				st.InferenceNS += inferNS
			})
		}
		targetMet := !inc.Final && s.targetMet(r.Rows, opts)
		cont := yield(r, Progress{
			Seq: inc.Seq, Rows: inc.Rows, SampleRows: view.SampleRows,
			SimTime: inc.SimTime, Final: inc.Final, TargetMet: targetMet,
		})
		if inc.Final || targetMet || !cont {
			return r, nil
		}
	}
	// An explicit Schedule ended before the sample was exhausted: return the
	// last partial answer; nothing was recorded.
	return last, nil
}

// targetMet reports whether every result cell's raw confidence interval
// satisfies the stream's error target. Cells whose estimate is not yet
// usable carry a sanitized MaxFloat64 standard error, so they keep the
// stream running rather than vacuously passing.
func (s *System) targetMet(rows []ResultRow, opts ProgressiveOptions) bool {
	if opts.TargetCI <= 0 || len(rows) == 0 {
		return false
	}
	alpha := s.cfg.confidenceMultiplier()
	for _, row := range rows {
		for _, cell := range row.Cells {
			ci := alpha * cell.Raw.StdErr
			bound := opts.TargetCI
			if opts.TargetRelative {
				bound *= math.Abs(cell.Raw.Value)
			}
			if !(ci <= bound) { // NaN-safe: a NaN CI never meets the target
				return false
			}
		}
	}
	return true
}

// ExecuteViewPrefix replays the increment a progressive query emitted at a
// given sample prefix: one fresh scan of [0, rows) against an explicit
// (usually ViewAtGen-reconstructed) view. Replays are side-effect-free —
// nothing is recorded and no counters move. Raw answers are float-identical
// to the streamed increment; improved answers reflect the synopsis at
// replay time, which has typically learned more since.
func (s *System) ExecuteViewPrefix(view *aqp.View, sql string, rows int) (*Result, error) {
	pl, res, err := s.plan(view, sql, obs.ModeProgressive, false, false)
	if err != nil || pl == nil {
		return res, err
	}
	res.GroupsTruncated = pl.truncated
	inc := view.EvalPrefix(pl.snips, rows)
	improved, usedModel, _ := inferAll(s.Verdict().SnapshotFor(pl.snips), pl.snips, inc.Estimates)
	if res.Rows, err = composeRows(pl, inc.Estimates, improved, usedModel); err != nil {
		return nil, err
	}
	res.SimTime = inc.SimTime
	return res, nil
}
