package core

import (
	"context"
	"time"

	"repro/internal/aqp"
)

// Progressive query execution: the online-aggregation pipeline behind the
// serving layer's /query/stream. One stream pins one engine view (snapshot
// isolation against appends and sample rebuilds) and one InferSnapshot
// (coherent Bayesian adjustment against a fixed synopsis), then walks the
// sample in growing prefix increments; every partial answer carries the
// model-improved estimate and its shrinking confidence interval. The raw
// side of each increment is replayable bit-for-bit afterwards via
// Engine.ViewAtGen + ExecuteViewPrefix.

// Progress describes one emitted progressive increment.
type Progress struct {
	// Seq is the 0-based increment index; Rows is the sample prefix the
	// increment reflects, out of SampleRows total.
	Seq        int
	Rows       int
	SampleRows int
	// SimTime is the simulated AQP latency of the prefix scanned so far.
	SimTime time.Duration
	// Final marks the increment that consumed the whole sample.
	Final bool
}

// ProgressiveOptions tunes ExecuteProgressive.
type ProgressiveOptions struct {
	// FirstRows is the first increment's row budget, doubling thereafter;
	// <= 0 selects aqp.DefaultFirstPrefix.
	FirstRows int
	// Schedule, when non-empty, is an explicit list of prefix budgets and
	// overrides FirstRows.
	Schedule []int
	// Workers caps the per-increment scan fan-out (0 = GOMAXPROCS).
	Workers int
}

// ExecuteProgressive runs one SQL query as an online-aggregation stream:
// yield is invoked once per increment with a complete Result (raw and
// improved cells for every group) and its Progress. The stream stops when
// the sample is exhausted (the Final increment, which is then recorded into
// the synopsis exactly as Execute would record it), when yield returns
// false (accuracy is good enough — nothing is recorded, since a partial
// prefix must not teach the synopsis a full-sample answer), or when ctx is
// cancelled between increments (client gone; nothing recorded, error
// returned). Unsupported queries return a terminal Result without yielding.
func (s *System) ExecuteProgressive(ctx context.Context, sql string, opts ProgressiveOptions, yield func(*Result, Progress) bool) (*Result, error) {
	view := s.engine.Acquire()
	verdict := s.Verdict()
	pl, res, err := s.plan(view, sql, true)
	if err != nil || pl == nil {
		return res, err
	}
	emitted := 0
	defer func() {
		s.bumpStats(func(st *SystemStats) {
			st.Progressive++
			st.Increments += emitted
		})
	}()

	snap := verdict.SnapshotFor(pl.snips)
	ps := view.Progressive(pl.snips)
	if opts.Workers > 0 {
		ps.SetWorkers(opts.Workers)
	}
	sched := opts.Schedule
	if len(sched) == 0 {
		sched = aqp.PrefixSchedule(view.SampleRows, opts.FirstRows)
	}

	var inferNS int64
	var last *Result
	for _, prefix := range sched {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		inc := ps.Step(prefix)
		t0 := time.Now()
		improved, usedModel, improvedCount := inferAll(snap, pl.snips, inc.Estimates)
		inferNS += time.Since(t0).Nanoseconds()
		r := &Result{
			SQL: sql, Supported: true,
			Epoch: view.Epoch, SampleGen: view.SampleGen,
			BaseRows: view.BaseRows, SampleRows: view.SampleRows,
			SimTime:  inc.SimTime,
			Overhead: time.Duration(inferNS),
		}
		if r.Rows, err = composeRows(pl, inc.Estimates, improved, usedModel); err != nil {
			return nil, err
		}
		emitted++
		last = r
		// Final means the sample really was exhausted (inc.Final), never
		// merely "last schedule entry": an explicit short Schedule must not
		// record its partial-prefix estimate as a full-sample answer.
		if inc.Final {
			// Full sample consumed: the raw answers are exactly what Execute
			// would have recorded.
			for j, sn := range pl.snips {
				if inc.Valid[j] {
					verdict.Record(sn, aqp.Sanitize(inc.Estimates[j]))
				}
			}
			s.bumpStats(func(st *SystemStats) {
				st.Improved += improvedCount
				st.InferenceNS += inferNS
			})
		}
		cont := yield(r, Progress{
			Seq: inc.Seq, Rows: inc.Rows, SampleRows: view.SampleRows,
			SimTime: inc.SimTime, Final: inc.Final,
		})
		if inc.Final || !cont {
			return r, nil
		}
	}
	// An explicit Schedule ended before the sample was exhausted: return the
	// last partial answer; nothing was recorded.
	return last, nil
}

// ExecuteViewPrefix replays the increment a progressive query emitted at a
// given sample prefix: one fresh scan of [0, rows) against an explicit
// (usually ViewAtGen-reconstructed) view. Replays are side-effect-free —
// nothing is recorded and no counters move. Raw answers are float-identical
// to the streamed increment; improved answers reflect the synopsis at
// replay time, which has typically learned more since.
func (s *System) ExecuteViewPrefix(view *aqp.View, sql string, rows int) (*Result, error) {
	pl, res, err := s.plan(view, sql, false)
	if err != nil || pl == nil {
		return res, err
	}
	inc := view.EvalPrefix(pl.snips, rows)
	improved, usedModel, _ := inferAll(s.Verdict().SnapshotFor(pl.snips), pl.snips, inc.Estimates)
	if res.Rows, err = composeRows(pl, inc.Estimates, improved, usedModel); err != nil {
		return nil, err
	}
	res.SimTime = inc.SimTime
	return res, nil
}
