package core

import (
	"sync"
	"testing"
)

// replayViaGen replays a served result against the generation-aware view
// and fails on any float difference in the raw cells.
func replayViaGen(t *testing.T, sys *System, sql string, res *Result) {
	t.Helper()
	view := sys.Engine().ViewAtGen(res.SampleGen, res.BaseRows, res.SampleRows)
	if view == nil {
		t.Fatalf("ViewAtGen(%d, %d, %d) = nil", res.SampleGen, res.BaseRows, res.SampleRows)
	}
	rep, err := sys.ExecuteView(view, sql)
	if err != nil {
		t.Fatal(err)
	}
	got, want := rawCells(rep), rawCells(res)
	if len(got) != len(want) {
		t.Fatalf("replay shape for %q at gen %d: %d vs %d cells", sql, res.SampleGen, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("replay mismatch for %q at gen=%d base=%d sample=%d cell %d: served %v, replay %v",
				sql, res.SampleGen, res.BaseRows, res.SampleRows, i, want[i], got[i])
		}
	}
}

// Queries served before, between and after sample rebuilds must all replay
// float-identically from their (SampleGen, BaseRows, SampleRows) triple —
// the system-level guarantee that an epoch swap never corrupts the audit
// trail.
func TestRebuildEpochReplay(t *testing.T) {
	sys := systemFixture(t, 20000, 0.2)
	for _, q := range concurrentQueries {
		if _, err := sys.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Verdict().Train(); err != nil {
		t.Fatal(err)
	}

	type served struct {
		sql string
		res *Result
	}
	var history []served
	runAll := func() {
		for _, q := range concurrentQueries[:3] {
			res, err := sys.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			history = append(history, served{q, res})
		}
	}

	runAll() // gen 0
	if _, err := sys.Append(salesBatch(t, 3000, 7)); err != nil {
		t.Fatal(err)
	}
	runAll() // gen 0, appended
	gen, rows := sys.RebuildSample()
	if gen != 1 || rows == 0 {
		t.Fatalf("rebuild -> gen=%d rows=%d", gen, rows)
	}
	runAll() // gen 1
	if _, err := sys.Append(salesBatch(t, 2000, 8)); err != nil {
		t.Fatal(err)
	}
	if gen, _ := sys.RebuildSample(); gen != 2 {
		t.Fatalf("second rebuild gen=%d", gen)
	}
	runAll() // gen 2

	gens := map[uint64]bool{}
	for _, sv := range history {
		gens[sv.res.SampleGen] = true
		replayViaGen(t, sys, sv.sql, sv.res)
	}
	if len(gens) != 3 {
		t.Fatalf("history spans %d generations, want 3", len(gens))
	}
	if st := sys.StatsSnapshot(); st.Rebuilds != 2 {
		t.Fatalf("Rebuilds=%d want 2", st.Rebuilds)
	}
}

// The storm with epoch swaps: sessions query while one goroutine streams
// appends and another rebuilds the sample. Every answer must replay
// float-identically via its generation triple, and the whole run must be
// race-free under -race.
func TestConcurrentQueriesAcrossRebuilds(t *testing.T) {
	sys := systemFixture(t, 20000, 0.2)
	for _, q := range concurrentQueries {
		if _, err := sys.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Verdict().Train(); err != nil {
		t.Fatal(err)
	}

	type served struct {
		sql string
		res *Result
	}
	const sessions = 4
	const queriesPerSession = 10
	results := make([][]served, sessions)

	stop := make(chan struct{})
	var bgWG, qWG sync.WaitGroup
	errCh := make(chan error, sessions+2)

	bgWG.Add(2)
	go func() { // streaming appender
		defer bgWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.Append(salesBatch(t, 300, int64(2000+i))); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() { // periodic rebuilder
		defer bgWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sys.RebuildSample()
		}
	}()
	for s := 0; s < sessions; s++ {
		qWG.Add(1)
		go func(s int) {
			defer qWG.Done()
			for k := 0; k < queriesPerSession; k++ {
				sql := concurrentQueries[(s+k)%len(concurrentQueries)]
				res, err := sys.Execute(sql)
				if err != nil {
					errCh <- err
					return
				}
				results[s] = append(results[s], served{sql, res})
			}
		}(s)
	}
	qWG.Wait()
	close(stop)
	bgWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if st := sys.StatsSnapshot(); st.Rebuilds == 0 {
		t.Fatal("rebuilder never ran")
	}
	for s := range results {
		for _, sv := range results[s] {
			replayViaGen(t, sys, sv.sql, sv.res)
		}
	}
}
