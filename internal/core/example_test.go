package core_test

import (
	"fmt"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/storage"
)

// Example runs the full pipeline on a deterministic relation: answer a few
// queries approximately, learn from them, and answer a new query with a
// tighter error than sampling alone provides.
func Example() {
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "day", Kind: storage.Numeric, Role: storage.Dimension, Min: 0, Max: 100},
		{Name: "sales", Kind: storage.Numeric, Role: storage.Measure},
	})
	table := storage.NewTable("shop", schema)
	rng := randx.New(1)
	for i := 0; i < 50000; i++ {
		day := rng.Uniform(0, 100)
		if err := table.AppendRow([]storage.Value{
			storage.Num(day),
			storage.Num(200 + 3*day + rng.Normal(0, 20)),
		}); err != nil {
			panic(err)
		}
	}
	sample, err := aqp.BuildSample(table, 0.1, 0, 2)
	if err != nil {
		panic(err)
	}
	sys := core.NewSystem(aqp.NewEngine(table, sample, aqp.CachedCost), core.Config{})

	for _, sql := range []string{
		"SELECT AVG(sales) FROM shop WHERE day BETWEEN 0 AND 25",
		"SELECT AVG(sales) FROM shop WHERE day BETWEEN 20 AND 45",
		"SELECT AVG(sales) FROM shop WHERE day BETWEEN 40 AND 65",
		"SELECT AVG(sales) FROM shop WHERE day BETWEEN 60 AND 85",
	} {
		if _, err := sys.Execute(sql); err != nil {
			panic(err)
		}
	}
	if err := sys.Verdict().Train(); err != nil {
		panic(err)
	}

	res, err := sys.Execute("SELECT AVG(sales) FROM shop WHERE day BETWEEN 30 AND 55")
	if err != nil {
		panic(err)
	}
	cell := res.Rows[0].Cells[0]
	fmt.Printf("improved error is smaller than raw error: %v\n", cell.Improved.StdErr < cell.Raw.StdErr)
	fmt.Printf("model used: %v\n", cell.UsedModel)
	// Output:
	// improved error is smaller than raw error: true
	// model used: true
}
