package core

import (
	"time"

	"repro/internal/mathx"
	"repro/internal/obs"
)

// Config carries Verdict's tunables; zero values select the paper's
// defaults.
type Config struct {
	// Nmax bounds how many result-set groups receive improved answers per
	// query (§2.3; default 1,000).
	Nmax int
	// SynopsisCap is C_g, the per-aggregate-function snippet quota with
	// LRU replacement (§2.3; default 2,000).
	SynopsisCap int
	// Confidence δ is the probability used for reported error bounds
	// (default 0.95).
	Confidence float64
	// ValidationConfidence δ_v is the likely-region probability of the
	// model validation step (Appendix B; default 0.99).
	ValidationConfidence float64
	// LearnCap bounds how many recent snippets the likelihood optimization
	// of Appendix A consumes; the full synopsis still participates in
	// inference. Default 150 (the O(n³)-per-evaluation likelihood makes
	// unbounded learning impractical; the paper likewise trains offline).
	LearnCap int
	// MultiStarts is the number of extra random restarts the learner adds
	// to the paper's deterministic l=(max−min) starting point (default 3).
	MultiStarts int
	// DisableValidation turns off Appendix B's model validation — ONLY for
	// the ablation of Figure 9, which demonstrates why validation matters.
	// Production configurations must leave it false: Theorem 1's guarantee
	// depends on validation.
	DisableValidation bool
	// RowAtATimeScan makes the wired engine use the legacy per-row scan
	// instead of the vectorized block pipeline — an ablation/debug switch;
	// production configurations leave it false.
	RowAtATimeScan bool
	// PerSnippetGroupScan disables the one-scan grouped execution: grouped
	// queries evaluate every per-group snippet region separately per block
	// (aqp.ScanVectorizedPerSnippet) and rediscover groups with a dedicated
	// GroupRows pass. An ablation/oracle switch mirroring RowAtATimeScan —
	// results are float-identical either way; production configurations
	// leave it false. Ignored when RowAtATimeScan is set.
	PerSnippetGroupScan bool
	// NumShards is the number of synopsis shards (default 8). Models hash
	// by aggregate function onto shards, each an independent single-writer
	// domain, so Record/Train/append-adjustment throughput scales with
	// cores on multi-function workloads. Purely a throughput knob: all
	// results are invariant under the shard count (see shard.go).
	NumShards int
	// MaxRetainedGens bounds how many retired sample generations the
	// engine keeps for replay and stream resumption (aqp.Engine.
	// SetMaxRetainedGens). 0 — the default — retains every generation
	// (immortal replay prefixes, one sample-sized table per rebuild);
	// a positive bound evicts oldest-first, never evicting a generation
	// pinned by a live progressive stream, and replays behind the
	// resulting horizon fail with aqp.ErrGenEvicted.
	MaxRetainedGens int
	// NumPartitions, when positive, splits the AQP sample into that many
	// disjoint partitions behind a stratified interleaved layout
	// (storage.PartitionedSample): rows are range-partitioned on
	// StratumColumn, arrival order is preserved within partitions, and a
	// deterministic interleave index maps any global sample prefix onto
	// per-partition prefixes. All answers are invariant under the partition
	// count — it is a layout/pruning knob, not a semantics knob. 0 (the
	// default) keeps the single flat sample table.
	NumPartitions int
	// StratumColumn names the numeric column the stratified layout
	// range-partitions on when NumPartitions > 0. Empty selects round-robin
	// strata (no zone-map clustering, still prefix-uniform). Ignored when
	// NumPartitions is 0.
	StratumColumn string
	// Stages, when non-nil, receives per-stage query latencies (parse,
	// prune, scan, infer) for the serving layer's metrics. The scan stage is
	// forwarded into the wired engine (aqp.Engine.SetStageTimer); the rest
	// are recorded by System itself. Nil — the default — disables stage
	// timing entirely: instrumentation reduces to one branch per stage, so
	// benchmarks and library callers are unperturbed.
	Stages obs.StageTimer
	// Now is the clock behind every time-gated policy decision — the push
	// debounce of standing subscriptions and, through System.Now, the
	// serving layer's auto-rebuild quiet gate. Nil (the default) selects
	// time.Now. Tests inject a fake clock here so quiet-period and debounce
	// behavior is exercised with zero sleeps. Performance measurements
	// (stage latencies, inference overhead) always use the real clock.
	Now func() time.Time
}

// Defaults per the paper.
const (
	DefaultNmax                 = 1000
	DefaultSynopsisCap          = 2000
	DefaultConfidence           = 0.95
	DefaultValidationConfidence = 0.99
	DefaultLearnCap             = 150
	DefaultMultiStarts          = 3
	DefaultNumShards            = 8
)

func (c Config) withDefaults() Config {
	if c.Nmax <= 0 {
		c.Nmax = DefaultNmax
	}
	if c.SynopsisCap <= 0 {
		c.SynopsisCap = DefaultSynopsisCap
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = DefaultConfidence
	}
	if c.ValidationConfidence <= 0 || c.ValidationConfidence >= 1 {
		c.ValidationConfidence = DefaultValidationConfidence
	}
	if c.LearnCap <= 0 {
		c.LearnCap = DefaultLearnCap
	}
	if c.MultiStarts < 0 {
		c.MultiStarts = 0
	} else if c.MultiStarts == 0 {
		c.MultiStarts = DefaultMultiStarts
	}
	if c.NumShards <= 0 {
		c.NumShards = DefaultNumShards
	}
	if c.MaxRetainedGens < 0 {
		c.MaxRetainedGens = 0
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// confidenceMultiplier returns α_δ for the configured reporting confidence.
func (c Config) confidenceMultiplier() float64 {
	a, err := mathx.ConfidenceMultiplier(c.Confidence)
	if err != nil {
		panic(err) // withDefaults guarantees a valid probability
	}
	return a
}

// validationMultiplier returns α for the validation likely-region.
func (c Config) validationMultiplier() float64 {
	a, err := mathx.ConfidenceMultiplier(c.ValidationConfidence)
	if err != nil {
		panic(err)
	}
	return a
}
