package core
