// Package core implements Verdict itself: the query synopsis, the
// maximum-entropy (multivariate normal) model over snippet answers, the
// O(n²) inference of improved answers and errors (Eq. 4–5 via the block
// forms of Eq. 11–12), model validation (Appendix B), offline correlation-
// parameter learning (Appendix A), and the data-append generalization
// (Appendix D). The package corresponds to the shaded "Inference / Query
// Synopsis / Model / Learning" boxes of Figure 2; the AQP engine it wraps
// lives in internal/aqp and stays a black box. System is the facade wiring
// the full pipeline (parse → check → decompose → scan → infer → record)
// that examples, the CLI and the serving layer consume.
//
// # Concurrency invariants
//
// The synopsis is sharded by aggregate function: FuncID hashes
// (process-stable FNV-1a) onto one of Config.NumShards shards, each an
// independent single-writer domain guarded by its own RWMutex (shard.go).
// Who locks what:
//
//   - Mutators of one function's model — Record, Train, SetParams,
//     ApplyAppend, OnAppend(Sampled) — hold that function's shard write
//     lock. Writers on different shards never contend.
//   - Infer holds a shard read lock only to fetch the model's published
//     *inferState; the O(n²) inference itself is lock-free.
//   - The cross-shard registry (global creation order of functions plus the
//     learning-seed counter) has its own mutex, regMu. Lock order is
//     shard.mu → regMu, never the reverse.
//   - System guards its workload counters with statsMu (read via
//     StatsSnapshot), the live Verdict pointer with vmu (swapped by
//     LoadSynopsis), and serializes Append/RebuildSample end-to-end with
//     appendMu.
//
// What is immutable after publish: a model's published inferState (entries
// slice, cloned parameters, Cholesky factor, prior mean) is frozen — every
// mutator copies entries before any in-place edit (copy-on-write),
// invalidates the snapshot, and the next publish rebuilds it. Any number
// of goroutines may infer against a captured inferState without
// synchronization. Results are invariant under NumShards: models are
// independent and Train assigns seeds in global creation order before
// fanning out per-shard.
package core
