package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/aqp"
)

// runStream collects every increment of an ExecuteProgressive stream,
// optionally aborting (yield false) after cut increments (cut <= 0 runs to
// completion).
func runStream(t *testing.T, s *System, sql string, opts ProgressiveOptions, cut int) []streamedInc {
	t.Helper()
	var got []streamedInc
	_, err := s.ExecuteProgressive(context.Background(), sql, opts, func(r *Result, p Progress) bool {
		got = append(got, streamedInc{res: r, prog: p})
		return cut <= 0 || len(got) < cut
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// requireSameIncrement asserts two streamed increments agree exactly:
// progress coordinates, snapshot provenance, and every raw AND improved
// cell bit-for-bit (wall-clock Overhead excluded — it is the only
// nondeterministic field).
func requireSameIncrement(t *testing.T, label string, got, want streamedInc) {
	t.Helper()
	if got.prog != want.prog {
		t.Fatalf("%s: progress %+v, want %+v", label, got.prog, want.prog)
	}
	g, w := got.res, want.res
	if g.Epoch != w.Epoch || g.SampleGen != w.SampleGen || g.BaseRows != w.BaseRows || g.SampleRows != w.SampleRows {
		t.Fatalf("%s: provenance (%d %d %d %d), want (%d %d %d %d)", label,
			g.Epoch, g.SampleGen, g.BaseRows, g.SampleRows, w.Epoch, w.SampleGen, w.BaseRows, w.SampleRows)
	}
	if g.SimTime != w.SimTime || len(g.Rows) != len(w.Rows) {
		t.Fatalf("%s: shape/simtime differ", label)
	}
	for ri := range w.Rows {
		if len(g.Rows[ri].Cells) != len(w.Rows[ri].Cells) {
			t.Fatalf("%s row %d: cell count", label, ri)
		}
		for ci := range w.Rows[ri].Cells {
			gc, wc := g.Rows[ri].Cells[ci], w.Rows[ri].Cells[ci]
			if gc.Raw != wc.Raw || gc.Improved != wc.Improved || gc.UsedModel != wc.UsedModel {
				t.Fatalf("%s row %d cell %d: %+v, want %+v", label, ri, ci, gc, wc)
			}
		}
	}
}

// TestExecuteProgressiveFromResume is the end-to-end resume property: a
// stream killed after k increments and resumed from its cursor emits
// exactly the increments k..n-1 the uninterrupted stream emits — raw and
// improved cells bit-identical — even when appends and a sample rebuild
// land between the kill and the resume. Two identically seeded systems are
// compared so the uninterrupted run's final-increment Record cannot
// contaminate the resumed run's inference snapshot.
func TestExecuteProgressiveFromResume(t *testing.T) {
	const sql = "SELECT region, AVG(revenue), COUNT(*) FROM sales WHERE week < 40 GROUP BY region"
	opts := ProgressiveOptions{FirstRows: 512}
	a := systemFixture(t, 30000, 0.3)
	b := systemFixture(t, 30000, 0.3)
	want := runStream(t, a, sql, opts, 0)
	if len(want) < 4 {
		t.Fatalf("only %d increments", len(want))
	}

	for cut := 1; cut < len(want); cut++ {
		// Fresh "b" per cut so each interrupted+resumed pair sees a synopsis
		// in the same state the uninterrupted run started from.
		b = systemFixture(t, 30000, 0.3)
		killed := runStream(t, b, sql, opts, cut)
		if len(killed) != cut {
			t.Fatalf("cut %d: kill consumed %d increments", cut, len(killed))
		}
		for i := range killed {
			requireSameIncrement(t, "cut "+itoa(cut)+" pre-kill "+itoa(i), killed[i], want[i])
		}
		// Age b between the disconnect and the resume.
		if _, err := b.Append(salesBatch(t, 2000, 321)); err != nil {
			t.Fatal(err)
		}
		b.RebuildSample()

		last := killed[cut-1]
		cur := ProgressiveCursor{
			SampleGen: last.res.SampleGen, Epoch: last.res.Epoch,
			BaseRows: last.res.BaseRows, SampleRows: last.res.SampleRows,
			RowsSeen: last.prog.Rows, Seq: last.prog.Seq,
		}
		var resumed []streamedInc
		res, err := b.ExecuteProgressiveFrom(context.Background(), sql, opts, cur, func(r *Result, p Progress) bool {
			resumed = append(resumed, streamedInc{res: r, prog: p})
			return true
		})
		if err != nil {
			t.Fatalf("cut %d: resume: %v", cut, err)
		}
		if len(resumed) != len(want)-cut {
			t.Fatalf("cut %d: resume emitted %d increments, want %d", cut, len(resumed), len(want)-cut)
		}
		if res != resumed[len(resumed)-1].res || !resumed[len(resumed)-1].prog.Final {
			t.Fatalf("cut %d: resume did not end on the final increment", cut)
		}
		for i := range resumed {
			requireSameIncrement(t, "cut "+itoa(cut)+" resumed "+itoa(i), resumed[i], want[cut+i])
		}
		// Natural exhaustion of the resumed stream records exactly what the
		// uninterrupted stream recorded.
		if got, wantN := b.Verdict().SnippetCount(), a.Verdict().SnippetCount(); got != wantN {
			t.Fatalf("cut %d: resumed system recorded %d snippets, uninterrupted %d", cut, got, wantN)
		}
		st := b.StatsSnapshot()
		if st.Progressive != 1 || st.Resumed != 1 || st.Increments != len(want) {
			t.Fatalf("cut %d: stats %+v", cut, st)
		}
	}
}

// TestExecuteProgressiveTargetStop: with TargetCI set, the stream ends at
// exactly the first increment whose raw CI meets the target — TargetMet
// set, Final clear, nothing recorded — and an unreachable target runs the
// stream to natural exhaustion.
func TestExecuteProgressiveTargetStop(t *testing.T) {
	const sql = "SELECT AVG(revenue) FROM sales WHERE week < 30"
	opts := ProgressiveOptions{FirstRows: 256}
	ref := systemFixture(t, 20000, 0.25)
	alpha := ref.cfg.confidenceMultiplier()
	want := runStream(t, ref, sql, opts, 0)
	ciAt := func(i int) float64 { return alpha * want[i].res.Rows[0].Cells[0].Raw.StdErr }
	for i := 1; i < len(want); i++ {
		if !(ciAt(i) < ciAt(i-1)) {
			t.Fatalf("raw CI not strictly shrinking at increment %d", i)
		}
	}

	// Target exactly the CI of a mid-stream increment: "≤" must stop there,
	// not one later.
	stopAt := 2
	target := ciAt(stopAt)
	s := systemFixture(t, 20000, 0.25)
	got := runStream(t, s, sql, ProgressiveOptions{FirstRows: 256, TargetCI: target}, 0)
	if len(got) != stopAt+1 {
		t.Fatalf("target stream emitted %d increments, want %d", len(got), stopAt+1)
	}
	lastP := got[len(got)-1].prog
	if !lastP.TargetMet || lastP.Final {
		t.Fatalf("closing increment progress %+v", lastP)
	}
	for i, inc := range got[:len(got)-1] {
		if inc.prog.TargetMet {
			t.Fatalf("increment %d (CI %v > target %v) claimed the target", i, ciAt(i), target)
		}
	}
	if s.Verdict().SnippetCount() != 0 {
		t.Fatal("target-stopped stream recorded a partial answer")
	}
	requireSameIncrement(t, "target stop", streamedInc{res: got[stopAt].res, prog: Progress{
		Seq: lastP.Seq, Rows: lastP.Rows, SampleRows: lastP.SampleRows,
		SimTime: lastP.SimTime,
	}}, streamedInc{res: want[stopAt].res, prog: Progress{
		Seq: want[stopAt].prog.Seq, Rows: want[stopAt].prog.Rows,
		SampleRows: want[stopAt].prog.SampleRows, SimTime: want[stopAt].prog.SimTime,
	}})

	// A relative target stops by ci/|estimate|.
	relStop := 3
	rel := ciAt(relStop) / want[relStop].res.Rows[0].Cells[0].Raw.Value
	s = systemFixture(t, 20000, 0.25)
	got = runStream(t, s, sql, ProgressiveOptions{FirstRows: 256, TargetCI: rel, TargetRelative: true}, 0)
	if len(got) != relStop+1 || !got[len(got)-1].prog.TargetMet {
		t.Fatalf("relative target stopped after %d increments, want %d", len(got), relStop+1)
	}

	// An unreachable target changes nothing: the stream exhausts and records.
	s = systemFixture(t, 20000, 0.25)
	got = runStream(t, s, sql, ProgressiveOptions{FirstRows: 256, TargetCI: 1e-12}, 0)
	if !got[len(got)-1].prog.Final || got[len(got)-1].prog.TargetMet {
		t.Fatalf("unreachable target: last progress %+v", got[len(got)-1].prog)
	}
	if s.Verdict().SnippetCount() == 0 {
		t.Fatal("exhausted stream under an unreachable target recorded nothing")
	}
}

// TestExecuteProgressiveFromCursorErrors pins the typed error contract of
// the resume path: malformed and off-schedule cursors fail with
// ErrCursorMismatch, unknown generations with aqp.ErrGenUnknown, and
// evicted generations with aqp.ErrGenEvicted.
func TestExecuteProgressiveFromCursorErrors(t *testing.T) {
	const sql = "SELECT AVG(revenue) FROM sales WHERE week < 30"
	opts := ProgressiveOptions{FirstRows: 512}
	s := systemFixture(t, 20000, 0.25)
	view := s.Engine().Acquire()
	sched := aqp.PrefixSchedule(view.SampleRows, 512)
	okCur := ProgressiveCursor{
		SampleGen: view.SampleGen, Epoch: view.Epoch,
		BaseRows: view.BaseRows, SampleRows: view.SampleRows,
		RowsSeen: sched[0], Seq: 0,
	}
	noYield := func(r *Result, p Progress) bool { return true }

	cases := []struct {
		name   string
		mutate func(c ProgressiveCursor) ProgressiveCursor
		want   error
	}{
		{"negative rows_seen", func(c ProgressiveCursor) ProgressiveCursor { c.RowsSeen = -1; return c }, ErrCursorMismatch},
		{"zero sample_rows", func(c ProgressiveCursor) ProgressiveCursor { c.SampleRows = 0; return c }, ErrCursorMismatch},
		{"off-schedule rows", func(c ProgressiveCursor) ProgressiveCursor { c.RowsSeen = sched[0] + 1; return c }, ErrCursorMismatch},
		{"seq beyond schedule", func(c ProgressiveCursor) ProgressiveCursor { c.Seq = len(sched) + 5; return c }, ErrCursorMismatch},
		{"already complete", func(c ProgressiveCursor) ProgressiveCursor {
			c.RowsSeen = view.SampleRows
			c.Seq = len(sched) - 1
			return c
		}, ErrCursorMismatch},
		{"prefix beyond generation", func(c ProgressiveCursor) ProgressiveCursor { c.SampleRows += 1000; c.BaseRows += 1000; return c }, ErrCursorMismatch},
		{"unknown generation", func(c ProgressiveCursor) ProgressiveCursor { c.SampleGen = 99; return c }, aqp.ErrGenUnknown},
	}
	for _, tc := range cases {
		if _, err := s.ExecuteProgressiveFrom(context.Background(), sql, opts, tc.mutate(okCur), noYield); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}

	// Evict generation 0 and the previously valid cursor turns into the
	// behind-horizon error the serving layer maps to 410.
	s.Engine().SetMaxRetainedGens(1)
	for i := 0; i < 3; i++ {
		s.RebuildSample()
	}
	if _, err := s.ExecuteProgressiveFrom(context.Background(), sql, opts, okCur, noYield); !errors.Is(err, aqp.ErrGenEvicted) {
		t.Fatalf("evicted cursor: err %v, want ErrGenEvicted", err)
	}
	// A valid resume still works after the churn, from the live generation.
	live := s.Engine().Acquire()
	sched = aqp.PrefixSchedule(live.SampleRows, 512)
	n := 0
	if _, err := s.ExecuteProgressiveFrom(context.Background(), sql, opts, ProgressiveCursor{
		SampleGen: live.SampleGen, Epoch: live.Epoch,
		BaseRows: live.BaseRows, SampleRows: live.SampleRows,
		RowsSeen: sched[0], Seq: 0,
	}, func(r *Result, p Progress) bool { n++; return true }); err != nil || n == 0 {
		t.Fatalf("live-generation resume: n=%d err=%v", n, err)
	}
}
