package core

import (
	"repro/internal/aqp"
	"repro/internal/kernel"
	"repro/internal/query"
)

// Appendix-D drift adjustment, wired into the notify path: a standing plan
// re-infers its improved estimates on every notify batch, but between two
// append batches almost nothing the inference reads has changed — the
// synopsis entries drift (θ += μ·ratio, β grows) yet every region bound and
// length-scale stays put, so the covariance vector k and self-variance κ̄²
// are rebuilt from identical inputs each time. planInfer carries those
// factors per (snippet, synopsis-entry) pair across batches and only the
// O(n²) solve and blend re-run. Invalidation is not event-driven: each
// cached factor is guarded by an exact signature of its five float inputs
// (kernel.PairMemo), so a training pass (new length-scales), a rebuild
// (new domains re-clipping regions), or synopsis eviction all miss the
// cache naturally and recompute. The memoized result is therefore
// bit-identical to full re-inference — the property suite and every pushed
// chunk's replay audit pin exactly that.

// snippetMemo is the carried inference state for one standing snippet: one
// factor cache per synopsis entry, plus the self-variance cache.
type snippetMemo struct {
	pairs []kernel.PairMemo
	self  kernel.PairMemo
}

// pairsFor sizes the per-entry caches to the current synopsis, keeping
// existing slots. LRU reorder or eviction can leave a slot describing a
// different entry; its signature check catches that and recomputes.
func (m *snippetMemo) pairsFor(n int) []kernel.PairMemo {
	if len(m.pairs) < n {
		m.pairs = append(m.pairs, make([]kernel.PairMemo, n-len(m.pairs))...)
	}
	return m.pairs[:n]
}

// planInfer is one standing plan's per-snippet inference memos, keyed by
// snippet key. Keys are stable across refreshes (re-planning produces new
// snippet objects with identical keys while bounds hold still), so a
// grouped plan's per-group snippets keep their caches as long as the group
// lives; keys absent from the current plan are pruned so dead groups do
// not pin memory.
type planInfer struct {
	memos map[string]*snippetMemo
}

// inferAll is inferAll against the plan's carried memos: same outputs,
// bit-identical, with the covariance integrals skipped on signature hits.
func (pi *planInfer) inferAll(snap *InferSnapshot, snips []*query.Snippet, raw []query.ScalarEstimate) (improved []query.ScalarEstimate, usedModel []bool, count int) {
	if pi.memos == nil {
		pi.memos = make(map[string]*snippetMemo, len(snips))
	}
	seen := make(map[string]struct{}, len(snips))
	improved = make([]query.ScalarEstimate, len(snips))
	usedModel = make([]bool, len(snips))
	for i, sn := range snips {
		key := sn.Key()
		mem := pi.memos[key]
		if mem == nil {
			mem = &snippetMemo{}
			pi.memos[key] = mem
		}
		seen[key] = struct{}{}
		inf := inferOnMemo(snap.states[sn.Func()], sn, aqp.Sanitize(raw[i]), snap.cfg, mem)
		improved[i] = query.ScalarEstimate{Value: inf.Answer, StdErr: inf.Err}
		usedModel[i] = inf.UsedModel
		if inf.UsedModel {
			count++
		}
	}
	for key := range pi.memos {
		if _, ok := seen[key]; !ok {
			delete(pi.memos, key)
		}
	}
	return improved, usedModel, count
}
