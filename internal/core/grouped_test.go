package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/aqp"
	"repro/internal/randx"
	"repro/internal/storage"
)

// groupedSystem builds a System over a relation with a ~nCats-value cat
// column; cfg selects the scan/grouping ablations. Identical inputs build
// identical tables and samples, so two systems differing only in cfg are
// row-for-row comparable.
func groupedSystem(t *testing.T, rows, nCats int, cfg Config) *System {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "cat", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("sales", schema)
	rng := randx.New(1234)
	for i := 0; i < rows; i++ {
		w := rng.Uniform(0, 52)
		c := fmt.Sprintf("c%02d", rng.Intn(nCats))
		rg := []string{"east", "west"}[rng.Intn(2)]
		rev := 50 + 2*w + rng.Normal(0, 3)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(w), storage.Str(c), storage.Str(rg), storage.Num(rev),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sample, err := aqp.BuildSample(tb, 0.5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	return NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), cfg)
}

// requireSameRows asserts two results carry the same groups (order included)
// with bit-identical raw estimates.
func requireSameRows(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(a.Rows), len(b.Rows))
	}
	if a.GroupsTruncated != b.GroupsTruncated {
		t.Fatalf("%s: truncated %v vs %v", label, a.GroupsTruncated, b.GroupsTruncated)
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if len(ra.Group) != len(rb.Group) {
			t.Fatalf("%s row %d: group arity %d vs %d", label, i, len(ra.Group), len(rb.Group))
		}
		for j := range ra.Group {
			if ra.Group[j] != rb.Group[j] {
				t.Fatalf("%s row %d: group %+v vs %+v", label, i, ra.Group[j], rb.Group[j])
			}
		}
		if len(ra.Cells) != len(rb.Cells) {
			t.Fatalf("%s row %d: cells %d vs %d", label, i, len(ra.Cells), len(rb.Cells))
		}
		for j := range ra.Cells {
			if ra.Cells[j].Raw != rb.Cells[j].Raw {
				t.Fatalf("%s row %d cell %d: raw %+v vs %+v", label, i, j, ra.Cells[j].Raw, rb.Cells[j].Raw)
			}
		}
	}
}

var groupedSystemSQL = []string{
	"SELECT cat, AVG(revenue), COUNT(*) FROM sales GROUP BY cat",
	"SELECT cat, SUM(revenue) FROM sales WHERE week BETWEEN 10 AND 40 GROUP BY cat",
	"SELECT cat, region, AVG(revenue) FROM sales GROUP BY cat, region",
	"SELECT cat, COUNT(*) FROM sales WHERE region = 'east' GROUP BY cat",
}

// TestGroupedExecuteMatchesAblation: the one-scan deferred-discovery grouped
// execution must produce bit-identical raw answers, the same group order and
// the same truncation verdict as the per-snippet two-pass ablation — before
// and after a sample rebuild.
func TestGroupedExecuteMatchesAblation(t *testing.T) {
	one := groupedSystem(t, 30000, 6, Config{})
	abl := groupedSystem(t, 30000, 6, Config{PerSnippetGroupScan: true})
	run := func(label string) {
		for _, sql := range groupedSystemSQL {
			ra, err := one.Execute(sql)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := abl.Execute(sql)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRows(t, label+" "+sql, ra, rb)
		}
	}
	run("fresh")
	// Same rebuild seed sequence on both systems keeps the samples aligned.
	one.RebuildSample()
	abl.RebuildSample()
	run("after rebuild")
}

// TestGroupedZeroMatchQuery: a grouped query matching no rows degenerates to
// the single ungrouped fallback decomposition on both paths.
func TestGroupedZeroMatchQuery(t *testing.T) {
	one := groupedSystem(t, 5000, 4, Config{})
	abl := groupedSystem(t, 5000, 4, Config{PerSnippetGroupScan: true})
	sql := "SELECT cat, AVG(revenue), COUNT(*) FROM sales WHERE week > 1000 GROUP BY cat"
	ra, err := one.Execute(sql)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := abl.Execute(sql)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, "zero-match", ra, rb)
	if len(ra.Rows) != 1 || len(ra.Rows[0].Group) != 0 {
		t.Fatalf("zero-match shape: %+v", ra.Rows)
	}
	if ra.GroupsTruncated {
		t.Fatal("zero-match query cannot be truncated")
	}
}

// TestGroupedTruncationSurfaced: Nmax truncation must surface on every
// execution path instead of silently dropping groups.
func TestGroupedTruncationSurfaced(t *testing.T) {
	s := groupedSystem(t, 20000, 6, Config{Nmax: 2})

	res, err := s.Execute("SELECT cat, COUNT(*) FROM sales GROUP BY cat")
	if err != nil {
		t.Fatal(err)
	}
	if !res.GroupsTruncated || len(res.Rows) != 2 {
		t.Fatalf("execute: truncated=%v rows=%d", res.GroupsTruncated, len(res.Rows))
	}

	flat, err := s.Execute("SELECT AVG(revenue) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if flat.GroupsTruncated {
		t.Fatal("ungrouped query reported truncation")
	}

	under, err := s.Execute("SELECT region, COUNT(*) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	if under.GroupsTruncated || len(under.Rows) != 2 {
		t.Fatalf("2-group query under Nmax=2: truncated=%v rows=%d", under.GroupsTruncated, len(under.Rows))
	}

	var last *Result
	if _, err := s.ExecuteProgressive(context.Background(), "SELECT cat, COUNT(*) FROM sales GROUP BY cat",
		ProgressiveOptions{}, func(r *Result, p Progress) bool {
			last = r
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if last == nil || !last.GroupsTruncated || len(last.Rows) != 2 {
		t.Fatalf("progressive: %+v", last)
	}

	view := s.Engine().ViewAt(res.BaseRows, res.SampleRows)
	replay, err := s.ExecuteViewPrefix(view, "SELECT cat, COUNT(*) FROM sales GROUP BY cat", res.SampleRows)
	if err != nil {
		t.Fatal(err)
	}
	if !replay.GroupsTruncated || len(replay.Rows) != 2 {
		t.Fatalf("replay: truncated=%v rows=%d", replay.GroupsTruncated, len(replay.Rows))
	}
}

// TestGroupedStreamSurvivesRebuild: a grouped progressive stream pins its
// view, so a sample rebuild landing mid-stream must not change any
// subsequent increment, and every emitted increment must replay bit-for-bit
// via ViewAtGen + ExecuteViewPrefix.
func TestGroupedStreamSurvivesRebuild(t *testing.T) {
	s := groupedSystem(t, 20000, 5, Config{})
	sql := "SELECT cat, AVG(revenue), COUNT(*) FROM sales GROUP BY cat"
	type snap struct {
		res *Result
		p   Progress
	}
	var chunks []snap
	if _, err := s.ExecuteProgressive(context.Background(), sql, ProgressiveOptions{},
		func(r *Result, p Progress) bool {
			chunks = append(chunks, snap{res: r, p: p})
			if len(chunks) == 1 {
				s.RebuildSample() // lands behind the pinned view
			}
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 || !chunks[len(chunks)-1].p.Final {
		t.Fatalf("stream shape: %d chunks", len(chunks))
	}
	for i, c := range chunks {
		view := s.Engine().ViewAtGen(c.res.SampleGen, c.res.BaseRows, c.res.SampleRows)
		if view == nil {
			t.Fatalf("chunk %d: generation %d not replayable", i, c.res.SampleGen)
		}
		replay, err := s.ExecuteViewPrefix(view, sql, c.p.Rows)
		if err != nil {
			t.Fatal(err)
		}
		requireSameRows(t, fmt.Sprintf("chunk %d", i), c.res, replay)
	}
}
