package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/randx"
	"repro/internal/storage"
)

// salesBatch builds a streaming batch against its own schema (name/kind
// compatible with systemFixture's relation), with a deliberate drift in the
// revenue intercept so appends exercise the Appendix D adjustment.
func salesBatch(t *testing.T, rows int, seed int64) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("sales_batch", schema)
	rng := randx.New(seed)
	regions := []string{"east", "west"}
	for i := 0; i < rows; i++ {
		w := rng.Uniform(0, 52)
		rg := regions[rng.Intn(2)]
		rev := 55 + 2*w + rng.Normal(0, 3)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(w), storage.Str(rg), storage.Num(rev),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

var concurrentQueries = []string{
	"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 5 AND 15",
	"SELECT COUNT(*) FROM sales WHERE region = 'east'",
	"SELECT AVG(revenue) FROM sales WHERE week < 30",
	"SELECT region, AVG(revenue) FROM sales GROUP BY region",
	"SELECT SUM(revenue) FROM sales WHERE week >= 20 AND week <= 40",
	"SELECT COUNT(*) FROM sales WHERE week > 26",
}

// rawCells flattens a result's raw estimates for comparison.
func rawCells(res *Result) []float64 {
	var out []float64
	for _, row := range res.Rows {
		for _, c := range row.Cells {
			out = append(out, c.Raw.Value, c.Raw.StdErr)
		}
	}
	return out
}

func improvedCells(res *Result) []float64 {
	var out []float64
	for _, row := range res.Rows {
		for _, c := range row.Cells {
			out = append(out, c.Improved.Value, c.Improved.StdErr)
		}
	}
	return out
}

// The acceptance scenario: 8 concurrent sessions issue queries while a
// background goroutine streams append batches into the shared relation.
// Every answer must match a serial replay against the same snapshot epoch
// — reconstructed from the (BaseRows, SampleRows) prefix the result pins —
// and the whole storm must be race-free under -race.
func TestConcurrentSessionsWithStreamingAppends(t *testing.T) {
	sys := systemFixture(t, 20000, 0.2)

	// Warm the synopsis so inference participates in the storm.
	for _, q := range concurrentQueries {
		if _, err := sys.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Verdict().Train(); err != nil {
		t.Fatal(err)
	}

	type served struct {
		sql string
		res *Result
	}
	const sessions = 8
	const queriesPerSession = 12
	results := make([][]served, sessions)

	var sessionsWG, appenderWG sync.WaitGroup
	stop := make(chan struct{})
	appendErr := make(chan error, 1)
	appenderWG.Add(1)
	go func() { // streaming appender
		defer appenderWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.Append(salesBatch(t, 400, int64(1000+i))); err != nil {
				select {
				case appendErr <- err:
				default:
				}
				return
			}
		}
	}()
	queryErr := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		sessionsWG.Add(1)
		go func(s int) {
			defer sessionsWG.Done()
			for k := 0; k < queriesPerSession; k++ {
				sql := concurrentQueries[(s+k)%len(concurrentQueries)]
				res, err := sys.Execute(sql)
				if err != nil {
					queryErr <- fmt.Errorf("session %d: %w", s, err)
					return
				}
				results[s] = append(results[s], served{sql: sql, res: res})
			}
		}(s)
	}
	sessionsWG.Wait()
	close(stop)
	appenderWG.Wait()
	select {
	case err := <-appendErr:
		t.Fatal(err)
	default:
	}
	select {
	case err := <-queryErr:
		t.Fatal(err)
	default:
	}

	st := sys.StatsSnapshot()
	if st.Appends == 0 {
		t.Fatal("appender never landed a batch")
	}

	// Serial replay: rebuild each result's view from its pinned prefix and
	// re-run the scan. Raw answers are a pure function of the view, so they
	// must match float-for-float; the improved overlay depends on the
	// synopsis state at serve time and is validated separately.
	engine := sys.Engine()
	replayed := 0
	epochs := map[int]bool{}
	for s := range results {
		for _, sv := range results[s] {
			view := engine.ViewAt(sv.res.BaseRows, sv.res.SampleRows)
			rep, err := sys.ExecuteView(view, sv.sql)
			if err != nil {
				t.Fatal(err)
			}
			got, want := rawCells(rep), rawCells(sv.res)
			if len(got) != len(want) {
				t.Fatalf("replay shape differs for %q at base=%d: %d vs %d cells",
					sv.sql, sv.res.BaseRows, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("replay mismatch for %q at base=%d sample=%d cell %d: served %v, replay %v",
						sv.sql, sv.res.BaseRows, sv.res.SampleRows, i, want[i], got[i])
				}
			}
			replayed++
			epochs[sv.res.BaseRows] = true
		}
	}
	if replayed != sessions*queriesPerSession {
		t.Fatalf("replayed %d results, want %d", replayed, sessions*queriesPerSession)
	}
	if len(epochs) < 2 {
		t.Fatalf("queries all served from %d epoch(s); appends never interleaved", len(epochs))
	}
}

// Determinism: the same queries issued by 8 parallel sessions against a
// quiescent system must produce exactly the answers a serial run produces
// — raw answers bit-identical, improved answers within numerical jitter of
// the factorization rebuild order.
func TestParallelQueriesMatchSerial(t *testing.T) {
	build := func() *System { return systemFixture(t, 20000, 0.2) }

	// Serial reference: warm, train, then one pass of every query.
	ref := build()
	for _, q := range concurrentQueries {
		if _, err := ref.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Verdict().Train(); err != nil {
		t.Fatal(err)
	}
	serial := map[string]*Result{}
	for _, q := range concurrentQueries {
		res, err := ref.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		serial[q] = res
	}

	// Concurrent run on an identically prepared system.
	sys := build()
	for _, q := range concurrentQueries {
		if _, err := sys.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Verdict().Train(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	type answer struct {
		sql      string
		raw, imp []float64
	}
	answers := make(chan answer, 8*len(concurrentQueries))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < len(concurrentQueries); k++ {
				sql := concurrentQueries[(w+k)%len(concurrentQueries)]
				res, err := sys.Execute(sql)
				if err != nil {
					errCh <- err
					return
				}
				answers <- answer{sql: sql, raw: rawCells(res), imp: improvedCells(res)}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	close(answers)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for a := range answers {
		want := serial[a.sql]
		wraw, wimp := rawCells(want), improvedCells(want)
		if len(a.raw) != len(wraw) {
			t.Fatalf("%q: shape %d vs %d", a.sql, len(a.raw), len(wraw))
		}
		for i := range a.raw {
			if a.raw[i] != wraw[i] {
				t.Fatalf("%q raw cell %d: parallel %v, serial %v", a.sql, i, a.raw[i], wraw[i])
			}
		}
		for i := range a.imp {
			diff := math.Abs(a.imp[i] - wimp[i])
			scale := math.Max(math.Abs(wimp[i]), 1)
			if diff/scale > 1e-6 {
				t.Fatalf("%q improved cell %d: parallel %v, serial %v", a.sql, i, a.imp[i], wimp[i])
			}
		}
	}
}

// An append between acquiring a view and executing against it must not leak
// into the pinned query — the System-level statement of "appends during a
// scan never change an in-flight query's result".
func TestAppendInvisibleToPinnedView(t *testing.T) {
	sys := systemFixture(t, 20000, 0.2)
	const sql = "SELECT AVG(revenue) FROM sales WHERE week < 26"
	view := sys.Engine().Acquire()
	before, err := sys.ExecuteView(view, sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Append(salesBatch(t, 5000, 77)); err != nil {
		t.Fatal(err)
	}
	again, err := sys.ExecuteView(view, sql)
	if err != nil {
		t.Fatal(err)
	}
	b, a := rawCells(before), rawCells(again)
	for i := range b {
		if b[i] != a[i] {
			t.Fatalf("pinned view drifted after append: %v -> %v", b[i], a[i])
		}
	}
	// A fresh view does see the appended rows.
	fresh, err := sys.Execute(sql)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.BaseRows != 25000 {
		t.Fatalf("fresh BaseRows=%d, want 25000", fresh.BaseRows)
	}
}

// Live stats reads while queries and appends are in flight must be
// race-free and internally consistent.
func TestStatsSnapshotLive(t *testing.T) {
	sys := systemFixture(t, 10000, 0.3)
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for k := 0; k < 10; k++ {
				if _, err := sys.Execute(concurrentQueries[(w+k)%len(concurrentQueries)]); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; i < 5; i++ {
			if _, err := sys.Append(salesBatch(t, 200, int64(i))); err != nil {
				panic(err)
			}
		}
	}()

	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := sys.StatsSnapshot()
			if st.Supported > st.Total {
				panic("stats torn: supported > total")
			}
		}
	}()
	workers.Wait()
	close(stop)
	reader.Wait()
	st := sys.StatsSnapshot()
	if st.Total != 40 || st.Appends != 5 {
		t.Fatalf("stats: %+v", st)
	}
}
