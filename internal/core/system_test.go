package core

import (
	"bytes"
	"math"
	"strconv"
	"testing"

	"repro/internal/aqp"
	"repro/internal/randx"
	"repro/internal/storage"
)

// systemFixture builds a System over a sales-like relation with structure:
// revenue ≈ 50 + 2·week + region offset.
func systemFixture(t *testing.T, rows int, frac float64) *System {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("sales", schema)
	rng := randx.New(42)
	offsets := map[string]float64{"east": 0, "west": 10}
	regions := []string{"east", "west"}
	for i := 0; i < rows; i++ {
		w := rng.Uniform(0, 52)
		rg := regions[rng.Intn(2)]
		rev := 50 + 2*w + offsets[rg] + rng.Normal(0, 3)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(w), storage.Str(rg), storage.Num(rev),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sample, err := aqp.BuildSample(tb, frac, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	return NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), Config{})
}

func TestSystemExecuteSimpleQuery(t *testing.T) {
	s := systemFixture(t, 20000, 0.2)
	res, err := s.ExecuteWithExact("SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Supported || len(res.Rows) != 1 || len(res.Rows[0].Cells) != 1 {
		t.Fatalf("result shape: %+v", res)
	}
	cell := res.Rows[0].Cells[0]
	// Expected ≈ 50 + 2·15 + 5 = 85.
	if math.Abs(cell.Exact-85) > 3 {
		t.Fatalf("exact=%v", cell.Exact)
	}
	if math.Abs(cell.Improved.Value-cell.Exact) > 5*cell.Improved.StdErr+1 {
		t.Fatalf("improved=%v exact=%v stderr=%v", cell.Improved.Value, cell.Exact, cell.Improved.StdErr)
	}
	if res.SimTime <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestSystemGroupByAndCount(t *testing.T) {
	s := systemFixture(t, 10000, 0.5)
	res, err := s.ExecuteWithExact("SELECT region, COUNT(*), SUM(revenue) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups=%d", len(res.Rows))
	}
	totalCount := 0.0
	for _, row := range res.Rows {
		if len(row.Cells) != 2 {
			t.Fatalf("cells=%d", len(row.Cells))
		}
		cnt := row.Cells[0]
		totalCount += cnt.Improved.Value
		if math.Abs(cnt.Improved.Value-cnt.Exact) > 4*cnt.Improved.StdErr+100 {
			t.Fatalf("count=%v exact=%v", cnt.Improved.Value, cnt.Exact)
		}
		sum := row.Cells[1]
		rel := math.Abs(sum.Improved.Value-sum.Exact) / sum.Exact
		if rel > 0.1 {
			t.Fatalf("sum rel err=%v", rel)
		}
	}
	if math.Abs(totalCount-10000) > 500 {
		t.Fatalf("counts sum to %v", totalCount)
	}
}

func TestSystemUnsupportedBypass(t *testing.T) {
	s := systemFixture(t, 1000, 0.5)
	res, err := s.Execute("SELECT COUNT(*) FROM sales WHERE week = 1 OR week = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Supported || len(res.Rows) != 0 {
		t.Fatalf("unsupported query produced rows: %+v", res)
	}
	if s.Stats.Total != 1 || s.Stats.Supported != 0 || s.Stats.Aggregate != 1 {
		t.Fatalf("stats=%+v", s.Stats)
	}
}

func TestSystemLearningImprovesOverWorkload(t *testing.T) {
	// Process a first half of a workload, train, then verify that on the
	// second half Verdict's improved errors beat the raw errors on average
	// — the experiment design of §8.3 in miniature.
	s := systemFixture(t, 30000, 0.05)
	rng := randx.New(9)
	mkQuery := func() string {
		lo := rng.Uniform(0, 40)
		return "SELECT AVG(revenue) FROM sales WHERE week BETWEEN " +
			formatF(lo) + " AND " + formatF(lo+rng.Uniform(4, 12))
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Execute(mkQuery()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Verdict().Train(); err != nil {
		t.Fatal(err)
	}
	var rawErr, impErr float64
	n := 0
	for i := 0; i < 40; i++ {
		res, err := s.ExecuteWithExact(mkQuery())
		if err != nil {
			t.Fatal(err)
		}
		cell := res.Rows[0].Cells[0]
		rawErr += math.Abs(cell.Raw.Value - cell.Exact)
		impErr += math.Abs(cell.Improved.Value - cell.Exact)
		n++
	}
	t.Logf("avg raw err=%.4f improved err=%.4f (n=%d)", rawErr/float64(n), impErr/float64(n), n)
	if impErr >= rawErr {
		t.Fatalf("learning did not reduce error: improved=%v raw=%v", impErr/float64(n), rawErr/float64(n))
	}
}

func TestSystemTimeBound(t *testing.T) {
	base := systemFixture(t, 20000, 0.5)
	// Slow tier so the budget actually limits the scanned prefix.
	slow := aqp.CostModel{Name: "slow", PlanOverhead: 100 * 1e6, RowsPerSecond: 10000}
	s := NewSystem(aqp.NewEngine(base.Engine().Base(), base.Engine().Sample(), slow), Config{})
	short, err := s.ExecuteTimeBound("SELECT AVG(revenue) FROM sales", 500*1e6) // 500ms
	if err != nil {
		t.Fatal(err)
	}
	long, err := s.ExecuteTimeBound("SELECT AVG(revenue) FROM sales", 1e9) // 1s
	if err != nil {
		t.Fatal(err)
	}
	if short.SimTime >= long.SimTime {
		t.Fatalf("time bounds not respected: %v vs %v", short.SimTime, long.SimTime)
	}
	if short.Rows[0].Cells[0].Raw.StdErr <= long.Rows[0].Cells[0].Raw.StdErr {
		t.Fatal("longer budget should reduce raw error")
	}
}

func formatF(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// TestSystemTheorem1AtSQLSurface checks Theorem 1 end to end: for every
// aggregate cell of every query in a random workload, Verdict's improved
// expected error never exceeds the raw expected error.
func TestSystemTheorem1AtSQLSurface(t *testing.T) {
	s := systemFixture(t, 15000, 0.2)
	rng := randx.New(17)
	mk := func() string {
		switch rng.Intn(3) {
		case 0:
			lo := rng.Uniform(0, 40)
			return "SELECT AVG(revenue) FROM sales WHERE week BETWEEN " +
				formatF(lo) + " AND " + formatF(lo+rng.Uniform(3, 15))
		case 1:
			lo := rng.Uniform(0, 45)
			return "SELECT COUNT(*), SUM(revenue) FROM sales WHERE week > " + formatF(lo)
		default:
			return "SELECT region, AVG(revenue) FROM sales WHERE week < " +
				formatF(rng.Uniform(10, 50)) + " GROUP BY region"
		}
	}
	for i := 0; i < 35; i++ {
		res, err := s.Execute(mk())
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			for _, c := range row.Cells {
				if c.Improved.StdErr > c.Raw.StdErr*(1+1e-9) {
					t.Fatalf("Theorem 1 violated for %s: improved %v > raw %v (query %d)",
						c.Agg, c.Improved.StdErr, c.Raw.StdErr, i)
				}
			}
		}
		if i == 15 {
			if err := s.Verdict().Train(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestNewSystemWithVerdict restores a System's learning state from a
// snapshot and confirms identical inference behaviour.
func TestNewSystemWithVerdict(t *testing.T) {
	s := systemFixture(t, 10000, 0.3)
	for i := 0; i < 10; i++ {
		lo := float64(i * 5)
		sql := "SELECT AVG(revenue) FROM sales WHERE week BETWEEN " +
			formatF(lo) + " AND " + formatF(lo+6)
		if _, err := s.Execute(sql); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Verdict().Train(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Verdict().Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewSystemWithVerdict(s.Engine(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Verdict().SnippetCount() != s.Verdict().SnippetCount() {
		t.Fatalf("snippets: %d vs %d", restored.Verdict().SnippetCount(), s.Verdict().SnippetCount())
	}
	sql := "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 12.00 AND 19.00"
	r1, err := s.Execute(sql)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := restored.Execute(sql)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := r1.Rows[0].Cells[0], r2.Rows[0].Cells[0]
	if math.Abs(c1.Improved.Value-c2.Improved.Value) > 1e-9 ||
		math.Abs(c1.Improved.StdErr-c2.Improved.StdErr) > 1e-9 {
		t.Fatalf("restored system diverged: %+v vs %+v", c1.Improved, c2.Improved)
	}
}
