package core

import (
	"math"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/optimize"
	"repro/internal/storage"
)

// learn fits the correlation parameters l_{g,1..l} by maximizing the
// Gaussian log-likelihood of past raw answers (Appendix A, Eq. 13):
//
//	log Pr(θ_past | Σ_n) = −½ θᵀΣ_n⁻¹θ − ½ log|Σ_n| − n/2·log 2π
//
// over log-length-scales (positivity by construction), with σ²_g estimated
// analytically from the observations (Appendix F.3) and the paper's
// starting point l_{g,k} = max(A_k) − min(A_k). Multi-start keeps the
// non-convex surface from trapping the fit in a poor local optimum.
func (m *model) learn(seed int64) {
	if m.paramsFixed || len(m.entries) < 3 {
		return
	}
	// Use the most recent LearnCap snippets (likelihood evaluation is
	// O(n³); inference still uses the full synopsis).
	ents := m.entries
	if len(ents) > m.cfg.LearnCap {
		ents = ents[len(ents)-m.cfg.LearnCap:]
	}

	t := ents[0].sn.Table
	cols := numericDimCols(t)
	if len(cols) == 0 {
		m.params.Sigma2 = m.sigma2Analytic(m.params)
		m.chol = nil
		return
	}

	mu := m.mu()

	// Centered raw answers under the prior mean.
	resid := make([]float64, len(ents))
	for i, e := range ents {
		resid[i] = e.theta - kernel.PriorMean(e.sn, mu)
	}

	widths := make([]float64, len(cols))
	for i, col := range cols {
		lo, hi := t.Domain(col)
		w := hi - lo
		if w <= 0 {
			w = 1
		}
		widths[i] = w
	}

	negLogLik := func(x []float64) float64 {
		p := kernel.Params{Sigma2: 1, Ells: make(map[int]float64, len(cols))}
		for i, col := range cols {
			// Clamp log-length-scales to a sane window around the domain
			// width to keep the integrals well-conditioned.
			lx := math.Exp(clamp(x[i], math.Log(widths[i]*1e-3), math.Log(widths[i]*1e3)))
			p.Ells[col] = lx
		}
		// σ² is tied to the candidate length-scales by moment matching
		// (Appendix F.3's analytic estimate).
		p.Sigma2 = sigma2For(ents, mu, p)
		n := len(ents)
		s := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				c := kernel.Covariance(ents[i].sn, ents[j].sn, p)
				if i == j {
					c += ents[i].beta * ents[i].beta
				}
				s.Set(i, j, c)
				s.Set(j, i, c)
			}
		}
		chol, err := linalg.NewCholesky(s)
		if err != nil {
			return math.Inf(1)
		}
		qf, err := chol.QuadForm(resid)
		if err != nil {
			return math.Inf(1)
		}
		return 0.5*qf + 0.5*chol.LogDet() + 0.5*float64(n)*math.Log(2*math.Pi)
	}

	start := make([]float64, len(cols))
	lo := make([]float64, len(cols))
	hi := make([]float64, len(cols))
	for i := range start {
		start[i] = math.Log(widths[i]) // paper's l = max−min starting point
		lo[i] = math.Log(widths[i] * 1e-2)
		hi[i] = math.Log(widths[i] * 1e2)
	}
	// Coordinate-wise golden-section identifies each dimension's
	// length-scale reliably; a short simplex pass then polishes joint
	// interactions (the paper's fminunc plays the same local-refinement
	// role). MultiStarts extra restarts guard against poor basins.
	res := optimize.CoordinateDescent(negLogLik, start, lo, hi, 2, 25)
	if m.cfg.MultiStarts > 0 {
		if nm, err := optimize.MultiStart(negLogLik, [][]float64{res.X}, 0, seed, optimize.Options{MaxIter: 80}); err == nil && nm.F < res.F {
			res = nm
		}
	}
	if math.IsInf(res.F, 1) {
		return
	}
	p := kernel.Params{Sigma2: 1, Ells: make(map[int]float64, len(cols))}
	for i, col := range cols {
		p.Ells[col] = math.Exp(clamp(res.X[i], math.Log(widths[i]*1e-3), math.Log(widths[i]*1e3)))
	}
	p.Sigma2 = sigma2For(ents, mu, p)
	if p.Validate() == nil {
		m.params = p
		m.chol = nil // Σ changed; rebuild lazily
	}
}

func numericDimCols(t *storage.Table) []int {
	var out []int
	for _, col := range t.Schema().DimensionCols() {
		if t.Schema().Col(col).Kind == storage.Numeric {
			out = append(out, col)
		}
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// LogLikelihood exposes Eq. 13 for the given parameters over the model's
// current synopsis — used by tests and the parameter-learning experiment
// (Figure 7) to compare planted against estimated parameters.
func (m *model) logLikelihood(p kernel.Params) float64 {
	n := len(m.entries)
	if n == 0 {
		return 0
	}
	mu := m.mu()
	resid := make([]float64, n)
	s := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		resid[i] = m.entries[i].theta - kernel.PriorMean(m.entries[i].sn, mu)
		for j := i; j < n; j++ {
			c := kernel.Covariance(m.entries[i].sn, m.entries[j].sn, p)
			if i == j {
				c += m.entries[i].beta * m.entries[i].beta
			}
			s.Set(i, j, c)
			s.Set(j, i, c)
		}
	}
	chol, err := linalg.NewCholesky(s)
	if err != nil {
		return math.Inf(-1)
	}
	qf, err := chol.QuadForm(resid)
	if err != nil {
		return math.Inf(-1)
	}
	return -0.5*qf - 0.5*chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
}
