package core

import (
	"math"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/query"
)

// Improved is Verdict's output for one snippet: the improved answer and
// improved error (Definition in §2.1), plus diagnostics the experiments
// report.
type Improved struct {
	// Answer and Err are θ̂ and β̂ — the model-based values when the model
	// passed validation, the raw values otherwise.
	Answer float64
	Err    float64
	// UsedModel reports whether the model-based answer survived validation.
	UsedModel bool
	// ModelAnswer/ModelErr are θ̈ and β̈ (Eq. 12) regardless of validation,
	// for diagnostics; they equal the raw values when no model exists.
	ModelAnswer float64
	ModelErr    float64
	// PriorPrediction is the GP prediction from past snippets alone (the θ
	// of Eq. 11) — what the model expected before seeing the raw answer.
	PriorPrediction float64
	// Gamma2 is γ² of Eq. 11: the model's predictive variance.
	Gamma2 float64
}

// inferOn computes the improved answer for a new snippet given its raw
// (θ_{n+1}, β_{n+1}), using the block forms of Eq. 11–12:
//
//	γ² = κ̄² − kᵀ Σ_n⁻¹ k
//	θ' = μ̄_{n+1} + kᵀ Σ_n⁻¹ (θ_n − μ_n)
//	θ̈  = (β²·θ' + γ²·θ_raw) / (β² + γ²)
//	β̈² = β²·γ² / (β² + γ²)
//
// followed by Appendix B's model validation. Both steps cost O(n²).
//
// It reads only the immutable published inferState, so any number of
// sessions can infer concurrently while the single writer records into the
// master synopsis and republishes.
func inferOn(st *inferState, sn *query.Snippet, raw query.ScalarEstimate, cfg Config) Improved {
	return inferOnMemo(st, sn, raw, cfg, nil)
}

// inferOnMemo is inferOn with an optional covariance-factor memo (a
// standing plan carries one per snippet; see planInfer). The memo only
// short-circuits the per-dimension integral factors of the covariance
// vector k and the self-variance κ̄², each guarded by an exact input
// signature (kernel.CovarianceMemo), so the result is bit-identical to
// the uncached computation — the replay-equality audit every pushed
// standing Result undergoes exercises exactly this claim.
func inferOnMemo(st *inferState, sn *query.Snippet, raw query.ScalarEstimate, cfg Config, mem *snippetMemo) Improved {
	out := Improved{
		Answer:      raw.Value,
		Err:         raw.StdErr,
		ModelAnswer: raw.Value,
		ModelErr:    raw.StdErr,
	}
	if st == nil || len(st.entries) == 0 {
		return out // empty synopsis: Theorem 1's equality case
	}
	if st.chol == nil || st.chol.Size() != len(st.entries) {
		return out // factorization unavailable (degenerate Σ): raw passthrough
	}

	n := len(st.entries)
	k := make([]float64, n)
	resid := make([]float64, n)
	mu := st.mu
	var pairs []kernel.PairMemo
	var self *kernel.PairMemo
	if mem != nil {
		pairs, self = mem.pairsFor(n), &mem.self
	}
	for i := range st.entries {
		e := &st.entries[i]
		if pairs != nil {
			k[i] = kernel.CovarianceMemo(e.sn, sn, st.params, &pairs[i])
		} else {
			k[i] = kernel.Covariance(e.sn, sn, st.params)
		}
		resid[i] = e.theta - kernel.PriorMean(e.sn, mu)
	}
	// Prior variance of θ̄_{n+1}: kernel self-covariance plus the
	// finite-population nugget the engine reported for this snippet.
	kappa2 := kernel.CovarianceMemo(sn, sn, st.params, self) + raw.PopErr*raw.PopErr

	w, err := st.chol.Solve(k)
	if err != nil {
		return out
	}
	gamma2 := kappa2 - linalg.Dot(k, w)
	if gamma2 < 0 {
		gamma2 = 0 // numerical floor; Σ_n ⪰ exact-answer covariance
	}
	prior := kernel.PriorMean(sn, mu) + linalg.Dot(w, resid)
	out.PriorPrediction = prior
	out.Gamma2 = gamma2

	beta2 := raw.StdErr * raw.StdErr
	if math.IsInf(beta2, 0) || beta2 >= math.MaxFloat64 {
		// The AQP engine had nothing: the model alone answers, with γ as
		// the error (the β→∞ limit of Eq. 12).
		out.ModelAnswer = prior
		out.ModelErr = math.Sqrt(gamma2)
	} else {
		denom := beta2 + gamma2
		if denom == 0 {
			// Both exact: keep the raw answer (β̂ = β = 0).
			return out
		}
		out.ModelAnswer = (beta2*prior + gamma2*raw.Value) / denom
		out.ModelErr = math.Sqrt(beta2 * gamma2 / denom)
	}

	if cfg.DisableValidation || validate(sn, raw, out, cfg) {
		out.Answer = out.ModelAnswer
		out.Err = out.ModelErr
		out.UsedModel = true
	}
	return out
}

// validate implements Appendix B: reject negative FREQ estimates, and
// reject models whose likely region (θ̈ ± α_{δv}·β_raw) excludes the raw
// answer.
func validate(sn *query.Snippet, raw query.ScalarEstimate, res Improved, cfg Config) bool {
	if sn.Kind == query.FreqAgg && res.ModelAnswer < 0 {
		return false
	}
	if math.IsInf(raw.StdErr, 0) || raw.StdErr >= math.MaxFloat64 {
		// No raw information to contradict the model.
		return true
	}
	if raw.StdErr == 0 {
		// Exact raw answer: model must agree exactly to add anything;
		// Eq. 12 already returns the raw answer, so accept.
		return true
	}
	t := cfg.validationMultiplier() * raw.StdErr
	return math.Abs(raw.Value-res.ModelAnswer) <= t
}

// ErrorBound converts an Improved result into the half-width of the
// δ-confidence interval, clamping FREQ intervals at zero per Appendix B.
func ErrorBound(sn *query.Snippet, res Improved, cfg Config) (lo, hi float64) {
	cfg = cfg.withDefaults()
	half := cfg.confidenceMultiplier() * res.Err
	lo, hi = res.Answer-half, res.Answer+half
	if sn.Kind == query.FreqAgg && lo < 0 {
		lo = 0
	}
	return lo, hi
}
