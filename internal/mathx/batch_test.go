package mathx

import (
	"math"
	"testing"
)

// TestAddSliceMatchesSequential: batch accumulation must agree with per-value
// Welford up to floating-point noise.
func TestAddSliceMatchesSequential(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = math.Sin(float64(i)*0.7)*100 + float64(i%17)
	}
	var seq, batch Moments
	for _, x := range xs {
		seq.Add(x)
	}
	// Fold in uneven chunks to exercise the merge path.
	for lo := 0; lo < len(xs); {
		hi := lo + 1 + (lo*7)%997
		if hi > len(xs) {
			hi = len(xs)
		}
		batch.AddSlice(xs[lo:hi])
		lo = hi
	}
	if seq.Count() != batch.Count() {
		t.Fatalf("count %d != %d", seq.Count(), batch.Count())
	}
	if d := math.Abs(seq.Mean() - batch.Mean()); d > 1e-9 {
		t.Fatalf("mean diff %g", d)
	}
	if d := math.Abs(seq.SampleVariance()-batch.SampleVariance()) / seq.SampleVariance(); d > 1e-9 {
		t.Fatalf("variance rel diff %g", d)
	}
}

// TestAddZerosAndWeighted: the O(1) indicator paths must match per-value
// accumulation of the same multiset.
func TestAddZerosAndWeighted(t *testing.T) {
	var seq, batch Moments
	for i := 0; i < 300; i++ {
		seq.Add(1)
	}
	for i := 0; i < 700; i++ {
		seq.Add(0)
	}
	batch.AddWeighted(1, 300)
	batch.AddZeros(700)
	if batch.Count() != 1000 {
		t.Fatalf("count=%d", batch.Count())
	}
	if d := math.Abs(seq.Mean() - batch.Mean()); d > 1e-12 {
		t.Fatalf("mean diff %g", d)
	}
	if d := math.Abs(seq.Variance() - batch.Variance()); d > 1e-12 {
		t.Fatalf("variance diff %g (seq %g batch %g)", d, seq.Variance(), batch.Variance())
	}
	// Non-positive weights are no-ops.
	before := batch
	batch.AddWeighted(5, 0)
	batch.AddWeighted(5, -3)
	batch.AddZeros(0)
	if batch != before {
		t.Fatal("non-positive weight mutated accumulator")
	}
}

// TestAddSliceEmpty: empty slices are no-ops.
func TestAddSliceEmpty(t *testing.T) {
	var m Moments
	m.AddSlice(nil)
	m.AddSlice([]float64{})
	if m.Count() != 0 {
		t.Fatalf("count=%d", m.Count())
	}
	m.Add(2)
	before := m
	m.AddSlice(nil)
	if m != before {
		t.Fatal("empty AddSlice mutated accumulator")
	}
}
