// Package mathx provides the scalar numerical routines Verdict's inference
// relies on: the analytic double integral of the squared-exponential kernel
// (Appendix F.1 of the paper), normal-distribution quantiles used for
// confidence-interval multipliers, and streaming moment accumulators used by
// the AQP engine's CLT-based error estimation.
//
// Everything here is pure-Go, allocation-free, and deterministic.
package mathx

import (
	"errors"
	"math"
)

// SqrtPi is √π, used by the kernel integral closed form.
const SqrtPi = 1.7724538509055160272981674833411

// ErrBadInterval is returned by quantile helpers when inputs are out of range.
var ErrBadInterval = errors.New("mathx: probability not in (0,1)")

// kernelAntideriv evaluates the indefinite double integral of
// exp(-(x-y)²/z²), following Appendix F.1:
//
//	f(x,y) = -z²/2 · exp(-(x-y)²/z²) - (√π/2)·z·(x-y)·erf((x-y)/z)
//
// The definite integral over [a,b]×[c,d] is f(b,d)-f(b,c)-f(a,d)+f(a,c).
func kernelAntideriv(x, y, z float64) float64 {
	d := x - y
	u := d / z
	return -0.5*z*z*math.Exp(-u*u) - 0.5*SqrtPi*z*d*math.Erf(u)
}

// SqExpDoubleIntegral computes ∫_a^b ∫_c^d exp(-(x-y)²/z²) dy dx
// analytically. z is the kernel length-scale and must be positive; a<=b and
// c<=d are the two integration ranges (snippet selection ranges on one
// dimension attribute).
//
// Degenerate ranges (a==b or c==d) integrate to zero by definition; callers
// that need point-equality semantics (categorical attributes) should use the
// overlap factors in internal/kernel instead.
func SqExpDoubleIntegral(a, b, c, d, z float64) float64 {
	if z <= 0 {
		panic("mathx: non-positive length-scale")
	}
	if a == b || c == d {
		return 0
	}
	// When z dwarfs every point distance, the antiderivative's -z²/2·exp
	// term suffers catastrophic cancellation (its magnitude is ~z² while
	// the answer is ~area). Switch to the second-order Taylor expansion
	// exp(-d²/z²) ≈ 1 − d²/z², whose truncation error is O((d/z)⁴).
	dmax := math.Max(math.Max(math.Abs(a-c), math.Abs(a-d)),
		math.Max(math.Abs(b-c), math.Abs(b-d)))
	if dmax < 1e-4*z {
		area := (b - a) * (d - c)
		quart := func(v float64) float64 { return v * v * v * v }
		i2 := (quart(b-c) - quart(a-c) - quart(b-d) + quart(a-d)) / 12
		return area - i2/(z*z)
	}
	v := kernelAntideriv(b, d, z) - kernelAntideriv(b, c, z) -
		kernelAntideriv(a, d, z) + kernelAntideriv(a, c, z)
	// The integrand is positive, so the integral is non-negative; tiny
	// negative values can appear from cancellation on far-apart ranges.
	if v < 0 {
		return 0
	}
	return v
}

// SqExpMeanIntegral computes the mean of exp(-(x-y)²/z²) over [a,b]×[c,d]:
// the double integral divided by (b-a)(d-c). It is the covariance factor for
// AVG-type snippets, which normalize by region volume (Appendix F.3).
// For degenerate ranges it takes the pointwise limit.
func SqExpMeanIntegral(a, b, c, d, z float64) float64 {
	wx, wy := b-a, d-c
	switch {
	case wx == 0 && wy == 0:
		u := (a - c) / z
		return math.Exp(-u * u)
	case wx == 0:
		return sqExpLineIntegral(a, c, d, z) / wy
	case wy == 0:
		return sqExpLineIntegral(c, a, b, z) / wx
	default:
		return SqExpDoubleIntegral(a, b, c, d, z) / (wx * wy)
	}
}

// sqExpLineIntegral computes ∫_c^d exp(-(x-y)²/z²) dy for a fixed x:
// (√π/2)·z·(erf((x-c)/z) - erf((x-d)/z)).
func sqExpLineIntegral(x, c, d, z float64) float64 {
	return 0.5 * SqrtPi * z * (math.Erf((x-c)/z) - math.Erf((x-d)/z))
}

// NormalQuantile returns z_p such that P(Z <= z_p) = p for a standard normal
// Z. It uses the Acklam rational approximation (relative error < 1.15e-9),
// which is sufficient for confidence-interval multipliers.
func NormalQuantile(p float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, ErrBadInterval
	}
	// Coefficients for the Acklam inverse-normal approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step using the normal pdf/cdf.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// ConfidenceMultiplier returns α_δ, the half-width multiplier such that a
// standard normal falls within (-α_δ, α_δ) with probability δ (Section 3.4).
func ConfidenceMultiplier(delta float64) (float64, error) {
	if !(delta > 0 && delta < 1) {
		return 0, ErrBadInterval
	}
	return NormalQuantile(0.5 + delta/2)
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF is the standard normal density.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// Moments accumulates count, mean and variance online (Welford's algorithm).
// The zero value is ready to use. It is the building block for the AQP
// engine's running estimates and their CLT standard errors.
type Moments struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// AddWeighted folds an observation with an integer multiplicity, in O(1):
// w copies of x form a sub-population with mean x and zero scatter, so the
// fold is a single parallel-Welford merge.
func (m *Moments) AddWeighted(x float64, w int64) {
	if w <= 0 {
		return
	}
	m.Merge(Moments{n: w, mean: x})
}

// AddZeros folds k zero observations in O(1) — the FREQ indicator path for
// rows outside the selection region.
func (m *Moments) AddZeros(k int64) { m.AddWeighted(0, k) }

// AddSlice folds a batch of observations with two tight passes (sum, then
// squared deviations) and one merge, avoiding per-value function-call and
// division overhead on the vectorized scan path.
func (m *Moments) AddSlice(xs []float64) {
	n := len(xs)
	if n == 0 {
		return
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	var m2 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
	}
	m.Merge(Moments{n: int64(n), mean: mean, m2: m2})
}

// Merge combines another accumulator into m (parallel Welford merge).
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	delta := o.mean - m.mean
	m.m2 += o.m2 + delta*delta*float64(m.n)*float64(o.n)/float64(n)
	m.mean += delta * float64(o.n) / float64(n)
	m.n = n
}

// Count returns the number of observations.
func (m *Moments) Count() int64 { return m.n }

// Mean returns the running mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the population variance (0 for fewer than 2 points).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// SampleVariance returns the Bessel-corrected variance.
func (m *Moments) SampleVariance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdErr returns the CLT standard error of the mean, √(s²/n).
func (m *Moments) StdErr() float64 {
	if m.n < 2 {
		return math.Inf(1)
	}
	return math.Sqrt(m.SampleVariance() / float64(m.n))
}

// Quantile returns the q-th quantile (0<=q<=1) of xs using linear
// interpolation on a sorted copy. xs may be unsorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

func insertionSort(xs []float64) {
	// Quantile inputs in this codebase are small (per-experiment error
	// samples); a branch-light insertion sort beats sort.Float64s there
	// and keeps the package free of interface allocations.
	if len(xs) > 64 {
		quickSort(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func quickSort(xs []float64) {
	for len(xs) > 64 {
		p := partition(xs)
		if p < len(xs)-p {
			quickSort(xs[:p])
			xs = xs[p+1:]
		} else {
			quickSort(xs[p+1:])
			xs = xs[:p]
		}
	}
	insertionSort(xs)
}

func partition(xs []float64) int {
	mid := len(xs) / 2
	hi := len(xs) - 1
	// Median-of-three pivot.
	if xs[mid] < xs[0] {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if xs[hi] < xs[0] {
		xs[hi], xs[0] = xs[0], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi-1] = xs[hi-1], xs[mid]
	i, j := 0, hi-1
	for {
		for i++; xs[i] < pivot; i++ {
		}
		for j--; xs[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
	xs[i], xs[hi-1] = xs[hi-1], xs[i]
	return i
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// RelativeError returns |approx-exact| / max(|exact|, floor). The floor
// guards group averages near zero, mirroring how the paper reports relative
// errors on aggregate answers.
func RelativeError(approx, exact, floor float64) float64 {
	den := math.Abs(exact)
	if den < floor {
		den = floor
	}
	if den == 0 {
		if approx == exact {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(approx-exact) / den
}
