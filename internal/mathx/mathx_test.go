package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericDoubleIntegral brute-forces ∫∫ exp(-(x-y)²/z²) with a midpoint rule
// as an oracle for the analytic closed form.
func numericDoubleIntegral(a, b, c, d, z float64, steps int) float64 {
	hx := (b - a) / float64(steps)
	hy := (d - c) / float64(steps)
	sum := 0.0
	for i := 0; i < steps; i++ {
		x := a + (float64(i)+0.5)*hx
		for j := 0; j < steps; j++ {
			y := c + (float64(j)+0.5)*hy
			u := (x - y) / z
			sum += math.Exp(-u * u)
		}
	}
	return sum * hx * hy
}

func TestSqExpDoubleIntegralMatchesNumeric(t *testing.T) {
	cases := []struct{ a, b, c, d, z float64 }{
		{0, 1, 0, 1, 1},
		{0, 1, 0, 1, 0.1},
		{0, 1, 2, 3, 0.5},
		{-2, -1, 1, 4, 2},
		{0, 10, 0, 10, 3},
		{5, 6, 5.5, 5.7, 0.25},
	}
	for _, c := range cases {
		got := SqExpDoubleIntegral(c.a, c.b, c.c, c.d, c.z)
		want := numericDoubleIntegral(c.a, c.b, c.c, c.d, c.z, 400)
		if math.Abs(got-want) > 1e-3*math.Max(1, want) {
			t.Errorf("integral(%v)=%.6f want %.6f", c, got, want)
		}
	}
}

// boundedRanges maps an arbitrary quick-generated seed to well-formed
// integration ranges within [-span, span] and a positive length-scale.
func boundedRanges(seed int64, span float64) (a, b, c, d, z float64) {
	r := rand.New(rand.NewSource(seed))
	a = (r.Float64()*2 - 1) * span
	b = a + r.Float64()*span
	c = (r.Float64()*2 - 1) * span
	d = c + r.Float64()*span
	z = 0.1 + r.Float64()*span
	return
}

func TestSqExpDoubleIntegralSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		a, b, c, d, z := boundedRanges(seed, 10)
		// Swapping the two ranges must not change the value (kernel is
		// symmetric in its arguments).
		x := SqExpDoubleIntegral(a, b, c, d, z)
		y := SqExpDoubleIntegral(c, d, a, b, z)
		return math.Abs(x-y) <= 1e-9*(1+math.Abs(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSqExpDoubleIntegralBounds(t *testing.T) {
	f := func(seed int64) bool {
		a, b, c, d, z := boundedRanges(seed, 20)
		v := SqExpDoubleIntegral(a, b, c, d, z)
		// 0 <= integral <= area (integrand in (0,1]).
		area := (b - a) * (d - c)
		return v >= 0 && v <= area*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSqExpMeanIntegralIdenticalRanges(t *testing.T) {
	// For identical point ranges the mean integral is exp(0)=1.
	if got := SqExpMeanIntegral(2, 2, 2, 2, 1); got != 1 {
		t.Fatalf("point mean integral = %v, want 1", got)
	}
	// Mean over identical intervals approaches 1 as z grows.
	if got := SqExpMeanIntegral(0, 1, 0, 1, 1e6); got < 0.999999 {
		t.Fatalf("wide-kernel mean = %v, want ~1", got)
	}
	// Mean is in (0,1].
	if got := SqExpMeanIntegral(0, 1, 3, 4, 0.5); got <= 0 || got > 1 {
		t.Fatalf("mean integral out of (0,1]: %v", got)
	}
}

func TestSqExpMeanIntegralDegenerateLine(t *testing.T) {
	// Line-vs-interval limit matches a numeric 1-D integral.
	x, c, d, z := 0.3, 0.0, 1.0, 0.7
	want := 0.0
	steps := 100000
	h := (d - c) / float64(steps)
	for j := 0; j < steps; j++ {
		y := c + (float64(j)+0.5)*h
		u := (x - y) / z
		want += math.Exp(-u*u) * h
	}
	want /= d - c
	got := SqExpMeanIntegral(x, x, c, d, z)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("line mean integral = %v, want %v", got, want)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963985},
		{0.995, 2.575829304},
		{0.95, 1.644853627},
		{0.025, -1.959963985},
		{0.0001, -3.719016485},
	}
	for _, c := range cases {
		got, err := NormalQuantile(c.p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v): %v", c.p, err)
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormalQuantile(%v)=%v want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for p := 0.001; p < 0.999; p += 0.013 {
		z, err := NormalQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if back := NormalCDF(z); math.Abs(back-p) > 1e-8 {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestNormalQuantileRejectsBadInput(t *testing.T) {
	for _, p := range []float64{0, 1, -0.2, 1.5, math.NaN()} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("NormalQuantile(%v) should fail", p)
		}
	}
}

func TestConfidenceMultiplier(t *testing.T) {
	got, err := ConfidenceMultiplier(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.959963985) > 1e-6 {
		t.Fatalf("alpha_0.95 = %v", got)
	}
}

func TestMomentsAgainstClosedForm(t *testing.T) {
	var m Moments
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		m.Add(x)
	}
	if m.Count() != 8 || m.Mean() != 5 {
		t.Fatalf("mean=%v n=%v", m.Mean(), m.Count())
	}
	if math.Abs(m.Variance()-4) > 1e-12 {
		t.Fatalf("variance=%v want 4", m.Variance())
	}
	if math.Abs(m.SampleVariance()-32.0/7.0) > 1e-12 {
		t.Fatalf("sample variance=%v", m.SampleVariance())
	}
}

func TestMomentsMergeEqualsSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		var all Moments
		for _, x := range xs {
			all.Add(x)
		}
		cut := r.Intn(n + 1)
		var a, b Moments
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		return a.Count() == all.Count() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMomentsStdErrShrinks(t *testing.T) {
	var m Moments
	r := rand.New(rand.NewSource(7))
	prev := math.Inf(1)
	for step := 0; step < 5; step++ {
		for i := 0; i < 1000; i++ {
			m.Add(r.NormFloat64())
		}
		se := m.StdErr()
		if se >= prev {
			t.Fatalf("stderr did not shrink: %v -> %v", prev, se)
		}
		prev = se
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0=%v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1=%v", got)
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("median=%v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25=%v", got)
	}
	// Input must stay untouched.
	if xs[0] != 3 || xs[4] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantileLargeMatchesSortOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		got := Quantile(xs, q)
		// Oracle: count of values below must bracket q.
		below := 0
		for _, x := range xs {
			if x < got {
				below++
			}
		}
		frac := float64(below) / float64(len(xs))
		if math.Abs(frac-q) > 0.01 {
			t.Fatalf("q=%v -> below frac %v", q, frac)
		}
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(11, 10, 0); got != 0.1 {
		t.Fatalf("rel err = %v", got)
	}
	if got := RelativeError(1, 0, 0.5); got != 2 {
		t.Fatalf("floored rel err = %v", got)
	}
	if got := RelativeError(0, 0, 0); got != 0 {
		t.Fatalf("zero/zero = %v", got)
	}
	if !math.IsInf(RelativeError(1, 0, 0), 1) {
		t.Fatal("nonzero/zero should be +Inf")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}
