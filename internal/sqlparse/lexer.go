// Package sqlparse implements a lexer, AST and recursive-descent parser for
// the class of analytical SQL the paper's Verdict engine supports (§2.2):
// flat SELECT queries with SUM/COUNT/AVG aggregates (MIN/MAX are parsed but
// flagged unsupported), foreign-key joins, conjunctive selections with
// equality/inequality/BETWEEN/IN predicates, GROUP BY and HAVING. Features
// outside the class — disjunctions, LIKE filters, subqueries — are parsed
// far enough to be *detected and classified*, because the query type checker
// (Table 3's generality measurement) must count them.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokSymbol // punctuation and operators: ( ) , * = != <> < <= > >= . ;
)

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int    // byte offset in the input
}

// keywords recognized by the lexer (matched case-insensitively).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "LIKE": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"ON": true, "SUM": true, "COUNT": true, "AVG": true, "MIN": true,
	"MAX": true, "DISTINCT": true, "ASC": true, "DESC": true, "IS": true,
	"NULL": true, "EXISTS": true, "UNION": true, "ALL": true,
}

// LexError reports a lexical failure with its position.
type LexError struct {
	Pos int
	Msg string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("sql lex error at %d: %s", e.Pos, e.Msg)
}

// Lex tokenizes the input.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				d := input[i]
				if unicode.IsDigit(rune(d)) {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &LexError{Pos: start, Msg: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TokSymbol, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokSymbol, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokSymbol, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokSymbol, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokSymbol, Text: "!=", Pos: i})
				i += 2
			} else {
				return nil, &LexError{Pos: i, Msg: "unexpected '!'"}
			}
		case strings.ContainsRune("(),*=.;+-/%", rune(c)):
			toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: i})
			i++
		default:
			return nil, &LexError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}
