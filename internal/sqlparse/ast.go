package sqlparse

import (
	"fmt"
	"strings"
)

// AggFunc enumerates aggregate functions the parser recognizes. Verdict
// internally computes everything from AVG and FREQ (§2.3); SUM and COUNT are
// rewritten onto those at execution time, while MIN/MAX are parsed so the
// type checker can classify queries that use them as unsupported.
type AggFunc uint8

// Aggregate functions.
const (
	AggNone AggFunc = iota
	AggSum
	AggCount
	AggAvg
	AggMin
	AggMax
)

func (a AggFunc) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "NONE"
	}
}

// Expr is an arithmetic expression over column references and literals —
// the "derived attribute" arguments the paper allows inside aggregates
// (e.g. revenue * discount).
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColRef references a column, optionally table-qualified.
type ColRef struct {
	Table string // optional qualifier
	Name  string
}

func (c *ColRef) exprNode() {}
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

func (n *NumberLit) exprNode()      {}
func (n *NumberLit) String() string { return trimFloat(n.Value) }

// StringLit is a string literal.
type StringLit struct{ Value string }

func (s *StringLit) exprNode()      {}
func (s *StringLit) String() string { return "'" + strings.ReplaceAll(s.Value, "'", "''") + "'" }

// Star is the * argument of COUNT(*).
type Star struct{}

func (s *Star) exprNode()      {}
func (s *Star) String() string { return "*" }

// AggExpr is an aggregate call appearing inside an expression — HAVING
// clauses compare aggregates (e.g. HAVING SUM(a3) > 100).
type AggExpr struct {
	Agg AggFunc
	Arg Expr // Star for COUNT(*)
}

func (a *AggExpr) exprNode() {}
func (a *AggExpr) String() string {
	return a.Agg.String() + "(" + a.Arg.String() + ")"
}

// BinaryExpr is an arithmetic combination of two expressions.
type BinaryExpr struct {
	Op          string // + - * / %
	Left, Right Expr
}

func (b *BinaryExpr) exprNode() {}
func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// SelectItem is one projection: either a plain expression (a group column)
// or an aggregate over an expression.
type SelectItem struct {
	Agg      AggFunc
	Distinct bool // COUNT(DISTINCT ...) — unsupported, but detected
	Expr     Expr // nil only for COUNT(*) (Expr = Star)
	Alias    string
}

func (s SelectItem) String() string {
	var body string
	if s.Agg == AggNone {
		body = s.Expr.String()
	} else {
		inner := s.Expr.String()
		if s.Distinct {
			inner = "DISTINCT " + inner
		}
		body = s.Agg.String() + "(" + inner + ")"
	}
	if s.Alias != "" {
		body += " AS " + s.Alias
	}
	return body
}

// CompareOp enumerates predicate comparison operators.
type CompareOp uint8

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CompareOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Predicate is a node of the WHERE/HAVING condition tree.
type Predicate interface {
	fmt.Stringer
	predNode()
}

// Compare is <expr> <op> <expr>.
type Compare struct {
	Op          CompareOp
	Left, Right Expr
}

func (c *Compare) predNode() {}
func (c *Compare) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// Between is <expr> BETWEEN <lo> AND <hi>.
type Between struct {
	Arg    Expr
	Lo, Hi Expr
}

func (b *Between) predNode() {}
func (b *Between) String() string {
	return b.Arg.String() + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String()
}

// In is <expr> IN (v1, v2, ...).
type In struct {
	Arg    Expr
	Values []Expr
	Negate bool
}

func (i *In) predNode() {}
func (i *In) String() string {
	parts := make([]string, len(i.Values))
	for k, v := range i.Values {
		parts[k] = v.String()
	}
	op := " IN ("
	if i.Negate {
		op = " NOT IN ("
	}
	return i.Arg.String() + op + strings.Join(parts, ", ") + ")"
}

// Like is <expr> LIKE 'pattern' — detected so the checker can reject it.
type Like struct {
	Arg     Expr
	Pattern string
	Negate  bool
}

func (l *Like) predNode() {}
func (l *Like) String() string {
	op := " LIKE "
	if l.Negate {
		op = " NOT LIKE "
	}
	return l.Arg.String() + op + "'" + l.Pattern + "'"
}

// And is a conjunction.
type And struct{ Left, Right Predicate }

func (a *And) predNode() {}
func (a *And) String() string {
	return "(" + a.Left.String() + " AND " + a.Right.String() + ")"
}

// Or is a disjunction — parsed so the checker can classify the query as
// unsupported (§2.2 excludes disjunctions).
type Or struct{ Left, Right Predicate }

func (o *Or) predNode() {}
func (o *Or) String() string {
	return "(" + o.Left.String() + " OR " + o.Right.String() + ")"
}

// Not is a negation.
type Not struct{ Inner Predicate }

func (n *Not) predNode()      {}
func (n *Not) String() string { return "NOT (" + n.Inner.String() + ")" }

// JoinClause is one JOIN ... ON a = b item.
type JoinClause struct {
	Table    string
	Alias    string
	LeftCol  *ColRef
	RightCol *ColRef
}

// SelectStmt is the root of a parsed query.
type SelectStmt struct {
	Items   []SelectItem
	Table   string
	Alias   string
	Joins   []JoinClause
	Where   Predicate // nil if absent
	GroupBy []*ColRef
	Having  Predicate // nil if absent
	OrderBy []*ColRef
	Limit   int // -1 if absent

	// HasSubquery is set when the FROM clause or a predicate contained a
	// nested SELECT; the statement body is then only partially populated
	// but the checker can still classify it.
	HasSubquery bool
}

// String renders the statement back to SQL (canonical form, used by the
// synopsis to key repeated queries).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.Table)
	if s.Alias != "" {
		sb.WriteString(" AS " + s.Alias)
	}
	for _, j := range s.Joins {
		sb.WriteString(" JOIN " + j.Table)
		if j.Alias != "" {
			sb.WriteString(" AS " + j.Alias)
		}
		sb.WriteString(" ON " + j.LeftCol.String() + " = " + j.RightCol.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, g := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	return sb.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
