package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntactic failure with its source position. Pos is
// the raw byte offset the parser tracks; Parse annotates errors with the
// 1-based Line/Column and the source text so messages point at the
// offending character instead of a bare offset.
type ParseError struct {
	Pos    int
	Msg    string
	Line   int    // 1-based source line; 0 when unannotated
	Column int    // 1-based column within Line (byte-counted)
	Source string // the SQL being parsed; "" when unannotated
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sql parse error at line %d, column %d: %s", e.Line, e.Column, e.Msg)
	}
	return fmt.Sprintf("sql parse error at %d: %s", e.Pos, e.Msg)
}

// Verbose renders the error with its source line and a caret under the
// offending position — the serving layer's 400 envelope carries it as the
// error detail. Falls back to Error() when the error is unannotated.
func (e *ParseError) Verbose() string {
	var sb strings.Builder
	sb.WriteString(e.Error())
	if e.Source == "" || e.Line <= 0 {
		return sb.String()
	}
	lines := strings.Split(e.Source, "\n")
	if e.Line > len(lines) {
		return sb.String()
	}
	line := lines[e.Line-1]
	sb.WriteByte('\n')
	sb.WriteString("  ")
	sb.WriteString(line)
	sb.WriteByte('\n')
	sb.WriteString("  ")
	// Walk the line up to the error column, preserving tabs so the caret
	// stays aligned under tab-indented sources.
	for i := 1; i < e.Column; i++ {
		if i-1 < len(line) && line[i-1] == '\t' {
			sb.WriteByte('\t')
		} else {
			sb.WriteByte(' ')
		}
	}
	sb.WriteByte('^')
	return sb.String()
}

// annotate fills Line/Column/Source from the byte offset. An offset past
// the input (EOF errors) points one column past the last character.
func (e *ParseError) annotate(input string) *ParseError {
	pos := e.Pos
	if pos > len(input) {
		pos = len(input)
	}
	line, col := 1, 1
	for i := 0; i < pos; i++ {
		if input[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	e.Line, e.Column, e.Source = line, col, input
	return e
}

type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses one SELECT statement. Syntax errors come back as
// a *ParseError annotated with line, column and source context (lexical
// failures are folded into the same type, so callers see one shape).
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		if le, ok := err.(*LexError); ok {
			return nil, (&ParseError{Pos: le.Pos, Msg: le.Msg}).annotate(input)
		}
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err == nil {
		// Allow a trailing semicolon.
		p.accept(TokSymbol, ";")
		if p.cur().Kind != TokEOF {
			err = p.errorf("trailing input %q", p.cur().Text)
		}
	}
	if err != nil {
		if pe, ok := err.(*ParseError); ok {
			return nil, pe.annotate(input)
		}
		return nil, err
	}
	return stmt, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// accept consumes the next token if it matches kind and (optionally) text.
func (p *parser) accept(kind TokKind, text string) bool {
	t := p.cur()
	if t.Kind != kind {
		return false
	}
	if text != "" && t.Text != text {
		return false
	}
	p.pos++
	return true
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind != kind || (text != "" && t.Text != text) {
		return Token{}, p.errorf("expected %q, found %q", text, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	if p.cur().Kind == TokSymbol && p.cur().Text == "(" {
		// Derived table: record and skip the balanced parenthesis group.
		stmt.HasSubquery = true
		if err := p.skipParens(); err != nil {
			return nil, err
		}
		if p.accept(TokKeyword, "AS") {
			p.accept(TokIdent, "")
		} else {
			p.accept(TokIdent, "")
		}
	} else {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		stmt.Table = t.Text
		if p.accept(TokKeyword, "AS") {
			a, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.Alias = a.Text
		} else if p.cur().Kind == TokIdent {
			stmt.Alias = p.next().Text
		}
	}

	// JOIN clauses.
	for {
		if p.accept(TokKeyword, "INNER") {
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if p.cur().Kind == TokKeyword && (p.cur().Text == "LEFT" || p.cur().Text == "RIGHT") {
			p.next()
			p.accept(TokKeyword, "OUTER")
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(TokKeyword, "JOIN") {
			break
		}
		j := JoinClause{}
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		j.Table = t.Text
		if p.accept(TokKeyword, "AS") {
			a, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			j.Alias = a.Text
		} else if p.cur().Kind == TokIdent {
			j.Alias = p.next().Text
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		lc, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		rc, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		j.LeftCol, j.RightCol = lc, rc
		stmt.Joins = append(stmt.Joins, j)
	}

	if p.accept(TokKeyword, "WHERE") {
		pred, sub, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		stmt.Where = pred
		stmt.HasSubquery = stmt.HasSubquery || sub
	}

	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(TokKeyword, "HAVING") {
		pred, sub, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		stmt.Having = pred
		stmt.HasSubquery = stmt.HasSubquery || sub
	}

	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, c)
			p.accept(TokKeyword, "ASC")
			p.accept(TokKeyword, "DESC")
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, p.errorf("bad LIMIT %q", t.Text)
		}
		stmt.Limit = v
	}
	return stmt, nil
}

// skipParens consumes a balanced parenthesized token group.
func (p *parser) skipParens() error {
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch {
		case t.Kind == TokEOF:
			return &ParseError{Pos: t.Pos, Msg: "unbalanced parentheses"}
		case t.Kind == TokSymbol && t.Text == "(":
			depth++
		case t.Kind == TokSymbol && t.Text == ")":
			depth--
		}
	}
	return nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		agg := AggNone
		switch t.Text {
		case "SUM":
			agg = AggSum
		case "COUNT":
			agg = AggCount
		case "AVG":
			agg = AggAvg
		case "MIN":
			agg = AggMin
		case "MAX":
			agg = AggMax
		}
		if agg != AggNone {
			p.next()
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: agg}
			if p.accept(TokKeyword, "DISTINCT") {
				item.Distinct = true
			}
			if p.accept(TokSymbol, "*") {
				item.Expr = &Star{}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return SelectItem{}, err
				}
				item.Expr = e
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			item.Alias = p.parseOptionalAlias()
			return item, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Agg: AggNone, Expr: e, Alias: p.parseOptionalAlias()}, nil
}

func (p *parser) parseOptionalAlias() string {
	if p.accept(TokKeyword, "AS") {
		if p.cur().Kind == TokIdent {
			return p.next().Text
		}
		return ""
	}
	if p.cur().Kind == TokIdent {
		// Bare alias only if the next token could not start a clause.
		return p.next().Text
	}
	return ""
}

// parseExpr parses additive arithmetic over multiplicative terms.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokSymbol && (t.Text == "+" || t.Text == "-") {
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokSymbol && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			// `*` directly before FROM/`)` is projection star, not a product;
			// a star factor would fail to parse anyway, so peek ahead.
			nt := p.toks[p.pos+1]
			if t.Text == "*" && (nt.Kind == TokEOF ||
				(nt.Kind == TokKeyword && nt.Text == "FROM") ||
				(nt.Kind == TokSymbol && (nt.Text == ")" || nt.Text == ","))) {
				return left, nil
			}
			p.next()
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		var agg AggFunc
		switch t.Text {
		case "SUM":
			agg = AggSum
		case "COUNT":
			agg = AggCount
		case "AVG":
			agg = AggAvg
		case "MIN":
			agg = AggMin
		case "MAX":
			agg = AggMax
		}
		if agg != AggNone {
			p.next()
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			var arg Expr
			if p.accept(TokSymbol, "*") {
				arg = &Star{}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				arg = e
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &AggExpr{Agg: agg, Arg: arg}, nil
		}
	}
	switch {
	case t.Kind == TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &NumberLit{Value: v}, nil
	case t.Kind == TokString:
		p.next()
		return &StringLit{Value: t.Text}, nil
	case t.Kind == TokSymbol && t.Text == "-":
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if n, ok := inner.(*NumberLit); ok {
			return &NumberLit{Value: -n.Value}, nil
		}
		return &BinaryExpr{Op: "-", Left: &NumberLit{Value: 0}, Right: inner}, nil
	case t.Kind == TokSymbol && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		return p.parseColRef()
	case t.Kind == TokSymbol && t.Text == "*":
		p.next()
		return &Star{}, nil
	default:
		return nil, p.errorf("unexpected token %q in expression", t.Text)
	}
}

func (p *parser) parseColRef() (*ColRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	ref := &ColRef{Name: t.Text}
	if p.accept(TokSymbol, ".") {
		n, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		ref.Table = ref.Name
		ref.Name = n.Text
	}
	return ref, nil
}

// parsePredicate parses OR-level conditions; the bool result reports whether
// a subquery was encountered anywhere below.
func (p *parser) parsePredicate() (Predicate, bool, error) {
	left, sub, err := p.parseAnd()
	if err != nil {
		return nil, false, err
	}
	for p.accept(TokKeyword, "OR") {
		right, s2, err := p.parseAnd()
		if err != nil {
			return nil, false, err
		}
		left = &Or{Left: left, Right: right}
		sub = sub || s2
	}
	return left, sub, nil
}

func (p *parser) parseAnd() (Predicate, bool, error) {
	left, sub, err := p.parseAtomPred()
	if err != nil {
		return nil, false, err
	}
	for p.accept(TokKeyword, "AND") {
		right, s2, err := p.parseAtomPred()
		if err != nil {
			return nil, false, err
		}
		left = &And{Left: left, Right: right}
		sub = sub || s2
	}
	return left, sub, nil
}

func (p *parser) parseAtomPred() (Predicate, bool, error) {
	if p.accept(TokKeyword, "NOT") {
		inner, sub, err := p.parseAtomPred()
		if err != nil {
			return nil, false, err
		}
		return &Not{Inner: inner}, sub, nil
	}
	if p.cur().Kind == TokSymbol && p.cur().Text == "(" {
		// Could be a parenthesized predicate or a subquery.
		if p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "SELECT" {
			if err := p.skipParens(); err != nil {
				return nil, false, err
			}
			return &Compare{Op: OpEq, Left: &NumberLit{Value: 1}, Right: &NumberLit{Value: 1}}, true, nil
		}
		p.next()
		inner, sub, err := p.parsePredicate()
		if err != nil {
			return nil, false, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, false, err
		}
		return inner, sub, nil
	}
	if p.accept(TokKeyword, "EXISTS") {
		if err := p.skipParens(); err != nil {
			return nil, false, err
		}
		return &Compare{Op: OpEq, Left: &NumberLit{Value: 1}, Right: &NumberLit{Value: 1}}, true, nil
	}

	// A comparison / BETWEEN / IN / LIKE over a left-hand expression.
	left, err := p.parseExpr()
	if err != nil {
		return nil, false, err
	}

	negate := false
	if p.accept(TokKeyword, "NOT") {
		negate = true
	}

	t := p.cur()
	switch {
	case t.Kind == TokKeyword && t.Text == "BETWEEN":
		p.next()
		lo, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, false, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		var pred Predicate = &Between{Arg: left, Lo: lo, Hi: hi}
		if negate {
			pred = &Not{Inner: pred}
		}
		return pred, false, nil
	case t.Kind == TokKeyword && t.Text == "IN":
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, false, err
		}
		if p.cur().Kind == TokKeyword && p.cur().Text == "SELECT" {
			// IN (SELECT ...) subquery.
			depth := 1
			for depth > 0 {
				t := p.next()
				if t.Kind == TokEOF {
					return nil, false, &ParseError{Pos: t.Pos, Msg: "unbalanced IN subquery"}
				}
				if t.Kind == TokSymbol && t.Text == "(" {
					depth++
				}
				if t.Kind == TokSymbol && t.Text == ")" {
					depth--
				}
			}
			return &Compare{Op: OpEq, Left: &NumberLit{Value: 1}, Right: &NumberLit{Value: 1}}, true, nil
		}
		in := &In{Arg: left, Negate: negate}
		for {
			v, err := p.parseExpr()
			if err != nil {
				return nil, false, err
			}
			in.Values = append(in.Values, v)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, false, err
		}
		return in, false, nil
	case t.Kind == TokKeyword && t.Text == "LIKE":
		p.next()
		s, err := p.expect(TokString, "")
		if err != nil {
			return nil, false, err
		}
		return &Like{Arg: left, Pattern: s.Text, Negate: negate}, false, nil
	case negate:
		return nil, false, p.errorf("expected BETWEEN, IN or LIKE after NOT")
	case t.Kind == TokKeyword && t.Text == "IS":
		// IS [NOT] NULL — treated as an always-true placeholder; the
		// checker classifies NULL logic as unsupported via the flag below.
		p.next()
		p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, false, err
		}
		return &Compare{Op: OpEq, Left: &NumberLit{Value: 1}, Right: &NumberLit{Value: 1}}, false, nil
	case t.Kind == TokSymbol:
		var op CompareOp
		switch t.Text {
		case "=":
			op = OpEq
		case "<>", "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return nil, false, p.errorf("unexpected operator %q", t.Text)
		}
		p.next()
		if p.cur().Kind == TokSymbol && p.cur().Text == "(" &&
			p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "SELECT" {
			if err := p.skipParens(); err != nil {
				return nil, false, err
			}
			return &Compare{Op: OpEq, Left: &NumberLit{Value: 1}, Right: &NumberLit{Value: 1}}, true, nil
		}
		right, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		return &Compare{Op: op, Left: left, Right: right}, false, nil
	default:
		return nil, false, p.errorf("expected comparison, found %q", t.Text)
	}
}
