package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds arbitrary strings to the parser: every input
// must either parse or return an error — never panic. (Failure-injection
// guard: the parser fronts user-supplied SQL in the CLI.)
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("panic on input %q", s)
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsOnMutatedSQL mutates valid queries byte by byte —
// closer to realistic malformed input than pure random strings.
func TestParseNeverPanicsOnMutatedSQL(t *testing.T) {
	base := []string{
		"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 1 AND 5",
		"SELECT region, COUNT(*) FROM t WHERE a IN ('x','y') GROUP BY region HAVING COUNT(*) > 3",
		"SELECT SUM(a * (1 - b)) FROM t JOIN u ON t.k = u.k ORDER BY c LIMIT 7",
	}
	mutations := []func(string, int) string{
		func(s string, i int) string { return s[:i%len(s)] },                       // truncate
		func(s string, i int) string { return s[i%len(s):] },                       // behead
		func(s string, i int) string { return s[:i%len(s)] + "(" + s[i%len(s):] },  // inject paren
		func(s string, i int) string { return s[:i%len(s)] + "''" + s[i%len(s):] }, // inject quotes
		func(s string, i int) string { return strings.Replace(s, " ", ",", i%5) },  // commas
		func(s string, i int) string { return s + s[:i%len(s)] },                   // duplicate tail
		func(s string, i int) string { return strings.ToLower(s[:i%len(s)]) + s[i%len(s):] },
	}
	for _, b := range base {
		for mi, mutate := range mutations {
			for i := 1; i < len(b); i += 3 {
				s := mutate(b, i)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("panic (mutation %d, offset %d) on %q: %v", mi, i, s, r)
						}
					}()
					_, _ = Parse(s)
				}()
			}
		}
	}
}
