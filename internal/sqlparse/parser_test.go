package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	s, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT AVG(x) FROM t WHERE y >= 1.5e2 -- comment\n AND z = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "SELECT AVG ( x ) FROM t WHERE y >= 1.5e2 AND z = it's") {
		t.Fatalf("unexpected tokens: %q", joined)
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Fatal("missing EOF token")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := Lex("SELECT a ! b"); err == nil {
		t.Fatal("lone ! accepted")
	}
	if _, err := Lex("SELECT a @ b"); err == nil {
		t.Fatal("@ accepted")
	}
}

func TestParseSimpleAggregate(t *testing.T) {
	s := mustParse(t, "SELECT AVG(revenue) FROM sales WHERE week > 5")
	if len(s.Items) != 1 || s.Items[0].Agg != AggAvg {
		t.Fatalf("items=%v", s.Items)
	}
	if s.Table != "sales" {
		t.Fatalf("table=%q", s.Table)
	}
	c, ok := s.Where.(*Compare)
	if !ok || c.Op != OpGt {
		t.Fatalf("where=%v", s.Where)
	}
}

func TestParseCountStar(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM t")
	if s.Items[0].Agg != AggCount {
		t.Fatal("not COUNT")
	}
	if _, ok := s.Items[0].Expr.(*Star); !ok {
		t.Fatal("not star arg")
	}
}

func TestParseMultiAggregateGroupBy(t *testing.T) {
	s := mustParse(t, `SELECT region, AVG(a2), SUM(a3) FROM r WHERE a2 > 10 GROUP BY region HAVING SUM(a3) > 100`)
	if len(s.Items) != 3 {
		t.Fatalf("items=%d", len(s.Items))
	}
	if s.Items[0].Agg != AggNone || s.Items[1].Agg != AggAvg || s.Items[2].Agg != AggSum {
		t.Fatalf("aggs wrong: %v", s.Items)
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0].Name != "region" {
		t.Fatalf("groupby=%v", s.GroupBy)
	}
	if s.Having == nil {
		t.Fatal("missing having")
	}
}

func TestParseDerivedAttribute(t *testing.T) {
	s := mustParse(t, "SELECT SUM(revenue * discount) FROM sales")
	b, ok := s.Items[0].Expr.(*BinaryExpr)
	if !ok || b.Op != "*" {
		t.Fatalf("expr=%v", s.Items[0].Expr)
	}
}

func TestParseJoins(t *testing.T) {
	s := mustParse(t, `SELECT SUM(l.price) FROM lineitem l JOIN orders o ON l.okey = o.okey JOIN customer AS c ON o.ckey = c.ckey WHERE c.segment = 'BUILDING'`)
	if len(s.Joins) != 2 {
		t.Fatalf("joins=%d", len(s.Joins))
	}
	if s.Alias != "l" || s.Joins[0].Alias != "o" || s.Joins[1].Alias != "c" {
		t.Fatalf("aliases: %q %q %q", s.Alias, s.Joins[0].Alias, s.Joins[1].Alias)
	}
	if s.Joins[0].LeftCol.String() != "l.okey" || s.Joins[0].RightCol.String() != "o.okey" {
		t.Fatal("join columns wrong")
	}
}

func TestParseBetweenInLike(t *testing.T) {
	s := mustParse(t, `SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 5 AND b IN ('x','y') AND c NOT IN (3) AND d LIKE '%Apple%'`)
	and1, ok := s.Where.(*And)
	if !ok {
		t.Fatalf("where=%T", s.Where)
	}
	// Navigate to collect all leaf predicates.
	var leaves []Predicate
	var walk func(p Predicate)
	walk = func(p Predicate) {
		switch v := p.(type) {
		case *And:
			walk(v.Left)
			walk(v.Right)
		default:
			leaves = append(leaves, p)
		}
	}
	walk(and1)
	if len(leaves) != 4 {
		t.Fatalf("leaves=%d", len(leaves))
	}
	if _, ok := leaves[0].(*Between); !ok {
		t.Fatalf("leaf0=%T", leaves[0])
	}
	in1, ok := leaves[1].(*In)
	if !ok || in1.Negate || len(in1.Values) != 2 {
		t.Fatalf("leaf1=%v", leaves[1])
	}
	in2, ok := leaves[2].(*In)
	if !ok || !in2.Negate {
		t.Fatalf("leaf2=%v", leaves[2])
	}
	lk, ok := leaves[3].(*Like)
	if !ok || lk.Pattern != "%Apple%" {
		t.Fatalf("leaf3=%v", leaves[3])
	}
}

func TestParseDisjunction(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2")
	if _, ok := s.Where.(*Or); !ok {
		t.Fatalf("where=%T", s.Where)
	}
}

func TestParseSubqueryDetection(t *testing.T) {
	cases := []string{
		"SELECT COUNT(*) FROM (SELECT a FROM t) x",
		"SELECT COUNT(*) FROM t WHERE a IN (SELECT a FROM u)",
		"SELECT COUNT(*) FROM t WHERE EXISTS (SELECT 1 FROM u)",
		"SELECT COUNT(*) FROM t WHERE a > (SELECT AVG(a) FROM t)",
	}
	for _, sql := range cases {
		s := mustParse(t, sql)
		if !s.HasSubquery {
			t.Errorf("subquery not detected in %q", sql)
		}
	}
	if s := mustParse(t, "SELECT COUNT(*) FROM t WHERE (a = 1 AND b = 2)"); s.HasSubquery {
		t.Error("false subquery in parenthesized predicate")
	}
}

func TestParseOrderLimitDistinct(t *testing.T) {
	s := mustParse(t, "SELECT region, COUNT(DISTINCT user) FROM t GROUP BY region ORDER BY region DESC LIMIT 10")
	if !s.Items[1].Distinct {
		t.Fatal("DISTINCT not flagged")
	}
	if len(s.OrderBy) != 1 || s.Limit != 10 {
		t.Fatalf("order/limit: %v %d", s.OrderBy, s.Limit)
	}
}

func TestParseMinMax(t *testing.T) {
	s := mustParse(t, "SELECT MIN(a), MAX(b) FROM t")
	if s.Items[0].Agg != AggMin || s.Items[1].Agg != AggMax {
		t.Fatalf("aggs=%v", s.Items)
	}
}

func TestParseNegativeNumberAndArith(t *testing.T) {
	s := mustParse(t, "SELECT AVG(a + b * 2 - -3) FROM t WHERE x <= -1.5")
	cmp := s.Where.(*Compare)
	n, ok := cmp.Right.(*NumberLit)
	if !ok || n.Value != -1.5 {
		t.Fatalf("rhs=%v", cmp.Right)
	}
	if s.Items[0].Expr.String() != "((a + (b * 2)) - -3)" {
		t.Fatalf("expr=%v", s.Items[0].Expr.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a >",
		"SELECT a FROM t GROUP",
		"SELECT AVG( FROM t",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t trailing garbage (",
		"SELECT a FROM t WHERE a NOT 5",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// String() output must re-parse to the same canonical string — the
	// synopsis uses it as a cache key.
	queries := []string{
		"SELECT AVG(revenue) FROM sales WHERE week > 5",
		"SELECT region, SUM(a) FROM t WHERE b BETWEEN 1 AND 2 GROUP BY region",
		"SELECT COUNT(*) FROM t WHERE a IN ('x', 'y') AND b = 3",
		"SELECT SUM(price * qty) FROM t HAVING SUM(price * qty) > 10",
	}
	for _, q := range queries {
		s1 := mustParse(t, q)
		s2 := mustParse(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round-trip changed:\n  %s\n  %s", s1.String(), s2.String())
		}
	}
}

func TestParseSemicolon(t *testing.T) {
	mustParse(t, "SELECT COUNT(*) FROM t;")
}

func TestParseIsNull(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM t WHERE a IS NOT NULL")
	if s.Where == nil {
		t.Fatal("nil where")
	}
}

// TestParseErrorPosition pins the annotated error format: every syntax
// error carries a 1-based line/column pointing at the offending token, the
// one-line Error() renders them, and Verbose() adds the source line with a
// caret aligned under the failure — tabs preserved so the caret stays
// aligned in tab-indented statements.
func TestParseErrorPosition(t *testing.T) {
	cases := []struct {
		name, sql    string
		line, column int
		errContains  string
		verboseLine  string // the quoted source line Verbose must show
		caretLine    string // the caret line, exactly
	}{
		{
			name: "trailing input", sql: "SELECT a FROM t x y",
			line: 1, column: 19, errContains: `trailing input "y"`,
			verboseLine: "  SELECT a FROM t x y",
			caretLine:   "                    ^",
		},
		{
			name: "multi-line", sql: "SELECT AVG(revenue)\nFROM sales\nWHERE week !",
			line: 3, column: 12, errContains: "unexpected '!'",
			verboseLine: "  WHERE week !",
			caretLine:   "             ^",
		},
		{
			name: "tab indent", sql: "SELECT a\n\tFROM t\n\tWHERE a >",
			line: 3, column: 11, errContains: "",
			verboseLine: "  \tWHERE a >",
			caretLine:   "  \t         ^",
		},
		{
			name: "unterminated string", sql: "SELECT a FROM t WHERE b = 'oops",
			line: 1, column: 27, errContains: "unterminated string",
			verboseLine: "  SELECT a FROM t WHERE b = 'oops",
			caretLine:   "                            ^",
		},
		{
			name: "eof", sql: "SELECT a FROM",
			line: 1, column: 14, errContains: "",
			verboseLine: "  SELECT a FROM",
			caretLine:   "               ^",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.sql)
			if err == nil {
				t.Fatalf("Parse(%q) should fail", tc.sql)
			}
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("error type %T, want *ParseError", err)
			}
			if pe.Line != tc.line || pe.Column != tc.column {
				t.Fatalf("position line %d column %d, want %d/%d (msg %q)",
					pe.Line, pe.Column, tc.line, tc.column, pe.Msg)
			}
			wantPrefix := "sql parse error at line "
			if !strings.HasPrefix(pe.Error(), wantPrefix) {
				t.Fatalf("Error() %q lacks prefix %q", pe.Error(), wantPrefix)
			}
			if tc.errContains != "" && !strings.Contains(pe.Error(), tc.errContains) {
				t.Fatalf("Error() %q does not contain %q", pe.Error(), tc.errContains)
			}
			lines := strings.Split(pe.Verbose(), "\n")
			if len(lines) != 3 {
				t.Fatalf("Verbose() %q: %d lines, want 3", pe.Verbose(), len(lines))
			}
			if lines[0] != pe.Error() {
				t.Fatalf("Verbose first line %q != Error() %q", lines[0], pe.Error())
			}
			if lines[1] != tc.verboseLine {
				t.Fatalf("Verbose source line %q, want %q", lines[1], tc.verboseLine)
			}
			if lines[2] != tc.caretLine {
				t.Fatalf("Verbose caret line %q, want %q", lines[2], tc.caretLine)
			}
		})
	}
}

// TestParseErrorUnannotatedFallback: a ParseError constructed without
// annotation (no line) renders the legacy byte-offset form and Verbose
// degrades to the one-liner rather than panicking on missing source.
func TestParseErrorUnannotatedFallback(t *testing.T) {
	pe := &ParseError{Pos: 7, Msg: "boom"}
	if got, want := pe.Error(), "sql parse error at 7: boom"; got != want {
		t.Fatalf("Error() %q, want %q", got, want)
	}
	if pe.Verbose() != pe.Error() {
		t.Fatalf("unannotated Verbose() %q, want Error()", pe.Verbose())
	}
}
