// Package optimize provides the derivative-free nonlinear optimization used
// by Verdict's offline correlation-parameter learning (Appendix A). The
// paper maximizes the non-convex Gaussian log-likelihood of past snippet
// answers (Eq. 13) with Matlab's fminunc *without explicit gradients*; the
// equivalent here is a Nelder–Mead simplex refined by coordinate-wise golden
// section, wrapped in a deterministic multi-start driver that keeps the best
// local optimum — the "multiple random starting points" strategy the paper
// describes.
package optimize

import (
	"errors"
	"math"

	"repro/internal/randx"
)

// Objective is a function to be minimized.
type Objective func(x []float64) float64

// ErrNoStart is returned when Minimize is called without starting points.
var ErrNoStart = errors.New("optimize: no starting points")

// Options configures the optimizer. Zero values select sensible defaults.
type Options struct {
	// MaxIter bounds Nelder–Mead iterations per start (default 400).
	MaxIter int
	// Tol is the simplex-spread convergence tolerance (default 1e-8).
	Tol float64
	// InitialStep scales the initial simplex (default 0.5 per coordinate,
	// relative to |x|+1).
	InitialStep float64
	// Polish enables a coordinate-wise golden-section pass after the
	// simplex converges (default on; set PolishOff to disable).
	PolishOff bool
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 400
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.InitialStep == 0 {
		o.InitialStep = 0.5
	}
	return o
}

// Result reports the best point found.
type Result struct {
	X     []float64
	F     float64
	Evals int
}

// NelderMead minimizes f starting from x0 with the standard
// reflection/expansion/contraction/shrink simplex updates.
func NelderMead(f Objective, x0 []float64, opts Options) Result {
	opts = opts.withDefaults()
	n := len(x0)
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// Build the initial simplex: x0 plus a perturbation along each axis.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := append([]float64(nil), x0...)
		if i > 0 {
			step := opts.InitialStep * (math.Abs(p[i-1]) + 1)
			p[i-1] += step
		}
		pts[i] = p
		vals[i] = eval(p)
	}

	const alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
	order := make([]int, n+1)
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Order vertices by value (selection sort on a tiny slice).
		for i := range order {
			order[i] = i
		}
		for i := 0; i < len(order); i++ {
			best := i
			for j := i + 1; j < len(order); j++ {
				if vals[order[j]] < vals[order[best]] {
					best = j
				}
			}
			order[i], order[best] = order[best], order[i]
		}
		lo, hi, second := order[0], order[n], order[n-1]

		// Convergence: spread of function values and simplex diameter.
		if math.Abs(vals[hi]-vals[lo]) < opts.Tol*(1+math.Abs(vals[lo])) {
			break
		}

		// Centroid of all but the worst vertex.
		centroid := make([]float64, n)
		for _, idx := range order[:n] {
			for k, v := range pts[idx] {
				centroid[k] += v
			}
		}
		for k := range centroid {
			centroid[k] /= float64(n)
		}

		reflect := make([]float64, n)
		for k := range reflect {
			reflect[k] = centroid[k] + alpha*(centroid[k]-pts[hi][k])
		}
		fr := eval(reflect)
		switch {
		case fr < vals[lo]:
			// Try expansion.
			expand := make([]float64, n)
			for k := range expand {
				expand[k] = centroid[k] + gamma*(reflect[k]-centroid[k])
			}
			if fe := eval(expand); fe < fr {
				pts[hi], vals[hi] = expand, fe
			} else {
				pts[hi], vals[hi] = reflect, fr
			}
		case fr < vals[second]:
			pts[hi], vals[hi] = reflect, fr
		default:
			// Contraction toward the better of worst/reflected.
			contract := make([]float64, n)
			base := pts[hi]
			fbase := vals[hi]
			if fr < vals[hi] {
				base, fbase = reflect, fr
			}
			for k := range contract {
				contract[k] = centroid[k] + rho*(base[k]-centroid[k])
			}
			if fc := eval(contract); fc < fbase {
				pts[hi], vals[hi] = contract, fc
			} else {
				// Shrink everything toward the best vertex.
				for _, idx := range order[1:] {
					for k := range pts[idx] {
						pts[idx][k] = pts[lo][k] + sigma*(pts[idx][k]-pts[lo][k])
					}
					vals[idx] = eval(pts[idx])
				}
			}
		}
	}

	best := 0
	for i, v := range vals {
		if v < vals[best] {
			best = i
		}
		_ = v
	}
	res := Result{X: append([]float64(nil), pts[best]...), F: vals[best], Evals: evals}
	if !opts.PolishOff {
		res = polish(f, res, &evals)
		res.Evals = evals
	}
	return res
}

// polish runs one coordinate-wise golden-section sweep around the simplex
// solution, which reliably tightens the last digit or two on the smooth
// likelihood surfaces Eq. 13 produces.
func polish(f Objective, r Result, evals *int) Result {
	x := append([]float64(nil), r.X...)
	fx := r.F
	for k := range x {
		span := 0.25 * (math.Abs(x[k]) + 1)
		xk, fk := goldenSection(func(v float64) float64 {
			*evals++
			old := x[k]
			x[k] = v
			val := f(x)
			x[k] = old
			if math.IsNaN(val) {
				return math.Inf(1)
			}
			return val
		}, x[k]-span, x[k]+span, 40)
		if fk < fx {
			x[k], fx = xk, fk
		}
	}
	return Result{X: x, F: fx}
}

// goldenSection minimizes a univariate function on [a,b].
func goldenSection(f func(float64) float64, a, b float64, iters int) (float64, float64) {
	const invPhi = 0.6180339887498949
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for i := 0; i < iters; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	if fc < fd {
		return c, fc
	}
	return d, fd
}

// CoordinateDescent minimizes f by cycling golden-section line searches
// over each coordinate within [lo[k], hi[k]], for the given number of
// rounds. For anisotropic kernel length-scale fitting this is far more
// reliable than a high-dimensional simplex: each length-scale has a
// well-behaved 1-D profile once the others are held fixed, while the joint
// simplex routinely leaves some coordinates untouched at their starting
// values.
func CoordinateDescent(f Objective, x0, lo, hi []float64, rounds, iters int) Result {
	n := len(x0)
	if len(lo) != n || len(hi) != n {
		panic("optimize: bound length mismatch")
	}
	if rounds <= 0 {
		rounds = 2
	}
	if iters <= 0 {
		iters = 30
	}
	x := append([]float64(nil), x0...)
	evals := 0
	guard := func(v float64) float64 {
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	fx := guard(f(x))
	evals++
	for round := 0; round < rounds; round++ {
		for k := 0; k < n; k++ {
			xk, fk := goldenSection(func(v float64) float64 {
				evals++
				old := x[k]
				x[k] = v
				val := guard(f(x))
				x[k] = old
				return val
			}, lo[k], hi[k], iters)
			if fk < fx {
				x[k], fx = xk, fk
			}
		}
	}
	return Result{X: x, F: fx, Evals: evals}
}

// MultiStart runs NelderMead from each starting point plus `extra` random
// perturbations of the first, returning the best result. This mirrors the
// paper's conventional strategy of "solving the same problem with multiple
// random starting points" and keeping the highest-likelihood optimum.
func MultiStart(f Objective, starts [][]float64, extra int, seed int64, opts Options) (Result, error) {
	if len(starts) == 0 {
		return Result{}, ErrNoStart
	}
	rng := randx.New(seed)
	all := make([][]float64, 0, len(starts)+extra)
	all = append(all, starts...)
	for i := 0; i < extra; i++ {
		p := append([]float64(nil), starts[0]...)
		for k := range p {
			// Mix multiplicative spread (natural for scale parameters such
			// as kernel length-scales) with additive jumps so perturbed
			// starts can change sign and escape the starting basin.
			p[k] = p[k]*math.Exp(rng.Normal(0, 0.7)) +
				rng.Normal(0, math.Abs(p[k])+1)
		}
		all = append(all, p)
	}
	var best Result
	bestSet := false
	totalEvals := 0
	for _, s := range all {
		r := NelderMead(f, s, opts)
		totalEvals += r.Evals
		if !bestSet || r.F < best.F {
			best = r
			bestSet = true
		}
	}
	best.Evals = totalEvals
	return best, nil
}

// Gradient estimates ∇f at x with central differences; exposed for tests
// and for callers that want to verify stationarity of a solution.
func Gradient(f Objective, x []float64, h float64) []float64 {
	if h == 0 {
		h = 1e-6
	}
	g := make([]float64, len(x))
	xx := append([]float64(nil), x...)
	for k := range x {
		step := h * (math.Abs(x[k]) + 1)
		xx[k] = x[k] + step
		fp := f(xx)
		xx[k] = x[k] - step
		fm := f(xx)
		xx[k] = x[k]
		g[k] = (fp - fm) / (2 * step)
	}
	return g
}
