package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func sphere(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	s := 0.0
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func TestNelderMeadSphere(t *testing.T) {
	r := NelderMead(sphere, []float64{3, -2, 5}, Options{})
	if r.F > 1e-8 {
		t.Fatalf("sphere minimum not found: f=%v x=%v", r.F, r.X)
	}
	for _, v := range r.X {
		if math.Abs(v) > 1e-3 {
			t.Fatalf("x not near origin: %v", r.X)
		}
	}
}

func TestNelderMeadRosenbrock2D(t *testing.T) {
	r := NelderMead(rosenbrock, []float64{-1.2, 1}, Options{MaxIter: 2000})
	if math.Abs(r.X[0]-1) > 0.02 || math.Abs(r.X[1]-1) > 0.02 {
		t.Fatalf("rosenbrock optimum missed: %v (f=%v)", r.X, r.F)
	}
}

func TestNelderMeadShiftedQuadratic(t *testing.T) {
	f := func(seed int64) bool {
		// Deterministic shifted quadratic with seed-derived center.
		c := []float64{
			float64(seed%7) - 3,
			float64(seed%11) - 5,
		}
		obj := func(x []float64) float64 {
			dx, dy := x[0]-c[0], x[1]-c[1]
			return dx*dx + 3*dy*dy + 1.5
		}
		r := NelderMead(obj, []float64{0, 0}, Options{MaxIter: 800})
		return math.Abs(r.X[0]-c[0]) < 1e-2 && math.Abs(r.X[1]-c[1]) < 1e-2 &&
			math.Abs(r.F-1.5) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNelderMeadHandlesNaN(t *testing.T) {
	// Objective undefined (NaN) outside the unit disk; NM should still find
	// the inside minimum at (0.2, 0).
	obj := func(x []float64) float64 {
		if x[0]*x[0]+x[1]*x[1] > 1 {
			return math.NaN()
		}
		d := x[0] - 0.2
		return d*d + x[1]*x[1]
	}
	r := NelderMead(obj, []float64{0, 0}, Options{})
	if math.Abs(r.X[0]-0.2) > 1e-3 || math.Abs(r.X[1]) > 1e-3 {
		t.Fatalf("NaN-guarded optimum missed: %v", r.X)
	}
}

func TestMultiStartEscapesLocalMinimum(t *testing.T) {
	// Double well: local min near x=-1 (f=0.5), global near x=2 (f=0).
	obj := func(x []float64) float64 {
		v := x[0]
		a := (v + 1) * (v + 1)
		b := (v - 2) * (v - 2)
		return math.Min(a+0.5, b)
	}
	// Single start from the wrong basin gets stuck.
	single := NelderMead(obj, []float64{-1.4}, Options{})
	if single.F < 0.4 {
		t.Skipf("single start unexpectedly escaped (f=%v)", single.F)
	}
	multi, err := MultiStart(obj, [][]float64{{-1.4}}, 20, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.F > 1e-4 {
		t.Fatalf("multi-start failed to find global optimum: f=%v x=%v", multi.F, multi.X)
	}
}

func TestMultiStartNoStarts(t *testing.T) {
	if _, err := MultiStart(sphere, nil, 3, 1, Options{}); err == nil {
		t.Fatal("expected error with no starts")
	}
}

func TestGradient(t *testing.T) {
	g := Gradient(sphere, []float64{1, -2}, 0)
	if math.Abs(g[0]-2) > 1e-4 || math.Abs(g[1]+4) > 1e-4 {
		t.Fatalf("gradient=%v want [2 -4]", g)
	}
}

func TestGradientNearZeroAtOptimum(t *testing.T) {
	r := NelderMead(rosenbrock, []float64{-1.2, 1}, Options{MaxIter: 4000, Tol: 1e-12})
	g := Gradient(rosenbrock, r.X, 0)
	for _, v := range g {
		if math.Abs(v) > 0.5 {
			t.Fatalf("gradient not small at optimum: %v (x=%v)", g, r.X)
		}
	}
}

func TestGoldenSectionViaPolish(t *testing.T) {
	// Polish must not worsen the result.
	start := Result{X: []float64{0.3, -0.4}, F: sphere([]float64{0.3, -0.4})}
	evals := 0
	out := polish(sphere, start, &evals)
	if out.F > start.F {
		t.Fatalf("polish worsened: %v -> %v", start.F, out.F)
	}
	if evals == 0 {
		t.Fatal("polish did not evaluate")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIter != 400 || o.Tol != 1e-8 || o.InitialStep != 0.5 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{MaxIter: 7, Tol: 1, InitialStep: 2}.withDefaults()
	if o2.MaxIter != 7 || o2.Tol != 1 || o2.InitialStep != 2 {
		t.Fatalf("explicit options overwritten: %+v", o2)
	}
}

func TestCoordinateDescentAnisotropic(t *testing.T) {
	// Strongly anisotropic quadratic: minimum at (2, -3, 0.5) with very
	// different curvatures — the shape kernel length-scale fitting has.
	obj := func(x []float64) float64 {
		d0, d1, d2 := x[0]-2, x[1]+3, x[2]-0.5
		return 100*d0*d0 + 0.01*d1*d1 + d2*d2
	}
	lo := []float64{-10, -10, -10}
	hi := []float64{10, 10, 10}
	r := CoordinateDescent(obj, []float64{9, 9, 9}, lo, hi, 3, 40)
	if math.Abs(r.X[0]-2) > 1e-3 || math.Abs(r.X[1]+3) > 1e-2 || math.Abs(r.X[2]-0.5) > 1e-3 {
		t.Fatalf("optimum missed: %v (f=%v)", r.X, r.F)
	}
	if r.Evals == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestCoordinateDescentRespectsBounds(t *testing.T) {
	obj := func(x []float64) float64 { return -x[0] } // pushes to upper bound
	r := CoordinateDescent(obj, []float64{0}, []float64{-1}, []float64{1}, 2, 40)
	if r.X[0] < 0.99 || r.X[0] > 1 {
		t.Fatalf("bound not respected/reached: %v", r.X)
	}
}

func TestCoordinateDescentHandlesNaN(t *testing.T) {
	obj := func(x []float64) float64 {
		if x[0] > 0.5 {
			return math.NaN()
		}
		d := x[0] - 0.2
		return d * d
	}
	r := CoordinateDescent(obj, []float64{0}, []float64{-1}, []float64{1}, 2, 40)
	if math.Abs(r.X[0]-0.2) > 1e-2 {
		t.Fatalf("NaN-guarded optimum missed: %v", r.X)
	}
}
