package notify

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestHubBroadcastOrder: values arrive to every subscriber in broadcast
// order, each exactly once when nobody stalls.
func TestHubBroadcastOrder(t *testing.T) {
	h := NewHub[int]()
	a := h.Subscribe(16)
	b := h.Subscribe(16)
	for i := 0; i < 10; i++ {
		delivered, coalesced := h.Broadcast(i)
		if delivered != 2 || coalesced != 0 {
			t.Fatalf("Broadcast(%d): delivered=%d coalesced=%d", i, delivered, coalesced)
		}
	}
	for _, s := range []*Sub[int]{a, b} {
		for i := 0; i < 10; i++ {
			v, ok := s.TryNext()
			if !ok || v != i {
				t.Fatalf("got (%d, %v), want (%d, true)", v, ok, i)
			}
		}
		if _, ok := s.TryNext(); ok {
			t.Fatal("queue should be empty")
		}
	}
}

// TestHubCoalesceLatest: a full queue replaces its newest element, so a
// stalled consumer keeps the oldest undelivered values and the most recent
// one — intermediates are the casualties, never the head of line.
func TestHubCoalesceLatest(t *testing.T) {
	h := NewHub[int]()
	s := h.Subscribe(3)
	for i := 0; i < 10; i++ {
		_, ok := s.Push(i)
		if !ok {
			t.Fatalf("Push(%d) reported closed", i)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("queue holds %d values, cap is 3", s.Len())
	}
	want := []int{0, 1, 9} // 2..8 coalesced away; 9 is the latest
	for _, w := range want {
		v, ok := s.TryNext()
		if !ok || v != w {
			t.Fatalf("got (%d, %v), want (%d, true)", v, ok, w)
		}
	}
}

// TestHubCoalesceCounts: Broadcast reports coalescing per subscriber — a
// stalled subscriber coalesces while a drained one keeps receiving.
func TestHubCoalesceCounts(t *testing.T) {
	h := NewHub[int]()
	stalled := h.Subscribe(1)
	_ = stalled
	healthy := h.Subscribe(8)
	for i := 0; i < 5; i++ {
		delivered, coalesced := h.Broadcast(i)
		if delivered != 2 {
			t.Fatalf("Broadcast(%d): delivered=%d", i, delivered)
		}
		wantCo := 0
		if i > 0 {
			wantCo = 1 // stalled's single slot already full
		}
		if coalesced != wantCo {
			t.Fatalf("Broadcast(%d): coalesced=%d, want %d", i, coalesced, wantCo)
		}
		if _, ok := healthy.TryNext(); !ok {
			t.Fatalf("healthy subscriber starved at %d", i)
		}
	}
	if v, _ := stalled.TryNext(); v != 4 {
		t.Fatalf("stalled subscriber's slot holds %d, want the latest (4)", v)
	}
}

// TestHubNextBlocksAndWakes: Next parks until a Push lands, and a
// cancelled context unblocks it with ok=false.
func TestHubNextBlocksAndWakes(t *testing.T) {
	h := NewHub[string]()
	s := h.Subscribe(0)
	got := make(chan string, 1)
	go func() {
		v, ok := s.Next(context.Background())
		if ok {
			got <- v
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the reader park
	h.Broadcast("wake")
	select {
	case v := <-got:
		if v != "wake" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next never woke")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		if _, ok := s.Next(ctx); ok {
			t.Error("Next returned a value after cancel")
		}
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Next ignored context cancellation")
	}
}

// TestHubCloseDrainsBuffered: closing delivers what is already buffered
// before Next reports the terminal state, and the close reason survives.
func TestHubCloseDrainsBuffered(t *testing.T) {
	h := NewHub[int]()
	s := h.Subscribe(4)
	h.Broadcast(1)
	h.Broadcast(2)
	h.CloseAll("drain")
	if h.Active() != 0 {
		t.Fatalf("Active=%d after CloseAll", h.Active())
	}
	ctx := context.Background()
	for _, want := range []int{1, 2} {
		v, ok := s.Next(ctx)
		if !ok || v != want {
			t.Fatalf("got (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if _, ok := s.Next(ctx); ok {
		t.Fatal("Next kept yielding after the buffer drained")
	}
	if s.CloseReason() != "drain" {
		t.Fatalf("CloseReason=%q", s.CloseReason())
	}
	if _, ok := s.Push(9); ok {
		t.Fatal("Push succeeded on a closed subscription")
	}
	// A closed hub hands out already-closed subscriptions with its reason.
	late := h.Subscribe(1)
	if !late.Closed() || late.CloseReason() != "drain" {
		t.Fatalf("late subscribe: closed=%v reason=%q", late.Closed(), late.CloseReason())
	}
}

// TestHubUnsubscribeIdempotent: double close and close-of-other-hub's-sub
// are harmless, and unsubscribing one leaves the rest attached.
func TestHubUnsubscribeIdempotent(t *testing.T) {
	h := NewHub[int]()
	a := h.Subscribe(2)
	b := h.Subscribe(2)
	a.Close("unsubscribe")
	a.Close("second close must not overwrite")
	if a.CloseReason() != "unsubscribe" {
		t.Fatalf("CloseReason=%q", a.CloseReason())
	}
	if h.Active() != 1 {
		t.Fatalf("Active=%d", h.Active())
	}
	if delivered, _ := h.Broadcast(7); delivered != 1 {
		t.Fatalf("delivered=%d", delivered)
	}
	if v, ok := b.TryNext(); !ok || v != 7 {
		t.Fatalf("b got (%d, %v)", v, ok)
	}
}

// TestHubConcurrentStorm hammers one hub with concurrent broadcasters,
// subscribers that come and go, and consumers mid-read — the -race anchor
// for the fan-out layer. Every consumer must observe values in
// nondecreasing order (coalescing may skip, never reorder).
func TestHubConcurrentStorm(t *testing.T) {
	h := NewHub[int]()
	const readers = 8
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := h.Subscribe(2 + r%3)
			defer s.Close("unsubscribe")
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			last := -1
			for {
				v, ok := s.Next(ctx)
				if !ok {
					return
				}
				if v < last {
					t.Errorf("reader %d: value %d after %d", r, v, last)
					return
				}
				last = v
			}
		}(r)
	}
	for i := 0; i < 2000; i++ {
		h.Broadcast(i)
	}
	h.CloseAll("drain")
	wg.Wait()
}
