// Package notify is the fan-out layer behind continuous queries: a Hub
// distributes update values to any number of subscribers, each behind its
// own bounded queue with latest-value coalescing.
//
// The design goal is that a publisher never blocks and never allocates per
// subscriber beyond the queue slot: Push on a full queue overwrites the
// newest buffered element (and reports the coalescing), so a stalled or
// slow consumer degrades to "sees only the latest update" instead of
// backpressuring the hub or its sibling subscribers. This matches the
// semantics continuous AQP wants — every update supersedes the previous
// one for the same standing query, so dropping an intermediate update
// loses freshness, never correctness.
//
// Consumers drive Sub.Next, which blocks until a value, a close, or
// context cancellation. Closing a subscription (Sub.Close, Hub.CloseAll)
// records a terminal reason; buffered values drain first, so a drain can
// complete in-flight pushes before the consumer observes the close.
//
// The hub holds no reference to the values it moves and imposes no
// ordering across subscribers; per-subscriber FIFO order (modulo
// coalescing, which only ever replaces the newest queued element) is
// guaranteed.
package notify
