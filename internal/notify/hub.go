package notify

import (
	"context"
	"sync"
)

// DefaultQueue is the per-subscriber queue capacity when none is given.
const DefaultQueue = 8

// Hub fans values out to subscribers. The zero value is not usable; build
// one with NewHub. All methods are safe for concurrent use.
type Hub[T any] struct {
	mu     sync.Mutex
	subs   map[*Sub[T]]struct{}
	closed bool
	reason string
}

// NewHub returns an empty hub.
func NewHub[T any]() *Hub[T] {
	return &Hub[T]{subs: make(map[*Sub[T]]struct{})}
}

// Subscribe registers a new subscriber with a bounded queue of the given
// capacity (<= 0 selects DefaultQueue). Subscribing to a hub already closed
// by CloseAll yields an immediately closed subscription carrying the hub's
// terminal reason.
func (h *Hub[T]) Subscribe(queue int) *Sub[T] {
	if queue <= 0 {
		queue = DefaultQueue
	}
	s := &Sub[T]{hub: h, cap: queue, wake: make(chan struct{}, 1)}
	h.mu.Lock()
	if h.closed {
		s.closed = true
		s.reason = h.reason
	} else {
		h.subs[s] = struct{}{}
	}
	h.mu.Unlock()
	return s
}

// Unsubscribe detaches and closes one subscription with the given terminal
// reason. Idempotent; a no-op for subscriptions of other hubs.
func (h *Hub[T]) Unsubscribe(s *Sub[T], reason string) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
	s.close(reason)
}

// Broadcast pushes v to every subscriber, never blocking: subscribers with
// full queues have their newest buffered value replaced (coalesced to
// latest). It returns how many subscribers received the value and how many
// had it coalesced.
func (h *Hub[T]) Broadcast(v T) (delivered, coalesced int) {
	h.mu.Lock()
	targets := make([]*Sub[T], 0, len(h.subs))
	for s := range h.subs {
		targets = append(targets, s)
	}
	h.mu.Unlock()
	for _, s := range targets {
		if c, ok := s.Push(v); ok {
			delivered++
			if c {
				coalesced++
			}
		}
	}
	return delivered, coalesced
}

// Active is the number of live subscriptions.
func (h *Hub[T]) Active() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// CloseAll closes every subscription with the given terminal reason and
// marks the hub closed: later Subscribe calls get already-closed
// subscriptions, later Broadcasts deliver to no one. Buffered values drain
// to their consumers before Next reports the close.
func (h *Hub[T]) CloseAll(reason string) {
	h.mu.Lock()
	h.closed = true
	h.reason = reason
	targets := make([]*Sub[T], 0, len(h.subs))
	for s := range h.subs {
		targets = append(targets, s)
	}
	h.subs = make(map[*Sub[T]]struct{})
	h.mu.Unlock()
	for _, s := range targets {
		s.close(reason)
	}
}

// Sub is one subscriber's bounded, coalescing queue.
type Sub[T any] struct {
	hub *Hub[T]

	mu     sync.Mutex
	buf    []T
	cap    int
	closed bool
	reason string
	wake   chan struct{} // capacity 1: "state changed" edge
}

// Push enqueues v without ever blocking. On a full queue the newest
// buffered value is replaced (coalesced=true). ok=false means the
// subscription is closed and v was dropped.
func (s *Sub[T]) Push(v T) (coalesced, ok bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, false
	}
	if len(s.buf) >= s.cap {
		s.buf[len(s.buf)-1] = v
		coalesced = true
	} else {
		s.buf = append(s.buf, v)
	}
	s.mu.Unlock()
	s.notify()
	return coalesced, true
}

// Next blocks until a value is available, the subscription is closed (and
// its buffer drained), or ctx is done. ok=false means the subscription is
// finished — check CloseReason, or ctx.Err() if the context fired.
func (s *Sub[T]) Next(ctx context.Context) (v T, ok bool) {
	for {
		s.mu.Lock()
		if len(s.buf) > 0 {
			v = s.buf[0]
			// Shift rather than re-slice so the backing array never pins
			// delivered values.
			copy(s.buf, s.buf[1:])
			s.buf = s.buf[:len(s.buf)-1]
			s.mu.Unlock()
			return v, true
		}
		if s.closed {
			s.mu.Unlock()
			return v, false
		}
		s.mu.Unlock()
		select {
		case <-s.wake:
		case <-ctx.Done():
			return v, false
		}
	}
}

// TryNext pops a buffered value without blocking.
func (s *Sub[T]) TryNext() (v T, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return v, false
	}
	v = s.buf[0]
	copy(s.buf, s.buf[1:])
	s.buf = s.buf[:len(s.buf)-1]
	return v, true
}

// Close detaches the subscription from its hub with the given reason.
func (s *Sub[T]) Close(reason string) { s.hub.Unsubscribe(s, reason) }

// Closed reports whether the subscription has been closed (buffered values
// may still be pending).
func (s *Sub[T]) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// CloseReason is the terminal reason recorded at close ("" while open).
func (s *Sub[T]) CloseReason() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reason
}

// Len is the number of values currently buffered.
func (s *Sub[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

func (s *Sub[T]) close(reason string) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.reason = reason
	}
	s.mu.Unlock()
	s.notify()
}

// notify pokes the wake channel without blocking; capacity 1 makes it an
// edge trigger Next re-checks state after.
func (s *Sub[T]) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}
