// Package query turns parsed SQL into Verdict's internal representation:
// query snippets (§2.1, Definition 1) whose selection predicates are
// normalized into per-attribute regions — a numeric range per numeric
// dimension attribute and a value set per categorical dimension attribute
// (§4.1 and Appendix F.2). It also houses the supported-query type checker
// (§2.2) that Table 3's generality measurement counts with, the
// decomposition of grouped multi-aggregate queries into scalar snippets
// (Figure 3), and the vectorized region evaluators (vectorize.go):
// Region.MatchBlock filling reusable selection vectors column-at-a-time
// and Region.PruneBlock giving tri-state zone-map verdicts.
//
// # Concurrency invariants
//
// The package has no locks because it has no shared mutable state: a
// Region is built once (BindRegion/Constrain*) and read-only thereafter,
// and a Snippet is immutable after construction — its canonical Key,
// Region and compiled Measure function may be shared freely across
// goroutines. The one rule callers must keep: evaluate snippets against a
// frozen table snapshot (see internal/storage), since the lock-free row
// accessors used by Matches/MatchBlock are only safe on a stable prefix.
// MatchBlock's selection-vector buffers are caller-owned scratch — one per
// worker, never shared between concurrent scans.
package query
