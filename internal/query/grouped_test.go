package query

import (
	"fmt"
	"testing"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

func groupedFixture(t *testing.T) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "cat", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "val", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("t", schema)
	for i := 0; i < 200; i++ {
		if err := tb.AppendRow([]storage.Value{
			storage.Num(float64(i % 50)),
			storage.Str(fmt.Sprintf("g%d", i%5)),
			storage.Str([]string{"a", "b"}[i%2]),
			storage.Num(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func decomposeGrouped(t *testing.T, tb *storage.Table, sql string, groups [][]GroupValue) []*Snippet {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	decs, err := Decompose(stmt, tb, groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	var snips []*Snippet
	for _, d := range decs {
		snips = append(snips, d.Snippets...)
	}
	return snips
}

func catGroups(tb *storage.Table, col string, values ...string) [][]GroupValue {
	c, _ := tb.Schema().Lookup(col)
	var out [][]GroupValue
	for _, v := range values {
		out = append(out, []GroupValue{{Col: c, Str: v}})
	}
	return out
}

// TestGroupedFactorGroups covers the happy path: a grouped decomposition
// factors into one shared base with a correct code→slot mapping.
func TestGroupedFactorGroups(t *testing.T) {
	tb := groupedFixture(t)
	snips := decomposeGrouped(t, tb,
		"SELECT cat, AVG(val), COUNT(*) FROM t WHERE week < 30 GROUP BY cat",
		catGroups(tb, "cat", "g0", "g1", "g2"))
	pl := FactorGroups(snips)
	if pl == nil {
		t.Fatal("grouped decomposition did not factor")
	}
	if pl.Stride != 2 || len(pl.Groups) != 3 || len(pl.GroupCols) != 1 {
		t.Fatalf("plan shape: stride=%d groups=%d cols=%v", pl.Stride, len(pl.Groups), pl.GroupCols)
	}
	if pl.Family[0].Kind != AvgAgg || pl.Family[1].Kind != FreqAgg {
		t.Fatalf("family kinds: %v, %v", pl.Family[0].Kind, pl.Family[1].Kind)
	}
	catCol := pl.GroupCols[0]
	dict := tb.DictOf(catCol)
	if pl.Slots.Dense == nil {
		t.Fatal("single-column plan must use the dense slot table")
	}
	for g, tuple := range pl.Groups {
		if got := pl.Slots.Dense[tuple[0]]; got != int32(g) {
			t.Fatalf("group %d (code %d=%q): slot %d", g, tuple[0], dict.Value(tuple[0]), got)
		}
	}
	// The factored base must admit exactly the rows any group's region
	// admits, modulo the group constraint: week<30 and cat ∈ {g0,g1,g2}.
	for row := 0; row < tb.Rows(); row++ {
		inAny := false
		for _, sn := range []int{0, 2, 4} { // one snippet per group
			if snips[sn].Region.Matches(tb, row) {
				inAny = true
			}
		}
		if pl.Base.Matches(tb, row) != inAny {
			t.Fatalf("row %d: base=%v, union of groups=%v", row, pl.Base.Matches(tb, row), inAny)
		}
	}
}

// TestGroupedFactorGroupsMultiColumn exercises the packed multi-column slot
// table.
func TestGroupedFactorGroupsMultiColumn(t *testing.T) {
	tb := groupedFixture(t)
	catCol, _ := tb.Schema().Lookup("cat")
	regCol, _ := tb.Schema().Lookup("region")
	var groups [][]GroupValue
	for _, c := range []string{"g0", "g1"} {
		for _, r := range []string{"a", "b"} {
			groups = append(groups, []GroupValue{{Col: catCol, Str: c}, {Col: regCol, Str: r}})
		}
	}
	snips := decomposeGrouped(t, tb, "SELECT cat, region, COUNT(*) FROM t GROUP BY cat, region", groups)
	pl := FactorGroups(snips)
	if pl == nil {
		t.Fatal("multi-column grouped decomposition did not factor")
	}
	if pl.Slots.Packed == nil || len(pl.GroupCols) != 2 {
		t.Fatalf("plan shape: %+v", pl)
	}
	for g, tuple := range pl.Groups {
		if got := pl.Slots.Slot(PackKey(tuple, pl.Slots.Shifts)); got != int32(g) {
			t.Fatalf("group %d: slot %d", g, got)
		}
	}
}

// TestGroupedFactorGroupsFallbacks: shapes outside the grouped pattern must
// return nil and fall back to the per-snippet scan.
func TestGroupedFactorGroupsFallbacks(t *testing.T) {
	tb := groupedFixture(t)
	weekCol, _ := tb.Schema().Lookup("week")

	ungrouped := decomposeGrouped(t, tb, "SELECT AVG(val), COUNT(*) FROM t WHERE week < 30", nil)
	if FactorGroups(ungrouped) != nil {
		t.Fatal("ungrouped decomposition must not factor")
	}
	single := decomposeGrouped(t, tb, "SELECT cat, COUNT(*) FROM t GROUP BY cat", catGroups(tb, "cat", "g0"))
	if FactorGroups(single) != nil {
		t.Fatal("one group has nothing to factor")
	}
	numeric := decomposeGrouped(t, tb, "SELECT week, COUNT(*) FROM t GROUP BY week",
		[][]GroupValue{{{Col: weekCol, Num: 1}}, {{Col: weekCol, Num: 2}}})
	if FactorGroups(numeric) != nil {
		t.Fatal("numeric grouping must not factor (point ranges are not codes)")
	}
	// Unrelated snippet lists (distinct regions, no grouping structure).
	mixed := append(decomposeGrouped(t, tb, "SELECT AVG(val) FROM t WHERE week < 10", nil),
		decomposeGrouped(t, tb, "SELECT AVG(val) FROM t WHERE week < 20", nil)...)
	if FactorGroups(mixed) != nil {
		t.Fatal("unrelated snippets must not factor")
	}
}

// TestGroupedSpecOf covers the discovery-spec construction and its
// fallbacks.
func TestGroupedSpecOf(t *testing.T) {
	tb := groupedFixture(t)
	catCol, _ := tb.Schema().Lookup("cat")
	regCol, _ := tb.Schema().Lookup("region")
	weekCol, _ := tb.Schema().Lookup("week")

	stmt, err := sqlparse.Parse("SELECT cat, region, AVG(val), COUNT(*) FROM t WHERE week < 30 GROUP BY cat, region")
	if err != nil {
		t.Fatal(err)
	}
	spec := GroupedSpecOf(stmt, tb, []int{catCol, regCol})
	if spec == nil {
		t.Fatal("foldable statement yielded no spec")
	}
	if len(spec.Family) != 2 || len(spec.Shifts) != 2 {
		t.Fatalf("spec shape: family=%d shifts=%v", len(spec.Family), spec.Shifts)
	}
	if spec.Base == nil || spec.Base.Matches(tb, 35) { // week 35 ≥ 30
		t.Fatal("spec base must carry the WHERE region")
	}

	if GroupedSpecOf(stmt, tb, nil) != nil {
		t.Fatal("no group columns must not fold")
	}
	if GroupedSpecOf(stmt, tb, []int{weekCol}) != nil {
		t.Fatal("numeric group column must not fold")
	}
}

// TestGroupedExecFormFinalized pins satellite 1: open numeric bounds are
// normalized once into the region's finalized execution form, and constrain
// calls invalidate it.
func TestGroupedExecFormFinalized(t *testing.T) {
	tb := groupedFixture(t)
	weekCol, _ := tb.Schema().Lookup("week")
	g := NewRegion(tb.Schema())
	g.ConstrainNum(weekCol, NumRange{Lo: 10, Hi: 20, LoOpen: true, HiOpen: true})
	ex := g.execForm()
	if len(ex.nums) != 1 {
		t.Fatalf("exec form: %+v", ex)
	}
	p := ex.nums[0]
	if !(p.lo > 10 && p.hi < 20) {
		t.Fatalf("open bounds not closed: [%v, %v]", p.lo, p.hi)
	}
	if !p.r.Contains(p.lo) || !p.r.Contains(p.hi) || p.r.Contains(10) || p.r.Contains(20) {
		t.Fatal("closed bounds disagree with the range semantics")
	}
	if got := g.execForm(); got != ex {
		t.Fatal("exec form must be cached")
	}
	g.ConstrainNum(weekCol, NumRange{Lo: 12, Hi: 18})
	if got := g.execForm(); got == ex {
		t.Fatal("constrain must invalidate the cached exec form")
	}
}
