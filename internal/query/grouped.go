package query

import (
	"math/bits"
	"sort"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Grouped-execution planning. The §2.3 decomposition of a GROUP BY query
// emits one snippet per (aggregate, group value), every one a clone of the
// query's base region constrained to a single dictionary code per grouping
// column — so a G-group scan evaluates the shared base predicate G times per
// block. FactorGroups recognizes that pattern after the fact and factors it
// into a GroupedPlan: the base region evaluated once per block into a shared
// selection vector, plus a code→slot table that scatters each matched row to
// its group's accumulator bank. GroupedSpecOf produces the same factored
// shape before the groups are known, so a one-shot execution can fold group
// discovery into the very same scan instead of a separate GroupRows pass.
// The scan kernels driving either live in internal/aqp (scan_grouped.go).

// FamilySlot describes one snippet of the per-group snippet family — the
// (aggregate kind, measure) signature every group repeats, in the snippet
// order Decompose emits.
type FamilySlot struct {
	// Kind is the internal aggregate (AVG or FREQ).
	Kind AggKind
	// MeasureKey canonically identifies the measure (empty for FREQ).
	MeasureKey string
	// Measure evaluates the measure for a row (nil for FREQ). All groups'
	// snippets compile to behaviorally identical measure closures, so any
	// group's instance serves the shared scan.
	Measure func(*storage.Table, int) float64
	// MeasureCol is the bare numeric column index of the measure, or -1 when
	// the measure is a compound expression (gathered via Measure instead).
	MeasureCol int
}

// SlotTable maps the group columns' dictionary codes to accumulator slots.
// Exactly one of Dense/Packed is set: a single grouping column uses a dense
// code-indexed array (Dense[code] is the slot, -1 for codes that are not a
// planned group), multiple columns pack their codes into a uint64 key
// (PackShift bit widths, most-significant column first) probed in Packed.
type SlotTable struct {
	Dense  []int32
	Packed map[uint64]int32
	// Shifts holds the per-column bit widths of the packed key, in group
	// column order. Populated in both layouts (single-column packing is the
	// identity), so discovery-mode kernels can reuse it.
	Shifts []uint
}

// Slot resolves a packed key to its slot, returning -1 when the codes name
// no planned group. Single-column tables should index Dense directly.
func (st *SlotTable) Slot(key uint64) int32 {
	if s, ok := st.Packed[key]; ok {
		return s
	}
	return -1
}

// PackKey packs one code tuple (group column order) into the probe key.
func PackKey(codes []int32, shifts []uint) uint64 {
	var key uint64
	for j, c := range codes {
		key = key<<shifts[j] | uint64(uint32(c))
	}
	return key
}

// packShifts computes the per-column bit widths for packing group codes of
// the given columns into one uint64, sized by the current dictionary
// cardinalities (codes in any frozen snapshot are strictly below them).
// ok=false when the widths do not fit 64 bits.
func packShifts(t *storage.Table, groupCols []int) (shifts []uint, ok bool) {
	shifts = make([]uint, len(groupCols))
	total := 0
	for j, col := range groupCols {
		b := bits.Len(uint(t.DictOf(col).Size()))
		if b == 0 {
			b = 1
		}
		shifts[j] = uint(b)
		total += b
	}
	if total > 64 {
		return nil, false
	}
	return shifts, true
}

// GroupedPlan is the factored form of a grouped snippet list: one shared
// base region plus a per-group slot mapping, ready for the one-pass
// accumulator-bank kernel. Snippet i of the original flat list belongs to
// group i/Stride and family slot i%Stride, which is how the kernel's bank
// expands back into the per-snippet partials the rest of the pipeline
// (merge order, inference, recording) consumes unchanged.
type GroupedPlan struct {
	// Table is the bound relation all snippets share.
	Table *storage.Table
	// GroupCols are the grouping columns (all categorical), ascending.
	GroupCols []int
	// Groups holds each group's code tuple in GroupCols order, one entry per
	// decomposition group, in snippet (= group) order.
	Groups [][]int32
	// Base is the shared selection region: the common constraints of every
	// per-group region, with each grouping column constrained to the union
	// of the groups' codes. Rows matching Base but mapping to no slot (a
	// code combination outside Groups) contribute nothing, exactly like the
	// per-snippet path.
	Base *Region
	// Stride is the number of snippets per group.
	Stride int
	// Family is the per-group snippet signature sequence (length Stride).
	Family []FamilySlot
	// Slots maps group codes to bank slots (slot g holds group g's moments).
	Slots *SlotTable
}

// FactorGroups factors a flat snippet list into a GroupedPlan when it has
// the shape Decompose gives grouped queries: per-group runs of snippets
// sharing one Region instance, identical (kind, measure) signatures across
// runs, and regions differing only on categorical columns where every run
// holds exactly one code. Returns nil — caller falls back to the per-snippet
// scan — for any other shape, including fewer than two groups (nothing to
// factor) and group-code tuples that cannot be packed into 64 bits.
func FactorGroups(snips []*Snippet) *GroupedPlan {
	if len(snips) < 2 {
		return nil
	}
	t := snips[0].Table
	if t == nil {
		return nil
	}
	// Partition into per-group runs: Decompose gives all snippets of one
	// group the same Region instance, so pointer changes delimit groups.
	stride := 0
	for i, sn := range snips {
		if sn.Table != t || sn.Region == nil {
			return nil
		}
		if i > 0 && sn.Region != snips[i-1].Region {
			stride = i
			break
		}
	}
	if stride == 0 || len(snips)%stride != 0 {
		return nil
	}
	nGroups := len(snips) / stride
	if nGroups < 2 {
		return nil
	}
	regions := make([]*Region, nGroups)
	for g := 0; g < nGroups; g++ {
		regions[g] = snips[g*stride].Region
		for j := 0; j < stride; j++ {
			if snips[g*stride+j].Region != regions[g] {
				return nil
			}
		}
	}
	// Family signature: every group must repeat group 0's sequence.
	family := make([]FamilySlot, stride)
	for j := 0; j < stride; j++ {
		sn := snips[j]
		family[j] = FamilySlot{Kind: sn.Kind, MeasureKey: sn.MeasureKey, Measure: sn.Measure, MeasureCol: -1}
		if col, ok := sn.MeasureColumn(); ok {
			family[j].MeasureCol = col
		}
	}
	for g := 1; g < nGroups; g++ {
		for j := 0; j < stride; j++ {
			sn := snips[g*stride+j]
			if sn.Kind != family[j].Kind || sn.MeasureKey != family[j].MeasureKey {
				return nil
			}
		}
	}
	// Diff the regions: numeric constraints must agree exactly; categorical
	// constraints either agree (common) or vary with exactly one code per
	// group (a grouping column).
	r0 := regions[0]
	for _, r := range regions[1:] {
		if len(r.num) != len(r0.num) || len(r.cat) != len(r0.cat) {
			return nil
		}
		for col, nr := range r0.num {
			if o, ok := r.num[col]; !ok || o != nr {
				return nil
			}
		}
		for col := range r0.cat {
			if _, ok := r.cat[col]; !ok {
				return nil
			}
		}
	}
	var groupCols []int
	commonCat := map[int]CatSet{}
	for col, s0 := range r0.cat {
		same := true
		for _, r := range regions[1:] {
			if !equalCodes(r.cat[col].Codes, s0.Codes) {
				same = false
				break
			}
		}
		if same {
			commonCat[col] = s0
			continue
		}
		for _, r := range regions {
			if len(r.cat[col].Codes) != 1 {
				return nil
			}
		}
		groupCols = append(groupCols, col)
	}
	if len(groupCols) == 0 {
		return nil
	}
	sort.Ints(groupCols)

	groups := make([][]int32, nGroups)
	for g, r := range regions {
		tuple := make([]int32, len(groupCols))
		for j, col := range groupCols {
			tuple[j] = r.cat[col].Codes[0]
		}
		groups[g] = tuple
	}
	slots := buildSlots(t, groupCols, groups)
	if slots == nil {
		return nil
	}

	// The factored base: common constraints plus the union of group codes on
	// each grouping column.
	base := NewRegion(t.Schema())
	for col, nr := range r0.num {
		base.num[col] = nr
	}
	for col, s := range commonCat {
		base.cat[col] = s
	}
	for j, col := range groupCols {
		union := make([]int32, 0, nGroups)
		for _, g := range groups {
			union = append(union, g[j])
		}
		sort.Slice(union, func(a, b int) bool { return union[a] < union[b] })
		dedup := union[:0]
		for i, c := range union {
			if i == 0 || c != union[i-1] {
				dedup = append(dedup, c)
			}
		}
		base.cat[col] = CatSet{Codes: dedup}
	}

	return &GroupedPlan{
		Table:     t,
		GroupCols: groupCols,
		Groups:    groups,
		Base:      base,
		Stride:    stride,
		Family:    family,
		Slots:     slots,
	}
}

// buildSlots constructs the code→slot mapping, or nil when the tuples are
// not distinct or cannot be packed.
func buildSlots(t *storage.Table, groupCols []int, groups [][]int32) *SlotTable {
	shifts, ok := packShifts(t, groupCols)
	if !ok {
		return nil
	}
	st := &SlotTable{Shifts: shifts}
	if len(groupCols) == 1 {
		size := t.DictOf(groupCols[0]).Size()
		dense := make([]int32, size)
		for i := range dense {
			dense[i] = -1
		}
		for g, tuple := range groups {
			c := tuple[0]
			if c < 0 || int(c) >= size || dense[c] != -1 {
				return nil
			}
			dense[c] = int32(g)
		}
		st.Dense = dense
		return st
	}
	packed := make(map[uint64]int32, len(groups))
	for g, tuple := range groups {
		key := PackKey(tuple, shifts)
		if _, dup := packed[key]; dup {
			return nil
		}
		packed[key] = int32(g)
	}
	st.Packed = packed
	return st
}

func equalCodes(a, b []int32) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// GroupedSpec describes a grouped query before its groups are known: the
// shared base region, the grouping columns, and the snippet family one group
// will instantiate. A one-shot execution hands it to the discovery scan
// (aqp.View.GroupedRunToCompletion), which allocates accumulator slots for
// group code tuples as rows reveal them — the same pass that aggregates, so
// the separate GroupRows rescan disappears.
type GroupedSpec struct {
	// Table is the bound base relation.
	Table *storage.Table
	// GroupCols are the grouping columns in statement order (all
	// categorical — numeric grouping falls back to the per-snippet path).
	GroupCols []int
	// Base is the query's WHERE region with no group constraints.
	Base *Region
	// Family holds the per-group snippet instances of the ungrouped
	// decomposition (region = Base); their kinds drive estimation and their
	// order matches what Decompose will emit per discovered group.
	Family []*Snippet
	// Aggregates maps user aggregates onto family snippet indexes.
	Aggregates []UserAggregate
	// Shifts are the code-packing bit widths for GroupCols (see PackKey).
	Shifts []uint
}

// GroupedSpecOf builds the discovery-scan spec for a checked grouped
// statement, or nil when the statement is outside the foldable shape: no
// grouping columns, a numeric grouping column, unpackable code tuples, or a
// decomposition error (the caller's fallback re-runs Decompose and surfaces
// the error there).
func GroupedSpecOf(stmt *sqlparse.SelectStmt, t *storage.Table, groupCols []int) *GroupedSpec {
	if len(groupCols) == 0 {
		return nil
	}
	for _, col := range groupCols {
		if t.Schema().Col(col).Kind != storage.Categorical {
			return nil
		}
	}
	shifts, ok := packShifts(t, groupCols)
	if !ok {
		return nil
	}
	decs, err := Decompose(stmt, t, nil, 1)
	if err != nil || len(decs) != 1 || len(decs[0].Snippets) == 0 {
		return nil
	}
	d := decs[0]
	return &GroupedSpec{
		Table:      t,
		GroupCols:  groupCols,
		Base:       d.Snippets[0].Region,
		Family:     d.Snippets,
		Aggregates: d.Aggregates,
		Shifts:     shifts,
	}
}
