package query

import (
	"fmt"
	"math"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// DefaultNmax bounds how many result-set groups get snippets per query
// (§2.3: "Verdict only generates snippets for Nmax (1,000 by default)
// groups").
const DefaultNmax = 1000

// GroupValue is one grouping column's value in a result row.
type GroupValue struct {
	Col int // column index in the bound table
	// Str/Num carry the value according to the column kind.
	Str string
	Num float64
}

// UserAggregate describes one user-facing aggregate of a query after
// binding: which internal snippets compose it (§2.3's aggregate
// computation). AVG needs only the Avg snippet; COUNT only the Freq
// snippet; SUM needs both.
type UserAggregate struct {
	Agg sqlparse.AggFunc
	// Avg/Freq are indexes into the decomposition's Snippets slice, or -1.
	Avg, Freq int
}

// Decomposition is the snippet set for one (query, group-row) combination.
type Decomposition struct {
	// Group identifies the result row this decomposition belongs to (empty
	// for ungrouped queries).
	Group []GroupValue
	// Snippets lists the distinct internal snippets needed.
	Snippets []*Snippet
	// Aggregates maps each user aggregate (in select-list order) onto
	// snippet indexes.
	Aggregates []UserAggregate
}

// Decompose converts a checked, supported statement into per-group snippet
// sets, following Figure 3: one snippet per (aggregate function, group
// value) with the group value folded into the region as an equality
// predicate. groups lists the group rows of the answer set (a single empty
// group for ungrouped queries); at most nmax groups receive snippets
// (DefaultNmax when nmax<=0).
func Decompose(stmt *sqlparse.SelectStmt, t *storage.Table, groups [][]GroupValue, nmax int) ([]*Decomposition, error) {
	if nmax <= 0 {
		nmax = DefaultNmax
	}
	base, err := BindRegion(stmt.Where, t)
	if err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		groups = [][]GroupValue{nil}
	}
	if len(groups) > nmax {
		groups = groups[:nmax]
	}

	out := make([]*Decomposition, 0, len(groups))
	for _, grp := range groups {
		region := base.Clone()
		for _, gv := range grp {
			def := t.Schema().Col(gv.Col)
			if def.Kind == storage.Categorical {
				code, found := t.DictOf(gv.Col).LookupCode(gv.Str)
				if !found {
					region.ConstrainCat(gv.Col, CatSet{Codes: []int32{}})
				} else {
					region.ConstrainCat(gv.Col, CatSet{Codes: []int32{code}})
				}
			} else {
				region.ConstrainNum(gv.Col, NumRange{Lo: gv.Num, Hi: gv.Num})
			}
		}

		d := &Decomposition{Group: grp}
		freqIdx := -1
		avgIdx := map[string]int{} // measure key -> snippet index
		ensureFreq := func() int {
			if freqIdx < 0 {
				d.Snippets = append(d.Snippets, &Snippet{
					Kind:   FreqAgg,
					Region: region,
					Table:  t,
				})
				freqIdx = len(d.Snippets) - 1
			}
			return freqIdx
		}
		ensureAvg := func(e sqlparse.Expr) (int, error) {
			fn, key, err := CompileMeasure(e, t)
			if err != nil {
				return -1, err
			}
			if i, ok := avgIdx[key]; ok {
				return i, nil
			}
			d.Snippets = append(d.Snippets, &Snippet{
				Kind:       AvgAgg,
				MeasureKey: key,
				Measure:    fn,
				Region:     region,
				Table:      t,
			})
			avgIdx[key] = len(d.Snippets) - 1
			return avgIdx[key], nil
		}

		for _, item := range stmt.Items {
			switch item.Agg {
			case sqlparse.AggNone:
				continue
			case sqlparse.AggAvg:
				i, err := ensureAvg(item.Expr)
				if err != nil {
					return nil, err
				}
				d.Aggregates = append(d.Aggregates, UserAggregate{Agg: item.Agg, Avg: i, Freq: -1})
			case sqlparse.AggCount:
				d.Aggregates = append(d.Aggregates, UserAggregate{Agg: item.Agg, Avg: -1, Freq: ensureFreq()})
			case sqlparse.AggSum:
				i, err := ensureAvg(item.Expr)
				if err != nil {
					return nil, err
				}
				d.Aggregates = append(d.Aggregates, UserAggregate{Agg: item.Agg, Avg: i, Freq: ensureFreq()})
			default:
				return nil, fmt.Errorf("%w: aggregate %s", ErrUnsupported, item.Agg)
			}
		}
		out = append(out, d)
	}
	return out, nil
}

// ScalarEstimate is a (value, expected standard error) pair — the (θ, β)
// the AQP engine produces for one snippet, and the shape every downstream
// computation preserves.
type ScalarEstimate struct {
	Value  float64
	StdErr float64
	// PopErr is the expected deviation of the *finite-population* exact
	// answer from the underlying distribution's mean over the region
	// (≈ s/√N for N matching base-relation rows). The paper works at
	// 100 GB+ scale where this is negligible; at this repository's
	// reduced table sizes it is not, so the engine reports it and
	// Verdict adds it as a per-snippet variance nugget (see DESIGN.md).
	PopErr float64
}

// ComposeAggregate reassembles a user aggregate from internal snippet
// estimates (§2.3): AVG passes through; COUNT(*) = FREQ×|r| rounded; SUM =
// AVG × COUNT with first-order error propagation for the product of two
// (approximately independent) estimates.
func ComposeAggregate(agg sqlparse.AggFunc, avg, freq ScalarEstimate, tableRows int) (ScalarEstimate, error) {
	n := float64(tableRows)
	switch agg {
	case sqlparse.AggAvg:
		return avg, nil
	case sqlparse.AggCount:
		return ScalarEstimate{
			Value:  roundNonNeg(freq.Value * n),
			StdErr: freq.StdErr * n,
		}, nil
	case sqlparse.AggSum:
		cnt := freq.Value * n
		cntErr := freq.StdErr * n
		val := avg.Value * cnt
		// Var(X·Y) ≈ Y²Var(X) + X²Var(Y) for weakly dependent X, Y.
		variance := cnt*cnt*avg.StdErr*avg.StdErr + avg.Value*avg.Value*cntErr*cntErr
		return ScalarEstimate{Value: val, StdErr: sqrtNonNeg(variance)}, nil
	default:
		return ScalarEstimate{}, fmt.Errorf("%w: aggregate %s not composable", ErrUnsupported, agg)
	}
}

func roundNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return float64(int64(v + 0.5))
}

func sqrtNonNeg(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
