package query

import (
	"fmt"

	"repro/internal/sqlparse"
)

// Support classifies one parsed query against Verdict's supported class
// (§2.2). Unsupported queries bypass inference and are merely forwarded to
// the AQP engine; only supported queries enter the synopsis. Table 3's
// generality numbers are fractions of queries with OK set.
type Support struct {
	OK bool
	// HasAggregate reports whether any aggregate appears at all — Table 3's
	// denominator counts only aggregate queries.
	HasAggregate bool
	// Reasons lists every violated condition (empty iff OK).
	Reasons []string
}

func (s *Support) fail(format string, args ...any) {
	s.OK = false
	s.Reasons = append(s.Reasons, fmt.Sprintf(format, args...))
}

// Check runs the query type checker (§2.2) over a parsed statement. The
// checker is purely syntactic: it needs no schema, matching how Verdict
// inspects "each query, upon its arrival".
func Check(stmt *sqlparse.SelectStmt) Support {
	s := Support{OK: true}

	if stmt.HasSubquery {
		s.fail("nested query (derived table or subquery predicate)")
	}

	nAgg := 0
	for _, item := range stmt.Items {
		switch item.Agg {
		case sqlparse.AggNone:
			// Plain projections must be GROUP BY columns; checked below.
		case sqlparse.AggMin, sqlparse.AggMax:
			nAgg++
			s.HasAggregate = true
			s.fail("%s aggregate not supported by sampling", item.Agg)
		default:
			nAgg++
			s.HasAggregate = true
			if item.Distinct {
				s.fail("DISTINCT aggregate")
			}
			if err := checkMeasureExpr(item.Expr, item.Agg); err != "" {
				s.fail("%s", err)
			}
		}
	}
	if nAgg == 0 {
		s.fail("no supported aggregate in select list")
	}

	// Every non-aggregate projection must be a plain column (a grouping
	// column); arbitrary scalar projections are outside the class.
	groupNames := map[string]bool{}
	for _, g := range stmt.GroupBy {
		groupNames[g.Name] = true
	}
	for _, item := range stmt.Items {
		if item.Agg != sqlparse.AggNone {
			continue
		}
		ref, ok := item.Expr.(*sqlparse.ColRef)
		if !ok {
			s.fail("non-column projection %s", item.Expr)
			continue
		}
		if len(stmt.GroupBy) > 0 && !groupNames[ref.Name] {
			s.fail("projected column %s not in GROUP BY", ref.Name)
		}
	}

	if stmt.Where != nil {
		checkPredicate(stmt.Where, &s, false)
	}
	// HAVING operates on the result set the AQP engine returns (§2.2 item
	// 4), so aggregate comparisons there are fine; disjunctions and textual
	// filters are still outside the class.
	if stmt.Having != nil {
		checkPredicate(stmt.Having, &s, true)
	}
	return s
}

// checkMeasureExpr validates an aggregate argument: COUNT takes *, while
// SUM/AVG take arithmetic over columns and literals ("derived attributes").
func checkMeasureExpr(e sqlparse.Expr, agg sqlparse.AggFunc) string {
	if _, ok := e.(*sqlparse.Star); ok {
		if agg == sqlparse.AggCount {
			return ""
		}
		return fmt.Sprintf("%s(*) is not a valid aggregate", agg)
	}
	if agg == sqlparse.AggCount {
		// COUNT(col) is NULL-sensitive; this engine has no NULLs, so it is
		// equivalent to COUNT(*) and accepted.
		_ = e
	}
	return checkArith(e)
}

func checkArith(e sqlparse.Expr) string {
	switch v := e.(type) {
	case *sqlparse.ColRef, *sqlparse.NumberLit:
		return ""
	case *sqlparse.BinaryExpr:
		if msg := checkArith(v.Left); msg != "" {
			return msg
		}
		return checkArith(v.Right)
	case *sqlparse.StringLit:
		return "string literal inside aggregate"
	case *sqlparse.AggExpr:
		return "nested aggregate"
	case *sqlparse.Star:
		return "* inside arithmetic"
	default:
		return fmt.Sprintf("unsupported expression %s", e)
	}
}

// checkPredicate walks a predicate tree enforcing §2.2's selection rules:
// conjunctions only, comparisons between a column and a constant, BETWEEN,
// and IN over constants. having=true permits aggregate expressions on the
// comparison's left side.
func checkPredicate(p sqlparse.Predicate, s *Support, having bool) {
	switch v := p.(type) {
	case *sqlparse.And:
		checkPredicate(v.Left, s, having)
		checkPredicate(v.Right, s, having)
	case *sqlparse.Or:
		s.fail("disjunction in %s clause", clauseName(having))
	case *sqlparse.Not:
		s.fail("NOT predicate in %s clause", clauseName(having))
	case *sqlparse.Like:
		s.fail("textual filter (LIKE '%s')", v.Pattern)
	case *sqlparse.Between:
		if !isColumn(v.Arg) {
			s.fail("BETWEEN over non-column %s", v.Arg)
		}
		if !isConstant(v.Lo) || !isConstant(v.Hi) {
			s.fail("BETWEEN with non-constant bounds")
		}
	case *sqlparse.In:
		if !isColumn(v.Arg) {
			s.fail("IN over non-column %s", v.Arg)
		}
		for _, val := range v.Values {
			if !isConstant(val) {
				s.fail("IN list with non-constant %s", val)
			}
		}
	case *sqlparse.Compare:
		left, right := v.Left, v.Right
		// Normalize constant-on-left comparisons.
		if isConstant(left) && !isConstant(right) {
			left, right = right, left
		}
		switch {
		case having && isAggregate(left):
			if !isConstant(right) {
				s.fail("HAVING comparison with non-constant %s", right)
			}
		case isColumn(left):
			if !isConstant(right) {
				s.fail("column-to-column comparison %s", v)
			}
		case isConstant(left) && isConstant(right):
			// Constant folding (also the placeholder the parser emits for
			// IS NULL); harmless.
		default:
			s.fail("unsupported comparison %s in %s clause", v, clauseName(having))
		}
	default:
		s.fail("unsupported predicate %s", p)
	}
}

func clauseName(having bool) string {
	if having {
		return "HAVING"
	}
	return "WHERE"
}

func isColumn(e sqlparse.Expr) bool {
	_, ok := e.(*sqlparse.ColRef)
	return ok
}

func isConstant(e sqlparse.Expr) bool {
	switch v := e.(type) {
	case *sqlparse.NumberLit, *sqlparse.StringLit:
		return true
	case *sqlparse.BinaryExpr:
		return isConstant(v.Left) && isConstant(v.Right)
	default:
		return false
	}
}

func isAggregate(e sqlparse.Expr) bool {
	_, ok := e.(*sqlparse.AggExpr)
	return ok
}
