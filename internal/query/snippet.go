package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// AggKind enumerates Verdict's two internal aggregate computations (§2.3):
// everything the user asks for is reassembled from AVG(A_k) and FREQ(*).
type AggKind uint8

// Internal aggregates.
const (
	// AvgAgg is AVG(expr) over the tuples of the snippet's region.
	AvgAgg AggKind = iota
	// FreqAgg is FREQ(*): the fraction of the relation's tuples inside the
	// region. COUNT(*) = round(FREQ(*) × table cardinality).
	FreqAgg
)

func (k AggKind) String() string {
	if k == AvgAgg {
		return "AVG"
	}
	return "FREQ"
}

// Snippet is Verdict's basic unit of inference (Definition 1): one internal
// aggregate over one selection region; its exact answer is a single scalar.
type Snippet struct {
	Kind AggKind
	// MeasureKey canonically identifies the aggregated expression (empty
	// for FREQ). Snippets form one model per (Kind, MeasureKey) "aggregate
	// function g".
	MeasureKey string
	// Measure evaluates the aggregated expression for a row of the bound
	// table (nil for FREQ).
	Measure func(t *storage.Table, row int) float64
	// Region is the selection region F.
	Region *Region
	// Table is the bound base relation.
	Table *storage.Table
}

// FuncID identifies the aggregate function g a snippet belongs to — the
// unit that owns its own correlation parameters and synopsis quota C_g.
type FuncID struct {
	Kind       AggKind
	MeasureKey string
}

func (f FuncID) String() string {
	if f.Kind == FreqAgg {
		return "FREQ(*)"
	}
	return "AVG(" + f.MeasureKey + ")"
}

// Func returns the snippet's aggregate function identity.
func (s *Snippet) Func() FuncID {
	return FuncID{Kind: s.Kind, MeasureKey: s.MeasureKey}
}

// MeasureColumn resolves the snippet's measure to a bare numeric column when
// possible (the MeasureKey is exactly a column name, the canonical key
// CompileMeasure emits for a ColRef). The vectorized scan path then gathers
// values straight from the column slice instead of calling Measure per row.
func (s *Snippet) MeasureColumn() (int, bool) {
	if s.Kind != AvgAgg || s.Table == nil {
		return 0, false
	}
	col, ok := s.Table.Schema().Lookup(s.MeasureKey)
	if !ok || s.Table.Schema().Col(col).Kind != storage.Numeric {
		return 0, false
	}
	return col, true
}

// Key returns a canonical identity string: aggregate function plus region.
// Identical keys denote identical snippets (used for caching baselines and
// dedup).
func (s *Snippet) Key() string {
	return s.Func().String() + s.Region.Key(s.Table)
}

// CompileMeasure builds a row evaluator for an aggregate argument over the
// given table. Only measure-expression shapes accepted by the checker are
// compilable; anything else errors.
func CompileMeasure(e sqlparse.Expr, t *storage.Table) (fn func(*storage.Table, int) float64, key string, err error) {
	switch v := e.(type) {
	case *sqlparse.ColRef:
		col, ok := t.Schema().Lookup(v.Name)
		if !ok {
			return nil, "", fmt.Errorf("%w: unknown column %s", ErrUnsupported, v.Name)
		}
		if t.Schema().Col(col).Kind != storage.Numeric {
			return nil, "", fmt.Errorf("%w: aggregate over categorical column %s", ErrUnsupported, v.Name)
		}
		c := col
		return func(tb *storage.Table, row int) float64 {
			return tb.NumAt(row, c)
		}, v.Name, nil
	case *sqlparse.NumberLit:
		val := v.Value
		return func(*storage.Table, int) float64 { return val }, trimNum(val), nil
	case *sqlparse.BinaryExpr:
		lf, lk, err := CompileMeasure(v.Left, t)
		if err != nil {
			return nil, "", err
		}
		rf, rk, err := CompileMeasure(v.Right, t)
		if err != nil {
			return nil, "", err
		}
		op := v.Op
		var f func(*storage.Table, int) float64
		switch op {
		case "+":
			f = func(tb *storage.Table, row int) float64 { return lf(tb, row) + rf(tb, row) }
		case "-":
			f = func(tb *storage.Table, row int) float64 { return lf(tb, row) - rf(tb, row) }
		case "*":
			f = func(tb *storage.Table, row int) float64 { return lf(tb, row) * rf(tb, row) }
		case "/":
			f = func(tb *storage.Table, row int) float64 {
				d := rf(tb, row)
				if d == 0 {
					return 0
				}
				return lf(tb, row) / d
			}
		default:
			return nil, "", fmt.Errorf("%w: operator %q in aggregate", ErrUnsupported, op)
		}
		return f, "(" + lk + op + rk + ")", nil
	default:
		return nil, "", fmt.Errorf("%w: expression %s in aggregate", ErrUnsupported, e)
	}
}

func trimNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// BindRegion converts a checked WHERE predicate into a Region over the
// table's dimension attributes. It errors (wrapping ErrUnsupported) on
// shapes the checker would reject, making it safe to call on raw statements
// too.
func BindRegion(where sqlparse.Predicate, t *storage.Table) (*Region, error) {
	g := NewRegion(t.Schema())
	if where == nil {
		return g, nil
	}
	if err := bindPred(where, t, g); err != nil {
		return nil, err
	}
	return g, nil
}

func bindPred(p sqlparse.Predicate, t *storage.Table, g *Region) error {
	switch v := p.(type) {
	case *sqlparse.And:
		if err := bindPred(v.Left, t, g); err != nil {
			return err
		}
		return bindPred(v.Right, t, g)
	case *sqlparse.Between:
		col, kind, err := resolveColumn(v.Arg, t)
		if err != nil {
			return err
		}
		if kind != storage.Numeric {
			return fmt.Errorf("%w: BETWEEN on categorical column", ErrUnsupported)
		}
		lo, err := constNumber(v.Lo)
		if err != nil {
			return err
		}
		hi, err := constNumber(v.Hi)
		if err != nil {
			return err
		}
		g.ConstrainNum(col, sanitizeRange(NumRange{Lo: lo, Hi: hi}))
		return nil
	case *sqlparse.In:
		col, kind, err := resolveColumn(v.Arg, t)
		if err != nil {
			return err
		}
		if kind != storage.Categorical {
			return fmt.Errorf("%w: IN on numeric column", ErrUnsupported)
		}
		set, err := catSetFromValues(v.Values, t, col)
		if err != nil {
			return err
		}
		if v.Negate {
			set = complementCat(set, t.DictOf(col).Size())
		}
		g.ConstrainCat(col, set)
		return nil
	case *sqlparse.Compare:
		return bindCompare(v, t, g)
	case *sqlparse.Or:
		return fmt.Errorf("%w: disjunction", ErrUnsupported)
	case *sqlparse.Not:
		return fmt.Errorf("%w: negation", ErrUnsupported)
	case *sqlparse.Like:
		return fmt.Errorf("%w: LIKE filter", ErrUnsupported)
	default:
		return fmt.Errorf("%w: predicate %s", ErrUnsupported, p)
	}
}

func bindCompare(v *sqlparse.Compare, t *storage.Table, g *Region) error {
	left, right, op := v.Left, v.Right, v.Op
	if isConstant(left) && !isConstant(right) {
		left, right = right, left
		op = flipOp(op)
	}
	if isConstant(left) && isConstant(right) {
		// Constant-folded placeholder (e.g. parser's IS NULL stub): no
		// region effect.
		return nil
	}
	col, kind, err := resolveColumn(left, t)
	if err != nil {
		return err
	}
	if kind == storage.Categorical {
		lit, ok := right.(*sqlparse.StringLit)
		if !ok {
			return fmt.Errorf("%w: categorical comparison with non-string", ErrUnsupported)
		}
		code, found := t.DictOf(col).LookupCode(lit.Value)
		switch op {
		case sqlparse.OpEq:
			if !found {
				g.ConstrainCat(col, CatSet{Codes: []int32{}}) // empty
			} else {
				g.ConstrainCat(col, CatSet{Codes: []int32{code}})
			}
		case sqlparse.OpNe:
			if !found {
				g.ConstrainCat(col, CatSet{}) // excludes nothing
			} else {
				g.ConstrainCat(col, complementCat(CatSet{Codes: []int32{code}}, t.DictOf(col).Size()))
			}
		default:
			return fmt.Errorf("%w: ordering comparison on categorical column", ErrUnsupported)
		}
		return nil
	}
	val, err := constNumber(right)
	if err != nil {
		return err
	}
	inf := math.Inf(1)
	switch op {
	case sqlparse.OpEq:
		g.ConstrainNum(col, NumRange{Lo: val, Hi: val})
	case sqlparse.OpLt:
		g.ConstrainNum(col, NumRange{Lo: -inf, Hi: val, HiOpen: true})
	case sqlparse.OpLe:
		g.ConstrainNum(col, NumRange{Lo: -inf, Hi: val})
	case sqlparse.OpGt:
		g.ConstrainNum(col, NumRange{Lo: val, Hi: inf, LoOpen: true})
	case sqlparse.OpGe:
		g.ConstrainNum(col, NumRange{Lo: val, Hi: inf})
	case sqlparse.OpNe:
		return fmt.Errorf("%w: <> on numeric column", ErrUnsupported)
	}
	// Clip open-ended ranges to the attribute domain so kernel integrals
	// stay finite.
	lo, hi := t.Domain(col)
	r := g.num[col]
	if math.IsInf(r.Lo, -1) {
		r.Lo = lo
		r.LoOpen = false
	}
	if math.IsInf(r.Hi, 1) {
		r.Hi = hi
		r.HiOpen = false
	}
	g.num[col] = r
	return nil
}

func flipOp(op sqlparse.CompareOp) sqlparse.CompareOp {
	switch op {
	case sqlparse.OpLt:
		return sqlparse.OpGt
	case sqlparse.OpLe:
		return sqlparse.OpGe
	case sqlparse.OpGt:
		return sqlparse.OpLt
	case sqlparse.OpGe:
		return sqlparse.OpLe
	default:
		return op
	}
}

func resolveColumn(e sqlparse.Expr, t *storage.Table) (col int, kind storage.Kind, err error) {
	ref, ok := e.(*sqlparse.ColRef)
	if !ok {
		return 0, 0, fmt.Errorf("%w: non-column operand %s", ErrUnsupported, e)
	}
	c, found := t.Schema().Lookup(ref.Name)
	if !found {
		return 0, 0, fmt.Errorf("%w: unknown column %s", ErrUnsupported, ref.Name)
	}
	def := t.Schema().Col(c)
	if def.Role != storage.Dimension {
		return 0, 0, fmt.Errorf("%w: predicate on measure column %s", ErrUnsupported, ref.Name)
	}
	return c, def.Kind, nil
}

func constNumber(e sqlparse.Expr) (float64, error) {
	switch v := e.(type) {
	case *sqlparse.NumberLit:
		return v.Value, nil
	case *sqlparse.BinaryExpr:
		l, err := constNumber(v.Left)
		if err != nil {
			return 0, err
		}
		r, err := constNumber(v.Right)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("%w: division by zero", ErrUnsupported)
			}
			return l / r, nil
		}
		return 0, fmt.Errorf("%w: operator %q", ErrUnsupported, v.Op)
	default:
		return 0, fmt.Errorf("%w: non-numeric constant %s", ErrUnsupported, e)
	}
}

func catSetFromValues(vals []sqlparse.Expr, t *storage.Table, col int) (CatSet, error) {
	codes := make([]int32, 0, len(vals))
	for _, v := range vals {
		lit, ok := v.(*sqlparse.StringLit)
		if !ok {
			return CatSet{}, fmt.Errorf("%w: non-string IN value %s", ErrUnsupported, v)
		}
		if code, found := t.DictOf(col).LookupCode(lit.Value); found {
			codes = append(codes, code)
		}
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	// Dedup.
	out := codes[:0]
	for i, c := range codes {
		if i == 0 || c != codes[i-1] {
			out = append(out, c)
		}
	}
	return CatSet{Codes: out}, nil
}

func complementCat(s CatSet, dictSize int) CatSet {
	if s.Codes == nil {
		return CatSet{Codes: []int32{}}
	}
	out := make([]int32, 0, dictSize-len(s.Codes))
	j := 0
	for c := int32(0); c < int32(dictSize); c++ {
		if j < len(s.Codes) && s.Codes[j] == c {
			j++
			continue
		}
		out = append(out, c)
	}
	return CatSet{Codes: out}
}
