package query

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/storage"
)

// ErrUnsupported is wrapped by binder errors for queries outside the
// supported class.
var ErrUnsupported = errors.New("query: unsupported")

// NumRange is a (possibly open-ended) interval constraint on one numeric
// dimension attribute. Lo/Hi default to the attribute domain when the query
// places no constraint (§4.1). The open flags affect only exact row
// matching; the kernel integrals are insensitive to boundary points.
type NumRange struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Contains reports whether v satisfies the range. NaN satisfies nothing:
// zone-map pruning and the vectorized filters both rely on range membership
// being an interval predicate, which NaN's unordered comparisons would break.
func (r NumRange) Contains(v float64) bool {
	if v != v {
		return false
	}
	if r.LoOpen {
		if v <= r.Lo {
			return false
		}
	} else if v < r.Lo {
		return false
	}
	if r.HiOpen {
		if v >= r.Hi {
			return false
		}
	} else if v > r.Hi {
		return false
	}
	return true
}

// Width returns max(Hi-Lo, 0).
func (r NumRange) Width() float64 {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// Empty reports whether no value can satisfy the range.
func (r NumRange) Empty() bool {
	if r.Lo > r.Hi {
		return true
	}
	return r.Lo == r.Hi && (r.LoOpen || r.HiOpen)
}

// intersect tightens r with o.
func (r NumRange) intersect(o NumRange) NumRange {
	out := r
	if o.Lo > out.Lo || (o.Lo == out.Lo && o.LoOpen) {
		out.Lo, out.LoOpen = o.Lo, o.LoOpen
	}
	if o.Hi < out.Hi || (o.Hi == out.Hi && o.HiOpen) {
		out.Hi, out.HiOpen = o.Hi, o.HiOpen
	}
	return out
}

// CatSet is a constraint on one categorical dimension attribute: the set of
// admissible dictionary codes. A nil Codes slice means "unconstrained"
// (conceptually the universal set, Appendix F.2).
type CatSet struct {
	Codes []int32 // sorted ascending; nil = universal
}

// Universal reports whether the set is unconstrained.
func (c CatSet) Universal() bool { return c.Codes == nil }

// Contains reports whether the code satisfies the set.
func (c CatSet) Contains(code int32) bool {
	if c.Codes == nil {
		return true
	}
	i := sort.Search(len(c.Codes), func(i int) bool { return c.Codes[i] >= code })
	return i < len(c.Codes) && c.Codes[i] == code
}

// Size returns the set cardinality given the attribute's dictionary size.
func (c CatSet) Size(dictSize int) int {
	if c.Codes == nil {
		return dictSize
	}
	return len(c.Codes)
}

// OverlapCount returns |c ∩ o| given the dictionary size (Eq. 16's
// |F_i,k ∩ F_j,k| factor).
func (c CatSet) OverlapCount(o CatSet, dictSize int) int {
	switch {
	case c.Codes == nil && o.Codes == nil:
		return dictSize
	case c.Codes == nil:
		return len(o.Codes)
	case o.Codes == nil:
		return len(c.Codes)
	}
	i, j, n := 0, 0, 0
	for i < len(c.Codes) && j < len(o.Codes) {
		switch {
		case c.Codes[i] == o.Codes[j]:
			n++
			i++
			j++
		case c.Codes[i] < o.Codes[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// intersectCat intersects two categorical sets.
func intersectCat(a, b CatSet) CatSet {
	if a.Codes == nil {
		return b
	}
	if b.Codes == nil {
		return a
	}
	var out []int32
	i, j := 0, 0
	for i < len(a.Codes) && j < len(b.Codes) {
		switch {
		case a.Codes[i] == b.Codes[j]:
			out = append(out, a.Codes[i])
			i++
			j++
		case a.Codes[i] < b.Codes[j]:
			i++
		default:
			j++
		}
	}
	if out == nil {
		out = []int32{} // non-nil: empty, not universal
	}
	return CatSet{Codes: out}
}

// Region is the selection region F_i of one snippet, bound to a table
// schema: one entry per dimension attribute, in schema column order.
// Non-dimension (measure) columns carry no constraint.
type Region struct {
	schema *storage.Schema
	num    map[int]NumRange // keyed by column index; absent = full domain
	cat    map[int]CatSet   // keyed by column index; absent = universal

	// exec caches the finalized scan form (see execForm). It is invalidated
	// by every Constrain call; regions are never copied by value, so the
	// atomic pointer travels with the single instance.
	exec atomic.Pointer[regionExec]
}

// numPred is one numeric constraint in finalized scan form: the bound range
// plus the equivalent closed bounds on adjacent floats, so the vectorized
// filter loop carries two plain comparisons and no math.Nextafter calls.
type numPred struct {
	col    int
	r      NumRange
	lo, hi float64 // closed: lo <= v && v <= hi  ⟺  r.Contains(v) (NaN fails both)
}

// catPred is one categorical constraint in finalized scan form; universal
// (nil-Codes) sets are dropped entirely at finalize time.
type catPred struct {
	col int
	set CatSet
}

// regionExec is a Region's finalized execution form: constraints flattened
// into column-ordered slices with open numeric bounds pre-normalized to
// closed ones. Computed lazily on first scan use and cached until the next
// Constrain call, it keeps bind-time work (Nextafter, map iteration order)
// out of the per-block hot path.
type regionExec struct {
	empty bool // some constraint admits nothing: the region is provably empty
	nums  []numPred
	cats  []catPred
}

// execForm returns the cached finalized form, computing it on first use.
// Racing recomputations are idempotent (the form is a pure function of the
// constraint maps), so the lazy store needs no lock.
func (g *Region) execForm() *regionExec {
	if ex := g.exec.Load(); ex != nil {
		return ex
	}
	ex := &regionExec{}
	cols := make([]int, 0, len(g.num))
	for col := range g.num {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	for _, col := range cols {
		r := g.num[col]
		if r.Empty() {
			ex.empty = true
		}
		lo, hi := r.Lo, r.Hi
		if r.LoOpen {
			lo = math.Nextafter(r.Lo, math.Inf(1))
		}
		if r.HiOpen {
			hi = math.Nextafter(r.Hi, math.Inf(-1))
		}
		ex.nums = append(ex.nums, numPred{col: col, r: r, lo: lo, hi: hi})
	}
	cols = cols[:0]
	for col := range g.cat {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	for _, col := range cols {
		s := g.cat[col]
		if s.Codes == nil {
			continue // universal: satisfied by every row
		}
		if len(s.Codes) == 0 {
			ex.empty = true
		}
		ex.cats = append(ex.cats, catPred{col: col, set: s})
	}
	g.exec.Store(ex)
	return ex
}

// NewRegion returns an unconstrained region over the table's dimensions.
func NewRegion(schema *storage.Schema) *Region {
	return &Region{
		schema: schema,
		num:    make(map[int]NumRange),
		cat:    make(map[int]CatSet),
	}
}

// Clone deep-copies the region.
func (g *Region) Clone() *Region {
	out := NewRegion(g.schema)
	for k, v := range g.num {
		out.num[k] = v
	}
	for k, v := range g.cat {
		out.cat[k] = v
	}
	return out
}

// ConstrainNum intersects column col with the given range.
func (g *Region) ConstrainNum(col int, r NumRange) {
	if cur, ok := g.num[col]; ok {
		g.num[col] = cur.intersect(r)
	} else {
		g.num[col] = r
	}
	g.exec.Store(nil)
}

// ConstrainCat intersects column col with the given set.
func (g *Region) ConstrainCat(col int, s CatSet) {
	if cur, ok := g.cat[col]; ok {
		g.cat[col] = intersectCat(cur, s)
	} else {
		g.cat[col] = s
	}
	g.exec.Store(nil)
}

// NumRangeOf returns the effective range of a numeric dimension column,
// substituting the table's domain when unconstrained (§4.1: "We set the
// range to (min(Ak), max(Ak)) if no constraint is specified").
func (g *Region) NumRangeOf(col int, t *storage.Table) NumRange {
	if r, ok := g.num[col]; ok {
		return r
	}
	lo, hi := t.Domain(col)
	return NumRange{Lo: lo, Hi: hi}
}

// CatSetOf returns the effective value set of a categorical column.
func (g *Region) CatSetOf(col int) CatSet {
	if s, ok := g.cat[col]; ok {
		return s
	}
	return CatSet{}
}

// HasConstraint reports whether the query explicitly constrained col.
func (g *Region) HasConstraint(col int) bool {
	if _, ok := g.num[col]; ok {
		return true
	}
	if _, ok := g.cat[col]; ok {
		return true
	}
	return false
}

// ConstrainedCols returns the sorted column indices with constraints.
func (g *Region) ConstrainedCols() []int {
	var out []int
	for k := range g.num {
		out = append(out, k)
	}
	for k := range g.cat {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Matches reports whether table row r falls inside the region.
func (g *Region) Matches(t *storage.Table, row int) bool {
	for col, nr := range g.num {
		if !nr.Contains(t.NumAt(row, col)) {
			return false
		}
	}
	for col, cs := range g.cat {
		if !cs.Contains(t.CodesCol(col)[row]) {
			return false
		}
	}
	return true
}

// Volume returns the numeric hyper-rectangle volume |F_i| over the
// *constrained* numeric dimensions only (Appendix F.3 normalizes FREQ
// densities by this quantity); unconstrained dimensions use the full domain,
// and dimensions with zero domain width contribute a factor of 1.
func (g *Region) Volume(t *storage.Table) float64 {
	v := 1.0
	for _, col := range g.schema.DimensionCols() {
		if g.schema.Col(col).Kind != storage.Numeric {
			continue
		}
		w := g.NumRangeOf(col, t).Width()
		if w > 0 {
			v *= w
		}
	}
	return v
}

// FracVolume returns the fraction of the full numeric-domain volume covered
// by the region, times the fraction of categorical values admitted — a
// dimensionless selectivity proxy used by generators and diagnostics.
func (g *Region) FracVolume(t *storage.Table) float64 {
	f := 1.0
	for _, col := range g.schema.DimensionCols() {
		def := g.schema.Col(col)
		if def.Kind == storage.Numeric {
			lo, hi := t.Domain(col)
			if hi <= lo {
				continue
			}
			f *= g.NumRangeOf(col, t).Width() / (hi - lo)
		} else {
			ds := t.DictOf(col).Size()
			if ds == 0 {
				continue
			}
			f *= float64(g.CatSetOf(col).Size(ds)) / float64(ds)
		}
	}
	return f
}

// Key renders a canonical string identity for the region: constrained
// columns in order with their ranges/sets. Used in snippet keys.
func (g *Region) Key(t *storage.Table) string {
	var sb strings.Builder
	for _, col := range g.ConstrainedCols() {
		def := g.schema.Col(col)
		sb.WriteByte('|')
		sb.WriteString(def.Name)
		if def.Kind == storage.Numeric {
			r := g.num[col]
			lb, rb := "[", "]"
			if r.LoOpen {
				lb = "("
			}
			if r.HiOpen {
				rb = ")"
			}
			fmt.Fprintf(&sb, ":%s%g,%g%s", lb, r.Lo, r.Hi, rb)
		} else {
			s := g.cat[col]
			sb.WriteString(":{")
			for i, c := range s.Codes {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(t.DictOf(col).Value(c))
			}
			sb.WriteString("}")
		}
	}
	if sb.Len() == 0 {
		return "|*"
	}
	return sb.String()
}

// NumConstraints returns a copy of the explicit numeric range constraints,
// keyed by column index (serialization support).
func (g *Region) NumConstraints() map[int]NumRange {
	out := make(map[int]NumRange, len(g.num))
	for k, v := range g.num {
		out[k] = v
	}
	return out
}

// CatConstraints returns a copy of the explicit categorical constraints,
// keyed by column index.
func (g *Region) CatConstraints() map[int]CatSet {
	out := make(map[int]CatSet, len(g.cat))
	for k, v := range g.cat {
		out[k] = CatSet{Codes: append([]int32(nil), v.Codes...)}
	}
	return out
}

// EmptyRegion reports whether the region is certainly empty (some numeric
// range or categorical set admits nothing).
func (g *Region) EmptyRegion() bool {
	for _, r := range g.num {
		if r.Empty() {
			return true
		}
	}
	for _, s := range g.cat {
		if s.Codes != nil && len(s.Codes) == 0 {
			return true
		}
	}
	return false
}

// sanitizeRange guards against NaN bounds leaking in from generators.
func sanitizeRange(r NumRange) NumRange {
	if math.IsNaN(r.Lo) {
		r.Lo = math.Inf(-1)
	}
	if math.IsNaN(r.Hi) {
		r.Hi = math.Inf(1)
	}
	return r
}
