package query

import (
	"math"

	"repro/internal/storage"
)

// Vectorized region evaluation. The scan engine partitions a table into
// storage.BlockSize blocks; for each block a Region first consults the zone
// maps (PruneBlock) and only when the answer is indeterminate evaluates the
// predicate column-at-a-time into a reusable selection vector (MatchBlock).
// This replaces per-row Matches dispatch on the hot path: each constrained
// column is filtered in one tight loop over its backing slice.

// BlockDecision is the outcome of zone-map pruning for one block.
type BlockDecision uint8

const (
	// BlockPartial means the zone maps cannot decide; rows must be tested.
	BlockPartial BlockDecision = iota
	// BlockEmpty means provably no row of the block matches.
	BlockEmpty
	// BlockFull means provably every row of the block matches.
	BlockFull
)

// PruneBlock classifies block b of table t against the region using only
// zone maps, in O(#constraints) — no row access. BlockEmpty and BlockFull
// let the scan engine skip per-row predicate work entirely.
func (g *Region) PruneBlock(t *storage.Table, b int) BlockDecision {
	full := true
	for col, r := range g.num {
		if r.Empty() {
			return BlockEmpty
		}
		z := t.NumZone(col, b)
		// Entirely below or above the range ⇒ empty.
		if z.Max < r.Lo || (z.Max == r.Lo && r.LoOpen) ||
			z.Min > r.Hi || (z.Min == r.Hi && r.HiOpen) {
			return BlockEmpty
		}
		// The range is an interval, so containing both extremes contains
		// every value in between.
		if !(r.Contains(z.Min) && r.Contains(z.Max)) {
			full = false
		}
	}
	for col, s := range g.cat {
		if s.Codes == nil {
			continue // universal: satisfied by every row
		}
		z := t.CatZone(col, b)
		if len(s.Codes) == 0 {
			return BlockEmpty
		}
		any := false
		for _, c := range s.Codes {
			if z.ContainsCode(c) {
				any = true
				break
			}
		}
		if !any {
			return BlockEmpty
		}
		// Only a single-valued block can be proven fully admitted.
		if !(z.MinCode == z.MaxCode && s.Contains(z.MinCode)) {
			full = false
		}
	}
	if full {
		return BlockFull
	}
	return BlockPartial
}

// PrunesBlock reports whether zone maps prove block b contains no matching
// row — the skip test of the vectorized scan loop.
func (g *Region) PrunesBlock(t *storage.Table, b int) bool {
	return g.PruneBlock(t, b) == BlockEmpty
}

// MatchBlock evaluates the region over rows [lo, hi) of t and returns the
// selection vector of matching absolute row indices, ascending. sel is a
// scratch buffer reused across calls (pass sel[:0] semantics: its contents
// are overwritten, its capacity reused); the returned slice aliases it when
// capacity suffices.
func (g *Region) MatchBlock(t *storage.Table, lo, hi int, sel []int32) []int32 {
	sel = sel[:0]
	if hi <= lo {
		return sel
	}
	first := true
	for col, r := range g.num {
		vals := t.NumericCol(col)
		// Convert open bounds to closed ones on adjacent floats so the inner
		// loop is two branch-predictable comparisons.
		effLo, effHi := r.Lo, r.Hi
		if r.LoOpen {
			effLo = math.Nextafter(r.Lo, math.Inf(1))
		}
		if r.HiOpen {
			effHi = math.Nextafter(r.Hi, math.Inf(-1))
		}
		if first {
			for row := lo; row < hi; row++ {
				if v := vals[row]; v >= effLo && v <= effHi {
					sel = append(sel, int32(row))
				}
			}
			first = false
		} else {
			kept := sel[:0]
			for _, row := range sel {
				if v := vals[row]; v >= effLo && v <= effHi {
					kept = append(kept, row)
				}
			}
			sel = kept
		}
		if len(sel) == 0 {
			return sel
		}
	}
	for col, s := range g.cat {
		if s.Codes == nil {
			continue
		}
		codes := t.CodesCol(col)
		if first {
			sel = filterCatFirst(codes, lo, hi, s, sel)
			first = false
		} else {
			sel = filterCat(codes, s, sel)
		}
		if len(sel) == 0 {
			return sel
		}
	}
	if first {
		// Unconstrained region: every row matches.
		for row := lo; row < hi; row++ {
			sel = append(sel, int32(row))
		}
	}
	return sel
}

// filterCatFirst seeds the selection vector from a categorical constraint.
func filterCatFirst(codes []int32, lo, hi int, s CatSet, sel []int32) []int32 {
	switch len(s.Codes) {
	case 0:
		return sel
	case 1:
		want := s.Codes[0]
		for row := lo; row < hi; row++ {
			if codes[row] == want {
				sel = append(sel, int32(row))
			}
		}
	default:
		for row := lo; row < hi; row++ {
			if catSetHas(s, codes[row]) {
				sel = append(sel, int32(row))
			}
		}
	}
	return sel
}

// filterCat narrows an existing selection vector in place.
func filterCat(codes []int32, s CatSet, sel []int32) []int32 {
	kept := sel[:0]
	switch len(s.Codes) {
	case 0:
		return kept
	case 1:
		want := s.Codes[0]
		for _, row := range sel {
			if codes[row] == want {
				kept = append(kept, row)
			}
		}
	default:
		for _, row := range sel {
			if catSetHas(s, codes[row]) {
				kept = append(kept, row)
			}
		}
	}
	return kept
}

// smallSetScan is the set size below which a linear scan beats binary search
// in the per-row membership test.
const smallSetScan = 8

func catSetHas(s CatSet, code int32) bool {
	if len(s.Codes) <= smallSetScan {
		for _, c := range s.Codes {
			if c == code {
				return true
			}
		}
		return false
	}
	return s.Contains(code)
}
