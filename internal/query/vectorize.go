package query

import (
	"repro/internal/storage"
)

// Vectorized region evaluation. The scan engine partitions a table into
// storage.BlockSize blocks; for each block a Region first consults the zone
// maps (PruneBlock) and only when the answer is indeterminate evaluates the
// predicate column-at-a-time into a reusable selection vector (MatchBlock).
// This replaces per-row Matches dispatch on the hot path: each constrained
// column is filtered in one tight loop over its backing slice.
//
// Both entry points work off the region's finalized execution form
// (Region.execForm): constraints flattened into column-ordered slices with
// open numeric bounds pre-normalized — at bind/finalize time, once — to
// closed bounds on adjacent floats. The numeric and single-code categorical
// filter loops are branch-free: every candidate row index is written
// unconditionally and the write position advances by a 0/1 flag the compiler
// lowers to a conditional move, so selectivity never stalls the branch
// predictor.

// BlockDecision is the outcome of zone-map pruning for one block.
type BlockDecision uint8

const (
	// BlockPartial means the zone maps cannot decide; rows must be tested.
	BlockPartial BlockDecision = iota
	// BlockEmpty means provably no row of the block matches.
	BlockEmpty
	// BlockFull means provably every row of the block matches.
	BlockFull
)

// PruneBlock classifies block b of table t against the region using only
// zone maps, in O(#constraints) — no row access. BlockEmpty and BlockFull
// let the scan engine skip per-row predicate work entirely.
func (g *Region) PruneBlock(t *storage.Table, b int) BlockDecision {
	ex := g.execForm()
	if ex.empty {
		return BlockEmpty
	}
	full := true
	for i := range ex.nums {
		p := &ex.nums[i]
		r := p.r
		z := t.NumZone(p.col, b)
		// Entirely below or above the range ⇒ empty.
		if z.Max < r.Lo || (z.Max == r.Lo && r.LoOpen) ||
			z.Min > r.Hi || (z.Min == r.Hi && r.HiOpen) {
			return BlockEmpty
		}
		// The range is an interval, so containing both extremes contains
		// every value in between.
		if !(r.Contains(z.Min) && r.Contains(z.Max)) {
			full = false
		}
	}
	for i := range ex.cats {
		p := &ex.cats[i]
		z := t.CatZone(p.col, b)
		any := false
		for _, c := range p.set.Codes {
			if z.ContainsCode(c) {
				any = true
				break
			}
		}
		if !any {
			return BlockEmpty
		}
		// Only a single-valued block can be proven fully admitted.
		if !(z.MinCode == z.MaxCode && p.set.Contains(z.MinCode)) {
			full = false
		}
	}
	if full {
		return BlockFull
	}
	return BlockPartial
}

// PrunesBlock reports whether zone maps prove block b contains no matching
// row — the skip test of the vectorized scan loop.
func (g *Region) PrunesBlock(t *storage.Table, b int) bool {
	return g.PruneBlock(t, b) == BlockEmpty
}

// MatchBlock evaluates the region over rows [lo, hi) of t and returns the
// selection vector of matching absolute row indices, ascending. sel is a
// scratch buffer reused across calls (pass sel[:0] semantics: its contents
// are overwritten, its capacity reused); the returned slice aliases it when
// capacity suffices.
func (g *Region) MatchBlock(t *storage.Table, lo, hi int, sel []int32) []int32 {
	sel = sel[:0]
	if hi <= lo {
		return sel
	}
	ex := g.execForm()
	if ex.empty {
		return sel
	}
	if cap(sel) < hi-lo {
		sel = make([]int32, 0, hi-lo)
	}
	buf := sel[:hi-lo]
	n := 0
	first := true
	for i := range ex.nums {
		p := &ex.nums[i]
		vals := t.NumericCol(p.col)
		if first {
			n = filterNumInto(vals, lo, hi, p.lo, p.hi, buf)
			first = false
		} else {
			n = filterNum(vals, p.lo, p.hi, buf[:n])
		}
		if n == 0 {
			return buf[:0]
		}
	}
	for i := range ex.cats {
		p := &ex.cats[i]
		codes := t.CodesCol(p.col)
		if first {
			n = filterCatInto(codes, lo, hi, p.set, buf)
			first = false
		} else {
			n = filterCat(codes, p.set, buf[:n])
		}
		if n == 0 {
			return buf[:0]
		}
	}
	if first {
		// Unconstrained region: every row matches.
		for row := lo; row < hi; row++ {
			buf[row-lo] = int32(row)
		}
		n = hi - lo
	}
	return buf[:n]
}

// filterNumInto seeds the selection vector with the rows of [lo, hi) whose
// value lies in the closed interval [effLo, effHi]. dst must have hi-lo
// capacity; returns the match count. Branch-free: the row index is written
// unconditionally and the position advances by a conditional-move flag. NaN
// values fail both comparisons and are never kept.
func filterNumInto(vals []float64, lo, hi int, effLo, effHi float64, dst []int32) int {
	n := 0
	for row := lo; row < hi; row++ {
		v := vals[row]
		dst[n] = int32(row)
		keep := 0
		if v >= effLo && v <= effHi {
			keep = 1
		}
		n += keep
	}
	return n
}

// filterNum narrows an existing selection vector in place (the write index
// never passes the read index, so compaction is safe), returning the new
// length.
func filterNum(vals []float64, effLo, effHi float64, sel []int32) int {
	n := 0
	for _, row := range sel {
		v := vals[row]
		sel[n] = row
		keep := 0
		if v >= effLo && v <= effHi {
			keep = 1
		}
		n += keep
	}
	return n
}

// filterCatInto seeds the selection vector from a categorical constraint;
// dst must have hi-lo capacity. The single-code case — every grouped-query
// snippet region — runs branch-free like the numeric kernel.
func filterCatInto(codes []int32, lo, hi int, s CatSet, dst []int32) int {
	n := 0
	switch len(s.Codes) {
	case 0:
		return 0
	case 1:
		want := s.Codes[0]
		for row := lo; row < hi; row++ {
			dst[n] = int32(row)
			keep := 0
			if codes[row] == want {
				keep = 1
			}
			n += keep
		}
	default:
		for row := lo; row < hi; row++ {
			if catSetHas(s, codes[row]) {
				dst[n] = int32(row)
				n++
			}
		}
	}
	return n
}

// filterCat narrows an existing selection vector in place.
func filterCat(codes []int32, s CatSet, sel []int32) int {
	n := 0
	switch len(s.Codes) {
	case 0:
		return 0
	case 1:
		want := s.Codes[0]
		for _, row := range sel {
			sel[n] = row
			keep := 0
			if codes[row] == want {
				keep = 1
			}
			n += keep
		}
	default:
		for _, row := range sel {
			if catSetHas(s, codes[row]) {
				sel[n] = row
				n++
			}
		}
	}
	return n
}

// smallSetScan is the set size below which a linear scan beats binary search
// in the per-row membership test.
const smallSetScan = 8

func catSetHas(s CatSet, code int32) bool {
	if len(s.Codes) <= smallSetScan {
		for _, c := range s.Codes {
			if c == code {
				return true
			}
		}
		return false
	}
	return s.Contains(code)
}
