package query

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// salesTable builds a small denormalized relation used across tests.
func salesTable(t *testing.T) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "price", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
		{Name: "discount", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("sales", schema)
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < 100; i++ {
		if err := tb.AppendRow([]storage.Value{
			storage.Num(float64(i % 10)),
			storage.Num(float64(i) / 10),
			storage.Str(regions[i%4]),
			storage.Num(float64(100 + i)),
			storage.Num(0.1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func parse(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	s, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckSupported(t *testing.T) {
	good := []string{
		"SELECT AVG(revenue) FROM sales",
		"SELECT COUNT(*) FROM sales WHERE week > 3",
		"SELECT region, SUM(revenue), AVG(discount) FROM sales WHERE week BETWEEN 1 AND 5 GROUP BY region",
		"SELECT SUM(revenue * discount) FROM sales WHERE region IN ('east', 'west')",
		"SELECT COUNT(*) FROM sales GROUP BY region HAVING COUNT(*) > 10",
		"SELECT SUM(l.price) FROM lineitem l JOIN orders o ON l.okey = o.okey WHERE o.status = 'F'",
	}
	for _, sql := range good {
		s := Check(parse(t, sql))
		if !s.OK {
			t.Errorf("%q should be supported; reasons=%v", sql, s.Reasons)
		}
		if !s.HasAggregate {
			t.Errorf("%q should count as aggregate query", sql)
		}
	}
}

func TestCheckUnsupported(t *testing.T) {
	cases := []struct {
		sql    string
		reason string
	}{
		{"SELECT week FROM sales", "no supported aggregate"},
		{"SELECT MIN(revenue) FROM sales", "MIN"},
		{"SELECT MAX(revenue) FROM sales", "MAX"},
		{"SELECT COUNT(DISTINCT region) FROM sales", "DISTINCT"},
		{"SELECT COUNT(*) FROM sales WHERE week = 1 OR week = 2", "disjunction"},
		{"SELECT COUNT(*) FROM sales WHERE region LIKE '%Apple%'", "textual filter"},
		{"SELECT COUNT(*) FROM sales WHERE week IN (SELECT week FROM other)", "nested"},
		{"SELECT COUNT(*) FROM (SELECT * FROM sales) s", "nested"},
		{"SELECT AVG(revenue) FROM sales WHERE week = price", "column-to-column"},
		{"SELECT week, COUNT(*) FROM sales GROUP BY region", "not in GROUP BY"},
		{"SELECT COUNT(*) FROM sales WHERE NOT week BETWEEN 1 AND 2", "NOT"},
	}
	for _, c := range cases {
		s := Check(parse(t, c.sql))
		if s.OK {
			t.Errorf("%q should be unsupported", c.sql)
			continue
		}
		found := false
		for _, r := range s.Reasons {
			if strings.Contains(r, c.reason) {
				found = true
			}
		}
		if !found {
			t.Errorf("%q: reasons %v lack %q", c.sql, s.Reasons, c.reason)
		}
	}
}

func TestCheckAggregateDenominator(t *testing.T) {
	// A non-aggregate query is unsupported AND not an aggregate query —
	// Table 3 excludes it from the denominator.
	s := Check(parse(t, "SELECT week FROM sales WHERE price > 2"))
	if s.OK || s.HasAggregate {
		t.Fatalf("plain scan misclassified: %+v", s)
	}
	// MIN/MAX queries count as aggregate queries but are unsupported —
	// exactly the "2 queries with min or max" in the paper's TPC-H count.
	s = Check(parse(t, "SELECT MIN(revenue) FROM sales"))
	if s.OK || !s.HasAggregate {
		t.Fatalf("MIN query misclassified: %+v", s)
	}
}

func TestBindRegionNumericRanges(t *testing.T) {
	tb := salesTable(t)
	stmt := parse(t, "SELECT AVG(revenue) FROM sales WHERE week > 2 AND week <= 7 AND price BETWEEN 1 AND 4")
	g, err := BindRegion(stmt.Where, tb)
	if err != nil {
		t.Fatal(err)
	}
	wcol, _ := tb.Schema().Lookup("week")
	r := g.NumRangeOf(wcol, tb)
	if r.Lo != 2 || !r.LoOpen || r.Hi != 7 || r.HiOpen {
		t.Fatalf("week range=%+v", r)
	}
	pcol, _ := tb.Schema().Lookup("price")
	pr := g.NumRangeOf(pcol, tb)
	if pr.Lo != 1 || pr.Hi != 4 || pr.LoOpen || pr.HiOpen {
		t.Fatalf("price range=%+v", pr)
	}
	// Unconstrained dimension defaults to the domain.
	if g.HasConstraint(pcol) == false {
		t.Fatal("price should be constrained")
	}
}

func TestBindRegionDomainSubstitution(t *testing.T) {
	tb := salesTable(t)
	g, err := BindRegion(nil, tb)
	if err != nil {
		t.Fatal(err)
	}
	wcol, _ := tb.Schema().Lookup("week")
	r := g.NumRangeOf(wcol, tb)
	if r.Lo != 0 || r.Hi != 9 {
		t.Fatalf("domain substitution wrong: %+v", r)
	}
}

func TestBindRegionCategorical(t *testing.T) {
	tb := salesTable(t)
	rcol, _ := tb.Schema().Lookup("region")

	stmt := parse(t, "SELECT COUNT(*) FROM sales WHERE region IN ('east', 'west')")
	g, err := BindRegion(stmt.Where, tb)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CatSetOf(rcol).Size(tb.DictOf(rcol).Size()); got != 2 {
		t.Fatalf("IN set size=%d", got)
	}

	stmt = parse(t, "SELECT COUNT(*) FROM sales WHERE region = 'east'")
	g, err = BindRegion(stmt.Where, tb)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CatSetOf(rcol).Size(4); got != 1 {
		t.Fatalf("eq set size=%d", got)
	}

	stmt = parse(t, "SELECT COUNT(*) FROM sales WHERE region <> 'east'")
	g, err = BindRegion(stmt.Where, tb)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CatSetOf(rcol).Size(4); got != 3 {
		t.Fatalf("neq set size=%d", got)
	}

	stmt = parse(t, "SELECT COUNT(*) FROM sales WHERE region NOT IN ('east', 'west')")
	g, err = BindRegion(stmt.Where, tb)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CatSetOf(rcol).Size(4); got != 2 {
		t.Fatalf("not-in set size=%d", got)
	}
}

func TestBindRegionUnknownValue(t *testing.T) {
	tb := salesTable(t)
	stmt := parse(t, "SELECT COUNT(*) FROM sales WHERE region = 'mars'")
	g, err := BindRegion(stmt.Where, tb)
	if err != nil {
		t.Fatal(err)
	}
	if !g.EmptyRegion() {
		t.Fatal("unknown categorical value should produce empty region")
	}
}

func TestBindRegionErrors(t *testing.T) {
	tb := salesTable(t)
	bad := []string{
		"SELECT COUNT(*) FROM sales WHERE week = 1 OR week = 2",
		"SELECT COUNT(*) FROM sales WHERE region > 'a'",
		"SELECT COUNT(*) FROM sales WHERE revenue > 5",  // measure in predicate
		"SELECT COUNT(*) FROM sales WHERE week <> 3",    // numeric <>
		"SELECT COUNT(*) FROM sales WHERE week IN (1)",  // IN on numeric
		"SELECT COUNT(*) FROM sales WHERE nosuch = 'x'", // unknown column
	}
	for _, sql := range bad {
		stmt := parse(t, sql)
		if _, err := BindRegion(stmt.Where, tb); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%q: err=%v, want ErrUnsupported", sql, err)
		}
	}
}

func TestRegionMatchesAgainstBruteForce(t *testing.T) {
	tb := salesTable(t)
	stmt := parse(t, "SELECT COUNT(*) FROM sales WHERE week >= 3 AND week < 8 AND region IN ('east','north')")
	g, err := BindRegion(stmt.Where, tb)
	if err != nil {
		t.Fatal(err)
	}
	wcol, _ := tb.Schema().Lookup("week")
	rcol, _ := tb.Schema().Lookup("region")
	for row := 0; row < tb.Rows(); row++ {
		w := tb.NumAt(row, wcol)
		rg := tb.StrAt(row, rcol)
		want := w >= 3 && w < 8 && (rg == "east" || rg == "north")
		if got := g.Matches(tb, row); got != want {
			t.Fatalf("row %d: match=%v want %v (week=%v region=%v)", row, got, want, w, rg)
		}
	}
}

func TestRegionVolumeAndKey(t *testing.T) {
	tb := salesTable(t)
	stmt := parse(t, "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 2 AND 6 AND price <= 5")
	g, err := BindRegion(stmt.Where, tb)
	if err != nil {
		t.Fatal(err)
	}
	// week: width 4; price: domain [0,9.9] clipped to [0,5] width 5.
	if v := g.Volume(tb); math.Abs(v-20) > 1e-9 {
		t.Fatalf("volume=%v", v)
	}
	key := g.Key(tb)
	if !strings.Contains(key, "week:[2,6]") || !strings.Contains(key, "price:[0,5]") {
		t.Fatalf("key=%q", key)
	}
	// Unconstrained region.
	g2, _ := BindRegion(nil, tb)
	if g2.Key(tb) != "|*" {
		t.Fatalf("empty key=%q", g2.Key(tb))
	}
}

func TestCatSetOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dict := 1 + r.Intn(20)
		mk := func() CatSet {
			if r.Intn(4) == 0 {
				return CatSet{}
			}
			var codes []int32
			for c := 0; c < dict; c++ {
				if r.Intn(2) == 0 {
					codes = append(codes, int32(c))
				}
			}
			if codes == nil {
				codes = []int32{}
			}
			return CatSet{Codes: codes}
		}
		a, b := mk(), mk()
		// Overlap is symmetric and bounded by both sizes.
		ab := a.OverlapCount(b, dict)
		ba := b.OverlapCount(a, dict)
		if ab != ba {
			return false
		}
		if ab > a.Size(dict) || ab > b.Size(dict) {
			return false
		}
		// Intersection size equals overlap count.
		inter := intersectCat(a, b)
		return inter.Size(dict) == ab
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeFigure3(t *testing.T) {
	// The paper's Figure 3: one query with AVG(A2), SUM(A3) grouped by A1
	// with two group values decomposes into 2 groups × aggregates.
	tb := salesTable(t)
	stmt := parse(t, "SELECT region, AVG(revenue), SUM(discount) FROM sales WHERE week > 2 GROUP BY region")
	rcol, _ := tb.Schema().Lookup("region")
	groups := [][]GroupValue{
		{{Col: rcol, Str: "east"}},
		{{Col: rcol, Str: "west"}},
	}
	decs, err := Decompose(stmt, tb, groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 2 {
		t.Fatalf("decompositions=%d", len(decs))
	}
	for _, d := range decs {
		// AVG(revenue) → 1 avg snippet; SUM(discount) → avg(discount)+freq.
		if len(d.Snippets) != 3 {
			t.Fatalf("snippets=%d want 3", len(d.Snippets))
		}
		if len(d.Aggregates) != 2 {
			t.Fatalf("aggregates=%d", len(d.Aggregates))
		}
		if d.Aggregates[0].Agg != sqlparse.AggAvg || d.Aggregates[0].Freq != -1 {
			t.Fatalf("agg0=%+v", d.Aggregates[0])
		}
		if d.Aggregates[1].Agg != sqlparse.AggSum || d.Aggregates[1].Freq < 0 || d.Aggregates[1].Avg < 0 {
			t.Fatalf("agg1=%+v", d.Aggregates[1])
		}
		// Group equality folded into region.
		snip := d.Snippets[0]
		if snip.Region.CatSetOf(rcol).Size(4) != 1 {
			t.Fatal("group constraint missing from region")
		}
	}
	// Distinct groups produce distinct snippet keys.
	if decs[0].Snippets[0].Key() == decs[1].Snippets[0].Key() {
		t.Fatal("group snippets share a key")
	}
}

func TestDecomposeNmaxBound(t *testing.T) {
	tb := salesTable(t)
	stmt := parse(t, "SELECT week, COUNT(*) FROM sales GROUP BY week")
	wcol, _ := tb.Schema().Lookup("week")
	var groups [][]GroupValue
	for i := 0; i < 50; i++ {
		groups = append(groups, []GroupValue{{Col: wcol, Num: float64(i)}})
	}
	decs, err := Decompose(stmt, tb, groups, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 10 {
		t.Fatalf("nmax not applied: %d", len(decs))
	}
}

func TestDecomposeSharedSnippets(t *testing.T) {
	// Two aggregates over the same measure share one snippet.
	tb := salesTable(t)
	stmt := parse(t, "SELECT AVG(revenue), SUM(revenue), COUNT(*) FROM sales")
	decs, err := Decompose(stmt, tb, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 1 {
		t.Fatalf("decs=%d", len(decs))
	}
	d := decs[0]
	// avg(revenue) + freq — SUM reuses both.
	if len(d.Snippets) != 2 {
		t.Fatalf("snippets=%d want 2", len(d.Snippets))
	}
	if d.Aggregates[0].Avg != d.Aggregates[1].Avg {
		t.Fatal("AVG snippet not shared")
	}
	if d.Aggregates[2].Freq != d.Aggregates[1].Freq {
		t.Fatal("FREQ snippet not shared")
	}
}

func TestCompileMeasureDerived(t *testing.T) {
	tb := salesTable(t)
	stmt := parse(t, "SELECT SUM(revenue * discount) FROM sales")
	fn, key, err := CompileMeasure(stmt.Items[0].Expr, tb)
	if err != nil {
		t.Fatal(err)
	}
	if key != "(revenue*discount)" {
		t.Fatalf("key=%q", key)
	}
	if got := fn(tb, 0); math.Abs(got-10) > 1e-9 { // 100 * 0.1
		t.Fatalf("derived measure=%v", got)
	}
}

func TestCompileMeasureErrors(t *testing.T) {
	tb := salesTable(t)
	for _, sql := range []string{
		"SELECT AVG(region) FROM sales", // categorical
		"SELECT AVG(nosuch) FROM sales", // unknown
	} {
		stmt := parse(t, sql)
		if _, _, err := CompileMeasure(stmt.Items[0].Expr, tb); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%q: err=%v", sql, err)
		}
	}
}

func TestComposeAggregate(t *testing.T) {
	avg := ScalarEstimate{Value: 10, StdErr: 1}
	freq := ScalarEstimate{Value: 0.5, StdErr: 0.05}
	const rows = 1000

	a, err := ComposeAggregate(sqlparse.AggAvg, avg, freq, rows)
	if err != nil || a != avg {
		t.Fatalf("AVG compose: %v %v", a, err)
	}

	c, err := ComposeAggregate(sqlparse.AggCount, avg, freq, rows)
	if err != nil || c.Value != 500 || c.StdErr != 50 {
		t.Fatalf("COUNT compose: %+v %v", c, err)
	}

	s, err := ComposeAggregate(sqlparse.AggSum, avg, freq, rows)
	if err != nil {
		t.Fatal(err)
	}
	if s.Value != 5000 {
		t.Fatalf("SUM value=%v", s.Value)
	}
	// Var = 500²·1 + 10²·50² = 250000 + 250000 = 500000.
	if math.Abs(s.StdErr-math.Sqrt(500000)) > 1e-9 {
		t.Fatalf("SUM stderr=%v", s.StdErr)
	}

	if _, err := ComposeAggregate(sqlparse.AggMin, avg, freq, rows); err == nil {
		t.Fatal("MIN composable?")
	}
}

func TestSnippetFuncAndKey(t *testing.T) {
	tb := salesTable(t)
	stmt := parse(t, "SELECT AVG(revenue) FROM sales WHERE week > 3")
	decs, err := Decompose(stmt, tb, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sn := decs[0].Snippets[0]
	if sn.Func().String() != "AVG(revenue)" {
		t.Fatalf("func=%v", sn.Func())
	}
	if !strings.HasPrefix(sn.Key(), "AVG(revenue)|week:") {
		t.Fatalf("key=%q", sn.Key())
	}
}
