package query

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/storage"
)

// randomTable builds a table with two numeric and two categorical dimension
// columns, sized to span multiple blocks with a partial tail.
func randomTable(rng *randx.Source, rows int) *storage.Table {
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "y", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "c", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "d", Kind: storage.Categorical, Role: storage.Dimension},
	})
	tb := storage.NewTable("r", schema)
	cats := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	// >64 distinct values in d exercise the mask's modular aliasing.
	for i := 0; i < rows; i++ {
		d := string(rune('A' + rng.Intn(26)))
		if rng.Bool(0.5) {
			d += string(rune('a' + rng.Intn(26)))
		}
		if err := tb.AppendRow([]storage.Value{
			storage.Num(rng.Uniform(-100, 100)),
			storage.Num(rng.Normal(0, 50)),
			storage.Str(cats[rng.PowerLawIndex(len(cats), 1.2)]),
			storage.Str(d),
		}); err != nil {
			panic(err)
		}
	}
	return tb
}

// randomRegion builds a region with random numeric ranges (random open
// flags, sometimes empty or degenerate) and random categorical sets.
func randomRegion(rng *randx.Source, tb *storage.Table) *Region {
	g := NewRegion(tb.Schema())
	if rng.Bool(0.8) {
		lo := rng.Uniform(-120, 120)
		hi := lo + rng.Uniform(-5, 80)
		g.ConstrainNum(0, NumRange{Lo: lo, Hi: hi, LoOpen: rng.Bool(0.3), HiOpen: rng.Bool(0.3)})
	}
	if rng.Bool(0.5) {
		lo := rng.Normal(0, 60)
		g.ConstrainNum(1, NumRange{Lo: lo, Hi: lo + rng.Uniform(0, 100)})
	}
	if rng.Bool(0.6) {
		size := rng.Intn(4)
		set := CatSet{Codes: []int32{}}
		dict := tb.DictOf(2)
		for k := 0; k <= size; k++ {
			if dict.Size() == 0 {
				break
			}
			set = intersectCatUnion(set, int32(rng.Intn(dict.Size())))
		}
		g.ConstrainCat(2, set)
	}
	if rng.Bool(0.4) {
		dict := tb.DictOf(3)
		set := CatSet{Codes: []int32{}}
		for k := 0; k < 12 && dict.Size() > 0; k++ {
			set = intersectCatUnion(set, int32(rng.Intn(dict.Size())))
		}
		g.ConstrainCat(3, set)
	}
	return g
}

// intersectCatUnion adds a code to a set, keeping it sorted and deduped.
func intersectCatUnion(s CatSet, code int32) CatSet {
	for i, c := range s.Codes {
		if c == code {
			return s
		}
		if c > code {
			out := append([]int32{}, s.Codes[:i]...)
			out = append(out, code)
			return CatSet{Codes: append(out, s.Codes[i:]...)}
		}
	}
	return CatSet{Codes: append(append([]int32{}, s.Codes...), code)}
}

// TestMatchBlockAgreesWithMatches is the vectorized-vs-row-at-a-time
// equivalence property: for randomized tables and regions, MatchBlock over
// every block must select exactly the rows Matches accepts, and PruneBlock's
// Empty/Full verdicts must be consistent with the row truth.
func TestMatchBlockAgreesWithMatches(t *testing.T) {
	rng := randx.New(1234)
	rows := storage.BlockSize*2 + 777
	if testing.Short() {
		rows = storage.BlockSize + 100
	}
	for trial := 0; trial < 25; trial++ {
		tb := randomTable(rng.Fork(int64(trial)), rows)
		for rtrial := 0; rtrial < 8; rtrial++ {
			g := randomRegion(rng.Fork(int64(1000+trial*100+rtrial)), tb)
			sel := make([]int32, 0, storage.BlockSize)
			for b := 0; b < tb.NumBlocks(); b++ {
				lo, hi := tb.BlockBounds(b)
				sel = g.MatchBlock(tb, lo, hi, sel)
				// Row-at-a-time truth for this block.
				var want []int32
				for r := lo; r < hi; r++ {
					if g.Matches(tb, r) {
						want = append(want, int32(r))
					}
				}
				if len(sel) != len(want) {
					t.Fatalf("trial %d.%d block %d: vectorized %d rows, row-at-a-time %d",
						trial, rtrial, b, len(sel), len(want))
				}
				for i := range want {
					if sel[i] != want[i] {
						t.Fatalf("trial %d.%d block %d: sel[%d]=%d want %d",
							trial, rtrial, b, i, sel[i], want[i])
					}
				}
				switch g.PruneBlock(tb, b) {
				case BlockEmpty:
					if len(want) != 0 {
						t.Fatalf("trial %d.%d block %d: pruned Empty but %d rows match",
							trial, rtrial, b, len(want))
					}
					if !g.PrunesBlock(tb, b) {
						t.Fatal("PrunesBlock disagrees with PruneBlock")
					}
				case BlockFull:
					if len(want) != hi-lo {
						t.Fatalf("trial %d.%d block %d: pruned Full but %d/%d rows match",
							trial, rtrial, b, len(want), hi-lo)
					}
				}
			}
		}
	}
}

// TestMatchBlockOpenBounds pins the open/closed boundary semantics: a value
// exactly on an open bound is excluded, on a closed bound included.
func TestMatchBlockOpenBounds(t *testing.T) {
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension},
	})
	tb := storage.NewTable("t", schema)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		if err := tb.AppendRow([]storage.Value{storage.Num(v)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		r    NumRange
		want int
	}{
		{NumRange{Lo: 2, Hi: 4}, 3},
		{NumRange{Lo: 2, Hi: 4, LoOpen: true}, 2},
		{NumRange{Lo: 2, Hi: 4, HiOpen: true}, 2},
		{NumRange{Lo: 2, Hi: 4, LoOpen: true, HiOpen: true}, 1},
		{NumRange{Lo: 3, Hi: 3}, 1},
		{NumRange{Lo: 3, Hi: 3, LoOpen: true}, 0},
	} {
		g := NewRegion(schema)
		g.ConstrainNum(0, tc.r)
		sel := g.MatchBlock(tb, 0, tb.Rows(), nil)
		if len(sel) != tc.want {
			t.Errorf("range %+v: matched %d want %d", tc.r, len(sel), tc.want)
		}
	}
}

// TestMatchBlockUnconstrained: an unconstrained region selects every row.
func TestMatchBlockUnconstrained(t *testing.T) {
	rng := randx.New(7)
	tb := randomTable(rng, 100)
	g := NewRegion(tb.Schema())
	sel := g.MatchBlock(tb, 10, 60, nil)
	if len(sel) != 50 || sel[0] != 10 || sel[49] != 59 {
		t.Fatalf("unconstrained sel len=%d", len(sel))
	}
	if got := g.PruneBlock(tb, 0); got != BlockFull {
		t.Fatalf("unconstrained prune=%v want BlockFull", got)
	}
}

func TestMeasureColumn(t *testing.T) {
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "v", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("t", schema)
	sn := &Snippet{Kind: AvgAgg, MeasureKey: "v", Table: tb}
	col, ok := sn.MeasureColumn()
	if !ok || col != 1 {
		t.Fatalf("MeasureColumn=(%d,%v)", col, ok)
	}
	complex := &Snippet{Kind: AvgAgg, MeasureKey: "(v*x)", Table: tb}
	if _, ok := complex.MeasureColumn(); ok {
		t.Fatal("complex measure must not resolve to a column")
	}
	freq := &Snippet{Kind: FreqAgg, Table: tb}
	if _, ok := freq.MeasureColumn(); ok {
		t.Fatal("FREQ has no measure column")
	}
}

// TestNaNRowsNeverMatch: NaN cells satisfy no range in either evaluation
// mode, and a NaN-seeded zone map must not claim BlockFull.
func TestNaNRowsNeverMatch(t *testing.T) {
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension},
	})
	tb := storage.NewTable("t", schema)
	// NaN first, so the block's zone map is seeded from it.
	vals := []float64{math.NaN(), 1, 2, 3, math.NaN(), 4}
	for _, v := range vals {
		if err := tb.AppendRow([]storage.Value{storage.Num(v)}); err != nil {
			t.Fatal(err)
		}
	}
	g := NewRegion(schema)
	g.ConstrainNum(0, NumRange{Lo: 0, Hi: 10})
	if d := g.PruneBlock(tb, 0); d != BlockPartial {
		t.Fatalf("NaN-seeded zone pruned %v, want BlockPartial", d)
	}
	sel := g.MatchBlock(tb, 0, tb.Rows(), nil)
	if len(sel) != 4 {
		t.Fatalf("matched %d rows, want 4 (NaN rows excluded)", len(sel))
	}
	for r := 0; r < tb.Rows(); r++ {
		want := !math.IsNaN(vals[r])
		if got := g.Matches(tb, r); got != want {
			t.Fatalf("row %d (v=%v): Matches=%v want %v", r, vals[r], got, want)
		}
	}
}

// TestPruneBlockEmptyRange: an empty numeric range prunes every block.
func TestPruneBlockEmptyRange(t *testing.T) {
	rng := randx.New(9)
	tb := randomTable(rng, 200)
	g := NewRegion(tb.Schema())
	g.ConstrainNum(0, NumRange{Lo: 5, Hi: 5, LoOpen: true})
	if !g.PrunesBlock(tb, 0) {
		t.Fatal("degenerate open range must prune")
	}
	if sel := g.MatchBlock(tb, 0, tb.Rows(), nil); len(sel) != 0 {
		t.Fatalf("empty range matched %d rows", len(sel))
	}
	g2 := NewRegion(tb.Schema())
	g2.ConstrainNum(0, NumRange{Lo: math.Inf(1), Hi: math.Inf(-1)})
	if !g2.PrunesBlock(tb, 0) {
		t.Fatal("inverted range must prune")
	}
}
