package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	s := New(1)
	a := s.Fork(1)
	b := s.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams look identical (%d collisions)", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(4)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("mean=%v", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Fatalf("variance=%v", variance)
	}
}

func TestLogNormalPositiveAndSkewed(t *testing.T) {
	s := New(5)
	var m, med []float64 = nil, nil
	for i := 0; i < 10000; i++ {
		v := s.LogNormal(0, 1)
		if v <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
		m = append(m, v)
		med = append(med, v)
	}
	mean := 0.0
	for _, v := range m {
		mean += v
	}
	mean /= float64(len(m))
	// Log-normal mean exp(1/2)≈1.65 exceeds median 1 (right skew).
	count := 0
	for _, v := range med {
		if v < mean {
			count++
		}
	}
	if frac := float64(count) / float64(len(med)); frac < 0.6 {
		t.Fatalf("distribution does not look right-skewed: frac below mean = %v", frac)
	}
}

func TestPowerLawIndexDistribution(t *testing.T) {
	s := New(6)
	counts := make([]int, 8)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.PowerLawIndex(8, 0.5)]++
	}
	// Each successive index should get roughly half the mass of the prior.
	for i := 1; i < 5; i++ {
		ratio := float64(counts[i]) / float64(counts[i-1])
		if ratio < 0.4 || ratio > 0.6 {
			t.Fatalf("decay ratio at %d = %v, want ~0.5 (counts=%v)", i, ratio, counts)
		}
	}
}

func TestPowerLawIndexInRange(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		n := 1 + s.Intn(50)
		idx := s.PowerLawIndex(n, 0.5)
		return idx >= 0 && idx < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeadTailIndex(t *testing.T) {
	s := New(7)
	const n, head = 20, 4
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.HeadTailIndex(n, head, 0.5)]++
	}
	// Head columns should have (roughly) equal counts.
	for i := 1; i < head; i++ {
		ratio := float64(counts[i]) / float64(counts[0])
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("head columns unequal: %v", counts[:head])
		}
	}
	// First tail column should have about half the mass of a head column.
	ratio := float64(counts[head]) / float64(counts[0])
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("tail start ratio = %v", ratio)
	}
	// Tail decays.
	if counts[head+1] >= counts[head] || counts[head+2] >= counts[head+1] {
		t.Fatalf("tail not decaying: %v", counts[head:head+4])
	}
}

func TestHeadTailIndexDegenerate(t *testing.T) {
	s := New(8)
	for i := 0; i < 100; i++ {
		idx := s.HeadTailIndex(5, 10, 0.5) // head >= n falls back to uniform
		if idx < 0 || idx >= 5 {
			t.Fatalf("index out of range: %d", idx)
		}
	}
}

// pearson computes the Pearson correlation of two equal-length samples.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	return sxy / math.Sqrt(sxx*syy)
}

func TestSmoothFieldPlantedLengthScale(t *testing.T) {
	// Ensemble estimator: across many independent fields, the correlation
	// between f(x0) and f(x0+d) must approximate the planted kernel
	// exp(-d²/ℓ²). (A single-field windowed estimator is biased downward at
	// large lags, so we sample the ensemble instead.)
	const ell = 10.0
	const reps = 4000
	dists := []float64{0.5, 5, 10, 20}
	xs := make([][]float64, len(dists))
	ys := make([][]float64, len(dists))
	master := New(2024)
	for rep := 0; rep < reps; rep++ {
		s := master.Fork(int64(rep))
		f := s.NewSmoothField(ell, 1.0, 0.0)
		x0 := s.Uniform(0, 50)
		v0 := f.At(x0)
		for i, d := range dists {
			xs[i] = append(xs[i], v0)
			ys[i] = append(ys[i], f.At(x0+d))
		}
	}
	for i, d := range dists {
		want := math.Exp(-d * d / (ell * ell))
		got := pearson(xs[i], ys[i])
		if math.Abs(got-want) > 0.06 {
			t.Errorf("corr at distance %v = %v, want %v", d, got, want)
		}
	}
}

func TestSmoothField1DBasics(t *testing.T) {
	s := New(33)
	vals := s.SmoothField1D(500, 100, 10, 1, 5)
	if len(vals) != 500 {
		t.Fatalf("len=%d", len(vals))
	}
	// Adjacent grid points (distance 0.2 << ℓ=10) must be close.
	for i := 1; i < len(vals); i++ {
		if math.Abs(vals[i]-vals[i-1]) > 0.5 {
			t.Fatalf("field jumps at %d: %v -> %v", i, vals[i-1], vals[i])
		}
	}
	// Mean should hover near the requested mean.
	m := 0.0
	for _, v := range vals {
		m += v
	}
	m /= float64(len(vals))
	if math.Abs(m-5) > 1.5 {
		t.Fatalf("field mean=%v want ~5", m)
	}
}

func TestSmoothFieldAtConsistency(t *testing.T) {
	s := New(9)
	f := s.NewSmoothField(5, 2, 1)
	// Same x must give same value; nearby x must give nearby values.
	a, b := f.At(3.0), f.At(3.0)
	if a != b {
		t.Fatal("field not deterministic")
	}
	if math.Abs(f.At(3.0)-f.At(3.0001)) > 0.01 {
		t.Fatal("field not smooth at small distances")
	}
}

func TestSmoothFieldVariance(t *testing.T) {
	const sigma2 = 4.0
	var sum, sumsq float64
	const samples = 2000
	const reps = 20
	n := 0
	for rep := 0; rep < reps; rep++ {
		s := New(int64(1000 + rep))
		f := s.NewSmoothField(1.0, sigma2, 0)
		for i := 0; i < samples; i++ {
			v := f.At(float64(i) * 0.37)
			sum += v
			sumsq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(variance-sigma2) > 0.8 {
		t.Fatalf("field variance = %v, want ~%v", variance, sigma2)
	}
}
