// Package randx provides the seeded random-variate generators used by the
// data and workload generators: uniform, Gaussian, log-normal and power-law
// (Zipf-like) draws, permutations, and one-dimensional smooth random fields
// with a planted squared-exponential correlation length. The fields are what
// lets the experiment harness generate datasets whose *true* inter-tuple
// correlation parameters are known (Figures 7 and 9 of the paper).
//
// All generators are deterministic given their seed, which keeps every
// experiment in this repository reproducible.
package randx

import (
	"math"
	"math/rand"
)

// Source is a seeded generator wrapping math/rand with the distribution
// helpers this repository needs. It is not safe for concurrent use; create
// one Source per goroutine.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded deterministically.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child source. Distinct ids yield streams that
// are independent for practical purposes, letting callers split one seed
// across tables, columns and query generators without correlation.
func (s *Source) Fork(id int64) *Source {
	const mix = int64(0x5851F42D4C957F2D) // Knuth/PCG multiplier, fits int64
	return New(s.r.Int63() ^ (id * mix))
}

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform draw in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + s.r.Float64()*(hi-lo)
}

// Intn returns a uniform integer in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Normal returns a Gaussian draw with the given mean and standard deviation.
func (s *Source) Normal(mean, std float64) float64 {
	return mean + std*s.r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)); the heavy-tailed "skewed"
// distribution used in Section 8.6's data-distribution sweep.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns an exponential draw with the given rate.
func (s *Source) Exponential(rate float64) float64 {
	return s.r.ExpFloat64() / rate
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle permutes the given slice length with the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// PowerLawIndex draws an index in [0,n) where index i has relative weight
// decay^i — the access pattern Section 8.6 uses for selection-predicate
// columns ("the access probability of the remaining columns decayed
// according to the power-law distribution", halving per column for
// decay=0.5).
func (s *Source) PowerLawIndex(n int, decay float64) int {
	if n <= 0 {
		panic("randx: PowerLawIndex with n<=0")
	}
	if decay <= 0 || decay >= 1 {
		return s.r.Intn(n)
	}
	// CDF of the truncated geometric distribution.
	total := (1 - math.Pow(decay, float64(n))) / (1 - decay)
	u := s.r.Float64() * total
	cum := 0.0
	w := 1.0
	for i := 0; i < n; i++ {
		cum += w
		if u < cum {
			return i
		}
		w *= decay
	}
	return n - 1
}

// HeadTailIndex models Section 8.6's "frequently accessed columns" pattern:
// the first head columns share uniform probability mass headMass in total,
// and the remaining columns receive geometrically decaying probability.
func (s *Source) HeadTailIndex(n, head int, decay float64) int {
	if head >= n {
		return s.r.Intn(n)
	}
	// The head columns have equal weight 1; tail column i (0-based within
	// the tail) has weight decay^(i+1).
	tailTotal := decay * (1 - math.Pow(decay, float64(n-head))) / (1 - decay)
	total := float64(head) + tailTotal
	u := s.r.Float64() * total
	if u < float64(head) {
		return int(u)
	}
	u -= float64(head)
	w := decay
	for i := head; i < n; i++ {
		if u < w {
			return i
		}
		u -= w
		w *= decay
	}
	return n - 1
}

// SmoothField1D samples n values of a one-dimensional random field over the
// domain [0, domain) whose correlation structure matches a squared-
// exponential kernel with length-scale ell and marginal variance sigma2,
// around the given mean. Sampling an exact GP is O(n³); instead we
// superpose random Fourier features, which converges to the same kernel
// (Bochner's theorem) and is O(n·features). The result is the "true data"
// with a *known planted correlation parameter* used by the parameter-
// learning and model-validation experiments.
func (s *Source) SmoothField1D(n int, domain, ell, sigma2, mean float64) []float64 {
	const features = 128
	// Squared-exponential spectral density: frequencies are Gaussian with
	// std 1/(ell·√2) — note the paper's kernel exp(-d²/ℓ²) corresponds to
	// a GP kernel with "lengthscale" ℓ/√2 in the ML convention.
	freqStd := math.Sqrt2 / ell
	amp := math.Sqrt(2 * sigma2 / float64(features))
	type feat struct{ w, phase float64 }
	fs := make([]feat, features)
	for i := range fs {
		fs[i] = feat{w: s.r.NormFloat64() * freqStd, phase: s.Uniform(0, 2*math.Pi)}
	}
	out := make([]float64, n)
	for i := range out {
		x := domain * float64(i) / float64(n)
		v := 0.0
		for _, f := range fs {
			v += math.Cos(f.w*x + f.phase)
		}
		out[i] = mean + amp*v
	}
	return out
}

// SmoothFieldAt evaluates a reusable random-Fourier-feature field at
// arbitrary points, for multi-column datasets that need consistent values.
type SmoothFieldAt struct {
	ws, phases []float64
	amp, mean  float64
}

// NewSmoothField constructs a field function with planted length-scale ell
// (paper kernel convention exp(-d²/ℓ²)) and variance sigma2 around mean.
func (s *Source) NewSmoothField(ell, sigma2, mean float64) *SmoothFieldAt {
	const features = 128
	f := &SmoothFieldAt{
		ws:     make([]float64, features),
		phases: make([]float64, features),
		amp:    math.Sqrt(2 * sigma2 / float64(features)),
		mean:   mean,
	}
	freqStd := math.Sqrt2 / ell
	for i := range f.ws {
		f.ws[i] = s.r.NormFloat64() * freqStd
		f.phases[i] = s.Uniform(0, 2*math.Pi)
	}
	return f
}

// At evaluates the field at x.
func (f *SmoothFieldAt) At(x float64) float64 {
	v := 0.0
	for i, w := range f.ws {
		v += math.Cos(w*x + f.phases[i])
	}
	return f.mean + f.amp*v
}
