package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/storage"
)

// truncFixture serves a relation whose cat column has six distinct values
// under a system configured with the given Nmax group cap.
func truncFixture(t *testing.T, nmax int) *httptest.Server {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "cat", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("sales", schema)
	rng := randx.New(5)
	for i := 0; i < 4000; i++ {
		w := rng.Uniform(0, 52)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(w),
			storage.Str(fmt.Sprintf("c%d", rng.Intn(6))),
			storage.Num(50 + 2*w + rng.Normal(0, 3)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sample, err := aqp.BuildSample(tb, 0.5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), core.Config{Nmax: nmax})
	ts := httptest.NewServer(New(sys, Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestQueryGroupsTruncated: the Nmax cap must surface as groups_truncated in
// the /query response rather than silently shortening rows.
func TestQueryGroupsTruncated(t *testing.T) {
	cases := []struct {
		name      string
		nmax      int
		sql       string
		wantRows  int
		wantTrunc bool
	}{
		{"over cap", 2, "SELECT cat, COUNT(*) FROM sales GROUP BY cat", 2, true},
		{"at cap", 6, "SELECT cat, COUNT(*) FROM sales GROUP BY cat", 6, false},
		{"filtered over cap", 3, "SELECT cat, AVG(revenue) FROM sales WHERE week < 26 GROUP BY cat", 3, true},
		{"ungrouped", 2, "SELECT AVG(revenue) FROM sales", 1, false},
		{"default cap", 0, "SELECT cat, SUM(revenue) FROM sales GROUP BY cat", 6, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := truncFixture(t, tc.nmax)
			var resp QueryResponse
			if code := post(t, ts.URL+"/query", QueryRequest{SQL: tc.sql}, &resp); code != http.StatusOK {
				t.Fatalf("status %d", code)
			}
			if !resp.Supported {
				t.Fatalf("unsupported: %v", resp.Reasons)
			}
			if len(resp.Rows) != tc.wantRows {
				t.Fatalf("rows: got %d, want %d", len(resp.Rows), tc.wantRows)
			}
			if resp.GroupsTruncated != tc.wantTrunc {
				t.Fatalf("groups_truncated: got %v, want %v", resp.GroupsTruncated, tc.wantTrunc)
			}
		})
	}
}
