package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
)

// POST /subscribe — continuous queries. A subscriber registers a SQL
// statement once and holds the connection open; the server pushes one
// NDJSON StreamChunk whenever an append, sample rebuild or training pass
// moves the answer past the subscriber's thresholds (plus an immediate
// initial chunk with the current state, push_reason "subscribe"). Chunks
// have the same shape as /query/stream chunks — estimate/ci/sample_gen/seq
// — with push_reason set; every chunk's answer replays bit-identically via
// ViewAtGen + ExecuteView at its pinned (sample_gen, base_rows,
// sample_rows) provenance. N subscribers on the same SQL share ONE
// incremental scan per notify batch (plan dedup in core).
//
// Subscriptions do not occupy worker slots: they are idle waiters, capped
// separately by Config.MaxSubscriptions, so open dashboards never starve
// admission or hold the auto-rebuild quiet gate open. A slow consumer's
// queue coalesces to the latest update; it never blocks the hub or other
// subscribers. A draining server closes every subscription with a final
// chunk carrying stop_reason "drain".

// SubscribeRequest registers one standing query.
type SubscribeRequest struct {
	SQL     string `json:"sql"`
	Session string `json:"session,omitempty"`
	// DeltaCI suppresses pushes until some cell's 95% half-width moved by
	// more than this absolute amount since the last push; DeltaRel until
	// some estimate moved by more than this fraction of its last pushed
	// magnitude. Both zero: every change pushes.
	DeltaCI  float64 `json:"delta_ci,omitempty"`
	DeltaRel float64 `json:"delta_rel,omitempty"`
	// Queue bounds the subscriber's update queue (default 8); a full queue
	// coalesces to the latest update.
	Queue int `json:"queue,omitempty"`
	// DebounceMS suppresses pushes for this many milliseconds after each
	// delivered one (measured on the system clock).
	DebounceMS int64 `json:"debounce_ms,omitempty"`
}

func (req *SubscribeRequest) validate() error {
	if req.SQL == "" {
		return fmt.Errorf("missing sql")
	}
	if req.DeltaCI < 0 {
		return fmt.Errorf("delta_ci %v is negative", req.DeltaCI)
	}
	if req.DeltaRel < 0 {
		return fmt.Errorf("delta_rel %v is negative", req.DeltaRel)
	}
	if req.Queue < 0 {
		return fmt.Errorf("queue %d is negative", req.Queue)
	}
	if req.DebounceMS < 0 {
		return fmt.Errorf("debounce_ms %d is negative", req.DebounceMS)
	}
	return nil
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := req.validate(); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, r, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	if s.draining.Load() {
		s.shed(w, r, codeDraining, fmt.Errorf("server draining: not accepting new subscriptions"))
		return
	}
	if s.subscribers.Add(1) > int64(s.cfg.MaxSubscriptions) {
		s.subscribers.Add(-1)
		s.shed(w, r, codeSaturated, fmt.Errorf("subscription cap reached: %d open", s.cfg.MaxSubscriptions))
		return
	}
	defer s.subscribers.Add(-1)
	// Registered with the drain WaitGroup (not the worker pool) so Drain
	// waits for the terminal stop_reason chunk to flush before returning.
	s.handlers.Add(1)
	defer s.handlers.Done()

	sess := s.sessions.get(req.Session, s.now())
	sess.touch(s.now())
	sess.queries.Add(1)
	noteSession(r, sess.ID)

	sub, err := s.sys.Subscribe(req.SQL, core.SubscribeOptions{
		DeltaCI:         req.DeltaCI,
		DeltaRel:        req.DeltaRel,
		Queue:           req.Queue,
		MinPushInterval: time.Duration(req.DebounceMS) * time.Millisecond,
	})
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	defer sub.Close()
	if s.draining.Load() {
		// BeginDrain raced our registration: its CloseSubscriptions pass may
		// have run before Subscribe landed, so close out explicitly and shed
		// before any chunk is written.
		sub.Close()
		s.shed(w, r, codeDraining, fmt.Errorf("server draining: not accepting new subscriptions"))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		upd, ok := sub.Next(ctx)
		if !ok {
			if ctx.Err() != nil {
				return // client disconnected; nothing left to tell it
			}
			// Subscription closed server-side (drain): terminal chunk so the
			// client can tell an orderly close from a dropped connection.
			c := StreamChunk{Session: sess.ID, Supported: true, StopReason: sub.CloseReason()}
			if enc.Encode(c) == nil {
				flusher.Flush()
			}
			return
		}
		if enc.Encode(s.subscribeChunk(sess.ID, upd)) != nil {
			return
		}
		flusher.Flush()
	}
}

// subscribeChunk converts one push into its wire form: a stream chunk at
// the full sample prefix, with seq and push_reason from the subscription.
func (s *Server) subscribeChunk(session string, upd core.PushUpdate) StreamChunk {
	res := upd.Result
	c := s.chunkFrom(session, res, core.Progress{
		Seq: upd.Seq, Rows: res.SampleRows, SampleRows: res.SampleRows,
	})
	c.PushReason = upd.Reason
	return c
}
