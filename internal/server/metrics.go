package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/aqp"
	"repro/internal/obs"
)

// Serving-layer metrics. The registry is shared with the binary (which
// also wires the query-stage histogram into core via obs.NewQueryStages on
// the same registry), and registration is get-or-create, so any number of
// layers can name the same family without conflict. Scrape-time collectors
// (GaugeFunc / CounterFuncVec) read state the server already tracks with
// atomics — sessions, pending rows, retention, per-shard synopsis counters
// — so a scrape never takes a lock a query path cares about.

type serverMetrics struct {
	reg *obs.Registry

	reqLatency *obs.HistogramVec // by endpoint
	requests   *obs.CounterVec   // by endpoint, status
	inFlight   *obs.Gauge        // instrumented requests currently executing
	shed       *obs.Counter      // admission-control 503s

	streamLag     *obs.Histogram // seconds between consecutive chunks of a stream
	activeStreams *obs.Gauge
	resumes       *obs.Counter // cursor resumptions attempted
	behindHorizon *obs.Counter // resume 410s (cursor generation evicted)

	rebuildDur *obs.Histogram // sample rebuild duration (manual + auto)

	notifyFanout *obs.Histogram // one notify batch's shared-scan + fan-out latency
}

func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		reqLatency: reg.HistogramVec("verdict_http_request_duration_seconds",
			"HTTP request latency by endpoint.", nil, "endpoint"),
		requests: reg.CounterVec("verdict_http_requests_total",
			"HTTP requests by endpoint and status.", "endpoint", "status"),
		inFlight: reg.Gauge("verdict_http_in_flight",
			"Instrumented HTTP requests currently executing."),
		shed: reg.Counter("verdict_http_shed_total",
			"Requests shed with 503 by admission control (saturated, draining or abandoned in queue)."),
		streamLag: reg.Histogram("verdict_stream_increment_lag_seconds",
			"Time between consecutive chunks of one progressive stream.", nil),
		activeStreams: reg.Gauge("verdict_streams_active",
			"Progressive streams currently emitting."),
		resumes: reg.Counter("verdict_stream_resumes_total",
			"Progressive stream cursor resumptions attempted."),
		behindHorizon: reg.Counter("verdict_stream_behind_horizon_total",
			"Stream resumes rejected with 410 because the cursor generation fell behind the replay horizon."),
		rebuildDur: reg.Histogram("verdict_rebuild_duration_seconds",
			"Sample rebuild duration (manual /rebuild and auto-rebuild).", nil),
		notifyFanout: reg.Histogram("verdict_notify_fanout_seconds",
			"Per notify batch: one shared incremental scan per standing plan plus threshold-gated pushes to every subscriber.", nil),
	}
	// The fan-out histogram is fed by core's notify hook: one observation
	// per append/rebuild/train batch that had standing plans to refresh.
	s.sys.SetNotifyHook(func(_ string, d time.Duration) {
		m.notifyFanout.Observe(d.Seconds())
	})

	reg.GaugeFunc("verdict_sessions",
		"Live sessions in the registry.",
		func() float64 { return float64(s.sessions.len()) })
	reg.GaugeFunc("verdict_pending_rows",
		"Rows appended since the last sample rebuild.",
		func() float64 { return float64(s.pendingRows.Load()) })
	reg.GaugeFunc("verdict_retained_generations",
		"Retired sample generations held for replay.",
		func() float64 { return float64(s.sys.Engine().RetainedGens()) })
	reg.GaugeFunc("verdict_replay_horizon_age_generations",
		"Live sample generation minus the replay horizon: how far back a stream can resume.",
		func() float64 {
			eng := s.sys.Engine()
			return float64(eng.Sample().Gen - eng.ReplayHorizon())
		})
	reg.GaugeFunc("verdict_synopsis_snippets",
		"Snippets currently held in the synopsis.",
		func() float64 { return float64(s.sys.Verdict().SnippetCount()) })
	reg.GaugeFunc("verdict_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("verdict_subscriptions_active",
		"Standing /subscribe streams currently open.",
		func() float64 { return float64(s.sys.ActiveSubscriptions()) })
	reg.CounterFunc("verdict_notify_pushes_total",
		"Updates pushed to standing subscribers (threshold passed).",
		func() float64 { return float64(s.sys.StatsSnapshot().NotifyPushes) })
	reg.CounterFunc("verdict_notify_coalesced_total",
		"Pushes coalesced into a full subscriber queue (stalled consumer saw only the latest update).",
		func() float64 { return float64(s.sys.StatsSnapshot().NotifyCoalesced) })
	reg.CounterFunc("verdict_notify_scans_total",
		"Incremental shared scans run for standing plans (one per unique plan per notify batch, not one per subscriber).",
		func() float64 { return float64(s.sys.StatsSnapshot().NotifyScans) })

	// Per-partition sample gauges, read off the live sample's partition
	// index at scrape time; the label set follows the layout (empty for a
	// flat sample, resized by a /rebuild that changes the partition count).
	partLabels := []string{"partition"}
	reg.GaugeFuncVec("verdict_sample_partition_rows",
		"Rows per serving partition of the stratified sample layout (tail excluded).", partLabels,
		func() []obs.Sample {
			return partitionSamples(s, func(st aqp.PartitionStat) float64 { return float64(st.Rows) })
		})
	reg.GaugeFuncVec("verdict_sample_partition_zone_selectivity",
		"Mean stratum-column zone-map width relative to the column domain, per partition (near 0 = selective predicates prune almost every block).", partLabels,
		func() []obs.Sample {
			return partitionSamples(s, func(st aqp.PartitionStat) float64 { return st.ZoneSelectivity })
		})
	reg.GaugeFunc("verdict_sample_partitions",
		"Partition count of the sample layout (0 = flat unpartitioned sample).",
		func() float64 { return float64(len(s.sys.Engine().PartitionStats())) })

	// Per-shard synopsis write counters, read straight off the shards'
	// atomics at scrape time. Caveat: /load swaps the Verdict, restarting
	// these from zero — a scrape-side reset, like any process restart.
	shardLabels := []string{"shard"}
	reg.CounterFuncVec("verdict_synopsis_shard_records_total",
		"Snippets recorded into the synopsis, by shard.", shardLabels,
		func() []obs.Sample { return shardSamples(s, func(c int64, _ int64) int64 { return c }) })
	reg.CounterFuncVec("verdict_synopsis_shard_trains_total",
		"Model train passes run, by shard.", shardLabels,
		func() []obs.Sample { return shardSamples(s, func(_ int64, t int64) int64 { return t }) })
	return m
}

func partitionSamples(s *Server, pick func(aqp.PartitionStat) float64) []obs.Sample {
	stats := s.sys.Engine().PartitionStats()
	out := make([]obs.Sample, len(stats))
	for i, st := range stats {
		out[i] = obs.Sample{Labels: []string{strconv.Itoa(st.Partition)}, Value: pick(st)}
	}
	return out
}

func shardSamples(s *Server, pick func(records, trains int64) int64) []obs.Sample {
	counters := s.sys.Verdict().ShardCounters()
	out := make([]obs.Sample, len(counters))
	for i, c := range counters {
		out[i] = obs.Sample{Labels: []string{strconv.Itoa(i)}, Value: float64(pick(c.Records, c.Trains))}
	}
	return out
}

// observeRebuild records one completed sample rebuild's duration.
func (s *Server) observeRebuild(start time.Time) {
	if s.metrics != nil {
		s.metrics.rebuildDur.Observe(time.Since(start).Seconds())
	}
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	if s.metrics == nil {
		writeErr(w, r, http.StatusNotFound, fmt.Errorf("metrics not configured: start the server with a registry"))
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	_ = s.metrics.reg.WritePrometheus(w)
}

// MetricsSummary is the /stats digest of the serving-layer metrics — the
// headline numbers an operator wants without scraping /metrics.
type MetricsSummary struct {
	// TotalRequests counts instrumented HTTP requests completed (all
	// endpoints, all statuses).
	TotalRequests uint64 `json:"total_requests"`
	// Request latency quantiles, estimated from the histogram the same way
	// histogram_quantile does (linear interpolation within a bucket).
	RequestP50MS float64 `json:"request_p50_ms"`
	RequestP95MS float64 `json:"request_p95_ms"`
	RequestP99MS float64 `json:"request_p99_ms"`
	// Shed counts admission-control 503s.
	Shed uint64 `json:"shed"`
	// UptimeSeconds is seconds since the server started.
	UptimeSeconds float64 `json:"uptime_s"`
}

// metricsSummary builds the /stats digest; nil when no registry is wired.
func (s *Server) metricsSummary() *MetricsSummary {
	if s.metrics == nil {
		return nil
	}
	snap := s.metrics.reqLatency.MergedSnapshot()
	toMS := func(q float64) float64 { return snap.Quantile(q) * 1000 }
	return &MetricsSummary{
		TotalRequests: snap.Count,
		RequestP50MS:  toMS(0.50),
		RequestP95MS:  toMS(0.95),
		RequestP99MS:  toMS(0.99),
		Shed:          s.metrics.shed.Value(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
}
