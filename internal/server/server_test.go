package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/storage"
)

// fixture builds a server over a sales-like relation (revenue ≈ 50 + 2·week
// + region offset) plus a generator for streaming batches.
func fixture(t *testing.T, rows int, cfg Config) (*Server, *core.System, *httptest.Server) {
	t.Helper()
	tb := salesTable(t, rows, 42)
	sample, err := aqp.BuildSample(tb, 0.2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), core.Config{})
	if cfg.Generate == nil {
		cfg.Generate = func(n int, seed int64) (*storage.Table, error) {
			return salesTable(t, n, seed), nil
		}
	}
	srv := New(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, sys, ts
}

func salesTable(t *testing.T, rows int, seed int64) *storage.Table {
	t.Helper()
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "region", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "revenue", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("sales", schema)
	rng := randx.New(seed)
	regions := []string{"east", "west"}
	offsets := map[string]float64{"east": 0, "west": 10}
	for i := 0; i < rows; i++ {
		w := rng.Uniform(0, 52)
		rg := regions[rng.Intn(2)]
		rev := 50 + 2*w + offsets[rg] + rng.Normal(0, 3)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(w), storage.Str(rg), storage.Num(rev),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func post(t *testing.T, url string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode == http.StatusOK && resp != nil {
		if err := json.Unmarshal(data, resp); err != nil {
			t.Fatalf("decoding %s: %v (%s)", url, err, data)
		}
	}
	return r.StatusCode
}

func TestServerQueryAppendStats(t *testing.T) {
	_, _, ts := fixture(t, 20000, Config{})

	// Query through the pipeline.
	var qr QueryResponse
	req := QueryRequest{SQL: "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 20", Session: "alice"}
	if code := post(t, ts.URL+"/query", req, &qr); code != 200 {
		t.Fatalf("query status %d", code)
	}
	if !qr.Supported || len(qr.Rows) != 1 || len(qr.Rows[0].Cells) != 1 {
		t.Fatalf("query response %+v", qr)
	}
	cell := qr.Rows[0].Cells[0]
	if cell.Value < 70 || cell.Value > 100 {
		t.Fatalf("AVG(revenue| week 10..20) = %v, expected ≈85", cell.Value)
	}
	if qr.BaseRows != 20000 {
		t.Fatalf("base_rows=%d", qr.BaseRows)
	}

	// Append explicit rows in schema order.
	var ar AppendResponse
	appendReq := AppendRequest{Session: "alice", Rows: [][]any{
		{25.0, "east", 100.0},
		{26.0, "west", 112.0},
	}}
	if code := post(t, ts.URL+"/append", appendReq, &ar); code != 200 {
		t.Fatalf("append status %d", code)
	}
	if ar.Appended != 2 || ar.BaseRows != 20002 {
		t.Fatalf("append response %+v", ar)
	}

	// Append generated rows.
	if code := post(t, ts.URL+"/append", AppendRequest{Generate: 3000}, &ar); code != 200 {
		t.Fatalf("generate status %d", code)
	}
	if ar.Appended != 3000 || ar.BaseRows != 23002 || ar.Sampled == 0 {
		t.Fatalf("generate response %+v", ar)
	}

	// A fresh query sees the new cardinality.
	if code := post(t, ts.URL+"/query", req, &qr); code != 200 {
		t.Fatalf("query status %d", code)
	}
	if qr.BaseRows != 23002 {
		t.Fatalf("post-append base_rows=%d", qr.BaseRows)
	}

	// Train and read stats.
	var tr TrainResponse
	if code := post(t, ts.URL+"/train", struct{}{}, &tr); code != 200 {
		t.Fatalf("train status %d", code)
	}
	if tr.Snippets == 0 {
		t.Fatal("no snippets after queries")
	}
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Table.BaseRows != 23002 || st.System.Total != 2 || st.System.Appends != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Server.Sessions < 1 || len(st.Sessions) < 1 {
		t.Fatalf("sessions missing: %+v", st.Server)
	}
}

func TestServerErrorPaths(t *testing.T) {
	_, _, ts := fixture(t, 2000, Config{})

	if code := post(t, ts.URL+"/query", QueryRequest{SQL: ""}, nil); code != 400 {
		t.Fatalf("empty sql: %d", code)
	}
	if code := post(t, ts.URL+"/query", QueryRequest{SQL: "SELECT FROM FROM"}, nil); code != 400 {
		t.Fatalf("parse error: %d", code)
	}
	if code := post(t, ts.URL+"/append", AppendRequest{}, nil); code != 400 {
		t.Fatalf("empty append: %d", code)
	}
	if code := post(t, ts.URL+"/append", AppendRequest{Rows: [][]any{{1.0}}}, nil); code != 400 {
		t.Fatalf("short row: %d", code)
	}
	if code := post(t, ts.URL+"/append", AppendRequest{Rows: [][]any{{"x", "east", 1.0}}}, nil); code != 400 {
		t.Fatalf("kind mismatch: %d", code)
	}
	// GET on a POST endpoint.
	r, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d", r.StatusCode)
	}
}

func TestServerSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, _, ts := fixture(t, 5000, Config{SnapshotDir: dir})

	req := QueryRequest{SQL: "SELECT AVG(revenue) FROM sales WHERE week < 26"}
	if code := post(t, ts.URL+"/query", req, nil); code != 200 {
		t.Fatal("seed query failed")
	}
	var sr SnapshotResponse
	if code := post(t, ts.URL+"/save", PathRequest{Path: "synopsis.json"}, &sr); code != 200 {
		t.Fatal("save failed")
	}
	if sr.Snippets == 0 {
		t.Fatal("saved empty synopsis")
	}
	if _, err := os.Stat(filepath.Join(dir, "synopsis.json")); err != nil {
		t.Fatalf("snapshot not in SnapshotDir: %v", err)
	}
	var lr SnapshotResponse
	if code := post(t, ts.URL+"/load", PathRequest{Path: "synopsis.json"}, &lr); code != 200 {
		t.Fatal("load failed")
	}
	if lr.Snippets != sr.Snippets {
		t.Fatalf("loaded %d snippets, saved %d", lr.Snippets, sr.Snippets)
	}
	if code := post(t, ts.URL+"/load", PathRequest{Path: "missing.json"}, nil); code != 400 {
		t.Fatal("missing snapshot accepted")
	}
	// Path traversal and absolute paths are rejected.
	for _, bad := range []string{"../escape.json", "/etc/passwd", "a/b.json", ".."} {
		if code := post(t, ts.URL+"/save", PathRequest{Path: bad}, nil); code != 400 {
			t.Fatalf("save accepted %q (status %d)", bad, code)
		}
	}
}

func TestServerSnapshotsDisabledWithoutDir(t *testing.T) {
	_, _, ts := fixture(t, 2000, Config{})
	if code := post(t, ts.URL+"/save", PathRequest{Path: "x.json"}, nil); code != 400 {
		t.Fatal("save worked without SnapshotDir")
	}
	if code := post(t, ts.URL+"/load", PathRequest{Path: "x.json"}, nil); code != 400 {
		t.Fatal("load worked without SnapshotDir")
	}
}

// The HTTP-layer acceptance storm: 8 concurrent sessions issue queries
// while another client streams appends; afterwards every served answer is
// replayed serially against its pinned snapshot prefix and must match the
// raw estimates float-for-float (JSON round-trips float64 exactly).
func TestServerConcurrentSessionsWithAppends(t *testing.T) {
	_, sys, ts := fixture(t, 20000, Config{MaxInFlight: 32})

	queries := []string{
		"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 5 AND 15",
		"SELECT COUNT(*) FROM sales WHERE region = 'east'",
		"SELECT region, AVG(revenue) FROM sales GROUP BY region",
		"SELECT SUM(revenue) FROM sales WHERE week >= 20 AND week <= 40",
	}
	type served struct {
		sql  string
		resp QueryResponse
	}
	const sessions = 8
	const perSession = 10
	results := make([][]served, sessions)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var appenderWG sync.WaitGroup
	appenderWG.Add(1)
	go func() {
		defer appenderWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var ar AppendResponse
			if code := post(t, ts.URL+"/append", AppendRequest{Session: "appender", Generate: 300, Seed: int64(5000 + i)}, &ar); code != 200 {
				t.Errorf("append status %d", code)
				return
			}
		}
	}()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			session := fmt.Sprintf("sess-%d", s)
			for k := 0; k < perSession; k++ {
				sql := queries[(s+k)%len(queries)]
				var qr QueryResponse
				if code := post(t, ts.URL+"/query", QueryRequest{SQL: sql, Session: session}, &qr); code != 200 {
					t.Errorf("session %d query status %d", s, code)
					return
				}
				results[s] = append(results[s], served{sql: sql, resp: qr})
			}
		}(s)
	}
	wg.Wait()
	close(stop)
	appenderWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Serial replay of every served answer against its snapshot epoch.
	engine := sys.Engine()
	prefixes := map[int]bool{}
	for s := range results {
		for _, sv := range results[s] {
			view := engine.ViewAt(sv.resp.BaseRows, sv.resp.SampleRows)
			rep, err := sys.ExecuteView(view, sv.sql)
			if err != nil {
				t.Fatal(err)
			}
			var got []float64
			for _, row := range rep.Rows {
				for _, c := range row.Cells {
					got = append(got, c.Raw.Value, c.Raw.StdErr)
				}
			}
			var want []float64
			for _, row := range sv.resp.Rows {
				for _, c := range row.Cells {
					want = append(want, c.RawValue, c.RawStdErr)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%q at base=%d: replay shape %d vs served %d", sv.sql, sv.resp.BaseRows, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%q at base=%d sample=%d: cell %d served %v, replay %v",
						sv.sql, sv.resp.BaseRows, sv.resp.SampleRows, i, want[i], got[i])
				}
			}
			prefixes[sv.resp.BaseRows] = true
		}
	}
	if len(prefixes) < 2 {
		t.Fatalf("all %d queries served from one epoch; appends never interleaved", sessions*perSession)
	}
}

// Admission control: with one worker slot held, requests must shed with 503
// within the queue wait instead of piling up.
func TestServerAdmissionControl(t *testing.T) {
	srv, _, ts := fixture(t, 2000, Config{MaxInFlight: 1, QueueWait: 20 * time.Millisecond})

	srv.slots <- struct{}{} // occupy the only worker slot
	code := post(t, ts.URL+"/query", QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server returned %d, want 503", code)
	}
	if srv.rejected.Load() != 1 {
		t.Fatalf("rejected=%d", srv.rejected.Load())
	}
	<-srv.slots // release
	if code := post(t, ts.URL+"/query", QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}, nil); code != 200 {
		t.Fatalf("freed server returned %d", code)
	}
}

func TestServerRebuildEndpointAndShardStats(t *testing.T) {
	_, sys, ts := fixture(t, 20000, Config{})

	// Warm the synopsis with a couple of functions so shard stats have
	// something to show.
	for _, sql := range []string{
		"SELECT AVG(revenue) FROM sales WHERE week < 20",
		"SELECT COUNT(*) FROM sales WHERE week > 30",
	} {
		if code := post(t, ts.URL+"/query", QueryRequest{SQL: sql}, nil); code != 200 {
			t.Fatalf("query status %d", code)
		}
	}
	// Stream an append so the sample has a tail to re-shuffle.
	if code := post(t, ts.URL+"/append", AppendRequest{Generate: 3000}, nil); code != 200 {
		t.Fatalf("append status %d", code)
	}

	// /rebuild must be POST-only and bump the sample generation.
	if r, err := http.Get(ts.URL + "/rebuild"); err != nil || r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rebuild: %v %v", err, r.StatusCode)
	}
	var rb RebuildResponse
	if code := post(t, ts.URL+"/rebuild", struct{}{}, &rb); code != 200 {
		t.Fatalf("rebuild status %d", code)
	}
	if rb.Generation != 1 || rb.SampleRows == 0 {
		t.Fatalf("rebuild response %+v", rb)
	}
	if got := sys.Engine().SampleGen(); got != 1 {
		t.Fatalf("engine generation %d after /rebuild", got)
	}

	// /stats reflects the sharded synopsis and the rebuild.
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Synopsis.NumShards != core.DefaultNumShards || len(st.Synopsis.Shards) != st.Synopsis.NumShards {
		t.Fatalf("shard stats: num=%d len=%d", st.Synopsis.NumShards, len(st.Synopsis.Shards))
	}
	snips, funcs := 0, 0
	for _, sh := range st.Synopsis.Shards {
		snips += sh.Snippets
		funcs += sh.Functions
	}
	if snips != st.Synopsis.Snippets || funcs != st.Synopsis.Functions {
		t.Fatalf("per-shard totals (%d snippets, %d funcs) disagree with synopsis (%d, %d)",
			snips, funcs, st.Synopsis.Snippets, st.Synopsis.Functions)
	}
	if st.Sample.Generation != 1 || st.Sample.Rebuilds != 1 {
		t.Fatalf("sample stats %+v", st.Sample)
	}
	// Queries served now carry the new generation.
	var qr QueryResponse
	if code := post(t, ts.URL+"/query", QueryRequest{SQL: "SELECT AVG(revenue) FROM sales WHERE week < 20"}, &qr); code != 200 {
		t.Fatalf("query status %d", code)
	}
	if qr.SampleGen != 1 {
		t.Fatalf("query sample_gen=%d want 1", qr.SampleGen)
	}
}

// The auto-rebuild quiet-period policy, driven entirely on an injected
// fake clock — zero sleeps, zero polling. The background ticker is parked
// on an hour-long interval; the test advances the clock and calls the poll
// body (maybeAutoRebuild) directly, exactly what the ticker would do.
func TestServerAutoRebuildDuringQuietPeriod(t *testing.T) {
	var clock atomic.Int64
	clock.Store(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	advance := func(d time.Duration) { clock.Add(int64(d)) }

	tb := salesTable(t, 10000, 42)
	sample, err := aqp.BuildSample(tb, 0.2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), core.Config{
		Now: func() time.Time { return time.Unix(0, clock.Load()) },
	})
	srv := New(sys, Config{
		RebuildAfterRows:  2000,
		RebuildQuiet:      time.Minute,
		RebuildCheckEvery: time.Hour, // parks the real ticker; the test drives polls
		Generate: func(n int, seed int64) (*storage.Table, error) {
			return salesTable(t, n, seed), nil
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Below the threshold: no amount of quiet arms a rebuild.
	if code := post(t, ts.URL+"/append", AppendRequest{Generate: 500}, nil); code != 200 {
		t.Fatal("append failed")
	}
	advance(time.Hour)
	if srv.maybeAutoRebuild() {
		t.Fatal("rebuild fired below the pending-rows threshold")
	}
	if gen := sys.Engine().SampleGen(); gen != 0 {
		t.Fatalf("gen=%d", gen)
	}

	// Cross the threshold while traffic is fresh: the quiet gate holds.
	if code := post(t, ts.URL+"/append", AppendRequest{Generate: 2500}, nil); code != 200 {
		t.Fatal("append failed")
	}
	if srv.maybeAutoRebuild() {
		t.Fatal("rebuild fired inside the quiet window")
	}
	advance(30 * time.Second) // still inside RebuildQuiet
	if srv.maybeAutoRebuild() {
		t.Fatal("rebuild fired with only 30s of quiet")
	}

	// Quiet long enough: exactly one rebuild fires and disarms the trigger.
	advance(31 * time.Second)
	if !srv.maybeAutoRebuild() {
		t.Fatal("auto-rebuild did not fire after the quiet period")
	}
	if gen := sys.Engine().SampleGen(); gen != 1 {
		t.Fatalf("gen=%d after auto-rebuild", gen)
	}
	if st := sys.StatsSnapshot(); st.Rebuilds != 1 {
		t.Fatalf("Rebuilds=%d", st.Rebuilds)
	}
	advance(time.Hour)
	if srv.maybeAutoRebuild() {
		t.Fatal("rebuild re-fired without new appended rows")
	}
	// Close is idempotent and stops the loop.
	srv.Close()
	srv.Close()
}

// TestServerParseErrorDetail pins the error envelope for SQL syntax errors:
// the 400 body's "error" carries the one-line line/column message and
// "detail" the multi-line caret rendering of the offending source line, so
// clients can print exactly where the statement broke.
func TestServerParseErrorDetail(t *testing.T) {
	_, _, ts := fixture(t, 2000, Config{})
	body, _ := json.Marshal(QueryRequest{SQL: "SELECT AVG(revenue)\nFROM sales\nWHERE week !"})
	r, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", r.StatusCode)
	}
	var env struct {
		Code   string `json:"code"`
		Error  string `json:"error"`
		Detail string `json:"detail"`
	}
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "bad_request" {
		t.Fatalf("code %q, want bad_request", env.Code)
	}
	if !strings.Contains(env.Error, "line 3") {
		t.Fatalf("error %q does not locate the failure on line 3", env.Error)
	}
	if !strings.Contains(env.Detail, "WHERE week !") || !strings.Contains(env.Detail, "^") {
		t.Fatalf("detail %q missing source line or caret", env.Detail)
	}
	// Non-parse 400s carry no detail: the envelope stays one line.
	body, _ = json.Marshal(QueryRequest{SQL: ""})
	r2, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var env2 struct {
		Detail string `json:"detail"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&env2); err != nil {
		t.Fatal(err)
	}
	if env2.Detail != "" {
		t.Fatalf("missing-sql 400 carries detail %q, want empty", env2.Detail)
	}
}
