package server

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Session is one client's serving state. Sessions are created on first use
// and identified by a caller-chosen id (or an assigned one when empty);
// they carry only counters — query state itself lives in the shared System,
// which is what lets sessions learn from each other.
type Session struct {
	ID      string
	Created time.Time

	queries  atomic.Int64
	appends  atomic.Int64
	lastSeen atomic.Int64 // unix nanos
}

func (s *Session) touch(now time.Time) { s.lastSeen.Store(now.UnixNano()) }

// SessionInfo is the exported snapshot of one session for /stats.
type SessionInfo struct {
	ID       string    `json:"id"`
	Created  time.Time `json:"created"`
	LastSeen time.Time `json:"last_seen"`
	Queries  int64     `json:"queries"`
	Appends  int64     `json:"appends"`
}

// maxSessions bounds the registry: beyond it the least-recently-seen
// session is evicted, so anonymous one-shot clients (every request without
// a session id mints a fresh identity) cannot grow the server without
// bound. Evicted ids are recreated on their next request.
const maxSessions = 4096

// statsSessionLimit bounds how many sessions /stats lists (most recent
// first) so the payload stays small on busy servers.
const statsSessionLimit = 100

// sessionRegistry tracks live sessions by id.
type sessionRegistry struct {
	mu   sync.Mutex
	byID map[string]*Session
	seq  int64
}

func newSessionRegistry() *sessionRegistry {
	return &sessionRegistry{byID: make(map[string]*Session)}
}

// get returns the session with the given id, creating it if needed; an
// empty id is assigned a fresh "s-<n>" identity.
func (r *sessionRegistry) get(id string, now time.Time) *Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id == "" {
		r.seq++
		id = "s-" + strconv.FormatInt(r.seq, 10)
	}
	s, ok := r.byID[id]
	if !ok {
		if len(r.byID) >= maxSessions {
			r.evictOldestLocked()
		}
		s = &Session{ID: id, Created: now}
		s.touch(now)
		r.byID[id] = s
	}
	return s
}

func (r *sessionRegistry) evictOldestLocked() {
	var oldest *Session
	for _, s := range r.byID {
		if oldest == nil || s.lastSeen.Load() < oldest.lastSeen.Load() {
			oldest = s
		}
	}
	if oldest != nil {
		delete(r.byID, oldest.ID)
	}
}

func (r *sessionRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// snapshot lists the most recently seen sessions (capped at
// statsSessionLimit), ties broken by id for stable /stats output.
func (r *sessionRegistry) snapshot() []SessionInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SessionInfo, 0, len(r.byID))
	for _, s := range r.byID {
		out = append(out, SessionInfo{
			ID:       s.ID,
			Created:  s.Created,
			LastSeen: time.Unix(0, s.lastSeen.Load()),
			Queries:  s.queries.Load(),
			Appends:  s.appends.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].LastSeen.Equal(out[j].LastSeen) {
			return out[i].LastSeen.After(out[j].LastSeen)
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > statsSessionLimit {
		out = out[:statsSessionLimit]
	}
	return out
}
