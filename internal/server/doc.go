// Package server is the concurrent serving layer: it exposes the Verdict
// pipeline (internal/core) as a long-running multi-session HTTP/JSON
// service. N clients share one System — and therefore one synopsis, which
// is the whole point of database learning: every client's queries make the
// next client's answers better.
//
// Endpoints: POST /query, /query/stream (progressive online aggregation as
// chunked NDJSON), /append, /train, /rebuild (all behind admission
// control), GET /stats, and POST /save, /load for synopsis persistence
// inside a server-configured directory. See cmd/verdict-server and the
// README operations guide for wire formats.
//
// # Concurrency invariants
//
// The Server itself holds no query state and takes no locks on the
// request path; all shared-state discipline lives in core.System and
// below (snapshot-isolated views, sharded copy-on-write synopsis). What
// the server adds:
//
//   - Admission control: a buffered-channel semaphore of MaxInFlight
//     worker slots gates /query, /query/stream, /append, /train and
//     /rebuild; a request waits at most QueueWait before a 503, so
//     overload degrades into fast rejections instead of unbounded
//     queueing. One-shot handlers hold their slot until the response body
//     is fully written (their work cannot be interrupted, so the bound
//     stays hard); the streaming handler's slot is additionally released
//     the moment the request context is cancelled — a disconnected
//     streaming client frees its slot (and unpins the rebuild quiet
//     gate) immediately.
//   - Streams (/query/stream) pin one engine view and one inference
//     snapshot for their whole lifetime — the view's sample generation is
//     also refcount-pinned against replay-horizon eviction — and honor
//     client disconnects between increments; each chunk is flushed as
//     soon as it exists and carries a cursor that resumes the stream
//     bit-identically after a dropped connection (behind-horizon cursors
//     get a structured 410). A target_ci in the request stops the stream
//     server-side once the raw CI is tight enough.
//   - Graceful drain: BeginDrain sheds all new admitted work with 503
//     while in-flight handlers (streams included) finish; Drain waits for
//     them under the caller's deadline. /stats is never shed.
//   - Counters (served, rejected, pendingRows, lastActivity) are atomics;
//     the session registry has its own mutex and is LRU-capped.
//   - The auto-rebuild goroutine (armed by RebuildAfterRows, stopped by
//     Close) only ever calls System.RebuildSample, which serializes with
//     appends; "quiet" is defined as no admitted request activity for
//     RebuildQuiet, with activity stamped at admission and completion.
//   - /save writes are write-then-rename: concurrent saves to one name
//     race only on the atomic rename, never interleave bytes. /load swaps
//     the live synopsis atomically; in-flight queries finish on the old
//     one. Snapshot names are validated to bare file names, so clients
//     can never reach the rest of the filesystem.
package server
