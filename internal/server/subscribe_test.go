package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// subStream is one open /subscribe NDJSON connection.
type subStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

func openSubscribe(t *testing.T, baseURL string, req SubscribeRequest) *subStream {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &subStream{body: resp.Body, sc: sc}
}

// next reads one chunk; ok=false on stream end.
func (s *subStream) next(t *testing.T) (StreamChunk, bool) {
	t.Helper()
	if !s.sc.Scan() {
		return StreamChunk{}, false
	}
	var c StreamChunk
	if err := json.Unmarshal(s.sc.Bytes(), &c); err != nil {
		t.Fatalf("bad chunk %q: %v", s.sc.Bytes(), err)
	}
	return c, true
}

// replayChunkRaw audits one pushed chunk's raw cells against a fresh
// one-shot replay at its pinned (sample_gen, base_rows, sample_rows)
// triple — bit-identical after the JSON round-trip (float64 survives Go's
// JSON encoding exactly).
func replayChunkRaw(t *testing.T, sys *core.System, sql string, c StreamChunk) {
	t.Helper()
	view := sys.Engine().ViewAtGen(c.SampleGen, c.BaseRows, c.SampleRows)
	if view == nil {
		t.Fatalf("ViewAtGen(%d, %d, %d) = nil: pushed chunk not replayable", c.SampleGen, c.BaseRows, c.SampleRows)
	}
	rep, err := sys.ExecuteView(view, sql)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for _, row := range rep.Rows {
		for _, cell := range row.Cells {
			got = append(got, cell.Raw.Value, cell.Raw.StdErr)
		}
	}
	var want []float64
	for _, row := range c.Rows {
		for _, cell := range row.Cells {
			want = append(want, cell.RawValue, cell.RawStdErr)
		}
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("replay shape at gen %d: %d vs %d cells", c.SampleGen, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("chunk seq %d at gen=%d base=%d: cell %d pushed %v, replay %v",
				c.Seq, c.SampleGen, c.BaseRows, i, want[i], got[i])
		}
	}
}

// TestServerSubscribeStorm is the -race acceptance storm: 8 subscriptions
// with mixed thresholds on ONE standing query, concurrent append streams,
// a mid-storm /rebuild, and abrupt client disconnects. Afterwards: every
// chunk a persistent reader received replays bit-identically; one shared
// scan ran per notify batch (metric-asserted: the 8 subscribers never
// multiplied the scan work); every generation pin is released; and the
// /stats in-flight and subscription gauges are back to 0.
func TestServerSubscribeStorm(t *testing.T) {
	srv, sys, ts := fixture(t, 20000, Config{MaxInFlight: 32})
	defer srv.Close()
	sql := "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 5 AND 15"

	const subscribers = 8
	streams := make([]*subStream, subscribers)
	for i := range streams {
		req := SubscribeRequest{SQL: sql, Session: fmt.Sprintf("sub-%d", i)}
		switch i % 3 {
		case 1:
			req.DeltaRel = 1e-9 // threshold path, passes on any movement
		case 2:
			req.DeltaCI = 1e12 // effectively mute after the initial push
		}
		streams[i] = openSubscribe(t, ts.URL, req)
		c, ok := streams[i].next(t)
		if !ok || c.PushReason != core.PushReasonSubscribe || c.Seq != 0 {
			t.Fatalf("subscriber %d initial chunk: ok=%v %+v", i, ok, c)
		}
	}

	// Persistent readers (0..4) consume until the stream ends, checking seq
	// monotonicity (coalescing may gap, never reorder) and collecting
	// chunks for the replay audit. Disconnectors (5..7) drop abruptly
	// mid-storm.
	const persistent = 5
	collected := make([][]StreamChunk, persistent)
	var readers sync.WaitGroup
	for i := 0; i < persistent; i++ {
		readers.Add(1)
		go func(i int) {
			defer readers.Done()
			last := 0 // initial chunk was seq 0
			for {
				c, ok := streams[i].next(t)
				if !ok {
					return
				}
				if c.Seq <= last {
					t.Errorf("reader %d: seq %d after %d", i, c.Seq, last)
					return
				}
				last = c.Seq
				collected[i] = append(collected[i], c)
			}
		}(i)
	}

	const appendsPerWorker, workers = 8, 2
	var storm sync.WaitGroup
	for w := 0; w < workers; w++ {
		storm.Add(1)
		go func(w int) {
			defer storm.Done()
			for i := 0; i < appendsPerWorker; i++ {
				var ar AppendResponse
				if code := post(t, ts.URL+"/append", AppendRequest{Generate: 300, Seed: int64(9000 + w*100 + i)}, &ar); code != 200 {
					t.Errorf("append status %d", code)
					return
				}
				if w == 0 && i == 3 { // mid-storm generation swap
					if code := post(t, ts.URL+"/rebuild", struct{}{}, nil); code != 200 {
						t.Errorf("rebuild status %d", code)
						return
					}
				}
				if w == 1 && i == 4 { // abrupt disconnects mid-storm
					for d := persistent; d < subscribers; d++ {
						streams[d].body.Close()
					}
				}
			}
		}(w)
	}
	storm.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Shared-scan economics: the plan was created once (one full fold) and
	// each mutation ran exactly one incremental scan, regardless of 8
	// subscribers. NotifyBatches is one per mutation that saw the plan.
	st := sys.StatsSnapshot()
	wantBatches := workers*appendsPerWorker + 1 // appends + the mid-storm rebuild
	if st.NotifyBatches != wantBatches {
		t.Fatalf("NotifyBatches=%d, want %d", st.NotifyBatches, wantBatches)
	}
	if st.NotifyScans != st.NotifyBatches+1 {
		t.Fatalf("NotifyScans=%d with %d batches: scans must be shared, one per batch plus the plan's creation fold",
			st.NotifyScans, st.NotifyBatches)
	}

	// Tear down the persistent subscribers and wait for the handlers to
	// notice the disconnects.
	for i := 0; i < persistent; i++ {
		streams[i].body.Close()
	}
	readers.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sys.ActiveSubscriptions() == 0 && srv.InFlight() == 0 && srv.subscribers.Load() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := sys.ActiveSubscriptions(); n != 0 {
		t.Fatalf("ActiveSubscriptions=%d after all clients left", n)
	}
	if n := sys.Engine().PinnedGens(); n != 0 {
		t.Fatalf("PinnedGens=%d after teardown: subscriptions leaked generation pins", n)
	}
	var stats StatsResponse
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server.Subscriptions != 0 || stats.Server.InFlight != 0 {
		t.Fatalf("post-storm gauges: subscriptions=%d in_flight=%d, want 0/0",
			stats.Server.Subscriptions, stats.Server.InFlight)
	}

	// Replay audit: every chunk the zero-threshold readers kept must
	// reproduce bit-for-bit from its pinned provenance.
	audited := 0
	for i := 0; i < persistent; i += 3 { // readers 0 and 3: zero thresholds
		for _, c := range collected[i] {
			replayChunkRaw(t, sys, sql, c)
			audited++
		}
	}
	if audited == 0 {
		t.Fatal("storm produced no auditable chunks")
	}
}

// TestServerSubscribeCoalesceBackpressure: a subscriber that never reads,
// behind a 1-slot queue, must not slow appends or starve a healthy
// subscriber; its pushes coalesce to the latest (counter surfaced through
// /stats), and the latest still replays.
func TestServerSubscribeCoalesceBackpressure(t *testing.T) {
	srv, sys, ts := fixture(t, 10000, Config{})
	defer srv.Close()
	sql := "SELECT COUNT(*) FROM sales WHERE region = 'east'"

	// The stalled consumer registers at the hub directly (the HTTP handler
	// would drain its queue into socket buffers); the healthy one goes
	// through the full endpoint.
	stalled, err := sys.Subscribe(sql, core.SubscribeOptions{Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	healthy := openSubscribe(t, ts.URL, SubscribeRequest{SQL: sql})
	defer healthy.body.Close()
	if c, ok := healthy.next(t); !ok || c.Seq != 0 {
		t.Fatalf("healthy initial chunk: ok=%v %+v", ok, c)
	}

	const appends = 5
	for i := 0; i < appends; i++ {
		if code := post(t, ts.URL+"/append", AppendRequest{Generate: 200, Seed: int64(300 + i)}, nil); code != 200 {
			t.Fatalf("append %d status %d: a stalled subscriber must never block the hub", i, code)
		}
	}
	// The healthy subscriber received every update, in order and gapless.
	for want := 1; want <= appends; want++ {
		c, ok := healthy.next(t)
		if !ok || c.Seq != want || c.PushReason != core.PushReasonAppend {
			t.Fatalf("healthy chunk: ok=%v seq=%d reason=%q, want seq %d reason append", ok, c.Seq, c.PushReason, want)
		}
	}
	// The stalled one's slot holds only the latest; every overwrite was
	// counted and is visible through the /stats system counters.
	var stats StatsResponse
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.System.NotifyCoalesced != appends {
		t.Fatalf("NotifyCoalesced=%d, want %d", stats.System.NotifyCoalesced, appends)
	}
	upd, ok := stalled.TryNext()
	if !ok || upd.Seq != appends {
		t.Fatalf("stalled queue holds seq %d (ok=%v), want the latest seq %d — the gap tells it what it missed",
			upd.Seq, ok, appends)
	}
	if _, extra := stalled.TryNext(); extra {
		t.Fatal("stalled queue exceeded its slot")
	}
}

// TestServerSubscribeDrain: draining completes in-flight pushes, then each
// open subscription receives a terminal chunk with stop_reason "drain"
// before EOF, Drain itself returns cleanly, and new subscriptions shed.
func TestServerSubscribeDrain(t *testing.T) {
	srv, _, ts := fixture(t, 5000, Config{})
	defer srv.Close()
	sql := "SELECT AVG(revenue) FROM sales WHERE week < 26"
	st := openSubscribe(t, ts.URL, SubscribeRequest{SQL: sql})
	defer st.body.Close()
	if c, ok := st.next(t); !ok || c.PushReason != core.PushReasonSubscribe {
		t.Fatalf("initial chunk: ok=%v %+v", ok, c)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(ctx) }()

	term, ok := st.next(t)
	if !ok || term.StopReason != "drain" || !term.Supported {
		t.Fatalf("terminal chunk: ok=%v %+v", ok, term)
	}
	if c, ok := st.next(t); ok {
		t.Fatalf("chunk after the terminal one: %+v", c)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v (the open subscription must not hold the drain)", err)
	}
	if code := post(t, ts.URL+"/subscribe", SubscribeRequest{SQL: sql}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain subscribe status %d, want 503", code)
	}
}

// TestServerSubscribeValidation pins the request contract: malformed
// bodies and unsupportable standing statements 400 (GROUP BY statements
// stand since the grouped fold landed — see TestServerSubscribeStormGrouped),
// and the subscription cap sheds with 503 without disturbing the stream
// already open.
func TestServerSubscribeValidation(t *testing.T) {
	srv, _, ts := fixture(t, 5000, Config{MaxSubscriptions: 1})
	defer srv.Close()
	for _, req := range []SubscribeRequest{
		{},
		{SQL: "SELECT AVG(revenue) FROM sales", DeltaCI: -1},
		{SQL: "SELECT AVG(revenue) FROM sales", DeltaRel: -0.5},
		{SQL: "SELECT AVG(revenue) FROM sales", Queue: -2},
		{SQL: "SELECT AVG(revenue) FROM sales", DebounceMS: -5},
		{SQL: "not sql at all"},
	} {
		if code := post(t, ts.URL+"/subscribe", req, nil); code != http.StatusBadRequest {
			t.Fatalf("subscribe(%+v) status %d, want 400", req, code)
		}
	}
	st := openSubscribe(t, ts.URL, SubscribeRequest{SQL: "SELECT AVG(revenue) FROM sales"})
	defer st.body.Close()
	if _, ok := st.next(t); !ok {
		t.Fatal("no initial chunk")
	}
	if code := post(t, ts.URL+"/subscribe", SubscribeRequest{SQL: "SELECT AVG(revenue) FROM sales"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap subscribe status %d, want 503", code)
	}
	if srv.subscribers.Load() != 1 {
		t.Fatalf("subscriber gauge %d after shed, want 1", srv.subscribers.Load())
	}
}

// TestServerSubscribeStormGrouped is the grouped acceptance storm: the same
// concurrent shape as TestServerSubscribeStorm but the standing query GROUPs
// BY region, so every pushed chunk carries multiple group rows produced by
// the carried grouped fold. The invariants carry over unchanged: one shared
// incremental scan per notify batch regardless of subscriber count
// (NotifyScans == NotifyBatches + the plan's creation fold), every chunk a
// zero-threshold reader kept replays bit-identically, and teardown releases
// every pin and gauge.
func TestServerSubscribeStormGrouped(t *testing.T) {
	srv, sys, ts := fixture(t, 20000, Config{MaxInFlight: 32})
	defer srv.Close()
	sql := "SELECT region, AVG(revenue), COUNT(*) FROM sales GROUP BY region"

	const subscribers = 8
	streams := make([]*subStream, subscribers)
	for i := range streams {
		req := SubscribeRequest{SQL: sql, Session: fmt.Sprintf("gsub-%d", i)}
		switch i % 3 {
		case 1:
			req.DeltaRel = 1e-9
		case 2:
			req.DeltaCI = 1e12
		}
		streams[i] = openSubscribe(t, ts.URL, req)
		c, ok := streams[i].next(t)
		if !ok || c.PushReason != core.PushReasonSubscribe || c.Seq != 0 {
			t.Fatalf("subscriber %d initial chunk: ok=%v %+v", i, ok, c)
		}
		if len(c.Rows) != 2 {
			t.Fatalf("subscriber %d initial chunk has %d group rows, want 2", i, len(c.Rows))
		}
	}

	const persistent = 5
	collected := make([][]StreamChunk, persistent)
	var readers sync.WaitGroup
	for i := 0; i < persistent; i++ {
		readers.Add(1)
		go func(i int) {
			defer readers.Done()
			last := 0
			for {
				c, ok := streams[i].next(t)
				if !ok {
					return
				}
				if c.Seq <= last {
					t.Errorf("reader %d: seq %d after %d", i, c.Seq, last)
					return
				}
				last = c.Seq
				collected[i] = append(collected[i], c)
			}
		}(i)
	}

	const appendsPerWorker, workers = 8, 2
	var storm sync.WaitGroup
	for w := 0; w < workers; w++ {
		storm.Add(1)
		go func(w int) {
			defer storm.Done()
			for i := 0; i < appendsPerWorker; i++ {
				var ar AppendResponse
				if code := post(t, ts.URL+"/append", AppendRequest{Generate: 300, Seed: int64(11000 + w*100 + i)}, &ar); code != 200 {
					t.Errorf("append status %d", code)
					return
				}
				if w == 0 && i == 3 {
					if code := post(t, ts.URL+"/rebuild", struct{}{}, nil); code != 200 {
						t.Errorf("rebuild status %d", code)
						return
					}
				}
				if w == 1 && i == 4 {
					for d := persistent; d < subscribers; d++ {
						streams[d].body.Close()
					}
				}
			}
		}(w)
	}
	storm.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Shared-scan economics hold for the grouped fold too: 8 subscribers on
	// one GROUP BY plan cost one incremental grouped scan per mutation.
	st := sys.StatsSnapshot()
	wantBatches := workers*appendsPerWorker + 1
	if st.NotifyBatches != wantBatches {
		t.Fatalf("NotifyBatches=%d, want %d", st.NotifyBatches, wantBatches)
	}
	if st.NotifyScans != st.NotifyBatches+1 {
		t.Fatalf("NotifyScans=%d with %d batches: grouped scans must be shared, one per batch plus the creation fold",
			st.NotifyScans, st.NotifyBatches)
	}

	for i := 0; i < persistent; i++ {
		streams[i].body.Close()
	}
	readers.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sys.ActiveSubscriptions() == 0 && srv.InFlight() == 0 && srv.subscribers.Load() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := sys.ActiveSubscriptions(); n != 0 {
		t.Fatalf("ActiveSubscriptions=%d after all clients left", n)
	}
	if n := sys.Engine().PinnedGens(); n != 0 {
		t.Fatalf("PinnedGens=%d after teardown: grouped subscriptions leaked generation pins", n)
	}

	audited := 0
	for i := 0; i < persistent; i += 3 { // readers 0 and 3: zero thresholds
		for _, c := range collected[i] {
			if len(c.Rows) != 2 {
				t.Fatalf("reader %d seq %d: %d group rows, want 2", i, c.Seq, len(c.Rows))
			}
			replayChunkRaw(t, sys, sql, c)
			audited++
		}
	}
	if audited == 0 {
		t.Fatal("grouped storm produced no auditable chunks")
	}
}
