package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/aqp"
	"repro/internal/core"
)

// postRaw posts a JSON body and returns (status, decoded error envelope);
// the envelope is zero-valued on 200s.
func postRaw(t *testing.T, url, body string) (int, errJSON) {
	t.Helper()
	r, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env errJSON
	if r.StatusCode != http.StatusOK {
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("error response is not the envelope: %v (%s)", err, data)
		}
	}
	return r.StatusCode, env
}

// TestServerRebuildPartitionValidation: /rebuild layouts naming unknown or
// categorical columns are rejected with a structured 400 (code
// "invalid_column") and nothing moves — no generation swap, no Rebuilds
// bump. This is the serving-layer surface of aqp.ErrBadLayout, which used
// to be a panic deep inside the cluster sort.
func TestServerRebuildPartitionValidation(t *testing.T) {
	_, sys, ts := fixture(t, 8000, Config{})

	cases := []struct {
		name, body, wantErr string
	}{
		{"categorical cluster column", `{"cluster_column": "region"}`, "not a numeric column"},
		{"unknown cluster column", `{"cluster_column": "nope"}`, "unknown column"},
		{"categorical stratum column", `{"partitions": 4, "stratum_column": "region"}`, "not a numeric column"},
		{"unknown stratum column", `{"partitions": 4, "stratum_column": "nope"}`, "unknown column"},
	}
	for _, c := range cases {
		code, env := postRaw(t, ts.URL+"/rebuild", c.body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.name, code)
		}
		if env.Code != "invalid_column" {
			t.Fatalf("%s: envelope code %q, want invalid_column", c.name, env.Code)
		}
		if !strings.Contains(env.Error, c.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", c.name, env.Error, c.wantErr)
		}
	}
	if gen := sys.Engine().SampleGen(); gen != 0 {
		t.Fatalf("rejected rebuilds moved the sample generation to %d", gen)
	}
	if st := sys.StatsSnapshot(); st.Rebuilds != 0 {
		t.Fatalf("rejected rebuilds bumped the counter to %d", st.Rebuilds)
	}
}

// TestServerPartitionedRebuildAndStats: a /rebuild layout override produces
// the stratified partitioned sample, /stats exposes the per-partition
// digest, /metrics gains the partition gauges, and queries keep answering.
func TestServerPartitionedRebuildAndStats(t *testing.T) {
	_, sys, ts := fixture(t, 12000, Config{})

	var rr RebuildResponse
	if code := post(t, ts.URL+"/rebuild", json.RawMessage(`{"partitions": 4, "stratum_column": "week"}`), &rr); code != 200 {
		t.Fatalf("partitioned rebuild status %d", code)
	}
	if rr.Generation != 1 || rr.Partitions != 4 {
		t.Fatalf("rebuild response %+v", rr)
	}

	var st StatsResponse
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Sample.NumPartitions != 4 || st.Sample.StratumColumn != "week" {
		t.Fatalf("stats sample layout: %d partitions, column %q", st.Sample.NumPartitions, st.Sample.StratumColumn)
	}
	if len(st.Sample.Partitions) != 4 {
		t.Fatalf("stats carries %d partition entries", len(st.Sample.Partitions))
	}
	total := 0
	for i, p := range st.Sample.Partitions {
		if p.Partition != i || p.Rows == 0 || p.Strata == 0 || p.Generation != 1 {
			t.Fatalf("partition digest %d: %+v", i, p)
		}
		if p.ZoneSelectivity <= 0 || p.ZoneSelectivity > 0.5 {
			t.Fatalf("partition %d zone selectivity %v: stratified layout should cluster week", i, p.ZoneSelectivity)
		}
		total += p.Rows
	}
	if total != st.Table.SampleRows {
		t.Fatalf("partition rows sum to %d, sample has %d", total, st.Table.SampleRows)
	}

	// The partitioned sample still answers queries.
	var qr QueryResponse
	req := QueryRequest{SQL: "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 20"}
	if code := post(t, ts.URL+"/query", req, &qr); code != 200 || !qr.Supported {
		t.Fatalf("query over partitioned sample: status %d, %+v", code, qr)
	}
	if v := qr.Rows[0].Cells[0].Value; v < 70 || v > 100 {
		t.Fatalf("AVG(revenue | week 10..20) = %v over partitioned sample", v)
	}

	// An empty-body rebuild repeats the (now standing) partitioned layout.
	if code := post(t, ts.URL+"/rebuild", struct{}{}, &rr); code != 200 {
		t.Fatalf("default rebuild status %d", code)
	}
	if rr.Generation != 2 || rr.Partitions != 4 {
		t.Fatalf("default rebuild did not keep the layout: %+v", rr)
	}
	if st := sys.StatsSnapshot(); st.Rebuilds != 2 {
		t.Fatalf("rebuild counter %d, want 2", st.Rebuilds)
	}
}

// TestServerPartitionMetricsGauges: the scrape-time partition gauges follow
// the layout — zero/empty on a flat sample, one labeled sample per
// partition after a partitioned rebuild.
func TestServerPartitionMetricsGauges(t *testing.T) {
	_, ts, _ := metricsFixture(t, 8000, Config{})

	values, _ := scrape(t, ts.URL)
	if got := values["verdict_sample_partitions"]; got != 0 {
		t.Fatalf("flat sample reports %v partitions", got)
	}
	var rr RebuildResponse
	if code := post(t, ts.URL+"/rebuild", json.RawMessage(`{"partitions": 3, "stratum_column": "week"}`), &rr); code != 200 {
		t.Fatalf("rebuild status %d", code)
	}
	values, _ = scrape(t, ts.URL)
	if got := values["verdict_sample_partitions"]; got != 3 {
		t.Fatalf("partition count gauge %v, want 3", got)
	}
	for p := 0; p < 3; p++ {
		key := `verdict_sample_partition_rows{partition="` + strconv.Itoa(p) + `"}`
		if v, ok := values[key]; !ok || v <= 0 {
			t.Fatalf("missing or empty %s (=%v)", key, v)
		}
		selKey := `verdict_sample_partition_zone_selectivity{partition="` + strconv.Itoa(p) + `"}`
		if sel, ok := values[selKey]; !ok || sel <= 0 || sel > 0.5 {
			t.Fatalf("%s = %v: stratified layout should cluster week", selKey, sel)
		}
	}
}

// TestServerPartitionBootConfig: core.Config's NumPartitions/StratumColumn
// lay the sample out at boot, before any rebuild, without moving the
// generation.
func TestServerPartitionBootConfig(t *testing.T) {
	tb := salesTable(t, 8000, 42)
	sample, err := aqp.BuildSample(tb, 0.2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), core.Config{
		NumPartitions: 2,
		StratumColumn: "week",
	})
	srv := New(sys, Config{})
	defer srv.Close()

	stats := sys.Engine().PartitionStats()
	if len(stats) != 2 {
		t.Fatalf("boot layout produced %d partitions, want 2", len(stats))
	}
	if stats[0].Gen != 0 {
		t.Fatalf("boot layout bumped the generation to %d", stats[0].Gen)
	}
	res, err := sys.Execute("SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 20")
	if err != nil || !res.Supported {
		t.Fatalf("query over boot-partitioned sample: %v, %+v", err, res)
	}
}
