package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/mathx"
)

// POST /query/stream — the progressive (online-aggregation) query path.
// The response is chunked NDJSON: one StreamChunk per increment, flushed as
// soon as it is computed, so clients watch the estimate converge and the
// confidence interval shrink live. The whole stream runs against one pinned
// engine view and one pinned synopsis snapshot; a client that has seen
// enough simply closes the connection, which cancels the request context,
// stops the scan at the next increment boundary and frees the worker slot
// immediately. Each chunk carries (sample_gen, base_rows, sample_rows,
// rows_seen) — everything needed to replay its raw answer bit-for-bit via
// Engine.ViewAtGen + System.ExecuteViewPrefix.

// StreamRequest asks for a progressive query.
type StreamRequest struct {
	SQL     string `json:"sql"`
	Session string `json:"session,omitempty"`
	// MinRows is the first increment's sample-row budget, doubling until
	// the sample is exhausted; 0 selects the engine default (one block,
	// 4096 rows).
	MinRows int `json:"min_rows,omitempty"`
	// PaceMS delays each non-final increment by this many milliseconds — a
	// demo/ops knob for watching convergence (capped at 1000 ms so a client
	// cannot park a worker slot indefinitely).
	PaceMS int64 `json:"pace_ms,omitempty"`
}

// maxPaceMS caps client-requested pacing per increment.
const maxPaceMS = 1000

// StreamChunk is one NDJSON line of a /query/stream response.
type StreamChunk struct {
	Session string `json:"session"`
	// Seq is the 0-based increment index; RowsSeen is the sample prefix the
	// estimates reflect, out of SampleRows.
	Seq        int `json:"seq"`
	RowsSeen   int `json:"rows_seen"`
	SampleRows int `json:"sample_rows"`
	// SampleGen/Epoch/BaseRows pin the serving snapshot: constant for the
	// whole stream (increments never mix sample generations), and enough to
	// replay any chunk later.
	SampleGen uint64 `json:"sample_gen"`
	Epoch     uint64 `json:"epoch"`
	BaseRows  int    `json:"base_rows"`
	// Estimate and CI summarize the first cell — the common single-
	// aggregate case: the model-improved answer and its 95% half-width.
	// RawEstimate/RawCI are the engine's unimproved values. Rows carries
	// every group and cell.
	Estimate    float64  `json:"estimate"`
	CI          float64  `json:"ci"`
	RawEstimate float64  `json:"raw_estimate"`
	RawCI       float64  `json:"raw_ci"`
	Rows        []Row    `json:"rows,omitempty"`
	Supported   bool     `json:"supported"`
	Reasons     []string `json:"reasons,omitempty"`
	// Final marks the increment that consumed the whole sample (which is
	// also the moment the answer is recorded into the synopsis).
	Final      bool    `json:"final,omitempty"`
	SimTimeMS  float64 `json:"sim_time_ms,omitempty"`
	OverheadUS float64 `json:"overhead_us,omitempty"`
}

func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing sql"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	sess := s.sessions.get(req.Session, time.Now())
	sess.touch(time.Now())
	sess.queries.Add(1)
	s.streams.Add(1)

	pace := time.Duration(req.PaceMS) * time.Millisecond
	if pace > maxPaceMS*time.Millisecond {
		pace = maxPaceMS * time.Millisecond
	}
	ctx := r.Context()
	enc := json.NewEncoder(w)
	wrote := false
	writeChunk := func(c StreamChunk) bool {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if err := enc.Encode(c); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	res, err := s.sys.ExecuteProgressive(ctx, req.SQL, core.ProgressiveOptions{FirstRows: req.MinRows},
		func(pres *core.Result, p core.Progress) bool {
			if !writeChunk(s.chunkFrom(sess.ID, pres, p)) {
				return false
			}
			if pace > 0 && !p.Final {
				select {
				case <-ctx.Done():
					return false
				case <-time.After(pace):
				}
			}
			return true
		})
	if err != nil {
		// Parse/plan failures surface before the first chunk and can still
		// carry a status; a cancellation mid-stream cannot (the 200 header
		// and earlier chunks are gone), so the stream just ends.
		if !wrote {
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	if res != nil && !res.Supported && !wrote {
		// Unsupported queries terminate in one chunk, mirroring /query.
		writeChunk(StreamChunk{
			Session: sess.ID, Supported: false, Reasons: res.Reasons, Final: true,
			Epoch: res.Epoch, SampleGen: res.SampleGen,
			BaseRows: res.BaseRows, SampleRows: res.SampleRows,
		})
	}
}

// chunkFrom converts one progressive increment into its wire form.
func (s *Server) chunkFrom(session string, res *core.Result, p core.Progress) StreamChunk {
	c := StreamChunk{
		Session: session, Seq: p.Seq, RowsSeen: p.Rows, SampleRows: p.SampleRows,
		SampleGen: res.SampleGen, Epoch: res.Epoch, BaseRows: res.BaseRows,
		Rows: s.jsonRows(res), Supported: true, Final: p.Final,
		SimTimeMS:  float64(res.SimTime) / float64(time.Millisecond),
		OverheadUS: float64(res.Overhead) / float64(time.Microsecond),
	}
	if len(c.Rows) > 0 && len(c.Rows[0].Cells) > 0 {
		first := c.Rows[0].Cells[0]
		alpha, _ := mathx.ConfidenceMultiplier(0.95)
		c.Estimate, c.CI = first.Value, first.ErrBound
		c.RawEstimate, c.RawCI = first.RawValue, alpha*first.RawStdErr
	}
	return c
}
