package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/mathx"
)

// POST /query/stream — the progressive (online-aggregation) query path.
// The response is chunked NDJSON: one StreamChunk per increment, flushed as
// soon as it is computed, so clients watch the estimate converge and the
// confidence interval shrink live. The whole stream runs against one pinned
// engine view and one pinned synopsis snapshot; a client that has seen
// enough simply closes the connection, which cancels the request context,
// stops the scan at the next increment boundary and frees the worker slot
// immediately — or supplies target_ci and lets the server stop the stream
// the moment the raw confidence interval is tight enough. Each chunk
// carries a ready-to-resend cursor: POSTing it back (with the original sql
// and min_rows) resumes the stream mid-sample after a dropped connection,
// with the remaining chunks bit-identical to the ones the uninterrupted
// stream would have sent. Each chunk also carries (sample_gen, base_rows,
// sample_rows, rows_seen) — everything needed to replay its raw answer
// bit-for-bit via Engine.ViewAtGen + System.ExecuteViewPrefix, for as long
// as the generation stays inside the replay horizon (-max-retained-gens).

// StreamRequest asks for a progressive query.
type StreamRequest struct {
	SQL     string `json:"sql"`
	Session string `json:"session,omitempty"`
	// MinRows is the first increment's sample-row budget, doubling until
	// the sample is exhausted; 0 selects the engine default (one block,
	// 4096 rows). Negative values are rejected with 400.
	MinRows int `json:"min_rows,omitempty"`
	// PaceMS delays each non-final increment by this many milliseconds — a
	// demo/ops knob for watching convergence (capped at 1000 ms so a client
	// cannot park a worker slot indefinitely).
	PaceMS int64 `json:"pace_ms,omitempty"`
	// TargetCI, when positive, stops the stream server-side at the first
	// increment whose raw 95% half-width is within the target for every
	// result cell; the closing chunk carries stop_reason "target". With
	// TargetRelative it is a fraction of each raw estimate instead of an
	// absolute half-width.
	TargetCI       float64 `json:"target_ci,omitempty"`
	TargetRelative bool    `json:"target_relative,omitempty"`
	// Cursor resumes an interrupted stream: send back the cursor object of
	// the last chunk received, together with the original sql and
	// min_rows. The server re-pins the cursor's sample generation and
	// continues from the next increment. A cursor behind the replay
	// horizon gets a structured 410 (code "behind_replay_horizon") —
	// restart without the cursor.
	Cursor *StreamCursor `json:"cursor,omitempty"`
}

// StreamCursor is the resume token attached to every streamed chunk. It is
// self-contained: (sample_gen, base_rows, sample_rows) reconstruct the
// stream's pinned view, (rows_seen, seq) locate the increment on the
// schedule, and fingerprint binds it to the (sql, min_rows) pair whose
// schedule produced it, so a cursor cannot resume a different query.
// Epoch is informational provenance carried through verbatim (it names
// the original serving view's publication; the engine keeps no epoch
// history to check it against) — replay tooling must key on the
// (sample_gen, base_rows, sample_rows) triple, which is validated.
type StreamCursor struct {
	SampleGen   uint64 `json:"sample_gen"`
	Epoch       uint64 `json:"epoch"`
	BaseRows    int    `json:"base_rows"`
	SampleRows  int    `json:"sample_rows"`
	RowsSeen    int    `json:"rows_seen"`
	Seq         int    `json:"seq"`
	Fingerprint string `json:"fingerprint"`
}

// maxPaceMS caps client-requested pacing per increment.
const maxPaceMS = 1000

// StreamChunk is one NDJSON line of a /query/stream response.
type StreamChunk struct {
	Session string `json:"session"`
	// Seq is the 0-based increment index; RowsSeen is the sample prefix the
	// estimates reflect, out of SampleRows.
	Seq        int `json:"seq"`
	RowsSeen   int `json:"rows_seen"`
	SampleRows int `json:"sample_rows"`
	// SampleGen/Epoch/BaseRows pin the serving snapshot: constant for the
	// whole stream (increments never mix sample generations), and enough to
	// replay any chunk later.
	SampleGen uint64 `json:"sample_gen"`
	Epoch     uint64 `json:"epoch"`
	BaseRows  int    `json:"base_rows"`
	// Estimate and CI summarize the first cell — the common single-
	// aggregate case: the model-improved answer and its 95% half-width.
	// RawEstimate/RawCI are the engine's unimproved values. Rows carries
	// every group and cell.
	Estimate    float64  `json:"estimate"`
	CI          float64  `json:"ci"`
	RawEstimate float64  `json:"raw_estimate"`
	RawCI       float64  `json:"raw_ci"`
	Rows        []Row    `json:"rows,omitempty"`
	Supported   bool     `json:"supported"`
	Reasons     []string `json:"reasons,omitempty"`
	// Final marks the increment that consumed the whole sample (which is
	// also the moment the answer is recorded into the synopsis).
	Final      bool    `json:"final,omitempty"`
	SimTimeMS  float64 `json:"sim_time_ms,omitempty"`
	OverheadUS float64 `json:"overhead_us,omitempty"`
	// GroupsTruncated reports that the answer set exceeded the configured
	// Nmax group cap and rows carries only the first Nmax groups.
	GroupsTruncated bool `json:"groups_truncated,omitempty"`
	// PushReason is set only on /subscribe chunks: what triggered this push
	// ("subscribe" for the initial state, then "append", "rebuild" or
	// "train").
	PushReason string `json:"push_reason,omitempty"`
	// StopReason marks a stream that ended before exhausting the sample:
	// "target" when the raw CI met the requested target_ci, "error" on a
	// terminal chunk reporting a mid-stream execution failure (Error set,
	// RequestID naming the failed request for log correlation), "drain" on
	// a /subscribe stream's final chunk when the server began draining.
	StopReason string `json:"stop_reason,omitempty"`
	Error      string `json:"error,omitempty"`
	RequestID  string `json:"request_id,omitempty"`
	// Cursor is the resume token for this increment: POST it back with the
	// original sql and min_rows to continue the stream from here.
	Cursor *StreamCursor `json:"cursor,omitempty"`
}

// GoneResponse is the structured 410 body a resume (or replay) request
// receives when its cursor's sample generation has been evicted behind the
// bounded replay horizon. Clients restart the stream without a cursor.
type GoneResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"` // always "behind_replay_horizon"
	// ReplayHorizon is the oldest generation still replayable.
	ReplayHorizon uint64 `json:"replay_horizon"`
	// RequestID names the rejected request for log correlation.
	RequestID string `json:"request_id,omitempty"`
}

// streamFingerprint binds a cursor to the request parameters that shape the
// increment schedule: resuming with a different sql or min_rows could never
// line up with the original stream's chunks, so such cursors are rejected
// before any work happens.
func streamFingerprint(sql string, minRows int) string {
	h := fnv.New64a()
	io.WriteString(h, sql)
	h.Write([]byte{0})
	io.WriteString(h, strconv.Itoa(minRows))
	return strconv.FormatUint(h.Sum64(), 16)
}

// validate rejects malformed stream requests before admission-grade work
// begins (every error maps to a 400) and returns the request's schedule
// fingerprint, computed once and shared by cursor validation and the
// cursors attached to outgoing chunks.
func (req *StreamRequest) validate() (fingerprint string, err error) {
	if req.SQL == "" {
		return "", fmt.Errorf("missing sql")
	}
	if req.MinRows < 0 {
		return "", fmt.Errorf("min_rows %d is negative", req.MinRows)
	}
	if req.PaceMS < 0 {
		return "", fmt.Errorf("pace_ms %d is negative", req.PaceMS)
	}
	if req.TargetCI < 0 {
		return "", fmt.Errorf("target_ci %v is negative", req.TargetCI)
	}
	if req.TargetRelative && req.TargetCI == 0 {
		return "", fmt.Errorf("target_relative requires a positive target_ci")
	}
	fp := streamFingerprint(req.SQL, req.MinRows)
	if c := req.Cursor; c != nil {
		if c.RowsSeen < 0 || c.Seq < 0 || c.BaseRows < 0 || c.SampleRows <= 0 {
			return "", fmt.Errorf("cursor coordinates (seq %d, rows_seen %d, base_rows %d, sample_rows %d) are malformed",
				c.Seq, c.RowsSeen, c.BaseRows, c.SampleRows)
		}
		if c.Fingerprint == "" {
			return "", fmt.Errorf("cursor is missing its fingerprint")
		}
		if c.Fingerprint != fp {
			return "", fmt.Errorf("cursor fingerprint does not match this sql and min_rows: resume with the original query parameters")
		}
	}
	return fp, nil
}

func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	fp, err := req.validate()
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, r, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	sess := s.sessions.get(req.Session, s.now())
	sess.touch(s.now())
	sess.queries.Add(1)
	noteSession(r, sess.ID)
	s.streams.Add(1)
	if s.metrics != nil {
		s.metrics.activeStreams.Add(1)
		defer s.metrics.activeStreams.Add(-1)
		if req.Cursor != nil {
			s.metrics.resumes.Inc()
		}
	}

	pace := time.Duration(req.PaceMS) * time.Millisecond
	if pace > maxPaceMS*time.Millisecond {
		pace = maxPaceMS * time.Millisecond
	}
	ctx := r.Context()
	enc := json.NewEncoder(w)
	wrote := false
	var lastChunk time.Time
	writeChunk := func(c StreamChunk) bool {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if err := enc.Encode(c); err != nil {
			return false
		}
		flusher.Flush()
		// Increment lag is chunk-to-chunk delivery time: scan + inference
		// + encode + pace, the cadence a watching client experiences.
		if s.metrics != nil {
			now := time.Now()
			if !lastChunk.IsZero() {
				s.metrics.streamLag.Observe(now.Sub(lastChunk).Seconds())
			}
			lastChunk = now
		}
		return true
	}

	opts := core.ProgressiveOptions{
		FirstRows:      req.MinRows,
		TargetCI:       req.TargetCI,
		TargetRelative: req.TargetRelative,
	}
	var faultErr error
	yield := func(pres *core.Result, p core.Progress) bool {
		c := s.chunkFrom(sess.ID, pres, p)
		c.Cursor = &StreamCursor{
			SampleGen: pres.SampleGen, Epoch: pres.Epoch,
			BaseRows: pres.BaseRows, SampleRows: pres.SampleRows,
			RowsSeen: p.Rows, Seq: p.Seq, Fingerprint: fp,
		}
		if s.streamFault != nil {
			if err := s.streamFault(p.Seq); err != nil {
				faultErr = err
				return false
			}
		}
		if !writeChunk(c) {
			return false
		}
		// No pacing after a terminal chunk (sample exhausted or target met):
		// the stream is semantically finished, so holding the worker slot
		// another pace_ms would only delay the client's EOF.
		if pace > 0 && !p.Final && !p.TargetMet {
			select {
			case <-ctx.Done():
				return false
			case <-time.After(pace):
			}
		}
		return true
	}

	var res *core.Result
	if req.Cursor != nil {
		res, err = s.sys.ExecuteProgressiveFrom(ctx, req.SQL, opts, core.ProgressiveCursor{
			SampleGen:  req.Cursor.SampleGen,
			Epoch:      req.Cursor.Epoch,
			BaseRows:   req.Cursor.BaseRows,
			SampleRows: req.Cursor.SampleRows,
			RowsSeen:   req.Cursor.RowsSeen,
			Seq:        req.Cursor.Seq,
		}, yield)
	} else {
		res, err = s.sys.ExecuteProgressive(ctx, req.SQL, opts, yield)
	}
	if err == nil && faultErr != nil {
		err = faultErr
	}
	if err != nil {
		switch {
		case wrote:
			// The 200 header and earlier chunks are gone; a vanished client
			// (context cancelled) gets nothing, but any other mid-stream
			// failure is reported as a terminal error chunk so clients can
			// tell a failed stream from a completed one instead of seeing a
			// silently truncated body.
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				writeChunk(StreamChunk{
					Session: sess.ID, Supported: true,
					StopReason: "error", Error: err.Error(),
					RequestID: requestID(r),
				})
			}
		case errors.Is(err, aqp.ErrGenEvicted):
			// The cursor's generation fell behind the replay horizon:
			// structured 410 so clients restart a fresh stream cleanly. The
			// horizon comes from the typed error — snapshotted under the
			// same lock that rejected the generation — so the body can
			// never contradict its own message.
			gone := GoneResponse{Error: err.Error(), Code: "behind_replay_horizon", RequestID: requestID(r)}
			var ge *aqp.GenEvictedError
			if errors.As(err, &ge) {
				gone.ReplayHorizon = ge.Horizon
			} else {
				gone.ReplayHorizon = s.sys.Engine().ReplayHorizon()
			}
			if s.metrics != nil {
				s.metrics.behindHorizon.Inc()
			}
			writeJSON(w, http.StatusGone, gone)
		default:
			// Parse/plan failures and bad cursors surface before the first
			// chunk and can still carry a status.
			writeErr(w, r, http.StatusBadRequest, err)
		}
		return
	}
	if res != nil && !res.Supported && !wrote {
		// Unsupported queries terminate in one chunk, mirroring /query.
		writeChunk(StreamChunk{
			Session: sess.ID, Supported: false, Reasons: res.Reasons, Final: true,
			Epoch: res.Epoch, SampleGen: res.SampleGen,
			BaseRows: res.BaseRows, SampleRows: res.SampleRows,
		})
	}
}

// chunkFrom converts one progressive increment into its wire form.
func (s *Server) chunkFrom(session string, res *core.Result, p core.Progress) StreamChunk {
	c := StreamChunk{
		Session: session, Seq: p.Seq, RowsSeen: p.Rows, SampleRows: p.SampleRows,
		SampleGen: res.SampleGen, Epoch: res.Epoch, BaseRows: res.BaseRows,
		Rows: s.jsonRows(res), Supported: true, Final: p.Final,
		SimTimeMS:  float64(res.SimTime) / float64(time.Millisecond),
		OverheadUS: float64(res.Overhead) / float64(time.Microsecond),

		GroupsTruncated: res.GroupsTruncated,
	}
	if p.TargetMet {
		c.StopReason = "target"
	}
	if len(c.Rows) > 0 && len(c.Rows[0].Cells) > 0 {
		first := c.Rows[0].Cells[0]
		alpha, _ := mathx.ConfidenceMultiplier(0.95)
		c.Estimate, c.CI = first.Value, first.ErrBound
		c.RawEstimate, c.RawCI = first.RawValue, alpha*first.RawStdErr
	}
	return c
}
