package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// postStream POSTs a StreamRequest and decodes the NDJSON chunk sequence.
func postStream(t *testing.T, url string, req StreamRequest) []StreamChunk {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type %q", ct)
	}
	var chunks []StreamChunk
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var c StreamChunk
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatalf("chunk decode: %v (%s)", err, sc.Bytes())
		}
		chunks = append(chunks, c)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return chunks
}

// checkStream asserts the per-stream invariants every progressive response
// must satisfy: strictly increasing rows_seen ending at the full sample, a
// single terminal final chunk, and one sample generation throughout (an
// increment must never mix generations, whatever rebuilds land mid-stream).
func checkStream(t *testing.T, label string, chunks []StreamChunk) {
	t.Helper()
	if len(chunks) == 0 {
		t.Fatalf("%s: empty stream", label)
	}
	prevRows := 0
	for i, c := range chunks {
		if c.Seq != i {
			t.Fatalf("%s: chunk %d has seq %d", label, i, c.Seq)
		}
		if c.RowsSeen <= prevRows {
			t.Fatalf("%s: rows_seen %d after %d", label, c.RowsSeen, prevRows)
		}
		prevRows = c.RowsSeen
		if c.SampleGen != chunks[0].SampleGen || c.BaseRows != chunks[0].BaseRows || c.SampleRows != chunks[0].SampleRows {
			t.Fatalf("%s: chunk %d snapshot (gen %d, base %d, sample %d) differs from chunk 0 (gen %d, base %d, sample %d)",
				label, i, c.SampleGen, c.BaseRows, c.SampleRows,
				chunks[0].SampleGen, chunks[0].BaseRows, chunks[0].SampleRows)
		}
		if c.Final != (i == len(chunks)-1) {
			t.Fatalf("%s: chunk %d final=%v", label, i, c.Final)
		}
	}
	last := chunks[len(chunks)-1]
	if last.RowsSeen != last.SampleRows {
		t.Fatalf("%s: final chunk saw %d of %d sample rows", label, last.RowsSeen, last.SampleRows)
	}
}

func TestQueryStreamProgressiveAndReplay(t *testing.T) {
	_, sys, ts := fixture(t, 20000, Config{})
	sql := "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 30"
	chunks := postStream(t, ts.URL, StreamRequest{SQL: sql, Session: "alice", MinRows: 256})
	checkStream(t, sql, chunks)
	if len(chunks) < 4 {
		t.Fatalf("only %d increments", len(chunks))
	}
	for _, c := range chunks {
		if !c.Supported || len(c.Rows) != 1 || len(c.Rows[0].Cells) != 1 {
			t.Fatalf("chunk shape %+v", c)
		}
		if c.Estimate < 70 || c.Estimate > 110 {
			t.Fatalf("estimate %v at %d rows", c.Estimate, c.RowsSeen)
		}
		if c.CI <= 0 || c.RawCI <= 0 {
			t.Fatalf("degenerate CI %v/%v at %d rows", c.CI, c.RawCI, c.RowsSeen)
		}
	}
	// Age the server past the stream's snapshot, then audit every chunk.
	if code := post(t, ts.URL+"/append", AppendRequest{Generate: 2000}, nil); code != 200 {
		t.Fatal("append failed")
	}
	if code := post(t, ts.URL+"/rebuild", struct{}{}, nil); code != 200 {
		t.Fatal("rebuild failed")
	}
	for _, c := range chunks {
		view := sys.Engine().ViewAtGen(c.SampleGen, c.BaseRows, c.SampleRows)
		if view == nil {
			t.Fatalf("generation %d unavailable", c.SampleGen)
		}
		rep, err := sys.ExecuteViewPrefix(view, sql, c.RowsSeen)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Rows[0].Cells[0].Raw
		want := c.Rows[0].Cells[0]
		if got.Value != want.RawValue || got.StdErr != want.RawStdErr {
			t.Fatalf("chunk @%d rows: replay (%v ± %v) != served (%v ± %v)",
				c.RowsSeen, got.Value, got.StdErr, want.RawValue, want.RawStdErr)
		}
	}
	// The workload counters saw one progressive stream with these increments.
	st := sys.StatsSnapshot()
	if st.Progressive != 1 || st.Increments != len(chunks) {
		t.Fatalf("progressive stats %+v after %d chunks", st, len(chunks))
	}
}

func TestQueryStreamErrorsAndUnsupported(t *testing.T) {
	_, _, ts := fixture(t, 2000, Config{})
	body, _ := json.Marshal(StreamRequest{SQL: "SELECT FROM FROM"})
	r, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status %d", r.StatusCode)
	}
	body, _ = json.Marshal(StreamRequest{SQL: ""})
	r, err = http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sql status %d", r.StatusCode)
	}
	// Unsupported queries terminate with a single supported=false chunk.
	chunks := postStream(t, ts.URL, StreamRequest{SQL: "SELECT MAX(revenue) FROM sales"})
	if len(chunks) != 1 || chunks[0].Supported || !chunks[0].Final || len(chunks[0].Reasons) == 0 {
		t.Fatalf("unsupported stream %+v", chunks)
	}
}

// TestQueryStreamStorm is the acceptance storm (run it under -race): 8
// concurrent streaming sessions interleaved with append batches and a
// forced sample rebuild. Every stream must hold one sample generation, its
// raw 95% half-width must shrink monotonically as increments double, and
// every chunk must replay bit-for-bit afterwards.
func TestQueryStreamStorm(t *testing.T) {
	_, sys, ts := fixture(t, 20000, Config{MaxInFlight: 32})

	// Ungrouped only: the monotone-CI assertion reads the first-cell
	// summary, which is the whole answer here. Uniform measures keep the
	// sample variance stable, so doubling the prefix must shrink the raw
	// CLT half-width (≈ ×1/√2 per increment).
	queries := []string{
		"SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 30",
		"SELECT COUNT(*) FROM sales WHERE region = 'east'",
	}
	const sessions = 8
	const perSession = 2
	streams := make([][][]StreamChunk, sessions)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // appends racing the streams
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if code := post(t, ts.URL+"/append", AppendRequest{Session: "appender", Generate: 400, Seed: int64(9000 + i)}, nil); code != 200 {
				t.Errorf("append status %d", code)
				return
			}
		}
	}()
	aux.Add(1)
	go func() { // a mid-storm epoch swap
		defer aux.Done()
		time.Sleep(20 * time.Millisecond)
		if code := post(t, ts.URL+"/rebuild", struct{}{}, nil); code != 200 {
			t.Errorf("rebuild status %d", code)
		}
	}()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < perSession; k++ {
				sql := queries[(s+k)%len(queries)]
				chunks := postStream(t, ts.URL, StreamRequest{
					SQL: sql, Session: fmt.Sprintf("stream-%d", s), MinRows: 256,
				})
				streams[s] = append(streams[s], chunks)
			}
		}(s)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		t.FailNow()
	}

	gens := map[uint64]bool{}
	for s := range streams {
		for k, chunks := range streams[s] {
			label := fmt.Sprintf("session %d stream %d", s, k)
			checkStream(t, label, chunks)
			gens[chunks[0].SampleGen] = true
			prevCI := 0.0
			for i, c := range chunks {
				if c.RawCI <= 0 {
					t.Fatalf("%s chunk %d: degenerate raw CI %v", label, i, c.RawCI)
				}
				if i > 0 && c.RawCI > prevCI {
					t.Fatalf("%s: raw CI grew %v -> %v at %d rows", label, prevCI, c.RawCI, c.RowsSeen)
				}
				prevCI = c.RawCI
			}
			// Serial audit: every increment replays float-identically from
			// its generation-pinned prefix.
			sql := queries[(s+k)%len(queries)]
			for _, c := range chunks {
				view := sys.Engine().ViewAtGen(c.SampleGen, c.BaseRows, c.SampleRows)
				if view == nil {
					t.Fatalf("%s: generation %d lost", label, c.SampleGen)
				}
				rep, err := sys.ExecuteViewPrefix(view, sql, c.RowsSeen)
				if err != nil {
					t.Fatal(err)
				}
				got := rep.Rows[0].Cells[0].Raw
				want := c.Rows[0].Cells[0]
				if got.Value != want.RawValue || got.StdErr != want.RawStdErr {
					t.Fatalf("%s @%d rows gen %d: replay (%v ± %v) != served (%v ± %v)",
						label, c.RowsSeen, c.SampleGen, got.Value, got.StdErr, want.RawValue, want.RawStdErr)
				}
			}
		}
	}
	if sys.Engine().SampleGen() == 0 {
		t.Fatal("rebuild never landed during the storm")
	}
}

// TestStreamClientDisconnectFreesSlot: a client abandoning its stream must
// release the worker slot promptly — /stats in-flight returns to zero while
// the stream would still have been running — so a dead client can neither
// exhaust admission nor pin the auto-rebuild quiet gate forever.
func TestStreamClientDisconnectFreesSlot(t *testing.T) {
	srv, _, ts := fixture(t, 20000, Config{MaxInFlight: 2})

	body, _ := json.Marshal(StreamRequest{
		SQL: "SELECT AVG(revenue) FROM sales", MinRows: 64, PaceMS: 100,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read exactly one chunk — the stream is alive and holds a slot.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	if got := srv.InFlight(); got != 1 {
		t.Fatalf("in-flight %d with a live stream", got)
	}
	// Walk away mid-stream.
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for srv.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("disconnected stream still holds a slot (in-flight %d)", srv.InFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// /stats agrees, and the freed slot admits new work immediately.
	var st StatsResponse
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Server.InFlight != 0 || st.Server.Streams != 1 {
		t.Fatalf("stats after disconnect: %+v", st.Server)
	}
	if code := post(t, ts.URL+"/query", QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}, nil); code != 200 {
		t.Fatalf("query after disconnect: %d", code)
	}
}

// TestServerGracefulDrain: draining finishes in-flight streams (to their
// final chunk) while shedding new requests with 503.
func TestServerGracefulDrain(t *testing.T) {
	srv, _, ts := fixture(t, 20000, Config{MaxInFlight: 8})

	started := make(chan struct{})
	finished := make(chan []StreamChunk, 1)
	go func() {
		body, _ := json.Marshal(StreamRequest{
			SQL: "SELECT AVG(revenue) FROM sales WHERE week < 40", MinRows: 64, PaceMS: 30,
		})
		resp, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			close(started)
			finished <- nil
			return
		}
		defer resp.Body.Close()
		var chunks []StreamChunk
		sc := bufio.NewScanner(resp.Body)
		first := true
		for sc.Scan() {
			var c StreamChunk
			if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
				t.Error(err)
				break
			}
			chunks = append(chunks, c)
			if first {
				close(started)
				first = false
			}
		}
		finished <- chunks
	}()
	<-started

	// Begin draining with the stream in flight: new work is shed at once…
	srv.BeginDrain()
	if code := post(t, ts.URL+"/query", QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server admitted a query (status %d)", code)
	}
	// …while /stats still answers and reports the drain.
	var st StatsResponse
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if !st.Server.Draining {
		t.Fatal("stats does not report draining")
	}
	// Drain must wait for the stream's last chunk, not cut it off.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	chunks := <-finished
	checkStream(t, "drained stream", chunks)

	// A drain with nothing in flight returns immediately, and an expired
	// deadline surfaces as an error when work cannot finish (simulated by
	// holding a slot directly).
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	srv.handlers.Add(1)
	expCtx, expCancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer expCancel()
	if err := srv.Drain(expCtx); err == nil {
		t.Fatal("drain ignored its deadline")
	}
	srv.handlers.Done()
}
