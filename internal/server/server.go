package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Config tunes the serving layer.
type Config struct {
	// MaxInFlight bounds concurrently executing /query, /query/stream,
	// /append, /train and /rebuild requests (the worker pool; admission
	// control). Default 16.
	MaxInFlight int
	// QueueWait is how long a request may wait for a worker slot before the
	// server sheds it with 503 (default 2s).
	QueueWait time.Duration
	// MaxBatchRows bounds one /append batch (default 1,000,000).
	MaxBatchRows int
	// MaxBodyBytes bounds one request body (default 64 MiB) — enforced
	// before decoding, so oversized payloads cannot balloon memory.
	MaxBodyBytes int64
	// SnapshotDir is the directory /save and /load operate in; requests
	// name files (no path separators), never paths, so clients cannot reach
	// the rest of the filesystem. Empty disables both endpoints.
	SnapshotDir string
	// Generate, when set, lets clients ask /append to synthesize n rows
	// server-side ({"generate": n}) from the workload the server was booted
	// with — how verdict-cli's \append drives a remote server.
	Generate func(n int, seed int64) (*storage.Table, error)
	// RebuildAfterRows arms the background sample rebuild: once streamed
	// appends have landed at least this many rows since the last rebuild,
	// the server re-shuffles the sample back to prefix-uniformity during
	// the next quiet period (see System.RebuildSample). 0 (the default)
	// disables auto-rebuild; POST /rebuild always works.
	RebuildAfterRows int
	// RebuildQuiet is how long the server must have been idle (no admitted
	// requests) before an armed auto-rebuild fires (default 2s).
	RebuildQuiet time.Duration
	// RebuildCheckEvery is the auto-rebuild poll interval (default 500ms).
	RebuildCheckEvery time.Duration
	// MaxSubscriptions bounds concurrently open /subscribe streams (default
	// 256). Subscriptions deliberately do NOT hold worker slots: they are
	// idle waiters, and holding a slot would permanently block the
	// auto-rebuild quiet gate, so they get their own cap.
	MaxSubscriptions int
	// Logger receives one structured log line per request (request ID,
	// session, endpoint, status, duration). Nil disables request logging.
	Logger *slog.Logger
	// Metrics is the registry GET /metrics exposes; the server registers
	// its serving-layer families on it (request latency, shed, stream lag,
	// rebuild duration, session/retention gauges, per-shard synopsis
	// counters). Nil disables the endpoint and all serving-layer metrics —
	// instrumentation then costs one branch per request. Share the same
	// registry with core's stage timer (obs.NewQueryStages) so one scrape
	// covers every layer.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.MaxBatchRows <= 0 {
		c.MaxBatchRows = 1_000_000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.RebuildQuiet <= 0 {
		c.RebuildQuiet = 2 * time.Second
	}
	if c.RebuildCheckEvery <= 0 {
		c.RebuildCheckEvery = 500 * time.Millisecond
	}
	if c.MaxSubscriptions <= 0 {
		c.MaxSubscriptions = 256
	}
	return c
}

// Server serves one shared core.System to many concurrent sessions.
type Server struct {
	sys      *core.System
	cfg      Config
	mux      *http.ServeMux
	slots    chan struct{} // worker-pool semaphore
	sessions *sessionRegistry
	start    time.Time
	log      *slog.Logger   // nil disables request logging
	metrics  *serverMetrics // nil disables serving-layer metrics

	served      atomic.Int64 // requests admitted and executed
	rejected    atomic.Int64 // requests shed by admission control
	streams     atomic.Int64 // progressive /query/stream requests admitted
	subscribers atomic.Int64 // open /subscribe streams (own cap, not worker slots)
	genSeed     atomic.Int64 // seeds server-side batch generation

	// Graceful-drain state: once draining flips, admission sheds every new
	// request with 503 while handlers (streams included) run to completion;
	// Drain waits on the handler WaitGroup up to the caller's deadline.
	draining atomic.Bool
	handlers sync.WaitGroup

	// Auto-rebuild state: appended rows since the last sample rebuild, the
	// last admitted-request instant (unix nanos; "quiet" means no admitted
	// traffic for RebuildQuiet), and the lifecycle of the poll goroutine.
	pendingRows  atomic.Int64
	lastActivity atomic.Int64
	stop         chan struct{}
	stopOnce     sync.Once

	// streamFault, when set (tests only), injects an execution error into
	// the progressive stream just before increment seq is flushed — the
	// fault-injection point for the terminal-error-chunk contract.
	streamFault func(seq int) error
}

// New builds a Server around a (thread-safe) System. When
// Config.RebuildAfterRows > 0 a background goroutine watches for quiet
// periods and rebuilds the sample (stop it with Close).
func New(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sys:      sys,
		cfg:      cfg,
		mux:      http.NewServeMux(),
		slots:    make(chan struct{}, cfg.MaxInFlight),
		sessions: newSessionRegistry(),
		start:    time.Now(),
		stop:     make(chan struct{}),
	}
	s.lastActivity.Store(s.now().UnixNano())
	s.log = cfg.Logger
	if cfg.Metrics != nil {
		s.metrics = newServerMetrics(cfg.Metrics, s)
	}
	route := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("/query", s.admitted(s.handleQuery))
	route("/query/stream", s.admitStreaming(s.handleQueryStream))
	// /subscribe manages its own admission (MaxSubscriptions): a standing
	// subscription is an idle waiter, and parking it on a worker slot would
	// hold the auto-rebuild quiet gate (len(slots) == 0) open forever.
	route("/subscribe", s.handleSubscribe)
	route("/append", s.admitted(s.handleAppend))
	route("/train", s.admitted(s.handleTrain))
	route("/rebuild", s.admitted(s.handleRebuild))
	route("/stats", s.handleStats)
	route("/save", s.handleSave)
	route("/load", s.handleLoad)
	route("/metrics", s.handleMetrics)
	// Catch-all so unknown paths get the structured envelope too. The
	// metrics label is the fixed pattern, not the URL, so arbitrary paths
	// cannot grow the label set.
	s.mux.HandleFunc("/", s.instrument("other", s.handleNotFound))
	if cfg.RebuildAfterRows > 0 {
		go s.autoRebuildLoop()
	}
	return s
}

// Handler returns the HTTP handler (mountable under httptest or net/http).
func (s *Server) Handler() http.Handler { return s.mux }

// now reads the system clock (core.Config.Now; time.Now unless a test
// injected a fake). Every policy decision that gates on elapsed time — the
// auto-rebuild quiet period, idle computation — goes through it, so a fake
// clock drives them with zero sleeps. Metrics and logs keep wall time.
func (s *Server) now() time.Time { return s.sys.Now() }

// Close stops the background auto-rebuild goroutine (idempotent). It does
// not drain in-flight requests — callers own the http.Server lifecycle.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// autoRebuildLoop fires System.RebuildSample once RebuildAfterRows
// appended rows have accumulated and the server has been quiet for
// RebuildQuiet — the "re-shuffle during quiet periods" policy. The rebuild
// itself serializes with appends, so a request arriving mid-rebuild simply
// queues behind it; quietness only gates *starting* one.
func (s *Server) autoRebuildLoop() {
	ticker := time.NewTicker(s.cfg.RebuildCheckEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.maybeAutoRebuild()
	}
}

// maybeAutoRebuild is one auto-rebuild poll: it fires System.RebuildSample
// when the pending-rows threshold is armed and the quiet gate passes, and
// reports whether a rebuild ran. The ticker loop calls it on wall time;
// fake-clock tests call it directly after advancing the injected clock.
func (s *Server) maybeAutoRebuild() bool {
	if s.cfg.RebuildAfterRows <= 0 {
		return false
	}
	if s.pendingRows.Load() < int64(s.cfg.RebuildAfterRows) {
		return false
	}
	// Quiet = nothing admitted recently AND nothing still executing: a
	// long-running query holds its worker slot, and lastActivity only
	// moves at admission/completion, so both checks are needed. Open
	// subscriptions do not count — they are idle waiters, not load.
	if len(s.slots) > 0 {
		return false
	}
	idle := time.Duration(s.now().UnixNano() - s.lastActivity.Load())
	if idle < s.cfg.RebuildQuiet {
		return false
	}
	s.pendingRows.Store(0)
	t0 := time.Now()
	s.sys.RebuildSample()
	s.observeRebuild(t0)
	return true
}

// admitted wraps a handler with the bounded worker pool: a request either
// gets a slot within QueueWait or is shed with 503 so overload degrades
// into fast rejections instead of unbounded queueing. A draining server
// sheds immediately (see BeginDrain). The slot is held until the handler
// returns (response body fully written) — for these handlers a client
// disconnect does not interrupt the work, so early release would let a
// connect-and-abandon loop stack unbounded concurrent scans/trainings.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return s.admit(h, false)
}

// admitStreaming is admission for context-honoring handlers (the
// progressive stream): the worker slot — which is both the admission bound
// and what the auto-rebuild quiet gate watches — is additionally released
// the moment the request context is cancelled. A client that disconnects
// mid-stream therefore frees its slot as soon as the cancellation
// propagates (the handler itself stops at the next increment boundary),
// instead of pinning admission capacity and the rebuild gate while its
// handler unwinds.
func (s *Server) admitStreaming(h http.HandlerFunc) http.HandlerFunc {
	return s.admit(h, true)
}

func (s *Server) admit(h http.HandlerFunc, releaseOnCancel bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.shed(w, r, codeDraining, fmt.Errorf("server draining: not admitting new requests"))
			return
		}
		timer := time.NewTimer(s.cfg.QueueWait)
		defer timer.Stop()
		select {
		case s.slots <- struct{}{}:
		case <-timer.C:
			s.shed(w, r, codeSaturated, fmt.Errorf("server saturated: %d requests in flight", s.cfg.MaxInFlight))
			return
		case <-r.Context().Done():
			s.shed(w, r, codeCanceled, r.Context().Err())
			return
		}
		s.handlers.Add(1)
		if s.draining.Load() {
			// BeginDrain raced our admission while we waited for a slot:
			// give everything back and shed, so Drain's wait can never
			// "complete" while a queued request is about to execute.
			s.handlers.Done()
			<-s.slots
			s.shed(w, r, codeDraining, fmt.Errorf("server draining: not admitting new requests"))
			return
		}
		s.served.Add(1)
		// Mark activity at admission and at slot release, so a long-running
		// request keeps the server "busy" until it finishes (or, for a
		// stream, until its client leaves).
		s.lastActivity.Store(s.now().UnixNano())
		var once sync.Once
		free := func() {
			once.Do(func() {
				<-s.slots
				s.lastActivity.Store(s.now().UnixNano())
			})
		}
		defer func() {
			free()
			s.handlers.Done()
		}()
		if releaseOnCancel {
			stop := context.AfterFunc(r.Context(), free)
			defer stop()
		}
		h(w, r)
	}
}

// shed rejects one request with the admission-control 503, bumping the
// rejection counter and the shed metric.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, code string, err error) {
	s.rejected.Add(1)
	if s.metrics != nil {
		s.metrics.shed.Inc()
	}
	writeErrCode(w, r, http.StatusServiceUnavailable, code, err)
}

// handleNotFound is the catch-all: unknown paths get the envelope.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeErr(w, r, http.StatusNotFound, fmt.Errorf("no such endpoint %q", r.URL.Path))
}

// BeginDrain flips the server into drain mode: every subsequent request on
// an admitted endpoint is shed with 503 while in-flight ones — streams
// included — run to completion, and standing subscriptions are closed with
// terminal reason "drain" (queued pushes deliver first, then each
// subscriber gets a final stop_reason chunk). Idempotent; /stats keeps
// answering so operators can watch the drain.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.sys.CloseSubscriptions("drain")
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain begins draining and blocks until every admitted handler has
// returned or ctx expires (the -drain-timeout deadline). On timeout the
// remaining in-flight count is reported; the caller decides whether to cut
// connections anyway (http.Server.Close) or keep waiting.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %d requests still in flight: %w", s.InFlight(), ctx.Err())
	}
}

// InFlight is the number of admitted requests currently holding worker
// slots. A disconnected streaming client's slot is released immediately,
// so streams count as live demand — not handlers mid-unwind.
func (s *Server) InFlight() int { return len(s.slots) }

// ---- /query ----

type QueryRequest struct {
	SQL     string `json:"sql"`
	Session string `json:"session,omitempty"`
	Exact   bool   `json:"exact,omitempty"`
	// BudgetMS caps the simulated AQP time (§7 deployment scenario 2);
	// 0 runs the sample to completion. Ignored when Exact is set.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

type Group struct {
	Column string  `json:"column"`
	Str    string  `json:"str,omitempty"`
	Num    float64 `json:"num,omitempty"`
}

type Cell struct {
	Agg       string  `json:"agg"`
	Value     float64 `json:"value"`
	StdErr    float64 `json:"stderr"`
	ErrBound  float64 `json:"err_bound"` // 95% half-width
	RawValue  float64 `json:"raw_value"`
	RawStdErr float64 `json:"raw_stderr"`
	UsedModel bool    `json:"used_model"`
	Exact     float64 `json:"exact,omitempty"`
}

type Row struct {
	Group []Group `json:"group,omitempty"`
	Cells []Cell  `json:"cells"`
}

type QueryResponse struct {
	Session    string   `json:"session"`
	Supported  bool     `json:"supported"`
	Reasons    []string `json:"reasons,omitempty"`
	Rows       []Row    `json:"rows,omitempty"`
	Epoch      uint64   `json:"epoch"`
	SampleGen  uint64   `json:"sample_gen"`
	BaseRows   int      `json:"base_rows"`
	SampleRows int      `json:"sample_rows"`
	SimTimeMS  float64  `json:"sim_time_ms"`
	OverheadUS float64  `json:"overhead_us"`
	// GroupsTruncated reports that the answer set exceeded the configured
	// Nmax group cap and rows carries only the first Nmax groups.
	GroupsTruncated bool `json:"groups_truncated,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("missing sql"))
		return
	}
	sess := s.sessions.get(req.Session, s.now())
	sess.touch(s.now())
	sess.queries.Add(1)
	noteSession(r, sess.ID)

	var (
		res *core.Result
		err error
	)
	switch {
	case req.Exact:
		res, err = s.sys.ExecuteWithExact(req.SQL)
	case req.BudgetMS > 0:
		res, err = s.sys.ExecuteTimeBound(req.SQL, time.Duration(req.BudgetMS)*time.Millisecond)
	default:
		res, err = s.sys.Execute(req.SQL)
	}
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	resp := QueryResponse{
		Session:    sess.ID,
		Supported:  res.Supported,
		Reasons:    res.Reasons,
		Epoch:      res.Epoch,
		SampleGen:  res.SampleGen,
		BaseRows:   res.BaseRows,
		SampleRows: res.SampleRows,
		SimTimeMS:  float64(res.SimTime) / float64(time.Millisecond),
		OverheadUS: float64(res.Overhead) / float64(time.Microsecond),

		GroupsTruncated: res.GroupsTruncated,
	}
	resp.Rows = s.jsonRows(res)
	writeJSON(w, http.StatusOK, resp)
}

// jsonRows converts a Result's group rows into their wire form (shared by
// /query and each /query/stream chunk).
func (s *Server) jsonRows(res *core.Result) []Row {
	alpha, _ := mathx.ConfidenceMultiplier(0.95)
	schema := s.sys.Engine().Base().Schema()
	var rows []Row
	for _, row := range res.Rows {
		rj := Row{}
		for _, g := range row.Group {
			gj := Group{Column: schema.Col(g.Col).Name}
			if g.Str != "" {
				gj.Str = g.Str
			} else {
				gj.Num = g.Num
			}
			rj.Group = append(rj.Group, gj)
		}
		for _, c := range row.Cells {
			rj.Cells = append(rj.Cells, Cell{
				Agg:       c.Agg.String(),
				Value:     c.Improved.Value,
				StdErr:    c.Improved.StdErr,
				ErrBound:  alpha * c.Improved.StdErr,
				RawValue:  c.Raw.Value,
				RawStdErr: c.Raw.StdErr,
				UsedModel: c.UsedModel,
				Exact:     c.Exact,
			})
		}
		rows = append(rows, rj)
	}
	return rows
}

// ---- /append ----

type AppendRequest struct {
	Session string `json:"session,omitempty"`
	// Rows are positional cell values in schema order: JSON numbers for
	// numeric columns, strings for categorical ones.
	Rows [][]any `json:"rows,omitempty"`
	// Generate asks the server to synthesize this many rows from its
	// configured workload generator instead (requires Config.Generate).
	Generate int   `json:"generate,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
}

type AppendResponse struct {
	Session    string `json:"session"`
	Appended   int    `json:"appended"`
	Sampled    int    `json:"sampled"`
	BaseRows   int    `json:"base_rows"`
	SampleRows int    `json:"sample_rows"`
	Epoch      uint64 `json:"epoch"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	sess := s.sessions.get(req.Session, s.now())
	sess.touch(s.now())
	noteSession(r, sess.ID)

	var (
		batch *storage.Table
		err   error
	)
	switch {
	case req.Generate > 0 && len(req.Rows) > 0:
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("pass rows or generate, not both"))
		return
	case req.Generate > 0:
		if s.cfg.Generate == nil {
			writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server has no batch generator configured"))
			return
		}
		if req.Generate > s.cfg.MaxBatchRows {
			writeErr(w, r, http.StatusBadRequest, fmt.Errorf("generate %d exceeds batch cap %d", req.Generate, s.cfg.MaxBatchRows))
			return
		}
		seed := req.Seed
		if seed == 0 {
			seed = 7_000_000 + s.genSeed.Add(1)
		}
		batch, err = s.cfg.Generate(req.Generate, seed)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, err)
			return
		}
	case len(req.Rows) > 0:
		if len(req.Rows) > s.cfg.MaxBatchRows {
			writeErr(w, r, http.StatusBadRequest, fmt.Errorf("batch of %d rows exceeds cap %d", len(req.Rows), s.cfg.MaxBatchRows))
			return
		}
		batch, err = s.decodeBatch(req.Rows)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, err)
			return
		}
	default:
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("missing rows or generate"))
		return
	}

	appended := batch.Rows()
	sampled, err := s.sys.Append(batch)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	sess.appends.Add(1)
	s.pendingRows.Add(int64(appended))
	view := s.sys.Engine().Acquire()
	writeJSON(w, http.StatusOK, AppendResponse{
		Session:    sess.ID,
		Appended:   appended,
		Sampled:    sampled,
		BaseRows:   view.BaseRows,
		SampleRows: view.SampleRows,
		Epoch:      view.Epoch,
	})
}

// ---- /rebuild ----

// RebuildRequest optionally overrides the sample layout for this rebuild.
// All fields are column *names*, resolved against the base schema here;
// empty/zero fields fall back to the engine's standing layout (the boot
// flags). Invalid layouts — unknown or categorical columns — are rejected
// with a structured 400 (code "invalid_column") before any state moves.
type RebuildRequest struct {
	// ClusterColumn sorts the flat (unpartitioned) sample by this numeric
	// column for zone-map pruning; only meaningful when Partitions is 0.
	ClusterColumn string `json:"cluster_column,omitempty"`
	// Partitions rebuilds into this many stratified partitions (>= 1);
	// 0 keeps the engine's standing layout.
	Partitions int `json:"partitions,omitempty"`
	// StratumColumn is the numeric column the stratified layout
	// range-partitions on; empty with Partitions > 0 selects round-robin.
	StratumColumn string `json:"stratum_column,omitempty"`
}

type RebuildResponse struct {
	// Generation is the new sample generation (one rebuild = one epoch).
	Generation uint64 `json:"generation"`
	SampleRows int    `json:"sample_rows"`
	Epoch      uint64 `json:"epoch"`
	// Partitions is the partition count of the new layout (0 = flat).
	Partitions int `json:"partitions,omitempty"`
}

// resolveLayout turns a RebuildRequest's column names into engine options,
// starting from the engine's standing layout so an empty body reproduces
// the default rebuild exactly.
func (s *Server) resolveLayout(req RebuildRequest) (aqp.RebuildOptions, error) {
	opts := s.sys.Engine().Layout()
	schema := s.sys.Engine().Base().Schema()
	lookup := func(field, name string) (int, error) {
		col, ok := schema.Lookup(name)
		if !ok {
			return -1, fmt.Errorf("%s: unknown column %q", field, name)
		}
		return col, nil
	}
	var err error
	if req.ClusterColumn != "" {
		if opts.ClusterColumn, err = lookup("cluster_column", req.ClusterColumn); err != nil {
			return opts, err
		}
	}
	if req.Partitions != 0 {
		opts.Partitions = req.Partitions
	}
	if req.StratumColumn != "" {
		if opts.StratumColumn, err = lookup("stratum_column", req.StratumColumn); err != nil {
			return opts, err
		}
	}
	return opts, nil
}

// handleRebuild forces a sample rebuild now (see System.RebuildSampleOpts),
// regardless of the auto-rebuild thresholds — the operator's lever for a
// planned quiet window. Queries in flight keep their pinned generation. An
// optional JSON body overrides the layout for this rebuild (and the new
// layout sticks as the engine default for subsequent auto-rebuilds).
func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req RebuildRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	opts, err := s.resolveLayout(req)
	if err != nil {
		writeErrCode(w, r, http.StatusBadRequest, codeInvalidColumn, err)
		return
	}
	s.pendingRows.Store(0)
	t0 := time.Now()
	gen, rows, err := s.sys.RebuildSampleOpts(opts)
	if err != nil {
		// aqp.ErrBadLayout: the named column exists but cannot serve as a
		// layout key (categorical, out of range). Nothing moved.
		writeErrCode(w, r, http.StatusBadRequest, codeInvalidColumn, err)
		return
	}
	s.observeRebuild(t0)
	parts := 0
	if stats := s.sys.Engine().PartitionStats(); stats != nil {
		parts = len(stats)
	}
	writeJSON(w, http.StatusOK, RebuildResponse{
		Generation: gen,
		SampleRows: rows,
		Epoch:      s.sys.Engine().Acquire().Epoch,
		Partitions: parts,
	})
}

// decodeBatch builds a batch table (against the base schema) from
// positional JSON rows.
func (s *Server) decodeBatch(rows [][]any) (*storage.Table, error) {
	schema := s.sys.Engine().Base().Schema()
	batch := storage.NewTable(s.sys.Engine().Base().Name()+"_batch", schema)
	vals := make([]storage.Value, schema.Len())
	for ri, row := range rows {
		if len(row) != schema.Len() {
			return nil, fmt.Errorf("row %d has %d cells, schema has %d", ri, len(row), schema.Len())
		}
		for ci, cell := range row {
			def := schema.Col(ci)
			switch def.Kind {
			case storage.Numeric:
				f, ok := cell.(float64)
				if !ok {
					return nil, fmt.Errorf("row %d col %s: want number, got %T", ri, def.Name, cell)
				}
				vals[ci] = storage.Num(f)
			default:
				str, ok := cell.(string)
				if !ok {
					return nil, fmt.Errorf("row %d col %s: want string, got %T", ri, def.Name, cell)
				}
				vals[ci] = storage.Str(str)
			}
		}
		if err := batch.AppendRow(vals); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

// ---- /train ----

type TrainResponse struct {
	Snippets  int `json:"snippets"`
	Functions int `json:"functions"`
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	// Training is expensive (O(n³) per model) and state-changing: never let
	// an idempotent-looking GET trigger it.
	if r.Method != http.MethodPost {
		writeErr(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	// System.Train (not Verdict().Train) so standing subscriptions are
	// notified of the republished model states.
	if err := s.sys.Train(); err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, TrainResponse{
		Snippets:  s.sys.Verdict().SnippetCount(),
		Functions: len(s.sys.Verdict().FuncIDs()),
	})
}

// ---- /stats ----

type StatsResponse struct {
	Table struct {
		Name       string   `json:"name"`
		Columns    []string `json:"columns"`
		BaseRows   int      `json:"base_rows"`
		SampleRows int      `json:"sample_rows"`
		Epoch      uint64   `json:"epoch"`
	} `json:"table"`
	System   core.SystemStats `json:"system"`
	Synopsis struct {
		Snippets  int `json:"snippets"`
		Functions int `json:"functions"`
		Footprint int `json:"footprint_bytes"`
		// NumShards and Shards expose the sharded synopsis layout: one
		// entry per shard, in shard order (see core.Verdict.ShardStats).
		NumShards int              `json:"num_shards"`
		Shards    []core.ShardStat `json:"shards"`
	} `json:"synopsis"`
	Sample struct {
		// Generation counts completed sample rebuilds (epoch swaps).
		Generation uint64 `json:"generation"`
		Rebuilds   int    `json:"rebuilds"`
		// PendingRows is appended rows since the last rebuild; AutoAfterRows
		// is the arming threshold (0 = auto-rebuild disabled).
		PendingRows   int64 `json:"pending_rows"`
		AutoAfterRows int   `json:"auto_after_rows"`
		// ReplayHorizon is the oldest sample generation still replayable
		// (and resumable); RetainedGens counts retired generations held,
		// bounded by MaxRetainedGens (0 = unbounded). Resume or replay
		// requests behind the horizon receive a structured 410.
		ReplayHorizon   uint64 `json:"replay_horizon"`
		RetainedGens    int    `json:"retained_gens"`
		MaxRetainedGens int    `json:"max_retained_gens"`
		// NumPartitions is the partition count of the stratified sample
		// layout (0 = flat sample, Partitions absent); StratumColumn names
		// the column the layout range-partitions on ("" = round-robin).
		NumPartitions int             `json:"num_partitions,omitempty"`
		StratumColumn string          `json:"stratum_column,omitempty"`
		Partitions    []PartitionInfo `json:"partitions,omitempty"`
	} `json:"sample"`
	Server struct {
		Sessions    int `json:"sessions"`
		MaxInFlight int `json:"max_in_flight"`
		// InFlight counts admitted requests currently holding worker slots;
		// a slot is released when its response body is fully written or its
		// client disconnects, whichever comes first.
		InFlight int   `json:"in_flight"`
		Served   int64 `json:"served"`
		Rejected int64 `json:"rejected"`
		// Streams counts admitted progressive /query/stream requests.
		Streams int64 `json:"streams"`
		// Subscriptions is the number of standing /subscribe streams
		// currently open; MaxSubscriptions is their admission cap.
		Subscriptions    int `json:"subscriptions"`
		MaxSubscriptions int `json:"max_subscriptions"`
		// Draining is true once graceful shutdown has begun: in-flight
		// work finishes, new requests shed with 503.
		Draining bool  `json:"draining"`
		UptimeMS int64 `json:"uptime_ms"`
	} `json:"server"`
	// Metrics digests the serving-layer metrics (request quantiles, shed
	// count, uptime); absent when the server runs without a registry.
	Metrics  *MetricsSummary `json:"metrics_summary,omitempty"`
	Sessions []SessionInfo   `json:"sessions,omitempty"`
}

// PartitionInfo is one serving partition's digest in /stats (see
// aqp.Engine.PartitionStats).
type PartitionInfo struct {
	Partition int `json:"partition"`
	Strata    int `json:"strata"`
	Rows      int `json:"rows"`
	// Generation is the sample generation the partition's strata were built
	// under; all partitions of one layout report the same value.
	Generation uint64 `json:"generation"`
	// ZoneSelectivity is the mean stratum-column zone-map width relative to
	// the column domain over the partition's blocks — near 0 means selective
	// predicates on the stratum column prune almost every block.
	ZoneSelectivity float64 `json:"zone_selectivity"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	view := s.sys.Engine().Acquire()
	resp.Table.Name = view.Base.Name()
	resp.Table.Columns = view.Base.Schema().Names()
	resp.Table.BaseRows = view.BaseRows
	resp.Table.SampleRows = view.SampleRows
	resp.Table.Epoch = view.Epoch
	sysStats := s.sys.StatsSnapshot()
	resp.System = sysStats
	v := s.sys.Verdict()
	// One ShardStats pass; the totals derive from it, so the three figures
	// cannot disagree within a single response.
	resp.Synopsis.NumShards = v.NumShards()
	resp.Synopsis.Shards = v.ShardStats()
	for _, sh := range resp.Synopsis.Shards {
		resp.Synopsis.Snippets += sh.Snippets
		resp.Synopsis.Functions += sh.Functions
		resp.Synopsis.Footprint += sh.FootprintBytes
	}
	resp.Sample.Generation = view.SampleGen
	resp.Sample.Rebuilds = sysStats.Rebuilds
	resp.Sample.PendingRows = s.pendingRows.Load()
	resp.Sample.AutoAfterRows = s.cfg.RebuildAfterRows
	resp.Sample.ReplayHorizon, resp.Sample.RetainedGens, resp.Sample.MaxRetainedGens =
		s.sys.Engine().RetentionStats()
	if stats := s.sys.Engine().PartitionStats(); stats != nil {
		resp.Sample.NumPartitions = len(stats)
		schema := s.sys.Engine().Base().Schema()
		if col := s.sys.Engine().Layout().StratumColumn; col >= 0 && col < schema.Len() {
			resp.Sample.StratumColumn = schema.Col(col).Name
		}
		for _, st := range stats {
			resp.Sample.Partitions = append(resp.Sample.Partitions, PartitionInfo{
				Partition:       st.Partition,
				Strata:          st.Strata,
				Rows:            st.Rows,
				Generation:      st.Gen,
				ZoneSelectivity: st.ZoneSelectivity,
			})
		}
	}
	resp.Server.Sessions = s.sessions.len()
	resp.Server.MaxInFlight = s.cfg.MaxInFlight
	resp.Server.InFlight = s.InFlight()
	resp.Server.Served = s.served.Load()
	resp.Server.Rejected = s.rejected.Load()
	resp.Server.Streams = s.streams.Load()
	resp.Server.Subscriptions = s.sys.ActiveSubscriptions()
	resp.Server.MaxSubscriptions = s.cfg.MaxSubscriptions
	resp.Server.Draining = s.Draining()
	resp.Server.UptimeMS = time.Since(s.start).Milliseconds()
	resp.Metrics = s.metricsSummary()
	resp.Sessions = s.sessions.snapshot()
	writeJSON(w, http.StatusOK, resp)
}

// ---- /save, /load ----

type PathRequest struct {
	// Path is a snapshot file name inside the server's configured snapshot
	// directory — a bare name, not a filesystem path.
	Path string `json:"path"`
}

type SnapshotResponse struct {
	Path     string `json:"path"`
	Snippets int    `json:"snippets"`
}

// snapshotFile validates the client-supplied name and resolves it inside
// SnapshotDir. Clients never name paths: anything with a separator or
// traversal component is rejected, so the endpoints cannot touch the rest
// of the filesystem.
func (s *Server) snapshotFile(name string) (string, error) {
	if s.cfg.SnapshotDir == "" {
		return "", fmt.Errorf("snapshot persistence disabled: start the server with a snapshot directory")
	}
	if name == "" {
		return "", fmt.Errorf("missing path")
	}
	if name != filepath.Base(name) || name == "." || name == ".." {
		return "", fmt.Errorf("snapshot name %q must be a bare file name", name)
	}
	return filepath.Join(s.cfg.SnapshotDir, name), nil
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	var req PathRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	path, err := s.snapshotFile(req.Path)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	// Write-then-rename: concurrent saves to the same name race only on the
	// atomic rename, never interleave bytes in the target file.
	tmp, err := os.CreateTemp(s.cfg.SnapshotDir, "."+req.Path+".tmp-*")
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	defer os.Remove(tmp.Name())
	err = s.sys.SaveSynopsis(tmp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Path: req.Path, Snippets: s.sys.Verdict().SnippetCount()})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req PathRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	path, err := s.snapshotFile(req.Path)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	defer f.Close()
	if err := s.sys.LoadSynopsis(f); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Path: req.Path, Snippets: s.sys.Verdict().SnippetCount()})
}

// ---- plumbing ----

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, r, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	// Cap the body before decoding: MaxBatchRows alone cannot bound memory
	// once a multi-GB payload has already been parsed.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Error codes of the structured error envelope: a stable machine-readable
// classification alongside the human-readable message. The streaming 410
// contract (code "behind_replay_horizon") predates the envelope and keeps
// its shape (GoneResponse).
const (
	codeBadRequest       = "bad_request"
	codeMethodNotAllowed = "method_not_allowed"
	codeNotFound         = "not_found"
	codeSaturated        = "saturated"
	codeDraining         = "draining"
	codeCanceled         = "canceled"
	codeInternal         = "internal"
	// codeInvalidColumn marks /rebuild layout rejections: an unknown column
	// name, or a column that exists but cannot key a sample layout
	// (aqp.ErrBadLayout — categorical or out of range).
	codeInvalidColumn = "invalid_column"
)

// errJSON is the error envelope every non-410 error response carries:
// {code, error, request_id}. The "error" key predates the envelope and is
// what existing clients parse, so it stays. Detail carries a multi-line
// rendering when one exists — for SQL syntax errors, the source line with
// a caret under the offending position (sqlparse.ParseError.Verbose).
type errJSON struct {
	Code      string `json:"code"`
	Error     string `json:"error"`
	Detail    string `json:"detail,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return codeBadRequest
	case http.StatusMethodNotAllowed:
		return codeMethodNotAllowed
	case http.StatusNotFound:
		return codeNotFound
	case http.StatusServiceUnavailable:
		return codeSaturated
	default:
		return codeInternal
	}
}

// writeErr responds with the error envelope, deriving the code from the
// status; paths that need a more specific code (draining vs. saturated)
// use writeErrCode directly.
func writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeErrCode(w, r, status, codeForStatus(status), err)
}

func writeErrCode(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	env := errJSON{Code: code, Error: err.Error(), RequestID: requestID(r)}
	var pe *sqlparse.ParseError
	if errors.As(err, &pe) {
		if v := pe.Verbose(); v != env.Error {
			env.Detail = v
		}
	}
	writeJSON(w, status, env)
}
