package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
)

// metricsFixture is fixture plus the full observability wiring: one shared
// registry carries both the core stage timer and the serving-layer metrics,
// and the structured logger runs (into io.Discard) so the log path is
// exercised under every test including the -race storm.
func metricsFixture(t *testing.T, rows int, cfg Config) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	tb := salesTable(t, rows, 42)
	sample, err := aqp.BuildSample(tb, 0.2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost),
		core.Config{Stages: obs.NewQueryStages(reg)})
	logger, err := obs.NewLogger(io.Discard, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = reg
	cfg.Logger = logger
	if cfg.Generate == nil {
		cfg.Generate = func(n int, seed int64) (*storage.Table, error) {
			return salesTable(t, n, seed), nil
		}
	}
	srv := New(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

// scrape GETs /metrics and parses the exposition through the independent
// text-format parser, so the writer is validated against the format, not
// against its own structures.
func scrape(t *testing.T, base string) (map[string]float64, map[string]string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("/metrics content-type %q, want %q", ct, obs.TextContentType)
	}
	values, types, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	return values, types
}

// sumMatching sums every sample whose key contains all the given
// substrings — label order inside the braces stays an exposition detail.
func sumMatching(values map[string]float64, substrs ...string) float64 {
	total := 0.0
	for k, v := range values {
		ok := true
		for _, s := range substrs {
			if !strings.Contains(k, s) {
				ok = false
				break
			}
		}
		if ok {
			total += v
		}
	}
	return total
}

// countKey rewrites a +Inf bucket sample key into its series' _count key.
func countKey(bucketKey string) string {
	k := strings.Replace(bucketKey, "_bucket", "_count", 1)
	k = strings.Replace(k, `,le="+Inf"`, "", 1)
	k = strings.Replace(k, `{le="+Inf"}`, "", 1)
	return k
}

// checkHistogramsConsistent asserts, for a quiesced registry, that every
// histogram series' _count equals its +Inf bucket — both are built from one
// snapshot, so any drift means the writer mixed snapshots.
func checkHistogramsConsistent(t *testing.T, values map[string]float64) {
	t.Helper()
	checked := 0
	for k, v := range values {
		if !strings.Contains(k, `le="+Inf"`) {
			continue
		}
		ck := countKey(k)
		cv, ok := values[ck]
		if !ok {
			t.Fatalf("bucket %q has no matching count %q", k, ck)
		}
		if cv != v {
			t.Fatalf("%s = %g but +Inf bucket %s = %g", ck, cv, k, v)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no +Inf buckets found: exposition carries no histograms")
	}
}

// TestMetricsExposition drives every instrumented path — one-shot queries
// (grouped and ungrouped), a progressive stream, appends, a rebuild — and
// asserts the scrape carries each promised family with sane values.
func TestMetricsExposition(t *testing.T) {
	_, ts, _ := metricsFixture(t, 6000, Config{})

	var qr QueryResponse
	if code := post(t, ts.URL+"/query", QueryRequest{
		SQL: "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 20",
	}, &qr); code != 200 {
		t.Fatalf("query status %d", code)
	}
	if code := post(t, ts.URL+"/query", QueryRequest{
		SQL: "SELECT region, AVG(revenue) FROM sales GROUP BY region",
	}, &qr); code != 200 {
		t.Fatalf("grouped query status %d", code)
	}
	chunks := postStream(t, ts.URL, StreamRequest{
		SQL: "SELECT AVG(revenue) FROM sales WHERE week >= 5", MinRows: 64,
	})
	if len(chunks) < 2 {
		t.Fatalf("stream produced %d chunks, need ≥2 for a lag sample", len(chunks))
	}
	if code := post(t, ts.URL+"/append", AppendRequest{Rows: [][]any{
		{25.0, "east", 100.0},
	}}, nil); code != 200 {
		t.Fatalf("append status %d", code)
	}
	if code := post(t, ts.URL+"/rebuild", struct{}{}, nil); code != 200 {
		t.Fatalf("rebuild status %d", code)
	}

	values, types := scrape(t, ts.URL)

	wantTypes := map[string]string{
		"verdict_query_stage_duration_seconds":   "histogram",
		"verdict_http_request_duration_seconds":  "histogram",
		"verdict_stream_increment_lag_seconds":   "histogram",
		"verdict_rebuild_duration_seconds":       "histogram",
		"verdict_http_requests_total":            "counter",
		"verdict_http_shed_total":                "counter",
		"verdict_stream_resumes_total":           "counter",
		"verdict_stream_behind_horizon_total":    "counter",
		"verdict_synopsis_shard_records_total":   "counter",
		"verdict_http_in_flight":                 "gauge",
		"verdict_streams_active":                 "gauge",
		"verdict_replay_horizon_age_generations": "gauge",
		"verdict_pending_rows":                   "gauge",
		"verdict_retained_generations":           "gauge",
		"verdict_uptime_seconds":                 "gauge",
	}
	for name, want := range wantTypes {
		if got := types[name]; got != want {
			t.Errorf("type of %s = %q, want %q", name, got, want)
		}
	}

	// Every pipeline stage fired, in both modes where the traffic implies it.
	stageCount := "verdict_query_stage_duration_seconds_count"
	for _, stage := range []string{obs.StageParse, obs.StagePrune, obs.StageScan, obs.StageInfer} {
		if n := sumMatching(values, stageCount, fmt.Sprintf("stage=%q", stage)); n == 0 {
			t.Errorf("no observations for stage %q", stage)
		}
	}
	if n := sumMatching(values, stageCount, `mode="progressive"`, `stage="scan"`); n == 0 {
		t.Error("stream left no progressive scan observations")
	}
	if n := sumMatching(values, stageCount, `mode="oneshot"`, `grouped="true"`); n == 0 {
		t.Error("grouped query left no grouped one-shot observations")
	}

	if n := sumMatching(values, "verdict_stream_increment_lag_seconds_count"); n < 1 {
		t.Errorf("stream increment lag count = %g, want ≥1", n)
	}
	if n := sumMatching(values, "verdict_rebuild_duration_seconds_count"); n < 1 {
		t.Errorf("rebuild duration count = %g, want ≥1", n)
	}
	if n := sumMatching(values, "verdict_http_requests_total", `endpoint="/query"`, `status="200"`); n < 2 {
		t.Errorf("/query 200 counter = %g, want ≥2", n)
	}
	if v, ok := values["verdict_http_shed_total"]; !ok || v != 0 {
		t.Errorf("shed counter = %v (present %v), want 0", v, ok)
	}
	if n := sumMatching(values, "verdict_synopsis_shard_records_total"); n == 0 {
		t.Error("synopsis shard record counters all zero after queries")
	}
	if _, ok := values["verdict_replay_horizon_age_generations"]; !ok {
		t.Error("replay horizon age gauge missing")
	}
	checkHistogramsConsistent(t, values)

	// A second quiet scrape must stay monotone (and gauges aside, equal).
	values2, _ := scrape(t, ts.URL)
	for k, v := range values {
		if strings.Contains(k, "_bucket") || strings.Contains(k, "_count") {
			if values2[k] < v {
				t.Errorf("%s went backwards: %g -> %g", k, v, values2[k])
			}
		}
	}
}

// TestMetricsStatsSummary checks the /stats digest: totals, ordered
// quantiles, uptime. verdict-cli renders exactly this block.
func TestMetricsStatsSummary(t *testing.T) {
	_, ts, _ := metricsFixture(t, 4000, Config{})
	for i := 0; i < 5; i++ {
		if code := post(t, ts.URL+"/query", QueryRequest{
			SQL: "SELECT COUNT(*) FROM sales WHERE week <= 30",
		}, nil); code != 200 {
			t.Fatalf("query status %d", code)
		}
	}
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	m := st.Metrics
	if m == nil {
		t.Fatal("stats carries no metrics_summary despite a wired registry")
	}
	if m.TotalRequests < 5 {
		t.Errorf("total_requests = %d, want ≥5", m.TotalRequests)
	}
	if m.RequestP50MS <= 0 || m.RequestP50MS > m.RequestP95MS || m.RequestP95MS > m.RequestP99MS {
		t.Errorf("quantiles out of order: p50=%g p95=%g p99=%g", m.RequestP50MS, m.RequestP95MS, m.RequestP99MS)
	}
	if m.UptimeSeconds <= 0 {
		t.Errorf("uptime = %g", m.UptimeSeconds)
	}
	if m.Shed != 0 {
		t.Errorf("shed = %d, want 0", m.Shed)
	}

	// Without a registry the block is absent, not zeroed.
	_, _, ts2 := fixture(t, 2000, Config{})
	r2, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["metrics_summary"]; ok {
		t.Error("metrics_summary present without a registry")
	}
}

// TestRequestIDPropagation: the middleware mints an ID, echoes client ones
// within bounds, and stamps the error envelope with the same ID as the
// response header.
func TestRequestIDPropagation(t *testing.T) {
	_, ts, _ := metricsFixture(t, 2000, Config{})

	// Minted when absent.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if !strings.HasPrefix(id, "r-") {
		t.Fatalf("minted request ID %q lacks r- prefix", id)
	}

	// Client-supplied IDs are honored...
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	req.Header.Set("X-Request-ID", "trace-abc-123")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-abc-123" {
		t.Fatalf("client request ID not echoed: %q", got)
	}

	// ...unless oversized, in which case the server mints its own.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	req.Header.Set("X-Request-ID", strings.Repeat("x", maxClientRequestID+1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(got, "r-") {
		t.Fatalf("oversized client ID not replaced: %q", got)
	}

	// Error envelopes carry the header's ID.
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", resp.StatusCode)
	}
	var env struct {
		Code      string `json:"code"`
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.RequestID == "" || env.RequestID != resp.Header.Get("X-Request-ID") {
		t.Fatalf("envelope request_id %q != header %q", env.RequestID, resp.Header.Get("X-Request-ID"))
	}

	// Two minted IDs never collide.
	r2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if id2 := r2.Header.Get("X-Request-ID"); id2 == id {
		t.Fatalf("request ID %q repeated", id)
	}
}

// TestErrorEnvelope table-tests the 4xx/5xx contract: every error path
// answers {code, error, request_id} with the right code.
func TestErrorEnvelope(t *testing.T) {
	_, ts, _ := metricsFixture(t, 2000, Config{})

	do := func(t *testing.T, method, path, body string) (int, map[string]any) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s %s: non-JSON error body: %v", method, path, err)
		}
		return resp.StatusCode, env
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"query wrong method", http.MethodGet, "/query", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"stream wrong method", http.MethodGet, "/query/stream", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"rebuild wrong method", http.MethodGet, "/rebuild", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"metrics wrong method", http.MethodPost, "/metrics", "{}", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"query bad json", http.MethodPost, "/query", "{", http.StatusBadRequest, "bad_request"},
		{"query missing sql", http.MethodPost, "/query", "{}", http.StatusBadRequest, "bad_request"},
		{"query bad sql", http.MethodPost, "/query", `{"sql":"SELECT"}`, http.StatusBadRequest, "bad_request"},
		{"stream negative min_rows", http.MethodPost, "/query/stream", `{"sql":"SELECT COUNT(*) FROM sales","min_rows":-1}`, http.StatusBadRequest, "bad_request"},
		{"append empty", http.MethodPost, "/append", "{}", http.StatusBadRequest, "bad_request"},
		{"save unconfigured", http.MethodPost, "/save", "{}", http.StatusBadRequest, "bad_request"},
		{"unknown path", http.MethodGet, "/nope", "", http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, env := do(t, tc.method, tc.path, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (%v)", status, tc.wantStatus, env)
			}
			if env["code"] != tc.wantCode {
				t.Fatalf("code %v, want %q", env["code"], tc.wantCode)
			}
			if msg, _ := env["error"].(string); msg == "" {
				t.Fatal("empty error message")
			}
			if rid, _ := env["request_id"].(string); rid == "" {
				t.Fatal("missing request_id")
			}
		})
	}

	t.Run("draining", func(t *testing.T) {
		srv, ts2, reg := metricsFixture(t, 2000, Config{})
		srv.BeginDrain()
		req, _ := http.NewRequest(http.MethodPost, ts2.URL+"/query",
			strings.NewReader(`{"sql":"SELECT COUNT(*) FROM sales"}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable || env["code"] != "draining" {
			t.Fatalf("drain response %d %v", resp.StatusCode, env)
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		values, _, err := obs.ParseText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if values["verdict_http_shed_total"] != 1 {
			t.Fatalf("shed counter = %g after one drain rejection", values["verdict_http_shed_total"])
		}
	})

	t.Run("saturated", func(t *testing.T) {
		_, ts3, _ := metricsFixture(t, 4000, Config{MaxInFlight: 1, QueueWait: 20 * time.Millisecond})
		// Park the only worker slot on a paced stream, then watch a query
		// time out of the admission queue.
		release := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunks := postStream(t, ts3.URL, StreamRequest{
				SQL: "SELECT AVG(revenue) FROM sales", MinRows: 16, PaceMS: 50,
			})
			if len(chunks) == 0 {
				t.Error("paced stream returned no chunks")
			}
		}()
		go func() { wg.Wait(); close(release) }()

		deadline := time.Now().Add(5 * time.Second)
		for {
			req, _ := http.NewRequest(http.MethodPost, ts3.URL+"/query",
				strings.NewReader(`{"sql":"SELECT COUNT(*) FROM sales"}`))
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var env map[string]any
			dec := json.NewDecoder(resp.Body)
			if err := dec.Decode(&env); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				if env["code"] != "saturated" {
					t.Fatalf("503 code %v, want saturated", env["code"])
				}
				break
			}
			// The stream may not have grabbed its slot yet; retry briefly.
			if time.Now().After(deadline) {
				t.Fatal("never saw a saturated 503 while the stream held the slot")
			}
			select {
			case <-release:
				t.Skip("stream finished before saturation could be observed")
			case <-time.After(5 * time.Millisecond):
			}
		}
		<-release
	})
}

// TestMetricsStorm is the -race consistency check: 8 concurrent sessions
// mixing one-shot queries, progressive streams, and appends, with a rebuild
// landing mid-storm and /metrics scraped throughout. Counters and histogram
// buckets must be monotone across live scrapes, and after quiescing every
// histogram's _count must equal its +Inf bucket.
func TestMetricsStorm(t *testing.T) {
	_, ts, _ := metricsFixture(t, 4000, Config{})

	const workers = 8
	const iters = 3
	var work sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < workers; w++ {
		work.Add(1)
		go func(w int) {
			defer work.Done()
			session := fmt.Sprintf("storm-%d", w)
			for i := 0; i < iters; i++ {
				sql := "SELECT AVG(revenue) FROM sales WHERE week <= 40"
				if w%2 == 0 {
					sql = "SELECT region, SUM(revenue) FROM sales GROUP BY region"
				}
				if code := post(t, ts.URL+"/query", QueryRequest{SQL: sql, Session: session}, nil); code != 200 {
					t.Errorf("worker %d query status %d", w, code)
					return
				}
				chunks := postStream(t, ts.URL, StreamRequest{
					SQL: "SELECT COUNT(*) FROM sales WHERE week >= 10", Session: session, MinRows: 64,
				})
				if len(chunks) == 0 {
					t.Errorf("worker %d empty stream", w)
					return
				}
				if code := post(t, ts.URL+"/append", AppendRequest{Session: session, Rows: [][]any{
					{float64(w), "east", 99.0},
				}}, nil); code != 200 {
					t.Errorf("worker %d append status %d", w, code)
					return
				}
			}
		}(w)
	}

	// One rebuild mid-storm: pinned generations keep in-flight streams
	// coherent; here we only care that its duration lands in the histogram
	// without tripping the race detector.
	work.Add(1)
	go func() {
		defer work.Done()
		time.Sleep(10 * time.Millisecond)
		if code := post(t, ts.URL+"/rebuild", struct{}{}, nil); code != 200 {
			t.Errorf("mid-storm rebuild status %d", code)
		}
	}()

	// Scraper: every counter and histogram bucket/count/sum is monotone
	// from one live scrape to the next.
	scrapeErr := make(chan error, 1)
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		prev := map[string]float64{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			values, types := scrape(t, ts.URL)
			for k, v := range values {
				name := k
				if i := strings.IndexByte(name, '{'); i >= 0 {
					name = name[:i]
				}
				monotone := types[strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_count"), "_sum")] == "histogram" ||
					types[name] == "counter"
				if monotone && v < prev[k] {
					select {
					case scrapeErr <- fmt.Errorf("%s went backwards: %g -> %g", k, prev[k], v):
					default:
					}
					return
				}
				if monotone {
					prev[k] = v
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Wait for the workers, then stop the scraper and surface any
	// monotonicity violation it recorded.
	work.Wait()
	close(stop)
	scraper.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	// Quiesced: full exposition is internally consistent and the storm's
	// traffic is all accounted for.
	values, _ := scrape(t, ts.URL)
	checkHistogramsConsistent(t, values)
	if n := sumMatching(values, "verdict_http_requests_total", `endpoint="/query"`, `status="200"`); n < workers*iters {
		t.Errorf("/query 200 counter = %g, want ≥%d", n, workers*iters)
	}
	if n := sumMatching(values, "verdict_query_stage_duration_seconds_count", `stage="infer"`, `mode="progressive"`); n == 0 {
		t.Error("storm streams left no progressive infer observations")
	}
	if v := values["verdict_streams_active"]; v != 0 {
		t.Errorf("streams_active = %g after quiesce", v)
	}
	if v := values["verdict_http_in_flight"]; v < 0 || v > 1 {
		// Our own scrape may still be counted; anything else leaked.
		t.Errorf("in_flight = %g after quiesce", v)
	}
}
