package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
)

// postStreamPartial POSTs a StreamRequest, reads exactly k chunks, then
// drops the connection — the client-side half of a mid-stream disconnect.
func postStreamPartial(t *testing.T, url string, req StreamRequest, k int) []StreamChunk {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", r.StatusCode)
	}
	var chunks []StreamChunk
	br := bufio.NewReader(r.Body)
	for i := 0; i < k; i++ {
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading chunk %d: %v", i, err)
		}
		var c StreamChunk
		if err := json.Unmarshal(line, &c); err != nil {
			t.Fatalf("chunk %d decode: %v", i, err)
		}
		chunks = append(chunks, c)
	}
	return chunks
}

// normalizeChunks zeroes the only nondeterministic chunk field (wall-clock
// inference overhead) so streams can be compared bit-for-bit.
func normalizeChunks(chunks []StreamChunk) []StreamChunk {
	out := append([]StreamChunk(nil), chunks...)
	for i := range out {
		out[i].OverheadUS = 0
	}
	return out
}

// TestStreamResumeBitIdentical is the serving-layer resume property: kill a
// stream after k chunks, age the server (append + rebuild), resume with the
// last chunk's cursor, and the concatenated chunk sequence must be
// bit-identical — every field, cursor included — to an uninterrupted run on
// an identically seeded server. (Wall-clock overhead_us is the one field
// zeroed before comparison.)
func TestStreamResumeBitIdentical(t *testing.T) {
	sql := "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 30"
	req := StreamRequest{SQL: sql, Session: "alice", MinRows: 256}

	_, _, tsA := fixture(t, 20000, Config{})
	want := postStream(t, tsA.URL, req)
	checkStream(t, "uninterrupted", want)
	if len(want) < 4 {
		t.Fatalf("only %d increments", len(want))
	}
	for i, c := range want {
		if c.Cursor == nil || c.Cursor.RowsSeen != c.RowsSeen || c.Cursor.Seq != c.Seq || c.Cursor.Fingerprint == "" {
			t.Fatalf("chunk %d carries no usable cursor: %+v", i, c.Cursor)
		}
	}

	for _, cut := range []int{1, 2, len(want) - 1} {
		_, sysB, tsB := fixture(t, 20000, Config{})
		// Pace the doomed stream so closing the connection interrupts the
		// server mid-stream (the disconnect cancels the request context
		// during the pace sleep): an unpaced server would finish — and
		// record — the whole stream into the socket buffer before the
		// client's close lands. Pacing is not part of the cursor
		// fingerprint, so the chunks are unaffected.
		killedReq := req
		killedReq.PaceMS = 100
		killed := postStreamPartial(t, tsB.URL, killedReq, cut)
		// Age server B past the stream's snapshot before resuming.
		if code := post(t, tsB.URL+"/append", AppendRequest{Generate: 1500}, nil); code != 200 {
			t.Fatal("append failed")
		}
		if code := post(t, tsB.URL+"/rebuild", struct{}{}, nil); code != 200 {
			t.Fatal("rebuild failed")
		}

		resumeReq := req
		resumeReq.Cursor = killed[cut-1].Cursor
		resumed := postStream(t, tsB.URL, resumeReq)
		got := normalizeChunks(append(killed, resumed...))
		for i, w := range normalizeChunks(want) {
			gj, _ := json.Marshal(got[i])
			wj, _ := json.Marshal(w)
			if !bytes.Equal(gj, wj) {
				t.Fatalf("cut %d chunk %d differs:\n got  %s\n want %s", cut, i, gj, wj)
			}
		}
		// The resumed stream finished naturally: one progressive stream, one
		// resumption, and the full-sample answer recorded once.
		st := sysB.StatsSnapshot()
		if st.Progressive != 1 || st.Resumed != 1 || st.Increments != len(want) {
			t.Fatalf("cut %d: stats %+v", cut, st)
		}
		if sysB.Verdict().SnippetCount() == 0 {
			t.Fatalf("cut %d: resumed stream recorded nothing at exhaustion", cut)
		}
	}
}

// TestStreamTargetCI: a target_ci stream must close with stop_reason
// "target" at exactly the first increment whose raw CI meets the target,
// record nothing, and leave natural exhaustion untouched for unreachable
// targets.
func TestStreamTargetCI(t *testing.T) {
	sql := "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 30"
	_, _, tsRef := fixture(t, 20000, Config{})
	ref := postStream(t, tsRef.URL, StreamRequest{SQL: sql, MinRows: 256})
	if len(ref) < 4 {
		t.Fatalf("only %d increments", len(ref))
	}
	stopAt := 2
	target := ref[stopAt].RawCI

	_, sys, ts := fixture(t, 20000, Config{})
	chunks := postStream(t, ts.URL, StreamRequest{SQL: sql, MinRows: 256, TargetCI: target})
	if len(chunks) != stopAt+1 {
		t.Fatalf("target stream sent %d chunks, want %d", len(chunks), stopAt+1)
	}
	last := chunks[len(chunks)-1]
	if last.StopReason != "target" || last.Final || last.RawCI > target {
		t.Fatalf("closing chunk: stop_reason=%q final=%v raw_ci=%v (target %v)", last.StopReason, last.Final, last.RawCI, target)
	}
	for i, c := range chunks[:len(chunks)-1] {
		if c.StopReason != "" || c.RawCI <= target {
			t.Fatalf("chunk %d: stop_reason=%q raw_ci=%v under target %v", i, c.StopReason, c.RawCI, target)
		}
	}
	if sys.Verdict().SnippetCount() != 0 {
		t.Fatal("target-stopped stream recorded a partial answer into the synopsis")
	}

	// Relative target: 1% of the estimate is far looser than the final CI
	// here, so the stream stops early with the same contract.
	_, _, ts2 := fixture(t, 20000, Config{})
	rel := postStream(t, ts2.URL, StreamRequest{SQL: sql, MinRows: 256, TargetRelative: true, TargetCI: ref[stopAt].RawCI / ref[stopAt].RawEstimate})
	if got := rel[len(rel)-1]; got.StopReason != "target" || got.Seq != stopAt {
		t.Fatalf("relative target closed with %+v, want stop at seq %d", got, stopAt)
	}

	// An unreachable target exhausts the sample normally (final, recorded).
	_, sys3, ts3 := fixture(t, 20000, Config{})
	full := postStream(t, ts3.URL, StreamRequest{SQL: sql, MinRows: 256, TargetCI: 1e-12})
	checkStream(t, "unreachable target", full)
	if sys3.Verdict().SnippetCount() == 0 {
		t.Fatal("exhausted stream recorded nothing")
	}
}

// horizonFixture builds a server whose system bounds retired generations —
// exercising the core.Config wiring end to end.
func horizonFixture(t *testing.T, rows, maxGens int) (*Server, *core.System, *httptest.Server) {
	t.Helper()
	tb := salesTable(t, rows, 42)
	sample, err := aqp.BuildSample(tb, 0.2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), core.Config{MaxRetainedGens: maxGens})
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, sys, ts
}

// TestStreamBehindHorizon410: a cursor whose generation was evicted past
// MaxRetainedGens gets the structured 410 (code "behind_replay_horizon"
// plus the current horizon), /stats reports the horizon, and memory for
// retired generations stays bounded.
func TestStreamBehindHorizon410(t *testing.T) {
	sql := "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 30"
	req := StreamRequest{SQL: sql, MinRows: 256}
	_, sys, ts := horizonFixture(t, 20000, 1)

	killed := postStreamPartial(t, ts.URL, req, 2)
	cursor := killed[1].Cursor
	if cursor.SampleGen != 0 {
		t.Fatalf("first stream served generation %d", cursor.SampleGen)
	}
	// Two rebuilds retire generations 0 and 1; the bound of 1 evicts 0.
	for i := 0; i < 2; i++ {
		if code := post(t, ts.URL+"/rebuild", struct{}{}, nil); code != 200 {
			t.Fatal("rebuild failed")
		}
	}
	if got, h := sys.Engine().RetainedGens(), sys.Engine().ReplayHorizon(); got != 1 || h != 1 {
		t.Fatalf("retained %d generations, horizon %d; want 1 and 1", got, h)
	}

	resumeReq := req
	resumeReq.Cursor = cursor
	body, _ := json.Marshal(resumeReq)
	r, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Fatalf("behind-horizon resume status %d, want 410", r.StatusCode)
	}
	var gone GoneResponse
	if err := json.NewDecoder(r.Body).Decode(&gone); err != nil {
		t.Fatal(err)
	}
	if gone.Code != "behind_replay_horizon" || gone.ReplayHorizon != 1 || gone.Error == "" {
		t.Fatalf("structured 410 body %+v", gone)
	}

	// /stats carries the horizon triple.
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Sample.ReplayHorizon != 1 || st.Sample.RetainedGens != 1 || st.Sample.MaxRetainedGens != 1 {
		t.Fatalf("stats sample %+v", st.Sample)
	}

	// A fresh stream on the live generation still resumes fine.
	killed = postStreamPartial(t, ts.URL, req, 1)
	resumeReq.Cursor = killed[0].Cursor
	resumed := postStream(t, ts.URL, resumeReq)
	if len(resumed) == 0 || !resumed[len(resumed)-1].Final {
		t.Fatalf("live-generation resume: %d chunks", len(resumed))
	}
}

// TestStreamPinHoldsHorizonOpen: a live stream pins its generation, so
// rebuild pressure cannot move the replay horizon past it; the pin lifts
// when the stream completes.
func TestStreamPinHoldsHorizonOpen(t *testing.T) {
	sql := "SELECT AVG(revenue) FROM sales WHERE week BETWEEN 10 AND 30"
	_, sys, ts := horizonFixture(t, 20000, 1)

	body, _ := json.Marshal(StreamRequest{SQL: sql, MinRows: 64, PaceMS: 50})
	resp, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	// The paced stream is alive on generation 0; pile on rebuilds.
	for i := 0; i < 3; i++ {
		if code := post(t, ts.URL+"/rebuild", struct{}{}, nil); code != 200 {
			t.Fatal("rebuild failed")
		}
	}
	if h := sys.Engine().ReplayHorizon(); h != 0 {
		t.Fatalf("replay horizon %d while a live stream pins generation 0", h)
	}
	// Drain the stream; once the handler returns, the pin lifts and the
	// bound of 1 takes effect.
	for {
		if _, err := br.ReadBytes('\n'); err != nil {
			break
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for sys.Engine().ReplayHorizon() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("horizon still %d after the stream completed", sys.Engine().ReplayHorizon())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := sys.Engine().RetainedGens(); got != 1 {
		t.Fatalf("retained %d generations after release, want 1", got)
	}
}

// TestStreamRequestValidation: malformed stream requests are rejected with
// 400 before any work happens.
func TestStreamRequestValidation(t *testing.T) {
	_, _, ts := fixture(t, 2000, Config{})
	sql := "SELECT AVG(revenue) FROM sales"
	fp := streamFingerprint(sql, 0)
	cases := []struct {
		name string
		req  StreamRequest
		want string
	}{
		{"missing sql", StreamRequest{}, "missing sql"},
		{"negative min_rows", StreamRequest{SQL: sql, MinRows: -1}, "min_rows"},
		{"negative pace_ms", StreamRequest{SQL: sql, PaceMS: -5}, "pace_ms"},
		{"negative target_ci", StreamRequest{SQL: sql, TargetCI: -0.5}, "target_ci"},
		{"relative without target", StreamRequest{SQL: sql, TargetRelative: true}, "target_relative"},
		{"cursor negative rows_seen", StreamRequest{SQL: sql, Cursor: &StreamCursor{SampleRows: 10, RowsSeen: -1, Fingerprint: fp}}, "malformed"},
		{"cursor zero sample_rows", StreamRequest{SQL: sql, Cursor: &StreamCursor{RowsSeen: 1, Fingerprint: fp}}, "malformed"},
		{"cursor missing fingerprint", StreamRequest{SQL: sql, Cursor: &StreamCursor{SampleRows: 10, RowsSeen: 1}}, "fingerprint"},
		{"cursor fingerprint mismatch", StreamRequest{SQL: sql, Cursor: &StreamCursor{SampleRows: 10, RowsSeen: 1, Fingerprint: "beef"}}, "fingerprint"},
		{"cursor off schedule", StreamRequest{SQL: sql, MinRows: 0, Cursor: &StreamCursor{SampleRows: 400, BaseRows: 2000, RowsSeen: 3, Seq: 0, Fingerprint: fp}}, "schedule"},
	}
	for _, tc := range cases {
		body, _ := json.Marshal(tc.req)
		r, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, r.StatusCode)
		}
		if !strings.Contains(e.Error, tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, e.Error, tc.want)
		}
	}
	// min_rows/pace_ms of zero stay valid (engine defaults).
	chunks := postStream(t, ts.URL, StreamRequest{SQL: sql})
	checkStream(t, "defaults", chunks)
}

// TestStreamMidStreamErrorChunk: an execution failure after chunks have
// been flushed must terminate the NDJSON body with an explicit error chunk
// (stop_reason "error"), not a silent truncation.
func TestStreamMidStreamErrorChunk(t *testing.T) {
	srv, _, ts := fixture(t, 20000, Config{})
	srv.streamFault = func(seq int) error {
		if seq == 1 {
			return errors.New("injected scan failure")
		}
		return nil
	}
	chunks := postStream(t, ts.URL, StreamRequest{SQL: "SELECT AVG(revenue) FROM sales", MinRows: 256})
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want the first increment plus the terminal error chunk", len(chunks))
	}
	if chunks[0].Error != "" || chunks[0].Seq != 0 {
		t.Fatalf("first chunk %+v", chunks[0])
	}
	last := chunks[1]
	if last.StopReason != "error" || !strings.Contains(last.Error, "injected scan failure") || last.Final {
		t.Fatalf("terminal chunk %+v", last)
	}
}

// TestStreamResumeAcrossStormSurvivesReplay: resumed chunks replay through
// ViewAtGen + ExecuteViewPrefix exactly like first-run chunks do.
func TestStreamResumeReplay(t *testing.T) {
	sql := "SELECT COUNT(*) FROM sales WHERE region = 'east'"
	req := StreamRequest{SQL: sql, MinRows: 256}
	_, sys, ts := fixture(t, 20000, Config{})
	killed := postStreamPartial(t, ts.URL, req, 2)
	resumeReq := req
	resumeReq.Cursor = killed[1].Cursor
	resumed := postStream(t, ts.URL, resumeReq)
	for _, c := range append(killed, resumed...) {
		view := sys.Engine().ViewAtGen(c.SampleGen, c.BaseRows, c.SampleRows)
		if view == nil {
			t.Fatalf("generation %d unavailable", c.SampleGen)
		}
		rep, err := sys.ExecuteViewPrefix(view, sql, c.RowsSeen)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Rows[0].Cells[0].Raw
		want := c.Rows[0].Cells[0]
		if got.Value != want.RawValue || got.StdErr != want.RawStdErr {
			t.Fatalf("chunk seq %d: replay (%v ± %v) != served (%v ± %v)",
				c.Seq, got.Value, got.StdErr, want.RawValue, want.RawStdErr)
		}
	}
	if fmt.Sprint(resumed[len(resumed)-1].RowsSeen) != fmt.Sprint(resumed[len(resumed)-1].SampleRows) {
		t.Fatal("resumed stream did not exhaust the sample")
	}
}
