package server

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Per-request observability: every route is wrapped by instrument, which
// assigns (or honors) a request ID, echoes it as X-Request-ID, captures the
// response status, and — when a logger or registry is configured — emits
// one structured request log line and the per-endpoint latency/status
// metrics. Handlers annotate the request with their resolved session
// (noteSession) so the log line can carry both IDs.

// reqMeta is the per-request context payload. One goroutine owns a request
// end to end, so plain fields suffice: handlers write session before the
// middleware reads it after they return.
type reqMeta struct {
	id      string
	session string
}

type reqMetaKey struct{}

// requestID returns the request's assigned ID ("" outside instrumented
// handlers, e.g. in direct unit-test calls).
func requestID(r *http.Request) string {
	if m, ok := r.Context().Value(reqMetaKey{}).(*reqMeta); ok {
		return m.id
	}
	return ""
}

// noteSession records the session a handler resolved, for the request log.
func noteSession(r *http.Request, session string) {
	if m, ok := r.Context().Value(reqMetaKey{}).(*reqMeta); ok {
		m.session = session
	}
}

// maxClientRequestID bounds how long a client-supplied X-Request-ID may be
// before the server mints its own instead (log lines stay bounded).
const maxClientRequestID = 64

// statusWriter captures the response status for metrics and logging. It
// passes Flush through to the underlying writer — the NDJSON stream
// type-asserts http.Flusher, so dropping it would silently break
// progressive delivery.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route with the request-scoped observability: request
// ID, status capture, per-endpoint metrics (latency histogram, status
// counter, in-flight gauge) and the structured request log line. endpoint
// is the metrics label — the route pattern, never the raw URL path, so the
// label set stays bounded.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := &reqMeta{id: r.Header.Get("X-Request-ID")}
		if m.id == "" || len(m.id) > maxClientRequestID {
			m.id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", m.id)
		r = r.WithContext(context.WithValue(r.Context(), reqMetaKey{}, m))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if s.metrics != nil {
			s.metrics.inFlight.Add(1)
		}
		h(sw, r)
		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if s.metrics != nil {
			s.metrics.inFlight.Add(-1)
			s.metrics.requests.With(endpoint, strconv.Itoa(status)).Inc()
			s.metrics.reqLatency.With(endpoint).Observe(dur.Seconds())
		}
		if s.log != nil {
			lvl := slog.LevelInfo
			switch {
			case status >= 500:
				lvl = slog.LevelError
			case status >= 400:
				lvl = slog.LevelWarn
			}
			s.log.LogAttrs(r.Context(), lvl, "request",
				slog.String("request_id", m.id),
				slog.String("session", m.session),
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.Int("status", status),
				slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)),
			)
		}
	}
}
