package experiments

import (
	"fmt"
	"time"

	"repro/internal/aqp"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
)

func init() { register("scanbench", ScanBench) }

// ScanBench measures the engine's two scan implementations head to head: the
// legacy row-at-a-time loop versus the vectorized block pipeline (zone-map
// pruning + selection vectors + data-parallel workers). It is not a paper
// artifact; it documents the scan-engine refactor's win on this hardware,
// over both a clustered layout (where zone maps prune) and a shuffled layout
// (where only vectorization and data-parallelism help). Each case's ns/op
// lands in Report.Metrics, which verdict-bench -json persists
// (BENCH_scan.json) — the CI perf-trajectory artifact for the scan engine.
func ScanBench(o Options) (*Report, error) {
	rows := 200_000
	if o.Scale == Full {
		rows = 1_000_000
	}
	rep := &Report{
		ID:      "scanbench",
		Title:   "Scan engine: row-at-a-time vs vectorized block scan",
		Columns: []string{"layout", "mode", "rows", "scan time", "Mrows/s", "speedup"},
	}
	for _, clustered := range []bool{true, false} {
		tb, sn, err := scanBenchFixture(rows, clustered, o.Seed)
		if err != nil {
			return nil, err
		}
		sample := &aqp.Sample{Data: tb, Fraction: 1, BatchSize: tb.Rows(), BaseRows: tb.Rows()}
		engine := aqp.NewEngine(tb, sample, aqp.CachedCost)
		layout := "clustered"
		if !clustered {
			layout = "shuffled"
		}
		var rowTime time.Duration
		for _, mode := range []aqp.ScanMode{aqp.ScanRowAtATime, aqp.ScanVectorized} {
			engine.SetScanMode(mode)
			engine.RunToCompletion([]*query.Snippet{sn}) // warm-up
			const reps = 3
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				engine.RunToCompletion([]*query.Snippet{sn})
			}
			el := time.Since(t0) / reps
			name, speedup := "row-at-a-time", ""
			if mode == aqp.ScanVectorized {
				name = "vectorized"
				if el > 0 {
					speedup = fmt.Sprintf("%.1fx", float64(rowTime)/float64(el))
				}
			} else {
				rowTime = el
			}
			rep.Add(layout, name, fmt.Sprintf("%d", rows), el.Round(time.Microsecond).String(),
				fmtF(float64(rows)/el.Seconds()/1e6), speedup)
			rep.Metric(fmt.Sprintf("%s/%s", layout, name), float64(el.Nanoseconds()))
		}
	}
	rep.Note("selective predicate (~5%% of the domain); vectorized path uses zone-map pruning, selection vectors and GOMAXPROCS block workers")
	return rep, nil
}

// scanBenchFixture builds an AVG snippet with a selective numeric predicate
// over a synthetic 3-column relation. clustered keeps the constrained
// dimension sorted (blocks prune); otherwise rows are shuffled.
func scanBenchFixture(rows int, clustered bool, seed int64) (*storage.Table, *query.Snippet, error) {
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "x", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "grp", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "v", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("scanbench", schema)
	rng := randx.New(seed + 41)
	order := make([]int, rows)
	for i := range order {
		order[i] = i
	}
	if !clustered {
		rng.Shuffle(rows, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	groups := []string{"a", "b", "c", "d"}
	for _, i := range order {
		x := float64(i) / float64(rows) * 100 // domain [0, 100)
		if err := tb.AppendRow([]storage.Value{
			storage.Num(x),
			storage.Str(groups[i%len(groups)]),
			storage.Num(10 + x + rng.Normal(0, 1)),
		}); err != nil {
			return nil, nil, err
		}
	}
	xcol, _ := schema.Lookup("x")
	vcol, _ := schema.Lookup("v")
	g := query.NewRegion(schema)
	g.ConstrainNum(xcol, query.NumRange{Lo: 42, Hi: 47}) // ~5% selectivity
	sn := &query.Snippet{
		Kind:       query.AvgAgg,
		MeasureKey: "v",
		Measure: func(t *storage.Table, row int) float64 {
			return t.NumAt(row, vcol)
		},
		Region: g,
		Table:  tb,
	}
	return tb, sn, nil
}
