// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section 8 and Appendices A–E). Each runner generates
// its workload, drives the AQP engine and Verdict, and emits a Report whose
// rows mirror the artifact's rows/series. cmd/verdict-bench prints them;
// bench_test.go wraps them as testing.B benchmarks; EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects experiment sizing: Small keeps unit tests fast; Full is the
// default for verdict-bench and the benchmark suite.
type Scale int

// Scales.
const (
	Small Scale = iota
	Full
)

// Options parameterizes a run.
type Options struct {
	Scale Scale
	Seed  int64
}

// Report is one experiment's rendered result.
type Report struct {
	ID      string   // e.g. "table4", "figure6a"
	Title   string   // paper artifact title
	Columns []string // header
	Rows    [][]string
	Notes   []string // caveats, substitutions, expected shapes
	// Metrics, when populated, is the machine-readable companion of Rows —
	// one scalar per benchmark case (e.g. ns/op keyed by case name).
	// cmd/verdict-bench's -json flag persists it for trend tracking.
	Metrics map[string]float64
}

// Metric records one machine-readable scalar, allocating Metrics on first
// use.
func (r *Report) Metric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[key] = v
}

// Add appends a formatted row.
func (r *Report) Add(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Note appends a free-form note.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Runner is one experiment.
type Runner func(Options) (*Report, error)

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// Get returns the runner for an experiment id.
func Get(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// IDs lists registered experiments in a stable order.
func IDs() []string {
	out := append([]string(nil), registryOrder...)
	sort.Strings(out)
	return out
}

// fmtF renders a float with sensible precision for report cells.
func fmtF(v float64) string { return fmt.Sprintf("%.3g", v) }

// fmtPct renders a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// fmtX renders a speedup multiplier.
func fmtX(v float64) string { return fmt.Sprintf("%.1f×", v) }
