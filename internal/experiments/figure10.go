package experiments

import (
	"math"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
	"repro/internal/workload"
)

func init() { register("figure10", Figure10VsCaching) }

// Figure10VsCaching reproduces Appendix C.1's Figure 10: Verdict against
// Baseline2, a NoLearn variant that replays cached answers for *identical*
// past queries. Panel (a) varies the sample size used for past queries;
// panel (b) varies the fraction of novel (never-seen) queries in the test
// workload. Verdict benefits novel queries; Baseline2 cannot.
func Figure10VsCaching(o Options) (*Report, error) {
	r := &Report{
		ID:    "figure10",
		Title: "Verdict vs Baseline2 (answer caching)",
		Columns: []string{"Panel", "Setting", "Baseline2 reduction",
			"Verdict reduction"},
	}
	rows := 60000
	if o.Scale == Small {
		rows = 20000
	}
	tb, err := workload.GenerateTPCH(rows, o.Seed+101)
	if err != nil {
		return nil, err
	}

	// Panel (a): sample-size sweep at a fixed 50% novel-query ratio.
	fracs := []float64{0.01, 0.05, 0.1, 0.3}
	if o.Scale == Small {
		fracs = []float64{0.05, 0.3}
	}
	for _, frac := range fracs {
		b2, vr, err := cachingComparison(tb, frac, 0.5, o.Seed+102)
		if err != nil {
			return nil, err
		}
		r.Add("(a) sample size", fmtPct(frac), fmtPct(b2), fmtPct(vr))
	}

	// Panel (b): novel-query ratio sweep at a fixed sample size.
	ratios := []float64{0, 0.25, 0.5, 0.75, 1.0}
	if o.Scale == Small {
		ratios = []float64{0, 0.5, 1.0}
	}
	for _, novel := range ratios {
		b2, vr, err := cachingComparison(tb, 0.2, novel, o.Seed+103)
		if err != nil {
			return nil, err
		}
		r.Add("(b) novel ratio", fmtPct(novel), fmtPct(b2), fmtPct(vr))
	}
	r.Note("expected shape (paper Fig. 10): Verdict ≥ Baseline2 everywhere; Baseline2 collapses toward 0 as the novel-query ratio approaches 100%%, Verdict degrades gracefully")
	return r, nil
}

// cachingComparison trains both systems on one set of past queries and
// measures actual-error reduction over NoLearn on a test set with the given
// fraction of novel queries (the rest are verbatim repeats of past ones).
func cachingComparison(tb *storage.Table, frac, novelRatio float64, seed int64) (baseline2, verdict float64, err error) {
	sample, err := aqp.BuildSample(tb, frac, 0, seed)
	if err != nil {
		return 0, 0, err
	}
	engine := aqp.NewEngine(tb, sample, aqp.CachedCost)

	const past, test = 30, 30
	pastSQL := workload.TPCHWorkload(past, seed+1)
	novelSQL := workload.TPCHWorkload(test, seed+2)

	v := core.New(tb, core.Config{})
	cache := aqp.NewAnswerCache()
	// Process past queries: record into both the synopsis and the cache.
	for _, sql := range pastSQL {
		snips, err := snippetsOf(engine, sql, v.Config().Nmax)
		if err != nil {
			return 0, 0, err
		}
		upd := engine.RunToCompletion(snips)
		for i, sn := range snips {
			if upd.Valid[i] {
				v.Record(sn, upd.Estimates[i])
				cache.Store(sn, upd.Estimates[i])
			}
		}
	}
	if err := v.Train(); err != nil {
		return 0, 0, err
	}

	// Test set: novelRatio fresh queries, the rest repeats of past ones.
	rng := randx.New(seed + 3)
	var rawErr, b2Err, vErr float64
	n := 0
	for i := 0; i < test; i++ {
		sql := pastSQL[rng.Intn(len(pastSQL))]
		if rng.Bool(novelRatio) {
			sql = novelSQL[i]
		}
		snips, err := snippetsOf(engine, sql, v.Config().Nmax)
		if err != nil {
			return 0, 0, err
		}
		// A noisier (prefix) raw answer: stop online aggregation early so
		// there is headroom for both systems to improve.
		var upd aqp.BatchUpdate
		engine.OnlineAggregate(snips, func(u aqp.BatchUpdate) bool {
			upd = u
			return u.Batch < 2
		})
		for si, sn := range snips {
			if !upd.Valid[si] {
				continue
			}
			exact := engine.Exact(sn)
			den := math.Abs(exact)
			if sn.Kind == query.FreqAgg && exact < minExactFreq {
				continue
			}
			if den < 1e-9 {
				continue
			}
			raw := aqp.Sanitize(upd.Estimates[si])
			// Baseline2: replay the cached answer when the snippet repeats
			// and the cached error beats the current raw error.
			b2 := raw
			if cached, ok := cache.Lookup(sn); ok && cached.StdErr < raw.StdErr {
				b2 = cached
			}
			inf := v.Infer(sn, raw)
			rawErr += math.Abs(raw.Value-exact) / den
			b2Err += math.Abs(b2.Value-exact) / den
			vErr += math.Abs(inf.Answer-exact) / den
			n++
		}
	}
	if n == 0 || rawErr == 0 {
		return 0, 0, nil
	}
	return reduction(rawErr, b2Err), reduction(rawErr, vErr), nil
}
