package experiments

import (
	"fmt"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
)

func init() { register("notifybench", NotifyBench) }

// NotifyBench measures the continuous-query fan-out: the latency of one
// notify batch (shared incremental scan + threshold-gated pushes) as the
// subscriber count K grows. Because standing plans are deduplicated and
// the scan is shared, the batch cost should be nearly flat in K — pushes
// are queue inserts, the scan dominates. Not a paper artifact; it tracks
// the push path's cost on this hardware. Per-K ns/batch lands in
// Report.Metrics, which verdict-bench -json persists (BENCH_notify.json)
// — the CI perf-trajectory artifact for the notify subsystem.
func NotifyBench(o Options) (*Report, error) {
	rows := 100_000
	appends := 20
	if o.Scale == Full {
		rows = 500_000
		appends = 50
	}
	const sql = "SELECT AVG(v) FROM t WHERE x BETWEEN 10 AND 60"

	rep := &Report{
		ID:      "notifybench",
		Title:   "Continuous queries: notify-batch latency vs subscriber fan-out",
		Columns: []string{"subscribers", "appends", "batch p50-ish (mean)", "scans", "pushes"},
	}

	for _, k := range []int{1, 8, 64} {
		tb, err := progressiveBenchTable(rows, o.Seed)
		if err != nil {
			return nil, err
		}
		sample, err := aqp.BuildSample(tb, 0.5, 0, o.Seed+1)
		if err != nil {
			return nil, err
		}
		sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), core.Config{})
		var total time.Duration
		var batches int
		sys.SetNotifyHook(func(_ string, d time.Duration) {
			total += d
			batches++
		})
		subs := make([]*core.Subscription, k)
		for i := range subs {
			// Large queues so no push blocks on coalescing bookkeeping; the
			// subscribers are idle (nobody reads), which is the worst case
			// for queue growth and the common case for open dashboards.
			if subs[i], err = sys.Subscribe(sql, core.SubscribeOptions{Queue: appends + 2}); err != nil {
				return nil, err
			}
		}
		for i := 0; i < appends; i++ {
			batch, err := progressiveBenchTable(1000, o.Seed+int64(100+i))
			if err != nil {
				return nil, err
			}
			if _, err := sys.Append(batch); err != nil {
				return nil, err
			}
		}
		for _, sub := range subs {
			sub.Close()
		}
		if batches != appends {
			return nil, fmt.Errorf("notifybench: %d batches for %d appends", batches, appends)
		}
		st := sys.StatsSnapshot()
		mean := total / time.Duration(batches)
		rep.Add(fmt.Sprintf("%d", k), fmt.Sprintf("%d", appends),
			mean.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", st.NotifyScans), fmt.Sprintf("%d", st.NotifyPushes))
		rep.Metric(fmt.Sprintf("subs=%d/batchns", k), float64(mean.Nanoseconds()))
		rep.Metric(fmt.Sprintf("subs=%d/pushes", k), float64(st.NotifyPushes))
	}
	// The grouped fan-out: K subscribers on one GROUP BY plan over G groups.
	// The shared scan is the grouped discovery fold (per-group master
	// accumulators carried across appends), so the batch cost tracks G in
	// the push/compose step but stays flat in K like the flat case.
	const nGroups = 16
	const gsql = "SELECT cat, AVG(val), COUNT(*) FROM t GROUP BY cat"
	for _, k := range []int{1, 8, 64} {
		tb, err := groupedBenchTable(rows, nGroups, false, o.Seed)
		if err != nil {
			return nil, err
		}
		sample, err := aqp.BuildSample(tb, 0.5, 0, o.Seed+1)
		if err != nil {
			return nil, err
		}
		sys := core.NewSystem(aqp.NewEngine(tb, sample, aqp.CachedCost), core.Config{})
		var total time.Duration
		var batches int
		sys.SetNotifyHook(func(_ string, d time.Duration) {
			total += d
			batches++
		})
		subs := make([]*core.Subscription, k)
		for i := range subs {
			if subs[i], err = sys.Subscribe(gsql, core.SubscribeOptions{Queue: appends + 2}); err != nil {
				return nil, err
			}
		}
		for i := 0; i < appends; i++ {
			batch, err := groupedBenchTable(1000, nGroups, false, o.Seed+int64(500+i))
			if err != nil {
				return nil, err
			}
			if _, err := sys.Append(batch); err != nil {
				return nil, err
			}
		}
		for _, sub := range subs {
			sub.Close()
		}
		if batches != appends {
			return nil, fmt.Errorf("notifybench: grouped %d batches for %d appends", batches, appends)
		}
		st := sys.StatsSnapshot()
		mean := total / time.Duration(batches)
		rep.Add(fmt.Sprintf("%d (grouped ×%d)", k, nGroups), fmt.Sprintf("%d", appends),
			mean.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", st.NotifyScans), fmt.Sprintf("%d", st.NotifyPushes))
		rep.Metric(fmt.Sprintf("grouped-subs=%d/batchns", k), float64(mean.Nanoseconds()))
		rep.Metric(fmt.Sprintf("grouped-subs=%d/pushes", k), float64(st.NotifyPushes))
	}
	rep.Note("one shared incremental scan per batch regardless of K; %d-row appends into a %d-row relation; grouped cases stand one %d-group GROUP BY plan", 1000, rows, nGroups)
	return rep, nil
}
