package experiments

import (
	"fmt"

	"repro/internal/workload"
)

func init() { register("figure13", Figure13IntertupleCovariance) }

// Figure13IntertupleCovariance reproduces Appendix E's Figure 13: the
// distribution of normalized inter-tuple covariances (adjacent-value
// correlations after sorting one column by another) across 16 UCI-style
// datasets, bucketed exactly as the paper's histogram (-0.2 to 1.0 in 0.1
// steps).
func Figure13IntertupleCovariance(o Options) (*Report, error) {
	r := &Report{
		ID:      "figure13",
		Title:   "Prevalence of inter-tuple covariances (UCI-style datasets)",
		Columns: []string{"Correlation bucket", "Share of column pairs"},
	}
	var all []float64
	for i, name := range workload.UCIDatasetNames {
		tb, err := workload.GenerateUCILike(name, i, o.Seed+131)
		if err != nil {
			return nil, err
		}
		all = append(all, workload.AllAdjacentCorrelations(tb)...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("figure13: no correlations computed")
	}
	// Buckets: [-0.2,-0.1), ..., [0.9,1.0].
	const lo = -0.2
	counts := make([]int, 12)
	outside := 0
	for _, c := range all {
		idx := int((c - lo) / 0.1)
		if idx < 0 || idx >= len(counts) {
			outside++
			continue
		}
		counts[idx]++
	}
	for i, n := range counts {
		b0 := lo + float64(i)*0.1
		r.Add(fmt.Sprintf("[%.1f, %.1f)", b0, b0+0.1),
			fmtPct(float64(n)/float64(len(all))))
	}
	if outside > 0 {
		r.Note("%d of %d pairs fell outside [-0.2, 1.0]", outside, len(all))
	}
	r.Note("expected shape (paper Fig. 13): most mass at small positive correlations with a long positive tail — non-zero inter-tuple covariance is pervasive")
	return r, nil
}
