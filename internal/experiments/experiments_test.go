package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunSmall smoke-runs every registered experiment at
// Small scale and checks basic report integrity.
func TestAllExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite takes minutes; skipped with -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel() // experiments are independent and CPU-bound
			r, ok := Get(id)
			if !ok {
				t.Fatalf("runner %s missing", id)
			}
			rep, err := r(Options{Scale: Small, Seed: 1})
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if rep.ID != id {
				t.Fatalf("report id %q != %q", rep.ID, id)
			}
			if len(rep.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Columns) {
					t.Fatalf("%s row width %d != %d columns", id, len(row), len(rep.Columns))
				}
			}
			out := rep.String()
			if !strings.Contains(out, rep.Title) {
				t.Fatalf("%s render missing title", id)
			}
			t.Logf("\n%s", out)
		})
	}
}

// TestRegistryComplete checks every paper artifact has a runner.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table3", "table4", "table5",
		"figure1", "figure4", "figure5",
		"figure6a", "figure6b", "figure6c", "figure6d",
		"figure7", "figure9", "figure10", "figure11", "figure12", "figure13",
		"ablation", "scanbench", "groupedbench", "progressivebench",
		"notifybench", "partitionbench",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

// TestTable3MatchesPaperNumbers verifies the classification percentages at
// full trace size.
func TestTable3MatchesPaperNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace classification; skipped with -short")
	}
	rep, err := Table3Generality(Options{Scale: Full, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Customer1 row: percentage ≈ 73.7%.
	c1 := rep.Rows[0]
	pct, err := strconv.ParseFloat(strings.TrimSuffix(c1[3], "%"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if pct < 72.5 || pct > 75 {
		t.Fatalf("Customer1 supported pct=%v, want ~73.7", pct)
	}
	// TPC-H row: 14 of 21.
	th := rep.Rows[1]
	if th[1] != "21" || th[2] != "14" {
		t.Fatalf("TPC-H row=%v, want 21/14", th)
	}
}

// TestFigure5BoundsCalibrated asserts the headline claim of Figure 5 at
// small scale: the overwhelming majority of actual errors fall inside the
// 95%-confidence bounds. (The pre-fix pathology was ratios of 20–40 and
// coverage near zero in the tight buckets; a residual tail from kernel
// misspecification at ~45 training queries is acceptable.)
func TestFigure5BoundsCalibrated(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a full model; skipped with -short")
	}
	rep, err := Figure5ConfidenceIntervals(Options{Scale: Small, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var inBound, total float64
	for _, row := range rep.Rows {
		pairs, err1 := strconv.ParseFloat(row[1], 64)
		cov, err2 := strconv.ParseFloat(strings.TrimSuffix(row[5], "%"), 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad cells %v", row)
		}
		inBound += pairs * cov / 100
		total += pairs
		p95, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad p95 cell %q", row[4])
		}
		if p95 > 5.0 {
			t.Errorf("bucket %s: p95 ratio %v wildly above 1 — bounds not calibrated", row[0], p95)
		}
	}
	if total == 0 {
		t.Fatal("no pairs")
	}
	if coverage := inBound / total; coverage < 0.85 {
		t.Fatalf("overall coverage %.2f below 0.85", coverage)
	}
}

// TestFigure9ValidationShape asserts validation keeps p95 ratios bounded
// even at the worst parameter scale, and that disabling it lets them blow
// up somewhere.
func TestFigure9ValidationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a full model; skipped with -short")
	}
	rep, err := Figure9ModelValidation(Options{Scale: Small, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	anyBlowupNoVal := false
	for _, row := range rep.Rows {
		noVal, err1 := strconv.ParseFloat(row[1], 64)
		withVal, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad cells %v", row)
		}
		if noVal > 2.5 {
			anyBlowupNoVal = true
		}
		// Validation cannot make a deliberately mis-scaled model's rare
		// accepted answers fully calibrated (acceptance is a probabilistic
		// filter), but it must cut the tail by an order of magnitude
		// relative to the unvalidated arm.
		if withVal > 2.5 {
			t.Errorf("scale %s: validated p95 ratio %v too high (no-validation arm: %v)", row[0], withVal, noVal)
		}
	}
	if !anyBlowupNoVal {
		t.Log("warning: no blow-up without validation at small scale (acceptable but unexpected)")
	}
}
