package experiments

import (
	"strconv"

	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func init() { register("table3", Table3Generality) }

// Table3Generality reproduces Table 3: the fraction of aggregate queries in
// each workload that Verdict's query type checker supports. The Customer1
// trace is the calibrated simulation described in DESIGN.md; TPC-H is the
// 22-template classification.
func Table3Generality(o Options) (*Report, error) {
	r := &Report{
		ID:      "table3",
		Title:   "Generality of Verdict (supported-query fractions)",
		Columns: []string{"Dataset", "Queries w/ Aggregates", "Supported", "Percentage"},
	}

	// Customer1-like trace.
	spec := workload.DefaultCustomer1TraceSpec()
	if o.Scale == Small {
		spec.Queries = 500
	}
	spec.Seed = o.Seed + 1
	agg, sup := 0, 0
	for _, e := range workload.GenerateCustomer1Trace(spec) {
		stmt, err := sqlparse.Parse(e.SQL)
		if err != nil {
			return nil, err
		}
		s := query.Check(stmt)
		if s.HasAggregate {
			agg++
		}
		if s.OK {
			sup++
		}
	}
	r.Add("Customer1", itoa(agg), itoa(sup), fmtPct(float64(sup)/float64(agg)))

	// TPC-H templates.
	rng := randx.New(o.Seed + 2)
	tAgg, tSup := 0, 0
	for _, tpl := range workload.TPCHTemplates() {
		stmt, err := sqlparse.Parse(workload.InstantiateTPCH(tpl, rng))
		if err != nil {
			return nil, err
		}
		s := query.Check(stmt)
		if s.HasAggregate {
			tAgg++
		}
		if s.OK {
			tSup++
		}
	}
	r.Add("TPC-H", itoa(tAgg), itoa(tSup), fmtPct(float64(tSup)/float64(tAgg)))
	r.Note("paper: Customer1 2463/3342 = 73.7%%; TPC-H 14 of 21 aggregate queries (the paper's 63.6%% divides by all 22 query types)")
	return r, nil
}

func itoa(v int) string { return strconv.Itoa(v) }
