package experiments

import (
	"fmt"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/workload"
)

func init() {
	register("figure6a", Figure6aWorkloadDiversity)
	register("figure6b", Figure6bDataDistributions)
	register("figure6c", Figure6cLearningBehavior)
	register("figure6d", Figure6dOverheadGrowth)
}

// syntheticFixture builds the §8.6 table + engine at scale. The measure's
// correlation length-scale is matched to each distribution's *effective*
// value span (±1σ mass), so all three sweeps carry the same amount of
// learnable structure — the comparison is about the model, not about how
// much signal the marginal happens to leave in range.
func syntheticFixture(o Options, dist workload.Distribution, seed int64) (*workload.Synthetic, *aqp.Engine, error) {
	spec := workload.DefaultSyntheticSpec()
	spec.Dist = dist
	spec.Seed = seed
	switch dist {
	case workload.Gaussian:
		spec.SmoothEll = 1.0 // effective span ≈ 3.2 of the [0,10] domain
	case workload.Skewed:
		spec.SmoothEll = 1.3 // effective span ≈ 4
	}
	if o.Scale == Small {
		spec.Rows = 20000
		spec.NumericCols = 12
		spec.CategoricalCols = 2
	} else {
		spec.Rows = 60000
		spec.NumericCols = 45
		spec.CategoricalCols = 5
	}
	syn, err := workload.GenerateSynthetic(spec)
	if err != nil {
		return nil, nil, err
	}
	sample, err := aqp.BuildSample(syn.Table, 0.1, 0, seed+1)
	if err != nil {
		return nil, nil, err
	}
	return syn, aqp.NewEngine(syn.Table, sample, aqp.CachedCost), nil
}

// errorReduction trains on `past` queries and returns Verdict's mean
// actual-error reduction over NoLearn on `test` fresh queries (the Y-axis
// of Figure 6(a)–(c)).
func errorReduction(syn *workload.Synthetic, engine *aqp.Engine, qspec workload.QuerySpec, past, test int) (float64, error) {
	sqls := workload.SyntheticQueries(syn, qspec, past+test)
	v := core.New(syn.Table, core.Config{})
	if err := trainOn(v, engine, sqls[:past]); err != nil {
		return 0, err
	}
	var rawErr, impErr float64
	n := 0
	for _, sql := range sqls[past:] {
		pts, err := runOnlineQuery(v, engine, sql, false)
		if err != nil {
			return 0, err
		}
		if len(pts) == 0 {
			continue
		}
		// Compare at an early online-aggregation step (a quarter of the
		// sample): the regime where approximate answers are actually used
		// and where learning has headroom — at full consumption both
		// systems converge and the ratio is dominated by noise.
		p := pts[min(len(pts)/4, len(pts)-1)]
		rawErr += p.rawErr
		impErr += p.impErr
		n++
	}
	if n == 0 || rawErr == 0 {
		return 0, fmt.Errorf("experiments: no usable test queries")
	}
	return reduction(rawErr/float64(n), impErr/float64(n)), nil
}

// meanErrorReduction averages errorReduction over several query-generation
// seeds: a single workload instantiation's reduction is noisy at
// reproduction scale, and the sweeps of Figure 6 are about the trend.
func meanErrorReduction(syn *workload.Synthetic, engine *aqp.Engine, qspec workload.QuerySpec, past, test, seeds int) (float64, error) {
	if seeds < 1 {
		seeds = 1
	}
	sum := 0.0
	for s := 0; s < seeds; s++ {
		q := qspec
		q.Seed = qspec.Seed + int64(s)*971
		red, err := errorReduction(syn, engine, q, past, test)
		if err != nil {
			return 0, err
		}
		sum += red
	}
	return sum / float64(seeds), nil
}

// Figure6aWorkloadDiversity reproduces Figure 6(a): error reduction versus
// the proportion of frequently accessed columns (4–40%), with the number of
// past queries fixed at 100.
func Figure6aWorkloadDiversity(o Options) (*Report, error) {
	r := &Report{
		ID:      "figure6a",
		Title:   "Error reduction vs workload diversity (freq-accessed column ratio)",
		Columns: []string{"Freq-col ratio", "Error reduction"},
	}
	syn, engine, err := syntheticFixture(o, workload.Uniform, o.Seed+61)
	if err != nil {
		return nil, err
	}
	past := 100
	test := 30
	if o.Scale == Small {
		past, test = 50, 15
	}
	for _, ratio := range []float64{0.04, 0.10, 0.20, 0.40} {
		qspec := workload.DefaultQuerySpec()
		qspec.FreqColRatio = ratio
		qspec.Seed = o.Seed + int64(ratio*1000)
		red, err := meanErrorReduction(syn, engine, qspec, past, test, 3)
		if err != nil {
			return nil, err
		}
		r.Add(fmtPct(ratio), fmtPct(red))
	}
	r.Note("expected shape (paper Fig. 6a): error reduction decreases as the workload touches a more diverse column set")
	return r, nil
}

// Figure6bDataDistributions reproduces Figure 6(b): error reduction across
// uniform, Gaussian and skewed (log-normal) data distributions.
func Figure6bDataDistributions(o Options) (*Report, error) {
	r := &Report{
		ID:      "figure6b",
		Title:   "Error reduction vs data distribution",
		Columns: []string{"Distribution", "Error reduction"},
	}
	past, test := 60, 25
	if o.Scale == Small {
		past, test = 40, 15
	}
	for i, dist := range []workload.Distribution{workload.Uniform, workload.Gaussian, workload.Skewed} {
		syn, engine, err := syntheticFixture(o, dist, o.Seed+62+int64(i))
		if err != nil {
			return nil, err
		}
		qspec := workload.DefaultQuerySpec()
		qspec.Seed = o.Seed + 620 + int64(i)
		red, err := meanErrorReduction(syn, engine, qspec, past, test, 3)
		if err != nil {
			return nil, err
		}
		r.Add(dist.String(), fmtPct(red))
	}
	r.Note("expected shape (paper Fig. 6b): positive reductions across all distributions — the maximum-entropy model makes no distributional assumption")
	r.Note("caveat: Eq. 7's kernel integrals weight tuples uniformly within a range; strongly concentrated marginals (Gaussian) violate that premise inside wide windows, and the learner responds by discounting those dimensions — reductions are positive but smaller than uniform's. The paper's synthetic data did not stress this corner")
	return r, nil
}

// Figure6cLearningBehavior reproduces Figure 6(c): error reduction versus
// the number of past queries on a highly diverse workload (freq ratio 20%).
func Figure6cLearningBehavior(o Options) (*Report, error) {
	r := &Report{
		ID:      "figure6c",
		Title:   "Error reduction vs number of past queries",
		Columns: []string{"Past queries", "Error reduction"},
	}
	syn, engine, err := syntheticFixture(o, workload.Uniform, o.Seed+63)
	if err != nil {
		return nil, err
	}
	counts := []int{10, 100, 200, 300, 400}
	test := 25
	if o.Scale == Small {
		counts = []int{10, 50, 100, 150}
		test = 15
	}
	qspec := workload.DefaultQuerySpec()
	qspec.FreqColRatio = 0.2
	qspec.Seed = o.Seed + 630
	for _, past := range counts {
		red, err := meanErrorReduction(syn, engine, qspec, past, test, 2)
		if err != nil {
			return nil, err
		}
		r.Add(itoa(past), fmtPct(red))
	}
	r.Note("expected shape (paper Fig. 6c): reduction grows with past queries and saturates")
	return r, nil
}

// Figure6dOverheadGrowth reproduces Figure 6(d): Verdict's inference
// overhead (wall-clock, per snippet) as the synopsis grows.
func Figure6dOverheadGrowth(o Options) (*Report, error) {
	r := &Report{
		ID:      "figure6d",
		Title:   "Inference overhead vs number of past queries",
		Columns: []string{"Past queries", "Overhead per query"},
	}
	syn, engine, err := syntheticFixture(o, workload.Uniform, o.Seed+64)
	if err != nil {
		return nil, err
	}
	counts := []int{10, 100, 200, 300, 400}
	if o.Scale == Small {
		counts = []int{10, 50, 100}
	}
	qspec := workload.DefaultQuerySpec()
	qspec.Seed = o.Seed + 640
	sqls := workload.SyntheticQueries(syn, qspec, counts[len(counts)-1]+20)
	v := core.New(syn.Table, core.Config{})
	recorded := 0
	for _, past := range counts {
		if err := trainOn(v, engine, sqls[recorded:past]); err != nil {
			return nil, err
		}
		recorded = past
		// Measure inference on the held-out tail.
		var elapsed time.Duration
		n := 0
		for _, sql := range sqls[len(sqls)-10:] {
			snips, err := snippetsOf(engine, sql, v.Config().Nmax)
			if err != nil {
				return nil, err
			}
			upd := engine.RunToCompletion(snips)
			t0 := time.Now()
			for i, sn := range snips {
				_ = v.Infer(sn, aqp.Sanitize(upd.Estimates[i]))
			}
			elapsed += time.Since(t0)
			n++
		}
		r.Add(itoa(past), (elapsed / time.Duration(n)).Round(time.Microsecond).String())
	}
	r.Note("expected shape (paper Fig. 6d): overhead stays in the low-millisecond range and grows only mildly (O(n²) solves on a precomputed factorization)")
	return r, nil
}
