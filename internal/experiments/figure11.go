package experiments

import (
	"math"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/query"
)

func init() { register("figure11", Figure11TimeBound) }

// Figure11TimeBound reproduces Appendix C.2's Figure 11: with a *time-bound*
// AQP engine (no online refinement — the engine scans the largest prefix
// fitting the budget), Verdict's average error-bound reduction over NoLearn
// for each (dataset, tier) combination.
func Figure11TimeBound(o Options) (*Report, error) {
	r := &Report{
		ID:    "figure11",
		Title: "Error reduction on a time-bound AQP engine",
		Columns: []string{"Dataset", "Tier", "Budget", "NoLearn bound",
			"Verdict bound", "Reduction"},
	}
	_, _, train, test := sizing(o)
	alpha, err := mathx.ConfidenceMultiplier(0.95)
	if err != nil {
		return nil, err
	}
	for _, c := range table4Configs {
		f, err := buildFixture(o, c)
		if err != nil {
			return nil, err
		}
		v := core.New(f.table, core.Config{})
		if err := trainOn(v, f.engine, f.sqls[:train]); err != nil {
			return nil, err
		}
		// Budget: plan overhead plus a quarter of the full scan, mirroring
		// the paper's few-second budgets.
		cost := f.engine.Cost()
		full := cost.ScanTime(f.engine.Sample().Rows())
		budget := cost.PlanOverhead + full/4

		var bN, bV float64
		n := 0
		for _, sql := range f.sqls[train:min(train+test, len(f.sqls))] {
			snips, err := snippetsOf(f.engine, sql, v.Config().Nmax)
			if err != nil {
				return nil, err
			}
			upd := f.engine.TimeBound(snips, budget)
			for i, sn := range snips {
				if !upd.Valid[i] {
					continue
				}
				exact := f.engine.Exact(sn)
				den := math.Abs(exact)
				if den < 1e-9 || (sn.Kind == query.FreqAgg && exact < minExactFreq) {
					continue
				}
				raw := aqp.Sanitize(upd.Estimates[i])
				inf := v.Infer(sn, raw)
				bN += alpha * raw.StdErr / den
				bV += alpha * inf.Err / den
				n++
			}
			// Record for subsequent queries (the engine keeps learning).
			for i, sn := range snips {
				if upd.Valid[i] {
					v.Record(sn, upd.Estimates[i])
				}
			}
		}
		if n == 0 {
			continue
		}
		bN /= float64(n)
		bV /= float64(n)
		r.Add(f.label, tier(c.cached), budget.Round(time.Millisecond).String(),
			fmtPct(bN), fmtPct(bV), fmtPct(reduction(bN, bV)))
	}
	r.Note("expected shape (paper Fig. 11): 63–89%% error reductions across all four combinations")
	return r, nil
}
