package experiments

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mathx"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/workload"
)

func init() { register("figure9", Figure9ModelValidation) }

// Figure9ModelValidation reproduces Appendix B.2's Figure 9: Verdict's
// correlation parameters are deliberately set to scaled versions of the
// true planted parameters (0.1×–10×); the ratio of actual error to the
// reported error bound is measured with and without model validation. For
// correct bounds the 95th percentile of the ratio must stay at or below 1;
// without validation it blows past 1 for badly mis-scaled parameters.
func Figure9ModelValidation(o Options) (*Report, error) {
	r := &Report{
		ID:    "figure9",
		Title: "Effect of model validation under mis-scaled correlation parameters",
		Columns: []string{"Param scale", "p95 ratio (no validation)",
			"p95 ratio (validation)", "median (no val.)", "median (val.)"},
	}
	const trueEll, sigma2 = 15.0, 9.0
	tb, _, err := workload.GeneratePlanted1D(workload.Planted1DSpec{
		Rows: 10000, Ell: trueEll, Sigma2: sigma2, NoiseStd: 0.1,
		Domain: 100, Seed: o.Seed + 91,
	})
	if err != nil {
		return nil, err
	}
	xcol, _ := tb.Schema().Lookup("x")
	id := query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"}
	scales := []float64{0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0}
	trials := 60
	if o.Scale == Small {
		scales = []float64{0.1, 1.0, 10.0}
		trials = 30
	}
	alpha, err := mathx.ConfidenceMultiplier(0.95)
	if err != nil {
		return nil, err
	}

	for _, scale := range scales {
		params := kernel.Params{Sigma2: sigma2, Ells: map[int]float64{xcol: trueEll * scale}}
		ratios := map[bool][]float64{}
		for _, validate := range []bool{false, true} {
			cfg := core.Config{DisableValidation: !validate}
			v := core.New(tb, cfg)
			v.SetParams(id, params)
			rng := randx.New(o.Seed + 92)
			// Past snippets: accurate answers.
			for i := 0; i < 40; i++ {
				lo := rng.Uniform(0, 90)
				hi := lo + rng.Uniform(3, 10)
				exact := exactAvgOn(tb, lo, hi)
				v.Record(avgSnippetOn(tb, lo, hi),
					query.ScalarEstimate{Value: exact + rng.Normal(0, 0.05), StdErr: 0.05})
			}
			// Test snippets: noisy raw answers; ratio of actual error to the
			// reported bound.
			for i := 0; i < trials; i++ {
				lo := rng.Uniform(0, 90)
				hi := lo + rng.Uniform(3, 10)
				exact := exactAvgOn(tb, lo, hi)
				// Raw errors comparable to the past snippets' accuracy: the
				// validation likely-region is then tight enough to catch a
				// mis-scaled model (with huge raw errors validation is
				// vacuous and no system could reject anything).
				raw := query.ScalarEstimate{Value: exact + rng.Normal(0, 0.05), StdErr: 0.05}
				inf := v.Infer(avgSnippetOn(tb, lo, hi), raw)
				bound := alpha * inf.Err
				if bound <= 0 {
					continue
				}
				actual := abs(inf.Answer - exact)
				ratios[validate] = append(ratios[validate], actual/bound)
			}
		}
		r.Add(fmtF(scale)+"×",
			fmtF(mathx.Quantile(ratios[false], 0.95)),
			fmtF(mathx.Quantile(ratios[true], 0.95)),
			fmtF(mathx.Quantile(ratios[false], 0.50)),
			fmtF(mathx.Quantile(ratios[true], 0.50)))
	}
	r.Note("expected shape (paper Fig. 9): without validation the p95 ratio exceeds 1 for badly mis-scaled parameters; with validation it stays ≈ ≤1 at every scale")
	return r, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
