package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

func init() { register("figure1", Figure1ModelRefinement) }

// Figure1ModelRefinement reproduces Figure 1's demonstration: a weekly
// n-gram count series queried over ranges; after 2, 4 and 8 queries the
// model's prediction over the whole domain tightens and tracks the truth.
// The report gives, per stage, the mean |prediction − truth| over all weeks
// and the mean 95% CI width; both must shrink as queries accumulate, and
// coverage must stay high.
func Figure1ModelRefinement(o Options) (*Report, error) {
	r := &Report{
		ID:    "figure1",
		Title: "Model refinement as queries accumulate (n-gram trend demo)",
		Columns: []string{"Past queries", "Mean |pred-truth|", "Mean 95% CI width",
			"Coverage", "Unseen-range |pred-truth|"},
	}
	tb, field, err := workload.GeneratePlanted1D(workload.Planted1DSpec{
		Rows: 20000, Ell: 20, Sigma2: 25, NoiseStd: 0.5, Domain: 100, Seed: o.Seed + 41,
	})
	if err != nil {
		return nil, err
	}
	_ = field

	// Query ranges mimicking Figure 1: eight non-uniformly placed windows.
	ranges := [][2]float64{{5, 15}, {55, 65}, {25, 35}, {80, 90}, {15, 25}, {65, 75}, {40, 50}, {90, 100}}

	xcol, _ := tb.Schema().Lookup("x")
	v := core.New(tb, core.Config{})
	v.SetParams(query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"},
		kernel.Params{Sigma2: 25, Ells: map[int]float64{xcol: 20}})

	exactOver := func(lo, hi float64) float64 {
		return exactAvgOn(tb, lo, hi)
	}
	alpha := 1.96
	stage := 0
	for i, rg := range ranges {
		exact := exactOver(rg[0], rg[1])
		v.Record(avgSnippetOn(tb, rg[0], rg[1]), query.ScalarEstimate{Value: exact, StdErr: math.Abs(exact)*0.01 + 0.05})
		if i+1 == 2 || i+1 == 4 || i+1 == 8 {
			stage++
			if err := v.Train(); err != nil {
				return nil, err
			}
			var absErr, width, cover, unseenErr float64
			var unseenN int
			n := 0
			for w := 1.0; w <= 99; w += 2 {
				sn := avgSnippetOn(tb, w-1, w+1)
				truth := exactOver(w-1, w+1)
				inf := v.Infer(sn, query.ScalarEstimate{Value: 0, StdErr: math.Inf(1)})
				absErr += math.Abs(inf.Answer - truth)
				width += 2 * alpha * inf.Err
				if math.Abs(inf.Answer-truth) <= alpha*inf.Err {
					cover++
				}
				if !insideAny(w, ranges[:i+1]) {
					unseenErr += math.Abs(inf.Answer - truth)
					unseenN++
				}
				n++
			}
			fn := float64(n)
			un := math.NaN()
			if unseenN > 0 {
				un = unseenErr / float64(unseenN)
			}
			r.Add(itoa(i+1), fmtF(absErr/fn), fmtF(width/fn),
				fmtPct(cover/fn), fmtF(un))
		}
	}
	r.Note("expected shape (paper Fig. 1): prediction error and CI width shrink from 2 → 4 → 8 queries, including over ranges no query touched")
	return r, nil
}

func insideAny(x float64, ranges [][2]float64) bool {
	for _, rg := range ranges {
		if x >= rg[0] && x <= rg[1] {
			return true
		}
	}
	return false
}

// avgSnippetOn and exactAvgOn are shared by the planted-table experiments.
func avgSnippetOn(tb *storage.Table, lo, hi float64) *query.Snippet {
	g := query.NewRegion(tb.Schema())
	xcol, _ := tb.Schema().Lookup("x")
	g.ConstrainNum(xcol, query.NumRange{Lo: lo, Hi: hi})
	ycol, _ := tb.Schema().Lookup("y")
	return &query.Snippet{
		Kind:       query.AvgAgg,
		MeasureKey: "y",
		Measure:    func(t *storage.Table, row int) float64 { return t.NumAt(row, ycol) },
		Region:     g,
		Table:      tb,
	}
}

func exactAvgOn(tb *storage.Table, lo, hi float64) float64 {
	xcol, _ := tb.Schema().Lookup("x")
	ycol, _ := tb.Schema().Lookup("y")
	sum, n := 0.0, 0
	for row := 0; row < tb.Rows(); row++ {
		x := tb.NumAt(row, xcol)
		if x >= lo && x <= hi {
			sum += tb.NumAt(row, ycol)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
