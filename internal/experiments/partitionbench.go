package experiments

import (
	"fmt"
	"time"

	"repro/internal/aqp"
	"repro/internal/query"
	"repro/internal/storage"
)

func init() { register("partitionbench", PartitionBench) }

// PartitionBench quantifies what the stratified partitioned layout buys on a
// selective scan: zone-map pruning like a clustered layout, without giving
// up row-level prefix-uniformity. One selective snippet (~5% of the x
// domain) runs over five layouts of the same sample — block-clustered
// (flat), shuffled (flat), and stratified with K ∈ {1, 4, 8} partitions —
// measuring scan time and the fraction of blocks zone maps prove empty.
// Expectation: shuffled prunes ~0% (every block spans the whole domain),
// clustered and stratified prune the vast majority, and the stratified
// numbers are invariant in K (the stratum, not the partition, is the zone
// granule). Each case's ns/op and prune fraction land in Report.Metrics,
// which verdict-bench -json persists (BENCH_partition.json) for the CI perf
// trajectory.
func PartitionBench(o Options) (*Report, error) {
	rows := 200_000
	if o.Scale == Full {
		rows = 1_000_000
	}
	rep := &Report{
		ID:      "partitionbench",
		Title:   "Sample layouts under a selective scan: clustered vs shuffled vs stratified",
		Columns: []string{"layout", "partitions", "rows", "scan time", "blocks pruned", "Mrows/s"},
	}

	type layoutCase struct {
		key   string
		parts int // 0 = flat
		opts  func(xcol int) aqp.RebuildOptions
	}
	cases := []layoutCase{
		{"clustered", 0, func(xcol int) aqp.RebuildOptions {
			return aqp.RebuildOptions{ClusterColumn: xcol, StratumColumn: -1}
		}},
		{"shuffled", 0, func(int) aqp.RebuildOptions { return aqp.DefaultRebuildOptions() }},
		{"stratified-k1", 1, nil},
		{"stratified-k4", 4, nil},
		{"stratified-k8", 8, nil},
	}
	for _, c := range cases {
		tb, sn, err := scanBenchFixture(rows, false, o.Seed)
		if err != nil {
			return nil, err
		}
		xcol, _ := tb.Schema().Lookup("x")
		sample := &aqp.Sample{Data: tb, Fraction: 1, BatchSize: tb.Rows(), BaseRows: tb.Rows()}
		engine := aqp.NewEngine(tb, sample, aqp.CachedCost)
		opts := aqp.RebuildOptions{ClusterColumn: -1, Partitions: c.parts, StratumColumn: xcol}
		if c.opts != nil {
			opts = c.opts(xcol)
		}
		if _, err := engine.RebuildSample(o.Seed+17, opts); err != nil {
			return nil, err
		}

		engine.RunToCompletion([]*query.Snippet{sn}) // warm-up
		const reps = 3
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			engine.RunToCompletion([]*query.Snippet{sn})
		}
		el := time.Since(t0) / reps

		empty, total := pruneCensus(engine.Sample(), sn.Region)
		frac := 0.0
		if total > 0 {
			frac = float64(empty) / float64(total)
		}
		rep.Add(c.key, fmt.Sprintf("%d", c.parts), fmt.Sprintf("%d", rows),
			el.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%% (%d/%d)", frac*100, empty, total),
			fmtF(float64(rows)/el.Seconds()/1e6))
		rep.Metric(c.key+"/ns", float64(el.Nanoseconds()))
		rep.Metric(c.key+"/prune_fraction", frac)
	}
	rep.Note("selective predicate x in [42,47) over a [0,100) domain; blocks pruned = zone maps prove the block empty; stratified prune fractions must not move with the partition count")
	return rep, nil
}

// pruneCensus classifies every block of the sample's physical layout
// against the region's zone maps and counts the provably-empty ones. For a
// partitioned sample the blocks are the per-stratum blocks plus the tail's;
// for a flat sample they are the single table's.
func pruneCensus(s *aqp.Sample, region *query.Region) (empty, total int) {
	var tables []*storage.Table
	if s.Parts != nil {
		tables = s.Parts.StrataTables()
	}
	tables = append(tables, s.Data)
	for _, t := range tables {
		for b := 0; b < t.NumBlocks(); b++ {
			total++
			if region.PruneBlock(t, b) == query.BlockEmpty {
				empty++
			}
		}
	}
	return empty, total
}
