package experiments

import (
	"fmt"
	"time"

	"repro/internal/aqp"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

func init() { register("groupedbench", GroupedBench) }

// GroupedBench measures the one-scan grouped aggregation kernel against the
// per-snippet ablation (Config.PerSnippetGroupScan) across group counts and
// sample layouts. The per-snippet path pays one filter pass per
// (group × aggregate) snippet, so its cost grows with the group count while
// the grouped kernel's single shared pass stays flat — the issue's headline
// is the 256-group case. Not a paper artifact; it documents the grouped-scan
// refactor's win on this hardware. Each case's ns/op lands in
// Report.Metrics, which verdict-bench -json persists (BENCH_grouped.json).
func GroupedBench(o Options) (*Report, error) {
	rows := 200_000
	if o.Scale == Full {
		rows = 1_000_000
	}
	rep := &Report{
		ID:      "groupedbench",
		Title:   "Grouped aggregation: one-scan kernel vs per-snippet rescans",
		Columns: []string{"groups", "layout", "per-snippet", "one-scan", "speedup", "Mrows/s"},
	}
	for _, groups := range []int{1, 16, 256} {
		for _, clustered := range []bool{true, false} {
			layout := "clustered"
			if !clustered {
				layout = "shuffled"
			}
			tb, err := groupedBenchTable(rows, groups, clustered, o.Seed)
			if err != nil {
				return nil, err
			}
			sample := &aqp.Sample{Data: tb, Fraction: 1, BatchSize: tb.Rows(), BaseRows: tb.Rows()}
			engine := aqp.NewEngine(tb, sample, aqp.CachedCost)
			snips, err := groupedBenchSnips(engine.Acquire(), tb)
			if err != nil {
				return nil, err
			}
			times := map[aqp.ScanMode]time.Duration{}
			for _, mode := range []aqp.ScanMode{aqp.ScanVectorizedPerSnippet, aqp.ScanVectorized} {
				engine.SetScanMode(mode)
				v := engine.Acquire()
				v.RunToCompletion(snips) // warm-up
				const reps = 3
				t0 := time.Now()
				for r := 0; r < reps; r++ {
					v.RunToCompletion(snips)
				}
				times[mode] = time.Since(t0) / reps
			}
			per, one := times[aqp.ScanVectorizedPerSnippet], times[aqp.ScanVectorized]
			rep.Add(fmt.Sprintf("%d", groups), layout,
				per.Round(time.Microsecond).String(), one.Round(time.Microsecond).String(),
				fmtX(float64(per)/float64(one)), fmtF(float64(rows)/one.Seconds()/1e6))
			rep.Metric(fmt.Sprintf("groups=%d/%s/persnippet", groups, layout), float64(per.Nanoseconds()))
			rep.Metric(fmt.Sprintf("groups=%d/%s/grouped", groups, layout), float64(one.Nanoseconds()))
		}
	}
	rep.Note("GROUP BY over a %d-row sample, AVG + COUNT per group; ns/op per case exported via -json", rows)
	return rep, nil
}

// groupedBenchTable builds the benchmark relation: a clustered-or-shuffled
// numeric dimension, a categorical group column with nGroups values, and a
// measure.
func groupedBenchTable(rows, nGroups int, clustered bool, seed int64) (*storage.Table, error) {
	schema := storage.MustSchema([]storage.ColumnDef{
		{Name: "week", Kind: storage.Numeric, Role: storage.Dimension},
		{Name: "cat", Kind: storage.Categorical, Role: storage.Dimension},
		{Name: "val", Kind: storage.Numeric, Role: storage.Measure},
	})
	tb := storage.NewTable("t", schema)
	rng := randx.New(seed + 73)
	order := make([]int, rows)
	for i := range order {
		order[i] = i
	}
	if !clustered {
		rng.Shuffle(rows, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, i := range order {
		week := float64(i) / float64(rows) * 100
		if err := tb.AppendRow([]storage.Value{
			storage.Num(week),
			storage.Str(fmt.Sprintf("g%03d", rng.Intn(nGroups))),
			storage.Num(10 + week + rng.Normal(0, 2)),
		}); err != nil {
			return nil, err
		}
	}
	return tb, nil
}

// groupedBenchSnips runs the legacy two-pass planning (group discovery +
// decomposition) once; the timed loops then measure pure scan cost.
func groupedBenchSnips(v *aqp.View, tb *storage.Table) ([]*query.Snippet, error) {
	stmt, err := sqlparse.Parse("SELECT cat, AVG(val), COUNT(*) FROM t GROUP BY cat")
	if err != nil {
		return nil, err
	}
	catCol, ok := tb.Schema().Lookup("cat")
	if !ok {
		return nil, fmt.Errorf("groupedbench: no cat column")
	}
	groupsVals, err := v.GroupRows([]int{catCol}, nil)
	if err != nil {
		return nil, err
	}
	decs, err := query.Decompose(stmt, tb, groupsVals, 0)
	if err != nil {
		return nil, err
	}
	var snips []*query.Snippet
	for _, d := range decs {
		snips = append(snips, d.Snippets...)
	}
	return snips, nil
}
