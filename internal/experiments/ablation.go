package experiments

import (
	"math"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/query"
)

func init() { register("ablation", AblationDesignChoices) }

// AblationDesignChoices is not a paper artifact: it isolates the
// contribution of the implementation's design choices on the Customer1-like
// workload — (a) Appendix B's model validation, (b) the finite-population
// nugget this reproduction adds at reduced scale (ScalarEstimate.PopErr),
// each ablated independently against the full configuration. Reported per
// variant: actual-error reduction over NoLearn at a quarter-scan, and the
// fraction of answers whose actual error stayed inside the 95% bound.
func AblationDesignChoices(o Options) (*Report, error) {
	r := &Report{
		ID:      "ablation",
		Title:   "Ablation of validation and the finite-population nugget",
		Columns: []string{"Variant", "Error reduction", "Bound coverage"},
	}
	f, err := buildFixture(o, table4Config{dataset: "customer1", cached: true})
	if err != nil {
		return nil, err
	}
	_, _, train, test := sizing(o)

	variants := []struct {
		name       string
		cfg        core.Config
		dropPopErr bool
	}{
		{"full", core.Config{}, false},
		{"no validation", core.Config{DisableValidation: true}, false},
		{"no nugget", core.Config{}, true},
		{"no validation, no nugget", core.Config{DisableValidation: true}, true},
	}
	alpha, err := mathx.ConfidenceMultiplier(0.95)
	if err != nil {
		return nil, err
	}

	for _, variant := range variants {
		v := core.New(f.table, variant.cfg)
		// Training pass.
		for _, sql := range f.sqls[:train] {
			snips, err := snippetsOf(f.engine, sql, v.Config().Nmax)
			if err != nil {
				return nil, err
			}
			upd := f.engine.RunToCompletion(snips)
			for i, sn := range snips {
				if upd.Valid[i] {
					v.Record(sn, strip(upd.Estimates[i], variant.dropPopErr))
				}
			}
		}
		if err := v.Train(); err != nil {
			return nil, err
		}
		// Measurement pass at a quarter of the sample scan.
		var rawErr, impErr float64
		covered, n := 0, 0
		for _, sql := range f.sqls[train:min(train+test, len(f.sqls))] {
			snips, err := snippetsOf(f.engine, sql, v.Config().Nmax)
			if err != nil {
				return nil, err
			}
			var upd aqp.BatchUpdate
			f.engine.OnlineAggregate(snips, func(u aqp.BatchUpdate) bool {
				upd = u
				return u.Batch < f.engine.Sample().Batches()/4
			})
			for i, sn := range snips {
				if !upd.Valid[i] {
					continue
				}
				exact := f.engine.Exact(sn)
				den := math.Abs(exact)
				if den < 1e-9 || (sn.Kind == query.FreqAgg && exact < minExactFreq) {
					continue
				}
				raw := strip(aqp.Sanitize(upd.Estimates[i]), variant.dropPopErr)
				inf := v.Infer(sn, raw)
				rawErr += math.Abs(raw.Value-exact) / den
				impErr += math.Abs(inf.Answer-exact) / den
				if math.Abs(inf.Answer-exact) <= alpha*inf.Err {
					covered++
				}
				n++
			}
		}
		if n == 0 {
			continue
		}
		r.Add(variant.name,
			fmtPct(reduction(rawErr/float64(n), impErr/float64(n))),
			fmtPct(float64(covered)/float64(n)))
	}
	r.Note("expected: the full configuration keeps coverage near 95%%; dropping the nugget tightens bounds below what reduced-scale exact answers support; dropping validation admits confidently-wrong model answers; reductions stay comparable across variants")
	return r, nil
}

func strip(est query.ScalarEstimate, dropPopErr bool) query.ScalarEstimate {
	if dropPopErr {
		est.PopErr = 0
	}
	return est
}
