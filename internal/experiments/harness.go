package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/workload"
)

// fixture bundles a dataset, its engine and a query workload.
type fixture struct {
	table  *storage.Table
	engine *aqp.Engine
	sqls   []string
	// label names the fixture in report rows ("Customer1", "TPC-H").
	label string
}

// sizing returns (rows, sampleFraction, trainQueries, testQueries) per scale.
func sizing(o Options) (int, float64, int, int) {
	if o.Scale == Full {
		return 120000, 0.25, 80, 80
	}
	return 30000, 0.3, 45, 25
}

// customer1Fixture builds the Customer1-like fixture under a cost model.
func customer1Fixture(o Options, cost aqp.CostModel) (*fixture, error) {
	rows, frac, train, test := sizing(o)
	tb, err := workload.GenerateCustomer1(rows, o.Seed+11)
	if err != nil {
		return nil, err
	}
	sample, err := aqp.BuildSample(tb, frac, 0, o.Seed+12)
	if err != nil {
		return nil, err
	}
	spec := workload.DefaultCustomer1TraceSpec()
	spec.Queries = (train + test) * 2 // headroom: we keep only supported
	spec.Seed = o.Seed + 13
	var sqls []string
	for _, e := range workload.GenerateCustomer1Trace(spec) {
		if e.Supported && len(sqls) < train+test {
			sqls = append(sqls, e.SQL)
		}
	}
	if len(sqls) < train+test {
		return nil, fmt.Errorf("experiments: trace too small: %d", len(sqls))
	}
	return &fixture{table: tb, engine: aqp.NewEngine(tb, sample, cost), sqls: sqls, label: "Customer1"}, nil
}

// tpchFixture builds the TPC-H-like fixture.
func tpchFixture(o Options, cost aqp.CostModel) (*fixture, error) {
	rows, frac, train, test := sizing(o)
	tb, err := workload.GenerateTPCH(rows, o.Seed+21)
	if err != nil {
		return nil, err
	}
	sample, err := aqp.BuildSample(tb, frac, 0, o.Seed+22)
	if err != nil {
		return nil, err
	}
	sqls := workload.TPCHWorkload(train+test, o.Seed+23)
	return &fixture{table: tb, engine: aqp.NewEngine(tb, sample, cost), sqls: sqls, label: "TPC-H"}, nil
}

// costFor returns the cost model of a tier, with the virtual-row factor
// scaled so full-sample scans land in the paper's latency ranges (seconds
// cached, minutes on SSD) regardless of the local table size.
func costFor(cached bool, sampleRows int) aqp.CostModel {
	if sampleRows < 1 {
		sampleRows = 1
	}
	if cached {
		// Target ≈ 6 s full-sample scan.
		c := aqp.CachedCost
		return c.Scaled(6 * c.RowsPerSecond / float64(sampleRows))
	}
	// Target ≈ 180 s full-sample scan.
	c := aqp.SSDCost
	return c.Scaled(180 * c.RowsPerSecond / float64(sampleRows))
}

// snippetsOf parses, checks and decomposes one SQL query against the
// fixture's engine, returning the flattened snippet list.
func snippetsOf(engine *aqp.Engine, sql string, nmax int) ([]*query.Snippet, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sup := query.Check(stmt); !sup.OK {
		return nil, fmt.Errorf("experiments: unsupported query %q: %v", sql, sup.Reasons)
	}
	table := engine.Base()
	var groupCols []int
	for _, g := range stmt.GroupBy {
		col, ok := table.Schema().Lookup(g.Name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown group column %s", g.Name)
		}
		groupCols = append(groupCols, col)
	}
	region, err := query.BindRegion(stmt.Where, table)
	if err != nil {
		return nil, err
	}
	groups, err := engine.GroupRows(groupCols, region)
	if err != nil {
		return nil, err
	}
	decs, err := query.Decompose(stmt, table, groups, nmax)
	if err != nil {
		return nil, err
	}
	var snips []*query.Snippet
	for _, d := range decs {
		snips = append(snips, d.Snippets...)
	}
	return snips, nil
}

// trainOn processes queries to completion, recording raw answers into the
// synopsis, then runs the offline training pass (Algorithm 1).
func trainOn(v *core.Verdict, engine *aqp.Engine, sqls []string) error {
	for _, sql := range sqls {
		snips, err := snippetsOf(engine, sql, v.Config().Nmax)
		if err != nil {
			return err
		}
		upd := engine.RunToCompletion(snips)
		for i, sn := range snips {
			if upd.Valid[i] {
				v.Record(sn, upd.Estimates[i])
			}
		}
	}
	return v.Train()
}

// curvePoint is one online-aggregation step averaged over a query's
// snippets: relative error bounds and relative actual errors for the raw
// (NoLearn) and improved (Verdict) answers.
type curvePoint struct {
	simTime  time.Duration
	rawBound float64
	impBound float64
	rawErr   float64
	impErr   float64
	n        int
}

// minExactFreq skips FREQ snippets whose exact fractions are too small for
// meaningful relative errors.
const minExactFreq = 1e-3

// runOnlineQuery produces the per-batch comparison curve for one query. If
// record is true, the final raw answers enter the synopsis afterwards
// (Algorithm 2 ordering: infer first, then record).
func runOnlineQuery(v *core.Verdict, engine *aqp.Engine, sql string, record bool) ([]curvePoint, error) {
	snips, err := snippetsOf(engine, sql, v.Config().Nmax)
	if err != nil {
		return nil, err
	}
	exact := make([]float64, len(snips))
	keep := make([]bool, len(snips))
	for i, sn := range snips {
		exact[i] = engine.Exact(sn)
		switch sn.Kind {
		case query.FreqAgg:
			keep[i] = exact[i] >= minExactFreq
		default:
			keep[i] = math.Abs(exact[i]) > 1e-9
		}
	}
	alpha, err := mathx.ConfidenceMultiplier(v.Config().Confidence)
	if err != nil {
		return nil, err
	}

	var pts []curvePoint
	var last aqp.BatchUpdate
	engine.OnlineAggregate(snips, func(u aqp.BatchUpdate) bool {
		pt := curvePoint{simTime: u.SimTime}
		for i, sn := range snips {
			if !keep[i] || !u.Valid[i] {
				continue
			}
			raw := aqp.Sanitize(u.Estimates[i])
			inf := v.Infer(sn, raw)
			den := math.Abs(exact[i])
			pt.rawBound += alpha * raw.StdErr / den
			pt.impBound += alpha * inf.Err / den
			pt.rawErr += math.Abs(raw.Value-exact[i]) / den
			pt.impErr += math.Abs(inf.Answer-exact[i]) / den
			pt.n++
		}
		if pt.n > 0 {
			pt.rawBound /= float64(pt.n)
			pt.impBound /= float64(pt.n)
			pt.rawErr /= float64(pt.n)
			pt.impErr /= float64(pt.n)
			pts = append(pts, pt)
		}
		last = u
		return true
	})
	if record {
		for i, sn := range snips {
			if last.Valid != nil && last.Valid[i] {
				v.Record(sn, last.Estimates[i])
			}
		}
	}
	return pts, nil
}

// runComparison trains on the first half of a fixture's workload and
// returns the per-query curves of the second half (§8.3's protocol).
func runComparison(f *fixture, cfg core.Config, train, test int) ([][]curvePoint, *core.Verdict, error) {
	v := core.New(f.table, cfg)
	if train > len(f.sqls) {
		train = len(f.sqls)
	}
	if err := trainOn(v, f.engine, f.sqls[:train]); err != nil {
		return nil, nil, err
	}
	var curves [][]curvePoint
	for _, sql := range f.sqls[train:min(train+test, len(f.sqls))] {
		pts, err := runOnlineQuery(v, f.engine, sql, true)
		if err != nil {
			return nil, nil, err
		}
		if len(pts) > 0 {
			curves = append(curves, pts)
		}
	}
	return curves, v, nil
}

// timeToBound returns the simulated time at which a curve first meets the
// target relative bound, and whether it ever did (censored at the final
// point otherwise).
func timeToBound(pts []curvePoint, target float64, improved bool) (time.Duration, bool) {
	for _, p := range pts {
		b := p.rawBound
		if improved {
			b = p.impBound
		}
		if b <= target {
			return p.simTime, true
		}
	}
	if len(pts) == 0 {
		return 0, false
	}
	return pts[len(pts)-1].simTime, false
}

// boundWithinBudget returns the best (lowest) relative bound achieved within
// the simulated time budget; falls back to the first point if none fit.
func boundWithinBudget(pts []curvePoint, budget time.Duration, improved bool) float64 {
	best := math.Inf(1)
	for _, p := range pts {
		if p.simTime > budget {
			break
		}
		b := p.rawBound
		if improved {
			b = p.impBound
		}
		if b < best {
			best = b
		}
	}
	if math.IsInf(best, 1) && len(pts) > 0 {
		if improved {
			return pts[0].impBound
		}
		return pts[0].rawBound
	}
	return best
}

// meanFinal returns the mean final-batch relative actual errors (raw,
// improved) across curves.
func meanFinal(curves [][]curvePoint) (rawErr, impErr, rawBound, impBound float64) {
	n := 0
	for _, c := range curves {
		if len(c) == 0 {
			continue
		}
		p := c[len(c)-1]
		rawErr += p.rawErr
		impErr += p.impErr
		rawBound += p.rawBound
		impBound += p.impBound
		n++
	}
	if n == 0 {
		return 0, 0, 0, 0
	}
	f := float64(n)
	return rawErr / f, impErr / f, rawBound / f, impBound / f
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// reduction converts (baseline, improved) into a reduction fraction.
func reduction(base, improved float64) float64 {
	if base <= 0 {
		return 0
	}
	r := 1 - improved/base
	if r < 0 {
		return 0
	}
	return r
}
