package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mathx"
	"repro/internal/query"
	"repro/internal/randx"
	"repro/internal/storage"
	"repro/internal/workload"
)

func init() { register("figure12", Figure12DataAppend) }

// Figure12DataAppend reproduces Appendix D.2's Figure 12: tuples whose
// values diverge from the original table are appended (5–20% of the
// original cardinality); Verdict's error bounds are measured with and
// without Lemma 3's adjustment. Without adjustment the bounds become
// overly optimistic (violation rate grows with the append fraction); with
// adjustment they stay valid while still improving on NoLearn.
func Figure12DataAppend(o Options) (*Report, error) {
	r := &Report{
		ID:    "figure12",
		Title: "Data append: error bounds with and without Lemma 3 adjustment",
		Columns: []string{"Appended", "bound (no adj)", "actual (no adj)",
			"bound (adj)", "actual (adj)", "violations (no adj)", "violations (adj)"},
	}
	const ell, sigma2 = 15.0, 9.0
	baseRows := 20000
	if o.Scale == Small {
		baseRows = 8000
	}
	fractions := []float64{0.05, 0.10, 0.15, 0.20}
	if o.Scale == Small {
		fractions = []float64{0.05, 0.20}
	}
	alpha, err := mathx.ConfidenceMultiplier(0.95)
	if err != nil {
		return nil, err
	}
	id := query.FuncID{Kind: query.AvgAgg, MeasureKey: "y"}

	for _, frac := range fractions {
		tb, field, err := workload.GeneratePlanted1D(workload.Planted1DSpec{
			Rows: baseRows, Ell: ell, Sigma2: sigma2, Mean: 20, NoiseStd: 0.2,
			Domain: 100, Seed: o.Seed + 121,
		})
		if err != nil {
			return nil, err
		}
		xcol, _ := tb.Schema().Lookup("x")

		// The appended tuples diverge increasingly with the append size
		// ("attribute values gradually diverged"): both the uniform shift
		// and its region-to-region spread grow with the fraction.
		// Lemma 3 models the drift as one random variable s_k applied
		// per snippet with independent uncertainty, so the experiment's
		// drift is predominantly distributional (a uniform shift growing
		// with the append size) with only mild region-to-region spread —
		// strongly region-correlated drift is outside the adjustment's
		// model, for Verdict as for the paper.
		app, err := workload.GenerateAppended(tb, field, workload.AppendedTableSpec{
			Rows:        int(float64(baseRows) * frac),
			DriftMean:   2 + 10*frac,
			DriftSpread: 0.3,
			DriftStd:    0.5,
			Seed:        o.Seed + 122,
		})
		if err != nil {
			return nil, err
		}

		measure := func(adjust bool) (bound, actual, violations float64) {
			rng := randx.New(o.Seed + 123)
			v := core.New(tb, core.Config{})
			v.SetParams(id, kernel.Params{Sigma2: sigma2, Ells: map[int]float64{xcol: ell}})
			// Past snippets answered on the ORIGINAL table, with realistic
			// sampling errors and finite-population nuggets.
			for i := 0; i < 40; i++ {
				lo := rng.Uniform(0, 90)
				hi := lo + rng.Uniform(3, 10)
				exact := exactAvgOn(tb, lo, hi)
				v.Record(avgSnippetOn(tb, lo, hi),
					query.ScalarEstimate{Value: exact + rng.Normal(0, 0.2), StdErr: 0.2, PopErr: 0.05})
			}
			// Tuples arrive.
			updated := cloneTable(tb)
			if err := updated.AppendTable(app); err != nil {
				panic(err)
			}
			if adjust {
				v.OnAppend(tb, app, o.Seed+124)
			}
			// Test snippets: weak raw answers on the UPDATED table, so the
			// model (trained pre-append) dominates.
			var sumB, sumA, viol float64
			n := 0
			for i := 0; i < 40; i++ {
				lo := rng.Uniform(0, 90)
				hi := lo + rng.Uniform(3, 10)
				exactNew := exactAvgOn(updated, lo, hi)
				raw := query.ScalarEstimate{Value: exactNew + rng.Normal(0, 0.6), StdErr: 0.6, PopErr: 0.05}
				sn := avgSnippetOn(updated, lo, hi)
				inf := v.Infer(sn, raw)
				b := alpha * inf.Err
				a := math.Abs(inf.Answer - exactNew)
				den := math.Abs(exactNew)
				if den < 1e-9 {
					continue
				}
				sumB += b / den
				sumA += a / den
				if a > b {
					viol++
				}
				n++
			}
			if n == 0 {
				return 0, 0, 0
			}
			return sumB / float64(n), sumA / float64(n), viol / float64(n)
		}

		bNo, aNo, vNo := measure(false)
		bAdj, aAdj, vAdj := measure(true)
		r.Add(fmtPct(frac), fmtPct(bNo), fmtPct(aNo), fmtPct(bAdj), fmtPct(aAdj),
			fmtPct(vNo), fmtPct(vAdj))
	}
	r.Note("expected shape (paper Fig. 12): without adjustment, actual errors and bound violations GROW with the append fraction (stale synopsis bias); with adjustment they stay FLAT at the pre-append baseline — the adjustment removes the append-induced component")
	return r, nil
}

// cloneTable deep-copies a table via SelectRows of all indices.
func cloneTable(t *storage.Table) *storage.Table {
	idx := make([]int, t.Rows())
	for i := range idx {
		idx[i] = i
	}
	return t.SelectRows(t.Name()+"_copy", idx)
}
